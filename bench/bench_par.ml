(* Sharded-pipeline benchmark: wall clock for the full analysis pass at
   --jobs 1 vs the sharded path, plus a determinism re-check on the
   rendered report.

   Writes BENCH_par.json (or the path given as the first argument).
   The numbers are honest for the machine they ran on: on a single
   hardware core the sharded path cannot speed anything up — domains
   time-slice one core and the result records the coordination overhead
   instead.  The determinism check is load-bearing either way.

   Environment knobs: UNICERT_BENCH_SCALE (default 8000),
   UNICERT_BENCH_RUNS (default 3), UNICERT_BENCH_JOBS (default
   Par.default_jobs, floored at 2 so the sharded path actually runs). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> default)
  | None -> default

let scale = env_int "UNICERT_BENCH_SCALE" 8000
let runs = env_int "UNICERT_BENCH_RUNS" 3
let jobs = env_int "UNICERT_BENCH_JOBS" (max 2 (Par.default_jobs ()))

let min_of_runs f =
  let best = ref infinity and last = ref None in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    let r = Sys.opaque_identity (f ()) in
    best := min !best (Unix.gettimeofday () -. t0);
    last := Some r
  done;
  (!best, Option.get !last)

let report t = Format.asprintf "%a" Unicert.Report.all t

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_par.json" in
  Obs.Progress.set_override (Some false);
  (* Warm up allocators and lazy instrument tables outside the clock. *)
  ignore (Unicert.Pipeline.run ~scale:500 ~seed:1 ~jobs ());
  let seq_s, seq_t = min_of_runs (fun () -> Unicert.Pipeline.run ~scale ~seed:1 ~jobs:1 ()) in
  let par_s, par_t = min_of_runs (fun () -> Unicert.Pipeline.run ~scale ~seed:1 ~jobs ()) in
  if report par_t <> report seq_t then begin
    Printf.eprintf "error: report differs between --jobs 1 and --jobs %d\n" jobs;
    exit 1
  end;
  let speedup = seq_s /. par_s in
  let cores = Domain.recommended_domain_count () in
  (* cores_limited marks the speedup as an artifact of the host, not a
     regression: with fewer cores than worker domains the sharded path
     time-slices and can only measure coordination overhead. *)
  let cores_limited = cores < jobs in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"sharded pipeline, full analysis pass\",\n\
    \  \"scale\": %d,\n\
    \  \"runs\": %d,\n\
    \  \"aggregation\": \"min of runs, wall clock\",\n\
    \  \"jobs\": %d,\n\
    \  \"recommended_domain_count\": %d,\n\
    \  \"cores_limited\": %b,\n\
    \  \"sequential_seconds\": %.4f,\n\
    \  \"parallel_seconds\": %.4f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"report_identical\": true,\n\
    \  \"note\": \"%s\"\n\
     }\n"
    scale runs jobs cores cores_limited seq_s par_s speedup
    (if cores_limited then
       Printf.sprintf
         "cores_limited: %d worker domains time-sliced %d hardware core(s), \
          so the speedup measures domain coordination overhead, not \
          parallel capacity"
         jobs cores
     else
       "speedup is bounded by the hardware cores available");
  close_out oc;
  Printf.printf
    "sharded pipeline: jobs=1 %.4fs, jobs=%d %.4fs, speedup %.2fx on %d \
     recommended domain(s)%s -> %s\n"
    seq_s jobs par_s speedup cores
    (if cores_limited then " [cores-limited]" else "")
    out
