(* Store benchmark: what does durability cost, and what does it buy?

   Measures, at a scale large enough that the answer is about the store
   and not about process startup:

   - cold: a store-backed full pass (generate + lint + persist) into a
     fresh directory, vs the plain storeless pass it replaces;
   - warm: the replay pass over the committed store (segment scan +
     row decode + aggregate — no DER parsing, no lint execution).
     The acceptance gate is warm >= 5x faster than full regeneration;
   - incremental: the recompute pass after one lint is added to the
     registry (parse DER, run only the missing lint, republish);
   - fsck: a full verification sweep of every segment and index;
   - recovery: quarantine of a corrupted span plus the rebuild of only
     that span.

   Writes BENCH_store.json (or the path given as the first argument).
   Environment knobs: UNICERT_BENCH_SCALE (default 20000),
   UNICERT_BENCH_RUNS (default 3). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> default)
  | None -> default

let scale = env_int "UNICERT_BENCH_SCALE" 20000
let runs = env_int "UNICERT_BENCH_RUNS" 3

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let time f =
  let t0 = Unix.gettimeofday () in
  let r = Sys.opaque_identity (f ()) in
  (Unix.gettimeofday () -. t0, r)

let run_plain () = Unicert.Pipeline.run ~scale ~seed:1 ()
let run_store dir = Unicert.Pipeline.run ~scale ~seed:1 ~store:dir ()

let check_total (t : Unicert.Pipeline.t) =
  if t.Unicert.Pipeline.total <> scale then begin
    Printf.eprintf "error: pipeline processed %d of %d certificates\n"
      t.Unicert.Pipeline.total scale;
    exit 1
  end

let min_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let w, r = time f in
    check_total r;
    if w < !best then best := w
  done;
  !best

let () =
  let out =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_store.json"
  in
  Obs.Progress.set_override (Some false);
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "unicert-bench-store-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  (* Warm up allocators and lazy instrument tables outside the clock. *)
  ignore (Unicert.Pipeline.run ~scale:500 ~seed:1 ());

  (* Full regeneration (the thing warm replay avoids): min of runs. *)
  let plain = min_of runs run_plain in

  (* Cold store-backed build: one-shot (it leaves the store the warm
     passes need; rebuilding per run would just repeat `plain` plus
     I/O). *)
  let cold, t = time (fun () -> run_store dir) in
  check_total t;

  (* Warm replay over the committed store: min of runs. *)
  let warm = min_of runs (fun () -> run_store dir) in

  (* Incremental recompute: rewrite the manifest as if the store had
     been built by a binary lacking the last registered lint, then time
     the run that parses DER once per cert but executes only that lint. *)
  let incremental =
    let db = Store.Db.open_ro ~dir in
    let man = Store.Db.manifest db in
    let all_lints = String.split_on_char ';' man.Store.Manifest.lints in
    let older =
      List.filteri (fun i _ -> i < List.length all_lints - 1) all_lints
    in
    Store.Db.commit db { man with Store.Manifest.lints = String.concat ";" older };
    let w, t = time (fun () -> run_store dir) in
    check_total t;
    w
  in

  (* fsck sweep of the intact store. *)
  let fsck_clean, r = time (fun () -> Store.Db.fsck ~dir ()) in
  if r.Store.Db.issues <> [] then begin
    Printf.eprintf "error: fsck found issues in a freshly built store\n";
    exit 1
  end;

  (* Recovery: corrupt one span, quarantine it, rebuild only the gap. *)
  let seg =
    Sys.readdir dir |> Array.to_list
    |> List.find (fun f ->
           String.length f > 6 && String.sub f 0 6 = "certs-"
           && Filename.check_suffix f ".seg")
  in
  ignore (Store.Chaos.flip_bit_in_file ~seed:7 (Filename.concat dir seg));
  let repair, _ = time (fun () -> Store.Db.fsck ~repair:true ~dir ()) in
  let rebuild, t = time (fun () -> run_store dir) in
  check_total t;
  rm_rf dir;

  let warm_speedup = plain /. warm in
  let incremental_speedup = plain /. incremental in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"on-disk store: cold build, warm replay, incremental recompute, fsck, recovery\",\n\
    \  \"scale\": %d,\n\
    \  \"runs\": %d,\n\
    \  \"aggregation\": \"min of runs wall clock (cold build and recovery are one-shot)\",\n\
    \  \"plain_wall_seconds\": %.4f,\n\
    \  \"plain_certs_per_sec\": %.1f,\n\
    \  \"cold_wall_seconds\": %.4f,\n\
    \  \"cold_certs_per_sec\": %.1f,\n\
    \  \"cold_overhead_pct\": %.1f,\n\
    \  \"warm_wall_seconds\": %.4f,\n\
    \  \"warm_certs_per_sec\": %.1f,\n\
    \  \"warm_speedup_vs_full_regeneration\": %.1f,\n\
    \  \"warm_speedup_floor\": 5.0,\n\
    \  \"incremental_wall_seconds\": %.4f,\n\
    \  \"incremental_speedup_vs_full_regeneration\": %.1f,\n\
    \  \"fsck_seconds\": %.4f,\n\
    \  \"recovery_repair_seconds\": %.4f,\n\
    \  \"recovery_rebuild_seconds\": %.4f\n\
     }\n"
    scale runs plain
    (float_of_int scale /. plain)
    cold
    (float_of_int scale /. cold)
    (100. *. (cold -. plain) /. plain)
    warm
    (float_of_int scale /. warm)
    warm_speedup incremental incremental_speedup fsck_clean repair rebuild;
  close_out oc;
  Printf.printf
    "store: plain %.3fs, cold %.3fs, warm %.3fs (%.1fx), incremental %.3fs \
     (%.1fx), fsck %.3fs, recovery %.3f+%.3fs -> %s\n"
    plain cold warm warm_speedup incremental incremental_speedup fsck_clean
    repair rebuild out;
  if warm_speedup < 5.0 then begin
    Printf.eprintf
      "warning: warm replay only %.1fx faster than full regeneration \
       (floor: 5.0x)\n"
      warm_speedup;
    exit 1
  end
