(* Bechamel micro-benchmarks over the hot code paths: one Test.make per
   experiment-critical primitive. *)

open Bechamel
open Toolkit

let sample_cert =
  let kp = X509.Certificate.mock_keypair ~seed:"bench-ca" () in
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Bench CA") ])
      ~subject:
        (X509.Dn.of_list
           [ (X509.Attr.Country_name, "DE");
             (X509.Attr.Organization_name, "St\xC3\xB6ri AG");
             (X509.Attr.Common_name, "xn--bcher-kva.example.com") ])
      ~not_before:(Asn1.Time.make 2024 1 1) ~not_after:(Asn1.Time.make 2025 1 1)
      ~spki:(X509.Certificate.keypair_spki kp)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        [ X509.Extension.subject_alt_name
            [ X509.General_name.Dns_name "xn--bcher-kva.example.com" ] ]
      ()
  in
  X509.Certificate.sign kp tbs

let issued = Asn1.Time.make 2024 6 1

let gen_state = Ucrypto.Prng.create 99

let tests =
  Test.make_grouped ~name:"unicert" ~fmt:"%s/%s"
    [
      Test.make ~name:"sha256-1k"
        (Staged.stage (fun () -> Ucrypto.Sha256.digest (String.make 1024 'x')));
      Test.make ~name:"punycode-encode"
        (Staged.stage (fun () ->
             Idna.Punycode.encode_utf8 "b\xC3\xBCcher-m\xC3\xBCnchen"));
      Test.make ~name:"punycode-decode"
        (Staged.stage (fun () -> Idna.Punycode.decode "bcher-mnchen-9db1e"));
      Test.make ~name:"nfc-normalize"
        (Staged.stage (fun () ->
             Unicode.Normalize.utf8_to_nfc "Socie\xCC\x81te\xCC\x81 Ge\xCC\x81ne\xCC\x81rale"));
      Test.make ~name:"cert-parse"
        (Staged.stage (fun () -> X509.Certificate.parse sample_cert.X509.Certificate.der));
      Test.make ~name:"cert-generate"
        (Staged.stage (fun () ->
             Ctlog.Dataset.generate_entry gen_state (List.hd Ctlog.Dataset.issuers)));
      Test.make ~name:"lint-run-95"
        (Staged.stage (fun () -> Lint.Registry.run ~issued sample_cert));
      Test.make ~name:"dn-to-string"
        (Staged.stage (fun () ->
             X509.Dn.to_string sample_cert.X509.Certificate.tbs.X509.Certificate.subject));
      Test.make ~name:"idna-domain-issues"
        (Staged.stage (fun () -> Idna.domain_issues "xn--bcher-kva.example.com"));
      (* Telemetry primitives: these sit on paths hit once per lint per
         certificate, so their cost bounds the instrumentation overhead
         budget (<5% of a pipeline run). *)
      (let c = Obs.Counter.make "bench_total" in
       Test.make ~name:"obs-counter-inc" (Staged.stage (fun () -> Obs.Counter.inc c)));
      (let h = Obs.Histogram.make "bench_seconds" in
       Test.make ~name:"obs-histogram-observe"
         (Staged.stage (fun () -> Obs.Histogram.observe h 3.2e-5)));
      (let registry = Obs.Registry.create () in
       Test.make ~name:"obs-span"
         (Staged.stage (fun () -> Obs.Span.with_ ~registry "bench" Fun.id)));
    ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "%-32s | %14s@." "benchmark" "ns/run";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "%-32s | %14.1f@." name est
      | _ -> Format.printf "%-32s | %14s@." name "-")
    results
