(* Fuzzer throughput baseline: execs/sec for the round-based campaign
   (sequential and sharded) and time-to-first-disagreement on the
   pinned seed — the numbers the @fuzz-smoke budget and the ROADMAP
   item 4 claims are calibrated against.

   The campaign is deterministic in (seed, budget), so the measured
   runs rediscover exactly the same findings every time; only the wall
   clock varies.  Writes BENCH_fuzz.json (or the path given as the
   first argument).  Environment knobs: UNICERT_BENCH_FUZZ_BUDGET
   (default 1024), UNICERT_BENCH_RUNS (default 3). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> default)
  | None -> default

let budget = env_int "UNICERT_BENCH_FUZZ_BUDGET" 1024
let runs = env_int "UNICERT_BENCH_RUNS" 3
let seed = 7

let cfg jobs =
  { Fuzz.Campaign.default_config with Fuzz.Campaign.seed; budget; jobs }

(* Min-of-[runs] wall clock for a campaign at [jobs]; returns the last
   result alongside (identical across runs by construction). *)
let measure jobs =
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    let t = Sys.opaque_identity (Fuzz.Campaign.run (cfg jobs)) in
    let wall = Unix.gettimeofday () -. t0 in
    if wall < !best then best := wall;
    last := Some t
  done;
  (!best, Option.get !last)

(* Wall clock up to the first non-agreement outcome: rerun with the
   budget clipped just past the recorded first disagreement, so the
   measured region is exactly the executions that preceded it. *)
let time_to_first first jobs =
  match first with
  | None -> nan
  | Some exec ->
      let clipped = { (cfg jobs) with Fuzz.Campaign.budget = exec + 1 } in
      let best = ref infinity in
      for _ = 1 to runs do
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (Fuzz.Campaign.run clipped));
        let wall = Unix.gettimeofday () -. t0 in
        if wall < !best then best := wall
      done;
      !best

let () =
  let out =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_fuzz.json"
  in
  (* Warm up allocators and the lazy Obs instruments outside the clock. *)
  ignore (Fuzz.Campaign.run { (cfg 1) with Fuzz.Campaign.budget = 64 });
  let cores = Domain.recommended_domain_count () in
  let jobs = if cores > 1 then cores else 1 in
  let seq_wall, t = measure 1 in
  let par_wall, _ = if jobs > 1 then measure jobs else (seq_wall, t) in
  let beyond =
    Fuzz.Findings.clusters t.Fuzz.Campaign.findings
    |> List.filter (fun (_, cls, _, _) -> Fuzz.Exec.beyond_tables cls)
    |> List.length
  in
  let ttfd = time_to_first t.Fuzz.Campaign.first_disagreement 1 in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"coverage-guided differential fuzzing campaign, pinned seed\",\n\
    \  \"seed\": %d,\n\
    \  \"budget\": %d,\n\
    \  \"runs\": %d,\n\
    \  \"aggregation\": \"min of runs, wall clock; findings are deterministic in (seed, budget)\",\n\
    \  \"recommended_domain_count\": %d,\n\
    \  \"cores_limited\": %b,\n\
    \  \"sequential\": {\n\
    \    \"wall_seconds\": %.4f,\n\
    \    \"execs_per_sec\": %.1f\n\
    \  },\n\
    \  \"parallel\": {\n\
    \    \"jobs\": %d,\n\
    \    \"wall_seconds\": %.4f,\n\
    \    \"execs_per_sec\": %.1f,\n\
    \    \"speedup_vs_sequential\": %.2f\n\
    \  },\n\
    \  \"first_disagreement_exec\": %s,\n\
    \  \"time_to_first_disagreement_seconds\": %s,\n\
    \  \"findings\": %d,\n\
    \  \"clusters_beyond_tables\": %d,\n\
    \  \"distinct_signatures\": %d,\n\
    \  \"corpus_size\": %d\n\
     }\n"
    seed budget runs cores (cores <= 1) seq_wall
    (float_of_int budget /. seq_wall)
    jobs par_wall
    (float_of_int budget /. par_wall)
    (seq_wall /. par_wall)
    (match t.Fuzz.Campaign.first_disagreement with
    | Some e -> string_of_int e
    | None -> "null")
    (if Float.is_nan ttfd then "null" else Printf.sprintf "%.4f" ttfd)
    (List.length t.Fuzz.Campaign.findings)
    beyond t.Fuzz.Campaign.signatures t.Fuzz.Campaign.corpus_size;
  close_out oc;
  Printf.printf
    "fuzz: %d execs in %.4fs seq (%.0f/sec), %.4fs at jobs=%d; %d findings, \
     %d beyond-table clusters -> %s\n"
    budget seq_wall
    (float_of_int budget /. seq_wall)
    par_wall jobs
    (List.length t.Fuzz.Campaign.findings)
    beyond out
