(* Serving benchmark: what does the query API sustain while ingest is
   running, and does a kill -9 lose anything?

   Two phases, both at a scale large enough that the answer is about
   the serving path and not about process startup:

   - throughput: an in-process replica of the daemon's ingest loop
     (long-lived fetch feeds -> lint -> store spans -> periodic
     commits) runs on its own domain while N client domains hammer the
     query battery through the framed listener.  Reported: queries/sec
     while ingest is in flight, and again once the corpus has fully
     landed;
   - crash acceptance: the real unicert-monitord binary is killed with
     SIGKILL mid-ingest; after `fsck --repair`, a restarted daemon's
     battery responses must be byte-identical to a fresh replay of
     exactly the committed prefix.

   Writes BENCH_serve.json (or the path given as the first argument).
   Environment knobs: UNICERT_BENCH_SCALE (default 20000),
   UNICERT_BENCH_CLIENTS (default 4), UNICERT_MONITORD (daemon path;
   defaults to the sibling bin/ executable). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> default)
  | None -> default

let scale = env_int "UNICERT_BENCH_SCALE" 20000
let clients = env_int "UNICERT_BENCH_CLIENTS" 4
let seed = 1

let daemon_exe =
  match Sys.getenv_opt "UNICERT_MONITORD" with
  | Some p -> p
  | None ->
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/unicert_monitord.exe"

let battery =
  [
    "q crtsh example";
    "q sslmate xn--bcher-kva.com";
    "q entrust xn--bcher-kva.com";
    "q entrust shop.xn--p1ai";
    "ix issuer COMODO CA Limited";
    "ix ulabel b\xc3\xbccher";
    "ix domain example";
    "ix flaw Invalid Encoding";
    "stats";
  ]

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "unicert-bench-serve-%s-%d" name (Unix.getpid ()))

let cfg = Ctlog.Fetch.default_cfg
let lints () = Unicert.Pipeline.lints_signature ()

let fingerprint () =
  Unicert.Pipeline.store_fingerprint ~mutator:None ~drop:false
    ~source:(Unicert.Pipeline.Fetch cfg)

(* Stage one analyzed row's serving material (subject fields + the
   five index families) — the daemon's replay path, replicated so the
   crash check has an independent oracle. *)
let stage_row service row =
  Monitors.Service.stage_fields service
    ~id:(Unicert.Pipeline.row_index row)
    ~cns:(Unicert.Pipeline.row_cns row)
    ~sans:(Unicert.Pipeline.row_domains row)
    ~attrs:(Unicert.Pipeline.row_attrs row);
  let one = Unicert.Pipeline.fresh_acc () in
  Unicert.Pipeline.add_index_entries one row;
  List.iter
    (fun (ix, entries) ->
      List.iter
        (fun (key, ids) ->
          List.iter
            (fun id -> Monitors.Service.stage_index service ~index:ix ~key ~id)
            ids)
        entries)
    (Unicert.Pipeline.merge_accs [ one ])

(* --- phase 1: throughput under concurrent ingest ---------------------- *)

type ingest_feed = {
  feed : Ctlog.Fetch.feed;
  hi : int;
  mutable mark : int;
  mutable next : int;
  mutable pending : (Store.Db.record * string) list;
}

let throughput () =
  let dir = tmp "ingest" in
  rm_rf dir;
  let db = Store.Db.create ~dir ~scale ~seed ~fingerprint:(fingerprint ()) in
  let lints = lints () in
  Store.Db.recover db ~lints;
  let service = Monitors.Service.create () in
  let listener =
    Net.Listener.create ~seal:Ctlog.Wire.seal (fun ~client:_ line ->
        Monitors.Service.respond service line)
  in
  Store.Db.prewarm ();
  Ctlog.Fetch.prewarm ();
  Monitors.Service.prewarm ();
  Net.Listener.prewarm ();
  let feeds =
    Ctlog.Fetch.feeds ~checkpoint:(Filename.concat dir "cursors") ~scale ~seed
      cfg
    |> List.map (fun feed ->
           let lo, hi = Ctlog.Fetch.feed_range feed in
           { feed; hi; mark = lo; next = lo; pending = [] })
  in
  let acc = Unicert.Pipeline.fresh_acc () in
  let committed = ref 0 in
  let segments = ref [] in
  let commit () =
    List.iter
      (fun f ->
        match List.rev f.pending with
        | [] -> ()
        | items ->
            let hi =
              1
              + List.fold_left
                  (fun a (r, _) -> max a (Store.Db.index_of_record r))
                  (f.mark - 1) items
            in
            let pw = Store.Db.start_span db ~lints ~lo:f.mark ~hi in
            List.iter (fun (r, row) -> Store.Db.append pw r ~row) items;
            segments := Store.Db.finish_span pw :: !segments;
            f.mark <- hi;
            committed := !committed + List.length items;
            f.pending <- [])
      feeds;
    let pairs =
      List.sort
        (fun ((a : Store.Manifest.seg), _) (b, _) ->
          compare a.Store.Manifest.lo b.Store.Manifest.lo)
        !segments
    in
    let indexes =
      Unicert.Pipeline.save_indexes db (Unicert.Pipeline.merge_accs [ acc ])
    in
    let state =
      if List.for_all (fun f -> f.mark >= f.hi) feeds then `Complete
      else `Building
    in
    Store.Db.commit db
      {
        Store.Manifest.state;
        lints;
        segments = List.map fst pairs;
        rows = List.map snd pairs;
        indexes;
        meta = [];
      };
    Monitors.Service.commit service ~upto:!committed
  in
  let ingest_done = Atomic.make false in
  let ingest_t0 = Unix.gettimeofday () in
  let ingester =
    Domain.spawn (fun () ->
        let tick = ref 0 in
        while not (List.for_all (fun f -> f.mark >= f.hi) feeds) do
          incr tick;
          List.iter
            (fun f ->
              Ctlog.Fetch.feed_publish f.feed
                (Ctlog.Fetch.feed_published f.feed + 256))
            feeds;
          List.iter
            (fun f ->
              let s = Ctlog.Fetch.poll f.feed in
              List.iter
                (fun item ->
                  let index = Ctlog.Fetch.item_index item in
                  if index >= f.next then begin
                    (match item with
                    | Ctlog.Fetch.Got (index, entry) ->
                        let row = Unicert.Pipeline.analyze_entry entry ~index in
                        Unicert.Pipeline.add_index_entries acc row;
                        stage_row service row;
                        f.pending <-
                          ( Store.Db.Cert
                              {
                                index;
                                der =
                                  entry.Ctlog.Dataset.cert
                                    .X509.Certificate.der;
                              },
                            Unicert.Pipeline.encode_row row )
                          :: f.pending
                    | Ctlog.Fetch.Undecodable (index, der, e) ->
                        f.pending <-
                          ( Store.Db.Fault
                              {
                                index;
                                class_ = Faults.Error.class_name e;
                                detail = Faults.Error.detail e;
                                der;
                              },
                            "F" )
                          :: f.pending);
                    f.next <- index + 1
                  end)
                (Ctlog.Fetch.items_of_session s))
            feeds;
          if !tick mod 2 = 0 then commit ()
        done;
        commit ();
        Atomic.set ingest_done true)
  in
  let workers =
    List.init clients (fun c ->
        Domain.spawn (fun () ->
            let client = Printf.sprintf "bench-%d" c in
            let n = ref 0 in
            let seq = ref 0 in
            while not (Atomic.get ingest_done) do
              List.iter
                (fun line ->
                  incr seq;
                  ignore (Net.Listener.serve listener ~client ~seq:!seq line);
                  incr n)
                battery
            done;
            !n))
  in
  let during = List.fold_left (fun a d -> a + Domain.join d) 0 workers in
  Domain.join ingester;
  let ingest_wall = Unix.gettimeofday () -. ingest_t0 in
  if !committed <> scale then begin
    Printf.eprintf "error: ingest committed %d of %d entries\n" !committed scale;
    exit 1
  end;
  (* Idle throughput over the fully landed corpus: single client,
     timed batches. *)
  let batches = 200 in
  let t0 = Unix.gettimeofday () in
  let seq = ref 0 in
  for _ = 1 to batches do
    List.iter
      (fun line ->
        incr seq;
        ignore (Net.Listener.serve listener ~client:"idle" ~seq:!seq line))
      battery
  done;
  let idle_wall = Unix.gettimeofday () -. t0 in
  rm_rf dir;
  ( float_of_int during /. ingest_wall,
    float_of_int (batches * List.length battery) /. idle_wall,
    ingest_wall )

(* --- phase 2: kill -9 mid-ingest, recover, compare ------------------- *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let daemon_args dir extra =
  Array.of_list
    ([ daemon_exe; "--store"; dir; "--scale"; string_of_int scale;
       "--seed"; string_of_int seed; "--source"; "fetch"; "--no-progress";
       "--publish-per-tick"; "256"; "--commit-every"; "2" ]
    @ extra)

let kill_acceptance () =
  let dir = tmp "kill" in
  rm_rf dir;
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process daemon_exe
      (daemon_args dir [ "--ticks"; "1000" ])
      null Unix.stdout Unix.stderr
  in
  Unix.close null;
  (* Wait for at least one durable data commit (recover writes an
     empty manifest at startup — that one doesn't count), then pull
     the plug. *)
  let committed_spans () =
    if not (Sys.file_exists (Filename.concat dir Store.Manifest.file)) then 0
    else
      match Store.Db.open_ro ~dir with
      | db -> List.length (Store.Db.spans db)
      | exception Store.Db.Store_error _ -> 0
  in
  let rec wait n =
    if n = 0 then begin
      Unix.kill pid Sys.sigkill;
      prerr_endline "error: daemon produced no data commit to kill";
      exit 1
    end;
    if committed_spans () = 0 then begin
      Unix.sleepf 0.2;
      wait (n - 1)
    end
  in
  wait 600;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  let report = Store.Db.fsck ~repair:true ~dir () in
  if not report.Store.Db.usable then begin
    prerr_endline "error: store unusable after kill -9 + fsck --repair";
    exit 1
  end;
  (* Independent oracle: replay exactly the committed contiguous
     prefix of each log's partition into a fresh service and frame the
     battery answers the way the daemon does. *)
  let db = Store.Db.open_ro ~dir in
  let spans =
    List.map fst (Store.Db.spans db)
    |> List.sort (fun (a : Store.Manifest.seg) b ->
           compare a.Store.Manifest.lo b.Store.Manifest.lo)
  in
  let ranges = Par.shards ~jobs:cfg.Ctlog.Fetch.logs scale in
  let marks =
    List.map
      (fun (lo, hi) ->
        let mark = ref lo in
        List.iter
          (fun (s : Store.Manifest.seg) ->
            if s.Store.Manifest.lo <= !mark && s.Store.Manifest.hi > !mark
               && s.Store.Manifest.lo < hi then
              mark := min s.Store.Manifest.hi hi)
          spans;
        (lo, hi, !mark))
      ranges
  in
  let mark_of index =
    match
      List.find_opt (fun (lo, hi, _) -> index >= lo && index < hi) marks
    with
    | Some (_, _, m) -> m
    | None -> 0
  in
  let service = Monitors.Service.create () in
  let recovered = ref 0 in
  Store.Db.iter_pairs db (fun recd rowstr ->
      let index = Store.Db.index_of_record recd in
      if index < mark_of index then begin
        incr recovered;
        match recd with
        | Store.Db.Fault _ -> ()
        | Store.Db.Cert _ -> (
            match Unicert.Pipeline.decode_row rowstr with
            | Error e ->
                Printf.eprintf "error: committed row %d undecodable: %s\n"
                  index e;
                exit 1
            | Ok row -> stage_row service row)
      end);
  Monitors.Service.commit service ~upto:!recovered;
  if !recovered = 0 || !recovered >= scale then begin
    Printf.eprintf
      "error: kill -9 was not mid-ingest (recovered %d of %d rows)\n"
      !recovered scale;
    exit 1
  end;
  let expected =
    String.concat ""
      (List.map
         (fun line -> Ctlog.Wire.seal (Monitors.Service.respond service line))
         battery)
    ^ Ctlog.Wire.seal [ "bye" ]
  in
  (* The restarted daemon, asked for no new ingest, must answer the
     battery from the recovered prefix byte-identically. *)
  let out, inp, err =
    Unix.open_process_args_full daemon_exe
      (daemon_args dir [ "--ticks"; "0" ])
      (Unix.environment ())
  in
  List.iter (fun l -> output_string inp (l ^ "\n")) (battery @ [ "quit" ]);
  close_out inp;
  let got = read_all out in
  let errs = read_all err in
  let status = Unix.close_process_full (out, inp, err) in
  (match status with
  | Unix.WEXITED 0 -> ()
  | _ ->
      Printf.eprintf "error: restarted daemon did not exit 0 (stderr: %s)\n"
        (String.trim errs);
      exit 1);
  if got <> expected then begin
    Printf.eprintf
      "error: recovered responses differ from the committed-prefix replay\n\
       --- daemon ---\n%s--- replay ---\n%s"
      got expected;
    exit 1
  end;
  rm_rf dir;
  !recovered

let () =
  let out =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_serve.json"
  in
  Obs.Progress.set_override (Some false);
  let qps_ingest, qps_idle, ingest_wall = throughput () in
  let recovered = kill_acceptance () in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"monitor daemon: query throughput under concurrent ingest, kill -9 recovery\",\n\
    \  \"scale\": %d,\n\
    \  \"client_domains\": %d,\n\
    \  \"battery_queries\": %d,\n\
    \  \"ingest_wall_seconds\": %.4f,\n\
    \  \"queries_per_sec_under_ingest\": %.1f,\n\
    \  \"queries_per_sec_idle\": %.1f,\n\
    \  \"kill9_recovered_rows\": %d,\n\
    \  \"kill9_responses_byte_identical\": true,\n\
    \  \"note\": \"per-query cost grows with the corpus (fuzzy scans, larger hit lists), so the under-ingest average — taken while the corpus is still filling — can exceed the idle full-corpus rate\"\n\
     }\n"
    scale clients (List.length battery) ingest_wall qps_ingest qps_idle
    recovered;
  close_out oc;
  Printf.printf "wrote %s (%.0f q/s under ingest, %.0f q/s idle, %d rows recovered after kill -9)\n"
    out qps_ingest qps_idle recovered
