(* Per-stage speed baseline: decompose the sequential pipeline's wall
   clock into generate/decode/lint/classify/aggregate seconds and
   record certs/sec — the gate ROADMAP item 3 ("hot-path speed:
   zero-copy ASN.1 and fused analysis passes") optimizes against.

   The decomposition reads the unicert_span_seconds histogram deltas
   around the best run: "parse" is the DER re-decode stage (reported
   as "decode"), the remainder up to the "pipeline" span is the
   iteration/boundary overhead.  Traced passes (in-memory ring,
   default sampling) are interleaved with the untraced ones to record
   the tracing overhead DESIGN.md §10 budgets at <= 5%.

   Writes BENCH_speed.json (or the path given as the first argument).
   Environment knobs: UNICERT_BENCH_SCALE (default 8000),
   UNICERT_BENCH_RUNS (default 3). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> default)
  | None -> default

let scale = env_int "UNICERT_BENCH_SCALE" 8000
let runs = env_int "UNICERT_BENCH_RUNS" 3

(* (internal span name, reported stage name) *)
let stages =
  [ ("generate", "generate"); ("parse", "decode"); ("lint", "lint");
    ("classify", "classify"); ("aggregate", "aggregate") ]

let snap () = List.map (fun (s, _) -> Obs.Span.sum s) stages

(* One full pass: wall clock plus this pass's per-stage histogram
   deltas. *)
let one_pass () =
  let before = snap () in
  let t0 = Unix.gettimeofday () in
  let t = Sys.opaque_identity (Unicert.Pipeline.run ~scale ~seed:1 ()) in
  let wall = Unix.gettimeofday () -. t0 in
  let after = snap () in
  if t.Unicert.Pipeline.total <> scale then begin
    Printf.eprintf "error: pipeline processed %d of %d certificates\n"
      t.Unicert.Pipeline.total scale;
    exit 1
  end;
  let stage_seconds =
    List.map2
      (fun (_, reported) (b, a) -> (reported, a -. b))
      stages
      (List.combine before after)
  in
  (wall, stage_seconds)

(* Min-of-[runs] untraced wall (with the best pass's stage deltas) and
   min traced wall, interleaved untraced/traced so that host-load
   drift during the benchmark hits both arms equally — on a shared
   box the drift otherwise dwarfs the tracing overhead being
   measured. *)
let measure () =
  let best = ref infinity and best_stages = ref [] and best_traced = ref infinity in
  for _ = 1 to runs do
    let wall, stage_seconds = one_pass () in
    if wall < !best then begin
      best := wall;
      best_stages := stage_seconds
    end;
    (* Fresh ring per traced pass: default sampling, no file. *)
    Obs.Trace.enable ();
    let traced, _ = one_pass () in
    Obs.Trace.disable ();
    if traced < !best_traced then best_traced := traced
  done;
  (!best, !best_stages, !best_traced)

(* Min-of-[runs] wall for a sharded pass at [jobs] domains — recorded
   only on multicore hosts, where the parallel row is meaningful. *)
let measure_parallel jobs =
  let best = ref infinity in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (Unicert.Pipeline.run ~scale ~seed:1 ~jobs ()));
    let wall = Unix.gettimeofday () -. t0 in
    if wall < !best then best := wall
  done;
  !best

let () =
  let out =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_speed.json"
  in
  Obs.Progress.set_override (Some false);
  (* Warm up allocators and lazy instrument tables outside the clock. *)
  ignore (Unicert.Pipeline.run ~scale:500 ~seed:1 ());
  let wall, stage_seconds, wall_traced = measure () in
  let certs_per_sec = float_of_int scale /. wall in
  let stage_of name = List.assoc name stage_seconds in
  let staged_total = List.fold_left (fun a (_, s) -> a +. s) 0. stage_seconds in
  let decode_lint = stage_of "decode" +. stage_of "lint" in
  let share s = 100. *. s /. wall in
  let overhead_pct = 100. *. (wall_traced -. wall) /. wall in
  let cores = Domain.recommended_domain_count () in
  (* The engine-interface fingerprint: @speed-smoke fails when the
     recorded baseline no longer matches the live lint registry. *)
  let signature = Ucrypto.Sha256.hex (Unicert.Pipeline.lints_signature ()) in
  (* jobs=N row: only meaningful (and only recorded) on hosts with
     more than one core; [cores_limited] makes the absence explicit so
     a single-core host doesn't read as a missing measurement. *)
  let parallel_json =
    if cores <= 1 then ""
    else begin
      let pwall = measure_parallel cores in
      Printf.sprintf
        "  \"parallel\": {\n\
        \    \"jobs\": %d,\n\
        \    \"wall_seconds\": %.4f,\n\
        \    \"certs_per_sec\": %.1f,\n\
        \    \"speedup_vs_sequential\": %.2f\n\
        \  },\n"
        cores pwall
        (float_of_int scale /. pwall)
        (wall /. pwall)
    end
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"per-stage wall-clock decomposition, sequential full pass\",\n\
    \  \"scale\": %d,\n\
    \  \"runs\": %d,\n\
    \  \"aggregation\": \"min of runs, wall clock; stage seconds from the unicert_span_seconds deltas of the best run\",\n\
    \  \"lints_signature_sha256\": \"%s\",\n\
    \  \"recommended_domain_count\": %d,\n\
    \  \"cores_limited\": %b,\n\
    %s\
    \  \"wall_seconds\": %.4f,\n\
    \  \"certs_per_sec\": %.1f,\n\
    \  \"stage_seconds\": {\n\
    \    \"generate\": %.4f,\n\
    \    \"decode\": %.4f,\n\
    \    \"lint\": %.4f,\n\
    \    \"classify\": %.4f,\n\
    \    \"aggregate\": %.4f,\n\
    \    \"other\": %.4f\n\
    \  },\n\
    \  \"stage_share_pct\": {\n\
    \    \"generate\": %.1f,\n\
    \    \"decode\": %.1f,\n\
    \    \"lint\": %.1f,\n\
    \    \"classify\": %.1f,\n\
    \    \"aggregate\": %.1f\n\
    \  },\n\
    \  \"decode_lint_share_pct\": %.1f,\n\
    \  \"optimization_target\": \"decode+lint under the fused fact-table engine (DESIGN.md 12); re-record after engine-interface changes or @speed-smoke fails\",\n\
    \  \"traced_wall_seconds\": %.4f,\n\
    \  \"trace_overhead_pct\": %.2f,\n\
    \  \"trace_overhead_budget_pct\": 5.0\n\
     }\n"
    scale runs signature cores (cores <= 1) parallel_json wall certs_per_sec
    (stage_of "generate")
    (stage_of "decode") (stage_of "lint") (stage_of "classify")
    (stage_of "aggregate")
    (Float.max 0. (wall -. staged_total))
    (share (stage_of "generate"))
    (share (stage_of "decode"))
    (share (stage_of "lint"))
    (share (stage_of "classify"))
    (share (stage_of "aggregate"))
    (share decode_lint) wall_traced overhead_pct;
  close_out oc;
  Printf.printf
    "per-stage: %.4fs (%.0f certs/sec) on %d core(s); decode+lint %.1f%%; \
     tracing overhead %.2f%% -> %s\n"
    wall certs_per_sec cores (share decode_lint) overhead_pct out;
  if overhead_pct > 5.0 then begin
    Printf.eprintf
      "warning: tracing overhead %.2f%% exceeds the 5%% budget on this host\n"
      overhead_pct
  end
