(* Fetch-path benchmark: what does transport fault tolerance cost?

   Fetches the corpus off the simulated CT logs min-of-N twice — over a
   clean transport and at a 10% injected fault rate — and writes the
   wall-clock throughput to BENCH_net.json (or the path given as the
   first argument).  Faults cost real work (extra handler calls,
   checksum re-validation, backoff bookkeeping) but all waiting is
   virtual, so the acceptance budget is a 50% retry overhead.

   Environment knobs: UNICERT_BENCH_SCALE (default 8000),
   UNICERT_BENCH_RUNS (default 5). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> default)
  | None -> default

let scale = env_int "UNICERT_BENCH_SCALE" 8000
let runs = env_int "UNICERT_BENCH_RUNS" 5
let budget_pct = 50.0

let min_of_runs f =
  let best = ref infinity in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let fetch ~fault_rate () =
  let cfg =
    { Ctlog.Fetch.default_cfg with Ctlog.Fetch.net_seed = Some 13; fault_rate }
  in
  let items, covs = Ctlog.Fetch.corpus ~scale ~seed:1 cfg in
  List.iter
    (fun c ->
      if not (Ctlog.Fetch.coverage_complete c) then begin
        Printf.eprintf "error: benchmark fetch left %s incomplete\n"
          c.Ctlog.Fetch.log;
        exit 1
      end)
    covs;
  items

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_net.json" in
  Obs.Progress.set_override (Some false);
  (* Warm up allocators and lazy instrument tables outside the clock. *)
  ignore (fetch ~fault_rate:0.0 ());
  let clean = min_of_runs (fetch ~fault_rate:0.0) in
  let faulty = min_of_runs (fetch ~fault_rate:0.1) in
  let throughput seconds = float_of_int scale /. seconds in
  let overhead_pct = (faulty -. clean) /. clean *. 100.0 in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"simulated CT-log fetch, clean vs 10%% fault rate\",\n\
    \  \"scale\": %d,\n\
    \  \"runs\": %d,\n\
    \  \"aggregation\": \"min of runs, wall clock\",\n\
    \  \"clean_seconds\": %.4f,\n\
    \  \"clean_entries_per_sec\": %.0f,\n\
    \  \"faulty_seconds\": %.4f,\n\
    \  \"faulty_entries_per_sec\": %.0f,\n\
    \  \"retry_overhead_percent\": %.2f,\n\
    \  \"budget_percent\": %.1f\n\
     }\n"
    scale runs clean (throughput clean) faulty (throughput faulty) overhead_pct
    budget_pct;
  close_out oc;
  Printf.printf
    "net fetch: clean %.4fs (%.0f/s), 10%% faults %.4fs (%.0f/s), overhead \
     %.2f%% (budget %.0f%%) -> %s\n"
    clean (throughput clean) faulty (throughput faulty) overhead_pct budget_pct
    out;
  if overhead_pct > budget_pct then begin
    Printf.eprintf "error: retry overhead %.2f%% exceeds the %.0f%% budget\n"
      overhead_pct budget_pct;
    exit 1
  end
