(* Fault-path micro-benchmark: what does the per-certificate error
   boundary cost on a clean corpus?

   Runs the full analysis pipeline min-of-5 with the boundary active
   (the default) and again with the {!Faults.Isolation} kill-switch
   off, and writes the wall-clock numbers to BENCH_faults.json (or the
   path given as the first argument).  The acceptance budget is 3%
   overhead.

   Environment knobs: UNICERT_BENCH_SCALE (default 8000),
   UNICERT_BENCH_RUNS (default 5). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> default)
  | None -> default

let scale = env_int "UNICERT_BENCH_SCALE" 8000
let runs = env_int "UNICERT_BENCH_RUNS" 5

let min_of_runs f =
  let best = ref infinity in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_faults.json" in
  Obs.Progress.set_override (Some false);
  (* Warm up allocators and lazy instrument tables outside the clock. *)
  ignore (Unicert.Pipeline.run ~scale:500 ~seed:1 ());
  let boundary_on =
    min_of_runs (fun () ->
        Faults.Isolation.set true;
        Unicert.Pipeline.run ~scale ~seed:1 ())
  in
  let boundary_off =
    min_of_runs (fun () ->
        Faults.Isolation.set false;
        Unicert.Pipeline.run ~scale ~seed:1 ())
  in
  Faults.Isolation.set true;
  let overhead_pct = (boundary_on -. boundary_off) /. boundary_off *. 100.0 in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"fault-boundary overhead, clean corpus\",\n\
    \  \"scale\": %d,\n\
    \  \"runs\": %d,\n\
    \  \"aggregation\": \"min of runs, wall clock\",\n\
    \  \"boundary_on_seconds\": %.4f,\n\
    \  \"boundary_off_seconds\": %.4f,\n\
    \  \"overhead_percent\": %.2f,\n\
    \  \"budget_percent\": 3.0\n\
     }\n"
    scale runs boundary_on boundary_off overhead_pct;
  close_out oc;
  Printf.printf
    "fault boundary: on %.4fs, off %.4fs, overhead %.2f%% (budget 3%%) -> %s\n"
    boundary_on boundary_off overhead_pct out;
  if overhead_pct > 3.0 then begin
    Printf.eprintf "error: boundary overhead %.2f%% exceeds the 3%% budget\n"
      overhead_pct;
    exit 1
  end
