(* Tests for the fault-tolerant CT-log transport (lib/net) and the
   paged fetch client (Ctlog.Fetch): backoff/jitter bounds, fault-plan
   purity, rate-limiter conformance, per-kind transport behaviour,
   retry / budget / hedging in the client, breaker transitions and
   their Obs counters, wire integrity, server paging and consistency
   proofs, split-view detection, log abandonment, resume-after-kill,
   and byte-identical fetch results across reruns, fault rates and
   [--jobs] values. *)

module Fault = Net.Fault
module Policy = Net.Policy
module Clock = Net.Clock
module Bucket = Net.Bucket
module Transport = Net.Transport
module Client = Net.Client
module Wire = Ctlog.Wire
module Fetch = Ctlog.Fetch

let check = Alcotest.check

let tmp_dir prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" prefix (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Policy: decorrelated-jitter backoff stays within its bounds --- *)

let test_backoff_bounds () =
  let p = Policy.default in
  let g = Ucrypto.Prng.of_pair 42 0 in
  let prev = ref p.Policy.base_delay in
  for _ = 1 to 1000 do
    let d = Policy.backoff p g ~prev:!prev in
    if d < p.Policy.base_delay -. 1e-12 then
      Alcotest.failf "backoff %g below floor %g" d p.Policy.base_delay;
    if d > p.Policy.max_delay +. 1e-12 then
      Alcotest.failf "backoff %g above cap %g" d p.Policy.max_delay;
    let bound =
      min p.Policy.max_delay (max p.Policy.base_delay (3.0 *. !prev))
    in
    if d > bound +. 1e-9 then
      Alcotest.failf "backoff %g breaks decorrelated bound %g (prev %g)" d
        bound !prev;
    prev := d
  done

(* --- Fault plan: outcomes are pure, clean plans inject nothing --- *)

let test_fault_purity () =
  let plan =
    { Fault.default_plan with Fault.seed = 7; rate = 0.6; kinds = Fault.all_kinds }
  in
  for page = 0 to 40 do
    for attempt = 0 to 3 do
      let a = Fault.sample plan ~log:"log-03" ~endpoint:"get-entries" ~page ~attempt in
      let b = Fault.sample plan ~log:"log-03" ~endpoint:"get-entries" ~page ~attempt in
      if a <> b then Alcotest.fail "Fault.sample is not pure"
    done
  done;
  let clean = { Fault.default_plan with Fault.seed = 7 } in
  for page = 0 to 100 do
    match (Fault.sample clean ~log:"l" ~endpoint:"e" ~page ~attempt:0).Fault.fault with
    | None -> ()
    | Some k -> Alcotest.failf "clean plan injected %s" (Fault.kind_name k)
  done;
  List.iter
    (fun k ->
      if Fault.kind_of_name (Fault.kind_name k) <> Some k then
        Alcotest.failf "kind name round trip broke for %s" (Fault.kind_name k))
    Fault.all_kinds

(* --- Virtual clock: monotone, never rewinds --- *)

let test_clock () =
  let c = Clock.create ~at:5.0 () in
  check (Alcotest.float 1e-9) "start" 5.0 (Clock.now c);
  Clock.advance c 2.5;
  check (Alcotest.float 1e-9) "advance" 7.5 (Clock.now c);
  Clock.advance c (-3.0);
  check (Alcotest.float 1e-9) "negative advance is a no-op" 7.5 (Clock.now c);
  Clock.advance_to c 6.0;
  check (Alcotest.float 1e-9) "advance_to never rewinds" 7.5 (Clock.now c);
  Clock.advance_to c 10.0;
  check (Alcotest.float 1e-9) "advance_to forward" 10.0 (Clock.now c)

(* --- Token bucket: burst is free, then the rate paces, Retry-After
   embargoes --- *)

let test_bucket () =
  let clock = Clock.create () in
  let b = Bucket.create ~clock ~rate:10.0 ~burst:2.0 in
  let w1 = Bucket.acquire b in
  let w2 = Bucket.acquire b in
  check (Alcotest.float 1e-9) "first burst token free" 0.0 w1;
  check (Alcotest.float 1e-9) "second burst token free" 0.0 w2;
  let w3 = Bucket.acquire b in
  if w3 < 0.05 || w3 > 0.15 then
    Alcotest.failf "third token should wait ~1/rate, waited %g" w3;
  if Clock.now clock < 0.05 then Alcotest.fail "acquire must advance the clock";
  Bucket.penalize b ~seconds:5.0;
  let before = Clock.now clock in
  let w4 = Bucket.acquire b in
  if w4 < 4.99 then Alcotest.failf "embargoed acquire waited only %g" w4;
  if Clock.now clock < before +. 4.99 then
    Alcotest.fail "penalty must advance the clock"

(* --- Transport: each fault kind produces its wire-visible shape --- *)

let body_lines = [ "entries 0 2"; "0 deadbeef"; "0 cafe" ]
let handler _ = Wire.seal body_lines

let mk_transport ?down ~rate ~kinds () =
  let clock = Clock.create () in
  let plan =
    { Fault.default_plan with
      Fault.seed = 11;
      rate;
      kinds;
      base_latency = 0.02;
      latency_jitter = 0.0 }
  in
  (clock, Transport.create ~plan ?down ~clock handler)

let req page = { Transport.log = "log-00"; endpoint = "get-entries"; page }

let test_transport_kinds () =
  let clean_body =
    let _, t = mk_transport ~rate:0.0 ~kinds:Fault.all_kinds () in
    match Transport.call t ~attempt:0 ~deadline:1.0 (req 0) with
    | Transport.Body b ->
        if not (Wire.valid b) then Alcotest.fail "clean body failed checksum";
        b
    | _ -> Alcotest.fail "clean transport must serve a body"
  in
  let shape k =
    let clock, t = mk_transport ~rate:1.0 ~kinds:[ k ] () in
    let resp = Transport.call t ~attempt:0 ~deadline:1.0 (req 0) in
    (match k with
    | Fault.Slow -> (
        match resp with
        | Transport.Body b ->
            if not (Wire.valid b) then Alcotest.fail "slow body must be intact";
            if Clock.now clock < 0.4 then
              Alcotest.failf "slow must burn ~25x latency, burned %g"
                (Clock.now clock)
        | _ -> Alcotest.fail "Slow must still serve a body")
    | Fault.Timeout -> (
        match resp with
        | Transport.Timed_out -> ()
        | _ -> Alcotest.fail "Timeout must exceed the attempt deadline")
    | Fault.Reset -> (
        match resp with
        | Transport.Reset -> ()
        | _ -> Alcotest.fail "Reset must reset")
    | Fault.Rate_limit -> (
        match resp with
        | Transport.Retry_later { status = _; after } ->
            if after <= 0.0 then Alcotest.fail "Retry-After must be positive"
        | _ -> Alcotest.fail "Rate_limit must answer Retry_later")
    | Fault.Server_error -> (
        match resp with
        | Transport.Error_status s ->
            if s <> 500 && s <> 503 then Alcotest.failf "unexpected status %d" s
        | _ -> Alcotest.fail "Server_error must answer an error status")
    | Fault.Truncate -> (
        match resp with
        | Transport.Body b ->
            if Wire.valid b then Alcotest.fail "truncated body passed checksum";
            if String.length b >= String.length clean_body then
              Alcotest.fail "truncated body is not shorter"
        | _ -> Alcotest.fail "Truncate must still serve a body")
    | Fault.Corrupt_body -> (
        match resp with
        | Transport.Body b ->
            if Wire.valid b then Alcotest.fail "corrupt body passed checksum";
            check Alcotest.int "corruption keeps the length"
              (String.length clean_body) (String.length b)
        | _ -> Alcotest.fail "Corrupt_body must still serve a body"))
  in
  List.iter shape Fault.all_kinds

let test_transport_down () =
  let clock, t = mk_transport ~down:(fun _ -> true) ~rate:0.0 ~kinds:[] () in
  (match Transport.call t ~attempt:0 ~deadline:1.0 (req 0) with
  | Transport.Reset -> ()
  | _ -> Alcotest.fail "a dead log must reset");
  if Clock.now clock < 1.0 -. 1e-9 then
    Alcotest.fail "a dead log must burn the full attempt deadline"

(* --- Client: success, retries, budget/attempt exhaustion, hedging --- *)

let client_request ?bucket ?hedge ~policy ~transport page =
  Client.request ~policy ?bucket ?hedge ~validate:Wire.valid ~transport
    ~log:"log-00" ~endpoint:"get-entries" ~page ()

let test_client_clean () =
  let _, transport = mk_transport ~rate:0.0 ~kinds:[] () in
  match client_request ~policy:Policy.default ~transport 0 with
  | Ok f ->
      check Alcotest.int "one attempt" 1 f.Client.attempts;
      check Alcotest.bool "no hedge" false f.Client.hedged;
      check Alcotest.string "body" (Wire.seal body_lines) f.Client.body
  | Error e -> Alcotest.failf "clean request failed: %s" (Client.describe e)

let test_client_retry () =
  let _, transport =
    mk_transport ~rate:0.25 ~kinds:[ Fault.Reset; Fault.Server_error ] ()
  in
  (* Enough attempts that no page can plausibly exhaust them at a 25%
     fault rate (0.25^8 per page). *)
  let policy = { Policy.default with Policy.max_attempts = 8 } in
  let attempts = ref 0 in
  for page = 0 to 29 do
    match client_request ~policy ~transport page with
    | Ok f -> attempts := !attempts + f.Client.attempts
    | Error e ->
        Alcotest.failf "page %d not recovered: %s" page (Client.describe e)
  done;
  if !attempts <= 30 then
    Alcotest.fail "a 30% fault rate must force at least one retry"

let test_client_attempts_exhausted () =
  let _, transport = mk_transport ~down:(fun _ -> true) ~rate:0.0 ~kinds:[] () in
  let policy = { Policy.default with Policy.request_budget = 1e6 } in
  match client_request ~policy ~transport 0 with
  | Ok _ -> Alcotest.fail "a dead log cannot succeed"
  | Error (Client.Attempts_exhausted { attempts; _ }) ->
      check Alcotest.int "all attempts burned" Policy.default.Policy.max_attempts
        attempts
  | Error e -> Alcotest.failf "expected Attempts_exhausted, got %s" (Client.describe e)

let test_client_budget_exhausted () =
  let _, transport = mk_transport ~down:(fun _ -> true) ~rate:0.0 ~kinds:[] () in
  let policy = { Policy.default with Policy.request_budget = 0.5 } in
  match client_request ~policy ~transport 0 with
  | Ok _ -> Alcotest.fail "a dead log cannot succeed"
  | Error (Client.Budget_exhausted { waited; _ }) ->
      if waited < 0.5 then Alcotest.failf "budget tripped early at %g" waited
  | Error e -> Alcotest.failf "expected Budget_exhausted, got %s" (Client.describe e)

let test_client_hedge () =
  (* Every attempt is Slow: the primary succeeds but past [hedge_after],
     so a tail-page request fires one hedge and keeps the valid
     primary. *)
  let _, transport = mk_transport ~rate:1.0 ~kinds:[ Fault.Slow ] () in
  (match client_request ~policy:Policy.default ~hedge:true ~transport 3 with
  | Ok f ->
      check Alcotest.bool "hedged" true f.Client.hedged;
      check Alcotest.int "primary + hedge" 2 f.Client.attempts;
      if f.Client.waited < 0.4 then
        Alcotest.failf "slow primary must show in waited, got %g" f.Client.waited
  | Error e -> Alcotest.failf "hedged request failed: %s" (Client.describe e));
  let _, transport = mk_transport ~rate:1.0 ~kinds:[ Fault.Slow ] () in
  match client_request ~policy:Policy.default ~transport 3 with
  | Ok f ->
      check Alcotest.bool "no hedge without opt-in" false f.Client.hedged;
      check Alcotest.int "single attempt" 1 f.Client.attempts
  | Error e -> Alcotest.failf "unhedged request failed: %s" (Client.describe e)

(* --- Breaker: the 3-state walk, with its transition counters --- *)

let transitions_counter =
  lazy
    (Obs.Registry.labeled_counter ~label:"transition"
       "unicert_breaker_transitions_total")

let transition_count which =
  Obs.Counter.value (Obs.Counter.Labeled.get (Lazy.force transitions_counter) which)

let test_breaker_transitions () =
  Faults.Breaker.prewarm ();
  let co0 = transition_count "closed_open" in
  let oh0 = transition_count "open_half_open" in
  let hc0 = transition_count "half_open_closed" in
  let ho0 = transition_count "half_open_open" in
  let b = Faults.Breaker.create ~threshold:2 ~cooldown:1.0 "net-test" in
  let state_is expect msg =
    if Faults.Breaker.state b <> expect then Alcotest.fail msg
  in
  Faults.Breaker.failure ~now:0.0 b;
  state_is Faults.Breaker.Closed "one failure stays closed";
  Faults.Breaker.failure ~now:0.0 b;
  state_is Faults.Breaker.Open "threshold failures open";
  check (Alcotest.float 1e-9) "closed_open counted" (co0 +. 1.0)
    (transition_count "closed_open");
  if Faults.Breaker.allow ~now:0.5 b then
    Alcotest.fail "open breaker must refuse before cooldown";
  if not (Faults.Breaker.allow ~now:1.5 b) then
    Alcotest.fail "cooled-down breaker must admit a probe";
  state_is Faults.Breaker.Half_open "probe admission half-opens";
  check (Alcotest.float 1e-9) "open_half_open counted" (oh0 +. 1.0)
    (transition_count "open_half_open");
  Faults.Breaker.success b;
  state_is Faults.Breaker.Closed "probe success closes";
  check (Alcotest.float 1e-9) "half_open_closed counted" (hc0 +. 1.0)
    (transition_count "half_open_closed");
  Faults.Breaker.failure ~now:2.0 b;
  Faults.Breaker.failure ~now:2.0 b;
  state_is Faults.Breaker.Open "re-opens on fresh failures";
  if not (Faults.Breaker.allow ~now:4.0 b) then
    Alcotest.fail "second cooldown must admit a probe";
  Faults.Breaker.failure ~now:4.0 b;
  state_is Faults.Breaker.Open "probe failure re-opens";
  check (Alcotest.float 1e-9) "half_open_open counted" (ho0 +. 1.0)
    (transition_count "half_open_open");
  check Alcotest.int "three trips recorded" 3 (Faults.Breaker.trips b);
  let text = Obs.Export.to_prometheus Obs.Registry.default in
  check Alcotest.bool "transition counters exported" true
    (contains text "unicert_breaker_transitions_total")

(* --- Wire: seal/open round trip, torn and corrupted bodies --- *)

let test_wire_roundtrip () =
  let lines = [ "sth 42 deadbeef"; "consistency 1 2 0" ] in
  let body = Wire.seal lines in
  check Alcotest.bool "sealed body valid" true (Wire.valid body);
  (match Wire.open_ body with
  | Some got -> check (Alcotest.list Alcotest.string) "payload" lines got
  | None -> Alcotest.fail "seal/open round trip failed");
  let torn = String.sub body 0 (String.length body - 5) in
  check Alcotest.bool "torn body rejected" false (Wire.valid torn);
  if Wire.open_ torn <> None then Alcotest.fail "torn body must not open";
  let flipped = Bytes.of_string body in
  Bytes.set flipped 2 (Char.chr (Char.code (Bytes.get flipped 2) lxor 0x40));
  if Wire.open_ (Bytes.to_string flipped) <> None then
    Alcotest.fail "bit-flipped body must not open"

(* --- Server: paging, STH, consistency proofs --- *)

let mk_server () =
  let log = Ctlog.Log.create ~name:"srv-test" in
  for i = 0 to 9 do
    ignore (Ctlog.Log.add_chain log (Printf.sprintf "der-%02d" i))
  done;
  (log, Ctlog.Server.create ~page_cap:4 ~name:"srv-test" log)

let open_exn body =
  match Wire.open_ body with
  | Some lines -> lines
  | None -> Alcotest.fail "server body failed its own checksum"

let test_server_pages () =
  let log, srv = mk_server () in
  (match open_exn (Ctlog.Server.handle srv (req 0)) with
  | hdr :: entries ->
      check Alcotest.string "first page header" "entries 0 4" hdr;
      check Alcotest.int "page_cap honoured" 4 (List.length entries);
      check Alcotest.string "first entry" ("0 " ^ Wire.to_hex "der-00")
        (List.hd entries)
  | [] -> Alcotest.fail "empty page body");
  (match open_exn (Ctlog.Server.handle srv (req 8)) with
  | hdr :: entries ->
      check Alcotest.string "tail page header" "entries 8 2" hdr;
      check Alcotest.int "tail page short" 2 (List.length entries)
  | [] -> Alcotest.fail "empty tail body");
  (match open_exn (Ctlog.Server.handle srv (req 10)) with
  | hdr :: _ ->
      check Alcotest.bool "past-the-end start is a 400" true
        (contains hdr "error 400")
  | [] -> Alcotest.fail "empty error body");
  match
    open_exn
      (Ctlog.Server.handle srv
         { Transport.log = "srv-test"; endpoint = "get-sth"; page = 0 })
  with
  | [ sth ] ->
      check Alcotest.string "sth advertises the published root"
        (Printf.sprintf "sth 10 %s"
           (Wire.to_hex (Ctlog.Merkle.root_of_range (Ctlog.Log.tree log) 10)))
        sth
  | _ -> Alcotest.fail "get-sth must answer exactly one line"

let test_server_consistency () =
  let log, srv = mk_server () in
  let tree = Ctlog.Log.tree log in
  match
    open_exn
      (Ctlog.Server.handle srv
         { Transport.log = "srv-test"; endpoint = "get-consistency/10"; page = 4 })
  with
  | hdr :: proof_hex ->
      check Alcotest.bool "consistency header" true (contains hdr "consistency 4 10");
      let proof = List.filter_map Wire.of_hex proof_hex in
      check Alcotest.int "proof nodes all decode" (List.length proof_hex)
        (List.length proof);
      check Alcotest.bool "proof verifies" true
        (Ctlog.Merkle.verify_consistency ~old_size:4
           ~old_root:(Ctlog.Merkle.root_of_range tree 4) ~new_size:10
           ~new_root:(Ctlog.Merkle.root_of_range tree 10) ~proof);
      check Alcotest.bool "proof rejects a forged old root" false
        (Ctlog.Merkle.verify_consistency ~old_size:4
           ~old_root:(String.make 32 '\x00') ~new_size:10
           ~new_root:(Ctlog.Merkle.root_of_range tree 10) ~proof)
  | [] -> Alcotest.fail "empty consistency body"

(* --- Fetch: end-to-end sessions over the simulated logs --- *)

let small_cfg ?(fault_rate = 0.0) ?(down = []) ?(equivocate = [])
    ?(page_cap = Ctlog.Server.default_page_cap) () =
  { Fetch.default_cfg with
    Fetch.logs = 4;
    net_seed = Some 99;
    fault_rate;
    down;
    equivocate;
    page_cap }

let item_fp = function
  | Fetch.Got (i, e) ->
      Printf.sprintf "%d got %s" i
        (Digest.to_hex
           (Digest.string (X509.Certificate.to_pem e.Ctlog.Dataset.cert)))
  | Fetch.Undecodable (i, der, err) ->
      Printf.sprintf "%d bad %s %s" i
        (Digest.to_hex (Digest.string der))
        (Faults.Error.class_name err)

let fps items = String.concat "\n" (List.map item_fp items)

let assert_ascending items =
  ignore
    (List.fold_left
       (fun prev it ->
         let i = Fetch.item_index it in
         if i <= prev then Alcotest.failf "indices not ascending at %d" i;
         i)
       (-1) items)

let sum_delivered covs = List.fold_left (fun a c -> a + c.Fetch.delivered) 0 covs
let sum_retries covs = List.fold_left (fun a c -> a + c.Fetch.retries) 0 covs

let assert_complete covs =
  List.iter
    (fun c ->
      if not (Fetch.coverage_complete c) then
        Alcotest.failf "log %s incomplete: %d/%d delivered" c.Fetch.log
          c.Fetch.delivered c.Fetch.expected)
    covs

let test_fetch_clean () =
  let items, covs = Fetch.corpus ~scale:64 ~seed:5 (small_cfg ()) in
  check Alcotest.int "one coverage row per log" 4 (List.length covs);
  assert_complete covs;
  assert_ascending items;
  List.iter
    (function
      | Fetch.Got _ -> ()
      | Fetch.Undecodable (i, _, _) ->
          Alcotest.failf "clean fetch yielded undecodable index %d" i)
    items;
  check Alcotest.int "every delivered entry surfaced" (sum_delivered covs)
    (List.length items)

let test_fetch_faulty_identical () =
  let clean = fps (fst (Fetch.corpus ~scale:64 ~seed:5 (small_cfg ()))) in
  let items, covs =
    Fetch.corpus ~scale:64 ~seed:5 (small_cfg ~fault_rate:0.2 ~page_cap:4 ())
  in
  assert_complete covs;
  if sum_retries covs = 0 then
    Alcotest.fail "a 20% fault rate must force retries";
  check Alcotest.string "faulty run delivers the clean bytes" clean (fps items)

let test_fetch_split_view () =
  let cfg =
    small_cfg ~page_cap:4 ~equivocate:[ (Fetch.log_name 1, 1, 2) ] ()
  in
  let items, covs = Fetch.corpus ~scale:64 ~seed:5 cfg in
  let forked = List.find (fun c -> c.Fetch.log = Fetch.log_name 1) covs in
  check Alcotest.bool "split view flagged" true forked.Fetch.split_view;
  if Fetch.coverage_complete forked then
    Alcotest.fail "an equivocating log cannot count as complete coverage";
  if forked.Fetch.quarantined = 0 then
    Alcotest.fail "the inconsistent range must be quarantined";
  List.iter
    (fun c ->
      if c.Fetch.log <> Fetch.log_name 1 && not (Fetch.coverage_complete c) then
        Alcotest.failf "honest log %s dragged down" c.Fetch.log)
    covs;
  let integrity =
    List.exists
      (function
        | Fetch.Undecodable (_, _, Faults.Error.Integrity _) -> true
        | _ -> false)
      items
  in
  check Alcotest.bool "quarantined items carry Integrity provenance" true
    integrity

let test_fetch_down_abandoned () =
  let cfg = small_cfg ~down:[ Fetch.log_name 2 ] () in
  let items, covs = Fetch.corpus ~scale:64 ~seed:5 cfg in
  let dead = List.find (fun c -> c.Fetch.log = Fetch.log_name 2) covs in
  (match dead.Fetch.abandoned with
  | Some _ -> ()
  | None -> Alcotest.fail "a dead log must be abandoned, not hang the run");
  check Alcotest.int "dead log delivers nothing" 0 dead.Fetch.delivered;
  List.iter
    (fun c ->
      if c.Fetch.log <> Fetch.log_name 2 && not (Fetch.coverage_complete c) then
        Alcotest.failf "healthy log %s dragged down" c.Fetch.log)
    covs;
  check Alcotest.int "survivors still delivered" (sum_delivered covs)
    (List.length items)

let test_fetch_resume_after_kill () =
  let dir = tmp_dir "unicert-net-resume" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let base = Filename.concat dir "ckpt" in
      let cfg = small_cfg ~page_cap:2 () in
      let full = fps (fst (Fetch.corpus ~scale:64 ~seed:5 cfg)) in
      let _, covs1 =
        Fetch.corpus ~scale:64 ~seed:5 ~checkpoint:base ~stop_after_pages:2 cfg
      in
      if List.for_all Fetch.coverage_complete covs1 then
        Alcotest.fail "the kill hook must leave the fetch unfinished";
      let items2, covs2 =
        Fetch.corpus ~scale:64 ~seed:5 ~checkpoint:base ~resume:true cfg
      in
      assert_complete covs2;
      check Alcotest.string "resumed run delivers the full-run bytes" full
        (fps items2))

let test_fetch_jobs_deterministic () =
  let cfg = small_cfg ~fault_rate:0.15 ~page_cap:4 () in
  let run jobs = Fetch.corpus ~scale:96 ~seed:7 ~jobs cfg in
  let items1, covs1 = run 1 in
  let items4, covs4 = run 4 in
  let items4', covs4' = run 4 in
  check Alcotest.string "jobs=1 == jobs=4" (fps items1) (fps items4);
  check Alcotest.string "jobs=4 rerun identical" (fps items4) (fps items4');
  check Alcotest.bool "coverage identical across jobs" true
    (covs1 = covs4 && covs4 = covs4')

let test_fetch_mutator_drop () =
  let m = Faults.Mutator.plan ~seed:77 ~rate:0.15 () in
  let cfg = small_cfg () in
  let items_m, covs_m = Fetch.corpus ~scale:64 ~seed:5 ~mutator:m cfg in
  let items_d, covs_d = Fetch.corpus ~scale:64 ~seed:5 ~mutator:m ~drop:true cfg in
  assert_complete covs_m;
  assert_complete covs_d;
  let corrupt =
    List.exists (function Fetch.Undecodable _ -> true | _ -> false) items_m
  in
  check Alcotest.bool "corrupted blobs surface as undecodable" true corrupt;
  List.iter
    (function
      | Fetch.Undecodable (i, _, _) ->
          Alcotest.failf "drop mode delivered corrupt index %d" i
      | Fetch.Got _ -> ())
    items_d;
  let gots items =
    String.concat "\n"
      (List.filter_map
         (function Fetch.Got _ as it -> Some (item_fp it) | _ -> None)
         items)
  in
  check Alcotest.string "survivors identical between corrupt and drop"
    (gots items_m) (gots items_d)

let suite =
  [
    Alcotest.test_case "backoff-bounds" `Quick test_backoff_bounds;
    Alcotest.test_case "fault-purity" `Quick test_fault_purity;
    Alcotest.test_case "virtual-clock" `Quick test_clock;
    Alcotest.test_case "token-bucket" `Quick test_bucket;
    Alcotest.test_case "transport-kinds" `Quick test_transport_kinds;
    Alcotest.test_case "transport-down" `Quick test_transport_down;
    Alcotest.test_case "client-clean" `Quick test_client_clean;
    Alcotest.test_case "client-retry" `Quick test_client_retry;
    Alcotest.test_case "client-attempts-exhausted" `Quick
      test_client_attempts_exhausted;
    Alcotest.test_case "client-budget-exhausted" `Quick
      test_client_budget_exhausted;
    Alcotest.test_case "client-hedge" `Quick test_client_hedge;
    Alcotest.test_case "breaker-transitions" `Quick test_breaker_transitions;
    Alcotest.test_case "wire-roundtrip" `Quick test_wire_roundtrip;
    Alcotest.test_case "server-pages" `Quick test_server_pages;
    Alcotest.test_case "server-consistency" `Quick test_server_consistency;
    Alcotest.test_case "fetch-clean" `Quick test_fetch_clean;
    Alcotest.test_case "fetch-faulty-identical" `Quick
      test_fetch_faulty_identical;
    Alcotest.test_case "fetch-split-view" `Quick test_fetch_split_view;
    Alcotest.test_case "fetch-down-abandoned" `Quick test_fetch_down_abandoned;
    Alcotest.test_case "fetch-resume-after-kill" `Quick
      test_fetch_resume_after_kill;
    Alcotest.test_case "fetch-jobs-deterministic" `Quick
      test_fetch_jobs_deterministic;
    Alcotest.test_case "fetch-mutator-drop" `Quick test_fetch_mutator_drop;
  ]
