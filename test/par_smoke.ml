(* @par-smoke: end-to-end determinism check for the sharded pipeline,
   attached to @runtest.

   Runs the full analysis twice — sequentially and across 4 worker
   domains — and asserts the multicore contract: the rendered report is
   byte-identical, and with seeded corruption the quarantine sidecar
   folded from the per-shard files is byte-identical too. *)

let scale = 400
let seed = 6
let rate = 0.05

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("par-smoke: FAIL: " ^ m);
      exit 1)
    fmt

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let report t = Format.asprintf "%a" Unicert.Report.all t

let () =
  let sequential = report (Unicert.Pipeline.run ~scale ~seed ~jobs:1 ()) in
  let parallel = report (Unicert.Pipeline.run ~scale ~seed ~jobs:4 ()) in
  if parallel <> sequential then
    fail "report differs between --jobs 1 and --jobs 4";

  let corrupt jobs =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "unicert-par-smoke-%d-%d" jobs (Unix.getpid ()))
    in
    rm_rf dir;
    let policy =
      { Faults.Policy.default with Faults.Policy.quarantine_dir = Some dir }
    in
    let plan = Faults.Mutator.plan ~seed ~rate () in
    let t = Unicert.Pipeline.run ~scale ~seed ~policy ~mutator:plan ~jobs () in
    (match t.Unicert.Pipeline.faults.Unicert.Pipeline.aborted with
    | Some reason -> fail "corrupt run (jobs=%d) aborted: %s" jobs reason
    | None -> ());
    let sidecar =
      Filename.concat dir (Printf.sprintf "quarantine-%d.jsonl" seed)
    in
    let bytes = read_file sidecar in
    rm_rf dir;
    (report t, bytes)
  in
  let seq_report, seq_q = corrupt 1 in
  let par_report, par_q = corrupt 4 in
  if String.length seq_q = 0 then fail "mutator hit nothing at rate %.2f" rate;
  if par_report <> seq_report then
    fail "corrupted report differs between --jobs 1 and --jobs 4";
  if par_q <> seq_q then
    fail "quarantine sidecar differs between --jobs 1 and --jobs 4";
  print_endline "par-smoke: OK"
