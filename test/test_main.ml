let () =
  Alcotest.run "unicert"
    [
      ("obs", Test_obs.suite);
      ("unicode", Test_unicode.suite);
      ("asn1", Test_asn1.suite);
      ("ucrypto", Test_ucrypto.suite);
      ("idna", Test_idna.suite);
      ("x509", Test_x509.suite);
      ("lint", Test_lint.suite);
      ("ctlog", Test_ctlog.suite);
      ("tlsparsers", Test_tlsparsers.suite);
      ("monitors", Test_monitors.suite);
      ("middlebox", Test_middlebox.suite);
      ("tlswire", Test_tlswire.suite);
      ("hostname-rules", Test_hostname_rules.suite);
      ("crl-chain", Test_crl_chain.suite);
      ("unicert", Test_unicert.suite);
      ("misc", Test_misc.suite);
      ("faults", Test_faults.suite);
      ("par", Test_par.suite);
      ("net", Test_net.suite);
      ("trace", Test_trace.suite);
      ("store", Test_store.suite);
      ("fuzz", Test_fuzz.suite);
    ]
