(* @store-smoke: end-to-end durability check, attached to @runtest.

   Exercises the crash-safe store contract the way an operator hits it:

   - a cold store-backed run renders the byte-identical report of a
     storeless run, and leaves a complete store behind;
   - a warm replay (no DER parsing, no lint execution) renders the
     same bytes again;
   - a bit flip in a sealed segment is detected by fsck, which reports
     the store degraded-but-usable (the exit-4 contract: intact data
     remains, so never a total loss);
   - fsck --repair quarantines the damaged pair, and the next run
     regenerates only the lost span, landing back on the identical
     report with the store complete again. *)

let scale = 400
let seed = 6

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("store-smoke: FAIL: " ^ m);
      exit 1)
    fmt

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let report t = Format.asprintf "%a" Unicert.Report.all t

let () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "unicert-store-smoke-%d" (Unix.getpid ()))
  in
  rm_rf dir;

  let plain = report (Unicert.Pipeline.run ~scale ~seed ()) in

  (* Cold build. *)
  let cold = report (Unicert.Pipeline.run ~scale ~seed ~jobs:2 ~store:dir ()) in
  if cold <> plain then fail "cold store-backed report differs from storeless run";
  if not (Store.Db.complete (Store.Db.open_ro ~dir)) then
    fail "store not complete after the cold build";

  (* Warm replay. *)
  let warm = report (Unicert.Pipeline.run ~scale ~seed ~store:dir ()) in
  if warm <> plain then fail "warm replay report differs";

  (* Corrupt a sealed cert segment: fsck must detect it and report the
     store degraded-but-usable. *)
  let seg =
    Sys.readdir dir |> Array.to_list
    |> List.find_opt (fun f ->
           String.length f > 6 && String.sub f 0 6 = "certs-"
           && Filename.check_suffix f ".seg")
    |> function
    | Some f -> f
    | None -> fail "no sealed cert segment found in %s" dir
  in
  ignore (Store.Chaos.flip_bit_in_file ~seed:7 (Filename.concat dir seg));
  let r = Store.Db.fsck ~dir () in
  if not (List.exists (fun (i : Store.Db.issue) -> i.Store.Db.file = seg) r.Store.Db.issues)
  then fail "fsck missed the flipped bit in %s" seg;
  if not r.Store.Db.usable then
    fail "fsck declared the store unusable though intact spans remain";

  (* Repair, then rebuild only the lost span. *)
  let r = Store.Db.fsck ~repair:true ~dir () in
  if not r.Store.Db.repaired then fail "fsck --repair repaired nothing";
  if not (Sys.file_exists (Filename.concat dir (seg ^ ".quarantined"))) then
    fail "damaged segment was not quarantined";
  let rebuilt = report (Unicert.Pipeline.run ~scale ~seed ~jobs:2 ~store:dir ()) in
  if rebuilt <> plain then fail "rebuilt report differs after repair";
  if not (Store.Db.complete (Store.Db.open_ro ~dir)) then
    fail "store not complete after the rebuild";

  rm_rf dir;
  Printf.printf
    "store-smoke: OK (%d certs; cold=warm=storeless; flip detected, \
     quarantined, span rebuilt identically)\n"
    scale
