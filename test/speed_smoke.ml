(* @speed-smoke: fast guard on the fused analysis engine, attached to
   @runtest.

   Two checks: (1) a small corpus rendered through the fused fact-table
   engine is byte-identical to the retained legacy (per-stage) engine;
   (2) the recorded BENCH_speed.json baseline still matches the live
   engine interface — the lint registry fingerprint it embeds must
   equal the current {!Unicert.Pipeline.lints_signature}, so a lint
   added or removed without re-running the benchmark fails tier-1. *)

let scale = 300
let seed = 3

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("speed-smoke: FAIL: " ^ m);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let report t = Format.asprintf "%a" Unicert.Report.all t

let () =
  Obs.Progress.set_override (Some false);
  Unicert.Pipeline.use_reference_engine false;
  let fused = report (Unicert.Pipeline.run ~scale ~seed ()) in
  Unicert.Pipeline.use_reference_engine true;
  let legacy = report (Unicert.Pipeline.run ~scale ~seed ()) in
  Unicert.Pipeline.use_reference_engine false;
  if fused <> legacy then
    fail "fused report differs from the legacy engine at scale %d" scale;

  let bench_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_speed.json"
  in
  let json =
    try read_file bench_path
    with Sys_error m -> fail "cannot read recorded benchmark %s: %s" bench_path m
  in
  let expected =
    Ucrypto.Sha256.hex (Unicert.Pipeline.lints_signature ())
  in
  if not (contains ~needle:("\"" ^ expected ^ "\"") json) then
    fail
      "BENCH_speed.json is stale: its lints_signature_sha256 does not match \
       the live lint registry (%s) — re-run bench_speed"
      expected;
  print_endline "speed-smoke: OK"
