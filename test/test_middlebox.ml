(* Tests for the middlebox engines, client validators, and the
   obfuscation experiment. *)

let check = Alcotest.check

let ca = X509.Certificate.mock_keypair ~seed:"middlebox-test-ca" ()

let cert ?(cns = []) ?(org = None) sans =
  let subject =
    (match org with Some o -> [ X509.Dn.atv X509.Attr.Organization_name o ] | None -> [])
    @ List.map (fun cn -> X509.Dn.atv X509.Attr.Common_name cn) cns
  in
  let subject = if subject = [] then [ X509.Dn.atv X509.Attr.Common_name "x.test" ] else subject in
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "MB CA") ])
      ~subject:(X509.Dn.single subject)
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki ca)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        (if sans = [] then []
         else
           [ X509.Extension.subject_alt_name
               (List.map (fun d -> X509.General_name.Dns_name d) sans) ])
      ()
  in
  X509.Certificate.sign ca tbs

(* --- engines ------------------------------------------------------------ *)

let test_cn_position () =
  let c = cert ~cns:[ "first.example"; "last.example" ] [ "first.example" ] in
  check (Alcotest.option Alcotest.string) "snort first" (Some "first.example")
    (Middlebox.Engine.snort.Middlebox.Engine.extract_cn c);
  check (Alcotest.option Alcotest.string) "zeek last" (Some "last.example")
    (Middlebox.Engine.zeek.Middlebox.Engine.extract_cn c)

let test_zeek_san_filter () =
  let c = cert ~cns:[ "x.test" ] [ "ok.example"; "b\xC3\xBCcher.example" ] in
  check (Alcotest.list Alcotest.string) "zeek drops non-ia5" [ "ok.example" ]
    (Middlebox.Engine.zeek.Middlebox.Engine.extract_sans c);
  check Alcotest.int "snort keeps both" 2
    (List.length (Middlebox.Engine.snort.Middlebox.Engine.extract_sans c))

let test_case_sensitivity () =
  let c = cert ~org:(Some "EVIL Entity") [ "x.test" ] in
  let rule = { Middlebox.Engine.field = `Org; pattern = "evil entity" } in
  check Alcotest.bool "snort matches case-insensitively" true
    (Middlebox.Engine.matches Middlebox.Engine.snort rule c);
  check Alcotest.bool "suricata misses" false
    (Middlebox.Engine.matches Middlebox.Engine.suricata rule c)

(* --- clients ------------------------------------------------------------ *)

let validate (c : Middlebox.Clients.t) cert ~hostname =
  Result.is_ok (c.Middlebox.Clients.validate cert ~hostname)

let test_client_basic_match () =
  let c = cert ~cns:[ "a.example.com" ] [ "a.example.com" ] in
  List.iter
    (fun client ->
      check Alcotest.bool (client.Middlebox.Clients.name ^ " matches") true
        (validate client c ~hostname:"a.example.com");
      check Alcotest.bool (client.Middlebox.Clients.name ^ " rejects other") false
        (validate client c ~hostname:"b.example.com"))
    Middlebox.Clients.all

let test_client_wildcard () =
  let c = cert ~cns:[ "*.example.com" ] [ "*.example.com" ] in
  check Alcotest.bool "wildcard matches" true
    (validate Middlebox.Clients.libcurl c ~hostname:"www.example.com");
  check Alcotest.bool "wildcard not apex" false
    (validate Middlebox.Clients.libcurl c ~hostname:"example.com");
  check Alcotest.bool "wildcard one level only" false
    (validate Middlebox.Clients.libcurl c ~hostname:"a.b.example.com")

let test_client_idn_handling () =
  (* Proper A-label SAN: everyone accepts the U-label hostname. *)
  let good = cert ~cns:[ "xn--bcher-kva.example.com" ] [ "xn--bcher-kva.example.com" ] in
  List.iter
    (fun client ->
      check Alcotest.bool (client.Middlebox.Clients.name ^ " idn via alabel") true
        (validate client good ~hostname:"b\xC3\xBCcher.example.com"))
    Middlebox.Clients.all;
  (* Raw U-label SAN ([P2.2]): only the Latin-1-tolerant clients accept. *)
  let raw = cert ~cns:[ "b\xC3\xBCcher.example.com" ] [ "b\xC3\xBCcher.example.com" ] in
  check Alcotest.bool "libcurl rejects raw u-label" false
    (validate Middlebox.Clients.libcurl raw ~hostname:"b\xC3\xBCcher.example.com");
  check Alcotest.bool "urllib3 accepts raw u-label" true
    (validate Middlebox.Clients.urllib3 raw ~hostname:"b\xC3\xBCcher.example.com");
  check Alcotest.bool "requests accepts raw u-label" true
    (validate Middlebox.Clients.requests raw ~hostname:"b\xC3\xBCcher.example.com")

let test_client_no_san () =
  let c = cert ~cns:[ "nosan.example" ] [] in
  List.iter
    (fun client ->
      check Alcotest.bool (client.Middlebox.Clients.name ^ " requires SAN") false
        (validate client c ~hostname:"nosan.example"))
    Middlebox.Clients.all

(* --- obfuscation --------------------------------------------------------- *)

let test_table3_pairs_detected () =
  List.iter
    (fun s ->
      List.iter
        (fun (a, b) ->
          check Alcotest.bool
            (Printf.sprintf "%s: %s ~ %s" (Middlebox.Obfuscation.strategy_name s) a b)
            true
            (Middlebox.Obfuscation.is_variant_pair a b))
        (Middlebox.Obfuscation.examples s))
    Middlebox.Obfuscation.strategies

let test_variant_pair_negative () =
  check Alcotest.bool "unrelated orgs" false
    (Middlebox.Obfuscation.is_variant_pair "Acme Widgets" "Globex Corp");
  check Alcotest.bool "identical not a variant" false
    (Middlebox.Obfuscation.is_variant_pair "Acme" "Acme")

let test_apply_produces_variants () =
  let g = Ucrypto.Prng.create 77 in
  List.iter
    (fun s ->
      let v = Middlebox.Obfuscation.apply g s "Evil Entity Corp" in
      check Alcotest.bool
        (Middlebox.Obfuscation.strategy_name s ^ " changes the value")
        true
        (v <> "Evil Entity Corp"))
    Middlebox.Obfuscation.strategies

let test_evasion_matrix () =
  let evs = Middlebox.Obfuscation.evasion_matrix () in
  (* Suricata (case sensitive) is evaded by case conversion; the
     case-insensitive engines are not. *)
  let find engine strategy =
    List.find
      (fun (e : Middlebox.Obfuscation.evasion) ->
        e.Middlebox.Obfuscation.engine = engine && e.Middlebox.Obfuscation.strategy = strategy)
      evs
  in
  check Alcotest.bool "suricata evaded by case" true
    (find "Suricata" Middlebox.Obfuscation.Case_conversion).Middlebox.Obfuscation.evaded;
  check Alcotest.bool "snort catches case variant" false
    (find "Snort" Middlebox.Obfuscation.Case_conversion).Middlebox.Obfuscation.evaded;
  check Alcotest.bool "whitespace evades everyone" true
    (List.for_all
       (fun (e : Middlebox.Obfuscation.evasion) ->
         e.Middlebox.Obfuscation.strategy <> Middlebox.Obfuscation.Whitespace_substitution
         || e.Middlebox.Obfuscation.evaded)
       evs)

let test_findings () =
  List.iter
    (fun (f : Middlebox.Evasion.finding) ->
      check Alcotest.bool f.Middlebox.Evasion.id true f.Middlebox.Evasion.demonstrated)
    (Middlebox.Evasion.all_findings ());
  let accepts name l = List.assoc name l in
  let ul = Middlebox.Evasion.ulabel_san_client_acceptance () in
  check Alcotest.bool "urllib3 accepts" true (accepts "urllib3" ul);
  check Alcotest.bool "libcurl rejects" false (accepts "libcurl" ul)

let suite =
  [
    Alcotest.test_case "cn position divergence" `Quick test_cn_position;
    Alcotest.test_case "zeek san filter" `Quick test_zeek_san_filter;
    Alcotest.test_case "case sensitivity" `Quick test_case_sensitivity;
    Alcotest.test_case "client basic match" `Quick test_client_basic_match;
    Alcotest.test_case "client wildcard" `Quick test_client_wildcard;
    Alcotest.test_case "client idn handling" `Quick test_client_idn_handling;
    Alcotest.test_case "client requires san" `Quick test_client_no_san;
    Alcotest.test_case "table 3 pairs detected" `Quick test_table3_pairs_detected;
    Alcotest.test_case "variant negatives" `Quick test_variant_pair_negative;
    Alcotest.test_case "apply produces variants" `Quick test_apply_produces_variants;
    Alcotest.test_case "evasion matrix" `Quick test_evasion_matrix;
    Alcotest.test_case "section 6.2 findings" `Quick test_findings;
  ]
