(* Tests for the CRL substrate, revocation checking (including the
   §5.2 CRL-spoofing threat), certification-path validation, and the
   CT precertificate flow. *)

let check = Alcotest.check

let ca = X509.Certificate.mock_keypair ~seed:"crl-test-ca" ()
let ca_dn = X509.Dn.of_list [ (X509.Attr.Organization_name, "CRL Test CA") ]

let leaf ?(serial = "\x10\x01") ?(crldp = []) cn =
  let tbs =
    X509.Certificate.make_tbs ~serial ~issuer:ca_dn
      ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, cn) ])
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki ca)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        ([ X509.Extension.subject_alt_name [ X509.General_name.Dns_name cn ] ]
        @
        if crldp = [] then []
        else
          [ X509.Extension.crl_distribution_points
              (List.map (fun u -> X509.General_name.Uri u) crldp) ])
      ()
  in
  X509.Certificate.sign ca tbs

(* --- CRL ------------------------------------------------------------- *)

let sample_crl () =
  X509.Crl.make ~issuer:ca_dn
    ~this_update:(Asn1.Time.make 2025 2 1)
    ~next_update:(Asn1.Time.make 2025 3 1)
    ~revoked:
      [ { X509.Crl.serial = "\x10\x01"; revocation_date = Asn1.Time.make 2025 1 15 };
        { X509.Crl.serial = "\x10\x02"; revocation_date = Asn1.Time.make 2025 1 20 } ]
    ca

let test_crl_roundtrip () =
  let crl = sample_crl () in
  match X509.Crl.parse crl.X509.Crl.der with
  | Ok crl' ->
      check Alcotest.int "entries" 2 (List.length crl'.X509.Crl.tbs.X509.Crl.revoked);
      check Alcotest.bool "revoked member" true (X509.Crl.is_revoked crl' "\x10\x01");
      check Alcotest.bool "non-member" false (X509.Crl.is_revoked crl' "\x10\x09");
      check Alcotest.bool "signature" true
        (X509.Crl.verify ~issuer_spki:(X509.Certificate.keypair_spki ca) crl')
  | Error m -> Alcotest.fail m

let test_crl_pem () =
  let crl = sample_crl () in
  match X509.Crl.of_pem (X509.Crl.to_pem crl) with
  | Ok crl' -> check Alcotest.string "pem der" crl.X509.Crl.der crl'.X509.Crl.der
  | Error m -> Alcotest.fail m

let test_crl_tamper () =
  let crl = sample_crl () in
  let other = X509.Certificate.mock_keypair ~seed:"other-ca" () in
  check Alcotest.bool "wrong key fails" false
    (X509.Crl.verify ~issuer_spki:(X509.Certificate.keypair_spki other) crl)

let status_testable =
  Alcotest.testable
    (fun ppf s ->
      Format.fprintf ppf "%s"
        (match s with
        | X509.Crl.Good -> "good"
        | X509.Crl.Revoked -> "revoked"
        | X509.Crl.Unavailable m -> "unavailable: " ^ m))
    (fun a b ->
      match (a, b) with
      | X509.Crl.Good, X509.Crl.Good | X509.Crl.Revoked, X509.Crl.Revoked -> true
      | X509.Crl.Unavailable _, X509.Crl.Unavailable _ -> true
      | _ -> false)

let test_revocation_check () =
  let store = X509.Crl.Store.create () in
  let url = "http://crl.test/ca.crl" in
  X509.Crl.Store.publish store ~url (sample_crl ());
  let spki = X509.Certificate.keypair_spki ca in
  let revoked_cert = leaf ~serial:"\x10\x01" ~crldp:[ url ] "revoked.example" in
  let good_cert = leaf ~serial:"\x20\x05" ~crldp:[ url ] "good.example" in
  check status_testable "revoked" X509.Crl.Revoked
    (X509.Crl.check_revocation ~store ~issuer_spki:spki revoked_cert);
  check status_testable "good" X509.Crl.Good
    (X509.Crl.check_revocation ~store ~issuer_spki:spki good_cert);
  let no_crldp = leaf ~serial:"\x10\x01" "nodp.example" in
  check status_testable "no crldp" (X509.Crl.Unavailable "")
    (X509.Crl.check_revocation ~store ~issuer_spki:spki no_crldp)

let test_crl_spoofing_threat () =
  (* §5.2 impact (2): the CA publishes the CRL at the *real* location
     containing a control byte; a PyOpenSSL-style client rewrites the
     location to dots and fetches nothing — revocation silently off. *)
  let store = X509.Crl.Store.create () in
  let real = "http://ssl\x01test.com/ca.crl" in
  X509.Crl.Store.publish store ~url:real (sample_crl ());
  let spki = X509.Certificate.keypair_spki ca in
  let cert = leaf ~serial:"\x10\x01" ~crldp:[ real ] "victim.example" in
  (* A faithful client sees the revocation. *)
  check status_testable "strict client sees revocation" X509.Crl.Revoked
    (X509.Crl.check_revocation ~store ~issuer_spki:spki cert);
  (* The lenient parser rewrites controls to '.' and misses the CRL. *)
  let pyopenssl_rewrite url =
    match
      (Tlsparsers.Models.pyopenssl).Tlsparsers.Model.decode_gn Tlsparsers.Model.Crldp
        url
    with
    | Some rewritten -> rewritten
    | None -> url
  in
  check status_testable "lenient client loses revocation"
    (X509.Crl.Unavailable "")
    (X509.Crl.check_revocation ~rewrite_location:pyopenssl_rewrite ~store
       ~issuer_spki:spki cert)

(* --- chains ------------------------------------------------------------ *)

let root_kp = X509.Certificate.mock_keypair ~seed:"chain-root" ()
let root_dn = X509.Dn.of_list [ (X509.Attr.Organization_name, "Chain Root") ]
let inter_kp = X509.Certificate.mock_keypair ~seed:"chain-inter" ()
let inter_dn = X509.Dn.of_list [ (X509.Attr.Organization_name, "Chain Intermediate") ]

let make_cert ~issuer_dn ~subject_dn ~key ~signer ~extensions =
  let tbs =
    X509.Certificate.make_tbs ~issuer:issuer_dn ~subject:subject_dn
      ~not_before:(Asn1.Time.make 2024 1 1) ~not_after:(Asn1.Time.make 2026 1 1)
      ~spki:(X509.Certificate.keypair_spki key)
      ~sig_alg:X509.Certificate.Oids.mock_signature ~extensions ()
  in
  X509.Certificate.sign signer tbs

let intermediate =
  make_cert ~issuer_dn:root_dn ~subject_dn:inter_dn ~key:inter_kp ~signer:root_kp
    ~extensions:[ X509.Extension.basic_constraints ~ca:true () ]

let chain_leaf =
  make_cert ~issuer_dn:inter_dn
    ~subject_dn:(X509.Dn.of_list [ (X509.Attr.Common_name, "leaf.example") ])
    ~key:(X509.Certificate.mock_keypair ~seed:"chain-leaf" ())
    ~signer:inter_kp ~extensions:[]

let anchors = [ X509.Chain.anchor_of_keypair root_dn root_kp ]

let test_chain_success () =
  match
    X509.Chain.verify ~at:(Asn1.Time.make 2025 1 1) ~anchors
      ~intermediates:[ intermediate ] chain_leaf
  with
  | Ok chain -> check Alcotest.int "leaf + intermediate" 2 (List.length chain)
  | Error f -> Alcotest.failf "%a" X509.Chain.pp_failure f

let test_chain_name_normalization () =
  (* Issuer DN differs only by case/whitespace: §7.1 comparison should
     still chain. *)
  let sloppy_inter_dn =
    X509.Dn.of_list [ (X509.Attr.Organization_name, "chain  INTERMEDIATE") ]
  in
  let leaf2 =
    make_cert ~issuer_dn:sloppy_inter_dn
      ~subject_dn:(X509.Dn.of_list [ (X509.Attr.Common_name, "leaf2.example") ])
      ~key:(X509.Certificate.mock_keypair ~seed:"chain-leaf2" ())
      ~signer:inter_kp ~extensions:[]
  in
  match
    X509.Chain.verify ~at:(Asn1.Time.make 2025 1 1) ~anchors
      ~intermediates:[ intermediate ] leaf2
  with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "normalized chaining failed: %a" X509.Chain.pp_failure f

let test_chain_failures () =
  (* Expired. *)
  (match
     X509.Chain.verify ~at:(Asn1.Time.make 2030 1 1) ~anchors
       ~intermediates:[ intermediate ] chain_leaf
   with
  | Error (X509.Chain.Certificate_expired 0) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected expiry at depth 0");
  (* Unknown issuer. *)
  (match
     X509.Chain.verify ~at:(Asn1.Time.make 2025 1 1) ~anchors ~intermediates:[]
       chain_leaf
   with
  | Error (X509.Chain.No_issuer_found _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected missing issuer");
  (* Intermediate without CA bit. *)
  let non_ca_inter =
    make_cert ~issuer_dn:root_dn ~subject_dn:inter_dn ~key:inter_kp ~signer:root_kp
      ~extensions:[]
  in
  match
    X509.Chain.verify ~at:(Asn1.Time.make 2025 1 1) ~anchors
      ~intermediates:[ non_ca_inter ] chain_leaf
  with
  | Error (X509.Chain.Issuer_not_ca 1) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected non-CA rejection"

let test_name_constraints () =
  (* An intermediate constrained to .corp.example: in-scope leaves
     chain, out-of-scope leaves fail. *)
  let constrained_inter =
    make_cert ~issuer_dn:root_dn ~subject_dn:inter_dn ~key:inter_kp ~signer:root_kp
      ~extensions:
        [ X509.Extension.basic_constraints ~ca:true ();
          X509.Extension.name_constraints
            ~permitted:[ X509.General_name.Dns_name "corp.example" ]
            ~excluded:[ X509.General_name.Dns_name "secret.corp.example" ]
            () ]
  in
  let leaf_with sans =
    let tbs =
      X509.Certificate.make_tbs ~issuer:inter_dn
        ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, List.hd sans) ])
        ~not_before:(Asn1.Time.make 2024 1 1) ~not_after:(Asn1.Time.make 2026 1 1)
        ~spki:(X509.Certificate.keypair_spki (X509.Certificate.mock_keypair ~seed:"nc-leaf" ()))
        ~sig_alg:X509.Certificate.Oids.mock_signature
        ~extensions:
          [ X509.Extension.subject_alt_name
              (List.map (fun d -> X509.General_name.Dns_name d) sans) ]
        ()
    in
    X509.Certificate.sign inter_kp tbs
  in
  let run leaf =
    X509.Chain.verify ~at:(Asn1.Time.make 2025 1 1) ~anchors
      ~intermediates:[ constrained_inter ] leaf
  in
  (match run (leaf_with [ "app.corp.example" ]) with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "in-scope leaf failed: %a" X509.Chain.pp_failure f);
  (match run (leaf_with [ "evil.example" ]) with
  | Error (X509.Chain.Name_constraint_violated "evil.example") -> ()
  | Ok _ | Error _ -> Alcotest.fail "out-of-permitted leaf must fail");
  (match run (leaf_with [ "db.secret.corp.example" ]) with
  | Error (X509.Chain.Name_constraint_violated _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "excluded subtree must fail");
  (* The §5.2 forgery angle: a single dNSName whose *string rendering*
     smuggles an out-of-scope name.  Structured checking sees one
    (in-scope-violating) name and fails closed. *)
  match run (leaf_with [ "app.corp.example, DNS:evil.example" ]) with
  | Error (X509.Chain.Name_constraint_violated _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "forged subfield must not slip through"

let test_name_constraints_roundtrip () =
  let e =
    X509.Extension.name_constraints
      ~permitted:[ X509.General_name.Dns_name "a.example" ]
      ~excluded:
        [ X509.General_name.Dns_name "b.example"; X509.General_name.Dns_name "c.example" ]
      ()
  in
  match X509.Extension.parse_name_constraints e.X509.Extension.value with
  | Ok (permitted, excluded) ->
      check Alcotest.int "permitted" 1 (List.length permitted);
      check Alcotest.int "excluded" 2 (List.length excluded)
  | Error m -> Alcotest.fail m

(* --- precertificate flow ------------------------------------------------ *)

let test_precert_flow () =
  let log = Ctlog.Log.create ~name:"precert-flow" in
  let tbs =
    X509.Certificate.make_tbs ~issuer:ca_dn
      ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, "sct.example") ])
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki ca)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        [ X509.Extension.subject_alt_name [ X509.General_name.Dns_name "sct.example" ] ]
      ()
  in
  let issued = Ctlog.Submission.issue_with_sct log ca tbs in
  check Alcotest.bool "precert poisoned" true
    (X509.Certificate.is_precertificate issued.Ctlog.Submission.precert);
  check Alcotest.bool "final not poisoned" false
    (X509.Certificate.is_precertificate issued.Ctlog.Submission.final);
  check Alcotest.int "log has both entries" 2 (Ctlog.Log.size log);
  check Alcotest.int "one embedded sct" 1
    (List.length (Ctlog.Submission.embedded_scts issued.Ctlog.Submission.final));
  check Alcotest.bool "embedded sct verifies" true
    (Ctlog.Submission.verify_embedded log issued.Ctlog.Submission.final);
  (* A certificate without SCTs does not verify. *)
  let bare = leaf "bare.example" in
  check Alcotest.bool "bare cert has no sct" false
    (Ctlog.Submission.verify_embedded log bare)

let test_sct_serialization () =
  let sct = { Ctlog.Log.log_id = String.make 32 'L'; timestamp = 1234; signature = "sig-bytes" } in
  match Ctlog.Submission.sct_of_bytes (Ctlog.Submission.sct_to_bytes sct) with
  | Ok sct' ->
      check Alcotest.string "log id" sct.Ctlog.Log.log_id sct'.Ctlog.Log.log_id;
      check Alcotest.int "timestamp" sct.Ctlog.Log.timestamp sct'.Ctlog.Log.timestamp;
      check Alcotest.string "signature" sct.Ctlog.Log.signature sct'.Ctlog.Log.signature
  | Error m -> Alcotest.fail m

(* --- OCSP ------------------------------------------------------------ *)

let test_ocsp () =
  let responder = X509.Ocsp.Responder.create ~issuer_dn:ca_dn ca in
  let spki = X509.Certificate.keypair_spki ca in
  let now = Asn1.Time.make 2025 2 1 in
  let good_cert = leaf ~serial:"\x42\x01" "ocsp-good.example" in
  let bad_cert = leaf ~serial:"\x42\x02" "ocsp-bad.example" in
  X509.Ocsp.Responder.revoke responder ~serial:"\x42\x02" ~at:(Asn1.Time.make 2025 1 20);
  (match X509.Ocsp.check ~responder ~issuer_spki:spki ~now good_cert with
  | Some X509.Ocsp.Good -> ()
  | _ -> Alcotest.fail "expected Good");
  (match X509.Ocsp.check ~responder ~issuer_spki:spki ~now bad_cert with
  | Some (X509.Ocsp.Revoked _) -> ()
  | _ -> Alcotest.fail "expected Revoked");
  (* A cert from a different issuer yields Unknown. *)
  let other = X509.Certificate.mock_keypair ~seed:"ocsp-other" () in
  let foreign_id =
    X509.Ocsp.cert_id ~issuer_spki:(X509.Certificate.keypair_spki other) good_cert
  in
  (match X509.Ocsp.Responder.query responder ~now foreign_id with
  | Ok (r, _) -> check Alcotest.bool "unknown" true (r.X509.Ocsp.status = X509.Ocsp.Unknown)
  | Error m -> Alcotest.fail m);
  (* CertID round trip. *)
  let id = X509.Ocsp.cert_id ~issuer_spki:spki good_cert in
  (match X509.Ocsp.cert_id_of_der (X509.Ocsp.cert_id_to_der id) with
  | Ok id' -> check Alcotest.bool "cert id roundtrip" true (id = id')
  | Error m -> Alcotest.fail m);
  (* Signature binding: a tampered status must not verify. *)
  (match X509.Ocsp.Responder.query responder ~now id with
  | Ok (r, signature) ->
      let forged = { r with X509.Ocsp.status = X509.Ocsp.Revoked now } in
      check Alcotest.bool "forged response rejected" false
        (X509.Ocsp.Responder.verify ~issuer_spki:spki forged ~signature)
  | Error m -> Alcotest.fail m);
  (* The short-lived-certificates endgame: the responder goes silent. *)
  X509.Ocsp.Responder.set_short_lived responder true;
  check Alcotest.bool "discontinued responder" true
    (X509.Ocsp.check ~responder ~issuer_spki:spki ~now good_cert = None)

(* --- rulebook ------------------------------------------------------------ *)

let test_rulebook () =
  check Alcotest.int "95 rules" 95 (List.length Lint.Rulebook.all);
  let ids = List.map (fun (r : Lint.Rulebook.rule) -> r.Lint.Rulebook.id) Lint.Rulebook.all in
  check Alcotest.int "unique ids" 95 (List.length (List.sort_uniq compare ids));
  (* 1:1 with the registry. *)
  List.iter
    (fun (l : Lint.t) ->
      match Lint.Rulebook.covering_lint l.Lint.name with
      | Some r ->
          check Alcotest.bool "metadata agrees" true
            (r.Lint.Rulebook.source = l.Lint.source
            && r.Lint.Rulebook.level = l.Lint.level
            && r.Lint.Rulebook.is_new = l.Lint.is_new)
      | None -> Alcotest.failf "lint %s has no rule" l.Lint.name)
    Lint.Registry.all;
  check Alcotest.int "new rules" 50
    (List.length (List.filter (fun (r : Lint.Rulebook.rule) -> r.Lint.Rulebook.is_new) Lint.Rulebook.all));
  (* JSON output is well-formed enough to be line-parseable. *)
  let buf = Buffer.create 4096 in
  Lint.Rulebook.render_catalogue (Format.formatter_of_buffer buf);
  check Alcotest.bool "catalogue non-empty" true (Buffer.length buf > 1000)

(* --- browser display policy ---------------------------------------------- *)

let test_display_policy () =
  let b = Unicert.Browsers.chromium in
  check Alcotest.string "clean idn shown as unicode" "b\xC3\xBCcher.de"
    (Unicert.Browsers.display_hostname b "xn--bcher-kva.de");
  check Alcotest.string "deceptive label stays punycode" "xn--www-hn0a.example.com"
    (Unicert.Browsers.display_hostname b "xn--www-hn0a.example.com");
  (* Mixed Latin/Cyrillic (the homograph case) stays punycode... *)
  let mixed =
    match Idna.Punycode.encode_utf8 "p\xD0\xB0ypal" with
    | Ok body -> "xn--" ^ body
    | Error _ -> assert false
  in
  check Alcotest.string "mixed-script stays punycode" (mixed ^ ".com")
    (Unicert.Browsers.display_hostname b (mixed ^ ".com"));
  (* ...but a whole-script Cyrillic confusable displays in Unicode — the
     gap [G1.2] exploits. *)
  let whole =
    match
      Idna.Punycode.encode_utf8
        "\xD1\x80\xD0\xB0\xD1\x83\xD1\x80\xD0\xB0\xD0\xBB" (* раурал *)
    with
    | Ok body -> "xn--" ^ body
    | Error _ -> assert false
  in
  check Alcotest.bool "whole-script confusable displays unicode" true
    (Unicert.Browsers.display_hostname b (whole ^ ".com") <> whole ^ ".com")

let suite =
  [
    Alcotest.test_case "crl roundtrip" `Quick test_crl_roundtrip;
    Alcotest.test_case "crl pem" `Quick test_crl_pem;
    Alcotest.test_case "crl tamper" `Quick test_crl_tamper;
    Alcotest.test_case "revocation check" `Quick test_revocation_check;
    Alcotest.test_case "crl spoofing threat (5.2)" `Quick test_crl_spoofing_threat;
    Alcotest.test_case "chain success" `Quick test_chain_success;
    Alcotest.test_case "chain name normalization" `Quick test_chain_name_normalization;
    Alcotest.test_case "chain failures" `Quick test_chain_failures;
    Alcotest.test_case "name constraints" `Quick test_name_constraints;
    Alcotest.test_case "name constraints roundtrip" `Quick test_name_constraints_roundtrip;
    Alcotest.test_case "precert flow" `Quick test_precert_flow;
    Alcotest.test_case "sct serialization" `Quick test_sct_serialization;
    Alcotest.test_case "ocsp" `Quick test_ocsp;
    Alcotest.test_case "rulebook" `Quick test_rulebook;
    Alcotest.test_case "browser display policy" `Quick test_display_policy;
  ]
