(* Tests for the multicore sharded pipeline: shard arithmetic,
   byte-identical reports across --jobs values, quarantine shard
   merging, per-(seed,index) generation purity, per-shard checkpoint
   resume, and domain-safety stress for the telemetry primitives the
   worker domains share. *)

let check = Alcotest.check

let tmp_dir prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" prefix (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let render t = Format.asprintf "%a" Unicert.Report.all t

(* Everything the reports are built from, minus wall-clock telemetry
   and the resume bookkeeping (resumed_at / checkpoints_saved legitimately
   differ between a fresh run and a resumed one). *)
let fingerprint (t : Unicert.Pipeline.t) =
  let f = t.Unicert.Pipeline.faults in
  Format.asprintf "%d/%d/%d nc=%d,%d,%d tr=%d,%d,%d rec=%d,%d enc=%d,%d,%d,%d,%d faults=%d,%d lints=[%s] issuers=[%s]"
    t.Unicert.Pipeline.total t.Unicert.Pipeline.idncerts
    t.Unicert.Pipeline.trusted t.Unicert.Pipeline.nc_total
    t.Unicert.Pipeline.nc_ignoring_dates t.Unicert.Pipeline.nc_old_lints_only
    t.Unicert.Pipeline.nc_trusted t.Unicert.Pipeline.nc_limited
    t.Unicert.Pipeline.nc_untrusted t.Unicert.Pipeline.nc_recent
    t.Unicert.Pipeline.nc_alive t.Unicert.Pipeline.encoding_error_certs
    t.Unicert.Pipeline.encoding_error_verified
    t.Unicert.Pipeline.encoding_error_subject
    t.Unicert.Pipeline.encoding_error_san
    t.Unicert.Pipeline.encoding_error_policies
    f.Unicert.Pipeline.fault_errors f.Unicert.Pipeline.quarantined
    (String.concat ";"
       (List.map
          (fun (name, n) -> Printf.sprintf "%s=%d" name n)
          (Unicert.Pipeline.top_lints t)))
    (String.concat ";"
       (List.map
          (fun (org, (s : Unicert.Pipeline.issuer_stats)) ->
            Printf.sprintf "%s=%d/%d" org s.Unicert.Pipeline.total
              s.Unicert.Pipeline.nc_count)
          (Unicert.Pipeline.top_issuers_by_nc t)))

(* --- shard arithmetic ------------------------------------------------- *)

let test_shards () =
  check Alcotest.(list (pair int int)) "empty for n=0" [] (Par.shards ~jobs:4 0);
  check Alcotest.(list (pair int int)) "single shard" [ (0, 7) ]
    (Par.shards ~jobs:1 7);
  check Alcotest.(list (pair int int)) "more jobs than work" [ (0, 1); (1, 2); (2, 3) ]
    (Par.shards ~jobs:8 3);
  List.iter
    (fun (jobs, n) ->
      let ranges = Par.shards ~jobs n in
      let covered = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges in
      check Alcotest.int
        (Printf.sprintf "jobs=%d n=%d covers the range" jobs n)
        n covered;
      let rec contiguous prev = function
        | [] -> true
        | (lo, hi) :: rest -> lo = prev && hi > lo && contiguous hi rest
      in
      check Alcotest.bool
        (Printf.sprintf "jobs=%d n=%d contiguous ascending" jobs n)
        true
        (contiguous 0 ranges);
      let sizes = List.map (fun (lo, hi) -> hi - lo) ranges in
      let mx = List.fold_left max 0 sizes
      and mn = List.fold_left min max_int sizes in
      check Alcotest.bool
        (Printf.sprintf "jobs=%d n=%d balanced" jobs n)
        true
        (mx - mn <= 1))
    [ (2, 10); (3, 10); (4, 7); (7, 100); (5, 5); (16, 61) ]

(* --- generation purity ------------------------------------------------ *)

(* A sub-range of the corpus must produce the same bytes the full pass
   produces at those indices — the property every shard and every
   checkpoint resume leans on. *)
let test_range_purity () =
  let scale = 120 and seed = 11 in
  let ders ~start ~stop =
    let acc = ref [] in
    Ctlog.Dataset.iter_deliveries ~scale ~start ~stop ~seed (fun index d ->
        match d with
        | Ctlog.Dataset.Entry e ->
            acc := (index, e.Ctlog.Dataset.cert.X509.Certificate.der) :: !acc
        | Ctlog.Dataset.Corrupt _ -> assert false);
    List.rev !acc
  in
  let full = ders ~start:0 ~stop:scale in
  let split = ders ~start:0 ~stop:47 @ ders ~start:47 ~stop:scale in
  check Alcotest.int "piecewise pass covers the range" (List.length full)
    (List.length split);
  List.iter2
    (fun (i, a) (j, b) ->
      check Alcotest.int "index" i j;
      check Alcotest.bool (Printf.sprintf "DER at %d identical" i) true (a = b))
    full split;
  (* generate_at is the same stream again. *)
  List.iter
    (fun (i, der) ->
      let e = Ctlog.Dataset.generate_at ~seed i in
      check Alcotest.bool
        (Printf.sprintf "generate_at %d matches the stream" i)
        true
        (e.Ctlog.Dataset.cert.X509.Certificate.der = der))
    [ List.nth full 0; List.nth full 59; List.nth full (scale - 1) ]

(* --- report determinism across --jobs --------------------------------- *)

let jobs_list = [ 1; 2; 4; 7 ]

let test_report_determinism () =
  let scale = 240 and seed = 5 in
  let baseline = render (Unicert.Pipeline.run ~scale ~seed ~jobs:1 ()) in
  List.iter
    (fun jobs ->
      let got = render (Unicert.Pipeline.run ~scale ~seed ~jobs ()) in
      check Alcotest.bool
        (Printf.sprintf "report bytes identical at jobs=%d" jobs)
        true (got = baseline))
    (List.tl jobs_list)

let test_corrupt_determinism () =
  let scale = 300 and seed = 8 and rate = 0.05 in
  let plan = Faults.Mutator.plan ~seed ~rate () in
  let run jobs =
    let dir = tmp_dir (Printf.sprintf "unicert-par-q%d" jobs) in
    rm_rf dir;
    let policy =
      { Faults.Policy.default with Faults.Policy.quarantine_dir = Some dir }
    in
    let t = Unicert.Pipeline.run ~scale ~seed ~policy ~mutator:plan ~jobs () in
    let sidecar =
      Filename.concat dir (Printf.sprintf "quarantine-%d.jsonl" seed)
    in
    let q = read_file sidecar in
    (* The shard sidecars must have been folded in and deleted. *)
    Array.iter
      (fun f ->
        check Alcotest.bool
          (Printf.sprintf "no leftover shard sidecar %s at jobs=%d" f jobs)
          false
          (String.length f > 6 && String.sub f 0 6 = "quaran"
          && Filename.check_suffix f ".jsonl"
          && f <> Printf.sprintf "quarantine-%d.jsonl" seed))
      (Sys.readdir dir);
    rm_rf dir;
    (render t, q)
  in
  let base_report, base_q = run 1 in
  check Alcotest.bool "the mutator actually hit something" true
    (String.length base_q > 0);
  List.iter
    (fun jobs ->
      let report, q = run jobs in
      check Alcotest.bool
        (Printf.sprintf "corrupted report identical at jobs=%d" jobs)
        true (report = base_report);
      check Alcotest.bool
        (Printf.sprintf "quarantine bytes identical at jobs=%d" jobs)
        true (q = base_q))
    (List.tl jobs_list)

(* --- per-shard checkpoints -------------------------------------------- *)

let test_shard_checkpoint_resume () =
  let scale = 300 and seed = 9 in
  let file = Filename.temp_file "unicert-par-ckpt" ".bin" in
  let policy =
    { Faults.Policy.default with
      Faults.Policy.checkpoint_file = Some file;
      checkpoint_every = 50;
    }
  in
  let fresh = Unicert.Pipeline.run ~scale ~seed ~policy ~jobs:3 () in
  for k = 0 to 2 do
    check Alcotest.bool
      (Printf.sprintf "shard %d cursor exists" k)
      true
      (Sys.file_exists (Faults.Checkpoint.shard_file file k))
  done;
  (* Same jobs: every shard resumes at its end and replays nothing. *)
  let resumed = Unicert.Pipeline.run ~scale ~seed ~policy ~jobs:3 ~resume:true () in
  check Alcotest.bool "resumed aggregate matches" true
    (fingerprint resumed = fingerprint fresh);
  check Alcotest.bool "resume was detected" true
    (resumed.Unicert.Pipeline.faults.Unicert.Pipeline.resumed_at > 0);
  (* Different jobs: shard ranges move.  The new shard 1 ([150,300))
     finds a cursor saved for [100,200) and must reject it (its lo
     moved); the new shard 0 ([0,150)) finds the old [0,100) cursor,
     whose prefix still lines up, and may reuse it — either way the
     aggregate must come out identical to a fresh run. *)
  let rejobbed = Unicert.Pipeline.run ~scale ~seed ~policy ~jobs:2 ~resume:true () in
  check Alcotest.bool "jobs change still yields a correct run" true
    (fingerprint rejobbed = fingerprint fresh);
  check Alcotest.int "only the prefix-aligned cursor was reused" 100
    rejobbed.Unicert.Pipeline.faults.Unicert.Pipeline.resumed_at;
  List.iter
    (fun k ->
      let f = Faults.Checkpoint.shard_file file k in
      if Sys.file_exists f then Sys.remove f)
    [ 0; 1; 2 ];
  Sys.remove file

(* --- telemetry under domains ------------------------------------------ *)

let domains = 4
let per_domain = 10_000

let test_obs_stress () =
  let registry = Obs.Registry.create () in
  let tasks =
    List.init domains (fun d () ->
        (* Resolving through the registry from every domain exercises the
           guarded find-or-create: all four must land on one handle. *)
        let c = Obs.Registry.counter ~registry "par_test_total" in
        let fam =
          Obs.Registry.labeled_counter ~registry ~label:"shard" "par_test_labeled"
        in
        let h = Obs.Registry.histogram ~registry "par_test_seconds" in
        let g = Obs.Registry.gauge ~registry "par_test_depth" in
        for i = 1 to per_domain do
          Obs.Counter.inc c;
          Obs.Counter.inc (Obs.Counter.Labeled.get fam (string_of_int (i mod 4)));
          (* Powers of two keep the float sums exact under any
             interleaving, so the check can demand equality. *)
          Obs.Histogram.observe h 0.25;
          Obs.Gauge.add g 1.0;
          Obs.Gauge.sub g 1.0
        done;
        ignore d)
  in
  ignore (Par.run ~jobs:domains tasks);
  let c = Obs.Registry.counter ~registry "par_test_total" in
  check (Alcotest.float 0.0) "counter is exact"
    (float_of_int (domains * per_domain))
    (Obs.Counter.value c);
  let fam =
    Obs.Registry.labeled_counter ~registry ~label:"shard" "par_test_labeled"
  in
  check Alcotest.int "labeled family has 4 children" 4
    (List.length (Obs.Counter.Labeled.children fam));
  List.iter
    (fun (label, child) ->
      check (Alcotest.float 0.0)
        (Printf.sprintf "child %s is exact" label)
        (float_of_int (domains * per_domain / 4))
        (Obs.Counter.value child))
    (Obs.Counter.Labeled.children fam);
  let h = Obs.Registry.histogram ~registry "par_test_seconds" in
  check Alcotest.int "histogram count is exact" (domains * per_domain)
    (Obs.Histogram.count h);
  check (Alcotest.float 0.0) "histogram sum is exact"
    (0.25 *. float_of_int (domains * per_domain))
    (Obs.Histogram.sum h);
  let g = Obs.Registry.gauge ~registry "par_test_depth" in
  check (Alcotest.float 0.0) "gauge nets to zero" 0.0 (Obs.Gauge.value g)

let test_span_isolation () =
  let registry = Obs.Registry.create () in
  let results =
    Par.map_tasks ~jobs:domains
      (List.init domains (fun d () ->
           Obs.Span.with_ ~registry "outer" (fun () ->
               let at_outer = Obs.Span.current () in
               Obs.Span.with_ ~registry "inner" (fun () ->
                   (d, at_outer, Obs.Span.current ())))))
  in
  List.iter
    (fun (d, at_outer, at_inner) ->
      check Alcotest.(list string)
        (Printf.sprintf "domain %d sees its own outer stack" d)
        [ "outer" ] at_outer;
      check Alcotest.(list string)
        (Printf.sprintf "domain %d sees its own nested stack" d)
        [ "inner"; "outer" ] at_inner)
    results;
  check Alcotest.(list string) "main-domain stack untouched" []
    (Obs.Span.current ());
  check Alcotest.int "outer spans all recorded" domains
    (Obs.Span.count ~registry "outer");
  check Alcotest.int "inner spans all recorded" domains
    (Obs.Span.count ~registry "inner")

(* --- watchdog on worker domains --------------------------------------- *)

let busy_for seconds =
  let t0 = Unix.gettimeofday () in
  let x = ref 0 in
  while Unix.gettimeofday () -. t0 < seconds do
    (* Allocate so the loop matches the guarded workloads. *)
    x := !x + List.length [ 1; 2; 3 ]
  done;
  !x

let test_worker_watchdog () =
  let guarded seconds work () =
    try
      ignore (Faults.Watchdog.with_timeout ~stage:"par" ~seconds work);
      "completed"
    with Faults.Watchdog.Timed_out { stage; _ } -> "timed_out:" ^ stage
  in
  (* Two tasks so both land on spawned (non-main) domains, where the
     alarm is unavailable and the deadline path must catch the overrun. *)
  let results =
    Par.map_tasks ~jobs:2
      [
        guarded 0.01 (fun () -> busy_for 0.05);
        guarded 5.0 (fun () -> busy_for 0.001);
      ]
  in
  check Alcotest.(list string) "worker overrun detected post-hoc"
    [ "timed_out:par"; "completed" ] results

(* Regression: map_tasks once spawned one domain per task no matter
   what [jobs] said — 32 tasks meant 32 live domains.  Count the tasks
   in flight at once and hold the pool to its budget. *)
let test_map_tasks_cap () =
  let jobs = 2 and tasks = 32 in
  let in_flight = Atomic.make 0 in
  let peak = Atomic.make 0 in
  let rec bump_peak n =
    let p = Atomic.get peak in
    if n > p && not (Atomic.compare_and_set peak p n) then bump_peak n
  in
  let task i () =
    let n = 1 + Atomic.fetch_and_add in_flight 1 in
    bump_peak n;
    ignore (busy_for 0.002);
    ignore (Atomic.fetch_and_add in_flight (-1));
    i
  in
  let results = Par.map_tasks ~jobs (List.init tasks task) in
  check Alcotest.(list int) "results keep input order" (List.init tasks Fun.id)
    results;
  if Atomic.get peak > jobs then
    Alcotest.failf "%d tasks ran concurrently on a %d-domain budget"
      (Atomic.get peak) jobs;
  check Alcotest.bool "the pool actually ran work in parallel" true
    (Atomic.get peak >= 1)

let suite =
  [
    Alcotest.test_case "shard arithmetic" `Quick test_shards;
    Alcotest.test_case "per-index generation purity" `Quick test_range_purity;
    Alcotest.test_case "report bytes across jobs" `Slow test_report_determinism;
    Alcotest.test_case "corrupt run + quarantine across jobs" `Slow
      test_corrupt_determinism;
    Alcotest.test_case "per-shard checkpoint resume" `Slow
      test_shard_checkpoint_resume;
    Alcotest.test_case "telemetry exact under 4 domains" `Quick test_obs_stress;
    Alcotest.test_case "span stacks are domain-local" `Quick test_span_isolation;
    Alcotest.test_case "watchdog deadline on worker domains" `Quick
      test_worker_watchdog;
    Alcotest.test_case "map_tasks honours the jobs budget" `Quick
      test_map_tasks_cap;
  ]
