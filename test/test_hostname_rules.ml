(* Tests for RFC 6125/9525 hostname verification and the Suricata-style
   rule language. *)

let check = Alcotest.check

let ca = X509.Certificate.mock_keypair ~seed:"hostname-ca" ()

let cert ?(cn = None) sans =
  let cn_value = match cn with Some c -> c | None -> (match sans with s :: _ -> s | [] -> "x") in
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "HN CA") ])
      ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, cn_value) ])
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki ca)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        (if sans = [] then []
         else
           [ X509.Extension.subject_alt_name
               (List.map (fun d -> X509.General_name.Dns_name d) sans) ])
      ()
  in
  X509.Certificate.sign ca tbs

let ok = function Ok () -> true | Error _ -> false

(* --- hostname verification ------------------------------------------- *)

let test_hostname_basic () =
  let c = cert [ "www.example.com"; "example.com" ] in
  check Alcotest.bool "exact" true (ok (X509.Hostname.verify ~reference:"www.example.com" c));
  check Alcotest.bool "second san" true (ok (X509.Hostname.verify ~reference:"example.com" c));
  check Alcotest.bool "case folded" true
    (ok (X509.Hostname.verify ~reference:"WWW.Example.COM" c));
  check Alcotest.bool "mismatch" false (ok (X509.Hostname.verify ~reference:"evil.com" c))

let test_hostname_wildcards () =
  let c = cert [ "*.example.com" ] in
  check Alcotest.bool "one level" true
    (ok (X509.Hostname.verify ~reference:"api.example.com" c));
  check Alcotest.bool "not apex" false (ok (X509.Hostname.verify ~reference:"example.com" c));
  check Alcotest.bool "not two levels" false
    (ok (X509.Hostname.verify ~reference:"a.b.example.com" c));
  let no_wild = { X509.Hostname.strict with X509.Hostname.allow_wildcards = false } in
  check Alcotest.bool "wildcards disabled" false
    (ok (X509.Hostname.verify ~policy:no_wild ~reference:"api.example.com" c))

let test_hostname_idn () =
  let c = cert [ "xn--bcher-kva.example.com" ] in
  (* U-label reference converts to the A-label and matches. *)
  check Alcotest.bool "u-label reference" true
    (ok (X509.Hostname.verify ~reference:"b\xC3\xBCcher.example.com" c));
  (* A deceptive reference is rejected before matching. *)
  (match X509.Hostname.verify ~reference:"pay\xE2\x80\x8Bpal.com" c with
  | Error (X509.Hostname.Invalid_reference _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "zwsp reference must be invalid");
  (* Raw U-label SANs are skipped under the strict policy ([P2.2]). *)
  let raw = cert [ "b\xC3\xBCcher.example.com" ] in
  (match X509.Hostname.verify ~reference:"b\xC3\xBCcher.example.com" raw with
  | Error X509.Hostname.No_presented_identifier -> ()
  | Ok _ | Error _ -> Alcotest.fail "strict policy must skip raw U-label SANs");
  (* The lenient policy accepts them — urllib3's behaviour: no LDH
     filtering and no IDN conversion, just byte comparison. *)
  let lenient =
    { X509.Hostname.strict with
      X509.Hostname.require_ldh_san = false;
      convert_idn = false }
  in
  check Alcotest.bool "lenient accepts raw u-label" true
    (ok
       (X509.Hostname.verify ~policy:lenient ~reference:"b\xC3\xBCcher.example.com" raw))

let test_hostname_cn_fallback () =
  let c = cert ~cn:(Some "legacy.example.com") [] in
  (match X509.Hostname.verify ~reference:"legacy.example.com" c with
  | Error X509.Hostname.No_presented_identifier -> ()
  | Ok _ | Error _ -> Alcotest.fail "strict must not use the CN");
  check Alcotest.bool "legacy uses CN" true
    (ok
       (X509.Hostname.verify ~policy:X509.Hostname.legacy
          ~reference:"legacy.example.com" c))

let test_null_prefix_attack () =
  (* The Marlinspike null-prefix attack the paper's T1 discussion
     references: the CA validates "victim.com\x00.attacker.com" (the
     attacker owns attacker.com), but a C-string client truncates at the
     NUL and sees "victim.com". *)
  let forged = cert ~cn:(Some "victim.com\x00.attacker.com") [] in
  (* The reference implementation is safe: full-string comparison. *)
  (match
     X509.Hostname.verify ~policy:X509.Hostname.legacy ~reference:"victim.com" forged
   with
  | Error (X509.Hostname.Mismatch _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "reference implementation must not truncate");
  (* The vulnerable C client is bypassed. *)
  check Alcotest.bool "vulnerable client spoofed" true
    (ok
       (X509.Hostname.verify ~policy:X509.Hostname.vulnerable_c_client
          ~reference:"victim.com" forged));
  (* And the linter flags the certificate. *)
  let findings =
    Lint.Registry.noncompliant ~issued:(Asn1.Time.make 2025 1 1) forged
  in
  check Alcotest.bool "linter catches NUL" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.Lint.lint.Lint.name = "e_rfc_subject_dn_not_printable_characters")
       findings)

(* --- rule language ----------------------------------------------------- *)

let sample_rule =
  "alert tls any any -> any any (msg:\"evil org\"; tls.subject; \
   content:\"O=Evil Entity\"; nocase; sid:1001;)"

let test_rule_parsing () =
  match Middlebox.Rules.parse sample_rule with
  | Ok r ->
      check Alcotest.string "msg" "evil org" r.Middlebox.Rules.msg;
      check Alcotest.int "sid" 1001 r.Middlebox.Rules.sid;
      (match r.Middlebox.Rules.matchers with
      | [ m ] ->
          check Alcotest.bool "subject buffer" true
            (m.Middlebox.Rules.buffer = Middlebox.Rules.Tls_subject);
          check Alcotest.string "content" "O=Evil Entity" m.Middlebox.Rules.content;
          check Alcotest.bool "nocase" true m.Middlebox.Rules.nocase
      | _ -> Alcotest.fail "expected one matcher")
  | Error m -> Alcotest.fail m

let test_rule_parse_errors () =
  List.iter
    (fun bad ->
      check Alcotest.bool bad true (Result.is_error (Middlebox.Rules.parse bad)))
    [ "drop tcp any (msg:\"x\";)" (* wrong proto *);
      "alert tls any any -> any any (content:\"x\";)" (* no buffer *);
      "alert tls any any -> any any (msg:\"x\";)" (* no matcher *);
      "alert tls any any -> any any (tls.subject; content:x; sid:1;)" (* unquoted *);
      "alert tls any any -> any any (frobnicate; tls.subject; content:\"x\";)" ]

let test_rule_matching () =
  let evil =
    let tbs =
      X509.Certificate.make_tbs
        ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "HN CA") ])
        ~subject:
          (X509.Dn.of_list
             [ (X509.Attr.Organization_name, "EVIL ENTITY LLC");
               (X509.Attr.Common_name, "c2.evil.test") ])
        ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
        ~spki:(X509.Certificate.keypair_spki ca)
        ~sig_alg:X509.Certificate.Oids.mock_signature
        ~extensions:
          [ X509.Extension.subject_alt_name [ X509.General_name.Dns_name "c2.evil.test" ] ]
        ()
    in
    X509.Certificate.sign ca tbs
  in
  let client, server = Middlebox.Inspect.tls_session ~sni:"c2.evil.test" ~seed:31 [ evil ] in
  let rule = Result.get_ok (Middlebox.Rules.parse sample_rule) in
  (* nocase matches the upper-case org. *)
  check Alcotest.bool "nocase alert" true
    (Middlebox.Rules.matches rule ~client_flow:client ~server_flow:server);
  (* A case-sensitive version misses it — the Suricata bypass. *)
  let sensitive =
    Result.get_ok
      (Middlebox.Rules.parse
         "alert tls any any -> any any (msg:\"cs\"; tls.subject; \
          content:\"O=Evil Entity\"; sid:1002;)")
  in
  check Alcotest.bool "case-sensitive misses variant" false
    (Middlebox.Rules.matches sensitive ~client_flow:client ~server_flow:server);
  (* SNI rules. *)
  let sni_rule =
    Result.get_ok
      (Middlebox.Rules.parse
         "alert tls any any -> any any (msg:\"sni\"; tls.sni; content:\"evil.test\"; sid:2;)")
  in
  check Alcotest.bool "sni alert" true
    (Middlebox.Rules.matches sni_rule ~client_flow:client ~server_flow:server);
  check Alcotest.int "eval returns alerting rules" 2
    (List.length
       (Middlebox.Rules.eval [ rule; sensitive; sni_rule ] ~client_flow:client
          ~server_flow:server))

let test_subject_buffer () =
  let c = cert ~cn:(Some "buf.example") [ "buf.example" ] in
  check Alcotest.string "rendering" "CN=buf.example" (Middlebox.Rules.subject_buffer c)

let suite =
  [
    Alcotest.test_case "hostname basics" `Quick test_hostname_basic;
    Alcotest.test_case "hostname wildcards" `Quick test_hostname_wildcards;
    Alcotest.test_case "hostname idn policies" `Quick test_hostname_idn;
    Alcotest.test_case "hostname cn fallback" `Quick test_hostname_cn_fallback;
    Alcotest.test_case "null-prefix attack" `Quick test_null_prefix_attack;
    Alcotest.test_case "rule parsing" `Quick test_rule_parsing;
    Alcotest.test_case "rule parse errors" `Quick test_rule_parse_errors;
    Alcotest.test_case "rule matching" `Quick test_rule_matching;
    Alcotest.test_case "subject buffer rendering" `Quick test_subject_buffer;
  ]
