(* Fuzzer smoke test: drive the real unicert-fuzz binary and check the
   campaign contract end to end:

   - the pinned seed-7 campaign emits byte-identical findings JSONL
     across --jobs 1/2/4;
   - it rediscovers the checked-in reproducer clusters, with at least
     three distinct beyond-Tables-4/5 anomaly classes;
   - the minimize and report subcommands run over real findings;
   - the exit-code funnel holds: 0 on a clean campaign, 3 on a
     wall-clock abort, 4 when a model is deterministically crashed into
     degradation, 2 on a corrupt checkpoint under --resume.

   The binary path arrives as argv(1) from the dune rule. *)

let exe =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: fuzz_smoke UNICERT_FUZZ_EXE";
    exit 2
  end
  else Sys.argv.(1)

let failures = ref 0

let checkf ok fmt =
  Printf.ksprintf
    (fun msg ->
      if ok then Printf.printf "ok: %s\n%!" msg
      else begin
        incr failures;
        Printf.printf "FAIL: %s\n%!" msg
      end)
    fmt

let dir = "fuzz_smoke_tmp"

let () = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
let in_dir f = Filename.concat dir f

(* Run the binary with [args]; stdout goes to [out], stderr is
   inherited.  Returns the exit code. *)
let run ?(out = in_dir "stdout.txt") args =
  let argv = Array.of_list (exe :: args) in
  let fd =
    Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid = Unix.create_process exe argv Unix.stdin fd Unix.stderr in
  Unix.close fd;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> c
  | _, Unix.WSIGNALED s | _, Unix.WSTOPPED s -> 128 + s

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* --- determinism: byte-identical findings across --jobs 1/2/4 --- *)

let campaign_args = [ "run"; "--budget"; "256"; "--seed"; "7" ]

let findings_for jobs =
  let file = in_dir (Printf.sprintf "findings_j%d.jsonl" jobs) in
  let code =
    run (campaign_args @ [ "--jobs"; string_of_int jobs; "--findings"; file ])
  in
  checkf (code = 0) "seed-7 campaign exits 0 with --jobs %d (got %d)" jobs code;
  file

let () =
  let f1 = findings_for 1 in
  let b1 = read_file f1 in
  List.iter
    (fun jobs ->
      let b = read_file (findings_for jobs) in
      checkf (b = b1) "findings byte-identical: --jobs 1 vs --jobs %d" jobs)
    [ 2; 4 ];
  checkf (String.length b1 > 0) "seed-7 campaign finds something";

  (* --- cluster rediscovery against the checked-in corpus --- *)
  match Fuzz.Findings.read f1 with
  | Error msg -> checkf false "findings parse: %s" msg
  | Ok findings ->
      let clusters = Fuzz.Findings.clusters findings in
      let have c = List.exists (fun (c', _, _, _) -> c' = c) clusters in
      List.iter
        (fun c -> checkf (have c) "campaign rediscovers cluster %s" c)
        [
          "idna-blindspot-afb26948"; "nul-transparency-62985454";
          "ctl-passthrough-3a542719"; "confusable-passthrough-a5d74768";
        ];
      let beyond =
        List.filter (fun (_, cls, _, _) -> Fuzz.Exec.beyond_tables cls) clusters
        |> List.map (fun (_, cls, _, _) -> cls)
        |> List.sort_uniq compare
      in
      checkf
        (List.length beyond >= 3)
        "at least 3 distinct beyond-table anomaly classes (got %d: %s)"
        (List.length beyond) (String.concat ", " beyond)

(* --- minimize + report subcommands over real findings --- *)

let () =
  let small = in_dir "findings_small.jsonl" in
  let code =
    run [ "run"; "--budget"; "64"; "--seed"; "7"; "--findings"; small ]
  in
  checkf (code = 0) "small campaign exits 0 (got %d)" code;
  let minimized = in_dir "findings_min.jsonl" in
  let code =
    run [ "minimize"; "--findings"; small; "--out"; minimized ]
  in
  checkf (code = 0) "minimize exits 0 (got %d)" code;
  (match Fuzz.Findings.read minimized with
  | Error msg -> checkf false "minimized findings parse: %s" msg
  | Ok fs ->
      let shrunk =
        List.filter
          (fun f ->
            match f.Fuzz.Findings.min_der with
            | Some m -> String.length m <= String.length f.Fuzz.Findings.der
            | None -> false)
          fs
      in
      checkf (shrunk <> []) "minimize stamps min_der on cluster exemplars";
      checkf
        (List.for_all
           (fun f ->
             match f.Fuzz.Findings.min_der with
             | Some m -> String.length m <= String.length f.Fuzz.Findings.der
             | None -> true)
           fs)
        "minimized reproducers never grow");
  let code = run [ "report"; "--findings"; minimized ] in
  checkf (code = 0) "report exits 0 (got %d)" code

(* --- exit-code funnel --- *)

let () =
  List.iter
    (fun (label, args, expected) ->
      let code = run args in
      checkf (code = expected) "exit funnel: %s -> %d (got %d)" label expected
        code)
    [
      ( "clean campaign",
        [ "run"; "--budget"; "32"; "--seed"; "3"; "--findings";
          in_dir "f_clean.jsonl" ],
        0 );
      ( "wall-clock abort",
        [ "run"; "--budget"; "32"; "--seed"; "3"; "--max-seconds"; "0";
          "--findings"; in_dir "f_wall.jsonl" ],
        3 );
      ( "degraded model via deterministic crash injection",
        [ "run"; "--budget"; "64"; "--seed"; "3"; "--fault-model";
          "OpenSSL:1"; "--findings"; in_dir "f_degraded.jsonl" ],
        4 );
    ]

let () =
  let ckpt = in_dir "corrupt.ckpt" in
  write_file ckpt "this is not a checkpoint\n";
  let code =
    run
      [ "run"; "--budget"; "32"; "--seed"; "3"; "--checkpoint"; ckpt;
        "--resume"; "--findings"; in_dir "f_ckpt.jsonl" ]
  in
  checkf (code = 2) "exit funnel: corrupt checkpoint under --resume -> 2 (got %d)"
    code

let () =
  if !failures > 0 then begin
    Printf.printf "fuzz_smoke: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "fuzz_smoke: all checks passed"
