(* Fuzzer unit tests: generator purity, evaluation determinism,
   breaker-scope isolation (the process-global reset_faults regression),
   mutator exhaustion guard, minimizer contract, findings JSONL
   round-trip, an in-process campaign determinism check, and the
   regression corpus of minimized reproducers. *)

let check = Alcotest.check

let test_gen_pure () =
  let corpus =
    [| Fuzz.Gen.build Fuzz.Gen.Cn Asn1.Str_type.Printable_string "test.com" |]
  in
  for index = 0 to 31 do
    let a = Fuzz.Gen.candidate ~seed:11 ~round:2 ~index ~corpus in
    let b = Fuzz.Gen.candidate ~seed:11 ~round:2 ~index ~corpus in
    check Alcotest.string "op" a.Fuzz.Gen.op b.Fuzz.Gen.op;
    check Alcotest.string "payload" a.Fuzz.Gen.payload b.Fuzz.Gen.payload;
    check Alcotest.string "der" a.Fuzz.Gen.der b.Fuzz.Gen.der
  done;
  (* distinct indices draw distinct candidates somewhere in the batch *)
  let distinct =
    List.init 32 (fun index ->
        (Fuzz.Gen.candidate ~seed:11 ~round:2 ~index ~corpus).Fuzz.Gen.der)
    |> List.sort_uniq compare
  in
  check Alcotest.bool "batch is not constant" true (List.length distinct > 4)

let test_eval_pure () =
  let der =
    Fuzz.Gen.build Fuzz.Gen.Cn Asn1.Str_type.Printable_string "pay\x00pal.com"
  in
  let a = Fuzz.Exec.eval der and b = Fuzz.Exec.eval der in
  check Alcotest.string "signature" a.Fuzz.Exec.signature b.Fuzz.Exec.signature;
  check Alcotest.string "class" a.Fuzz.Exec.cls b.Fuzz.Exec.cls;
  check Alcotest.bool "nul facet" true a.Fuzz.Exec.nul;
  check Alcotest.string "nul class" "nul-transparency" a.Fuzz.Exec.cls

(* Satellite regression: a campaign (or any caller) that trips breakers
   in a private scope must not poison the process-default scope used by
   decoding_matrix and the one-shot table binaries. *)
let test_scope_isolation () =
  let model = List.hd Tlsparsers.Models.all in
  let scope = Tlsparsers.Harness.Scope.create ~threshold:2 () in
  let boom () = failwith "synthetic model crash" in
  (match Tlsparsers.Harness.observe_decode ~scope model boom with
  | Tlsparsers.Harness.Crashed _ -> ()
  | _ -> Alcotest.fail "expected a crash outcome");
  ignore (Tlsparsers.Harness.observe_decode ~scope model boom);
  (* threshold 2 reached: the scope's breaker is open *)
  (match Tlsparsers.Harness.observe_decode ~scope model (fun () -> Some "x") with
  | Tlsparsers.Harness.Crashed "circuit_open" -> ()
  | _ -> Alcotest.fail "expected the scoped breaker to be open");
  check Alcotest.bool "private scope degraded" true
    (Tlsparsers.Harness.Scope.degraded scope <> []);
  check
    Alcotest.(list (pair string int))
    "default scope untouched" []
    (Tlsparsers.Harness.degraded_models ());
  (* the default scope still invokes the model *)
  (match Tlsparsers.Harness.observe_decode model (fun () -> Some "ok") with
  | Tlsparsers.Harness.Decoded "ok" -> ()
  | _ -> Alcotest.fail "default scope must still invoke the model");
  (* per-evaluation scopes mean campaign crashes cannot leak either *)
  let der = Fuzz.Gen.build Fuzz.Gen.Cn Asn1.Str_type.Printable_string "test.com" in
  ignore (Fuzz.Exec.eval der);
  check
    Alcotest.(list (pair string int))
    "default scope untouched after eval" []
    (Tlsparsers.Harness.degraded_models ())

let test_mutate_rejected () =
  let der = Fuzz.Gen.build Fuzz.Gen.Cn Asn1.Str_type.Printable_string "test.com" in
  let plan = Faults.Mutator.plan ~seed:42 ~rate:1.0 () in
  (* a predicate that never rejects exhausts the attempt cap *)
  (match Faults.Mutator.mutate_rejected plan ~index:5 ~rejects:(fun _ -> None) der with
  | Error { Faults.Mutator.index; attempts } ->
      check Alcotest.int "index" 5 index;
      check Alcotest.int "attempts" Faults.Mutator.default_max_attempts attempts
  | Ok _ -> Alcotest.fail "expected exhaustion");
  (* the parse predicate rejects on the first broken mutant *)
  let rejects bad =
    match X509.Certificate.parse bad with Error e -> Some e | Ok _ -> None
  in
  (match Faults.Mutator.mutate_rejected plan ~index:5 ~rejects der with
  | Ok (bad, _, _) -> check Alcotest.bool "mutant differs" true (bad <> der)
  | Error _ -> Alcotest.fail "a certificate must be corruptible");
  (* deterministic in (seed, index) *)
  let run () = Faults.Mutator.mutate_rejected plan ~index:5 ~rejects der in
  check Alcotest.bool "deterministic" true (run () = run ());
  (match Faults.Mutator.mutate_rejected ~max_attempts:0 plan ~index:0 ~rejects der with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_attempts 0 must be rejected")

let test_new_mutation_kinds () =
  check Alcotest.bool "nul_inject registered" true
    (List.mem Faults.Mutator.Nul_inject Faults.Mutator.all_kinds);
  check Alcotest.bool "ctrl_inject registered" true
    (List.mem Faults.Mutator.Ctrl_inject Faults.Mutator.all_kinds);
  List.iter
    (fun k ->
      check Alcotest.bool
        ("kind name roundtrip " ^ Faults.Mutator.kind_name k)
        true
        (Faults.Mutator.kind_of_name (Faults.Mutator.kind_name k) = Some k))
    Faults.Mutator.all_kinds;
  (* string-content injection keeps the DER skeleton: length preserved *)
  let der = Fuzz.Gen.build Fuzz.Gen.Cn Asn1.Str_type.Printable_string "test.com" in
  List.iter
    (fun kind ->
      let plan =
        Faults.Mutator.plan ~kinds:[ kind ] ~seed:7 ~rate:1.0 ()
      in
      let bad, k = Faults.Mutator.mutate plan ~index:3 der in
      check Alcotest.bool "kind echoed" true (k = kind);
      check Alcotest.bool "changed" true (bad <> der);
      check Alcotest.int "length preserved" (String.length der)
        (String.length bad))
    [ Faults.Mutator.Nul_inject; Faults.Mutator.Ctrl_inject ]

let test_minimize () =
  let der =
    Fuzz.Gen.build Fuzz.Gen.Cn Asn1.Str_type.Printable_string
      "paypal.com\x00.evil.example"
  in
  let before = Fuzz.Exec.eval der in
  let min_der = Fuzz.Minimize.minimize der in
  let after = Fuzz.Exec.eval min_der in
  check Alcotest.bool "shrinks" true (String.length min_der < String.length der);
  check Alcotest.string "class preserved" before.Fuzz.Exec.cls after.Fuzz.Exec.cls;
  check Alcotest.string "signature preserved" before.Fuzz.Exec.signature
    after.Fuzz.Exec.signature

let test_findings_roundtrip () =
  let f =
    { Fuzz.Findings.round = 3; index = 17; exec = 209;
      cluster = "nul-transparency-deadbeef"; cls = "nul-transparency";
      signature = "x509=PP|cn=IA5String:abbbbbbbb|san=X|idna=-|nul=1|ctl=0|conf=0";
      op = "nul_ctrl"; context = "cn"; declared = "IA5String"; count = 4;
      der = "\x30\x03\x02\x01\x00"; min_der = Some "\x30\x00" }
  in
  (match Fuzz.Findings.of_json (Fuzz.Findings.to_json f) with
  | Ok f' -> check Alcotest.bool "roundtrip" true (f = f')
  | Error msg -> Alcotest.fail msg);
  (match Fuzz.Findings.of_json (Fuzz.Findings.to_json { f with min_der = None }) with
  | Ok f' -> check Alcotest.bool "null min_der" true (f'.Fuzz.Findings.min_der = None)
  | Error msg -> Alcotest.fail msg)

let test_campaign_deterministic () =
  let cfg jobs =
    { Fuzz.Campaign.default_config with
      Fuzz.Campaign.seed = 19; budget = 48; round_size = 16; jobs }
  in
  let a = Fuzz.Campaign.run (cfg 1) in
  let b = Fuzz.Campaign.run (cfg 2) in
  check Alcotest.int "executions" 48 a.Fuzz.Campaign.executions;
  check Alcotest.bool "status completed" true
    (a.Fuzz.Campaign.status = Fuzz.Campaign.Completed);
  check Alcotest.bool "findings identical across jobs" true
    (a.Fuzz.Campaign.findings = b.Fuzz.Campaign.findings);
  check Alcotest.int "signatures identical" a.Fuzz.Campaign.signatures
    b.Fuzz.Campaign.signatures;
  check
    Alcotest.(list (pair string int))
    "no degraded models without injection" [] a.Fuzz.Campaign.degraded;
  check
    Alcotest.(list (pair string int))
    "campaign leaves the default scope clean" []
    (Tlsparsers.Harness.degraded_models ())

(* The regression corpus: minimized reproducers for anomaly clusters
   beyond Tables 4/5, discovered by the pinned seed-7 campaign.  Each
   must still evaluate to its cluster's class and outcome signature. *)
let reproducers =
  [
    ( "idna-blindspot-afb26948.pem", "idna-blindspot",
      "x509=PP|cn=PrintableString:aaaaaaaaa|san=-aaaaa-aa|idna=encoded_label_too_long+unpermitted_char|nul=0|ctl=0|conf=0"
    );
    ( "nul-transparency-62985454.pem", "nul-transparency",
      "x509=PP|cn=PrintableString:aaaaaaaaa|san=-aaaaa-aa|idna=-|nul=1|ctl=0|conf=0"
    );
    ( "ctl-passthrough-3a542719.pem", "ctl-passthrough",
      "x509=PP|cn=PrintableString:aaaaaaaaa|san=-aaaaa-aa|idna=-|nul=0|ctl=1|conf=0"
    );
    ( "confusable-passthrough-a5d74768.pem", "confusable-passthrough",
      "x509=PP|cn=PrintableString:aaaaaaaaa|san=-abbRc-Rb|idna=-|nul=0|ctl=0|conf=1"
    );
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_reproducers () =
  check Alcotest.bool "at least 3 beyond-table clusters" true
    (List.length
       (List.sort_uniq compare (List.map (fun (_, c, _) -> c) reproducers))
    >= 3);
  List.iter
    (fun (file, cls, signature) ->
      let pem = read_file (Filename.concat "fuzz_corpus" file) in
      let der =
        match X509.Pem.decode_certificate pem with
        | Ok der -> der
        | Error msg -> Alcotest.fail (file ^ ": " ^ msg)
      in
      let e = Fuzz.Exec.eval der in
      check Alcotest.bool (file ^ " beyond tables") true
        (Fuzz.Exec.beyond_tables cls);
      check Alcotest.string (file ^ " class") cls e.Fuzz.Exec.cls;
      check Alcotest.string (file ^ " signature") signature
        e.Fuzz.Exec.signature)
    reproducers

let suite =
  [
    Alcotest.test_case "generator purity" `Quick test_gen_pure;
    Alcotest.test_case "evaluation determinism" `Quick test_eval_pure;
    Alcotest.test_case "breaker scope isolation" `Quick test_scope_isolation;
    Alcotest.test_case "mutate_rejected exhaustion guard" `Quick
      test_mutate_rejected;
    Alcotest.test_case "new mutation kinds" `Quick test_new_mutation_kinds;
    Alcotest.test_case "minimizer preserves signature" `Quick test_minimize;
    Alcotest.test_case "findings JSONL roundtrip" `Quick test_findings_roundtrip;
    Alcotest.test_case "campaign jobs determinism" `Quick
      test_campaign_deterministic;
    Alcotest.test_case "reproducer corpus regression" `Quick test_reproducers;
  ]
