(* @fault-smoke: end-to-end robustness check, attached to @runtest.

   Runs the analysis pipeline over a small corpus with 5% seeded
   corruption and asserts the contract the fault layer promises:

   - the run completes (exit 0) despite the corrupted certificates;
   - the quarantine holds exactly the certificates the mutator hit;
   - the aggregate report over the surviving 95% matches a drop-mode
     run over the same survivors (corruption never perturbs them);
   - with the fault plumbing armed but nothing corrupted, the report
     is byte-identical to a plain run. *)

let scale = 400
let seed = 6
let rate = 0.05

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("fault-smoke: FAIL: " ^ m);
      exit 1)
    fmt

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let report t = Format.asprintf "%a" Unicert.Report.all t

let () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "unicert-fault-smoke-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let plan = Faults.Mutator.plan ~seed ~rate () in
  let injected = ref 0 in
  for i = 0 to scale - 1 do
    if Faults.Mutator.hits plan i then incr injected
  done;
  if !injected = 0 then fail "mutator hit nothing at rate %.2f" rate;

  let policy =
    { Faults.Policy.default with Faults.Policy.quarantine_dir = Some dir }
  in
  let corrupt = Unicert.Pipeline.run ~scale ~seed ~policy ~mutator:plan () in
  (match corrupt.Unicert.Pipeline.faults.Unicert.Pipeline.aborted with
  | Some reason -> fail "corrupt run aborted: %s" reason
  | None -> ());
  let quarantined = corrupt.Unicert.Pipeline.faults.Unicert.Pipeline.quarantined in
  if quarantined <> !injected then
    fail "quarantined %d but injected %d" quarantined !injected;
  let sidecar = Filename.concat dir (Printf.sprintf "quarantine-%d.jsonl" seed) in
  let entries = Faults.Quarantine.load sidecar in
  if List.length entries <> !injected then
    fail "sidecar holds %d entries, expected %d" (List.length entries) !injected;
  rm_rf dir;

  (* The surviving 95% must be untouched by the corruption machinery. *)
  let drop = Unicert.Pipeline.run ~scale ~seed ~mutator:plan ~drop:true () in
  if drop.Unicert.Pipeline.total <> corrupt.Unicert.Pipeline.total then
    fail "survivor counts differ: drop %d vs corrupt %d"
      drop.Unicert.Pipeline.total corrupt.Unicert.Pipeline.total;
  let corrupt_report = report corrupt and drop_report = report drop in
  (* The corrupt report is the drop report plus a trailing robustness
     section; everything before it must match byte for byte. *)
  if
    String.length corrupt_report < String.length drop_report
    || String.sub corrupt_report 0 (String.length drop_report) <> drop_report
  then fail "aggregate report over the survivors changed under corruption";

  (* Armed-but-idle fault plumbing must not change report bytes. *)
  let plain = report (Unicert.Pipeline.run ~scale ~seed ()) in
  let dir2 = dir ^ "-idle" in
  rm_rf dir2;
  let ckpt = Filename.temp_file "unicert-fault-smoke" ".ckpt" in
  let idle_policy =
    { Faults.Policy.default with
      Faults.Policy.quarantine_dir = Some dir2;
      checkpoint_file = Some ckpt;
      checkpoint_every = 100 }
  in
  let idle = report (Unicert.Pipeline.run ~scale ~seed ~policy:idle_policy ()) in
  rm_rf dir2;
  Sys.remove ckpt;
  if idle <> plain then
    fail "clean-corpus report changed when the fault plumbing was armed";

  Printf.printf
    "fault-smoke: OK (%d certs, %d corrupted+quarantined, survivors' report stable)\n"
    scale !injected
