(* Tests for the CT log substrate: Merkle trees (against RFC vectors and
   by property), log/SCT behaviour, and the calibrated dataset. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- merkle ----------------------------------------------------------- *)

let hex s =
  String.concat ""
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let test_merkle_empty_and_leaf () =
  let t = Ctlog.Merkle.create () in
  (* MTH({}) = SHA-256 of the empty string (RFC 6962 §2.1). *)
  check Alcotest.string "empty root"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex (Ctlog.Merkle.root t));
  ignore (Ctlog.Merkle.append t "");
  (* RFC 6962 test vector: leaf hash of the empty leaf. *)
  check Alcotest.string "single empty leaf"
    "6e340b9cffb37a989ca544e6bb780a2c78901d3fb33738768511a30617afa01d"
    (hex (Ctlog.Merkle.root t))

let build n =
  let t = Ctlog.Merkle.create () in
  let leaves = List.init n (fun i -> Printf.sprintf "leaf-%d" i) in
  List.iter (fun l -> ignore (Ctlog.Merkle.append t l)) leaves;
  (t, leaves)

let test_merkle_inclusion () =
  List.iter
    (fun n ->
      let t, leaves = build n in
      let root = Ctlog.Merkle.root t in
      List.iteri
        (fun i leaf ->
          let proof = Ctlog.Merkle.inclusion_proof t i in
          if not (Ctlog.Merkle.verify_inclusion ~leaf ~index:i ~size:n ~proof ~root)
          then Alcotest.failf "inclusion failed at %d/%d" i n;
          if Ctlog.Merkle.verify_inclusion ~leaf:"forged" ~index:i ~size:n ~proof ~root
          then Alcotest.failf "forged leaf accepted at %d/%d" i n)
        leaves)
    [ 1; 2; 3; 7; 8; 9; 16; 33 ]

let test_merkle_consistency () =
  List.iter
    (fun n ->
      let t, _ = build n in
      let new_root = Ctlog.Merkle.root t in
      for m = 0 to n do
        let old_root = Ctlog.Merkle.root_of_range t m in
        let proof = Ctlog.Merkle.consistency_proof t m in
        if
          not
            (Ctlog.Merkle.verify_consistency ~old_size:m ~old_root ~new_size:n
               ~new_root ~proof)
        then Alcotest.failf "consistency failed %d -> %d" m n
      done)
    [ 1; 2; 5; 8; 13; 32 ]

let test_merkle_consistency_rejects () =
  let t, _ = build 16 in
  let proof = Ctlog.Merkle.consistency_proof t 7 in
  let bogus_old = Ucrypto.Sha256.digest "bogus" in
  check Alcotest.bool "wrong old root rejected" false
    (Ctlog.Merkle.verify_consistency ~old_size:7 ~old_root:bogus_old ~new_size:16
       ~new_root:(Ctlog.Merkle.root t) ~proof)

let prop_merkle_random =
  QCheck.Test.make ~name:"inclusion proofs verify for random sizes" ~count:60
    QCheck.(pair (int_range 1 80) (int_range 0 1000))
    (fun (n, pick) ->
      let t, leaves = build n in
      let i = pick mod n in
      let proof = Ctlog.Merkle.inclusion_proof t i in
      Ctlog.Merkle.verify_inclusion ~leaf:(List.nth leaves i) ~index:i ~size:n ~proof
        ~root:(Ctlog.Merkle.root t))

(* --- log --------------------------------------------------------------- *)

let test_log_scts () =
  let log = Ctlog.Log.create ~name:"test-log" in
  let sct1 = Ctlog.Log.add_chain log "der-one" in
  let sct2 = Ctlog.Log.add_chain log ~precert:true "der-two" in
  check Alcotest.int "size" 2 (Ctlog.Log.size log);
  check Alcotest.bool "sct1 verifies" true (Ctlog.Log.verify_sct log ~der:"der-one" sct1);
  check Alcotest.bool "sct2 verifies" true (Ctlog.Log.verify_sct log ~der:"der-two" sct2);
  check Alcotest.bool "wrong der" false (Ctlog.Log.verify_sct log ~der:"der-X" sct1);
  let other = Ctlog.Log.create ~name:"other-log" in
  check Alcotest.bool "wrong log" false (Ctlog.Log.verify_sct other ~der:"der-one" sct1);
  check Alcotest.bool "entry lookup" true
    (match Ctlog.Log.get log 1 with
    | Some e -> e.Ctlog.Log.precert && e.Ctlog.Log.der = "der-two"
    | None -> false)

(* --- dataset ------------------------------------------------------------ *)

let test_dataset_determinism () =
  let serials scale seed =
    let out = ref [] in
    Ctlog.Dataset.iter ~scale ~seed (fun e ->
        out := e.Ctlog.Dataset.cert.X509.Certificate.tbs.X509.Certificate.serial :: !out);
    List.rev !out
  in
  check (Alcotest.list Alcotest.string) "same seed same corpus" (serials 50 7)
    (serials 50 7);
  check Alcotest.bool "different seed differs" true (serials 50 7 <> serials 50 8)

let test_dataset_structure () =
  let n = ref 0 in
  Ctlog.Dataset.iter ~scale:300 ~seed:3 (fun e ->
      incr n;
      let cert = e.Ctlog.Dataset.cert in
      (* Every corpus certificate parses back from its DER. *)
      (match X509.Certificate.parse cert.X509.Certificate.der with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "corpus cert does not reparse: %s" (Faults.Error.to_string m));
      (* And its signature binds to the issuer key. *)
      if
        not
          (X509.Certificate.verify
             ~issuer_spki:
               (X509.Certificate.keypair_spki e.Ctlog.Dataset.issuer.Ctlog.Dataset.keypair)
             cert)
      then Alcotest.fail "corpus cert signature invalid";
      (* Issuance year within the issuer's range. *)
      let y0, y1, _ = e.Ctlog.Dataset.issuer.Ctlog.Dataset.years in
      let y = e.Ctlog.Dataset.issued.Asn1.Time.year in
      if y < y0 || y > y1 then Alcotest.failf "year %d outside [%d,%d]" y y0 y1);
  check Alcotest.int "requested scale" 300 !n

let test_dataset_calibration () =
  (* Shape-level targets from the paper at a modest scale (seed-stable). *)
  let total = ref 0 and nc = ref 0 and nc_trusted = ref 0 and idn = ref 0 in
  Ctlog.Dataset.iter ~scale:12000 ~seed:1 (fun e ->
      incr total;
      if e.Ctlog.Dataset.is_idn then incr idn;
      let findings =
        Lint.Registry.noncompliant ~issued:e.Ctlog.Dataset.issued e.Ctlog.Dataset.cert
      in
      if findings <> [] then begin
        incr nc;
        if e.Ctlog.Dataset.issuer.Ctlog.Dataset.trust_at_issuance = Ctlog.Dataset.Public
        then incr nc_trusted
      end);
  let rate = float_of_int !nc /. float_of_int !total in
  if rate < 0.004 || rate > 0.012 then
    Alcotest.failf "noncompliance rate %.4f outside [0.004, 0.012] (paper: 0.0072)" rate;
  let trusted_share = float_of_int !nc_trusted /. float_of_int (max 1 !nc) in
  if trusted_share < 0.50 || trusted_share > 0.80 then
    Alcotest.failf "trusted NC share %.2f outside [0.50, 0.80] (paper: 0.653)"
      trusted_share;
  let idn_share = float_of_int !idn /. float_of_int !total in
  if idn_share < 0.75 then Alcotest.failf "IDN share %.2f unexpectedly low" idn_share

let test_dataset_flawed_certs_detectable () =
  (* Every injected (non-era) flaw is found by the undated linter. *)
  let missed = ref 0 and flawed = ref 0 in
  Ctlog.Dataset.iter ~scale:4000 ~seed:5 (fun e ->
      if e.Ctlog.Dataset.flaws <> [] then begin
        incr flawed;
        let findings =
          Lint.Registry.noncompliant ~respect_effective_dates:false
            ~issued:e.Ctlog.Dataset.issued e.Ctlog.Dataset.cert
        in
        if findings = [] then incr missed
      end);
  check Alcotest.int "no flawed cert escapes the undated linter" 0 !missed;
  check Alcotest.bool "some flawed certs exist" true (!flawed > 10)

let test_canonical_encoding_agreement () =
  (* For every corpus certificate: parse the DER back and re-encode the
     parsed TBS — the bytes must be identical (encoder and decoder agree
     on a canonical form across every value type the corpus uses,
     including deliberately noncompliant string payloads). *)
  Ctlog.Dataset.iter ~scale:800 ~seed:13 (fun e ->
      let cert = e.Ctlog.Dataset.cert in
      match X509.Certificate.parse cert.X509.Certificate.der with
      | Error m -> Alcotest.fail (Faults.Error.to_string m)
      | Ok parsed ->
          if
            not
              (String.equal
                 (X509.Certificate.encode_tbs parsed.X509.Certificate.tbs)
                 parsed.X509.Certificate.tbs_der)
          then
            Alcotest.failf "re-encoded TBS differs for a %s certificate"
              e.Ctlog.Dataset.issuer.Ctlog.Dataset.org)

let test_populate_log () =
  let log = Ctlog.Log.create ~name:"populate-test" in
  let precerts, finals = Ctlog.Dataset.populate_log ~scale:400 ~seed:11 log in
  check Alcotest.int "entry accounting" (Ctlog.Log.size log) (precerts + finals);
  let share = float_of_int precerts /. float_of_int (precerts + finals) in
  if share < 0.48 || share > 0.62 then
    Alcotest.failf "precert share %.3f outside [0.48, 0.62] (paper: 0.547)" share;
  (* The dataset-filtering step: precert entries carry the poison. *)
  let poisoned =
    List.filter
      (fun (e : Ctlog.Log.entry) ->
        match X509.Certificate.parse e.Ctlog.Log.der with
        | Ok c -> X509.Certificate.is_precertificate c
        | Error _ -> false)
      (Ctlog.Log.entries log)
  in
  check Alcotest.int "poison marks exactly the precerts" precerts (List.length poisoned)

let test_issuer_table () =
  let issuers = Ctlog.Dataset.issuers in
  check Alcotest.bool "over 20 issuers" true (List.length issuers >= 20);
  let find org = List.find (fun i -> i.Ctlog.Dataset.org = org) issuers in
  let le = find "Let's Encrypt" in
  check Alcotest.bool "LE is dominant" true
    (List.for_all (fun i -> i.Ctlog.Dataset.volume <= le.Ctlog.Dataset.volume) issuers);
  check Alcotest.bool "LE idn-only" true (le.Ctlog.Dataset.idn_share = 1.0);
  let symantec = find "Symantec Corporation" in
  check Alcotest.bool "symantec distrusted now" true
    (symantec.Ctlog.Dataset.trust_now = Ctlog.Dataset.Untrusted);
  check Alcotest.bool "symantec trusted at issuance" true
    (symantec.Ctlog.Dataset.trust_at_issuance = Ctlog.Dataset.Public)

let suite =
  [
    Alcotest.test_case "merkle empty/leaf vectors" `Quick test_merkle_empty_and_leaf;
    Alcotest.test_case "merkle inclusion proofs" `Quick test_merkle_inclusion;
    Alcotest.test_case "merkle consistency proofs" `Quick test_merkle_consistency;
    Alcotest.test_case "merkle rejects bogus roots" `Quick test_merkle_consistency_rejects;
    Alcotest.test_case "log SCTs" `Quick test_log_scts;
    Alcotest.test_case "dataset determinism" `Quick test_dataset_determinism;
    Alcotest.test_case "dataset structural invariants" `Quick test_dataset_structure;
    Alcotest.test_case "dataset calibration bounds" `Slow test_dataset_calibration;
    Alcotest.test_case "flawed certs all detectable" `Slow test_dataset_flawed_certs_detectable;
    Alcotest.test_case "canonical encode/decode agreement" `Slow
      test_canonical_encoding_agreement;
    Alcotest.test_case "populate log with precerts" `Slow test_populate_log;
    Alcotest.test_case "issuer table" `Quick test_issuer_table;
    qtest prop_merkle_random;
  ]
