(* Monitor-daemon smoke test: spawn the real unicert-monitord binary
   against faulty simulated logs (10% net fault rate) and check the
   serving contract end to end:

   - a scripted query battery (per-profile subject searches incl. the
     Punycode edge cases, direct index lookups, stats) answers with
     well-formed sealed frames and the expected verdicts;
   - responses are byte-identical across --jobs 1/2/4;
   - SIGTERM is a clean shutdown: final manifest commit, exit 0, the
     store passes fsck — and a restarted daemon resumes from its
     cursors and converges to the byte-identical battery responses.

   The daemon path arrives as argv(1) from the dune rule. *)

let daemon =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: serve_smoke DAEMON_EXE";
    exit 2
  end
  else Sys.argv.(1)

let scale = 600
let seed = 5

let base_args =
  [
    "--scale"; string_of_int scale; "--seed"; string_of_int seed;
    "--source"; "fetch"; "--logs"; "8"; "--net-seed"; "41";
    "--net-fault-rate"; "0.1"; "--publish-per-tick"; "8";
    "--commit-every"; "4"; "--no-progress";
  ]

let failures = ref 0

let checkf ok fmt =
  Printf.ksprintf
    (fun msg ->
      if ok then Printf.printf "ok: %s\n%!" msg
      else begin
        incr failures;
        Printf.printf "FAIL: %s\n%!" msg
      end)
    fmt

(* The battery: subject searches per profile (the Table 6 edge cases),
   index lookups against all five persistent indexes, and stats. *)
let battery =
  [
    "q crtsh example";
    "q crtsh shop.xn--p1ai";
    "q sslmate xn--bcher-kva.com";
    "q facebook shop.xn--q9jyb4c";
    "q entrust xn--bcher-kva.com";
    "q entrust shop.xn--p1ai";
    "q merklemap b\xc3\xbccher";
    "ix issuer COMODO CA Limited";
    "ix ulabel b\xc3\xbccher";
    "ix domain example";
    "ix flaw Invalid Encoding";
    "ix lint e_subject_locality_not_printable_or_utf8";
    "stats";
  ]

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

(* Run the daemon over a fresh or existing store with [extra] args,
   write [input] lines to stdin, return (stdout, exit status). *)
let run_daemon ~dir ~extra ~input () =
  let args =
    Array.of_list ((daemon :: "--store" :: dir :: base_args) @ extra)
  in
  let out, inp, err =
    Unix.open_process_args_full daemon args (Unix.environment ())
  in
  List.iter (fun l -> output_string inp (l ^ "\n")) input;
  close_out inp;
  let stdout_s = read_all out in
  let stderr_s = read_all err in
  let status = Unix.close_process_full (out, inp, err) in
  (stdout_s, stderr_s, status)

(* Split a concatenated stream of sealed frames on their "end <hex>"
   trailers and validate each seal: payload lines rejoined + trailer
   must round-trip through Ctlog.Wire. *)
let frames_of s =
  let lines = String.split_on_char '\n' s in
  let rec go acc frame = function
    | [] -> List.rev acc
    | line :: rest ->
        if String.length line > 4 && String.sub line 0 4 = "end " then begin
          let body =
            String.concat "" (List.rev_map (fun l -> l ^ "\n") frame)
            ^ line ^ "\n"
          in
          (match Ctlog.Wire.open_ body with
          | Some payload -> go (payload :: acc) [] rest
          | None -> failwith (Printf.sprintf "unsealed frame: %S" body))
        end
        else if line = "" then go acc frame rest
        else go acc (line :: frame) rest
  in
  go [] [] lines

let first_line = function l :: _ -> l | [] -> "(empty frame)"

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "unicert-serve-smoke-%s-%d" name (Unix.getpid ()))

let () =
  (* --- 1. battery semantics + byte stability across --jobs --------- *)
  let outputs =
    List.map
      (fun jobs ->
        let dir = tmp (Printf.sprintf "jobs%d" jobs) in
        rm_rf dir;
        let stdout_s, stderr_s, status =
          run_daemon ~dir
            ~extra:[ "--ticks"; "12"; "--jobs"; string_of_int jobs ]
            ~input:(battery @ [ "quit" ])
            ()
        in
        checkf (status = Unix.WEXITED 0) "jobs=%d daemon exits 0 (stderr: %s)"
          jobs (String.trim stderr_s);
        if jobs = 1 then rm_rf dir;  (* jobs=2/4 dirs reused below *)
        (jobs, dir, stdout_s))
      [ 1; 2; 4 ]
  in
  let _, _, ref_out = List.hd outputs in
  List.iter
    (fun (jobs, _, out) ->
      checkf (out = ref_out) "jobs=%d responses byte-identical to jobs=1" jobs)
    (List.tl outputs);
  let frames = frames_of ref_out in
  checkf
    (List.length frames = List.length battery + 1)
    "one sealed frame per query (+bye), got %d" (List.length frames);
  let reply i = first_line (List.nth frames i) in
  let expect i pred what =
    checkf (pred (reply i)) "%S -> %S %s" (List.nth battery i) (reply i) what
  in
  let hits_nonzero r = starts_with "hits " r && not (starts_with "hits 0" r) in
  expect 0 hits_nonzero "fuzzy subject search finds hits";
  expect 1 (starts_with "hits") "crtsh serves Punycode ccIDN queries";
  expect 2 (starts_with "hits") "sslmate accepts a legal A-label";
  expect 3 (starts_with "hits") "facebook serves an IDN-gTLD A-label";
  expect 4 (starts_with "hits")
    "entrust refusal is scoped to ccIDN TLDs (the conflation bugfix)";
  expect 5 (starts_with "refused") "entrust refuses Punycode ccIDN";
  expect 6 (starts_with "refused") "U-label input refused (Table 6)";
  List.iter
    (fun i -> expect i hits_nonzero "index lookup finds hits")
    [ 7; 8; 9; 10; 11 ];
  expect 12
    (starts_with (Printf.sprintf "stats committed=%d" scale))
    "whole corpus committed";

  (* --- 2. SIGTERM: clean shutdown, then resumable restart ---------- *)
  let dir = tmp "sigterm" in
  rm_rf dir;
  let args =
    Array.of_list
      ((daemon :: "--store" :: dir :: base_args) @ [ "--ticks"; "4" ])
  in
  let out_r, out_w = Unix.pipe () in
  let in_r, in_w = Unix.pipe () in
  let pid = Unix.create_process daemon args in_r out_w Unix.stderr in
  Unix.close out_w;
  Unix.close in_r;
  (* Let the partial ingest (4 of the ~10 ticks needed) land, then ask
     for a graceful stop while the daemon sits in its stdin loop. *)
  Unix.sleepf 2.0;
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  Unix.close in_w;
  Unix.close out_r;
  checkf (status = Unix.WEXITED 0) "SIGTERM is a clean exit 0";
  let report = Store.Db.fsck ~dir () in
  checkf report.Store.Db.usable "store usable after SIGTERM";
  let db = Store.Db.open_ro ~dir in
  let committed = ref 0 in
  Store.Db.iter_pairs db (fun _ _ -> incr committed);
  checkf
    (!committed > 0 && !committed < scale)
    "shutdown committed a partial prefix (%d of %d)" !committed scale;
  (* Restart over the same store: cursors + committed prefix resume,
     and the finished battery matches the fresh-run bytes. *)
  let stdout_s, stderr_s, status =
    run_daemon ~dir ~extra:[ "--ticks"; "12" ]
      ~input:(battery @ [ "quit" ]) ()
  in
  checkf (status = Unix.WEXITED 0) "restarted daemon exits 0 (stderr: %s)"
    (String.trim stderr_s);
  checkf (stdout_s = ref_out)
    "restart after SIGTERM converges to byte-identical responses";
  rm_rf dir;
  List.iter (fun (_, d, _) -> rm_rf d) (List.tl outputs);

  if !failures > 0 then begin
    Printf.printf "serve_smoke: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "serve_smoke: all checks passed"
