(* Tests for the unicert core: classification, browser models, and the
   full pipeline. *)

let check = Alcotest.check

let ca = X509.Certificate.mock_keypair ~seed:"unicert-test-ca" ()

let cert ?(org = None) ?(cn = "plain.example.com") sans =
  let subject =
    (match org with Some o -> [ X509.Dn.atv X509.Attr.Organization_name o ] | None -> [])
    @ [ X509.Dn.atv X509.Attr.Common_name cn ]
  in
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "UC CA") ])
      ~subject:(X509.Dn.single subject)
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki ca)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        [ X509.Extension.subject_alt_name
            (List.map (fun d -> X509.General_name.Dns_name d) sans) ]
      ()
  in
  X509.Certificate.sign ca tbs

let test_classify () =
  let plain = cert [ "plain.example.com" ] in
  check Alcotest.bool "plain not unicert" false (Unicert.Classify.is_unicert plain);
  check Alcotest.bool "plain not idncert" false (Unicert.Classify.is_idncert plain);
  let idn = cert ~cn:"xn--bcher-kva.de" [ "xn--bcher-kva.de" ] in
  check Alcotest.bool "alabel is unicert" true (Unicert.Classify.is_unicert idn);
  check Alcotest.bool "alabel is idncert" true (Unicert.Classify.is_idncert idn);
  let multilingual = cert ~org:(Some "St\xC3\xB6ri AG") [ "plain.example.com" ] in
  check Alcotest.bool "unicode org is unicert" true
    (Unicert.Classify.is_unicert multilingual);
  check Alcotest.bool "unicode org not idncert" false
    (Unicert.Classify.is_idncert multilingual);
  let ctrl = cert ~org:(Some "Evil\x01Org") [ "plain.example.com" ] in
  check Alcotest.bool "control char is unicert" true (Unicert.Classify.is_unicert ctrl)

let test_unicode_fields () =
  let c = cert ~org:(Some "St\xC3\xB6ri AG") [ "xn--bcher-kva.de" ] in
  let fields = Unicert.Classify.unicode_fields c in
  check Alcotest.bool "org flagged" true
    (List.assoc "subject.organizationName" fields);
  check Alcotest.bool "san idn flagged" true (List.assoc "san.dNSName" fields);
  check Alcotest.bool "country not flagged" false
    (List.mem_assoc "subject.countryName" fields
    && List.assoc "subject.countryName" fields)

(* --- browsers ------------------------------------------------------------ *)

let test_browser_rendering () =
  let open Unicert.Browsers in
  (* C0 policies *)
  check Alcotest.string "firefox raw" "A\x01B" (render_field firefox "A\x01B");
  check Alcotest.string "chromium url-encodes" "A%01B" (render_field chromium "A\x01B");
  check Alcotest.string "safari control picture" "A\xE2\x90\x81B"
    (render_field safari "A\x01B");
  (* Layout controls vanish everywhere. *)
  List.iter
    (fun b ->
      check Alcotest.string (b.name ^ " hides zwsp") "shop"
        (render_field b "sh\xE2\x80\x8Bop"))
    all

let test_browser_bidi_spoof () =
  let open Unicert.Browsers in
  let crafted = "www.\xE2\x80\xAElapyap\xE2\x80\xAC.com" in
  List.iter
    (fun b ->
      check Alcotest.string (b.name ^ " renders RLO visually") "www.paypal.com"
        (render_field b crafted))
    all;
  let spoofs = warning_spoof_demo () in
  let spoofed name = (List.find (fun (s : spoof) -> s.browser = name) spoofs).spoofed in
  check Alcotest.bool "firefox warning spoofable" true (spoofed "Firefox");
  check Alcotest.bool "chromium warning spoofable" true (spoofed "Chromium-based");
  check Alcotest.bool "safari warning not spoofable" false (spoofed "Safari")

let test_table14 () =
  let open Unicert.Browsers in
  let rows = table14 () in
  let row name = List.find (fun (r : row) -> r.browser = name) rows in
  check Alcotest.bool "firefox c0 invisible" false (row "Firefox").c0_c1_visible;
  check Alcotest.bool "safari c0 visible" true (row "Safari").c0_c1_visible;
  check Alcotest.bool "chromium c0 visible" true (row "Chromium-based").c0_c1_visible;
  List.iter
    (fun (r : row) ->
      check Alcotest.bool (r.browser ^ " layout invisible") false r.layout_visible;
      check Alcotest.bool (r.browser ^ " homograph feasible") true r.homograph_feasible)
    rows;
  check Alcotest.bool "chromium range check" false (row "Chromium-based").flawed_range_check;
  check Alcotest.bool "firefox lacks range check" true (row "Firefox").flawed_range_check

(* --- pipeline -------------------------------------------------------------- *)

let test_pipeline_invariants () =
  let t = Unicert.Pipeline.run ~scale:3000 ~seed:2 () in
  check Alcotest.int "total" 3000 t.Unicert.Pipeline.total;
  check Alcotest.bool "nc subset" true (t.Unicert.Pipeline.nc_total <= t.Unicert.Pipeline.total);
  check Alcotest.int "trust split sums" t.Unicert.Pipeline.nc_total
    (t.Unicert.Pipeline.nc_trusted + t.Unicert.Pipeline.nc_limited
    + t.Unicert.Pipeline.nc_untrusted);
  check Alcotest.bool "undated >= dated" true
    (t.Unicert.Pipeline.nc_ignoring_dates >= t.Unicert.Pipeline.nc_total);
  check Alcotest.bool "old-lints-only <= dated" true
    (t.Unicert.Pipeline.nc_old_lints_only <= t.Unicert.Pipeline.nc_total);
  (* year histogram sums to total *)
  let year_sum =
    Hashtbl.fold (fun _ (s : Unicert.Pipeline.year_stats) acc -> acc + s.Unicert.Pipeline.issued)
      t.Unicert.Pipeline.years 0
  in
  check Alcotest.int "years sum" 3000 year_sum;
  (* issuer totals sum to total *)
  let issuer_sum =
    Hashtbl.fold (fun _ (s : Unicert.Pipeline.issuer_stats) acc -> acc + s.Unicert.Pipeline.total)
      t.Unicert.Pipeline.issuers 0
  in
  check Alcotest.int "issuers sum" 3000 issuer_sum;
  (* per-lint histogram covers at least the nc certs *)
  let lint_total = List.fold_left (fun a (_, n) -> a + n) 0 (Unicert.Pipeline.top_lints t) in
  check Alcotest.bool "lint hits >= nc certs" true (lint_total >= t.Unicert.Pipeline.nc_total)

let test_pipeline_cdf () =
  let t = Unicert.Pipeline.run ~scale:2000 ~seed:3 () in
  List.iter
    (fun cls ->
      let points = Unicert.Pipeline.validity_cdf t cls in
      match (points, List.rev points) with
      | (_, f0) :: _, (_, fn) :: _ ->
          check Alcotest.bool "cdf starts > 0" true (f0 > 0.0);
          check (Alcotest.float 1e-9) "cdf ends at 1" 1.0 fn;
          (* monotone *)
          ignore
            (List.fold_left
               (fun prev (d, f) ->
                 if f < prev then Alcotest.failf "cdf not monotone at %d" d;
                 f)
               0.0 points)
      | [], _ | _, [] -> Alcotest.fail "empty cdf")
    [ Unicert.Pipeline.V_idn; Unicert.Pipeline.V_normal ]

let test_report_rendering () =
  (* Every report renders without raising on a small pipeline. *)
  let t = Unicert.Pipeline.run ~scale:600 ~seed:9 () in
  let buf = Buffer.create 65536 in
  let ppf = Format.formatter_of_buffer buf in
  Unicert.Report.all ppf t;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  List.iter
    (fun needle ->
      let contains =
        let hn = String.length out and nn = String.length needle in
        let rec go i = i + nn <= hn && (String.sub out i nn = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool ("report mentions " ^ needle) true contains)
    [ "Figure 2"; "Table 1"; "Table 2"; "Figure 3"; "Figure 4"; "Table 11";
      "Ablations"; "encoding-error certs" ]

let test_pipeline_determinism () =
  let a = Unicert.Pipeline.run ~scale:800 ~seed:4 () in
  let b = Unicert.Pipeline.run ~scale:800 ~seed:4 () in
  check Alcotest.int "same nc" a.Unicert.Pipeline.nc_total b.Unicert.Pipeline.nc_total;
  check Alcotest.int "same idn" a.Unicert.Pipeline.idncerts b.Unicert.Pipeline.idncerts

let suite =
  [
    Alcotest.test_case "unicert classification" `Quick test_classify;
    Alcotest.test_case "unicode fields" `Quick test_unicode_fields;
    Alcotest.test_case "browser rendering" `Quick test_browser_rendering;
    Alcotest.test_case "browser bidi spoof (fig 7)" `Quick test_browser_bidi_spoof;
    Alcotest.test_case "table 14" `Quick test_table14;
    Alcotest.test_case "pipeline invariants" `Slow test_pipeline_invariants;
    Alcotest.test_case "pipeline cdf" `Slow test_pipeline_cdf;
    Alcotest.test_case "report rendering" `Slow test_report_rendering;
    Alcotest.test_case "pipeline determinism" `Slow test_pipeline_determinism;
  ]
