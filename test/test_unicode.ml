(* Unit and property tests for the unicode library: codecs, blocks,
   properties, NFC, confusables. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- generators ----------------------------------------------------- *)

let scalar_cp =
  QCheck.Gen.(
    frequency
      [ (6, int_range 0x20 0x7E);
        (3, int_range 0xA0 0x2FFF);
        (2, int_range 0x3000 0xFFFD);
        (1, int_range 0x10000 0x10FFFF) ]
    |> map (fun cp -> if Unicode.Cp.is_surrogate cp then 0xFFFD else cp))

let scalar_array =
  QCheck.make
    ~print:(fun a ->
      String.concat ";" (List.map Unicode.Cp.to_string (Array.to_list a)))
    QCheck.Gen.(array_size (int_range 0 32) scalar_cp)

(* --- codec tests ---------------------------------------------------- *)

let test_utf8_known () =
  check (Alcotest.list Alcotest.int) "ascii" [ 0x68; 0x69 ] (Unicode.Codec.cp_list "hi");
  check (Alcotest.list Alcotest.int) "2-byte" [ 0xE9 ] (Unicode.Codec.cp_list "\xC3\xA9");
  check (Alcotest.list Alcotest.int) "3-byte" [ 0x4E2D ]
    (Unicode.Codec.cp_list "\xE4\xB8\xAD");
  check (Alcotest.list Alcotest.int) "4-byte" [ 0x1F600 ]
    (Unicode.Codec.cp_list "\xF0\x9F\x98\x80")

let test_utf8_malformed () =
  let bad =
    [ "\xC0\xAF" (* overlong *); "\xED\xA0\x80" (* surrogate *);
      "\xF4\x90\x80\x80" (* > U+10FFFF *); "\xC3" (* truncated *);
      "\xFF" (* invalid lead *); "\x80" (* stray continuation *) ]
  in
  List.iter
    (fun s ->
      check Alcotest.bool (Printf.sprintf "reject %S" s) false
        (Unicode.Codec.well_formed_utf8 s))
    bad

let test_ascii_policies () =
  let open Unicode.Codec in
  check Alcotest.bool "strict fails" true (Result.is_error (decode Ascii "a\xFF"));
  check (Alcotest.array Alcotest.int) "replace"
    [| 0x61; 0xFFFD |]
    (decode_exn ~policy:(Replace 0xFFFD) Ascii "a\xFF");
  check (Alcotest.array Alcotest.int) "skip" [| 0x61 |]
    (decode_exn ~policy:Skip Ascii "a\xFF");
  check Alcotest.string "escape"
    "a\\xFF"
    (utf8_of_cps (decode_exn ~policy:Escape_hex Ascii "a\xFF"))

let test_ucs2_utf16 () =
  let open Unicode.Codec in
  check (Alcotest.array Alcotest.int) "ucs2" [| 0x6769 |] (decode_exn Ucs2 "gi");
  check (Alcotest.array Alcotest.int) "utf16 pair" [| 0x1F600 |]
    (decode_exn Utf16be "\xD8\x3D\xDE\x00");
  check Alcotest.bool "utf16 unpaired high fails" true
    (Result.is_error (decode Utf16be "\xD8\x3D\x00a"));
  check Alcotest.bool "ucs2 odd fails" true (Result.is_error (decode Ucs2 "abc"));
  (* UCS-2 passes surrogate units through. *)
  check (Alcotest.array Alcotest.int) "ucs2 surrogate raw" [| 0xD83D; 0xDE00 |]
    (decode_exn Ucs2 "\xD8\x3D\xDE\x00")

let prop_utf8_roundtrip =
  QCheck.Test.make ~name:"utf8 encode/decode roundtrip" ~count:500 scalar_array
    (fun cps ->
      Unicode.Codec.cps_of_utf8 (Unicode.Codec.utf8_of_cps cps) = cps)

let prop_latin1_roundtrip =
  QCheck.Test.make ~name:"latin1 roundtrip" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 64))
    (fun s ->
      match Unicode.Codec.encode Unicode.Codec.Iso8859_1 (Unicode.Codec.cps_of_latin1 s) with
      | Ok s' -> String.equal s s'
      | Error _ -> false)

let prop_utf16_roundtrip =
  QCheck.Test.make ~name:"utf16 roundtrip" ~count:300 scalar_array (fun cps ->
      match Unicode.Codec.encode Unicode.Codec.Utf16be cps with
      | Ok bytes -> Unicode.Codec.decode_exn Unicode.Codec.Utf16be bytes = cps
      | Error _ -> false)

(* --- blocks --------------------------------------------------------- *)

let test_blocks_lookup () =
  check Alcotest.string "latin" "Basic Latin" (Unicode.Blocks.name_of 0x41);
  check Alcotest.string "cjk" "CJK Unified Ideographs" (Unicode.Blocks.name_of 0x4E2D);
  check Alcotest.string "hangul" "Hangul Syllables" (Unicode.Blocks.name_of 0xAC00);
  check Alcotest.string "emoji" "Emoticons" (Unicode.Blocks.name_of 0x1F600);
  check Alcotest.string "no block" "No_Block" (Unicode.Blocks.name_of 0x2FE0)

let test_blocks_structure () =
  (* Ranges are sorted, non-overlapping, and aligned. *)
  let a = Unicode.Blocks.all in
  for i = 0 to Array.length a - 2 do
    if a.(i).Unicode.Blocks.last >= a.(i + 1).Unicode.Blocks.first then
      Alcotest.failf "blocks %s and %s overlap" a.(i).Unicode.Blocks.name
        a.(i + 1).Unicode.Blocks.name
  done;
  Array.iter
    (fun b ->
      if b.Unicode.Blocks.first mod 16 <> 0 then
        Alcotest.failf "block %s start not 16-aligned" b.Unicode.Blocks.name)
    a;
  check Alcotest.bool "over 300 blocks" true (Unicode.Blocks.count > 300);
  check Alcotest.int "three surrogate blocks" (Unicode.Blocks.count - 3)
    (Array.length Unicode.Blocks.non_surrogate)

let prop_block_find =
  QCheck.Test.make ~name:"find agrees with linear scan" ~count:300
    QCheck.(int_range 0 0x10FFFF)
    (fun cp ->
      let linear =
        Array.to_list Unicode.Blocks.all
        |> List.find_opt (fun b ->
               cp >= b.Unicode.Blocks.first && cp <= b.Unicode.Blocks.last)
      in
      Unicode.Blocks.find cp = linear)

(* --- props ---------------------------------------------------------- *)

let test_props () =
  check Alcotest.bool "NUL is C0" true (Unicode.Props.is_c0_control 0x00);
  check Alcotest.bool "DEL" true (Unicode.Props.is_del 0x7F);
  check Alcotest.bool "C1" true (Unicode.Props.is_c1_control 0x85);
  check Alcotest.bool "ZWSP layout" true (Unicode.Props.is_layout_control 0x200B);
  check Alcotest.bool "RLO bidi" true (Unicode.Props.is_bidi_control 0x202E);
  check Alcotest.bool "NBSP whitespace" true (Unicode.Props.is_nonascii_whitespace 0xA0);
  check Alcotest.bool "ideographic space" true
    (Unicode.Props.is_nonascii_whitespace 0x3000);
  check Alcotest.bool "space not invisible-class" false
    (Unicode.Props.is_invisible 0x20);
  check Alcotest.bool "soft hyphen format" true (Unicode.Props.is_format 0xAD);
  check Alcotest.bool "BOM format" true (Unicode.Props.is_format 0xFEFF)

let test_printable_string_charset () =
  let allowed = "ABCxyz019 '()+,-./:=?" in
  String.iter
    (fun c ->
      check Alcotest.bool (Printf.sprintf "allow %C" c) true
        (Unicode.Props.is_printable_string_char (Char.code c)))
    allowed;
  List.iter
    (fun c ->
      check Alcotest.bool (Printf.sprintf "forbid %C" c) false
        (Unicode.Props.is_printable_string_char (Char.code c)))
    [ '@'; '&'; '*'; '_'; '!'; ';'; '<'; '#'; '"' ]

(* --- NFC ------------------------------------------------------------ *)

let nfc_utf8 = Unicode.Normalize.utf8_to_nfc

let test_nfc_known () =
  check Alcotest.string "e + acute" "\xC3\xA9" (nfc_utf8 "e\xCC\x81");
  check Alcotest.string "composed stays" "\xC3\xA9" (nfc_utf8 "\xC3\xA9");
  check Alcotest.string "I + circumflex" "\xC3\x8Ele" (nfc_utf8 "I\xCC\x82le");
  check Alcotest.string "greek alpha tonos" "\xCE\xAC" (nfc_utf8 "\xCE\xB1\xCC\x81");
  check Alcotest.string "cyrillic io" "\xD1\x91" (nfc_utf8 "\xD0\xB5\xCC\x88");
  (* Hangul composition. *)
  check Alcotest.string "hangul ga" "\xEA\xB0\x80" (nfc_utf8 "\xE1\x84\x80\xE1\x85\xA1");
  (* Angstrom sign is a singleton: decomposes to A-ring and recomposes
     to the letter form. *)
  check Alcotest.string "angstrom" "\xC3\x85" (nfc_utf8 "\xE2\x84\xAB")

let test_nfc_vietnamese () =
  (* Multi-level composition: base + circumflex + tone. *)
  check (Alcotest.array Alcotest.int) "e-circumflex-acute" [| 0x1EBF |]
    (Unicode.Normalize.to_nfc [| 0x65; 0x302; 0x301 |]);
  check (Alcotest.array Alcotest.int) "a-circumflex-dot" [| 0x1EAD |]
    (Unicode.Normalize.to_nfc [| 0x61; 0x302; 0x323 |]);
  check (Alcotest.array Alcotest.int) "u-horn" [| 0x1B0 |]
    (Unicode.Normalize.to_nfc [| 0x75; 0x31B |]);
  check (Alcotest.array Alcotest.int) "u-horn-dot" [| 0x1EF1 |]
    (Unicode.Normalize.to_nfc [| 0x75; 0x31B; 0x323 |]);
  (* NFD of a two-level composition is fully flattened and ordered. *)
  check (Alcotest.array Alcotest.int) "nfd of 1EAD" [| 0x61; 0x323; 0x302 |]
    (Unicode.Normalize.decompose [| 0x1EAD |])

let test_nfc_ordering () =
  (* a + acute(230) + cedilla(202): canonical order puts the cedilla
     first, then a+acute composes across it. *)
  let out = Unicode.Normalize.to_nfc [| 0x61; 0x301; 0x327 |] in
  check (Alcotest.array Alcotest.int) "reorder+compose" [| 0xE1; 0x327 |] out

let test_nfc_blocked () =
  (* a + cedilla + acute: the cedilla (ccc 202) blocks nothing for the
     acute (ccc 230), so composition still happens. *)
  let out = Unicode.Normalize.to_nfc [| 0x61; 0x327; 0x301 |] in
  check (Alcotest.array Alcotest.int) "blocked composition" [| 0xE1; 0x327 |] out;
  (* Two acutes: the second is blocked (equal ccc). *)
  let out = Unicode.Normalize.to_nfc [| 0x61; 0x301; 0x301 |] in
  check (Alcotest.array Alcotest.int) "double acute" [| 0xE1; 0x301 |] out

let repertoire_cp =
  (* Code points inside the NFC table's coverage. *)
  QCheck.Gen.(
    frequency
      [ (4, int_range 0x20 0x7E); (3, int_range 0xC0 0x17F);
        (2, int_range 0x390 0x3CE); (2, int_range 0x400 0x45F);
        (1, int_range 0x300 0x30C); (1, int_range 0xAC00 0xAC40) ])

let repertoire_array =
  QCheck.make
    ~print:(fun a -> String.concat ";" (List.map string_of_int (Array.to_list a)))
    QCheck.Gen.(array_size (int_range 0 24) repertoire_cp)

let prop_nfc_idempotent =
  QCheck.Test.make ~name:"NFC idempotent" ~count:500 repertoire_array (fun cps ->
      let once = Unicode.Normalize.to_nfc cps in
      Unicode.Normalize.to_nfc once = once)

let prop_nfd_nfc_stable =
  QCheck.Test.make ~name:"NFC of NFD equals NFC" ~count:500 repertoire_array
    (fun cps ->
      Unicode.Normalize.to_nfc (Unicode.Normalize.decompose cps)
      = Unicode.Normalize.to_nfc cps)

(* --- confusables ---------------------------------------------------- *)

let test_confusables () =
  check Alcotest.bool "cyrillic a" true
    (Unicode.Confusables.confusable "paypal" "p\xD0\xB0ypal");
  check Alcotest.bool "greek omicron" true
    (Unicode.Confusables.confusable "google" "g\xCE\xBF\xCE\xBFgle");
  check Alcotest.bool "identical not confusable" false
    (Unicode.Confusables.confusable "paypal" "paypal");
  check Alcotest.bool "different words" false
    (Unicode.Confusables.confusable "paypal" "amazon");
  check Alcotest.string "fullwidth folds" "abc"
    (Unicode.Confusables.utf8_skeleton "\xEF\xBD\x81\xEF\xBD\x82\xEF\xBD\x83")

let test_classify () =
  check Alcotest.string "c0" "C0" (Unicode.Props.classify 0x01);
  check Alcotest.string "del" "DEL" (Unicode.Props.classify 0x7F);
  check Alcotest.string "c1" "C1" (Unicode.Props.classify 0x90);
  check Alcotest.string "layout" "layout" (Unicode.Props.classify 0x200B);
  check Alcotest.string "format" "format" (Unicode.Props.classify 0xAD);
  check Alcotest.string "space" "space" (Unicode.Props.classify 0x3000);
  check Alcotest.string "ascii" "printable-ascii" (Unicode.Props.classify 0x41);
  check Alcotest.string "latin1" "latin1" (Unicode.Props.classify 0xE9);
  check Alcotest.string "bmp" "bmp" (Unicode.Props.classify 0x4E2D);
  check Alcotest.string "astral" "astral" (Unicode.Props.classify 0x1F600)

(* Exhaustive equivalence of the direct-index flat tables against the
   interval/hashtable reference implementations they were generated
   from — every code point from U+0000 to U+10FFFF, so a table
   regeneration bug cannot hide in an untested range. *)
let test_flat_tables_exhaustive () =
  for cp = 0 to 0x10FFFF do
    if Unicode.Props.mask cp <> Unicode.Props.compute_mask cp then
      Alcotest.failf "Props.mask disagrees with compute_mask at U+%04X" cp;
    (match (Unicode.Blocks.find cp, Unicode.Blocks.find_interval cp) with
    | None, None -> ()
    | Some a, Some b when a = b -> ()
    | _ -> Alcotest.failf "Blocks.find disagrees with find_interval at U+%04X" cp);
    match
      (Unicode.Confusables.lookalike cp, Unicode.Confusables.lookalike_hashed cp)
    with
    | None, None -> ()
    | Some a, Some b when a = b -> ()
    | _ ->
        Alcotest.failf "Confusables.lookalike disagrees with hashed table at U+%04X"
          cp
  done

let prop_skeleton_equiv =
  QCheck.Test.make ~name:"flat skeleton equals hashed skeleton" ~count:500
    scalar_array
    (fun cps ->
      Unicode.Confusables.skeleton cps = Unicode.Confusables.skeleton_hashed cps)

let prop_block_edges =
  QCheck.Test.make ~name:"block edges map to themselves" ~count:200
    QCheck.(int_range 0 (Unicode.Blocks.count - 1))
    (fun i ->
      let b = Unicode.Blocks.all.(i) in
      Unicode.Blocks.find b.Unicode.Blocks.first = Some b
      && Unicode.Blocks.find b.Unicode.Blocks.last = Some b)

let test_escape_helpers () =
  check Alcotest.string "hex escape" "a\\x00b\\xFF"
    (Unicode.Escape.hex_escape_nonprintable "a\x00b\xFF");
  check Alcotest.string "url encode" "a%00b" (Unicode.Escape.url_encode_controls "a\x00b");
  check Alcotest.string "visible strips ZWSP" "shop"
    (Unicode.Escape.visible_utf8 "sh\xE2\x80\x8Bop")

let suite =
  [
    Alcotest.test_case "utf8 known vectors" `Quick test_utf8_known;
    Alcotest.test_case "utf8 malformed rejected" `Quick test_utf8_malformed;
    Alcotest.test_case "ascii error policies" `Quick test_ascii_policies;
    Alcotest.test_case "ucs2 and utf16" `Quick test_ucs2_utf16;
    Alcotest.test_case "block lookups" `Quick test_blocks_lookup;
    Alcotest.test_case "block table structure" `Quick test_blocks_structure;
    Alcotest.test_case "character properties" `Quick test_props;
    Alcotest.test_case "printable string charset" `Quick test_printable_string_charset;
    Alcotest.test_case "nfc known pairs" `Quick test_nfc_known;
    Alcotest.test_case "nfc vietnamese" `Quick test_nfc_vietnamese;
    Alcotest.test_case "nfc canonical ordering" `Quick test_nfc_ordering;
    Alcotest.test_case "nfc blocking" `Quick test_nfc_blocked;
    Alcotest.test_case "confusables" `Quick test_confusables;
    Alcotest.test_case "escape helpers" `Quick test_escape_helpers;
    Alcotest.test_case "classify" `Quick test_classify;
    Alcotest.test_case "flat tables exhaustive" `Quick test_flat_tables_exhaustive;
    qtest prop_skeleton_equiv;
    qtest prop_block_edges;
    qtest prop_utf8_roundtrip;
    qtest prop_latin1_roundtrip;
    qtest prop_utf16_roundtrip;
    qtest prop_block_find;
    qtest prop_nfc_idempotent;
    qtest prop_nfd_nfc_stable;
  ]
