(* Tests for the Obs telemetry library: counter semantics, histogram
   bucket edges, nested span timing, exporter formats, and the
   OBS_QUIET progress kill-switch. *)

let check = Alcotest.check

(* --- counters --------------------------------------------------------- *)

let test_counter () =
  let c = Obs.Counter.make ~help:"h" "c_total" in
  check (Alcotest.float 0.0) "starts at zero" 0.0 (Obs.Counter.value c);
  Obs.Counter.inc c;
  Obs.Counter.inc c;
  Obs.Counter.add c 2.5;
  check (Alcotest.float 1e-9) "inc+add" 4.5 (Obs.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.Counter.add: negative increment") (fun () ->
      Obs.Counter.add c (-1.0));
  Obs.Counter.reset c;
  check (Alcotest.float 0.0) "reset" 0.0 (Obs.Counter.value c)

let test_labeled_counter () =
  let f = Obs.Counter.Labeled.make ~label:"k" "lc_total" in
  let a = Obs.Counter.Labeled.get f "a" in
  let a' = Obs.Counter.Labeled.get f "a" in
  let b = Obs.Counter.Labeled.get f "b" in
  check Alcotest.bool "same label, same child" true (a == a');
  check Alcotest.bool "distinct labels, distinct children" true (not (a == b));
  Obs.Counter.inc a;
  Obs.Counter.inc a;
  Obs.Counter.inc b;
  check (Alcotest.float 0.0) "child a" 2.0 (Obs.Counter.value a);
  check (Alcotest.float 0.0) "child b" 1.0 (Obs.Counter.value b);
  check
    (Alcotest.list Alcotest.string)
    "children sorted by label" [ "a"; "b" ]
    (List.map fst (Obs.Counter.Labeled.children f))

(* --- histograms ------------------------------------------------------- *)

let test_histogram_edges () =
  let h = Obs.Histogram.make ~buckets:[| 1.0; 10.0; 100.0 |] "h_seconds" in
  (* Values exactly on an edge belong to that edge's bucket (le). *)
  Obs.Histogram.observe h 1.0;
  Obs.Histogram.observe h 10.0;
  Obs.Histogram.observe h 100.0;
  Obs.Histogram.observe h 100.000001;
  Obs.Histogram.observe h 0.5;
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 0.0) Alcotest.int))
    "cumulative le counts"
    [ (1.0, 2); (10.0, 3); (100.0, 4) ]
    (Obs.Histogram.cumulative h);
  check Alcotest.int "total count includes overflow" 5 (Obs.Histogram.count h);
  check (Alcotest.float 1e-6) "sum" 211.500001 (Obs.Histogram.sum h)

let test_log_buckets () =
  let b = Obs.Histogram.log_buckets ~base:1e-6 ~factor:4.0 ~count:5 in
  check Alcotest.int "count" 5 (Array.length b);
  check (Alcotest.float 1e-12) "base" 1e-6 b.(0);
  check (Alcotest.float 1e-9) "last" 2.56e-4 b.(4);
  Array.iteri
    (fun i v -> if i > 0 then check Alcotest.bool "increasing" true (v > b.(i - 1)))
    b;
  Alcotest.check_raises "bad factor rejected"
    (Invalid_argument "Obs.Histogram.log_buckets") (fun () ->
      ignore (Obs.Histogram.log_buckets ~base:1.0 ~factor:1.0 ~count:3))

(* --- spans ------------------------------------------------------------ *)

let test_span_nesting () =
  let registry = Obs.Registry.create () in
  check (Alcotest.list Alcotest.string) "no active span" []
    (Obs.Span.current ());
  Obs.Span.with_ ~registry "outer" (fun () ->
      check
        (Alcotest.list Alcotest.string)
        "outer active" [ "outer" ] (Obs.Span.current ());
      Obs.Span.with_ ~registry "inner" (fun () ->
          check
            (Alcotest.list Alcotest.string)
            "stack innermost first" [ "inner"; "outer" ] (Obs.Span.current ());
          Unix.sleepf 0.002));
  check (Alcotest.list Alcotest.string) "stack unwound" [] (Obs.Span.current ());
  let outer = Obs.Span.sum ~registry "outer"
  and inner = Obs.Span.sum ~registry "inner" in
  check Alcotest.bool "inner recorded >= slept time" true (inner >= 0.002);
  (* Nested timing monotonicity: the enclosing span can never be
     shorter than what it encloses. *)
  check Alcotest.bool "outer >= inner" true (outer >= inner);
  check Alcotest.int "outer count" 1 (Obs.Span.count ~registry "outer");
  check Alcotest.int "inner count" 1 (Obs.Span.count ~registry "inner");
  (* The duration is recorded even when the body raises. *)
  (try Obs.Span.with_ ~registry "raising" (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "raised span still recorded" 1
    (Obs.Span.count ~registry "raising");
  check (Alcotest.list Alcotest.string) "stack unwound after raise" []
    (Obs.Span.current ())

(* --- exporters -------------------------------------------------------- *)

let sample_registry () =
  let registry = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry ~help:"plain" "t_certs_total" in
  Obs.Counter.add c 42.0;
  let lc =
    Obs.Registry.labeled_counter ~registry ~label:"lint" "t_hits_total"
  in
  Obs.Counter.inc (Obs.Counter.Labeled.get lc "e_weird\"name");
  let g = Obs.Registry.gauge ~registry "t_scale" in
  Obs.Gauge.set g 7.5;
  let h =
    Obs.Registry.histogram ~registry ~buckets:[| 0.1; 1.0 |] "t_seconds"
  in
  Obs.Histogram.observe h 0.05;
  Obs.Histogram.observe h 2.0;
  registry

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_export_prometheus () =
  let text = Obs.Export.to_prometheus (sample_registry ()) in
  List.iter
    (fun line -> check Alcotest.bool line true (contains text line))
    [
      "# TYPE t_certs_total counter";
      "t_certs_total 42";
      "t_hits_total{lint=\"e_weird\\\"name\"} 1";
      "# TYPE t_scale gauge";
      "t_scale 7.5";
      "# TYPE t_seconds histogram";
      "t_seconds_bucket{le=\"0.1\"} 1";
      "t_seconds_bucket{le=\"1\"} 1";
      "t_seconds_bucket{le=\"+Inf\"} 2";
      "t_seconds_sum 2.05";
      "t_seconds_count 2";
    ]

let test_export_json () =
  let json = Obs.Export.to_json (sample_registry ()) in
  List.iter
    (fun frag -> check Alcotest.bool frag true (contains json frag))
    [
      "\"name\": \"t_certs_total\"";
      "\"value\": 42";
      "\"value_of_label\": \"e_weird\\\"name\"";
      "\"name\": \"t_scale\"";
      "\"value\": 7.5";
      "{\"le\": \"+Inf\", \"count\": 2}";
      "\"sum\": 2.05";
    ]

(* Both formats must expose the same numbers: extract every metric value
   mentioned in the JSON dump and require the Prometheus text to carry
   an identical sample line. *)
let test_export_round_trip () =
  let registry = sample_registry () in
  let prom = Obs.Export.to_prometheus registry in
  List.iter
    (fun (name, metric) ->
      match metric with
      | Obs.Registry.Counter c ->
          check Alcotest.bool (name ^ " value in both") true
            (contains prom
               (Printf.sprintf "%s %g" name (Obs.Counter.value c)))
      | Obs.Registry.Gauge g ->
          check Alcotest.bool (name ^ " value in both") true
            (contains prom (Printf.sprintf "%s %g" name (Obs.Gauge.value g)))
      | Obs.Registry.Histogram h ->
          check Alcotest.bool (name ^ " count in both") true
            (contains prom
               (Printf.sprintf "%s_count %d" name (Obs.Histogram.count h)))
      | _ -> ())
    (Obs.Registry.metrics registry)

let test_write_file_by_extension () =
  let registry = sample_registry () in
  let prom_path = Filename.temp_file "obs" ".prom" in
  let json_path = Filename.temp_file "obs" ".json" in
  Obs.Export.write_file registry prom_path;
  Obs.Export.write_file registry json_path;
  let slurp p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  check Alcotest.bool "prom file is exposition text" true
    (contains (slurp prom_path) "# TYPE t_certs_total counter");
  check Alcotest.bool "json file is json" true
    (contains (slurp json_path) "{\"counters\":");
  Sys.remove prom_path;
  Sys.remove json_path

(* --- registry --------------------------------------------------------- *)

let test_registry_idempotent () =
  let registry = Obs.Registry.create () in
  let a = Obs.Registry.counter ~registry "same_total" in
  let b = Obs.Registry.counter ~registry "same_total" in
  check Alcotest.bool "same handle back" true (a == b);
  check Alcotest.bool "kind clash raises" true
    (try
       ignore (Obs.Registry.gauge ~registry "same_total");
       false
     with Invalid_argument _ -> true)

(* --- progress --------------------------------------------------------- *)

let test_progress_quiet () =
  let devnull = open_out Filename.null in
  Fun.protect
    ~finally:(fun () ->
      close_out devnull;
      Unix.putenv "OBS_QUIET" "";
      Obs.Progress.set_override None)
    (fun () ->
      (* OBS_QUIET suppresses output even where a TTY would allow it. *)
      Unix.putenv "OBS_QUIET" "1";
      Obs.Progress.set_override None;
      let p = Obs.Progress.create ~total:10 ~out:devnull ~label:"gen" () in
      check Alcotest.bool "quiet -> inactive" false (Obs.Progress.active p);
      Obs.Progress.tick p;
      check Alcotest.int "ticks still counted" 1 (Obs.Progress.count p);
      (* --progress (override on) beats OBS_QUIET ... *)
      Obs.Progress.set_override (Some true);
      let p = Obs.Progress.create ~total:10 ~out:devnull ~label:"gen" () in
      check Alcotest.bool "forced on" true (Obs.Progress.active p);
      Obs.Progress.tick ~by:10 p;
      Obs.Progress.finish p;
      check Alcotest.int "by-n tick" 10 (Obs.Progress.count p);
      (* ... and --no-progress wins regardless of environment. *)
      Unix.putenv "OBS_QUIET" "";
      Obs.Progress.set_override (Some false);
      let p = Obs.Progress.create ~out:devnull ~label:"gen" () in
      check Alcotest.bool "forced off" false (Obs.Progress.active p))

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter;
    Alcotest.test_case "labeled counter" `Quick test_labeled_counter;
    Alcotest.test_case "histogram bucket edges" `Quick test_histogram_edges;
    Alcotest.test_case "log-scale buckets" `Quick test_log_buckets;
    Alcotest.test_case "nested spans" `Quick test_span_nesting;
    Alcotest.test_case "prometheus exporter" `Quick test_export_prometheus;
    Alcotest.test_case "json exporter" `Quick test_export_json;
    Alcotest.test_case "exporters agree" `Quick test_export_round_trip;
    Alcotest.test_case "write_file by extension" `Quick test_write_file_by_extension;
    Alcotest.test_case "registry idempotency" `Quick test_registry_idempotent;
    Alcotest.test_case "OBS_QUIET suppresses progress" `Quick test_progress_quiet;
  ]
