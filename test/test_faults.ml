(* Tests for the fault layer: ASN.1 malformation rejection, the seeded
   corpus mutator, quarantine/checkpoint persistence, circuit breakers,
   the injection harness, the watchdog, and the pipeline error
   boundary (corrupt-vs-drop equality, degraded lints, resume). *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let sample_der =
  lazy
    (let der = ref "" in
     Ctlog.Dataset.iter ~scale:1 ~seed:42 (fun e ->
         der := e.Ctlog.Dataset.cert.X509.Certificate.der);
     !der)

let tmp_dir prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" prefix (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

(* --- ASN.1 malformation regressions ---------------------------------- *)

let test_oid_malformations () =
  let ok = Alcotest.(result (list int) string) in
  check ok "valid OID decodes" (Ok [ 1; 2; 840; 10045; 4; 3; 2 ])
    (Asn1.Oid.decode "\x2A\x86\x48\xCE\x3D\x04\x03\x02");
  check ok "oversized arc rejected" (Error "OID arc too long")
    (Asn1.Oid.decode (String.make 10 '\xFF' ^ "\x7F"));
  check ok "truncated arc rejected" (Error "truncated OID arc")
    (Asn1.Oid.decode "\x2A\x86");
  (* A trailing continuation byte whose pending value is zero used to be
     accepted as a complete arc. *)
  check ok "truncated zero-valued arc rejected" (Error "truncated OID arc")
    (Asn1.Oid.decode "\x2A\xC8");
  check ok "non-minimal arc rejected" (Error "non-minimal OID arc")
    (Asn1.Oid.decode "\x2A\x80\x01")

let test_bit_string_malformations () =
  let is_err der = Result.is_error (Asn1.Value.decode der) in
  check Alcotest.bool "valid BIT STRING" false (is_err "\x03\x02\x03\xA8");
  check Alcotest.bool "unused-bits > 7 rejected" true (is_err "\x03\x02\x08\x00");
  check Alcotest.bool "unused bits without content rejected" true
    (is_err "\x03\x01\x01")

let test_length_malformations () =
  let is_err der = Result.is_error (Asn1.Value.decode der) in
  check Alcotest.bool "declared length overruns input" true
    (is_err "\x30\x05\x02\x01\x01");
  check Alcotest.bool "truncated long-form length" true (is_err "\x02\x81");
  check Alcotest.bool "overlong length field" true
    (is_err "\x02\x85\x01\x01\x01\x01\x01\x01");
  check Alcotest.bool "huge declared length" true
    (is_err "\x04\x84\xFF\xFF\xFF\xFF")

(* --- the mutator ------------------------------------------------------ *)

let test_mutator_determinism () =
  let der = Lazy.force sample_der in
  let plan = Faults.Mutator.plan ~seed:9 ~rate:0.5 () in
  for index = 0 to 30 do
    check Alcotest.bool "hits is stable" (Faults.Mutator.hits plan index)
      (Faults.Mutator.hits plan index);
    let a, ka = Faults.Mutator.mutate plan ~index der in
    let b, kb = Faults.Mutator.mutate plan ~index der in
    check Alcotest.string "mutate is stable" a b;
    check Alcotest.string "kind is stable" (Faults.Mutator.kind_name ka)
      (Faults.Mutator.kind_name kb);
    check Alcotest.bool "never returns input unchanged" true (a <> der)
  done;
  (* Distinct attempts give independent corruptions (usually distinct). *)
  let a, _ = Faults.Mutator.mutate ~attempt:0 plan ~index:0 der in
  let b, _ = Faults.Mutator.mutate ~attempt:1 plan ~index:0 der in
  check Alcotest.bool "attempts are independent streams" true (a <> b || a <> der)

let test_mutator_rate () =
  let n = 4000 in
  let count rate =
    let plan = Faults.Mutator.plan ~seed:3 ~rate () in
    let c = ref 0 in
    for i = 0 to n - 1 do
      if Faults.Mutator.hits plan i then incr c
    done;
    !c
  in
  check Alcotest.int "rate 0 never hits" 0 (count 0.0);
  check Alcotest.int "rate 1 always hits" n (count 1.0);
  let c = count 0.2 in
  check Alcotest.bool
    (Printf.sprintf "rate 0.2 hits ~20%% (got %d/%d)" c n)
    true
    (c > n / 10 && c < (n * 3) / 10);
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Faults.Mutator.plan: rate must be within [0,1]")
    (fun () -> ignore (Faults.Mutator.plan ~seed:1 ~rate:1.5 ()));
  Alcotest.check_raises "empty kinds"
    (Invalid_argument "Faults.Mutator.plan: kinds must be non-empty") (fun () ->
      ignore (Faults.Mutator.plan ~kinds:[] ~seed:1 ~rate:0.5 ()))

let test_mutator_kinds () =
  let der = Lazy.force sample_der in
  let plan =
    Faults.Mutator.plan ~kinds:[ Faults.Mutator.Truncate ] ~seed:4 ~rate:1.0 ()
  in
  for index = 0 to 10 do
    let out, kind = Faults.Mutator.mutate plan ~index der in
    check Alcotest.string "restricted kind honoured" "truncate"
      (Faults.Mutator.kind_name kind);
    check Alcotest.bool "truncation shortens" true
      (String.length out < String.length der)
  done;
  List.iter
    (fun k ->
      check
        Alcotest.(option string)
        "kind_name/of_name roundtrip"
        (Some (Faults.Mutator.kind_name k))
        (Option.map Faults.Mutator.kind_name
           (Faults.Mutator.kind_of_name (Faults.Mutator.kind_name k))))
    Faults.Mutator.all_kinds

(* Parse totality: no mutation may make the strict parser raise; it
   must always come back with Ok or a typed Error. *)
let parse_totality =
  QCheck.Test.make ~name:"certificate parse is total under mutation" ~count:300
    QCheck.(pair (int_bound 500) (int_bound 7))
    (fun (index, attempt) ->
      let der = Lazy.force sample_der in
      let plan = Faults.Mutator.plan ~seed:77 ~rate:1.0 () in
      let corrupted, _ = Faults.Mutator.mutate ~attempt plan ~index der in
      match X509.Certificate.parse corrupted with
      | Ok _ | Error _ -> true)

(* --- quarantine ------------------------------------------------------- *)

let test_quarantine_roundtrip () =
  let dir = tmp_dir "unicert-quarantine" in
  let q = Faults.Quarantine.open_ ~dir ~run_seed:11 in
  let err i =
    Faults.Error.Decode_error { offset = Some i; detail = "test detail " ^ string_of_int i }
  in
  Faults.Quarantine.record q ~index:3 ~error:(err 3) ~der:"\x30\x03\x02\x01\xFF";
  Faults.Quarantine.record q ~index:9 ~error:(err 9) ~der:"\x00\xFF";
  check Alcotest.int "count" 2 (Faults.Quarantine.count q);
  let path = Faults.Quarantine.path q in
  Faults.Quarantine.close q;
  (* A torn trailing line (crash mid-write) must not poison the load. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"index\":12,\"class\":\"dec";
  close_out oc;
  let entries = Faults.Quarantine.load path in
  check Alcotest.int "torn line skipped" 2 (List.length entries);
  let e = List.hd entries in
  check Alcotest.int "index survives" 3 e.Faults.Quarantine.index;
  check Alcotest.string "class survives" "decode_error" e.Faults.Quarantine.error_class;
  check Alcotest.string "der bytes survive" "\x30\x03\x02\x01\xFF"
    e.Faults.Quarantine.der;
  Sys.remove path

(* --- checkpoints ------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let file = Filename.temp_file "unicert-ckpt" ".bin" in
  let c =
    { Faults.Checkpoint.scale = 500; seed = 3; next_index = 250;
      state = [ ("a", 1); ("b", 2) ] }
  in
  Faults.Checkpoint.save file c;
  (match Faults.Checkpoint.load file with
  | None -> Alcotest.fail "checkpoint did not load"
  | Some c' ->
      check Alcotest.int "scale" 500 c'.Faults.Checkpoint.scale;
      check Alcotest.int "next_index" 250 c'.Faults.Checkpoint.next_index;
      check
        Alcotest.(list (pair string int))
        "state" [ ("a", 1); ("b", 2) ] c'.Faults.Checkpoint.state);
  (* A present-but-wrong file is a loud validation error; only a
     missing file means "no checkpoint". *)
  let expect_invalid what contents =
    let oc = open_out file in
    output_string oc contents;
    close_out oc;
    match (Faults.Checkpoint.load file : int Faults.Checkpoint.t option) with
    | _ -> Alcotest.failf "%s did not raise Invalid" what
    | exception Faults.Checkpoint.Invalid msg ->
        check Alcotest.bool
          (what ^ " message names the file")
          true
          (String.length msg > String.length file)
  in
  expect_invalid "garbage" "not a checkpoint at all";
  expect_invalid "old format" "UNICERT-CKPT1\nleftover payload";
  expect_invalid "future version"
    "UNICERT-CKPT2\nv999\n\x00\x01\x02\x03\x04\x05\x06\x07";
  expect_invalid "truncated" "UNICERT-CKPT2\n";
  Sys.remove file;
  check Alcotest.bool "missing loads as None" true
    ((Faults.Checkpoint.load file : int Faults.Checkpoint.t option) = None)

let test_stale_cursors () =
  let dir = Filename.temp_file "unicert-stale" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let base = Filename.concat dir "ckpt.bin" in
  let touch f =
    let oc = open_out f in
    close_out oc
  in
  List.iter touch
    [ Faults.Checkpoint.shard_file base 0;
      Faults.Checkpoint.shard_file base 1;
      Faults.Checkpoint.shard_file base 5;
      base ^ ".fetch0";
      base ^ ".fetch3";
      base ^ ".shardX" (* non-numeric: never stale *) ];
  (* Each cursor family is judged only against its own active count.  A
     fetch-sourced run with 2 live logs must not flag .fetch0/.fetch1
     (the false positive this guards against), and a generate-sourced
     run (active_fetch:None) must leave every .fetch<k> alone — they are
     another run mode's resume state. *)
  let stale =
    Faults.Checkpoint.stale_cursors base ~active_shards:(Some 2)
      ~active_fetch:(Some 2)
  in
  check
    Alcotest.(list string)
    "k >= active detected per family"
    [ base ^ ".fetch3"; base ^ ".shard5" ]
    stale;
  let fetch_exempt =
    Faults.Checkpoint.stale_cursors base ~active_shards:(Some 2)
      ~active_fetch:None
  in
  check
    Alcotest.(list string)
    "None exempts the fetch family"
    [ base ^ ".shard5" ]
    fetch_exempt;
  let shard_exempt =
    Faults.Checkpoint.stale_cursors base ~active_shards:None
      ~active_fetch:(Some 1)
  in
  check
    Alcotest.(list string)
    "None exempts the shard family"
    [ base ^ ".fetch3" ]
    shard_exempt;
  let removed =
    Faults.Checkpoint.remove_stale base ~active_shards:(Some 2)
      ~active_fetch:(Some 2)
  in
  check Alcotest.(list string) "removed what was listed" stale removed;
  check Alcotest.bool "live shard cursors kept" true
    (Sys.file_exists (Faults.Checkpoint.shard_file base 1));
  check Alcotest.bool "live fetch cursors kept" true
    (Sys.file_exists (base ^ ".fetch0"));
  check Alcotest.bool "stale gone" false (Sys.file_exists (base ^ ".shard5"));
  check
    Alcotest.(list string)
    "idempotent" []
    (Faults.Checkpoint.remove_stale base ~active_shards:(Some 2)
       ~active_fetch:(Some 2));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* --- circuit breaker -------------------------------------------------- *)

let test_breaker () =
  let b = Faults.Breaker.create ~threshold:3 "test_lint" in
  Faults.Breaker.failure b;
  Faults.Breaker.failure b;
  check Alcotest.bool "below threshold stays closed" false (Faults.Breaker.tripped b);
  Faults.Breaker.success b;
  check Alcotest.int "success resets the streak" 0 (Faults.Breaker.consecutive b);
  Faults.Breaker.failure b;
  Faults.Breaker.failure b;
  Faults.Breaker.failure b;
  check Alcotest.bool "threshold consecutive crashes trip" true
    (Faults.Breaker.tripped b);
  check Alcotest.int "total crashes accumulate" 5 (Faults.Breaker.crashes b);
  Faults.Breaker.success b;
  check Alcotest.bool "open breaker stays open" true (Faults.Breaker.tripped b);
  Faults.Breaker.reset b;
  check Alcotest.bool "reset closes" false (Faults.Breaker.tripped b);
  check Alcotest.int "reset zeroes crashes" 0 (Faults.Breaker.crashes b)

(* --- the injection harness -------------------------------------------- *)

let test_injector () =
  Faults.Injector.reset ();
  check Alcotest.bool "inert before arming" false (Faults.Injector.active ());
  Faults.Injector.arm ~every:2 "victim";
  check Alcotest.bool "active after arming" true (Faults.Injector.active ());
  Faults.Injector.tick "victim";
  Alcotest.check_raises "fires on the every-th tick"
    (Faults.Injector.Injected_crash "victim") (fun () ->
      Faults.Injector.tick "victim");
  Faults.Injector.tick "other";
  Faults.Injector.disarm "victim";
  Faults.Injector.tick "victim";
  Faults.Injector.reset ();
  check Alcotest.bool "reset disarms" false (Faults.Injector.active ());
  Alcotest.check_raises "every < 1 rejected"
    (Invalid_argument "Faults.Injector.arm: every must be >= 1") (fun () ->
      Faults.Injector.arm ~every:0 "x")

let test_injector_spec () =
  let ok = Alcotest.(result (pair string int) string) in
  check ok "plain spec" (Ok ("u_cn_in_san", 3))
    (Faults.Injector.parse_spec "u_cn_in_san:3");
  check ok "target may contain colons" (Ok ("model:OpenSSL", 2))
    (Faults.Injector.parse_spec "model:OpenSSL:2");
  check Alcotest.bool "missing count rejected" true
    (Result.is_error (Faults.Injector.parse_spec "no_count"));
  check Alcotest.bool "bad count rejected" true
    (Result.is_error (Faults.Injector.parse_spec "t:x"))

(* --- watchdog --------------------------------------------------------- *)

let test_watchdog () =
  check Alcotest.int "fast path returns the value" 41
    (Faults.Watchdog.with_timeout ~seconds:5.0 (fun () -> 41));
  match
    Faults.Watchdog.with_timeout ~stage:"spin" ~seconds:0.05 (fun () ->
        (* Allocating loop so the signal can be delivered. *)
        let r = ref [] in
        while true do
          r := 1 :: !r;
          if List.length !r > 1_000 then r := []
        done;
        0)
  with
  | _ -> Alcotest.fail "watchdog did not fire"
  | exception Faults.Watchdog.Timed_out { stage; seconds } ->
      check Alcotest.string "stage recorded" "spin" stage;
      check (Alcotest.float 1e-9) "budget recorded" 0.05 seconds

(* --- pipeline error boundary ------------------------------------------ *)

let test_corrupt_vs_drop_equality () =
  let scale = 300 and seed = 5 in
  let plan = Faults.Mutator.plan ~seed:13 ~rate:0.1 () in
  let dir = tmp_dir "unicert-pipeline-q" in
  let policy =
    { Faults.Policy.default with Faults.Policy.quarantine_dir = Some dir }
  in
  let corrupt = Unicert.Pipeline.run ~scale ~seed ~policy ~mutator:plan () in
  let drop = Unicert.Pipeline.run ~scale ~seed ~mutator:plan ~drop:true () in
  check Alcotest.int "same survivors" drop.Unicert.Pipeline.total
    corrupt.Unicert.Pipeline.total;
  check Alcotest.int "same noncompliant count" drop.Unicert.Pipeline.nc_total
    corrupt.Unicert.Pipeline.nc_total;
  check Alcotest.int "same IDN count" drop.Unicert.Pipeline.idncerts
    corrupt.Unicert.Pipeline.idncerts;
  check Alcotest.int "same trusted count" drop.Unicert.Pipeline.trusted
    corrupt.Unicert.Pipeline.trusted;
  check Alcotest.int "same encoding-error count"
    drop.Unicert.Pipeline.encoding_error_certs
    corrupt.Unicert.Pipeline.encoding_error_certs;
  let cf = corrupt.Unicert.Pipeline.faults in
  check Alcotest.int "every missing cert is a counted fault"
    (scale - corrupt.Unicert.Pipeline.total)
    cf.Unicert.Pipeline.fault_errors;
  check Alcotest.int "every fault is quarantined" cf.Unicert.Pipeline.fault_errors
    cf.Unicert.Pipeline.quarantined;
  check Alcotest.bool "drop run is fault-free" true
    (drop.Unicert.Pipeline.faults.Unicert.Pipeline.fault_errors = 0);
  check Alcotest.bool "faults actually happened" true
    (cf.Unicert.Pipeline.fault_errors > 0)

let test_clean_run_is_silent () =
  let t = Unicert.Pipeline.run ~scale:60 ~seed:2 () in
  check Alcotest.int "no faults on a clean corpus" 0
    t.Unicert.Pipeline.faults.Unicert.Pipeline.fault_errors;
  let out = Format.asprintf "%a" Unicert.Report.robustness t in
  check Alcotest.string "robustness section is empty on a clean run" "" out

let test_degraded_lint () =
  Faults.Injector.reset ();
  Lint.Registry.reset_faults ();
  let lint = "e_utf8string_invalid_byte_sequence" in
  Faults.Injector.arm ~every:3 lint;
  let policy =
    { Faults.Policy.default with Faults.Policy.breaker_threshold = 1 }
  in
  let t = Unicert.Pipeline.run ~scale:120 ~seed:2 ~policy () in
  Faults.Injector.reset ();
  check Alcotest.bool "run completes with aborted unset" true
    (t.Unicert.Pipeline.faults.Unicert.Pipeline.aborted = None);
  (match t.Unicert.Pipeline.faults.Unicert.Pipeline.degraded with
  | [ (name, crashes) ] ->
      check Alcotest.string "the injected lint degraded" lint name;
      check Alcotest.bool "crash count recorded" true (crashes >= 1)
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one degraded lint, got %d"
           (List.length other)));
  check Alcotest.bool "lint crashes attributed to this run" true
    (t.Unicert.Pipeline.faults.Unicert.Pipeline.lint_crashes >= 1);
  let out = Format.asprintf "%a" Unicert.Report.robustness t in
  check Alcotest.bool "report lists the degraded lint" true
    (let re = "degraded lint:" in
     let rec contains i =
       i + String.length re <= String.length out
       && (String.sub out i (String.length re) = re || contains (i + 1))
     in
     contains 0);
  Lint.Registry.reset_faults ()

let test_abort_policies () =
  let plan = Faults.Mutator.plan ~seed:13 ~rate:0.1 () in
  let t =
    Unicert.Pipeline.run ~scale:300 ~seed:5
      ~policy:{ Faults.Policy.default with Faults.Policy.max_errors = Some 5 }
      ~mutator:plan ()
  in
  check Alcotest.bool "max-errors aborts" true
    (t.Unicert.Pipeline.faults.Unicert.Pipeline.aborted <> None);
  check Alcotest.int "stopped at the budget" 5
    t.Unicert.Pipeline.faults.Unicert.Pipeline.fault_errors;
  let t =
    Unicert.Pipeline.run ~scale:300 ~seed:5
      ~policy:{ Faults.Policy.default with Faults.Policy.fail_fast = true }
      ~mutator:plan ()
  in
  check Alcotest.bool "fail-fast aborts" true
    (t.Unicert.Pipeline.faults.Unicert.Pipeline.aborted <> None);
  check Alcotest.int "fail-fast stops on the first error" 1
    t.Unicert.Pipeline.faults.Unicert.Pipeline.fault_errors

let test_resume () =
  let scale = 300 and seed = 5 in
  let plan = Faults.Mutator.plan ~seed:13 ~rate:0.1 () in
  let file = Filename.temp_file "unicert-resume" ".bin" in
  let ckpt m =
    { Faults.Policy.default with
      Faults.Policy.checkpoint_file = Some file;
      checkpoint_every = 10;
      max_errors = m }
  in
  (* A bounded run aborts mid-pass, leaving a checkpoint behind... *)
  let partial =
    Unicert.Pipeline.run ~scale ~seed ~policy:(ckpt (Some 15)) ~mutator:plan ()
  in
  check Alcotest.bool "partial run aborted" true
    (partial.Unicert.Pipeline.faults.Unicert.Pipeline.aborted <> None);
  check Alcotest.bool "checkpoints were saved" true
    (partial.Unicert.Pipeline.faults.Unicert.Pipeline.checkpoints_saved > 0);
  (* ...and the resumed run finishes with the same aggregates as one
     uninterrupted pass. *)
  let resumed =
    Unicert.Pipeline.run ~scale ~seed ~policy:(ckpt None) ~mutator:plan
      ~resume:true ()
  in
  let full = Unicert.Pipeline.run ~scale ~seed ~mutator:plan () in
  check Alcotest.bool "resume skipped the done prefix" true
    (resumed.Unicert.Pipeline.faults.Unicert.Pipeline.resumed_at > 0);
  check Alcotest.int "same total" full.Unicert.Pipeline.total
    resumed.Unicert.Pipeline.total;
  check Alcotest.int "same noncompliant count" full.Unicert.Pipeline.nc_total
    resumed.Unicert.Pipeline.nc_total;
  check Alcotest.int "same fault count"
    full.Unicert.Pipeline.faults.Unicert.Pipeline.fault_errors
    resumed.Unicert.Pipeline.faults.Unicert.Pipeline.fault_errors;
  check Alcotest.bool "resumed run completed" true
    (resumed.Unicert.Pipeline.faults.Unicert.Pipeline.aborted = None);
  Sys.remove file

(* --- harness crash accounting ----------------------------------------- *)

let test_harness_crash_accounting () =
  Faults.Injector.reset ();
  Tlsparsers.Harness.reset_faults ();
  Faults.Injector.arm ~every:1 "model:OpenSSL";
  let matrix = Tlsparsers.Harness.decoding_matrix () in
  Faults.Injector.reset ();
  let _, cells = List.hd matrix in
  let openssl = List.find (fun c -> c.Tlsparsers.Harness.library = "OpenSSL") cells in
  check Alcotest.bool "crashes recorded for the injected model" true
    (openssl.Tlsparsers.Harness.crashes <> []);
  check Alcotest.bool "no method inferred from crashing probes" true
    (openssl.Tlsparsers.Harness.inferred = None);
  check Alcotest.bool "verdict surfaces the exception constructor" true
    (List.exists
       (function Tlsparsers.Infer.Crashing _ -> true | _ -> false)
       openssl.Tlsparsers.Harness.verdicts);
  let other = List.find (fun c -> c.Tlsparsers.Harness.library = "GnuTLS") cells in
  check
    Alcotest.(list (pair string int))
    "uninjected model records no crashes" [] other.Tlsparsers.Harness.crashes;
  check Alcotest.bool "injected model reported degraded" true
    (List.mem_assoc "OpenSSL" (Tlsparsers.Harness.degraded_models ()));
  Tlsparsers.Harness.reset_faults ()

(* --- error taxonomy --------------------------------------------------- *)

let test_error_taxonomy () =
  let open Faults.Error in
  check Alcotest.string "decode class" "decode_error"
    (class_name (Decode_error { offset = None; detail = "d" }));
  check Alcotest.string "timeout class" "timeout"
    (class_name (Timeout { stage = "s"; seconds = 1.0 }));
  check Alcotest.string "exn constructor" "Not_found" (exn_name Not_found);
  check Alcotest.string "failure maps to decode" "decode_error"
    (class_name (of_exn ~stage:"x" (Failure "boom")));
  check Alcotest.string "stack overflow maps to resource" "resource"
    (class_name (of_exn ~stage:"x" Stack_overflow));
  check Alcotest.string "sys_error maps to resource" "resource"
    (class_name (of_exn ~stage:"x" (Sys_error "disk on fire")))

let test_exit_precedence () =
  let open Faults.Exitcode in
  check Alcotest.(list int) "precedence, most severe first" [ 2; 3; 4; 1; 0 ]
    precedence;
  (* Table-driven: every ordered pair of known codes, plus the unknown
     codes that must never be masked.  The contract the binaries rely
     on: a degraded run that also hits a store identity error exits 2;
     a degraded run whose metrics flush failed still exits 4. *)
  let cases =
    [
      (0, 0, 0); (0, 1, 1); (1, 0, 1); (0, 4, 4); (4, 0, 4); (1, 4, 4);
      (4, 1, 4); (3, 4, 3); (4, 3, 3); (3, 1, 3); (0, 3, 3); (2, 3, 2);
      (3, 2, 2); (2, 4, 2); (4, 2, 2); (2, 1, 2); (2, 0, 2); (1, 1, 1);
      (* unknown codes rank above every known one *)
      (5, 2, 5); (2, 5, 5); (127, 0, 127); (0, 127, 127);
    ]
  in
  List.iter
    (fun (a, b, expected) ->
      check Alcotest.int (Printf.sprintf "worst %d %d" a b) expected (worst a b))
    cases;
  (* worst is associative with identity 0, so folding a code list in
     any order yields the same verdict. *)
  let fold l = List.fold_left worst 0 l in
  check Alcotest.int "fold [4;1]" 4 (fold [ 4; 1 ]);
  check Alcotest.int "fold [1;4;3]" 3 (fold [ 1; 4; 3 ]);
  check Alcotest.int "fold [4;3;2]" 2 (fold [ 4; 3; 2 ]);
  check Alcotest.int "fold order-independent" (fold [ 2; 3; 4 ])
    (fold [ 4; 3; 2 ])

let suite =
  [
    Alcotest.test_case "exit-code precedence" `Quick test_exit_precedence;
    Alcotest.test_case "oid malformations" `Quick test_oid_malformations;
    Alcotest.test_case "bit-string malformations" `Quick
      test_bit_string_malformations;
    Alcotest.test_case "length malformations" `Quick test_length_malformations;
    Alcotest.test_case "mutator determinism" `Quick test_mutator_determinism;
    Alcotest.test_case "mutator rate" `Quick test_mutator_rate;
    Alcotest.test_case "mutator kinds" `Quick test_mutator_kinds;
    qtest parse_totality;
    Alcotest.test_case "quarantine roundtrip" `Quick test_quarantine_roundtrip;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "stale cursors" `Quick test_stale_cursors;
    Alcotest.test_case "circuit breaker" `Quick test_breaker;
    Alcotest.test_case "injector" `Quick test_injector;
    Alcotest.test_case "injector specs" `Quick test_injector_spec;
    Alcotest.test_case "watchdog" `Quick test_watchdog;
    Alcotest.test_case "corrupt-vs-drop equality" `Quick
      test_corrupt_vs_drop_equality;
    Alcotest.test_case "clean run is silent" `Quick test_clean_run_is_silent;
    Alcotest.test_case "degraded lint" `Quick test_degraded_lint;
    Alcotest.test_case "abort policies" `Quick test_abort_policies;
    Alcotest.test_case "resume" `Quick test_resume;
    Alcotest.test_case "harness crash accounting" `Quick
      test_harness_crash_accounting;
    Alcotest.test_case "error taxonomy" `Quick test_error_taxonomy;
  ]
