(* Tests for the CT monitor simulators and the Table 6 audit. *)

let check = Alcotest.check

module M = Monitors.Monitor

let ca = X509.Certificate.mock_keypair ~seed:"monitors-test-ca" ()

let cert ?(cn = None) domains =
  let cn_value = match cn with Some c -> c | None -> List.hd domains in
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Monitor Test CA") ])
      ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, cn_value) ])
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki ca)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        [ X509.Extension.subject_alt_name
            (List.map (fun d -> X509.General_name.Dns_name d) domains) ]
      ()
  in
  X509.Certificate.sign ca tbs

let results = function M.Results certs -> certs | M.Refused r -> Alcotest.failf "refused: %s" r

let test_exact_and_case () =
  let m = M.create M.facebook in
  let c = cert [ "shop.example.com" ] in
  M.ingest m c;
  check Alcotest.int "exact match" 1 (List.length (results (M.search m "shop.example.com")));
  check Alcotest.int "case folded" 1
    (List.length (results (M.search m "SHOP.Example.COM")));
  check Alcotest.int "substring misses (no fuzzy)" 0
    (List.length (results (M.search m "example.com")))

let test_fuzzy () =
  let m = M.create M.crtsh in
  M.ingest m (cert [ "a.victim.org" ]);
  M.ingest m (cert [ "b.victim.org" ]);
  M.ingest m (cert [ "other.net" ]);
  check Alcotest.int "substring finds both" 2
    (List.length (results (M.search m "victim.org")))

let test_subject_attr_indexing () =
  let crtsh = M.create M.crtsh in
  let fb = M.create M.facebook in
  let c = cert ~cn:(Some "site.example.com") [ "site.example.com" ] in
  (* crt.sh indexes O as well; build a cert with an org. *)
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Monitor Test CA") ])
      ~subject:
        (X509.Dn.of_list
           [ (X509.Attr.Organization_name, "Searchable Org");
             (X509.Attr.Common_name, "org.example.com") ])
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki ca)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        [ X509.Extension.subject_alt_name [ X509.General_name.Dns_name "org.example.com" ] ]
      ()
  in
  let org_cert = X509.Certificate.sign ca tbs in
  M.ingest crtsh c;
  M.ingest crtsh org_cert;
  M.ingest fb org_cert;
  check Alcotest.int "crtsh finds by org" 1
    (List.length (results (M.search crtsh "searchable org")));
  check Alcotest.int "facebook does not index org" 0
    (List.length (results (M.search fb "searchable org")))

let test_ulabel_checks () =
  let sslmate = M.create M.sslmate in
  let crtsh = M.create M.crtsh in
  (match M.search sslmate "xn--www-hn0a.example.com" with
  | M.Refused _ -> ()
  | M.Results _ -> Alcotest.fail "sslmate should refuse deceptive A-label");
  match M.search crtsh "xn--www-hn0a.example.com" with
  | M.Refused r -> Alcotest.failf "crtsh should accept: %s" r
  | M.Results _ -> ()

let test_cctld_refusal () =
  let entrust = M.create M.entrust in
  match M.search entrust "shop.xn--p1ai" with
  | M.Refused _ -> ()
  | M.Results _ -> Alcotest.fail "entrust should refuse punycode ccTLD queries"

let test_alabel_refusal_per_profile () =
  (* The "Punycode IDN ccTLD" column of Table 6 is only about IDN
     *country-code* TLDs.  An A-label query under an ASCII TLD or an
     IDN gTLD must never be refused on that ground — on every profile
     it is an ordinary search that may simply come back empty.
     Conflating the refusal with "not found" misreports coverage. *)
  List.iter
    (fun (prof : M.profile) ->
      let m = M.create prof in
      M.ingest m (cert [ "unrelated.example" ]);
      List.iter
        (fun q ->
          match M.search m q with
          | M.Results hits ->
              check Alcotest.int
                (Printf.sprintf "%s %S finds nothing" prof.M.name q)
                0 (List.length hits)
          | M.Refused reason ->
              Alcotest.failf "%s refused %S: %s" prof.M.name q reason)
        [ "xn--bcher-kva.com"; "shop.xn--q9jyb4c" ];
      (* ...while the ccIDN case keeps its per-profile verdict. *)
      match (M.search m "shop.xn--p1ai", prof.M.punycode_ccidn) with
      | M.Refused _, false | M.Results _, true -> ()
      | M.Results _, false ->
          Alcotest.failf "%s should refuse punycode ccIDN queries" prof.M.name
      | M.Refused reason, true ->
          Alcotest.failf "%s should serve punycode ccIDN queries, refused: %s"
            prof.M.name reason)
    M.all

let test_sslmate_cn_quirks () =
  let m = M.create M.sslmate in
  M.ingest m (cert ~cn:(Some "victim.com/extra") [ "unrelated.example" ]);
  (* Only the substring before '/' is indexed (P1.4). *)
  check Alcotest.int "matches pre-slash part" 1
    (List.length (results (M.search m "victim.com")));
  M.ingest m (cert ~cn:(Some "has space.com") [ "other.example" ]);
  check Alcotest.int "space CN ignored" 0
    (List.length (results (M.search m "has space.com")))

let test_log_ingestion () =
  let log = Ctlog.Log.create ~name:"ingest-test" in
  let c1 = cert [ "one.example" ] and c2 = cert [ "two.example" ] in
  ignore (Ctlog.Log.add_chain log c1.X509.Certificate.der);
  ignore (Ctlog.Log.add_chain log c2.X509.Certificate.der);
  let m = M.create M.crtsh in
  M.ingest_log m log;
  check Alcotest.int "both indexed" 1 (List.length (results (M.search m "one.example")))

let test_table6_matches_paper () =
  let open Monitors.Audit in
  let rows = table6 () in
  let row name = List.find (fun (r : row) -> r.monitor = name) rows in
  (* All monitors are case-insensitive and reject Unicode input. *)
  List.iter
    (fun (r : row) ->
      check Alcotest.bool (r.monitor ^ " case-insensitive") true (r.case_sensitive = No);
      check Alcotest.bool (r.monitor ^ " no unicode") true (r.unicode_search = No);
      check Alcotest.bool (r.monitor ^ " punycode") true (r.punycode_idn = Yes))
    rows;
  check Alcotest.bool "crtsh fuzzy" true ((row "Crt.sh").fuzzy_search = Yes);
  check Alcotest.bool "sslmate no fuzzy" true ((row "SSLMate Spotter").fuzzy_search = No);
  check Alcotest.bool "sslmate checks ulabels" true ((row "SSLMate Spotter").ulabel_check = Yes);
  check Alcotest.bool "facebook checks ulabels" true
    ((row "Facebook Monitor").ulabel_check = Yes);
  check Alcotest.bool "entrust no cctld" true
    ((row "Entrust Search").punycode_idn_cctld = No);
  check Alcotest.bool "sslmate drops special" true
    ((row "SSLMate Spotter").fails_special_unicode = Yes);
  check Alcotest.bool "crtsh keeps special" true
    ((row "Crt.sh").fails_special_unicode = No)

let test_concealment () =
  let cs = Monitors.Audit.concealment_demo () in
  check Alcotest.bool "some forgeries concealed" true
    (List.exists (fun (c : Monitors.Audit.concealment) -> c.Monitors.Audit.concealed) cs);
  (* Fuzzy monitors still catch the slash variant. *)
  check Alcotest.bool "crtsh sees slash variant" true
    (List.exists
       (fun (c : Monitors.Audit.concealment) ->
         c.Monitors.Audit.monitor = "Crt.sh"
         && c.Monitors.Audit.forged_cn = "victim-bank.com/path"
         && not c.Monitors.Audit.concealed)
       cs)

let test_corpus_recall () =
  let rows = Monitors.Audit.corpus_recall ~scale:3000 ~seed:5 () in
  let get name = List.find (fun (r : Monitors.Audit.recall) -> r.Monitors.Audit.monitor = name) rows in
  List.iter
    (fun (r : Monitors.Audit.recall) ->
      check Alcotest.bool (r.Monitors.Audit.monitor ^ " sampled > 0") true
        (r.Monitors.Audit.sampled > 0);
      check Alcotest.bool "found <= sampled" true
        (r.Monitors.Audit.found <= r.Monitors.Audit.sampled))
    rows;
  (* The index-dropping, exact-match monitor recalls no more than the
     fuzzy ones. *)
  check Alcotest.bool "sslmate recall <= crtsh recall" true
    ((get "SSLMate Spotter").Monitors.Audit.found <= (get "Crt.sh").Monitors.Audit.found)

let test_corpus_recall_corrupted () =
  (* Recall over a corrupted corpus: mutated blobs never parse, so they
     are excluded and every number is computed over the survivors only
     — identical whether the faulty indices deliver corrupted bytes or
     nothing at all (--drop-faulty semantics). *)
  let scale = 3000 and seed = 5 in
  let clean = Monitors.Audit.corpus_recall ~scale ~seed () in
  let m = Faults.Mutator.plan ~seed:17 ~rate:0.2 () in
  let corrupted = Monitors.Audit.corpus_recall ~scale ~seed ~mutator:m () in
  let dropped =
    Monitors.Audit.corpus_recall ~scale ~seed ~mutator:m ~drop:true ()
  in
  check Alcotest.bool "corrupt == drop" true (corrupted = dropped);
  List.iter2
    (fun (c : Monitors.Audit.recall) (r : Monitors.Audit.recall) ->
      check Alcotest.string "same monitor order" c.Monitors.Audit.monitor
        r.Monitors.Audit.monitor;
      check Alcotest.bool
        (r.Monitors.Audit.monitor ^ " survivors are a strict subset") true
        (r.Monitors.Audit.sampled > 0
        && r.Monitors.Audit.sampled < c.Monitors.Audit.sampled);
      check Alcotest.bool "found <= sampled" true
        (r.Monitors.Audit.found <= r.Monitors.Audit.sampled))
    clean corrupted

let suite =
  [
    Alcotest.test_case "exact and case handling" `Quick test_exact_and_case;
    Alcotest.test_case "fuzzy search" `Quick test_fuzzy;
    Alcotest.test_case "subject attr indexing" `Quick test_subject_attr_indexing;
    Alcotest.test_case "u-label checks" `Quick test_ulabel_checks;
    Alcotest.test_case "punycode ccTLD refusal" `Quick test_cctld_refusal;
    Alcotest.test_case "A-label refusal scoped to ccIDN TLDs, per profile"
      `Quick test_alabel_refusal_per_profile;
    Alcotest.test_case "sslmate CN quirks" `Quick test_sslmate_cn_quirks;
    Alcotest.test_case "ct log ingestion" `Quick test_log_ingestion;
    Alcotest.test_case "table 6 matches paper" `Quick test_table6_matches_paper;
    Alcotest.test_case "concealment demo" `Quick test_concealment;
    Alcotest.test_case "corpus recall (F.2)" `Slow test_corpus_recall;
    Alcotest.test_case "corpus recall over corrupted corpus" `Slow
      test_corpus_recall_corrupted;
  ]
