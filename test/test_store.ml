(* The on-disk store: crash-point recovery matrix, fsck detection and
   repair, warm-replay byte identity, persistent index lookups, and
   incremental recompute after a lint-set change. *)

let check = Alcotest.check

let scale = 96
let seed = 11

let report t = Format.asprintf "%a" Unicert.Report.all t

let baseline = lazy (report (Unicert.Pipeline.run ~scale ~seed ~jobs:1 ()))

let fresh_dir name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "unicert-store-%s-%d" name (Unix.getpid ()))
  in
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let run_store ?(jobs = 1) dir =
  Unicert.Pipeline.run ~scale ~seed ~jobs ~store:dir ()

(* --- cold build / warm replay byte identity --- *)

let test_cold_warm_identity () =
  let dir = fresh_dir "coldwarm" in
  let cold = report (run_store ~jobs:2 dir) in
  check Alcotest.string "cold store build matches the storeless report"
    (Lazy.force baseline) cold;
  let warm = report (run_store ~jobs:1 dir) in
  check Alcotest.string "warm replay matches" (Lazy.force baseline) warm;
  (* A warm run must not rewrite anything: the committed content
     address is stable. *)
  let addr () = Store.Db.meta (Store.Db.open_ro ~dir) "content" in
  let a1 = addr () in
  ignore (run_store ~jobs:4 dir);
  check
    Alcotest.(option string)
    "content address stable across warm replays" a1 (addr ());
  check Alcotest.bool "content address present" true (a1 <> None);
  rm_rf dir

(* --- the crash-point recovery matrix --- *)

let crash_case ~point ~occurrence ~jobs =
  let dir = fresh_dir (Printf.sprintf "crash-%s-%d-%d" point occurrence jobs) in
  Fun.protect
    ~finally:(fun () -> Store.Chaos.disarm ())
    (fun () ->
      Store.Chaos.arm_crash ~point ~occurrence;
      (match run_store ~jobs dir with
      | _ ->
          Alcotest.failf "%s#%d jobs=%d: build did not crash" point occurrence
            jobs
      | exception Store.Chaos.Crashed _ -> ());
      Store.Chaos.disarm ();
      (* fsck must treat the crash leftovers as expected input: never
         raise, and never claim an unusable store (at worst the store
         is absent — the crash predated the first durable byte — or
         empty-but-valid, or degraded to its intact prefix). *)
      let r = Store.Db.fsck ~dir () in
      check Alcotest.bool
        (Printf.sprintf "%s#%d jobs=%d: fsck finds the store usable" point
           occurrence jobs)
        true
        (r.Store.Db.usable || r.Store.Db.store_state = `Absent);
      (* Rerunning the same command recovers the intact prefix and
         completes to the byte-identical report. *)
      let t = run_store ~jobs dir in
      check Alcotest.string
        (Printf.sprintf "%s#%d jobs=%d: recovered report identical" point
           occurrence jobs)
        (Lazy.force baseline) (report t);
      check Alcotest.bool
        (Printf.sprintf "%s#%d jobs=%d: store complete after recovery" point
           occurrence jobs)
        true
        (Store.Db.complete (Store.Db.open_ro ~dir)));
  rm_rf dir

let test_crash_matrix () =
  List.iter
    (fun point ->
      List.iter (fun jobs -> crash_case ~point ~occurrence:1 ~jobs) [ 1; 2; 4 ])
    Store.Chaos.crash_points

let test_crash_matrix_second_occurrence () =
  (* Later occurrences kill mid-inventory (a second span's seal, the
     final manifest commit after the building one) — the states a
     first-occurrence kill never reaches. *)
  List.iter
    (fun point ->
      List.iter (fun jobs -> crash_case ~point ~occurrence:2 ~jobs) [ 1; 4 ])
    [ "segment.seal.before"; "segment.seal.after"; "manifest.rename.before";
      "manifest.rename.after" ]

(* --- fsck detects every injected corruption --- *)

let build_complete dir = ignore (run_store ~jobs:2 dir)

let test_fsck_detects_bit_flips () =
  let dir = fresh_dir "fsck-flip" in
  build_complete dir;
  let victims =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".seg" || Filename.check_suffix f ".idx")
    |> List.sort compare
  in
  check Alcotest.bool "several sealed files to corrupt" true
    (List.length victims >= 4);
  List.iteri
    (fun n victim ->
      let path = Filename.concat dir victim in
      let bytes =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      ignore (Store.Chaos.flip_bit_in_file ~seed:(100 + n) path);
      let r = Store.Db.fsck ~dir () in
      check Alcotest.bool
        (victim ^ ": flip detected")
        true
        (List.exists
           (fun (i : Store.Db.issue) -> i.Store.Db.file = victim)
           r.Store.Db.issues);
      check Alcotest.bool (victim ^ ": store stays usable") true
        r.Store.Db.usable;
      (* Undo so each file is tested in isolation. *)
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc)
    victims;
  check Alcotest.int "pristine again: no issues"
    0
    (List.length (Store.Db.fsck ~dir ()).Store.Db.issues);
  rm_rf dir

let test_fsck_repair_then_rebuild () =
  let dir = fresh_dir "fsck-repair" in
  build_complete dir;
  (* Corrupt one cert segment: repair must quarantine the pair (exit-4
     territory: intact data remains), and a rebuild regenerates only
     the lost span, landing on the byte-identical report. *)
  let seg =
    Sys.readdir dir |> Array.to_list
    |> List.find (fun f ->
           String.length f > 6 && String.sub f 0 6 = "certs-"
           && Filename.check_suffix f ".seg")
  in
  ignore (Store.Chaos.flip_bit_in_file ~seed:7 (Filename.concat dir seg));
  let r = Store.Db.fsck ~repair:true ~dir () in
  check Alcotest.bool "repaired" true r.Store.Db.repaired;
  check Alcotest.bool "usable after repair (never total loss)" true
    r.Store.Db.usable;
  check Alcotest.bool "quarantined pair logged" true
    (Sys.file_exists (Filename.concat dir "store-quarantine.jsonl"));
  check Alcotest.bool "segment moved aside" true
    (Sys.file_exists (Filename.concat dir (seg ^ ".quarantined")));
  let spans_left = Store.Db.spans (Store.Db.open_ro ~dir) in
  check Alcotest.int "one intact span remains" 1 (List.length spans_left);
  let t = run_store ~jobs:2 dir in
  check Alcotest.string "rebuild after repair is byte-identical"
    (Lazy.force baseline) (report t);
  rm_rf dir

let test_fsck_absent () =
  let r = Store.Db.fsck ~dir:"/nonexistent/unicert-store" () in
  check Alcotest.bool "absent store" true (r.Store.Db.store_state = `Absent);
  check Alcotest.bool "absent store is not usable" false r.Store.Db.usable

(* --- persistent indexes --- *)

let test_indexes () =
  let dir = fresh_dir "indexes" in
  build_complete dir;
  let db = Store.Db.open_ro ~dir in
  let load name =
    match Store.Db.load_index db name with
    | Ok entries -> entries
    | Error e -> Alcotest.failf "index %s: %s" name e
  in
  let issuer = load "issuer" in
  let covered =
    List.concat_map snd issuer |> List.sort_uniq compare |> List.length
  in
  check Alcotest.int "issuer index covers every certificate" scale covered;
  List.iter
    (fun name ->
      List.iter
        (fun (key, ids) ->
          check Alcotest.bool (name ^ ": key non-empty") true (key <> "");
          List.iter
            (fun i ->
              check Alcotest.bool
                (Printf.sprintf "%s: id %d in range" name i)
                true
                (i >= 0 && i < scale))
            ids)
        (load name))
    [ "issuer"; "lint"; "flaw"; "domain"; "ulabel" ];
  (* The domain index keys SAN labels: looking one up returns certs
     whose index the issuer index also knows. *)
  (match load "domain" with
  | [] -> Alcotest.fail "domain index is empty"
  | (_, ids) :: _ ->
      check Alcotest.bool "domain hit non-empty" true (ids <> []));
  check Alcotest.bool "unknown index is an error" true
    (Result.is_error (Store.Db.load_index db "nope"));
  rm_rf dir

(* --- incremental recompute after a lint-set change --- *)

let test_incremental_recompute () =
  let dir = fresh_dir "incremental" in
  build_complete dir;
  let db = Store.Db.open_ro ~dir in
  let man = Store.Db.manifest db in
  (* Rewrite the manifest as if this store had been built by a binary
     that lacked the last registered lint: the next run must take the
     incremental path (parse DER, run only the missing lint, republish
     rows + indexes) and still land on the byte-identical report. *)
  let all_lints = String.split_on_char ';' man.Store.Manifest.lints in
  let older = List.filteri (fun i _ -> i < List.length all_lints - 1) all_lints in
  Store.Db.commit db
    { man with Store.Manifest.lints = String.concat ";" older };
  let man' = Store.Db.manifest (Store.Db.open_ro ~dir) in
  check Alcotest.bool "manifest now claims an older lint set" true
    (man'.Store.Manifest.lints <> man.Store.Manifest.lints);
  let t = run_store ~jobs:1 dir in
  check Alcotest.string "incremental recompute is byte-identical"
    (Lazy.force baseline) (report t);
  let man'' = Store.Db.manifest (Store.Db.open_ro ~dir) in
  check Alcotest.string "manifest lint set restored to the full signature"
    man.Store.Manifest.lints man''.Store.Manifest.lints;
  check Alcotest.bool "store complete again" true
    (Store.Db.complete (Store.Db.open_ro ~dir));
  (* Old rows columns must have been garbage-collected by the commit.
     (When the recomputed lint fingerprint equals the original one, the
     replacement column is written under a `.seg.new` name to dodge the
     live file — either spelling counts, but only one per span may
     survive.) *)
  let stray_rows =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 5 && String.sub f 0 5 = "rows-"
           && (Filename.check_suffix f ".seg"
              || Filename.check_suffix f ".seg.new"))
  in
  check Alcotest.int "exactly one rows column per span" 2
    (List.length stray_rows);
  rm_rf dir

(* --- identity pinning --- *)

let test_identity_mismatch () =
  let dir = fresh_dir "identity" in
  build_complete dir;
  (match
     Unicert.Pipeline.run ~scale:(scale * 2) ~seed ~jobs:1 ~store:dir ()
   with
  | _ -> Alcotest.fail "scale mismatch did not raise Store_error"
  | exception Store.Db.Store_error _ -> ());
  (* The original identity still works. *)
  check Alcotest.string "store unharmed by the rejected open"
    (Lazy.force baseline)
    (report (run_store dir));
  rm_rf dir

let test_open_ro_mid_build () =
  (* An adoptable in-flight build — valid identity on disk, no manifest
     committed yet — must open read-only at its committed prefix (here:
     empty) instead of failing.  This is the monitor daemon's reader
     path: queries run against whatever prefix is durable while ingest
     is still appending. *)
  let dir = fresh_dir "openro-midbuild" in
  Fun.protect
    ~finally:(fun () -> Store.Chaos.disarm ())
    (fun () ->
      (* Occurrence 1 of manifest.rename is the identity file at
         create; occurrence 2 is the manifest commit itself — crash
         there and the store is all data, no manifest. *)
      Store.Chaos.arm_crash ~point:"manifest.rename.before" ~occurrence:2;
      (match run_store ~jobs:1 dir with
      | _ -> Alcotest.fail "build did not crash"
      | exception Store.Chaos.Crashed _ -> ());
      Store.Chaos.disarm ();
      let db = Store.Db.open_ro ~dir in
      check Alcotest.bool "mid-build store reads as building" true
        (not (Store.Db.complete db));
      check Alcotest.int "committed prefix is empty" 0
        (List.length (Store.Db.spans db));
      let pairs = ref 0 in
      Store.Db.iter_pairs db (fun _ _ -> incr pairs);
      check Alcotest.int "no committed pairs readable" 0 !pairs;
      (* The read-only open must not have disturbed the crash
         leftovers: the build is still adoptable and completes to the
         byte-identical report. *)
      check Alcotest.string "build still adoptable after read-only open"
        (Lazy.force baseline)
        (report (run_store ~jobs:1 dir)));
  rm_rf dir

let suite =
  [
    Alcotest.test_case "cold/warm byte identity" `Quick test_cold_warm_identity;
    Alcotest.test_case "read-only open of an in-flight build" `Quick
      test_open_ro_mid_build;
    Alcotest.test_case "crash matrix (every point, jobs 1/2/4)" `Slow
      test_crash_matrix;
    Alcotest.test_case "crash matrix (second occurrences)" `Slow
      test_crash_matrix_second_occurrence;
    Alcotest.test_case "fsck detects every bit flip" `Quick
      test_fsck_detects_bit_flips;
    Alcotest.test_case "fsck repair, then rebuild the gap" `Quick
      test_fsck_repair_then_rebuild;
    Alcotest.test_case "fsck on an absent store" `Quick test_fsck_absent;
    Alcotest.test_case "persistent index lookups" `Quick test_indexes;
    Alcotest.test_case "incremental recompute" `Quick
      test_incremental_recompute;
    Alcotest.test_case "identity mismatch rejected" `Quick
      test_identity_mismatch;
  ]
