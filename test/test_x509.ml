(* Tests for the x509 library: DN handling and string representations,
   GeneralName, extensions, PEM, certificate lifecycle. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- attributes ------------------------------------------------------ *)

let test_attr_oids () =
  List.iter
    (fun a ->
      check Alcotest.bool (X509.Attr.name a) true (X509.Attr.of_oid (X509.Attr.oid a) = a))
    X509.Attr.all_known;
  check Alcotest.bool "unknown preserved" true
    (match X509.Attr.of_oid [ 1; 2; 3; 4 ] with
    | X509.Attr.Unknown o -> o = [ 1; 2; 3; 4 ]
    | _ -> false);
  check (Alcotest.option Alcotest.int) "cn bound" (Some 64)
    (X509.Attr.upper_bound X509.Attr.Common_name);
  check (Alcotest.option Alcotest.int) "country bound" (Some 2)
    (X509.Attr.upper_bound X509.Attr.Country_name)

(* --- DN --------------------------------------------------------------- *)

let sample_dn =
  X509.Dn.of_list
    [ (X509.Attr.Country_name, "CZ");
      (X509.Attr.Organization_name, "Acme, s.r.o.");
      (X509.Attr.Common_name, "www.example.cz") ]

let test_dn_roundtrip () =
  match X509.Dn.decode (X509.Dn.encode sample_dn) with
  | Ok dn ->
      check Alcotest.bool "strict equal" true (X509.Dn.equal_strict sample_dn dn)
  | Error m -> Alcotest.fail m

let test_dn_accessors () =
  check (Alcotest.list Alcotest.string) "get cn" [ "www.example.cz" ]
    (X509.Dn.get_text sample_dn X509.Attr.Common_name);
  check (Alcotest.option Alcotest.string) "first"
    (Some "www.example.cz")
    (Option.map X509.Dn.atv_text (X509.Dn.first sample_dn X509.Attr.Common_name));
  let dup =
    X509.Dn.single
      [ X509.Dn.atv X509.Attr.Common_name "one"; X509.Dn.atv X509.Attr.Common_name "two" ]
  in
  check (Alcotest.option Alcotest.string) "first of dup" (Some "one")
    (Option.map X509.Dn.atv_text (X509.Dn.first dup X509.Attr.Common_name));
  check (Alcotest.option Alcotest.string) "last of dup" (Some "two")
    (Option.map X509.Dn.atv_text (X509.Dn.last dup X509.Attr.Common_name))

let test_dn_strings () =
  check Alcotest.string "rfc4514 escapes comma" "CN=www.example.cz,O=Acme\\, s.r.o.,C=CZ"
    (X509.Dn.to_string sample_dn);
  check Alcotest.string "rfc1779 quotes" "C=CZ, O=\"Acme, s.r.o.\", CN=www.example.cz"
    (X509.Dn.to_string ~flavor:X509.Dn.Rfc1779 sample_dn);
  let tricky = X509.Dn.of_list [ (X509.Attr.Common_name, " lead#trail ") ] in
  let rendered = X509.Dn.to_string tricky in
  check Alcotest.string "leading space escaped" "CN=\\ lead#trail\\ " rendered;
  let hashy = X509.Dn.of_list [ (X509.Attr.Common_name, "#hash") ] in
  check Alcotest.string "leading hash escaped" "CN=\\#hash" (X509.Dn.to_string hashy);
  let nul = X509.Dn.single [ X509.Dn.atv_raw ~st:Asn1.Str_type.Utf8_string X509.Attr.Common_name "a\x00b" ] in
  check Alcotest.string "nul hex escaped (4514)" "CN=a\\00b" (X509.Dn.to_string nul)

let test_dn_normalized_compare () =
  let a = X509.Dn.of_list [ (X509.Attr.Organization_name, "Acme  Widgets") ] in
  let b = X509.Dn.of_list [ (X509.Attr.Organization_name, "ACME widgets ") ] in
  check Alcotest.bool "case/space folded" true (X509.Dn.equal_normalized a b);
  (* NFC folding: precomposed vs combining. *)
  let c = X509.Dn.of_list [ (X509.Attr.Organization_name, "St\xC3\xB6ri" (* ö *)) ] in
  let d = X509.Dn.of_list [ (X509.Attr.Organization_name, "Sto\xCC\x88ri" (* o + umlaut *)) ] in
  check Alcotest.bool "nfc folded" true (X509.Dn.equal_normalized c d);
  let e = X509.Dn.of_list [ (X509.Attr.Organization_name, "Other") ] in
  check Alcotest.bool "different orgs differ" false (X509.Dn.equal_normalized a e)

let test_dn_of_string () =
  (* Known forms. *)
  (match X509.Dn.of_string "CN=www.example.cz,O=Acme\\, s.r.o.,C=CZ" with
  | Ok dn -> check Alcotest.bool "roundtrip parse" true (X509.Dn.equal_normalized dn sample_dn)
  | Error m -> Alcotest.fail m);
  (* Hex escapes. *)
  (match X509.Dn.of_string "CN=a\\00b" with
  | Ok dn ->
      check (Alcotest.list Alcotest.string) "nul" [ "a\x00b" ]
        (X509.Dn.get_text dn X509.Attr.Common_name)
  | Error m -> Alcotest.fail m);
  (* Multi-valued RDN. *)
  (match X509.Dn.of_string "CN=x+O=y" with
  | Ok [ rdn ] -> check Alcotest.int "two atvs in one rdn" 2 (List.length rdn)
  | Ok _ -> Alcotest.fail "expected single RDN"
  | Error m -> Alcotest.fail m);
  (* Dotted OID labels. *)
  (match X509.Dn.of_string "2.5.4.3=dotted" with
  | Ok dn ->
      check (Alcotest.list Alcotest.string) "oid label" [ "dotted" ]
        (X509.Dn.get_text dn X509.Attr.Common_name)
  | Error m -> Alcotest.fail m);
  (* Errors. *)
  check Alcotest.bool "missing equals" true (Result.is_error (X509.Dn.of_string "CNnovalue"));
  check Alcotest.bool "unknown label" true (Result.is_error (X509.Dn.of_string "XX=1"))

let prop_dn_string_roundtrip =
  QCheck.Test.make ~name:"dn to_string/of_string roundtrip" ~count:150
    (QCheck.make ~print:(fun s -> s)
       QCheck.Gen.(
         map
           (fun cps -> Unicode.Codec.utf8_of_cps (Array.of_list cps))
           (list_size (int_range 1 16)
              (frequency
                 [ (6, int_range 0x20 0x7E); (2, int_range 0xA1 0x2FF);
                   (1, oneofl [ 0x2C (* , *); 0x2B (* + *); 0x5C; 0x23; 0x3B ]) ]))))
    (fun value ->
      let dn =
        X509.Dn.of_list
          [ (X509.Attr.Organization_name, value); (X509.Attr.Common_name, "x.example") ]
      in
      match X509.Dn.of_string (X509.Dn.to_string dn) with
      | Ok dn' -> X509.Dn.equal_normalized dn dn'
      | Error _ -> false)

let test_dn_raw_preservation () =
  (* Noncompliant declared types and bytes survive the round trip. *)
  let dn =
    X509.Dn.single
      [ X509.Dn.atv_raw ~st:Asn1.Str_type.Printable_string X509.Attr.Common_name
          "bad\x00\xFFbytes" ]
  in
  match X509.Dn.decode (X509.Dn.encode dn) with
  | Ok dn' -> (
      match X509.Dn.first dn' X509.Attr.Common_name with
      | Some { X509.Dn.value = Asn1.Value.Str (st, raw); _ } ->
          check Alcotest.bool "type kept" true (st = Asn1.Str_type.Printable_string);
          check Alcotest.string "bytes kept" "bad\x00\xFFbytes" raw
      | _ -> Alcotest.fail "missing CN")
  | Error m -> Alcotest.fail m

(* --- GeneralName ------------------------------------------------------ *)

let gn_testable =
  Alcotest.testable
    (fun ppf gn -> Format.fprintf ppf "%s:%s" (X509.General_name.kind gn) (X509.General_name.text gn))
    ( = )

let test_general_names () =
  let roundtrip gn =
    match X509.General_name.of_value (X509.General_name.to_value gn) with
    | Ok gn' -> check gn_testable "roundtrip" gn gn'
    | Error m -> Alcotest.fail m
  in
  roundtrip (X509.General_name.Dns_name "test.com");
  roundtrip (X509.General_name.Dns_name "bad name\x00with nul");
  roundtrip (X509.General_name.Rfc822_name "a@b.c");
  roundtrip (X509.General_name.Uri "https://example.com/x");
  roundtrip (X509.General_name.Ip_address "\x7F\x00\x00\x01");
  roundtrip (X509.General_name.Registered_id [ 1; 2; 3 ]);
  roundtrip (X509.General_name.Directory_name sample_dn);
  check Alcotest.string "ip text" "127.0.0.1"
    (X509.General_name.text (X509.General_name.Ip_address "\x7F\x00\x00\x01"))

(* --- extensions ------------------------------------------------------- *)

let test_extensions () =
  let san =
    X509.Extension.subject_alt_name
      [ X509.General_name.Dns_name "a.com"; X509.General_name.Dns_name "b.com" ]
  in
  (match X509.Extension.parse_general_names san.X509.Extension.value with
  | Ok [ X509.General_name.Dns_name "a.com"; X509.General_name.Dns_name "b.com" ] -> ()
  | Ok _ -> Alcotest.fail "wrong SAN parse"
  | Error m -> Alcotest.fail m);
  let crldp = X509.Extension.crl_distribution_points [ X509.General_name.Uri "http://c/r" ] in
  (match X509.Extension.parse_crl_distribution_points crldp.X509.Extension.value with
  | Ok [ X509.General_name.Uri "http://c/r" ] -> ()
  | Ok _ -> Alcotest.fail "wrong CRLDP parse"
  | Error m -> Alcotest.fail m);
  let aia =
    X509.Extension.authority_info_access
      [ (X509.Extension.Oids.ocsp, X509.General_name.Uri "http://ocsp") ]
  in
  (match X509.Extension.parse_info_access aia.X509.Extension.value with
  | Ok [ (meth, X509.General_name.Uri "http://ocsp") ] ->
      check Alcotest.bool "method" true (Asn1.Oid.equal meth X509.Extension.Oids.ocsp)
  | Ok _ -> Alcotest.fail "wrong AIA parse"
  | Error m -> Alcotest.fail m);
  let policies =
    X509.Extension.certificate_policies
      [ { X509.Extension.policy_oid = [ 2; 23; 140; 1; 2; 1 ];
          notice =
            Some
              { X509.Extension.explicit_text =
                  Some (Asn1.Value.str_raw Asn1.Str_type.Ia5_string "See CPS") } } ]
  in
  match X509.Extension.parse_certificate_policies policies.X509.Extension.value with
  | Ok [ { X509.Extension.policy_oid = [ 2; 23; 140; 1; 2; 1 ]; notice = Some n } ] -> (
      match n.X509.Extension.explicit_text with
      | Some (Asn1.Value.Str (Asn1.Str_type.Ia5_string, "See CPS")) -> ()
      | _ -> Alcotest.fail "explicitText lost")
  | Ok _ -> Alcotest.fail "wrong policies parse"
  | Error m -> Alcotest.fail m

(* --- PEM --------------------------------------------------------------- *)

let test_base64 () =
  let vectors =
    [ ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v"); ("foob", "Zm9vYg==");
      ("fooba", "Zm9vYmE="); ("foobar", "Zm9vYmFy") ]
  in
  List.iter
    (fun (plain, b64) ->
      check Alcotest.string ("encode " ^ plain) b64 (X509.Pem.base64_encode plain);
      check
        (Alcotest.result Alcotest.string Alcotest.string)
        ("decode " ^ b64) (Ok plain) (X509.Pem.base64_decode b64))
    vectors;
  check Alcotest.bool "reject junk" true
    (Result.is_error (X509.Pem.base64_decode "a$b"));
  check Alcotest.bool "reject truncated" true
    (Result.is_error (X509.Pem.base64_decode "Zg"))

let prop_base64_roundtrip =
  QCheck.Test.make ~name:"base64 roundtrip" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun s -> X509.Pem.base64_decode (X509.Pem.base64_encode s) = Ok s)

let prop_pem_roundtrip =
  QCheck.Test.make ~name:"pem armor roundtrip" ~count:100
    QCheck.(string_of_size (QCheck.Gen.int_range 0 500))
    (fun der ->
      X509.Pem.decode (X509.Pem.encode ~label:"CERTIFICATE" der)
      = Ok ("CERTIFICATE", der))

(* --- certificates ------------------------------------------------------ *)

let ca = X509.Certificate.mock_keypair ~seed:"test-x509-ca" ()

let make_cert ?(extensions = []) subject =
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Test CA") ])
      ~subject
      ~not_before:(Asn1.Time.make 2024 1 1) ~not_after:(Asn1.Time.make 2024 4 1)
      ~spki:(X509.Certificate.keypair_spki ca)
      ~sig_alg:X509.Certificate.Oids.mock_signature ~extensions ()
  in
  X509.Certificate.sign ca tbs

let test_cert_roundtrip () =
  let cert =
    make_cert
      ~extensions:
        [ X509.Extension.subject_alt_name [ X509.General_name.Dns_name "t.example" ];
          X509.Extension.basic_constraints ~ca:true ~path_len:2 ();
          X509.Extension.key_usage 0x05 ]
      (X509.Dn.of_list [ (X509.Attr.Common_name, "t.example") ])
  in
  match X509.Certificate.parse cert.X509.Certificate.der with
  | Ok c ->
      check Alcotest.bool "tbs equal" true (c.X509.Certificate.tbs = cert.X509.Certificate.tbs);
      check Alcotest.string "tbs bytes" cert.X509.Certificate.tbs_der c.X509.Certificate.tbs_der;
      check Alcotest.int "extension count" 3
        (List.length c.X509.Certificate.tbs.X509.Certificate.extensions)
  | Error m -> Alcotest.fail (Faults.Error.to_string m)

let test_cert_verify_tamper () =
  let cert = make_cert (X509.Dn.of_list [ (X509.Attr.Common_name, "victim.example" ) ]) in
  let spki = X509.Certificate.keypair_spki ca in
  check Alcotest.bool "verifies" true (X509.Certificate.verify ~issuer_spki:spki cert);
  (* Flip one TBS byte inside the DER and reparse: must fail. *)
  let der = Bytes.of_string cert.X509.Certificate.der in
  let pos = 60 in
  Bytes.set der pos (Char.chr (Char.code (Bytes.get der pos) lxor 0x01));
  (match X509.Certificate.parse (Bytes.to_string der) with
  | Ok tampered ->
      check Alcotest.bool "tampered fails" false
        (X509.Certificate.verify ~issuer_spki:spki tampered)
  | Error _ -> () (* structural damage is also acceptable *));
  let other = X509.Certificate.mock_keypair ~seed:"other" () in
  check Alcotest.bool "wrong issuer" false
    (X509.Certificate.verify ~issuer_spki:(X509.Certificate.keypair_spki other) cert)

let test_cert_rsa_chain () =
  let g = Ucrypto.Prng.create 31 in
  let root = X509.Certificate.rsa_keypair (Ucrypto.Rsa.generate ~bits:192 g) in
  let cert =
    let tbs =
      X509.Certificate.make_tbs
        ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "RSA Root") ])
        ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, "leaf.example") ])
        ~not_before:(Asn1.Time.make 2024 1 1) ~not_after:(Asn1.Time.make 2024 4 1)
        ~spki:(X509.Certificate.keypair_spki root)
        ~sig_alg:X509.Certificate.Oids.sha256_with_rsa ()
    in
    X509.Certificate.sign root tbs
  in
  check Alcotest.bool "rsa verifies" true
    (X509.Certificate.verify ~issuer_spki:(X509.Certificate.keypair_spki root) cert)

let test_cert_helpers () =
  let cert =
    make_cert
      ~extensions:
        [ X509.Extension.subject_alt_name
            [ X509.General_name.Dns_name "a.example"; X509.General_name.Rfc822_name "x@y" ] ]
      (X509.Dn.of_list [ (X509.Attr.Common_name, "a.example") ])
  in
  check (Alcotest.option Alcotest.string) "cn" (Some "a.example")
    (X509.Certificate.subject_cn cert);
  check (Alcotest.list Alcotest.string) "san dns" [ "a.example" ]
    (X509.Certificate.san_dns_names cert);
  check Alcotest.int "validity days" 91 (X509.Certificate.validity_days cert);
  check Alcotest.bool "valid inside" true
    (X509.Certificate.is_valid_at cert (Asn1.Time.make 2024 2 1));
  check Alcotest.bool "invalid after" false
    (X509.Certificate.is_valid_at cert (Asn1.Time.make 2024 5 1));
  check Alcotest.bool "not precert" false (X509.Certificate.is_precertificate cert);
  let pre =
    make_cert ~extensions:[ X509.Extension.ct_poison ]
      (X509.Dn.of_list [ (X509.Attr.Common_name, "p.example") ])
  in
  check Alcotest.bool "precert" true (X509.Certificate.is_precertificate pre)

let test_cert_time_forms () =
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "T CA") ])
      ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, "t.example") ])
      ~not_before:(Asn1.Time.make 2024 1 1)
      ~not_after:(Asn1.Time.make 2051 1 1)
      ~spki:(X509.Certificate.keypair_spki ca)
      ~sig_alg:X509.Certificate.Oids.mock_signature ()
  in
  let cert = X509.Certificate.sign ca tbs in
  match X509.Certificate.parse cert.X509.Certificate.der with
  | Ok c ->
      check Alcotest.bool "utc before 2050" true
        (snd c.X509.Certificate.tbs.X509.Certificate.not_before = X509.Certificate.Utc);
      check Alcotest.bool "generalized from 2050" true
        (snd c.X509.Certificate.tbs.X509.Certificate.not_after
        = X509.Certificate.Generalized)
  | Error m -> Alcotest.fail (Faults.Error.to_string m)

let subject_text_gen =
  QCheck.make ~print:(fun s -> s)
    QCheck.Gen.(
      map
        (fun cps -> Unicode.Codec.utf8_of_cps (Array.of_list cps))
        (list_size (int_range 1 20)
           (frequency
              [ (5, int_range 0x20 0x7E); (2, int_range 0xA1 0x2FF);
                (1, int_range 0x4E00 0x4FFF) ])))

let prop_cert_pem_roundtrip =
  QCheck.Test.make ~name:"certificate PEM roundtrip" ~count:60 subject_text_gen
    (fun org ->
      let cert = make_cert (X509.Dn.of_list [ (X509.Attr.Organization_name, org) ]) in
      match X509.Certificate.of_pem (X509.Certificate.to_pem cert) with
      | Ok c -> String.equal c.X509.Certificate.der cert.X509.Certificate.der
      | Error _ -> false)

(* Random bytes and mutated DER must never raise out of the parser. *)
let prop_parse_total =
  QCheck.Test.make ~name:"Certificate.parse is total" ~count:400
    QCheck.(string_of_size (QCheck.Gen.int_range 0 120))
    (fun bytes ->
      match X509.Certificate.parse bytes with Ok _ | Error _ -> true)

let prop_parse_mutated =
  QCheck.Test.make ~name:"parse survives bit flips" ~count:200
    QCheck.(pair (int_range 0 100000) (int_range 0 100000))
    (fun (pos_seed, bit_seed) ->
      let base =
        (make_cert (X509.Dn.of_list [ (X509.Attr.Common_name, "fuzz.example") ]))
          .X509.Certificate.der
      in
      let der = Bytes.of_string base in
      let pos = pos_seed mod Bytes.length der in
      Bytes.set der pos
        (Char.chr (Char.code (Bytes.get der pos) lxor (1 lsl (bit_seed mod 8))));
      match X509.Certificate.parse (Bytes.to_string der) with
      | Ok _ | Error _ -> true)

let suite =
  [
    Alcotest.test_case "attribute oids" `Quick test_attr_oids;
    Alcotest.test_case "dn roundtrip" `Quick test_dn_roundtrip;
    Alcotest.test_case "dn accessors" `Quick test_dn_accessors;
    Alcotest.test_case "dn string flavors" `Quick test_dn_strings;
    Alcotest.test_case "dn normalized compare" `Quick test_dn_normalized_compare;
    Alcotest.test_case "dn of_string" `Quick test_dn_of_string;
    Alcotest.test_case "dn raw preservation" `Quick test_dn_raw_preservation;
    Alcotest.test_case "general names" `Quick test_general_names;
    Alcotest.test_case "extensions" `Quick test_extensions;
    Alcotest.test_case "base64 vectors" `Quick test_base64;
    Alcotest.test_case "cert roundtrip" `Quick test_cert_roundtrip;
    Alcotest.test_case "cert verify/tamper" `Quick test_cert_verify_tamper;
    Alcotest.test_case "cert rsa chain" `Slow test_cert_rsa_chain;
    Alcotest.test_case "cert helpers" `Quick test_cert_helpers;
    Alcotest.test_case "cert time forms" `Quick test_cert_time_forms;
    qtest prop_dn_string_roundtrip;
    qtest prop_base64_roundtrip;
    qtest prop_pem_roundtrip;
    qtest prop_cert_pem_roundtrip;
    qtest prop_parse_total;
    qtest prop_parse_mutated;
  ]
