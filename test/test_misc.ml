(* Cross-cutting edge cases: malformed inputs at module boundaries,
   report aggregation invariants, and status plumbing. *)

let check = Alcotest.check

let ca = X509.Certificate.mock_keypair ~seed:"misc-ca" ()

let cert ?(extensions = []) cn =
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Misc CA") ])
      ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, cn) ])
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki ca)
      ~sig_alg:X509.Certificate.Oids.mock_signature ~extensions ()
  in
  X509.Certificate.sign ca tbs

let test_ctx_unparsable_san () =
  (* A SAN whose extnValue is garbage: the context records the error
     instead of raising, and SAN-dependent lints treat it as absent. *)
  let broken =
    { X509.Extension.oid = X509.Extension.Oids.subject_alt_name;
      critical = false; value = "\xFF\xFF\xFF" }
  in
  let c = cert ~extensions:[ broken ] "broken-san.example" in
  let ctx = Lint.Ctx.of_cert c in
  (match ctx.Lint.Ctx.san with
  | Some (Error _) -> ()
  | Some (Ok _) | None -> Alcotest.fail "expected a recorded parse error");
  check (Alcotest.list Alcotest.string) "no dns names" []
    (Lint.Ctx.san_dns ctx)

let test_lint_na_statuses () =
  (* Policy lints report Na when no CertificatePolicies is present. *)
  let c = cert "na.example" in
  let findings =
    Lint.Registry.run ~respect_effective_dates:false
      ~issued:(Asn1.Time.make 2025 1 1) c
  in
  let status_of name =
    List.find_map
      (fun (f : Lint.finding) ->
        if f.Lint.lint.Lint.name = name then Some f.Lint.status else None)
      findings
  in
  (match status_of "w_rfc_ext_cp_explicit_text_not_utf8" with
  | Some Lint.Na -> ()
  | _ -> Alcotest.fail "expected Na without policies");
  (* Pre-effective-date certs get Na for later lints. *)
  let dated =
    Lint.Registry.run ~issued:(Asn1.Time.make 2009 1 1) c
  in
  let cab_statuses =
    List.filter
      (fun (f : Lint.finding) -> f.Lint.lint.Lint.source = Lint.Cab_br)
      dated
  in
  check Alcotest.bool "cab lints Na in 2009" true
    (cab_statuses <> []
    && List.for_all (fun (f : Lint.finding) -> f.Lint.status = Lint.Na) cab_statuses)

let test_monitor_unicode_refusal () =
  let m = Monitors.Monitor.create Monitors.Monitor.crtsh in
  match Monitors.Monitor.search m "b\xC3\xBCcher.de" with
  | Monitors.Monitor.Refused _ -> ()
  | Monitors.Monitor.Results _ -> Alcotest.fail "crtsh must refuse raw Unicode input"

let test_pem_multi_block () =
  let der1 = "first-der" and der2 = "second-der" in
  let blob =
    X509.Pem.encode ~label:"CERTIFICATE" der1 ^ X509.Pem.encode ~label:"CERTIFICATE" der2
  in
  match X509.Pem.decode blob with
  | Ok ("CERTIFICATE", der) -> check Alcotest.string "first block wins" der1 der
  | Ok _ | Error _ -> Alcotest.fail "expected the first block"

let test_crl_parse_malformed () =
  List.iter
    (fun bytes ->
      check Alcotest.bool "rejected" true (Result.is_error (X509.Crl.parse bytes)))
    [ ""; "\x30\x03\x02\x01\x01"; String.make 40 '\xFF' ]

let test_sct_bytes_malformed () =
  List.iter
    (fun bytes ->
      check Alcotest.bool "rejected" true
        (Result.is_error (Ctlog.Submission.sct_of_bytes bytes)))
    [ ""; "\x00"; "\x00\x05ab"; "\x00\x01X\x00\x01\x00\xFF" ]

let test_bidi_categories_via_labels () =
  (* ASCII digits are EN: a Hebrew label ending in a digit is fine. *)
  let issues s = Idna.ulabel_issues (Unicode.Codec.cps_of_utf8 s) in
  check Alcotest.bool "hebrew + digit ok" false
    (List.mem Idna.Bidi_violation (issues "\xD7\x90\xD7\x911"));
  (* A digit-leading RTL label violates condition 1. *)
  check Alcotest.bool "digit-leading rtl" true
    (List.mem Idna.Bidi_violation (issues "1\xD7\x90\xD7\x91"))

let test_report_table2_aggregates () =
  let t = Unicert.Pipeline.run ~scale:2500 ~seed:6 () in
  (* Aggregate buckets never appear among the named top-10 rows. *)
  let named =
    Unicert.Pipeline.top_issuers_by_nc t
    |> List.filter (fun (_, (s : Unicert.Pipeline.issuer_stats)) ->
           not s.Unicert.Pipeline.aggregate)
    |> List.map fst
  in
  List.iter
    (fun bucket ->
      check Alcotest.bool (bucket ^ " excluded") false (List.mem bucket named))
    [ "Other public CAs"; "Other regional CAs"; "Government / regional CAs" ]

let test_display_hostname_plain () =
  (* Non-IDN domains pass through untouched for all engines. *)
  List.iter
    (fun b ->
      check Alcotest.string "plain passthrough" "www.example.com"
        (Unicert.Browsers.display_hostname b "www.example.com"))
    Unicert.Browsers.all

let test_chain_self_signed () =
  (* A root listed as its own anchor verifies as a one-element chain. *)
  let root_dn = X509.Dn.of_list [ (X509.Attr.Organization_name, "Self Root") ] in
  let kp = X509.Certificate.mock_keypair ~seed:"self-root" () in
  let tbs =
    X509.Certificate.make_tbs ~issuer:root_dn ~subject:root_dn
      ~not_before:(Asn1.Time.make 2024 1 1) ~not_after:(Asn1.Time.make 2026 1 1)
      ~spki:(X509.Certificate.keypair_spki kp)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:[ X509.Extension.basic_constraints ~ca:true () ]
      ()
  in
  let root = X509.Certificate.sign kp tbs in
  match
    X509.Chain.verify ~at:(Asn1.Time.make 2025 1 1)
      ~anchors:[ X509.Chain.anchor_of_keypair root_dn kp ]
      ~intermediates:[] root
  with
  | Ok [ _ ] -> ()
  | Ok _ -> Alcotest.fail "expected a single-element chain"
  | Error f -> Alcotest.failf "%a" X509.Chain.pp_failure f

let test_classify_precert () =
  (* Precertificates classify like their final form (the dataset
     filtering handles them separately). *)
  let pre = cert ~extensions:[ X509.Extension.ct_poison ] "xn--bcher-kva.de" in
  check Alcotest.bool "precert is still classified" true
    (Unicert.Classify.is_unicert pre)

let suite =
  [
    Alcotest.test_case "ctx with unparsable SAN" `Quick test_ctx_unparsable_san;
    Alcotest.test_case "lint Na statuses" `Quick test_lint_na_statuses;
    Alcotest.test_case "monitor unicode refusal" `Quick test_monitor_unicode_refusal;
    Alcotest.test_case "pem multi block" `Quick test_pem_multi_block;
    Alcotest.test_case "crl parse malformed" `Quick test_crl_parse_malformed;
    Alcotest.test_case "sct bytes malformed" `Quick test_sct_bytes_malformed;
    Alcotest.test_case "bidi via labels" `Quick test_bidi_categories_via_labels;
    Alcotest.test_case "table2 aggregate exclusion" `Slow test_report_table2_aggregates;
    Alcotest.test_case "display hostname passthrough" `Quick test_display_hostname_plain;
    Alcotest.test_case "self-signed chain" `Quick test_chain_self_signed;
    Alcotest.test_case "precert classification" `Quick test_classify_precert;
  ]
