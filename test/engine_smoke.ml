(* @engine-smoke: differential test of the fused fact-table engine
   against the retained pre-fusion reference engine, attached to
   @runtest.

   The two engines derive the same row facts in structurally different
   ways (one Ctx traversal + table lookups vs. per-stage re-derivation
   from the certificate), so every drift between them is a correctness
   bug in the fusion.  The rendered report must be byte-identical at
   both corpus scales, for every jobs value, with and without seeded
   corruption. *)

let seed = 7
let rate = 0.08

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("engine-smoke: FAIL: " ^ m);
      exit 1)
    fmt

let report t = Format.asprintf "%a" Unicert.Report.all t

let run ~reference ~scale ~jobs ~corrupt =
  Unicert.Pipeline.use_reference_engine reference;
  Fun.protect
    ~finally:(fun () -> Unicert.Pipeline.use_reference_engine false)
    (fun () ->
      let mutator = if corrupt then Some (Faults.Mutator.plan ~seed ~rate ()) else None in
      let t = Unicert.Pipeline.run ~scale ~seed ?mutator ~jobs () in
      (match t.Unicert.Pipeline.faults.Unicert.Pipeline.aborted with
      | Some reason ->
          fail "run (scale=%d jobs=%d corrupt=%b) aborted: %s" scale jobs corrupt
            reason
      | None -> ());
      report t)

let () =
  Obs.Progress.set_override (Some false);
  let cases =
    [ (500, 1, false); (500, 2, false); (500, 4, false);
      (500, 1, true); (500, 2, true); (500, 4, true);
      (8000, 1, false); (8000, 2, false); (8000, 4, false); (8000, 1, true) ]
  in
  List.iter
    (fun (scale, jobs, corrupt) ->
      let fused = run ~reference:false ~scale ~jobs ~corrupt in
      let reference = run ~reference:true ~scale ~jobs ~corrupt in
      if fused <> reference then
        fail "fused and reference reports differ (scale=%d jobs=%d corrupt=%b)"
          scale jobs corrupt)
    cases;
  print_endline "engine-smoke: OK"
