(* @net-smoke: end-to-end contract check for the fetch source, attached
   to @runtest.

   Runs the full pipeline with its corpus fetched off the simulated CT
   logs and asserts the transport-robustness contract: the rendered
   report is byte-identical across --jobs values (clean and at a 10%
   fault rate), analysing a fetched corpus matches analysing a locally
   generated one, and a persistently dead log degrades coverage without
   aborting the run. *)

let scale = 256
let seed = 9

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("net-smoke: FAIL: " ^ m);
      exit 1)
    fmt

let report t = Format.asprintf "%a" Unicert.Report.all t

let base_cfg =
  { Ctlog.Fetch.default_cfg with Ctlog.Fetch.logs = 8; net_seed = Some 41 }

let run ?(cfg = base_cfg) jobs =
  Unicert.Pipeline.run ~scale ~seed ~jobs ~source:(Unicert.Pipeline.Fetch cfg) ()

(* The Coverage section only exists for fetch sources; strip it when
   comparing against a generate-source report. *)
let strip_coverage r =
  let marker = "== Coverage" in
  let nm = String.length marker and nr = String.length r in
  let rec find i =
    if i + nm > nr then None
    else if String.sub r i nm = marker then Some i
    else find (i + 1)
  in
  match find 0 with None -> r | Some i -> String.trim (String.sub r 0 i)

let () =
  let clean1 = run 1 in
  let clean4 = run 4 in
  if report clean1 <> report clean4 then
    fail "clean fetch report differs between --jobs 1 and --jobs 4";
  if Unicert.Pipeline.coverage_degraded clean1 then
    fail "clean transport must not degrade coverage";

  let gen = report (Unicert.Pipeline.run ~scale ~seed ~jobs:1 ()) in
  if strip_coverage (report clean1) <> String.trim gen then
    fail "a fetched corpus must analyse identically to a generated one";

  let faulty_cfg =
    { base_cfg with Ctlog.Fetch.fault_rate = 0.1; page_cap = 8 }
  in
  let f1 = run ~cfg:faulty_cfg 1 in
  let f4 = run ~cfg:faulty_cfg 4 in
  if report f1 <> report f4 then
    fail "faulty fetch report differs between --jobs 1 and --jobs 4";
  (* Retry counts differ in the Coverage section; the analysis must
     not. *)
  if strip_coverage (report f1) <> strip_coverage (report clean1) then
    fail "a 10%% fault rate must be retried into the clean result";
  if Unicert.Pipeline.coverage_degraded f1 then
    fail "a 10%% fault rate must not degrade coverage";

  let down_cfg =
    { base_cfg with Ctlog.Fetch.down = [ Ctlog.Fetch.log_name 3 ] }
  in
  let d = run ~cfg:down_cfg 2 in
  (match d.Unicert.Pipeline.faults.Unicert.Pipeline.aborted with
  | Some reason -> fail "dead-log run aborted instead of degrading: %s" reason
  | None -> ());
  if not (Unicert.Pipeline.coverage_degraded d) then
    fail "a dead log must surface as degraded coverage";
  print_endline "net-smoke: OK"
