(* Tests for Obs.Trace / Obs.Profile: exporter round-trips through the
   in-repo JSON parser, ring eviction keeps B/E pairing balanced,
   GC-attribution deltas are non-negative, the slow-cert log keeps the
   worst K, and the trace *structure* of a pipeline run is identical
   across --jobs values. *)

let check = Alcotest.check

(* Every test owns the global trace state: enable what it needs, and
   always disable on the way out. *)
let with_trace ?ring ?sample f =
  Fun.protect ~finally:Obs.Trace.disable (fun () ->
      Obs.Trace.enable ?ring ?sample ();
      f ())

(* Walk events in order and require every track's B/E sequence to be
   balanced: no E without an open B, nothing left open at the end. *)
let assert_balanced events =
  let stacks = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add stacks tid r;
        r
  in
  List.iter
    (fun (e : Obs.Trace.event) ->
      match e.Obs.Trace.ph with
      | Obs.Trace.Begin ->
          let st = stack e.Obs.Trace.tid in
          st := e.Obs.Trace.name :: !st
      | Obs.Trace.End -> (
          let st = stack e.Obs.Trace.tid in
          match !st with
          | _ :: rest -> st := rest
          | [] -> Alcotest.failf "E %S without an open B" e.Obs.Trace.name)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun _ st ->
      match !st with
      | [] -> ()
      | name :: _ -> Alcotest.failf "span %S left open" name)
    stacks

(* --- exporters -------------------------------------------------------- *)

let test_chrome_round_trip () =
  with_trace ~sample:1 (fun () ->
      Obs.Trace.span ~cat:"stage"
        ~args:[ ("log", Obs.Trace.Str "weird\"log\n"); ("page", Obs.Trace.Int 3) ]
        "outer"
        (fun () -> Obs.Trace.instant ~cat:"net" "backoff");
      Obs.Trace.async_begin ~cat:"net" ~id:7 "request";
      Obs.Trace.async_end ~cat:"net" ~id:7 "request";
      let events = Obs.Trace.snapshot () in
      check Alcotest.int "event count" 5 (List.length events);
      let doc =
        match Obs.Jsonv.parse (Obs.Trace.to_chrome events) with
        | Ok v -> v
        | Error msg -> Alcotest.failf "chrome export is not JSON: %s" msg
      in
      let arr =
        match Obs.Jsonv.member "traceEvents" doc with
        | Some (Obs.Jsonv.List l) -> l
        | _ -> Alcotest.fail "no traceEvents array"
      in
      check Alcotest.int "array length" 5 (List.length arr);
      let first = List.hd arr in
      check
        (Alcotest.option Alcotest.string)
        "name survives" (Some "outer")
        (match Obs.Jsonv.member "name" first with
        | Some (Obs.Jsonv.Str s) -> Some s
        | _ -> None);
      check
        (Alcotest.option Alcotest.string)
        "escaped arg survives" (Some "weird\"log\n")
        (Option.bind
           (Obs.Jsonv.member "args" first)
           (fun args ->
             match Obs.Jsonv.member "log" args with
             | Some (Obs.Jsonv.Str s) -> Some s
             | _ -> None));
      (* JSONL: every line is itself a JSON object with the keys the
         Chrome importer needs. *)
      let lines =
        String.split_on_char '\n' (String.trim (Obs.Trace.to_jsonl events))
      in
      check Alcotest.int "jsonl line count" 5 (List.length lines);
      List.iter
        (fun line ->
          match Obs.Jsonv.parse line with
          | Ok obj ->
              List.iter
                (fun k ->
                  if Obs.Jsonv.member k obj = None then
                    Alcotest.failf "jsonl event lacks %S" k)
                [ "name"; "cat"; "ph"; "ts"; "pid"; "tid" ]
          | Error msg -> Alcotest.failf "jsonl line is not JSON: %s" msg)
        lines)

(* --- ring eviction ---------------------------------------------------- *)

let test_ring_eviction_balanced () =
  with_trace ~ring:16 ~sample:1 (fun () ->
      (* 40 sequential spans = 80 events through a 16-slot ring: the
         kept window starts mid-stream, typically on an orphan E. *)
      for i = 1 to 40 do
        Obs.Trace.span ~cat:"stage" (Printf.sprintf "s%d" i) (fun () -> ())
      done;
      check Alcotest.bool "evictions happened" true (Obs.Trace.dropped () > 0);
      let events = Obs.Trace.snapshot () in
      check Alcotest.bool "snapshot bounded" true (List.length events <= 16);
      assert_balanced events;
      (* A span still open at snapshot time is closed synthetically. *)
      Obs.Trace.emit_begin ~cat:"stage" "open-span";
      let events = Obs.Trace.snapshot () in
      assert_balanced events;
      check Alcotest.bool "synthetic E is last" true
        (match List.rev events with
        | (last : Obs.Trace.event) :: _ ->
            last.Obs.Trace.ph = Obs.Trace.End
            && last.Obs.Trace.name = "open-span"
        | [] -> false))

(* --- GC attribution --------------------------------------------------- *)

let test_gc_deltas_non_negative () =
  let registry = Obs.Registry.create () in
  Fun.protect ~finally:Obs.Profile.disable (fun () ->
      Obs.Profile.enable ();
      Obs.Span.with_ ~registry "alloc" (fun () ->
          (* Allocate enough to move the minor-word counter. *)
          Sys.opaque_identity (ignore (List.init 10_000 string_of_int))));
  List.iter
    (fun name ->
      match Obs.Registry.find registry name with
      | Some (Obs.Registry.Labeled_counter f) ->
          List.iter
            (fun (label, c) ->
              check Alcotest.bool
                (Printf.sprintf "%s{span=%S} >= 0" name label)
                true
                (Obs.Counter.value c >= 0.))
            (Obs.Counter.Labeled.children f)
      | Some _ -> Alcotest.failf "%s registered as a non-counter" name
      | None -> ())
    [ "unicert_gc_minor_words_total"; "unicert_gc_major_words_total";
      "unicert_gc_minor_collections_total"; "unicert_gc_major_collections_total" ];
  (* The allocation loop must have been attributed somewhere. *)
  match Obs.Registry.find registry "unicert_gc_minor_words_total" with
  | Some (Obs.Registry.Labeled_counter f) ->
      check Alcotest.bool "minor words attributed to the span" true
        (Obs.Counter.value (Obs.Counter.Labeled.get f "alloc") > 0.)
  | _ -> Alcotest.fail "minor-word family missing"

(* --- slow-cert log ---------------------------------------------------- *)

let test_slow_cert_top_k () =
  Fun.protect
    ~finally:(fun () ->
      Obs.Profile.reset_slow ();
      Obs.Profile.set_top_k 16;
      Obs.Profile.disable ())
    (fun () ->
      Obs.Profile.reset_slow ();
      Obs.Profile.set_top_k 3;
      (* Off: notes are dropped. *)
      Obs.Profile.note_slow ~index:99 ~seconds:9.9 ~stage:"lint";
      check Alcotest.int "no entries while disabled" 0
        (List.length (Obs.Profile.slowest ()));
      Obs.Profile.enable ();
      List.iter
        (fun (i, s) -> Obs.Profile.note_slow ~index:i ~seconds:s ~stage:"lint")
        [ (0, 0.3); (1, 0.1); (2, 0.5); (3, 0.2); (4, 0.4) ];
      let top = Obs.Profile.slowest () in
      check
        (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9)))
        "worst 3, slowest first"
        [ (2, 0.5); (4, 0.4); (0, 0.3) ]
        (List.map
           (fun (s : Obs.Profile.slow) ->
             (s.Obs.Profile.index, s.Obs.Profile.seconds))
           top))

(* --- structural determinism across --jobs ----------------------------- *)

(* Canonical shape of one workload event: its category and name plus
   the enclosing span names on the same track, restricted to workload
   spans ("stage"/"lint" categories, minus the "pipeline" wrapper —
   whether stages sit under "pipeline" on the main domain or at top
   level on a worker domain is a scheduling artifact, not workload
   structure; "par"/"net" events are likewise jobs-dependent by
   design). *)
let canonical_shape events =
  let workload (e : Obs.Trace.event) =
    (e.Obs.Trace.cat = "stage" || e.Obs.Trace.cat = "lint")
    && e.Obs.Trace.name <> "pipeline"
  in
  let stacks = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add stacks tid r;
        r
  in
  let shapes = ref [] in
  List.iter
    (fun (e : Obs.Trace.event) ->
      if workload e then
        match e.Obs.Trace.ph with
        | Obs.Trace.Begin ->
            let st = stack e.Obs.Trace.tid in
            shapes :=
              Printf.sprintf "%s:%s<%s" e.Obs.Trace.cat e.Obs.Trace.name
                (String.concat "," !st)
              :: !shapes;
            st := e.Obs.Trace.name :: !st
        | Obs.Trace.End -> (
            let st = stack e.Obs.Trace.tid in
            match !st with _ :: rest -> st := rest | [] -> ())
        | _ -> ())
    events;
  List.sort compare !shapes

let test_jobs_determinism () =
  let shape_at jobs =
    with_trace ~ring:(1 lsl 16) ~sample:1 (fun () ->
        ignore
          (Sys.opaque_identity (Unicert.Pipeline.run ~scale:60 ~seed:5 ~jobs ()));
        let events = Obs.Trace.snapshot () in
        check Alcotest.bool
          (Printf.sprintf "jobs=%d ring not exhausted" jobs)
          true
          (Obs.Trace.dropped () = 0);
        assert_balanced events;
        canonical_shape events)
  in
  let s1 = shape_at 1 in
  check Alcotest.bool "trace is non-trivial" true (List.length s1 > 60);
  List.iter
    (fun jobs ->
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "jobs=1 vs jobs=%d" jobs)
        s1 (shape_at jobs))
    [ 2; 4 ]

let suite =
  [
    Alcotest.test_case "chrome + jsonl round-trip" `Quick test_chrome_round_trip;
    Alcotest.test_case "ring eviction stays balanced" `Quick
      test_ring_eviction_balanced;
    Alcotest.test_case "gc deltas non-negative" `Quick
      test_gc_deltas_non_negative;
    Alcotest.test_case "slow-cert top-k" `Quick test_slow_cert_top_k;
    Alcotest.test_case "trace structure deterministic across jobs" `Quick
      test_jobs_determinism;
  ]
