(* Tests for the lint framework: registry invariants matching the
   paper's Table 1 counts, per-flaw ground truth, effective-date
   gating, and individual lint behaviours. *)

let check = Alcotest.check

let test_registry_counts () =
  check Alcotest.int "95 lints total" 95 (List.length Lint.Registry.all);
  check Alcotest.int "50 new lints" 50
    (List.length (List.filter (fun (l : Lint.t) -> l.Lint.is_new) Lint.Registry.all));
  let expect ty all_n new_n =
    check (Alcotest.pair Alcotest.int Alcotest.int) (Lint.nc_type_name ty)
      (all_n, new_n) (Lint.Registry.counts_by_type ty)
  in
  (* The #Lints columns of Table 1. *)
  expect Lint.Invalid_character 22 10;
  expect Lint.Bad_normalization 4 3;
  expect Lint.Illegal_format 17 0;
  expect Lint.Invalid_encoding 48 37;
  expect Lint.Invalid_structure 2 0;
  expect Lint.Discouraged_field 2 0

let test_registry_lookup () =
  check Alcotest.bool "find known" true
    (Lint.Registry.find "e_rfc_dns_idn_a2u_unpermitted_unichar" <> None);
  check Alcotest.bool "find unknown" true (Lint.Registry.find "nonexistent" = None);
  (* Every Table 11 lint name exists in the registry. *)
  List.iter
    (fun name ->
      check Alcotest.bool name true (Lint.Registry.find name <> None))
    [ "w_rfc_ext_cp_explicit_text_not_utf8"; "w_cab_subject_common_name_not_in_san";
      "e_rfc_dns_idn_a2u_unpermitted_unichar";
      "e_subject_organization_not_printable_or_utf8";
      "e_subject_common_name_not_printable_or_utf8";
      "e_subject_locality_not_printable_or_utf8";
      "e_rfc_subject_dn_not_printable_characters";
      "e_subject_ou_not_printable_or_utf8";
      "e_subject_jurisdiction_locality_not_printable_or_utf8";
      "e_rfc_ext_cp_explicit_text_too_long";
      "e_subject_jurisdiction_state_not_printable_or_utf8";
      "e_rfc_ext_cp_explicit_text_ia5";
      "e_subject_jurisdiction_country_not_printable";
      "e_subject_state_not_printable_or_utf8";
      "e_rfc_subject_printable_string_badalpha";
      "w_community_subject_dn_trailing_whitespace";
      "e_subject_postal_code_not_printable_or_utf8";
      "e_subject_street_not_printable_or_utf8";
      "w_cab_subject_contain_extra_common_name";
      "e_subject_dn_serial_number_not_printable";
      "w_community_subject_dn_leading_whitespace";
      "e_rfc_subject_country_not_printable"; "e_rfc_dns_idn_malformed_unicode";
      "e_cab_dns_bad_character_in_label"; "e_ext_san_dns_contain_unpermitted_unichar" ]

(* --- per-flaw ground truth -------------------------------------------- *)

let issuer = List.hd Ctlog.Dataset.issuers

let cert_with_flaw seed flaw =
  let g = Ucrypto.Prng.create seed in
  let spec : Ctlog.Flaws.spec =
    {
      Ctlog.Flaws.subject =
        [ X509.Dn.atv X509.Attr.Country_name "DE";
          X509.Dn.atv X509.Attr.Locality_name "Berlin";
          X509.Dn.atv X509.Attr.Organization_name "Ground Truth GmbH";
          X509.Dn.atv X509.Attr.Common_name "gt.example.com" ];
      san = [ X509.General_name.Dns_name "gt.example.com" ];
      policies = [];
      crldp = [];
      not_before_form = None;
    }
  in
  Ctlog.Flaws.apply g spec flaw;
  let extensions =
    [ X509.Extension.subject_alt_name spec.Ctlog.Flaws.san ]
    @ (if spec.Ctlog.Flaws.policies = [] then []
       else [ X509.Extension.certificate_policies spec.Ctlog.Flaws.policies ])
    @
    if spec.Ctlog.Flaws.crldp = [] then []
    else [ X509.Extension.crl_distribution_points spec.Ctlog.Flaws.crldp ]
  in
  let kp = X509.Certificate.mock_keypair ~seed:"gt-ca" () in
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "GT CA") ])
      ~subject:(X509.Dn.single spec.Ctlog.Flaws.subject)
      ~not_before:(Asn1.Time.make 2025 1 1)
      ~not_after:(Asn1.Time.make 2025 4 1)
      ?not_before_form:spec.Ctlog.Flaws.not_before_form
      ~spki:(X509.Certificate.keypair_spki kp)
      ~sig_alg:X509.Certificate.Oids.mock_signature ~extensions ()
  in
  X509.Certificate.sign kp tbs

let test_flaw_ground_truth () =
  (* Every flaw must trigger each of its expected lints, from the DER
     bytes alone, for several random draws. *)
  List.iter
    (fun flaw ->
      let expected = Ctlog.Flaws.expected_lints flaw in
      List.iter
        (fun seed ->
          let cert = cert_with_flaw seed flaw in
          (* Parse back from bytes: the linter sees only the wire form. *)
          let cert =
            match X509.Certificate.parse cert.X509.Certificate.der with
            | Ok c -> c
            | Error m -> Alcotest.failf "%s: reparse failed: %s" (Ctlog.Flaws.name flaw) (Faults.Error.to_string m)
          in
          let findings =
            Lint.Registry.noncompliant ~respect_effective_dates:false
              ~issued:(Asn1.Time.make 2025 1 1) cert
          in
          let names = List.map (fun (f : Lint.finding) -> f.Lint.lint.Lint.name) findings in
          List.iter
            (fun expected_lint ->
              if not (List.mem expected_lint names) then
                Alcotest.failf "flaw %s (seed %d): expected %s, got [%s]"
                  (Ctlog.Flaws.name flaw) seed expected_lint
                  (String.concat "; " names))
            expected)
        [ 1; 2; 3 ])
    Ctlog.Flaws.all

let test_clean_cert_compliant () =
  let kp = X509.Certificate.mock_keypair ~seed:"clean-ca" () in
  let tbs =
    X509.Certificate.make_tbs ~serial:"\x05\x11"
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Clean CA") ])
      ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, "ok.example.com") ])
      ~not_before:(Asn1.Time.make 2024 6 1) ~not_after:(Asn1.Time.make 2024 9 1)
      ~spki:(X509.Certificate.keypair_spki kp)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        [ X509.Extension.subject_alt_name [ X509.General_name.Dns_name "ok.example.com" ] ]
      ()
  in
  let cert = X509.Certificate.sign kp tbs in
  let findings =
    Lint.Registry.noncompliant ~respect_effective_dates:false
      ~issued:(Asn1.Time.make 2024 6 1) cert
  in
  check (Alcotest.list Alcotest.string) "no findings" []
    (List.map (fun (f : Lint.finding) -> f.Lint.lint.Lint.name) findings)

let test_effective_dates () =
  let cert = cert_with_flaw 9 Ctlog.Flaws.Nonnfc_alabel in
  (* e_rfc_dns_idn_not_nfc became effective with RFC 8399 (2018). *)
  let dated =
    Lint.Registry.noncompliant ~issued:(Asn1.Time.make 2016 1 1) cert
  in
  check Alcotest.bool "2016 issuance: lint silent" true
    (not
       (List.exists
          (fun (f : Lint.finding) -> f.Lint.lint.Lint.name = "e_rfc_dns_idn_not_nfc")
          dated));
  let undated =
    Lint.Registry.noncompliant ~respect_effective_dates:false
      ~issued:(Asn1.Time.make 2016 1 1) cert
  in
  check Alcotest.bool "dates ignored: lint fires" true
    (List.exists
       (fun (f : Lint.finding) -> f.Lint.lint.Lint.name = "e_rfc_dns_idn_not_nfc")
       undated)

let test_include_new_ablation () =
  let cert = cert_with_flaw 4 Ctlog.Flaws.Unpermitted_alabel in
  let with_new = Lint.Registry.noncompliant ~issued:(Asn1.Time.make 2024 1 1) cert in
  let without_new =
    Lint.Registry.noncompliant ~include_new:false ~issued:(Asn1.Time.make 2024 1 1) cert
  in
  check Alcotest.bool "new lint catches" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.Lint.lint.Lint.name = "e_rfc_dns_idn_a2u_unpermitted_unichar")
       with_new);
  check Alcotest.bool "excluded without new" true
    (List.for_all (fun (f : Lint.finding) -> not f.Lint.lint.Lint.is_new) without_new)

let test_severity_mapping () =
  check Alcotest.bool "must=error" true (Lint.severity_of_level Lint.Must = Lint.Error);
  check Alcotest.bool "must-not=error" true
    (Lint.severity_of_level Lint.Must_not = Lint.Error);
  check Alcotest.bool "should=warning" true
    (Lint.severity_of_level Lint.Should = Lint.Warning);
  (* Name prefixes agree with severity, except the Table 11 lint the
     paper itself names w_ while classing its violations as errors. *)
  List.iter
    (fun (l : Lint.t) ->
      if l.Lint.name <> "w_cab_subject_common_name_not_in_san" then begin
        let prefix = l.Lint.name.[0] in
        match (prefix, Lint.severity l) with
        | 'e', Lint.Error | 'w', Lint.Warning -> ()
        | _ -> Alcotest.failf "lint %s prefix/severity mismatch" l.Lint.name
      end)
    Lint.Registry.all

let test_explicit_text_lints () =
  let cert = cert_with_flaw 8 Ctlog.Flaws.Explicit_text_ia5 in
  let names =
    Lint.Registry.noncompliant ~issued:(Asn1.Time.make 2024 1 1) cert
    |> List.map (fun (f : Lint.finding) -> f.Lint.lint.Lint.name)
  in
  check Alcotest.bool "ia5 error" true (List.mem "e_rfc_ext_cp_explicit_text_ia5" names);
  check Alcotest.bool "not-utf8 warning" true
    (List.mem "w_rfc_ext_cp_explicit_text_not_utf8" names)

let test_ctx_helpers () =
  let cert = cert_with_flaw 2 Ctlog.Flaws.Unicode_dnsname in
  let ctx = Lint.Ctx.of_cert cert in
  check Alcotest.bool "san parsed" true
    (match ctx.Lint.Ctx.san with Some (Ok _) -> true | _ -> false);
  check Alcotest.bool "dns names include san" true (Lint.Ctx.dns_names ctx <> []);
  check Alcotest.bool "subject texts" true (List.length (Lint.Ctx.subject_texts ctx) >= 4)

(* Telemetry must track behavior exactly: after a linter run, the
   per-lint invocation counter deltas equal the number of lints whose
   check actually executed (everything not NA-gated), and the NA
   counters the gated remainder.  Counters are process-cumulative, so
   compare before/after snapshots. *)
let test_obs_instrumentation () =
  let cert = cert_with_flaw 21 Ctlog.Flaws.Cn_not_in_san in
  let issued = Asn1.Time.make 2016 6 1 in
  let snapshot () =
    Lint.Registry.obs_snapshot ()
    |> List.map (fun (o : Lint.Registry.lint_obs) ->
           (o.Lint.Registry.lint_name, o))
  in
  let before = snapshot () in
  let findings = Lint.Registry.run ~issued cert in
  let after = snapshot () in
  let delta field =
    List.fold_left2
      (fun acc (na, a) (nb, b) ->
        assert (na = nb);
        acc +. (field a -. field b))
      0.0 after before
  in
  (* A check may itself return Na (field absent), which still counts as
     an invocation — so the executed/gated split comes from the
     effective-date gate, not from finding statuses. *)
  let gated =
    List.length
      (List.filter
         (fun (l : Lint.t) -> Asn1.Time.(issued < l.Lint.effective_date))
         Lint.Registry.all)
  in
  let executed = List.length Lint.Registry.all - gated in
  check Alcotest.int "one finding per registered lint" 95 (List.length findings);
  check (Alcotest.float 0.0) "invocation deltas = applicable lints"
    (float_of_int executed)
    (delta (fun o -> o.Lint.Registry.invoked));
  check (Alcotest.float 0.0) "na deltas = date-gated lints"
    (float_of_int gated)
    (delta (fun o -> o.Lint.Registry.skipped_na));
  (* Per lint the delta is exactly one invocation or one NA, never both. *)
  List.iter2
    (fun (name, a) (_, b) ->
      let di = a.Lint.Registry.invoked -. b.Lint.Registry.invoked
      and dn = a.Lint.Registry.skipped_na -. b.Lint.Registry.skipped_na in
      if not ((di = 1.0 && dn = 0.0) || (di = 0.0 && dn = 1.0)) then
        Alcotest.failf "lint %s: invocation delta %g, na delta %g" name di dn)
    after before;
  (* Fail/warn hit counters track the findings of this run. *)
  let nc = List.filter Lint.is_noncompliant findings in
  check (Alcotest.float 0.0) "fail+warn deltas = noncompliant findings"
    (float_of_int (List.length nc))
    (delta (fun o -> o.Lint.Registry.failed +. o.Lint.Registry.warned))

let suite =
  [
    Alcotest.test_case "registry counts match Table 1" `Quick test_registry_counts;
    Alcotest.test_case "telemetry tracks execution" `Quick test_obs_instrumentation;
    Alcotest.test_case "registry lookups" `Quick test_registry_lookup;
    Alcotest.test_case "per-flaw ground truth" `Slow test_flaw_ground_truth;
    Alcotest.test_case "clean cert is compliant" `Quick test_clean_cert_compliant;
    Alcotest.test_case "effective date gating" `Quick test_effective_dates;
    Alcotest.test_case "new-lint ablation" `Quick test_include_new_ablation;
    Alcotest.test_case "severity mapping" `Quick test_severity_mapping;
    Alcotest.test_case "explicit text lints" `Quick test_explicit_text_lints;
    Alcotest.test_case "ctx helpers" `Quick test_ctx_helpers;
  ]
