(* Tests for the TLS 1.2 wire substrate and wire-level middlebox
   inspection. *)

let check = Alcotest.check

let ca = X509.Certificate.mock_keypair ~seed:"tlswire-ca" ()

let cert ?(org = None) cn =
  let subject =
    (match org with Some o -> [ X509.Dn.atv X509.Attr.Organization_name o ] | None -> [])
    @ [ X509.Dn.atv X509.Attr.Common_name cn ]
  in
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Wire CA") ])
      ~subject:(X509.Dn.single subject)
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki ca)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:[ X509.Extension.subject_alt_name [ X509.General_name.Dns_name cn ] ]
      ()
  in
  X509.Certificate.sign ca tbs

let test_record_roundtrip () =
  let r = { Tlswire.Wire.content_type = 22; version = (3, 3); payload = "payload-bytes" } in
  match Tlswire.Wire.decode_records (Tlswire.Wire.encode_record r) with
  | Ok [ r' ] ->
      check Alcotest.int "type" 22 r'.Tlswire.Wire.content_type;
      check Alcotest.string "payload" "payload-bytes" r'.Tlswire.Wire.payload
  | Ok _ -> Alcotest.fail "expected one record"
  | Error m -> Alcotest.fail m

let test_record_errors () =
  check Alcotest.bool "truncated header" true
    (Result.is_error (Tlswire.Wire.decode_records "\x16\x03"));
  check Alcotest.bool "overrunning payload" true
    (Result.is_error (Tlswire.Wire.decode_records "\x16\x03\x03\x00\x10abc"))

let test_client_hello_sni () =
  let g = Ucrypto.Prng.create 3 in
  let flow = Tlswire.Wire.client_hello_flow ~sni:"shop.example.com" g in
  check (Alcotest.option Alcotest.string) "sni recovered" (Some "shop.example.com")
    (Tlswire.Wire.sni_of_flow flow);
  let plain = Tlswire.Wire.client_hello_flow (Ucrypto.Prng.create 4) in
  check (Alcotest.option Alcotest.string) "no sni" None (Tlswire.Wire.sni_of_flow plain)

let test_certificate_message () =
  let g = Ucrypto.Prng.create 5 in
  let leaf = cert "leaf.example" and extra = cert "issuer.example" in
  let flow = Tlswire.Wire.server_flight g [ leaf; extra ] in
  let certs = Tlswire.Wire.server_certificates flow in
  check Alcotest.int "two certs" 2 (List.length certs);
  check (Alcotest.option Alcotest.string) "leaf first" (Some "leaf.example")
    (X509.Certificate.subject_cn (List.hd certs));
  (* Raw bytes identical after the round trip. *)
  check Alcotest.string "der preserved" leaf.X509.Certificate.der
    (List.hd certs).X509.Certificate.der

let test_handshake_sequence () =
  let g = Ucrypto.Prng.create 6 in
  let flow = Tlswire.Wire.server_flight g [ cert "a.example" ] in
  match Tlswire.Wire.handshakes_of_flow flow with
  | Ok [ Tlswire.Wire.Server_hello _; Tlswire.Wire.Certificate [ _ ] ] -> ()
  | Ok msgs -> Alcotest.failf "unexpected sequence of %d messages" (List.length msgs)
  | Error m -> Alcotest.fail m

let test_wire_inspection () =
  let evil = cert ~org:(Some "Evil Entity Corp") "service.evil.test" in
  let client, server =
    Middlebox.Inspect.tls_session ~sni:"service.evil.test" ~seed:9 [ evil ]
  in
  let rules = [ { Middlebox.Engine.field = `Org; pattern = "Evil Entity Corp" } ] in
  List.iter
    (fun engine ->
      let v = Middlebox.Inspect.inspect engine ~rules ~client_flow:client ~server_flow:server in
      check Alcotest.bool (v.Middlebox.Inspect.engine ^ " blocks") true
        v.Middlebox.Inspect.blocked;
      check (Alcotest.option Alcotest.string) "sni seen" (Some "service.evil.test")
        v.Middlebox.Inspect.sni)
    Middlebox.Engine.all

let test_wire_evasion () =
  (* The variant certificate slips through the same wire path. *)
  let g = Ucrypto.Prng.create 10 in
  let variant =
    Middlebox.Obfuscation.apply g Middlebox.Obfuscation.Whitespace_substitution
      "Evil Entity Corp"
  in
  let evasive = cert ~org:(Some variant) "service.evil.test" in
  let client, server = Middlebox.Inspect.tls_session ~seed:11 [ evasive ] in
  let rules = [ { Middlebox.Engine.field = `Org; pattern = "Evil Entity Corp" } ] in
  List.iter
    (fun engine ->
      let v = Middlebox.Inspect.inspect engine ~rules ~client_flow:client ~server_flow:server in
      check Alcotest.bool (v.Middlebox.Inspect.engine ^ " evaded") false
        v.Middlebox.Inspect.blocked)
    Middlebox.Engine.all

let prop_flow_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"server flight always parses" ~count:60
       QCheck.(int_range 0 100000)
       (fun seed ->
         let g = Ucrypto.Prng.create seed in
         let flow = Tlswire.Wire.server_flight g [ cert "prop.example" ] in
         List.length (Tlswire.Wire.server_certificates flow) = 1))

let suite =
  [
    Alcotest.test_case "record roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "record errors" `Quick test_record_errors;
    Alcotest.test_case "client hello sni" `Quick test_client_hello_sni;
    Alcotest.test_case "certificate message" `Quick test_certificate_message;
    Alcotest.test_case "handshake sequence" `Quick test_handshake_sequence;
    Alcotest.test_case "wire inspection" `Quick test_wire_inspection;
    Alcotest.test_case "wire evasion" `Quick test_wire_evasion;
    prop_flow_roundtrip;
  ]
