(* Tests for the TLS parser models and the differential harness: the
   Table 4/5 cells the paper's §5 findings rest on. *)

let check = Alcotest.check

let model name =
  match Tlsparsers.Models.find name with
  | Some m -> m
  | None -> Alcotest.failf "model %s missing" name

let decode name st raw = (model name).Tlsparsers.Model.decode_name_attr st raw

let so = Alcotest.option Alcotest.string

let test_gnutls_utf8_everywhere () =
  (* GnuTLS decodes PrintableString as UTF-8 (over-tolerant). *)
  check so "printable utf8" (Some "caf\xC3\xA9")
    (decode "GnuTLS" Asn1.Str_type.Printable_string "caf\xC3\xA9");
  (* Invalid UTF-8 fails hard. *)
  check so "latin1 byte fails" None
    (decode "GnuTLS" Asn1.Str_type.Printable_string "caf\xE9")

let test_forge_utf8_as_latin1 () =
  (* The incompatible decoding of Table 4: é (UTF-8) becomes Ã©. *)
  check so "mojibake" (Some "\xC3\x83\xC2\xA9")
    (decode "Forge" Asn1.Str_type.Utf8_string "\xC3\xA9");
  check so "bmp unsupported" None (decode "Forge" Asn1.Str_type.Bmp_string "\x00a")

let test_openssl_hex_escapes () =
  check so "escapes control and high bytes" (Some "a\\x01b\\xFF")
    (decode "OpenSSL" Asn1.Str_type.Printable_string "a\x01b\xFF");
  (* BMPString read byte-wise: the githube.cn vector. *)
  check so "bytewise bmp" (Some "githube.cn")
    (decode "OpenSSL" Asn1.Str_type.Bmp_string "githube.cn")

let test_java_replacement () =
  check so "fffd replacement" (Some "caf\xEF\xBF\xBD\xEF\xBF\xBD")
    (decode "Java.security.cert" Asn1.Str_type.Printable_string "caf\xC3\xA9");
  check so "bytewise bmp" (Some "githube.cn")
    (decode "Java.security.cert" Asn1.Str_type.Bmp_string "githube.cn")

let test_strict_decoders () =
  List.iter
    (fun name ->
      check so (name ^ " rejects bad ascii") None
        (decode name Asn1.Str_type.Printable_string "caf\xE9"))
    [ "Golang Crypto"; "Node.js Crypto"; "Cryptography"; "BouncyCastle" ];
  (* Go additionally enforces the PrintableString repertoire. *)
  check so "go rejects @" None (decode "Golang Crypto" Asn1.Str_type.Printable_string "a@b");
  check so "node accepts @" (Some "a@b")
    (decode "Node.js Crypto" Asn1.Str_type.Printable_string "a@b")

let test_bmp_utf16_tolerance () =
  let pair = "\xD8\x3D\xDE\x00" (* U+1F600 as a surrogate pair *) in
  check so "cryptography decodes pairs" (Some "\xF0\x9F\x98\x80")
    (decode "Cryptography" Asn1.Str_type.Bmp_string pair);
  check so "bouncycastle decodes pairs" (Some "\xF0\x9F\x98\x80")
    (decode "BouncyCastle" Asn1.Str_type.Bmp_string pair)

let test_pyopenssl_crldp_dots () =
  let m = model "PyOpenSSL" in
  check so "controls become dots" (Some "http://ssl.test.com/ca.crl")
    (m.Tlsparsers.Model.decode_gn Tlsparsers.Model.Crldp "http://ssl\x01test.com/ca.crl");
  (* Other GN fields keep the control byte (Latin-1 passthrough). *)
  check so "san keeps control" (Some "a\x01b")
    (m.Tlsparsers.Model.decode_gn Tlsparsers.Model.San "a\x01b")

let test_field_support () =
  let supports name field = (model name).Tlsparsers.Model.supports field in
  check Alcotest.bool "openssl dn only" true (supports "OpenSSL" Tlsparsers.Model.Subject_dn);
  check Alcotest.bool "openssl no san" false (supports "OpenSSL" Tlsparsers.Model.San);
  check Alcotest.bool "bouncycastle no san" false
    (supports "BouncyCastle" Tlsparsers.Model.San);
  check Alcotest.bool "cryptography all" true
    (List.for_all (supports "Cryptography") Tlsparsers.Model.all_fields)

(* --- inference engine --------------------------------------------------- *)

let test_infer_identifies_decoders () =
  let probe raws f = List.map (fun raw -> { Tlsparsers.Infer.raw; output = f raw }) raws in
  let raws = Tlsparsers.Testgen.byte_battery in
  let expect name f m h =
    match Tlsparsers.Infer.infer (probe raws f) with
    | Some (m', h') when m = m' && h = h' -> ()
    | Some (m', h') ->
        Alcotest.failf "%s: inferred %s/%s" name
          (Tlsparsers.Infer.method_name m')
          (Tlsparsers.Infer.handling_name h')
    | None -> Alcotest.failf "%s: no inference" name
  in
  expect "latin1"
    (fun raw -> Some (Tlsparsers.Model.latin1 raw))
    Tlsparsers.Infer.M_latin1 Tlsparsers.Infer.H_none;
  expect "utf8 strict" Tlsparsers.Model.utf8_strict Tlsparsers.Infer.M_utf8
    Tlsparsers.Infer.H_none;
  expect "ascii strict" Tlsparsers.Model.ascii_strict Tlsparsers.Infer.M_ascii
    Tlsparsers.Infer.H_none;
  expect "ascii + fffd"
    (fun raw -> Some (Tlsparsers.Model.ascii_replace 0xFFFD raw))
    Tlsparsers.Infer.M_ascii Tlsparsers.Infer.H_replace_fffd

let test_infer_classification () =
  let open Tlsparsers.Infer in
  check (Alcotest.list Alcotest.string) "compliant" [ "compliant" ]
    (List.map verdict_name
       (classify ~declared:Asn1.Str_type.Printable_string (Some (M_ascii, H_none))
          ~all_none:false));
  check (Alcotest.list Alcotest.string) "over tolerant" [ "over-tolerant" ]
    (List.map verdict_name
       (classify ~declared:Asn1.Str_type.Printable_string (Some (M_utf8, H_none))
          ~all_none:false));
  check (Alcotest.list Alcotest.string) "incompatible" [ "incompatible" ]
    (List.map verdict_name
       (classify ~declared:Asn1.Str_type.Utf8_string (Some (M_latin1, H_none))
          ~all_none:false));
  check (Alcotest.list Alcotest.string) "unsupported" [ "unsupported" ]
    (List.map verdict_name
       (classify ~declared:Asn1.Str_type.Bmp_string None ~all_none:true))

(* --- harness matrices ---------------------------------------------------- *)

let find_cell matrix scenario_name lib =
  List.find_map
    (fun (s, cells) ->
      if Tlsparsers.Harness.scenario_name s = scenario_name then
        List.find_opt (fun (c : Tlsparsers.Harness.cell) -> c.Tlsparsers.Harness.library = lib) cells
      else None)
    matrix

let test_table4_key_cells () =
  let matrix = Tlsparsers.Harness.decoding_matrix () in
  let has_verdict scenario lib v =
    match find_cell matrix scenario lib with
    | Some cell -> List.mem v cell.Tlsparsers.Harness.verdicts
    | None -> false
  in
  let open Tlsparsers.Infer in
  check Alcotest.bool "gnutls printable over-tolerant" true
    (has_verdict "PrintableString in Name" "GnuTLS" Over_tolerant);
  check Alcotest.bool "forge utf8 incompatible" true
    (has_verdict "UTF8String in Name" "Forge" Incompatible);
  check Alcotest.bool "openssl bmp incompatible" true
    (has_verdict "BMPString in Name" "OpenSSL" Incompatible);
  check Alcotest.bool "java bmp incompatible" true
    (has_verdict "BMPString in Name" "Java.security.cert" Incompatible);
  check Alcotest.bool "cryptography bmp over-tolerant" true
    (has_verdict "BMPString in Name" "Cryptography" Over_tolerant);
  check Alcotest.bool "go printable compliant" true
    (has_verdict "PrintableString in Name" "Golang Crypto" Compliant);
  check Alcotest.bool "forge bmp unsupported" true
    (has_verdict "BMPString in Name" "Forge" Unsupported);
  check Alcotest.bool "openssl gn unsupported" true
    (has_verdict "IA5String in GN" "OpenSSL" Unsupported)

let test_table5_escaping () =
  let rows = Tlsparsers.Harness.escaping_rows () in
  let cell row lib =
    match List.assoc_opt row rows with
    | Some cells -> List.assoc_opt lib cells
    | None -> None
  in
  check Alcotest.bool "openssl oneline exploited" true
    (cell "RFC2253 DN" "OpenSSL" = Some Tlsparsers.Harness.Esc_exploited);
  check Alcotest.bool "pyopenssl gn exploited" true
    (cell "GN escaping" "PyOpenSSL" = Some Tlsparsers.Harness.Esc_exploited);
  check Alcotest.bool "cryptography 4514 ok" true
    (cell "RFC4514 DN" "Cryptography" = Some Tlsparsers.Harness.Esc_ok);
  check Alcotest.bool "go structured" true
    (cell "RFC2253 DN" "Golang Crypto" = Some Tlsparsers.Harness.Esc_na);
  check Alcotest.bool "node unexploited violation" true
    (cell "RFC2253 DN" "Node.js Crypto" = Some Tlsparsers.Harness.Esc_violation)

let test_every_library_has_a_violation () =
  (* §5.2: "each TLS library exhibited at least one violation" — our Go
     model enforces every check (its Table 5 row is all-clear in the
     paper as well), so it is the one exception. *)
  let tol = Tlsparsers.Harness.illegal_char_rows () in
  let esc = Tlsparsers.Harness.escaping_rows () in
  List.iter
    (fun (m : Tlsparsers.Model.t) ->
      let lib = m.Tlsparsers.Model.name in
      let tolerated =
        List.exists
          (fun (_, cells) -> List.assoc_opt lib cells = Some Tlsparsers.Harness.Tolerated)
          tol
      in
      let escaping =
        List.exists
          (fun (_, cells) ->
            match List.assoc_opt lib cells with
            | Some Tlsparsers.Harness.Esc_violation | Some Tlsparsers.Harness.Esc_exploited
              ->
                true
            | _ -> false)
          esc
      in
      let decoding =
        List.exists
          (fun (_, cells) ->
            List.exists
              (fun (c : Tlsparsers.Harness.cell) ->
                c.Tlsparsers.Harness.library = lib
                && List.exists
                     (fun v ->
                       v = Tlsparsers.Infer.Over_tolerant
                       || v = Tlsparsers.Infer.Incompatible
                       || v = Tlsparsers.Infer.Modified)
                     c.Tlsparsers.Harness.verdicts)
              cells)
          (Tlsparsers.Harness.decoding_matrix ())
      in
      if lib <> "Golang Crypto" && not (tolerated || escaping || decoding) then
        Alcotest.failf "%s shows no violation anywhere" lib)
    Tlsparsers.Models.all

let test_testgen () =
  let cert =
    Tlsparsers.Testgen.make
      (Tlsparsers.Testgen.Subject_attr
         (X509.Attr.Organization_name, Asn1.Str_type.Bmp_string, "githube.cn"))
  in
  (match Tlsparsers.Testgen.raw_subject_attr cert X509.Attr.Organization_name with
  | Some (st, raw) ->
      check Alcotest.bool "type preserved" true (st = Asn1.Str_type.Bmp_string);
      check Alcotest.string "raw preserved" "githube.cn" raw
  | None -> Alcotest.fail "attr missing");
  let cert = Tlsparsers.Testgen.make (Tlsparsers.Testgen.San_dns "a\x00b.com") in
  check (Alcotest.list Alcotest.string) "san payload" [ "a\x00b.com" ]
    (Tlsparsers.Testgen.raw_san_payloads cert);
  check Alcotest.bool "block sweep covers all non-surrogate blocks" true
    (List.length (Tlsparsers.Testgen.block_samples ())
    = Array.length Unicode.Blocks.non_surrogate);
  check Alcotest.int "c0-ff sweep" 256 (List.length (Tlsparsers.Testgen.c0_to_ff_samples ()))

let test_api_table () =
  check Alcotest.int "nine libraries" 9 (List.length Tlsparsers.Apis.all);
  (* Every model has an API row and vice versa. *)
  List.iter
    (fun (m : Tlsparsers.Model.t) ->
      check Alcotest.bool (m.Tlsparsers.Model.name ^ " has APIs") true
        (Tlsparsers.Apis.find m.Tlsparsers.Model.name <> None))
    Tlsparsers.Models.all;
  check (Alcotest.option Alcotest.string) "openssl subject API"
    (Some "X509_NAME_oneline()")
    (Tlsparsers.Apis.api_for "OpenSSL" Tlsparsers.Model.Subject_dn);
  check (Alcotest.option Alcotest.string) "openssl has no SAN API" None
    (Tlsparsers.Apis.api_for "OpenSSL" Tlsparsers.Model.San);
  check (Alcotest.option Alcotest.string) "gnutls crldp API"
    (Some "gnutls_x509_crt_get_crl_dist_points()")
    (Tlsparsers.Apis.api_for "GnuTLS" Tlsparsers.Model.Crldp)

let suite =
  [
    Alcotest.test_case "gnutls utf8 everywhere" `Quick test_gnutls_utf8_everywhere;
    Alcotest.test_case "forge utf8-as-latin1" `Quick test_forge_utf8_as_latin1;
    Alcotest.test_case "openssl hex escapes" `Quick test_openssl_hex_escapes;
    Alcotest.test_case "java fffd replacement" `Quick test_java_replacement;
    Alcotest.test_case "strict decoders" `Quick test_strict_decoders;
    Alcotest.test_case "bmp utf16 tolerance" `Quick test_bmp_utf16_tolerance;
    Alcotest.test_case "pyopenssl crldp dots" `Quick test_pyopenssl_crldp_dots;
    Alcotest.test_case "field support" `Quick test_field_support;
    Alcotest.test_case "inference identifies decoders" `Quick test_infer_identifies_decoders;
    Alcotest.test_case "inference classification" `Quick test_infer_classification;
    Alcotest.test_case "table 4 key cells" `Quick test_table4_key_cells;
    Alcotest.test_case "table 5 escaping" `Quick test_table5_escaping;
    Alcotest.test_case "every library violates something" `Quick
      test_every_library_has_a_violation;
    Alcotest.test_case "test cert generator" `Quick test_testgen;
    Alcotest.test_case "appendix E api table" `Quick test_api_table;
  ]
