(* Tests for the ASN.1 layer: OIDs, DER reader/writer, string types,
   time. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- OIDs ----------------------------------------------------------- *)

let test_oid_strings () =
  check (Alcotest.option (Alcotest.list Alcotest.int)) "parse" (Some [ 2; 5; 4; 3 ])
    (Asn1.Oid.of_string "2.5.4.3");
  check Alcotest.string "print" "1.3.6.1.5.5.7.48.1"
    (Asn1.Oid.to_string (Asn1.Oid.of_string_exn "1.3.6.1.5.5.7.48.1"));
  check (Alcotest.option (Alcotest.list Alcotest.int)) "reject single arc" None
    (Asn1.Oid.of_string "2");
  check (Alcotest.option (Alcotest.list Alcotest.int)) "reject empty" None
    (Asn1.Oid.of_string "");
  check (Alcotest.option (Alcotest.list Alcotest.int)) "reject junk" None
    (Asn1.Oid.of_string "1.two.3")

let test_oid_der () =
  (* Known encoding: 1.2.840.113549 = 2A 86 48 86 F7 0D *)
  check Alcotest.string "rsa arc" "\x2A\x86\x48\x86\xF7\x0D"
    (Asn1.Oid.encode [ 1; 2; 840; 113549 ]);
  check
    (Alcotest.result (Alcotest.list Alcotest.int) Alcotest.string)
    "decode" (Ok [ 1; 2; 840; 113549 ])
    (Asn1.Oid.decode "\x2A\x86\x48\x86\xF7\x0D")

let oid_gen =
  QCheck.make
    ~print:(fun l -> String.concat "." (List.map string_of_int l))
    QCheck.Gen.(
      map2
        (fun head tail -> head @ tail)
        (oneofl [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 5 ]; [ 2; 39 ] ])
        (list_size (int_range 0 6) (int_range 0 1_000_000)))

let prop_oid_roundtrip =
  QCheck.Test.make ~name:"oid der roundtrip" ~count:300 oid_gen (fun oid ->
      Asn1.Oid.decode (Asn1.Oid.encode oid) = Ok oid)

(* --- string types --------------------------------------------------- *)

let test_str_types () =
  List.iter
    (fun st ->
      check (Alcotest.option Alcotest.int) (Asn1.Str_type.name st)
        (Some (Asn1.Str_type.tag st))
        (Option.map Asn1.Str_type.tag (Asn1.Str_type.of_tag (Asn1.Str_type.tag st)));
      check
        (Alcotest.option Alcotest.string)
        "name roundtrip"
        (Some (Asn1.Str_type.name st))
        (Option.map Asn1.Str_type.name (Asn1.Str_type.of_name (Asn1.Str_type.name st))))
    Asn1.Str_type.all

let test_str_validation () =
  let open Asn1.Str_type in
  check (Alcotest.list Alcotest.int) "printable rejects @" [ Char.code '@' ]
    (validate Printable_string (Unicode.Codec.cps_of_utf8 "a@b"));
  check (Alcotest.list Alcotest.int) "ia5 rejects non-ascii" [ 0xE9 ]
    (validate Ia5_string [| 0x61; 0xE9 |]);
  check (Alcotest.list Alcotest.int) "utf8 allows all scalars" []
    (validate Utf8_string [| 0x4E2D; 0x1F600 |]);
  check (Alcotest.list Alcotest.int) "bmp rejects astral" [ 0x1F600 ]
    (validate Bmp_string [| 0x41; 0x1F600 |]);
  check (Alcotest.list Alcotest.int) "numeric rejects letters" [ Char.code 'a' ]
    (validate Numeric_string (Unicode.Codec.cps_of_utf8 "12a"))

(* --- DER values ------------------------------------------------------ *)

let value_testable = Alcotest.testable Asn1.Value.pp ( = )

let test_der_primitives () =
  let open Asn1.Value in
  let rt v =
    match decode (encode v) with
    | Ok v' -> check value_testable "roundtrip" v v'
    | Error e -> Alcotest.failf "decode failed: %a" pp_error e
  in
  rt (Boolean true);
  rt (Boolean false);
  rt (integer_of_int 0);
  rt (integer_of_int 127);
  rt (integer_of_int 128);
  rt (integer_of_int 65535);
  rt Null;
  rt (Oid [ 2; 5; 4; 3 ]);
  rt (Octet_string "\x00\x01\xFF");
  rt (Bit_string (3, "\xA0"));
  rt (Str (Asn1.Str_type.Utf8_string, "caf\xC3\xA9"));
  rt (Str (Asn1.Str_type.Printable_string, "hello"));
  rt (Utc_time "240101000000Z");
  rt (Sequence [ Boolean true; Null ]);
  rt (Set [ integer_of_int 1; integer_of_int 2 ]);
  rt (Implicit (2, "test.com"));
  rt (Explicit (3, [ Sequence [] ]))

let test_der_long_lengths () =
  let open Asn1.Value in
  (* Content over 127 bytes forces the long length form. *)
  let v = Octet_string (String.make 300 'x') in
  (match decode (encode v) with
  | Ok v' -> check value_testable "long form" v v'
  | Error e -> Alcotest.failf "%a" pp_error e);
  let v = Octet_string (String.make 70000 'y') in
  match decode (encode v) with
  | Ok v' -> check value_testable "very long form" v v'
  | Error e -> Alcotest.failf "%a" pp_error e

let test_der_malformed () =
  let open Asn1.Value in
  let reject name bytes =
    match decode bytes with
    | Ok _ -> Alcotest.failf "%s should have failed" name
    | Error _ -> ()
  in
  reject "empty" "";
  reject "truncated length" "\x30\x82\x01";
  reject "content overrun" "\x30\x05\x01\x01";
  reject "trailing bytes" "\x05\x00\x00";
  reject "indefinite length" "\x30\x80\x00\x00";
  reject "boolean wrong size" "\x01\x02\x00\x00";
  reject "null with content" "\x05\x01\x00";
  reject "empty integer" "\x02\x00"

let test_der_lenient_lengths () =
  (* A non-minimal length (0x81 0x05 for length 5) is rejected strictly
     but accepted leniently. *)
  let bytes = "\x04\x81\x05hello" in
  (match Asn1.Value.decode bytes with
  | Ok _ -> Alcotest.fail "strict should reject non-minimal length"
  | Error _ -> ());
  match Asn1.Value.decode ~config:Asn1.Value.lenient bytes with
  | Ok (Asn1.Value.Octet_string "hello") -> ()
  | Ok v -> Alcotest.failf "unexpected %a" Asn1.Value.pp v
  | Error e -> Alcotest.failf "lenient should accept: %a" Asn1.Value.pp_error e

let test_der_depth_guard () =
  let rec nest n acc = if n = 0 then acc else nest (n - 1) (Asn1.Value.Sequence [ acc ]) in
  let deep = nest 100 Asn1.Value.Null in
  match Asn1.Value.decode (Asn1.Value.encode deep) with
  | Ok _ -> Alcotest.fail "depth guard should trigger"
  | Error _ -> ()

let value_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun b -> Asn1.Value.Boolean b) bool;
        map (fun n -> Asn1.Value.integer_of_int n) (int_range (-100000) 100000);
        return Asn1.Value.Null;
        map (fun s -> Asn1.Value.Octet_string s) (string_size (int_range 0 20));
        map (fun s -> Asn1.Value.Str (Asn1.Str_type.Utf8_string, s)) (string_size (int_range 0 20));
        map (fun s -> Asn1.Value.Implicit (2, s)) (string_size (int_range 0 10)) ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [ (3, leaf);
          (1, map (fun l -> Asn1.Value.Sequence l) (list_size (int_range 0 4) (tree (depth - 1))));
          (1, map (fun l -> Asn1.Value.Explicit (1, l)) (list_size (int_range 0 3) (tree (depth - 1)))) ]
  in
  QCheck.make ~print:(Format.asprintf "%a" Asn1.Value.pp) (tree 3)

let prop_der_roundtrip =
  QCheck.Test.make ~name:"DER value roundtrip" ~count:500 value_gen (fun v ->
      match Asn1.Value.decode (Asn1.Value.encode v) with
      | Ok v' -> v = v'
      | Error _ -> false)

(* --- time ------------------------------------------------------------ *)

let time_testable = Alcotest.testable Asn1.Time.pp Asn1.Time.equal

let test_time_parsing () =
  check
    (Alcotest.result time_testable Alcotest.string)
    "utctime" (Ok (Asn1.Time.make ~hour:12 ~minute:30 ~second:15 2024 6 1))
    (Asn1.Time.of_utctime "240601123015Z");
  check
    (Alcotest.result time_testable Alcotest.string)
    "window pre-1950" (Ok (Asn1.Time.make 1999 12 31))
    (Asn1.Time.of_utctime "991231000000Z");
  check
    (Alcotest.result time_testable Alcotest.string)
    "generalized" (Ok (Asn1.Time.make 2050 1 1))
    (Asn1.Time.of_generalized "20500101000000Z");
  check Alcotest.bool "reject short" true
    (Result.is_error (Asn1.Time.of_utctime "2406011230Z"));
  check Alcotest.bool "reject bad month" true
    (Result.is_error (Asn1.Time.of_utctime "241301000000Z"))

let test_time_arithmetic () =
  let t = Asn1.Time.make 2024 2 28 in
  check time_testable "leap day" (Asn1.Time.make 2024 2 29) (Asn1.Time.add_days t 1);
  check time_testable "into march" (Asn1.Time.make 2024 3 1) (Asn1.Time.add_days t 2);
  check Alcotest.int "leap year span" 366
    (Asn1.Time.days_between (Asn1.Time.make 2024 1 1) (Asn1.Time.make 2025 1 1));
  check Alcotest.int "ninety" 90
    (Asn1.Time.days_between (Asn1.Time.make 2025 1 1)
       (Asn1.Time.add_days (Asn1.Time.make 2025 1 1) 90))

let date_gen =
  QCheck.make
    ~print:(fun (y, m, d) -> Printf.sprintf "%d-%d-%d" y m d)
    QCheck.Gen.(
      int_range 1990 2060 >>= fun y ->
      int_range 1 12 >>= fun m ->
      int_range 1 (Asn1.Time.days_in_month y m) >>= fun d -> return (y, m, d))

let prop_add_days_roundtrip =
  QCheck.Test.make ~name:"add_days/days_between inverse" ~count:300
    (QCheck.pair date_gen QCheck.(int_range (-2000) 2000))
    (fun ((y, m, d), n) ->
      let t = Asn1.Time.make y m d in
      let t' = Asn1.Time.add_days t n in
      Asn1.Time.days_between t t' = n)

let prop_utctime_roundtrip =
  QCheck.Test.make ~name:"utctime roundtrip" ~count:300 date_gen (fun (y, m, d) ->
      (* Map into the UTCTime 1950–2049 window, re-clamping the day for
         the remapped year's month length. *)
      let y = 1970 + (y mod 80) in
      let d = min d (Asn1.Time.days_in_month y m) in
      let t = Asn1.Time.make y m d in
      Asn1.Time.of_utctime (Asn1.Time.to_utctime t) = Ok t)

let test_writer_primitives () =
  check Alcotest.string "short length" "\x05" (Asn1.Writer.definite_length 5);
  check Alcotest.string "long length 200" "\x81\xC8" (Asn1.Writer.definite_length 200);
  check Alcotest.string "long length 65535" "\x82\xFF\xFF" (Asn1.Writer.definite_length 65535);
  check Alcotest.string "bool true" "\x01\x01\xFF" (Asn1.Writer.boolean true);
  check Alcotest.string "null" "\x05\x00" Asn1.Writer.null;
  (* DER SET-OF sorts element encodings; set_unsorted preserves order. *)
  let a = Asn1.Writer.boolean true and b = Asn1.Writer.null in
  check Alcotest.string "set sorts" (Asn1.Writer.set [ a; b ]) (Asn1.Writer.set [ b; a ]);
  check Alcotest.bool "set_unsorted preserves" true
    (Asn1.Writer.set_unsorted [ a; b ] <> Asn1.Writer.set_unsorted [ b; a ]);
  (* Minimal INTEGER encodings. *)
  check Alcotest.string "int 127" "\x02\x01\x7F" (Asn1.Writer.integer_of_int 127);
  check Alcotest.string "int 128 padded" "\x02\x02\x00\x80" (Asn1.Writer.integer_of_int 128);
  check Alcotest.string "int -1" "\x02\x01\xFF" (Asn1.Writer.integer_of_int (-1));
  check Alcotest.string "int -128" "\x02\x01\x80" (Asn1.Writer.integer_of_int (-128));
  check Alcotest.string "bitstring unused" "\x03\x02\x03\xA0"
    (Asn1.Writer.bit_string ~unused:3 "\xA0")

let test_oid_edge_arcs () =
  (* First-arc packing: 2.39 -> byte 119; 0.0 -> byte 0. *)
  check Alcotest.string "2.39" "\x77" (Asn1.Oid.encode [ 2; 39 ]);
  check Alcotest.string "0.0" "\x00" (Asn1.Oid.encode [ 0; 0 ]);
  check (Alcotest.result (Alcotest.list Alcotest.int) Alcotest.string) "2.48 decodes"
    (Ok [ 2; 48 ]) (Asn1.Oid.decode (Asn1.Oid.encode [ 2; 48 ]))

let suite =
  [
    Alcotest.test_case "oid strings" `Quick test_oid_strings;
    Alcotest.test_case "oid der known vector" `Quick test_oid_der;
    Alcotest.test_case "oid edge arcs" `Quick test_oid_edge_arcs;
    Alcotest.test_case "writer primitives" `Quick test_writer_primitives;
    Alcotest.test_case "string type tables" `Quick test_str_types;
    Alcotest.test_case "string type validation" `Quick test_str_validation;
    Alcotest.test_case "der primitives roundtrip" `Quick test_der_primitives;
    Alcotest.test_case "der long lengths" `Quick test_der_long_lengths;
    Alcotest.test_case "der malformed rejected" `Quick test_der_malformed;
    Alcotest.test_case "der lenient lengths" `Quick test_der_lenient_lengths;
    Alcotest.test_case "der depth guard" `Quick test_der_depth_guard;
    Alcotest.test_case "time parsing" `Quick test_time_parsing;
    Alcotest.test_case "time arithmetic" `Quick test_time_arithmetic;
    qtest prop_oid_roundtrip;
    qtest prop_der_roundtrip;
    qtest prop_add_days_roundtrip;
    qtest prop_utctime_roundtrip;
  ]
