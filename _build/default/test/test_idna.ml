(* Tests for the IDNA library: Punycode, DNS syntax, IDNA2008 label
   validation. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- punycode -------------------------------------------------------- *)

(* Sample vectors from RFC 3492 §7.1 plus common IDN labels. *)
let punycode_vectors =
  [
    ("b\xC3\xBCcher", "bcher-kva");
    ("m\xC3\xBCnchen", "mnchen-3ya");
    ("caf\xC3\xA9", "caf-dma");
    (* RFC 3492 (L) Chinese *)
    ("\xE4\xBB\x96\xE4\xBB\xAC\xE4\xB8\xBA\xE4\xBB\x80\xE4\xB9\x88\xE4\xB8\x8D\xE8\xAF\xB4\xE4\xB8\xAD\xE6\x96\x87",
     "ihqwcrb4cv8a8dqg056pqjye");
    (* Mixed case-ish: "3年B組金八先生" *)
    ("3\xE5\xB9\xB4B\xE7\xB5\x84\xE9\x87\x91\xE5\x85\xAB\xE5\x85\x88\xE7\x94\x9F",
     "3B-ww4c5e180e575a65lsy2b");
    (* Pure ASCII keeps a trailing delimiter. *)
    ("abc", "abc-");
  ]

let test_punycode_vectors () =
  List.iter
    (fun (u, p) ->
      check
        (Alcotest.result Alcotest.string Alcotest.string)
        ("encode " ^ p) (Ok p) (Idna.Punycode.encode_utf8 u);
      check
        (Alcotest.result Alcotest.string Alcotest.string)
        ("decode " ^ p) (Ok u) (Idna.Punycode.decode_utf8 p))
    punycode_vectors

let test_punycode_errors () =
  List.iter
    (fun bad ->
      check Alcotest.bool ("reject " ^ bad) true
        (Result.is_error (Idna.Punycode.decode bad)))
    [ "ab_c"; "a!b"; "caf\xC3\xA9" (* non-basic before delimiter *) ]

let scalar_nonascii =
  QCheck.Gen.(
    frequency [ (3, int_range 0xA1 0x2FFF); (1, int_range 0x3040 0xFFFD) ]
    |> map (fun cp -> if Unicode.Cp.is_surrogate cp then 0x4E2D else cp))

let label_gen =
  QCheck.make
    ~print:(fun a -> String.concat ";" (List.map string_of_int (Array.to_list a)))
    QCheck.Gen.(
      array_size (int_range 1 20)
        (frequency [ (3, int_range 0x61 0x7A); (2, scalar_nonascii) ]))

let prop_punycode_roundtrip =
  QCheck.Test.make ~name:"punycode roundtrip" ~count:500 label_gen (fun cps ->
      match Idna.Punycode.encode cps with
      | Ok body -> Idna.Punycode.decode body = Ok cps
      | Error _ -> false)

(* --- DNS syntax ------------------------------------------------------ *)

let test_dns_syntax () =
  let ok = Idna.Dns.is_ldh_name in
  check Alcotest.bool "plain" true (ok "www.example.com");
  check Alcotest.bool "digits" true (ok "3com.example");
  check Alcotest.bool "wildcard" true (ok "*.example.com");
  check Alcotest.bool "trailing root dot" true (ok "example.com.");
  check Alcotest.bool "underscore" false (ok "foo_bar.example.com");
  check Alcotest.bool "space" false (ok "foo bar.example.com");
  check Alcotest.bool "leading hyphen" false (ok "-x.example.com");
  check Alcotest.bool "empty label" false (ok "a..b");
  check Alcotest.bool "empty" false (ok "");
  check Alcotest.bool "long label" false (ok (String.make 64 'a' ^ ".com"));
  check Alcotest.bool "63-char label ok" true (ok (String.make 63 'a' ^ ".com"));
  check Alcotest.bool "name too long" false
    (ok (String.concat "." (List.init 30 (fun _ -> String.make 9 'a'))))

let test_alabel_detection () =
  check Alcotest.bool "xn--" true (Idna.Dns.is_a_label_candidate "xn--bcher-kva");
  check Alcotest.bool "XN-- case" true (Idna.Dns.is_a_label_candidate "XN--BCHER-KVA");
  check Alcotest.bool "plain" false (Idna.Dns.is_a_label_candidate "bcher");
  check Alcotest.bool "r-ldh non-xn" true (Idna.Dns.is_reserved_ldh_label "ab--cd");
  check Alcotest.bool "short" false (Idna.Dns.is_a_label_candidate "xn-")

(* --- IDNA ------------------------------------------------------------ *)

let test_property () =
  check Alcotest.bool "lowercase pvalid" true (Idna.property (Char.code 'a') = Idna.Pvalid);
  check Alcotest.bool "digit pvalid" true (Idna.property (Char.code '7') = Idna.Pvalid);
  check Alcotest.bool "uppercase mapped" true
    (Idna.property (Char.code 'A') = Idna.Mapped (Char.code 'a'));
  check Alcotest.bool "space disallowed" true (Idna.property 0x20 = Idna.Disallowed);
  check Alcotest.bool "zwsp disallowed" true (Idna.property 0x200B = Idna.Disallowed);
  check Alcotest.bool "soft hyphen disallowed" true (Idna.property 0xAD = Idna.Disallowed);
  check Alcotest.bool "multiply sign disallowed" true (Idna.property 0xD7 = Idna.Disallowed);
  check Alcotest.bool "u-umlaut pvalid" true (Idna.property 0xFC = Idna.Pvalid);
  check Alcotest.bool "cjk pvalid" true (Idna.property 0x4E2D = Idna.Pvalid);
  check Alcotest.bool "emoji disallowed" true (Idna.property 0x1F600 = Idna.Disallowed);
  check Alcotest.bool "surrogate disallowed" true (Idna.property 0xD800 = Idna.Disallowed)

let test_to_ascii () =
  check Alcotest.bool "bucher" true
    (Idna.to_ascii "b\xC3\xBCcher.example.com" = Ok "xn--bcher-kva.example.com");
  check Alcotest.bool "uppercase mapped" true
    (Idna.to_ascii "BUCHER.EXAMPLE.COM" = Ok "bucher.example.com");
  check Alcotest.bool "zwsp rejected" true
    (Result.is_error (Idna.to_ascii "pay\xE2\x80\x8Bpal.com"));
  check Alcotest.bool "bidi mix rejected" true
    (Result.is_error (Idna.to_ascii "ab\xD7\x90cd.com"))

let test_to_unicode () =
  check Alcotest.string "roundtrip display" "b\xC3\xBCcher.example.com"
    (Idna.to_unicode "xn--bcher-kva.example.com");
  (* Undecodable labels are preserved. *)
  check Alcotest.string "kept" "xn--ab_c.example.com" (Idna.to_unicode "xn--ab_c.example.com")

let test_alabel_issues () =
  let has_issue pred l = List.exists pred (Idna.alabel_issues l) in
  check Alcotest.bool "valid label clean" true (Idna.alabel_issues "xn--bcher-kva" = []);
  check Alcotest.bool "malformed" true
    (has_issue (function Idna.Malformed_punycode _ -> true | _ -> false) "xn--ab_c");
  check Alcotest.bool "empty body malformed" true
    (has_issue (function Idna.Malformed_punycode _ -> true | _ -> false) "xn--");
  check Alcotest.bool "lrm unpermitted" true
    (has_issue (function Idna.Unpermitted_char 0x200E -> true | _ -> false)
       "xn--www-hn0a");
  check Alcotest.bool "non-nfc" true
    (has_issue (function Idna.Not_nfc -> true | _ -> false) "xn--ecole-6ed")

let test_domain_issues () =
  check Alcotest.bool "clean idn" true
    (Idna.domain_issues "xn--bcher-kva.example.com" = []);
  check Alcotest.bool "clean ascii" true (Idna.domain_issues "www.example.com" = []);
  check Alcotest.bool "deceptive flagged" true
    (Idna.domain_issues "xn--www-hn0a.example.com" <> [])

let test_bidi_rule () =
  let ok s = Idna.ulabel_issues (Unicode.Codec.cps_of_utf8 s) in
  let has_bidi l = List.mem Idna.Bidi_violation l in
  (* Pure Hebrew label: fine. *)
  check Alcotest.bool "hebrew ok" false
    (has_bidi (ok "\xD7\xA9\xD7\x9C\xD7\x95\xD7\x9D" (* שלום *)));
  (* Pure Arabic label: fine. *)
  check Alcotest.bool "arabic ok" false
    (has_bidi (ok "\xD8\xB4\xD8\xA8\xD9\x83\xD8\xA9" (* شبكة *)));
  (* Latin + Hebrew mixed: condition 2/5 violation. *)
  check Alcotest.bool "latin-hebrew mix" true
    (has_bidi (ok "ab\xD7\x90cd"));
  (* RTL label ending in a Latin letter. *)
  check Alcotest.bool "rtl ending latin" true
    (has_bidi (ok "\xD7\x90\xD7\x91x"));
  (* Arabic label mixing European and Arabic digits (condition 4). *)
  check Alcotest.bool "en+an mix" true
    (has_bidi (ok "\xD8\xB41\xD9\xA1"))

let test_is_idn () =
  check Alcotest.bool "alabel" true (Idna.is_idn "xn--bcher-kva.de");
  check Alcotest.bool "raw unicode" true (Idna.is_idn "b\xC3\xBCcher.de");
  check Alcotest.bool "ascii" false (Idna.is_idn "example.com")

let prop_to_ascii_ldh =
  QCheck.Test.make ~name:"to_ascii output is LDH or error" ~count:300 label_gen
    (fun cps ->
      let label = Unicode.Codec.utf8_of_cps cps in
      match Idna.to_ascii (label ^ ".example") with
      | Ok ascii -> String.for_all (fun c -> Char.code c < 0x80) ascii
      | Error _ -> true)

let suite =
  [
    Alcotest.test_case "punycode vectors" `Quick test_punycode_vectors;
    Alcotest.test_case "punycode errors" `Quick test_punycode_errors;
    Alcotest.test_case "dns syntax" `Quick test_dns_syntax;
    Alcotest.test_case "a-label detection" `Quick test_alabel_detection;
    Alcotest.test_case "derived property" `Quick test_property;
    Alcotest.test_case "to_ascii" `Quick test_to_ascii;
    Alcotest.test_case "to_unicode" `Quick test_to_unicode;
    Alcotest.test_case "a-label issues" `Quick test_alabel_issues;
    Alcotest.test_case "domain issues" `Quick test_domain_issues;
    Alcotest.test_case "bidi rule (rfc 5893)" `Quick test_bidi_rule;
    Alcotest.test_case "is_idn" `Quick test_is_idn;
    qtest prop_punycode_roundtrip;
    qtest prop_to_ascii_ldh;
  ]
