test/test_tlsparsers.ml: Alcotest Array Asn1 List Tlsparsers Unicode X509
