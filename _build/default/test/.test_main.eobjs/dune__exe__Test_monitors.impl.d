test/test_monitors.ml: Alcotest Asn1 Ctlog List Monitors X509
