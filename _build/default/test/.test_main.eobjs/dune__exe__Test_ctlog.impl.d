test/test_ctlog.ml: Alcotest Asn1 Char Ctlog Lint List Printf QCheck QCheck_alcotest String Ucrypto X509
