test/test_crl_chain.ml: Alcotest Asn1 Buffer Ctlog Format Idna Lint List String Tlsparsers Unicert X509
