test/test_x509.ml: Alcotest Array Asn1 Bytes Char Format List Option QCheck QCheck_alcotest Result String Ucrypto Unicode X509
