test/test_ucrypto.ml: Alcotest Array Bytes Char Format Fun List Printf QCheck QCheck_alcotest String Ucrypto
