test/test_idna.ml: Alcotest Array Char Idna List QCheck QCheck_alcotest Result String Unicode
