test/test_misc.ml: Alcotest Asn1 Ctlog Idna Lint List Monitors Result String Unicert Unicode X509
