test/test_asn1.ml: Alcotest Asn1 Char Format List Option Printf QCheck QCheck_alcotest Result String Unicode
