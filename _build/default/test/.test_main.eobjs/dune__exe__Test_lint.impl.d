test/test_lint.ml: Alcotest Asn1 Ctlog Lint List String Ucrypto X509
