test/test_hostname_rules.ml: Alcotest Asn1 Lint List Middlebox Result X509
