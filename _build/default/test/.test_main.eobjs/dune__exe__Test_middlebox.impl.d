test/test_middlebox.ml: Alcotest Asn1 List Middlebox Printf Result Ucrypto X509
