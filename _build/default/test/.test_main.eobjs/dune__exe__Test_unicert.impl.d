test/test_unicert.ml: Alcotest Asn1 Buffer Format Hashtbl List String Unicert X509
