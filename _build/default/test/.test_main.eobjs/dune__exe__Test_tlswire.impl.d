test/test_tlswire.ml: Alcotest Asn1 List Middlebox QCheck QCheck_alcotest Result Tlswire Ucrypto X509
