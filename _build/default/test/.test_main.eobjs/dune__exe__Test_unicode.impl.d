test/test_unicode.ml: Alcotest Array Char List Printf QCheck QCheck_alcotest Result String Unicode
