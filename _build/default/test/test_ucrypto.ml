(* Tests for the crypto substrate: SHA-256, HMAC, PRNG, bignum, RSA. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_sha256_vectors () =
  check Alcotest.string "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Ucrypto.Sha256.hex "");
  check Alcotest.string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Ucrypto.Sha256.hex "abc");
  check Alcotest.string "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Ucrypto.Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  (* exact block boundary *)
  check Alcotest.string "64 bytes"
    (Ucrypto.Sha256.hex (String.make 64 'a'))
    (Ucrypto.Sha256.hex (String.make 64 'a'));
  check Alcotest.int "digest length" 32 (String.length (Ucrypto.Sha256.digest "x"))

let hex s =
  String.concat ""
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let test_hmac_vectors () =
  (* RFC 4231 test cases 1 and 2. *)
  check Alcotest.string "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Ucrypto.Sha256.hmac ~key:(String.make 20 '\x0b') "Hi There"));
  check Alcotest.string "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Ucrypto.Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"));
  (* Long key forces the hashing branch. *)
  let long_key = String.make 131 '\xaa' in
  check Alcotest.string "tc7 (long key)"
    "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
    (hex
       (Ucrypto.Sha256.hmac ~key:long_key
          "This is a test using a larger than block-size key and a larger than \
           block-size data. The key needs to be hashed before being used by the \
           HMAC algorithm."))

let test_prng_determinism () =
  let a = Ucrypto.Prng.create 42 and b = Ucrypto.Prng.create 42 in
  for _ = 1 to 50 do
    check Alcotest.int "same stream" (Ucrypto.Prng.int a 1000) (Ucrypto.Prng.int b 1000)
  done;
  let c = Ucrypto.Prng.create 43 in
  let same = ref 0 in
  for _ = 1 to 50 do
    let x = Ucrypto.Prng.int a 1000000 and y = Ucrypto.Prng.int c 1000000 in
    if x = y then incr same
  done;
  check Alcotest.bool "different seeds diverge" true (!same < 5)

let test_prng_ranges () =
  let g = Ucrypto.Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Ucrypto.Prng.int g 10 in
    if v < 0 || v >= 10 then Alcotest.failf "out of range: %d" v;
    let f = Ucrypto.Prng.float g in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done;
  let w = Ucrypto.Prng.weighted g [ ("a", 1.0); ("b", 0.0) ] in
  check Alcotest.string "zero weight never picked" "a" w

let bn = Ucrypto.Bignum.of_int
let bn_testable = Alcotest.testable (fun ppf v -> Format.fprintf ppf "%s" (Ucrypto.Bignum.to_hex v)) Ucrypto.Bignum.equal

let test_bignum_basic () =
  let open Ucrypto.Bignum in
  check bn_testable "add" (bn 500) (add (bn 123) (bn 377));
  check bn_testable "sub" (bn 123) (sub (bn 500) (bn 377));
  check bn_testable "mul" (bn 56088) (mul (bn 123) (bn 456));
  check Alcotest.int "bit length" 10 (bit_length (bn 1023));
  check Alcotest.int "bit length 1024" 11 (bit_length (bn 1024));
  check bn_testable "shift left" (bn 40) (shift_left (bn 5) 3);
  check bn_testable "shift right" (bn 5) (shift_right (bn 40) 3);
  check Alcotest.bool "sub negative raises" true
    (try ignore (sub (bn 1) (bn 2)); false with Invalid_argument _ -> true)

let test_bignum_bytes () =
  let open Ucrypto.Bignum in
  check Alcotest.string "to bytes" "\x01\x00" (to_bytes_be (bn 256));
  check bn_testable "of bytes" (bn 65535) (of_bytes_be "\xFF\xFF");
  check bn_testable "hex" (bn 0xDEADBEEF) (of_hex "deadbeef")

let small_nat = QCheck.map (fun n -> abs n) QCheck.int

let prop_divmod =
  QCheck.Test.make ~name:"divmod law" ~count:500
    (QCheck.pair small_nat QCheck.(int_range 1 1_000_000))
    (fun (a, b) ->
      let open Ucrypto.Bignum in
      let a = bn a and b = bn b in
      let q, r = divmod a b in
      equal (add (mul q b) r) a && compare r b < 0)

let prop_mod_pow =
  QCheck.Test.make ~name:"mod_pow vs naive" ~count:100
    QCheck.(triple (int_range 0 1000) (int_range 0 40) (int_range 2 1000))
    (fun (b, e, m) ->
      let naive = ref 1 in
      for _ = 1 to e do
        naive := !naive * b mod m
      done;
      let got =
        Ucrypto.Bignum.mod_pow ~base:(bn b) ~exp:(bn e) ~modulus:(bn m)
      in
      Ucrypto.Bignum.to_int_opt got = Some !naive)

let prop_mod_inverse =
  QCheck.Test.make ~name:"mod_inverse" ~count:200
    QCheck.(pair (int_range 1 10000) (int_range 2 10000))
    (fun (a, m) ->
      match Ucrypto.Bignum.mod_inverse (bn a) (bn m) with
      | None ->
          (* gcd must be > 1 *)
          Ucrypto.Bignum.to_int_opt (Ucrypto.Bignum.gcd (bn a) (bn m)) <> Some 1
      | Some inv ->
          Ucrypto.Bignum.to_int_opt
            (Ucrypto.Bignum.rem (Ucrypto.Bignum.mul (bn a) inv) (bn m))
          = Some 1)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bignum bytes roundtrip" ~count:300 small_nat (fun n ->
      Ucrypto.Bignum.to_int_opt (Ucrypto.Bignum.of_bytes_be (Ucrypto.Bignum.to_bytes_be (bn n)))
      = Some n)

let test_primality () =
  let g = Ucrypto.Prng.create 11 in
  List.iter
    (fun p ->
      check Alcotest.bool (string_of_int p) true
        (Ucrypto.Bignum.is_probable_prime g (bn p)))
    [ 2; 3; 5; 7; 97; 101; 7919; 104729 ];
  List.iter
    (fun n ->
      check Alcotest.bool (string_of_int n) false
        (Ucrypto.Bignum.is_probable_prime g (bn n)))
    [ 1; 4; 100; 561 (* Carmichael *); 7917; 104730 ]

let test_rsa () =
  let g = Ucrypto.Prng.create 5 in
  let key = Ucrypto.Rsa.generate ~bits:192 g in
  let s = Ucrypto.Rsa.sign key "the quick brown fox" in
  check Alcotest.bool "verifies" true
    (Ucrypto.Rsa.verify key.Ucrypto.Rsa.public ~msg:"the quick brown fox" ~signature:s);
  check Alcotest.bool "tampered message" false
    (Ucrypto.Rsa.verify key.Ucrypto.Rsa.public ~msg:"the quick brown fix" ~signature:s);
  let s' = Bytes.of_string s in
  Bytes.set s' 0 (Char.chr (Char.code (Bytes.get s' 0) lxor 1));
  check Alcotest.bool "tampered signature" false
    (Ucrypto.Rsa.verify key.Ucrypto.Rsa.public ~msg:"the quick brown fox"
       ~signature:(Bytes.to_string s'));
  (* another key does not verify *)
  let other = Ucrypto.Rsa.generate ~bits:192 g in
  check Alcotest.bool "wrong key" false
    (Ucrypto.Rsa.verify other.Ucrypto.Rsa.public ~msg:"the quick brown fox" ~signature:s)

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"shift left/right inverse" ~count:300
    QCheck.(pair small_nat (int_range 0 200))
    (fun (n, k) ->
      let v = bn n in
      Ucrypto.Bignum.equal (Ucrypto.Bignum.shift_right (Ucrypto.Bignum.shift_left v k) k) v)

let prop_gcd =
  QCheck.Test.make ~name:"gcd divides both" ~count:300
    QCheck.(pair (int_range 1 1000000) (int_range 1 1000000))
    (fun (a, b) ->
      let g = Ucrypto.Bignum.gcd (bn a) (bn b) in
      match Ucrypto.Bignum.to_int_opt g with
      | Some g -> g > 0 && a mod g = 0 && b mod g = 0
      | None -> false)

let test_prng_shuffle () =
  let g = Ucrypto.Prng.create 55 in
  let arr = Array.init 50 Fun.id in
  Ucrypto.Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 Fun.id) sorted;
  check Alcotest.bool "actually shuffled" true (arr <> Array.init 50 Fun.id)

let suite =
  [
    Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "hmac-sha256 vectors" `Quick test_hmac_vectors;
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "bignum basics" `Quick test_bignum_basic;
    Alcotest.test_case "bignum bytes" `Quick test_bignum_bytes;
    Alcotest.test_case "miller-rabin" `Quick test_primality;
    Alcotest.test_case "rsa sign/verify" `Slow test_rsa;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle;
    qtest prop_shift_roundtrip;
    qtest prop_gcd;
    qtest prop_divmod;
    qtest prop_mod_pow;
    qtest prop_mod_inverse;
    qtest prop_bytes_roundtrip;
  ]
