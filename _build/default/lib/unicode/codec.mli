(** Character encoding codecs.

    Implements the five decoding methods the paper infers in TLS
    libraries (§3.2): ASCII, ISO-8859-1, UTF-8, UCS-2 and UTF-16, plus
    the UCS-4 encoding needed for ASN.1 [UniversalString].  Decoders are
    parameterized by an error policy so the "modified decoding"
    behaviours of real libraries (replacement characters, hex escapes)
    can be modelled faithfully. *)

type encoding =
  | Ascii        (** 7-bit US-ASCII; bytes above [0x7F] are errors. *)
  | Iso8859_1    (** Latin-1: each byte maps to the same code point. *)
  | Utf8         (** UTF-8 with strict well-formedness checks. *)
  | Ucs2         (** Big-endian 2-byte units, no surrogate pairing. *)
  | Utf16be      (** Big-endian UTF-16 with surrogate pairing. *)
  | Ucs4         (** Big-endian 4-byte units (ISO 10646 UCS-4). *)

val encoding_name : encoding -> string
(** [encoding_name e] is a human-readable name, e.g. ["ISO-8859-1"]. *)

type policy =
  | Strict                (** Fail on the first undecodable sequence. *)
  | Replace of Cp.t       (** Substitute a replacement code point. *)
  | Skip                  (** Drop undecodable bytes silently. *)
  | Escape_hex            (** Expand bad bytes to literal [\xNN] text. *)

type error = { offset : int; message : string }
(** A decoding or encoding failure: byte [offset] into the input and a
    diagnostic [message]. *)

val pp_error : Format.formatter -> error -> unit

val decode : ?policy:policy -> encoding -> string -> (Cp.t array, error) result
(** [decode ~policy enc bytes] decodes [bytes] according to [enc].
    Under [Strict] (the default) the first malformed sequence yields
    [Error]; other policies always succeed. *)

val decode_exn : ?policy:policy -> encoding -> string -> Cp.t array
(** Like {!decode} but raises [Invalid_argument] on error. *)

val encode : encoding -> Cp.t array -> (string, error) result
(** [encode enc cps] serializes [cps]; fails on code points that the
    encoding cannot represent (e.g. non-ASCII under [Ascii], non-BMP
    under [Ucs2]). *)

val encode_exn : encoding -> Cp.t array -> string
(** Like {!encode} but raises [Invalid_argument] on error. *)

val utf8_of_cps : Cp.t array -> string
(** [utf8_of_cps cps] encodes as UTF-8; surrogates and out-of-range
    values are encoded as U+FFFD. *)

val cps_of_utf8 : string -> Cp.t array
(** [cps_of_utf8 s] decodes UTF-8 replacing malformed input with
    U+FFFD (never fails). *)

val cps_of_latin1 : string -> Cp.t array
(** [cps_of_latin1 s] maps every byte to its code point. *)

val well_formed_utf8 : string -> bool
(** [well_formed_utf8 s] checks strict UTF-8 well-formedness. *)

val cp_list : string -> Cp.t list
(** [cp_list s] is {!cps_of_utf8} as a list, convenient in tests. *)
