(** Visually confusable characters (homographs).

    Browsers and CT monitors in the paper fail to detect Cyrillic/Greek
    lookalikes in certificate fields (Appendix F.1 [G1.2], §6.1 [P1.3]).
    This module implements a skeleton transform in the spirit of UTS #39:
    each code point maps to its primary ASCII lookalike, so two strings
    are confusable iff their skeletons are equal. *)

val lookalike : Cp.t -> Cp.t option
(** [lookalike cp] is the ASCII (or canonical) code point [cp] visually
    resembles, if it is a known confusable. *)

val skeleton : Cp.t array -> Cp.t array
(** [skeleton cps] maps every confusable to its lookalike, lowercases
    ASCII, and drops invisible characters, yielding a comparison key. *)

val utf8_skeleton : string -> string
(** [utf8_skeleton s] is {!skeleton} over a UTF-8 string. *)

val confusable : string -> string -> bool
(** [confusable a b] is [true] iff the two UTF-8 strings have equal
    skeletons but different NFC forms — i.e. they look the same without
    being canonically the same. *)

val equivalent_substitution : Cp.t -> Cp.t option
(** [equivalent_substitution cp] models the browser character
    substitution policy the paper criticizes: e.g. the Greek question
    mark U+037E is replaced by a semicolon U+003B rather than the
    visually faithful Latin question mark (Table 14, [G1.2]). *)
