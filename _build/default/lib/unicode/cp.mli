(** Unicode code points represented as plain integers.

    All modules of this library manipulate code points as [int] values in
    the range [0x0000]–[0x10FFFF].  Using [int] instead of [Uchar.t]
    deliberately allows representing *invalid* scalar values (surrogates,
    out-of-range values) that arise when modelling broken decoders, which
    is the whole point of this reproduction. *)

type t = int
(** A code point.  Valid Unicode code points lie in [0 .. 0x10FFFF]. *)

val min_value : t
(** [min_value] is [0x0000]. *)

val max_value : t
(** [max_value] is [0x10FFFF], the last Unicode code point. *)

val is_valid : t -> bool
(** [is_valid cp] is [true] iff [cp] is in [0 .. 0x10FFFF]. *)

val is_surrogate : t -> bool
(** [is_surrogate cp] is [true] iff [cp] is in the surrogate range
    [0xD800 .. 0xDFFF]. *)

val is_scalar : t -> bool
(** [is_scalar cp] is [true] iff [cp] is a Unicode scalar value: valid
    and not a surrogate. *)

val is_ascii : t -> bool
(** [is_ascii cp] is [true] iff [cp <= 0x7F]. *)

val is_printable_ascii : t -> bool
(** [is_printable_ascii cp] is [true] iff [cp] is in the printable ASCII
    range [0x20 .. 0x7E] used by the paper to delimit Unicerts. *)

val is_bmp : t -> bool
(** [is_bmp cp] is [true] iff [cp <= 0xFFFF] (Basic Multilingual Plane). *)

val to_string : t -> string
(** [to_string cp] renders the code point in the conventional [U+XXXX]
    notation (at least four hex digits). *)

val of_char : char -> t
(** [of_char c] is the code point of the latin-1 character [c]. *)
