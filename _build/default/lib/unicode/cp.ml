type t = int

let min_value = 0x0000
let max_value = 0x10FFFF
let is_valid cp = cp >= min_value && cp <= max_value
let is_surrogate cp = cp >= 0xD800 && cp <= 0xDFFF
let is_scalar cp = is_valid cp && not (is_surrogate cp)
let is_ascii cp = cp >= 0 && cp <= 0x7F
let is_printable_ascii cp = cp >= 0x20 && cp <= 0x7E
let is_bmp cp = cp >= 0 && cp <= 0xFFFF
let to_string cp = Printf.sprintf "U+%04X" cp
let of_char c = Char.code c
