let hex_escape_nonprintable bytes =
  let buf = Buffer.create (String.length bytes) in
  String.iter
    (fun c ->
      let b = Char.code c in
      if b >= 0x20 && b <= 0x7E then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "\\x%02X" b))
    bytes;
  Buffer.contents buf

let url_encode_controls s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      let b = Char.code c in
      if b < 0x20 || b = 0x7F then Buffer.add_string buf (Printf.sprintf "%%%02X" b)
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let control_pictures cps =
  Array.map
    (fun cp ->
      if Props.is_c0_control cp then 0x2400 + cp
      else if Props.is_del cp then 0x2421
      else cp)
    cps

let strip_invisible cps =
  Array.of_list (List.filter (fun cp -> not (Props.is_invisible cp)) (Array.to_list cps))

let visible_utf8 s = Codec.utf8_of_cps (strip_invisible (Codec.cps_of_utf8 s))
