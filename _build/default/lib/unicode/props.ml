let is_c0_control cp = cp >= 0x00 && cp <= 0x1F
let is_del cp = cp = 0x7F
let is_c1_control cp = cp >= 0x80 && cp <= 0x9F
let is_control cp = is_c0_control cp || is_del cp || is_c1_control cp

let is_layout_control cp =
  (cp >= 0x200B && cp <= 0x200F)
  || (cp >= 0x202A && cp <= 0x202E)
  || (cp >= 0x2060 && cp <= 0x2064)
  || (cp >= 0x2066 && cp <= 0x206F)
  || cp = 0x2028 || cp = 0x2029

let is_bidi_control cp =
  cp = 0x061C || cp = 0x200E || cp = 0x200F
  || (cp >= 0x202A && cp <= 0x202E)
  || (cp >= 0x2066 && cp <= 0x2069)

let is_format cp =
  cp = 0x00AD
  || (cp >= 0x0600 && cp <= 0x0605)
  || cp = 0x061C || cp = 0x06DD || cp = 0x070F || cp = 0x08E2
  || (cp >= 0x200B && cp <= 0x200F)
  || (cp >= 0x202A && cp <= 0x202E)
  || (cp >= 0x2060 && cp <= 0x2064)
  || (cp >= 0x2066 && cp <= 0x206F)
  || cp = 0xFEFF
  || (cp >= 0xFFF9 && cp <= 0xFFFB)
  || cp = 0x110BD
  || (cp >= 0x1BCA0 && cp <= 0x1BCA3)
  || (cp >= 0x1D173 && cp <= 0x1D17A)
  || cp = 0xE0001
  || (cp >= 0xE0020 && cp <= 0xE007F)

let is_whitespace cp =
  (cp >= 0x0009 && cp <= 0x000D)
  || cp = 0x0020 || cp = 0x0085 || cp = 0x00A0 || cp = 0x1680
  || (cp >= 0x2000 && cp <= 0x200A)
  || cp = 0x2028 || cp = 0x2029 || cp = 0x202F || cp = 0x205F || cp = 0x3000

let is_nonascii_whitespace cp = is_whitespace cp && cp > 0x20
let is_invisible cp = is_layout_control cp || is_nonascii_whitespace cp

let is_ascii_upper cp = cp >= Char.code 'A' && cp <= Char.code 'Z'
let is_ascii_lower cp = cp >= Char.code 'a' && cp <= Char.code 'z'
let is_ascii_digit cp = cp >= Char.code '0' && cp <= Char.code '9'
let is_ascii_letter cp = is_ascii_upper cp || is_ascii_lower cp
let ascii_lowercase cp = if is_ascii_upper cp then cp + 32 else cp

let is_printable_string_char cp =
  is_ascii_letter cp || is_ascii_digit cp
  ||
  match cp with
  | 0x20 (* space *) | 0x27 (* ' *) | 0x28 (* ( *) | 0x29 (* ) *)
  | 0x2B (* + *) | 0x2C (* , *) | 0x2D (* - *) | 0x2E (* . *)
  | 0x2F (* / *) | 0x3A (* : *) | 0x3D (* = *) | 0x3F (* ? *) -> true
  | _ -> false

let is_ia5_char cp = cp >= 0x00 && cp <= 0x7F
let is_visible_string_char cp = cp >= 0x20 && cp <= 0x7E
let is_numeric_string_char cp = is_ascii_digit cp || cp = 0x20

let is_teletex_char cp =
  is_visible_string_char cp || (cp >= 0xA0 && cp <= 0xFF)

let is_ldh cp = is_ascii_letter cp || is_ascii_digit cp || cp = Char.code '-'
let is_dns_name_char cp = is_ldh cp || cp = Char.code '.'

let classify cp =
  if is_c0_control cp then "C0"
  else if is_del cp then "DEL"
  else if is_c1_control cp then "C1"
  else if is_layout_control cp then "layout"
  else if is_format cp then "format"
  else if is_whitespace cp && cp <> 0x20 then "space"
  else if Cp.is_printable_ascii cp then "printable-ascii"
  else if cp <= 0xFF then "latin1"
  else if Cp.is_bmp cp then "bmp"
  else "astral"
