(** Generic escaping and display helpers.

    The DN-specific escaping rules of RFC 1779/2253/4514 live in the
    [x509] library; this module provides the byte- and code-point-level
    primitives shared by the parser models and the browser rendering
    models. *)

val hex_escape_nonprintable : string -> string
(** [hex_escape_nonprintable bytes] replaces every byte outside
    printable ASCII with a literal [\xNN] escape — OpenSSL's
    modified-decoding presentation. *)

val url_encode_controls : string -> string
(** [url_encode_controls s] percent-encodes C0 controls and DEL in a
    UTF-8 string — the URL-style indicator some browsers use. *)

val control_pictures : Cp.t array -> Cp.t array
(** [control_pictures cps] replaces C0 controls with the corresponding
    Control Pictures block symbols (U+2400 + cp) and DEL with U+2421 —
    the visual-indicator rendering of certificate viewers. *)

val strip_invisible : Cp.t array -> Cp.t array
(** [strip_invisible cps] drops invisible layout controls; what remains
    is what a user actually sees. *)

val visible_utf8 : string -> string
(** [visible_utf8 s] is the visually rendered form of a UTF-8 string:
    invisible layout characters removed (i.e. what the user perceives,
    used by the spoofing experiments). *)
