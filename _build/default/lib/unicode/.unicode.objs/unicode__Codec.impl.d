lib/unicode/codec.ml: Array Buffer Char Cp Format List Printf String
