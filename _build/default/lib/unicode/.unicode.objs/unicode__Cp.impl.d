lib/unicode/cp.ml: Char Printf
