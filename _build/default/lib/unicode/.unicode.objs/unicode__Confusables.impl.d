lib/unicode/confusables.ml: Array Char Codec Hashtbl List Normalize Props
