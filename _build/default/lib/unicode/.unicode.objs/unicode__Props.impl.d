lib/unicode/props.ml: Char Cp
