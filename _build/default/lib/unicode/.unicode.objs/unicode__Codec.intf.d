lib/unicode/codec.mli: Cp Format
