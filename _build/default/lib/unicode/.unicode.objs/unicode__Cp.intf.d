lib/unicode/cp.mli:
