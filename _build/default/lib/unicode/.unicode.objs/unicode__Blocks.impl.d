lib/unicode/blocks.ml: Array Cp List
