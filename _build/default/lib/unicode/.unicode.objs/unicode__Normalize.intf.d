lib/unicode/normalize.mli: Cp
