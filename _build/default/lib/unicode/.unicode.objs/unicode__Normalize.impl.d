lib/unicode/normalize.ml: Array Codec Hashtbl List
