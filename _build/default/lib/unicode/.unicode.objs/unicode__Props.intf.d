lib/unicode/props.mli: Cp
