lib/unicode/escape.mli: Cp
