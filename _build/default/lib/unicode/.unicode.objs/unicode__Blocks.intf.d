lib/unicode/blocks.mli: Cp
