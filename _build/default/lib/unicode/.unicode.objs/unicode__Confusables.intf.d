lib/unicode/confusables.mli: Cp
