lib/unicode/escape.ml: Array Buffer Char Codec List Printf Props String
