type encoding = Ascii | Iso8859_1 | Utf8 | Ucs2 | Utf16be | Ucs4

let encoding_name = function
  | Ascii -> "ASCII"
  | Iso8859_1 -> "ISO-8859-1"
  | Utf8 -> "UTF-8"
  | Ucs2 -> "UCS-2"
  | Utf16be -> "UTF-16"
  | Ucs4 -> "UCS-4"

type policy = Strict | Replace of Cp.t | Skip | Escape_hex

type error = { offset : int; message : string }

let pp_error ppf e = Format.fprintf ppf "offset %d: %s" e.offset e.message

exception Decode_error of error

(* Decoders append code points to a growable int buffer; on a malformed
   sequence they consult the policy via [bad], which receives the
   offending byte offset, a message, and the raw bytes consumed. *)
module Ibuf = struct
  type t = { mutable data : int array; mutable len : int }

  let create n = { data = Array.make (max n 16) 0; len = 0 }

  let push b cp =
    if b.len = Array.length b.data then begin
      let data = Array.make (2 * b.len) 0 in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
    b.data.(b.len) <- cp;
    b.len <- b.len + 1

  let contents b = Array.sub b.data 0 b.len
end

let bad policy out offset message raw_bytes =
  match policy with
  | Strict -> raise (Decode_error { offset; message })
  | Replace cp -> Ibuf.push out cp
  | Skip -> ()
  | Escape_hex ->
      let escape byte =
        Ibuf.push out (Char.code '\\');
        Ibuf.push out (Char.code 'x');
        let hex = Printf.sprintf "%02X" byte in
        Ibuf.push out (Char.code hex.[0]);
        Ibuf.push out (Char.code hex.[1])
      in
      List.iter escape raw_bytes

let decode_ascii policy s =
  let out = Ibuf.create (String.length s) in
  String.iteri
    (fun i c ->
      let b = Char.code c in
      if b <= 0x7F then Ibuf.push out b
      else bad policy out i (Printf.sprintf "byte 0x%02X is not ASCII" b) [ b ])
    s;
  Ibuf.contents out

let decode_latin1 s = Array.init (String.length s) (fun i -> Char.code s.[i])

(* Strict UTF-8 per RFC 3629: shortest form only, no surrogates, max
   U+10FFFF. *)
let decode_utf8 policy s =
  let n = String.length s in
  let out = Ibuf.create n in
  let byte i = Char.code s.[i] in
  let is_cont i = i < n && byte i land 0xC0 = 0x80 in
  let i = ref 0 in
  while !i < n do
    let b0 = byte !i in
    if b0 <= 0x7F then begin
      Ibuf.push out b0;
      incr i
    end
    else if b0 land 0xE0 = 0xC0 then
      if b0 < 0xC2 then begin
        bad policy out !i "overlong 2-byte sequence" [ b0 ];
        incr i
      end
      else if is_cont (!i + 1) then begin
        Ibuf.push out (((b0 land 0x1F) lsl 6) lor (byte (!i + 1) land 0x3F));
        i := !i + 2
      end
      else begin
        bad policy out !i "truncated 2-byte sequence" [ b0 ];
        incr i
      end
    else if b0 land 0xF0 = 0xE0 then
      if is_cont (!i + 1) && is_cont (!i + 2) then begin
        let cp =
          ((b0 land 0x0F) lsl 12)
          lor ((byte (!i + 1) land 0x3F) lsl 6)
          lor (byte (!i + 2) land 0x3F)
        in
        if cp < 0x800 then begin
          bad policy out !i "overlong 3-byte sequence" [ b0; byte (!i + 1); byte (!i + 2) ];
          i := !i + 3
        end
        else if Cp.is_surrogate cp then begin
          bad policy out !i "surrogate code point in UTF-8" [ b0; byte (!i + 1); byte (!i + 2) ];
          i := !i + 3
        end
        else begin
          Ibuf.push out cp;
          i := !i + 3
        end
      end
      else begin
        bad policy out !i "truncated 3-byte sequence" [ b0 ];
        incr i
      end
    else if b0 land 0xF8 = 0xF0 then
      if is_cont (!i + 1) && is_cont (!i + 2) && is_cont (!i + 3) then begin
        let cp =
          ((b0 land 0x07) lsl 18)
          lor ((byte (!i + 1) land 0x3F) lsl 12)
          lor ((byte (!i + 2) land 0x3F) lsl 6)
          lor (byte (!i + 3) land 0x3F)
        in
        if cp < 0x10000 then begin
          bad policy out !i "overlong 4-byte sequence"
            [ b0; byte (!i + 1); byte (!i + 2); byte (!i + 3) ];
          i := !i + 4
        end
        else if cp > Cp.max_value then begin
          bad policy out !i "code point above U+10FFFF"
            [ b0; byte (!i + 1); byte (!i + 2); byte (!i + 3) ];
          i := !i + 4
        end
        else begin
          Ibuf.push out cp;
          i := !i + 4
        end
      end
      else begin
        bad policy out !i "truncated 4-byte sequence" [ b0 ];
        incr i
      end
    else begin
      bad policy out !i (Printf.sprintf "invalid UTF-8 lead byte 0x%02X" b0) [ b0 ];
      incr i
    end
  done;
  Ibuf.contents out

(* UCS-2: raw big-endian 16-bit units.  Surrogate values are passed
   through untouched, which is exactly how naive BMPString decoders
   behave. *)
let decode_ucs2 policy s =
  let n = String.length s in
  let out = Ibuf.create (n / 2) in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n then begin
      let cp = (Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1] in
      Ibuf.push out cp;
      i := !i + 2
    end
    else begin
      bad policy out !i "odd trailing byte in UCS-2" [ Char.code s.[!i] ];
      incr i
    end
  done;
  Ibuf.contents out

let decode_utf16be policy s =
  let n = String.length s in
  let out = Ibuf.create (n / 2) in
  let unit i = (Char.code s.[i] lsl 8) lor Char.code s.[i + 1] in
  let i = ref 0 in
  while !i < n do
    if !i + 1 >= n then begin
      bad policy out !i "odd trailing byte in UTF-16" [ Char.code s.[!i] ];
      incr i
    end
    else
      let u = unit !i in
      if u >= 0xD800 && u <= 0xDBFF then
        if !i + 3 < n then begin
          let u2 = unit (!i + 2) in
          if u2 >= 0xDC00 && u2 <= 0xDFFF then begin
            Ibuf.push out (0x10000 + ((u - 0xD800) lsl 10) + (u2 - 0xDC00));
            i := !i + 4
          end
          else begin
            bad policy out !i "unpaired high surrogate" [ u lsr 8; u land 0xFF ];
            i := !i + 2
          end
        end
        else begin
          bad policy out !i "truncated surrogate pair" [ u lsr 8; u land 0xFF ];
          i := !i + 2
        end
      else if u >= 0xDC00 && u <= 0xDFFF then begin
        bad policy out !i "unpaired low surrogate" [ u lsr 8; u land 0xFF ];
        i := !i + 2
      end
      else begin
        Ibuf.push out u;
        i := !i + 2
      end
  done;
  Ibuf.contents out

let decode_ucs4 policy s =
  let n = String.length s in
  let out = Ibuf.create (n / 4) in
  let i = ref 0 in
  while !i < n do
    if !i + 3 < n then begin
      let cp =
        (Char.code s.[!i] lsl 24)
        lor (Char.code s.[!i + 1] lsl 16)
        lor (Char.code s.[!i + 2] lsl 8)
        lor Char.code s.[!i + 3]
      in
      if Cp.is_valid cp then Ibuf.push out cp
      else
        bad policy out !i "UCS-4 unit above U+10FFFF"
          [ Char.code s.[!i]; Char.code s.[!i + 1]; Char.code s.[!i + 2]; Char.code s.[!i + 3] ];
      i := !i + 4
    end
    else begin
      bad policy out !i "truncated UCS-4 unit" [ Char.code s.[!i] ];
      incr i
    end
  done;
  Ibuf.contents out

let decode ?(policy = Strict) enc s =
  try
    Ok
      (match enc with
      | Ascii -> decode_ascii policy s
      | Iso8859_1 -> decode_latin1 s
      | Utf8 -> decode_utf8 policy s
      | Ucs2 -> decode_ucs2 policy s
      | Utf16be -> decode_utf16be policy s
      | Ucs4 -> decode_ucs4 policy s)
  with Decode_error e -> Error e

let decode_exn ?policy enc s =
  match decode ?policy enc s with
  | Ok cps -> cps
  | Error e ->
      invalid_arg
        (Printf.sprintf "Codec.decode_exn (%s): offset %d: %s" (encoding_name enc)
           e.offset e.message)

exception Encode_error of error

let encode_utf8_cp buf cp =
  if cp <= 0x7F then Buffer.add_char buf (Char.chr cp)
  else if cp <= 0x7FF then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp <= 0xFFFF then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let encode enc cps =
  let buf = Buffer.create (Array.length cps * 2) in
  let fail i msg = raise (Encode_error { offset = i; message = msg }) in
  try
    Array.iteri
      (fun i cp ->
        match enc with
        | Ascii ->
            if Cp.is_ascii cp then Buffer.add_char buf (Char.chr cp)
            else fail i (Cp.to_string cp ^ " is not ASCII")
        | Iso8859_1 ->
            if cp >= 0 && cp <= 0xFF then Buffer.add_char buf (Char.chr cp)
            else fail i (Cp.to_string cp ^ " is not Latin-1")
        | Utf8 ->
            if Cp.is_scalar cp then encode_utf8_cp buf cp
            else fail i (Cp.to_string cp ^ " is not a scalar value")
        | Ucs2 ->
            if Cp.is_bmp cp && cp >= 0 then begin
              Buffer.add_char buf (Char.chr (cp lsr 8));
              Buffer.add_char buf (Char.chr (cp land 0xFF))
            end
            else fail i (Cp.to_string cp ^ " is outside the BMP")
        | Utf16be ->
            if Cp.is_surrogate cp then fail i (Cp.to_string cp ^ " is a surrogate")
            else if Cp.is_bmp cp && cp >= 0 then begin
              Buffer.add_char buf (Char.chr (cp lsr 8));
              Buffer.add_char buf (Char.chr (cp land 0xFF))
            end
            else if Cp.is_valid cp then begin
              let v = cp - 0x10000 in
              let hi = 0xD800 lor (v lsr 10) and lo = 0xDC00 lor (v land 0x3FF) in
              Buffer.add_char buf (Char.chr (hi lsr 8));
              Buffer.add_char buf (Char.chr (hi land 0xFF));
              Buffer.add_char buf (Char.chr (lo lsr 8));
              Buffer.add_char buf (Char.chr (lo land 0xFF))
            end
            else fail i (Cp.to_string cp ^ " is out of range")
        | Ucs4 ->
            if Cp.is_valid cp then begin
              Buffer.add_char buf (Char.chr ((cp lsr 24) land 0xFF));
              Buffer.add_char buf (Char.chr ((cp lsr 16) land 0xFF));
              Buffer.add_char buf (Char.chr ((cp lsr 8) land 0xFF));
              Buffer.add_char buf (Char.chr (cp land 0xFF))
            end
            else fail i (Cp.to_string cp ^ " is out of range"))
      cps;
    Ok (Buffer.contents buf)
  with Encode_error e -> Error e

let encode_exn enc cps =
  match encode enc cps with
  | Ok s -> s
  | Error e ->
      invalid_arg
        (Printf.sprintf "Codec.encode_exn (%s): index %d: %s" (encoding_name enc)
           e.offset e.message)

let utf8_of_cps cps =
  let buf = Buffer.create (Array.length cps * 2) in
  Array.iter
    (fun cp -> encode_utf8_cp buf (if Cp.is_scalar cp then cp else 0xFFFD))
    cps;
  Buffer.contents buf

let cps_of_utf8 s = decode_utf8 (Replace 0xFFFD) s
let cps_of_latin1 = decode_latin1

let well_formed_utf8 s =
  match decode Utf8 s with Ok _ -> true | Error _ -> false

let cp_list s = Array.to_list (cps_of_utf8 s)
