(** Test-Unicert generation following the paper's §3.2 rules: one RDN
    per DN, one attribute per RDN, one mutated field per certificate,
    all other fields at standard-compliant defaults. *)

type mutation =
  | Subject_attr of X509.Attr.t * Asn1.Str_type.t * string
      (** declared type + raw content octets *)
  | San_dns of string
  | San_rfc822 of string
  | San_uri of string
  | Crldp_uri of string
  | Aia_uri of string

val make : mutation -> X509.Certificate.t
(** [make m] is a signed test certificate whose only non-default field
    is the mutated one ("test.com" defaults elsewhere). *)

val byte_battery : string list
(** The probe payloads used for decoding inference: ASCII, UTF-8,
    Latin-1, control bytes, UCS-2, surrogate pairs, overlong UTF-8. *)

val block_samples : unit -> (string * string) list
(** [(block name, UTF-8 payload)] — one code point sampled from every
    non-surrogate Unicode block (§3.2), embedded in a default value. *)

val c0_to_ff_samples : unit -> string list
(** UTF-8 payloads embedding each code point U+0000–U+00FF. *)

val raw_subject_attr : X509.Certificate.t -> X509.Attr.t -> (Asn1.Str_type.t * string) option
(** Pull the declared type and raw octets of a subject attribute back
    out of a parsed certificate. *)

val raw_san_payloads : X509.Certificate.t -> string list
val raw_crldp_payloads : X509.Certificate.t -> string list
