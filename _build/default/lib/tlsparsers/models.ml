open Model

let st = Asn1.Str_type.name
let _ = st

(* Reference text of an ATV for renderers that re-decode values the
   library-specific way. *)
let atv_text_via decode (atv : X509.Dn.atv) =
  match atv.X509.Dn.value with
  | Asn1.Value.Str (stype, raw) -> decode stype raw
  | other -> Some (Format.asprintf "%a" Asn1.Value.pp other)

let attr_label (atv : X509.Dn.atv) =
  match X509.Attr.short_name atv.X509.Dn.typ with
  | Some s -> s
  | None -> Asn1.Oid.to_string (X509.Attr.oid atv.X509.Dn.typ)

(* ------------------------------------------------------------------ *)
(* OpenSSL: X509_NAME_oneline — modified-ASCII decoding with \xNN hex
   escapes, byte-wise (incompatible) BMPString handling, slash-joined
   unescaped output (the exploited escaping violation of Table 5). *)

let openssl_decode stype raw =
  match stype with
  | Asn1.Str_type.Printable_string | Asn1.Str_type.Ia5_string
  | Asn1.Str_type.Numeric_string | Asn1.Str_type.Visible_string ->
      Some (ascii_hex_escape raw)
  | Asn1.Str_type.Utf8_string -> Some (ascii_hex_escape raw)
  | Asn1.Str_type.Teletex_string -> Some (ascii_hex_escape raw)
  | Asn1.Str_type.Bmp_string | Asn1.Str_type.Universal_string ->
      (* Reads the payload byte-wise: ASCII BMP text collapses to its
         low bytes ("githube.cn"), everything else gets escaped. *)
      Some (ascii_hex_escape (String.concat ""
              (List.filter (fun s -> s <> "\x00")
                 (List.init (String.length raw) (fun i -> String.make 1 raw.[i])))))

let openssl =
  {
    name = "OpenSSL";
    supports = (function Subject_dn -> true | San | Ian | Aia | Sia | Crldp -> false);
    decode_name_attr = openssl_decode;
    decode_gn = (fun _ _ -> None);
    dn_to_string =
      (fun dn ->
        let parts =
          List.map
            (fun atv ->
              let text =
                match atv_text_via openssl_decode atv with Some t -> t | None -> ""
              in
              attr_label atv ^ "=" ^ text)
            (X509.Dn.all_atvs dn)
        in
        Some ("/" ^ String.concat "/" parts));
    gns_to_string = (fun _ -> None);
    escaping_claim = [ `Rfc1779; `Rfc2253; `Rfc4514 ];
  }

(* ------------------------------------------------------------------ *)
(* GnuTLS: decodes every DN/GN string type as UTF-8 (over-tolerant)
   except BMPString, which it converts correctly; RFC 4514 output. *)

let gnutls_decode stype raw =
  match stype with
  | Asn1.Str_type.Bmp_string -> ucs2 raw
  | _ -> utf8_strict raw

let rfc4514_escape text =
  let cps = Unicode.Codec.cps_of_utf8 text in
  let n = Array.length cps in
  let buf = Buffer.create (n * 2) in
  Array.iteri
    (fun i cp ->
      let special =
        cp < 0x80
        &&
        match Char.chr cp with
        | ',' | '+' | '"' | '\\' | '<' | '>' | ';' -> true
        | '#' -> i = 0
        | ' ' -> i = 0 || i = n - 1
        | _ -> false
      in
      if special then begin
        Buffer.add_char buf '\\';
        Buffer.add_char buf (Char.chr cp)
      end
      else if cp < 0x20 || cp = 0x7F then
        Buffer.add_string buf (Printf.sprintf "\\%02X" cp)
      else Buffer.add_string buf (Unicode.Codec.utf8_of_cps [| cp |]))
    cps;
  Buffer.contents buf

let dn_rfc4514 decode dn =
  let rdn_strings =
    List.rev_map
      (fun rdn ->
        String.concat "+"
          (List.map
             (fun atv ->
               let text =
                 match atv_text_via decode atv with Some t -> t | None -> ""
               in
               attr_label atv ^ "=" ^ rfc4514_escape text)
             rdn))
      dn
  in
  Some (String.concat "," rdn_strings)

let gnutls =
  {
    name = "GnuTLS";
    supports = (function Subject_dn | San | Ian | Crldp -> true | Aia | Sia -> false);
    decode_name_attr = gnutls_decode;
    decode_gn = (fun _ raw -> utf8_strict raw);
    dn_to_string = (fun dn -> dn_rfc4514 gnutls_decode dn);
    (* gnutls_x509_crt_get_subject_alt_name yields one name per call —
       no joined string form exists. *)
    gns_to_string = (fun _ -> None);
    escaping_claim = [ `Rfc4514 ];
  }

(* ------------------------------------------------------------------ *)
(* PyOpenSSL: Latin-1-tolerant name decoding; GeneralNames rendered as
   "DNS:a, DNS:b" without escaping (the exploited subfield forgery) and
   control characters in CRLDP locations rewritten to ".". *)

let pyopenssl_decode stype raw =
  match stype with
  | Asn1.Str_type.Utf8_string -> utf8_strict raw
  | Asn1.Str_type.Bmp_string -> ucs2 raw
  | Asn1.Str_type.Universal_string -> (
      match Unicode.Codec.decode Unicode.Codec.Ucs4 raw with
      | Ok cps -> Some (Unicode.Codec.utf8_of_cps cps)
      | Error _ -> None)
  | _ -> Some (latin1 raw)

let dot_controls s =
  String.map
    (fun c ->
      let b = Char.code c in
      if (b <= 0x09 || b = 0x0B || b = 0x0C || (b >= 0x0E && b <= 0x1F) || b = 0x7F)
      then '.'
      else c)
    s

let pyopenssl =
  {
    name = "PyOpenSSL";
    supports = (function Subject_dn | San | Ian | Aia | Crldp -> true | Sia -> false);
    decode_name_attr = pyopenssl_decode;
    decode_gn =
      (fun field raw ->
        let text = latin1 raw in
        match field with Crldp -> Some (dot_controls text) | _ -> Some text);
    dn_to_string = (fun _ -> None) (* X509Name components are structured *);
    gns_to_string =
      (fun gns ->
        Some
          (String.concat ", "
             (List.map
                (fun gn ->
                  let payload =
                    match gn with
                    | X509.General_name.Dns_name s -> "DNS:" ^ s
                    | X509.General_name.Rfc822_name s -> "email:" ^ s
                    | X509.General_name.Uri s -> "URI:" ^ s
                    | gn -> X509.General_name.kind gn ^ ":" ^ X509.General_name.text gn
                  in
                  payload)
                gns)));
    escaping_claim = [ `Rfc2253 ];
  }

(* ------------------------------------------------------------------ *)
(* pyca/cryptography: strict PrintableString, Latin-1-lax IA5String (for
   compatibility, per the maintainers' response), UTF-16-lax BMPString;
   correct RFC 4514 DN serialization. *)

let cryptography_decode stype raw =
  match stype with
  | Asn1.Str_type.Printable_string -> ascii_strict raw
  | Asn1.Str_type.Ia5_string | Asn1.Str_type.Numeric_string
  | Asn1.Str_type.Visible_string | Asn1.Str_type.Teletex_string ->
      Some (latin1 raw)
  | Asn1.Str_type.Utf8_string -> utf8_strict raw
  | Asn1.Str_type.Bmp_string -> utf16 raw
  | Asn1.Str_type.Universal_string -> (
      match Unicode.Codec.decode Unicode.Codec.Ucs4 raw with
      | Ok cps -> Some (Unicode.Codec.utf8_of_cps cps)
      | Error _ -> None)

let cryptography =
  {
    name = "Cryptography";
    supports = (fun _ -> true);
    decode_name_attr = cryptography_decode;
    decode_gn = (fun _ raw -> Some (latin1 raw));
    dn_to_string = (fun dn -> dn_rfc4514 cryptography_decode dn);
    gns_to_string = (fun _ -> None) (* typed ExtensionValue objects *);
    escaping_claim = [ `Rfc4514 ];
  }

(* ------------------------------------------------------------------ *)
(* Go crypto/x509: strict decoding with repertoire checks — illegal
   bytes abort parsing ("asn1: syntax error"); results are structured
   (pkix.Name), so no text-escaping surface exists. *)

let gocrypto_decode stype raw =
  let check_all pred cps = if Array.for_all pred cps then Some cps else None in
  match stype with
  | Asn1.Str_type.Printable_string -> (
      match Unicode.Codec.decode Unicode.Codec.Ascii raw with
      | Ok cps -> (
          match check_all Unicode.Props.is_printable_string_char cps with
          | Some cps -> Some (Unicode.Codec.utf8_of_cps cps)
          | None -> None)
      | Error _ -> None)
  | Asn1.Str_type.Ia5_string | Asn1.Str_type.Numeric_string
  | Asn1.Str_type.Visible_string ->
      ascii_strict raw
  | Asn1.Str_type.Teletex_string -> Some (latin1 raw)
  | Asn1.Str_type.Utf8_string -> utf8_strict raw
  | Asn1.Str_type.Bmp_string -> ucs2 raw
  | Asn1.Str_type.Universal_string -> (
      match Unicode.Codec.decode Unicode.Codec.Ucs4 raw with
      | Ok cps -> Some (Unicode.Codec.utf8_of_cps cps)
      | Error _ -> None)

let gocrypto =
  {
    name = "Golang Crypto";
    supports = (function Subject_dn | San | Crldp -> true | Ian | Aia | Sia -> false);
    decode_name_attr = gocrypto_decode;
    decode_gn = (fun _ raw -> ascii_strict raw);
    dn_to_string = (fun _ -> None);
    gns_to_string = (fun _ -> None);
    escaping_claim = [];
  }

(* ------------------------------------------------------------------ *)
(* Java java.security.cert: replaces undecodable content with U+FFFD
   (modified decoding), reads BMPString byte-wise (ASCII-compatible but
   incompatible with UCS-2), renders DNs RFC 2253-style with deviations
   on the 4514/1779 special cases. *)

let javasec_decode stype raw =
  match stype with
  | Asn1.Str_type.Printable_string | Asn1.Str_type.Ia5_string
  | Asn1.Str_type.Numeric_string | Asn1.Str_type.Visible_string ->
      Some (ascii_replace 0xFFFD raw)
  | Asn1.Str_type.Utf8_string -> Some (utf8_replace raw)
  | Asn1.Str_type.Teletex_string -> Some (latin1 raw)
  | Asn1.Str_type.Bmp_string | Asn1.Str_type.Universal_string ->
      Some (ucs2_ascii_bytewise 0xFFFD raw)

(* Escapes the 2253 specials but, unlike RFC 4514, neither hex-escapes
   control characters nor protects a leading '#'. *)
let java_escape text =
  let buf = Buffer.create (String.length text * 2) in
  String.iteri
    (fun i c ->
      (match c with
      | ',' | '+' | '"' | '\\' | '<' | '>' | ';' -> Buffer.add_char buf '\\'
      | ' ' when i = 0 || i = String.length text - 1 -> Buffer.add_char buf '\\'
      | _ -> ());
      Buffer.add_char buf c)
    text;
  Buffer.contents buf

let javasec =
  {
    name = "Java.security.cert";
    supports = (function Subject_dn | San | Ian -> true | Aia | Sia | Crldp -> false);
    decode_name_attr = javasec_decode;
    decode_gn = (fun _ raw -> Some (ascii_replace 0xFFFD raw));
    dn_to_string =
      (fun dn ->
        let rdn_strings =
          List.rev_map
            (fun rdn ->
              String.concat "+"
                (List.map
                   (fun atv ->
                     let text =
                       match atv_text_via javasec_decode atv with Some t -> t | None -> ""
                     in
                     attr_label atv ^ "=" ^ java_escape text)
                   rdn))
            dn
        in
        Some (String.concat ", " rdn_strings));
    gns_to_string = (fun _ -> None) (* returns a Collection *);
    escaping_claim = [ `Rfc2253; `Rfc4514; `Rfc1779 ];
  }

(* ------------------------------------------------------------------ *)
(* BouncyCastle: tolerant IA5 (Latin-1), UTF-16 BMPString (surrogate
   pairs accepted), DN-only string access with minor escaping
   deviations. *)

let bouncycastle_decode stype raw =
  match stype with
  | Asn1.Str_type.Printable_string -> ascii_strict raw
  | Asn1.Str_type.Ia5_string | Asn1.Str_type.Numeric_string
  | Asn1.Str_type.Visible_string | Asn1.Str_type.Teletex_string ->
      Some (latin1 raw)
  | Asn1.Str_type.Utf8_string -> utf8_strict raw
  | Asn1.Str_type.Bmp_string -> utf16 raw
  | Asn1.Str_type.Universal_string -> (
      match Unicode.Codec.decode Unicode.Codec.Ucs4 raw with
      | Ok cps -> Some (Unicode.Codec.utf8_of_cps cps)
      | Error _ -> None)

(* BouncyCastle escapes 2253 specials but not leading/trailing spaces. *)
let bc_escape text =
  let buf = Buffer.create (String.length text * 2) in
  String.iter
    (fun c ->
      (match c with
      | ',' | '+' | '"' | '\\' | '<' | '>' | ';' | '=' -> Buffer.add_char buf '\\'
      | _ -> ());
      Buffer.add_char buf c)
    text;
  Buffer.contents buf

let bouncycastle =
  {
    name = "BouncyCastle";
    supports = (function Subject_dn -> true | San | Ian | Aia | Sia | Crldp -> false);
    decode_name_attr = bouncycastle_decode;
    decode_gn = (fun _ _ -> None);
    dn_to_string =
      (fun dn ->
        let parts =
          List.map
            (fun atv ->
              let text =
                match atv_text_via bouncycastle_decode atv with Some t -> t | None -> ""
              in
              attr_label atv ^ "=" ^ bc_escape text)
            (X509.Dn.all_atvs dn)
        in
        Some (String.concat "," parts));
    gns_to_string = (fun _ -> None);
    escaping_claim = [ `Rfc2253; `Rfc4514; `Rfc1779 ];
  }

(* ------------------------------------------------------------------ *)
(* Node.js crypto: correct per-type decoding; DN rendered one attribute
   per line (a deliberate, unexploitable deviation from all three DN
   string RFCs introduced after CVE-2021-44533); SAN values quoted when
   they contain specials. *)

let nodecrypto_decode stype raw =
  match stype with
  | Asn1.Str_type.Printable_string | Asn1.Str_type.Ia5_string
  | Asn1.Str_type.Numeric_string | Asn1.Str_type.Visible_string ->
      ascii_strict raw
  | Asn1.Str_type.Utf8_string -> utf8_strict raw
  | Asn1.Str_type.Teletex_string -> Some (latin1 raw)
  | Asn1.Str_type.Bmp_string -> ucs2 raw
  | Asn1.Str_type.Universal_string -> (
      match Unicode.Codec.decode Unicode.Codec.Ucs4 raw with
      | Ok cps -> Some (Unicode.Codec.utf8_of_cps cps)
      | Error _ -> None)

let node_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = ' ' || Char.code c < 0x20) s then
    "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""
  else s

let nodecrypto =
  {
    name = "Node.js Crypto";
    supports = (function Subject_dn | San | Aia -> true | Ian | Sia | Crldp -> false);
    decode_name_attr = nodecrypto_decode;
    decode_gn = (fun _ raw -> ascii_strict raw);
    dn_to_string =
      (fun dn ->
        let parts =
          List.map
            (fun atv ->
              let text =
                match atv_text_via nodecrypto_decode atv with Some t -> t | None -> ""
              in
              attr_label atv ^ "=" ^ text)
            (X509.Dn.all_atvs dn)
        in
        Some (String.concat "\n" parts));
    gns_to_string =
      (fun gns ->
        Some
          (String.concat ", "
             (List.map
                (fun gn ->
                  match gn with
                  | X509.General_name.Dns_name s -> "DNS:" ^ node_quote s
                  | X509.General_name.Rfc822_name s -> "email:" ^ node_quote s
                  | X509.General_name.Uri s -> "URI:" ^ node_quote s
                  | gn -> X509.General_name.kind gn ^ ":" ^ X509.General_name.text gn)
                gns)));
    escaping_claim = [ `Rfc2253; `Rfc4514; `Rfc1779 ];
  }

(* ------------------------------------------------------------------ *)
(* node-forge: decodes UTF8String as ISO-8859-1 (the incompatible
   decoding of Table 4) and is Latin-1-tolerant elsewhere; BMPString
   unsupported; structured field access only. *)

let forge_decode stype raw =
  match stype with
  | Asn1.Str_type.Utf8_string -> Some (latin1 raw)
  | Asn1.Str_type.Printable_string | Asn1.Str_type.Ia5_string
  | Asn1.Str_type.Numeric_string | Asn1.Str_type.Visible_string
  | Asn1.Str_type.Teletex_string ->
      Some (latin1 raw)
  | Asn1.Str_type.Bmp_string | Asn1.Str_type.Universal_string -> None

let forge =
  {
    name = "Forge";
    supports = (function Subject_dn | San | Ian -> true | Aia | Sia | Crldp -> false);
    decode_name_attr = forge_decode;
    decode_gn = (fun _ raw -> Some (latin1 raw));
    dn_to_string = (fun _ -> None) (* subject.getField() is structured *);
    gns_to_string = (fun _ -> None);
    escaping_claim = [];
  }

let all =
  [ openssl; gnutls; pyopenssl; cryptography; gocrypto; javasec; bouncycastle;
    nodecrypto; forge ]

let find name = List.find_opt (fun m -> m.Model.name = name) all
