(** The behavioural model of a TLS library's certificate parsing
    surface — the replacement for the nine third-party libraries the
    paper tests (DESIGN.md substitution table).

    Each model reproduces that library's *documented* decoding and
    escaping behaviour for the APIs of Tables 12/13.  The differential
    harness treats models as black boxes and infers their behaviour the
    same way the paper does (§3.2). *)

type field = Subject_dn | San | Ian | Aia | Sia | Crldp

val field_name : field -> string
val all_fields : field list

type t = {
  name : string;
  supports : field -> bool;
  decode_name_attr : Asn1.Str_type.t -> string -> string option;
      (** decode one DN attribute value (raw content octets) to the
          UTF-8 text the library would hand the application; [None]
          models a parse failure/exception *)
  decode_gn : field -> string -> string option;
      (** decode an IA5-typed GeneralName payload in the given field *)
  dn_to_string : X509.Dn.t -> string option;
      (** the library's X.509-text DN representation; [None] when the
          API returns structured data instead of a string *)
  gns_to_string : X509.General_name.t list -> string option;
      (** the library's text rendering of a GeneralNames list *)
  escaping_claim : [ `Rfc1779 | `Rfc2253 | `Rfc4514 ] list;
      (** the escaping standards the library documents for
          [dn_to_string] (empty when no string form exists) *)
}

(** {1 Decoder building blocks shared by the models} *)

val ascii_strict : string -> string option
val ascii_hex_escape : string -> string
(** OpenSSL-style: bytes above printable ASCII become [\xNN]. *)

val ascii_replace : Unicode.Cp.t -> string -> string
(** Byte-wise with replacement for bytes above 0x7F. *)

val latin1 : string -> string
val utf8_strict : string -> string option
val utf8_replace : string -> string
val ucs2_ascii_bytewise : Unicode.Cp.t -> string -> string
(** Reads a UCS-2 payload one byte at a time as ASCII — the
    incompatible decoding behind the paper's "githube.cn" example. *)

val ucs2 : string -> string option
val utf16 : string -> string option
