(** The nine TLS-library behavioural models (Tables 4, 5, 12, 13 and
    §5 prose).  Each value reproduces the decoding methods, character
    handling, field support and string-rendering quirks the paper
    documents for that library. *)

val openssl : Model.t
val gnutls : Model.t
val pyopenssl : Model.t
val cryptography : Model.t
val gocrypto : Model.t
val javasec : Model.t
val bouncycastle : Model.t
val nodecrypto : Model.t
val forge : Model.t

val all : Model.t list
(** In the paper's Table 4 column order. *)

val find : string -> Model.t option
