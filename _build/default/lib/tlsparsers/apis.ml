type t = {
  library : string;
  version : string;
  load : string;
  subject : string list;
  extensions : (Model.field * string) list;
}

let all =
  [
    {
      library = "OpenSSL";
      version = "3.3.0";
      load = "PEM_read_bio_X509()";
      subject =
        [ "X509_NAME_oneline()"; "X509_NAME_print()"; "X509_NAME_print_ex()" ];
      extensions = [];
    };
    {
      library = "GnuTLS";
      version = "3.7.11";
      load = "gnutls_x509_crt_import()";
      subject =
        [ "gnutls_x509_crt_get_subject_dn()"; "gnutls_x509_crt_get_issuer_dn()" ];
      extensions =
        [ (Model.San, "gnutls_x509_crt_get_subject_alt_name()");
          (Model.Ian, "gnutls_x509_crt_get_issuer_alt_name()");
          (Model.Crldp, "gnutls_x509_crt_get_crl_dist_points()") ];
    };
    {
      library = "PyOpenSSL";
      version = "24.2.1";
      load = "load_certificate()";
      subject = [ "get_subject()"; "get_issuer()" ];
      extensions =
        [ (Model.San, "str(get_extension())"); (Model.Ian, "str(get_extension())");
          (Model.Aia, "str(get_extension())"); (Model.Crldp, "str(get_extension())") ];
    };
    {
      library = "Cryptography";
      version = "42.0.7";
      load = "load_der_x509_certificate()";
      subject = [ "subject.rfc4514_string()"; "issuer.rfc4514_string()" ];
      extensions =
        List.map (fun f -> (f, "get_extension_for_oid().value"))
          [ Model.San; Model.Ian; Model.Aia; Model.Sia; Model.Crldp ];
    };
    {
      library = "Golang Crypto";
      version = "1.23.0";
      load = "ParseCertificate()";
      subject = [ "Subject.ShortName"; "Issuer.ShortName" ];
      extensions =
        [ (Model.San, "SubjectAlternativeName"); (Model.Crldp, "CRLDistributionPoints") ];
    };
    {
      library = "Java.security.cert";
      version = "1.8/11.0/17.0/21.0";
      load = "CertificateFactory.getInstance(\"X.509\").generateCertificate()";
      subject =
        [ "getSubjectDN().toString()"; "getSubjectX500Principal().getName()";
          "getIssuerX500Principal().toString()" ];
      extensions =
        [ (Model.San, "getSubjectAlternativeNames()");
          (Model.Ian, "getIssuerAlternativeNames()") ];
    };
    {
      library = "BouncyCastle";
      version = "1.78.1";
      load = "X509CertificateHolder()";
      subject = [ "getSubject().toString()"; "getIssuer().toString()" ];
      extensions = [];
    };
    {
      library = "Node.js Crypto";
      version = "22.4.1";
      load = "certificateFromPem()";
      subject = [ "subject"; "issuer" ];
      extensions = [ (Model.San, "subjectAltName"); (Model.Aia, "infoAccess") ];
    };
    {
      library = "Forge";
      version = "1.3.1";
      load = "X509Certificate()";
      subject = [ "subject.getField()"; "issuer.getField()" ];
      extensions = [ (Model.San, "getExtension()"); (Model.Ian, "getExtension()") ];
    };
  ]

let find library = List.find_opt (fun a -> a.library = library) all

let api_for library field =
  match find library with
  | None -> None
  | Some a -> (
      match field with
      | Model.Subject_dn -> ( match a.subject with s :: _ -> Some s | [] -> None)
      | field -> List.assoc_opt field a.extensions)

let render ppf =
  Format.fprintf ppf "== Tables 12/13: tested TLS libraries and APIs ==@.";
  List.iter
    (fun a ->
      Format.fprintf ppf "%-20s %-20s load: %s@." a.library a.version a.load;
      Format.fprintf ppf "    subject/issuer: %s@." (String.concat "; " a.subject);
      if a.extensions <> [] then
        Format.fprintf ppf "    extensions:     %s@."
          (String.concat "; "
             (List.map
                (fun (f, api) -> Printf.sprintf "%s=%s" (Model.field_name f) api)
                a.extensions)))
    all

(* The API table and the behavioural models must agree on field
   support. *)
let () =
  List.iter
    (fun a ->
      match Models.find a.library with
      | None -> invalid_arg ("Apis: unknown model " ^ a.library)
      | Some m ->
          List.iter
            (fun (field, _) ->
              if not (m.Model.supports field) then
                invalid_arg
                  (Printf.sprintf "Apis: %s lists %s but the model rejects it"
                     a.library (Model.field_name field)))
            a.extensions)
    all
