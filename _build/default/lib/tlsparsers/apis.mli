(** The tested libraries and APIs of the paper's Appendix E (Tables 12
    and 13) as data: which concrete functions each behavioural model
    stands in for, per field. *)

type t = {
  library : string;       (** matches {!Model.t}[.name] *)
  version : string;
  load : string;          (** certificate-loading entry point *)
  subject : string list;  (** Subject/Issuer parsing APIs (Table 12) *)
  extensions : (Model.field * string) list;
      (** per-extension APIs (Table 13); absent fields are unsupported *)
}

val all : t list

val find : string -> t option

val api_for : string -> Model.field -> string option
(** [api_for library field] is the concrete API name the model's
    behaviour was taken from, if the library supports the field. *)

val render : Format.formatter -> unit
(** Print Tables 12/13. *)
