type field = Subject_dn | San | Ian | Aia | Sia | Crldp

let field_name = function
  | Subject_dn -> "Subject/Issuer DN"
  | San -> "SAN"
  | Ian -> "IAN"
  | Aia -> "AIA"
  | Sia -> "SIA"
  | Crldp -> "CRLDistributionPoints"

let all_fields = [ Subject_dn; San; Ian; Aia; Sia; Crldp ]

type t = {
  name : string;
  supports : field -> bool;
  decode_name_attr : Asn1.Str_type.t -> string -> string option;
  decode_gn : field -> string -> string option;
  dn_to_string : X509.Dn.t -> string option;
  gns_to_string : X509.General_name.t list -> string option;
  escaping_claim : [ `Rfc1779 | `Rfc2253 | `Rfc4514 ] list;
}

let ascii_strict raw =
  match Unicode.Codec.decode Unicode.Codec.Ascii raw with
  | Ok cps -> Some (Unicode.Codec.utf8_of_cps cps)
  | Error _ -> None

let ascii_hex_escape raw = Unicode.Escape.hex_escape_nonprintable raw

let ascii_replace repl raw =
  Unicode.Codec.utf8_of_cps
    (Unicode.Codec.decode_exn ~policy:(Unicode.Codec.Replace repl) Unicode.Codec.Ascii raw)

let latin1 raw = Unicode.Codec.utf8_of_cps (Unicode.Codec.cps_of_latin1 raw)

let utf8_strict raw =
  match Unicode.Codec.decode Unicode.Codec.Utf8 raw with
  | Ok cps -> Some (Unicode.Codec.utf8_of_cps cps)
  | Error _ -> None

let utf8_replace raw = Unicode.Codec.utf8_of_cps (Unicode.Codec.cps_of_utf8 raw)

let ucs2_ascii_bytewise repl raw =
  let buf = Buffer.create (String.length raw) in
  String.iter
    (fun c ->
      let b = Char.code c in
      if b = 0 then () (* high zero octets of ASCII BMP text vanish *)
      else if b <= 0x7F then Buffer.add_char buf c
      else Buffer.add_string buf (Unicode.Codec.utf8_of_cps [| repl |]))
    raw;
  Buffer.contents buf

let ucs2 raw =
  match Unicode.Codec.decode Unicode.Codec.Ucs2 raw with
  | Ok cps -> Some (Unicode.Codec.utf8_of_cps cps)
  | Error _ -> None

let utf16 raw =
  match Unicode.Codec.decode Unicode.Codec.Utf16be raw with
  | Ok cps -> Some (Unicode.Codec.utf8_of_cps cps)
  | Error _ -> None
