lib/tlsparsers/apis.mli: Format Model
