lib/tlsparsers/infer.ml: Asn1 Buffer Char List Printf String Unicode
