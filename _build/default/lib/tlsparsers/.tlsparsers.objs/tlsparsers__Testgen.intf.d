lib/tlsparsers/testgen.mli: Asn1 X509
