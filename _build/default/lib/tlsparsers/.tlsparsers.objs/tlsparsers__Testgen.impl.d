lib/tlsparsers/testgen.ml: Array Asn1 List Unicode X509
