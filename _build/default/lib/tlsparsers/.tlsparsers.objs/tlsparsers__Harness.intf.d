lib/tlsparsers/harness.mli: Asn1 Format Infer
