lib/tlsparsers/models.mli: Model
