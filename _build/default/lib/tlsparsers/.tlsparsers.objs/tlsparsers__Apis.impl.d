lib/tlsparsers/apis.ml: Format List Model Models Printf String
