lib/tlsparsers/infer.mli: Asn1
