lib/tlsparsers/model.mli: Asn1 Unicode X509
