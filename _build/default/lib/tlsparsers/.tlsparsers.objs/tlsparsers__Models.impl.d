lib/tlsparsers/models.ml: Array Asn1 Buffer Char Format List Model Printf String Unicode X509
