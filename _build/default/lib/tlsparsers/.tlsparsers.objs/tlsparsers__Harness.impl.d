lib/tlsparsers/harness.ml: Array Asn1 Buffer Format Fun Infer List Model Models Printf String Testgen Unicode X509
