lib/tlsparsers/model.ml: Asn1 Buffer Char String Unicode X509
