type t = {
  name : string;
  validate : X509.Certificate.t -> hostname:string -> (unit, string) result;
}

let of_policy name policy =
  {
    name;
    validate =
      (fun cert ~hostname ->
        match X509.Hostname.verify ~policy ~reference:hostname cert with
        | Ok () -> Ok ()
        | Error f -> Error (Format.asprintf "%a" X509.Hostname.pp_failure f));
  }

let libcurl = of_policy "libcurl" X509.Hostname.strict

(* urllib3 reads SAN bytes as Latin-1 and compares directly, but also
   accepts the converted A-label form — so both a raw U-label SAN and a
   proper A-label SAN satisfy a U-label hostname, and malformed
   Punycode is never noticed ([P2.2]). *)
let urllib3_validate cert ~hostname =
  let lax =
    { X509.Hostname.strict with
      X509.Hostname.require_ldh_san = false;
      convert_idn = false }
  in
  match X509.Hostname.verify ~policy:lax ~reference:hostname cert with
  | Ok () -> Ok ()
  | Error _ -> (
      match
        X509.Hostname.verify
          ~policy:{ lax with X509.Hostname.convert_idn = true }
          ~reference:hostname cert
      with
      | Ok () -> Ok ()
      | Error f -> Error (Format.asprintf "%a" X509.Hostname.pp_failure f))

let urllib3 = { name = "urllib3"; validate = urllib3_validate }
let requests = { name = "requests"; validate = urllib3_validate }

(* Java HttpClient accepts any syntactically-Punycode label without
   decoding it, alongside plain LDH labels. *)
let httpclient =
  {
    name = "HttpClient";
    validate =
      (fun cert ~hostname ->
        let sans = X509.Certificate.san_dns_names cert in
        let syntactically_ok s =
          Idna.Dns.split_labels s
          |> List.for_all (fun l ->
                 l = "*" || Idna.Dns.is_a_label_candidate l
                 || String.for_all (fun c -> Unicode.Props.is_ldh (Char.code c)) l)
        in
        let kept = List.filter syntactically_ok sans in
        if sans = [] then Error "no subjectAltName"
        else begin
          let host =
            match Idna.to_ascii hostname with Ok a -> a | Error _ -> hostname
          in
          let matches pattern =
            let p = Idna.Dns.split_labels (String.lowercase_ascii pattern) in
            let h = Idna.Dns.split_labels (String.lowercase_ascii host) in
            match (p, h) with
            | "*" :: prest, _ :: hrest -> prest <> [] && prest = hrest
            | _ -> p = h
          in
          if List.exists matches kept then Ok () else Error "hostname mismatch"
        end);
  }

let all = [ libcurl; urllib3; requests; httpclient ]
