type t = {
  name : string;
  extract_cn : X509.Certificate.t -> string option;
  extract_org : X509.Certificate.t -> string option;
  extract_sans : X509.Certificate.t -> string list;
  case_sensitive_match : bool;
}

let cns cert =
  X509.Dn.get_text cert.X509.Certificate.tbs.X509.Certificate.subject
    X509.Attr.Common_name

let orgs cert =
  X509.Dn.get_text cert.X509.Certificate.tbs.X509.Certificate.subject
    X509.Attr.Organization_name

let first = function [] -> None | x :: _ -> Some x
let last l = match List.rev l with [] -> None | x :: _ -> Some x

let is_pure_ascii s = String.for_all (fun c -> Char.code c < 0x80) s

let snort =
  {
    name = "Snort";
    extract_cn = (fun c -> first (cns c));
    extract_org = (fun c -> first (orgs c));
    extract_sans = X509.Certificate.san_dns_names;
    case_sensitive_match = false;
  }

let suricata =
  {
    name = "Suricata";
    extract_cn = (fun c -> first (cns c));
    extract_org = (fun c -> first (orgs c));
    extract_sans = X509.Certificate.san_dns_names;
    case_sensitive_match = true;
  }

let zeek =
  {
    name = "Zeek";
    extract_cn = (fun c -> last (cns c));
    extract_org = (fun c -> last (orgs c));
    (* X509.cc skips SAN strings that are not plain IA5. *)
    extract_sans =
      (fun c -> List.filter is_pure_ascii (X509.Certificate.san_dns_names c));
    case_sensitive_match = false;
  }

let all = [ snort; suricata; zeek ]

type rule = { field : [ `Cn | `Org | `San ]; pattern : string }

let matches engine rule cert =
  let fold s = if engine.case_sensitive_match then s else String.lowercase_ascii s in
  let pattern = fold rule.pattern in
  match rule.field with
  | `Cn -> (
      match engine.extract_cn cert with
      | Some cn -> String.equal (fold cn) pattern
      | None -> false)
  | `Org -> (
      match engine.extract_org cert with
      | Some o -> String.equal (fold o) pattern
      | None -> false)
  | `San -> List.exists (fun s -> String.equal (fold s) pattern) (engine.extract_sans cert)
