(** Network-detection engine models (§6.2): how Snort, Suricata and
    Zeek extract and match certificate entity fields, with each tool's
    documented quirks ([P2.1]). *)

type t = {
  name : string;
  extract_cn : X509.Certificate.t -> string option;
      (** Snort takes the first duplicated CN, Zeek the last. *)
  extract_org : X509.Certificate.t -> string option;
  extract_sans : X509.Certificate.t -> string list;
      (** Zeek ignores SAN entries that are not pure IA5/ASCII. *)
  case_sensitive_match : bool;
      (** Suricata's tls.subject matching is case-sensitive. *)
}

val snort : t
val suricata : t
val zeek : t
val all : t list

type rule = { field : [ `Cn | `Org | `San ]; pattern : string }
(** A blocklist rule: block when the extracted field equals (or for
    SANs, contains) the pattern, honouring the engine's case
    sensitivity. *)

val matches : t -> rule -> X509.Certificate.t -> bool
(** [matches engine rule cert] — would the engine flag this
    certificate? *)
