(** Wire-level inspection: the detection engines applied to captured
    TLS 1.2 flows, where the server certificate is visible in clear —
    the setting of the §6.2 threat model. *)

type verdict = {
  engine : string;
  blocked : bool;
  matched : Engine.rule option;  (** the rule that fired, if any *)
  extracted_cn : string option;
  sni : string option;
}

val inspect :
  Engine.t -> rules:Engine.rule list ->
  client_flow:Tlswire.Wire.flow -> server_flow:Tlswire.Wire.flow -> verdict
(** [inspect engine ~rules ~client_flow ~server_flow] parses the
    handshakes, extracts the entity fields the engine looks at, and
    reports whether any blocklist rule fires. *)

val tls_session :
  ?sni:string -> seed:int -> X509.Certificate.t list ->
  Tlswire.Wire.flow * Tlswire.Wire.flow
(** [tls_session ~seed chain] builds the (client, server) flows of a
    TLS 1.2 handshake presenting [chain]. *)
