(** Subject-value variant strategies (Table 3) and the traffic
    obfuscation experiment (§6.2): can certificate-field variants evade
    naive string-based detection rules? *)

type strategy =
  | Case_conversion
  | Abbreviation_variation
  | Nonprintable_addition
  | Whitespace_substitution
  | Resembling_substitution
  | Illegal_replacement

val strategies : strategy list
val strategy_name : strategy -> string

val examples : strategy -> (string * string) list
(** The paper's Table 3 variant pairs for this strategy. *)

val apply : Ucrypto.Prng.t -> strategy -> string -> string
(** [apply g strategy value] produces an identity-equivalent variant of
    a subject value. *)

val is_variant_pair : string -> string -> bool
(** [is_variant_pair a b] detects whether two subject values are
    identity-equivalent variants (used to mine Table 3 from a corpus):
    equal after case folding, whitespace and invisible-character
    normalization, confusable skeletonization and NFC. *)

type evasion = {
  engine : string;
  strategy : strategy;
  original : string;
  variant : string;
  evaded : bool;  (** the blocklist rule no longer matches *)
}

val evasion_matrix : ?seed:int -> unit -> evasion list
(** Block rules on the original subject O value, present the variant,
    record which engines are evaded. *)

val render : Format.formatter -> unit
