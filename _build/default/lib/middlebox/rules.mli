(** A miniature Suricata-style TLS rule language, covering the keywords
    the §6.2 experiments exercise: [tls.subject], [tls.sni],
    [content:"…"], [nocase], [msg:"…"] and [sid:N].

    Example rule:
    {v
alert tls any any -> any any (msg:"evil org"; tls.subject; content:"O=Evil Entity"; nocase; sid:1001;)
    v} *)

type buffer = Tls_subject | Tls_sni

type matcher = {
  buffer : buffer;
  content : string;
  nocase : bool;
}

type t = {
  msg : string;
  sid : int;
  matchers : matcher list;
}

val parse : string -> (t, string) result
(** [parse line] reads one rule.  Unknown option keywords are rejected;
    [content] binds to the most recent buffer keyword. *)

val subject_buffer : X509.Certificate.t -> string
(** The engine's rendering of the subject for content matching
    (Suricata-style ["C=US, O=Acme, CN=x"]). *)

val matches :
  t -> client_flow:Tlswire.Wire.flow -> server_flow:Tlswire.Wire.flow -> bool
(** [matches rule ~client_flow ~server_flow] — every matcher must find
    its content in its buffer. *)

val eval :
  t list -> client_flow:Tlswire.Wire.flow -> server_flow:Tlswire.Wire.flow -> t list
(** The alerting rules, in order. *)
