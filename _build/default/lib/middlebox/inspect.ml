type verdict = {
  engine : string;
  blocked : bool;
  matched : Engine.rule option;
  extracted_cn : string option;
  sni : string option;
}

let inspect (engine : Engine.t) ~rules ~client_flow ~server_flow =
  let certs = Tlswire.Wire.server_certificates server_flow in
  let sni = Tlswire.Wire.sni_of_flow client_flow in
  let leaf = match certs with c :: _ -> Some c | [] -> None in
  let matched =
    match leaf with
    | None -> None
    | Some cert -> List.find_opt (fun rule -> Engine.matches engine rule cert) rules
  in
  {
    engine = engine.Engine.name;
    blocked = matched <> None;
    matched;
    extracted_cn = Option.bind leaf engine.Engine.extract_cn;
    sni;
  }

let tls_session ?sni ~seed chain =
  let g = Ucrypto.Prng.create seed in
  let client = Tlswire.Wire.client_hello_flow ?sni g in
  let server = Tlswire.Wire.server_flight g chain in
  (client, server)
