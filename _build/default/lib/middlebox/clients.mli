(** HTTP(S) client hostname-validation models (§6.2 [P2.2]): libcurl,
    urllib3, requests and Java HttpClient, with their documented
    differences in SAN format checking. *)

type t = {
  name : string;
  validate : X509.Certificate.t -> hostname:string -> (unit, string) result;
}

val libcurl : t
(** Strict: SAN entries must be LDH; IDN hostnames are converted to
    A-labels before matching. *)

val urllib3 : t
(** Latin-1-tolerant SAN handling, no Punycode validity check: raw
    U-labels in SAN dNSNames can satisfy validation. *)

val requests : t
(** Built on urllib3; inherits its SAN handling. *)

val httpclient : t
(** Case-insensitive matching; accepts syntactically Punycode labels
    without IDNA validation. *)

val all : t list
