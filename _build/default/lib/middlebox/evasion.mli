(** The §6.2 findings as executable experiments: [P2.1] entity-parsing
    divergence across detection tools, [P2.2] lax SAN format checks in
    client implementations. *)

type finding = { id : string; description : string; demonstrated : bool }

val duplicated_cn_divergence : unit -> finding
(** Snort takes the first CN, Zeek the last: a certificate with a benign
    first CN and malicious last CN splits the engines ([P2.1]). *)

val non_ia5_san_skip : unit -> finding
(** Zeek drops non-IA5 SAN entries, so a malicious U-label SAN escapes
    its logs while other engines still see it ([P2.1]). *)

val case_sensitive_bypass : unit -> finding
(** Suricata's case-sensitive subject match is bypassed by a case
    variant that Snort (case-insensitive) still catches ([P2.1]). *)

val ulabel_san_client_acceptance : unit -> (string * bool) list
(** For each client model: does a certificate whose SAN carries a raw
    U-label validate against the U-label hostname ([P2.2])?  urllib3 and
    requests accept; libcurl does not. *)

val malformed_punycode_client_acceptance : unit -> (string * bool) list
(** Does a syntactically-Punycode but undecodable SAN label validate? *)

val all_findings : unit -> finding list

val render : Format.formatter -> unit
