type buffer = Tls_subject | Tls_sni

type matcher = { buffer : buffer; content : string; nocase : bool }

type t = { msg : string; sid : int; matchers : matcher list }

(* Split the option block "(k:v; k; ...)" into trimmed entries,
   respecting quoted strings. *)
let split_options body =
  let parts = ref [] and buf = Buffer.create 32 in
  let in_quotes = ref false in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_quotes := not !in_quotes;
        Buffer.add_char buf c
      end
      else if c = ';' && not !in_quotes then begin
        parts := String.trim (Buffer.contents buf) :: !parts;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    body;
  let last = String.trim (Buffer.contents buf) in
  if last <> "" then parts := last :: !parts;
  List.rev (List.filter (fun p -> p <> "") !parts)

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then Ok (String.sub s 1 (n - 2))
  else Error (Printf.sprintf "expected a quoted string, got %S" s)

let parse line =
  let line = String.trim line in
  match (String.index_opt line '(', String.rindex_opt line ')') with
  | Some lp, Some rp when lp < rp -> (
      let header = String.trim (String.sub line 0 lp) in
      let tokens =
        String.split_on_char ' ' header |> List.filter (fun t -> t <> "")
      in
      match tokens with
      | "alert" :: "tls" :: _ -> (
          let body = String.sub line (lp + 1) (rp - lp - 1) in
          let options = split_options body in
          let msg = ref "" and sid = ref 0 in
          let matchers = ref [] in
          let current_buffer = ref None in
          let error = ref None in
          List.iter
            (fun opt ->
              if !error <> None then ()
              else
                match String.index_opt opt ':' with
                | Some i -> (
                    let key = String.trim (String.sub opt 0 i) in
                    let value =
                      String.trim (String.sub opt (i + 1) (String.length opt - i - 1))
                    in
                    match key with
                    | "msg" -> (
                        match unquote value with
                        | Ok m -> msg := m
                        | Error e -> error := Some e)
                    | "sid" -> (
                        match int_of_string_opt value with
                        | Some n -> sid := n
                        | None -> error := Some ("bad sid " ^ value))
                    | "content" -> (
                        match (unquote value, !current_buffer) with
                        | Ok c, Some buffer ->
                            matchers := { buffer; content = c; nocase = false } :: !matchers
                        | Ok _, None ->
                            error := Some "content without a preceding buffer keyword"
                        | Error e, _ -> error := Some e)
                    | other -> error := Some ("unknown option " ^ other))
                | None -> (
                    match opt with
                    | "tls.subject" -> current_buffer := Some Tls_subject
                    | "tls.sni" -> current_buffer := Some Tls_sni
                    | "nocase" -> (
                        match !matchers with
                        | m :: rest -> matchers := { m with nocase = true } :: rest
                        | [] -> error := Some "nocase without a content")
                    | other -> error := Some ("unknown keyword " ^ other)))
            options;
          match !error with
          | Some e -> Error e
          | None ->
              if !matchers = [] then Error "rule has no content matchers"
              else Ok { msg = !msg; sid = !sid; matchers = List.rev !matchers })
      | _ -> Error "rule must start with 'alert tls'")
  | _ -> Error "missing option block"

(* Suricata renders the subject as comma-space-joined short-name pairs
   in encoding order. *)
let subject_buffer cert =
  let atvs = X509.Dn.all_atvs cert.X509.Certificate.tbs.X509.Certificate.subject in
  String.concat ", "
    (List.map
       (fun (atv : X509.Dn.atv) ->
         let label =
           match X509.Attr.short_name atv.X509.Dn.typ with
           | Some s -> s
           | None -> X509.Attr.name atv.X509.Dn.typ
         in
         label ^ "=" ^ X509.Dn.atv_text atv)
       atvs)

let contains ~nocase hay needle =
  let hay = if nocase then String.lowercase_ascii hay else hay in
  let needle = if nocase then String.lowercase_ascii needle else needle in
  let hn = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let matches rule ~client_flow ~server_flow =
  let subject =
    match Tlswire.Wire.server_certificates server_flow with
    | cert :: _ -> subject_buffer cert
    | [] -> ""
  in
  let sni = Option.value ~default:"" (Tlswire.Wire.sni_of_flow client_flow) in
  List.for_all
    (fun m ->
      let hay = match m.buffer with Tls_subject -> subject | Tls_sni -> sni in
      contains ~nocase:m.nocase hay m.content)
    rule.matchers

let eval rules ~client_flow ~server_flow =
  List.filter (fun r -> matches r ~client_flow ~server_flow) rules
