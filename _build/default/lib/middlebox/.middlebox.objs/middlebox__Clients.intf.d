lib/middlebox/clients.mli: X509
