lib/middlebox/evasion.mli: Format
