lib/middlebox/clients.ml: Char Format Idna List String Unicode X509
