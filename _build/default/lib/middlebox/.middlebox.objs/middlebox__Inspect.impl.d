lib/middlebox/inspect.ml: Engine List Option Tlswire Ucrypto
