lib/middlebox/rules.mli: Tlswire X509
