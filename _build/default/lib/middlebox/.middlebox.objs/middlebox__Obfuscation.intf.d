lib/middlebox/obfuscation.mli: Format Ucrypto
