lib/middlebox/rules.ml: Buffer List Option Printf String Tlswire X509
