lib/middlebox/inspect.mli: Engine Tlswire X509
