lib/middlebox/engine.ml: Char List String X509
