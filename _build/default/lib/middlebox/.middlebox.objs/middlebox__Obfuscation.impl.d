lib/middlebox/obfuscation.ml: Array Asn1 Char Engine Format List String Ucrypto Unicode X509
