lib/middlebox/engine.mli: X509
