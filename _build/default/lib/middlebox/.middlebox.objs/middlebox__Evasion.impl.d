lib/middlebox/evasion.ml: Asn1 Clients Engine Format List Result X509
