(** Distinguished names: RDNSequence structure, construction, DER
    mapping, and the three standard string representations (RFC 1779,
    RFC 2253, RFC 4514) with their distinct escaping rules.

    Attribute values keep their raw content octets and declared ASN.1
    string type, so noncompliant encodings survive round trips and are
    visible to the linter and the parser models. *)

type atv = { typ : Attr.t; value : Asn1.Value.t }
(** One AttributeTypeAndValue.  [value] is normally [Str (st, raw)]. *)

type rdn = atv list
(** A RelativeDistinguishedName: a SET of one or more ATVs. *)

type t = rdn list
(** An RDNSequence, in encoding order. *)

val empty : t

val atv : ?st:Asn1.Str_type.t -> Attr.t -> string -> atv
(** [atv a text] builds an ATV from UTF-8 [text].  Default string type:
    [PrintableString] when the text fits its repertoire, otherwise
    [UTF8String] — the normal CA behaviour. *)

val atv_raw : st:Asn1.Str_type.t -> Attr.t -> string -> atv
(** [atv_raw ~st a bytes] stores [bytes] verbatim under the declared
    type — the vehicle for noncompliant values. *)

val single : atv list -> t
(** [single atvs] builds a DN with one single-ATV RDN per attribute (the
    common layout). *)

val of_list : (Attr.t * string) list -> t
(** [of_list pairs] is [single (List.map (fun (a,v) -> atv a v) pairs)]. *)

val atv_text : atv -> string
(** [atv_text v] decodes the value with its declared type's standard
    encoding, replacing undecodable bytes with U+FFFD; non-string
    values render via {!Asn1.Value.pp}. *)

val atv_cps : atv -> Unicode.Cp.t array option
(** [atv_cps v] is the strict standard decoding, or [None] when the
    bytes are invalid for the declared type. *)

val all_atvs : t -> atv list
(** [all_atvs dn] flattens in encoding order. *)

val get : t -> Attr.t -> atv list
(** [get dn a] is every ATV of type [a], in order. *)

val get_text : t -> Attr.t -> string list
(** [get_text dn a] is [List.map atv_text (get dn a)]. *)

val first : t -> Attr.t -> atv option
val last : t -> Attr.t -> atv option

val to_value : t -> Asn1.Value.t
(** [to_value dn] is the RDNSequence as an ASN.1 value (SETs emitted in
    the given order). *)

val of_value : Asn1.Value.t -> (t, string) result
(** [of_value v] parses an RDNSequence value tree. *)

val encode : t -> string
val decode : string -> (t, string) result

type flavor = Rfc1779 | Rfc2253 | Rfc4514

val to_string : ?flavor:flavor -> t -> string
(** [to_string dn] renders per the chosen RFC (default [Rfc4514]):
    RFC 2253/4514 render in reverse order with [,] separators and
    backslash escaping; RFC 1779 uses [", "] separators and quoting.
    These are the *reference* implementations the parser models are
    diffed against. *)

val of_string : string -> (t, string) result
(** [of_string s] parses an RFC 4514 string representation back into a
    DN: comma-separated RDNs in reverse order, [+]-joined ATVs,
    attribute short names or dotted OIDs, backslash escapes (special
    characters and [\XX] hex pairs) and [#hex] values.  Values become
    UTF8String ATVs.  This is the inverse of {!to_string} for the
    [Rfc4514] flavor (up to string-type normalization). *)

val escape_value : flavor -> string -> string
(** [escape_value flavor text] is the escaped (RFC 2253/4514) or quoted
    (RFC 1779) attribute-value form used by {!to_string} — exposed so
    the differential harness can check library escaping against the
    reference. *)

val equal_strict : t -> t -> bool
(** [equal_strict a b] compares encoded bytes. *)

val equal_normalized : t -> t -> bool
(** [equal_normalized a b] implements the RFC 5280 §7.1 comparison
    model: decode values, NFC-normalize, case-fold ASCII, collapse
    internal whitespace, then compare structurally. *)
