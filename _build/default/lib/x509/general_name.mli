(** GeneralName (RFC 5280 §4.2.1.6): the CHOICE behind SAN, IAN, AIA,
    SIA, and CRLDistributionPoints.

    String payloads are raw bytes as carried in the certificate —
    DNSNames with embedded NULs, spaces, or non-IA5 bytes survive
    untouched for the linter and parser models to judge. *)

type t =
  | Other_name of Asn1.Oid.t * string  (** [0] type-id + raw DER value *)
  | Rfc822_name of string              (** [1] email, raw IA5String bytes *)
  | Dns_name of string                 (** [2] raw IA5String bytes *)
  | Directory_name of Dn.t             (** [4] *)
  | Uri of string                      (** [6] raw IA5String bytes *)
  | Ip_address of string               (** [7] 4 or 16 raw octets *)
  | Registered_id of Asn1.Oid.t        (** [8] *)

val to_value : t -> Asn1.Value.t
val of_value : Asn1.Value.t -> (t, string) result

val kind : t -> string
(** [kind gn] is the choice name, e.g. ["dNSName"]. *)

val text : t -> string
(** [text gn] is a best-effort human-readable payload (IP addresses in
    dotted/hex form, directory names via {!Dn.to_string}). *)

val dns_name : string -> t
(** [dns_name s] builds a dNSName carrying [s] verbatim. *)
