(** A compact OCSP model (RFC 6960, reduced): CertID-addressed status
    queries against a responder keyed by the issuing CA.  Together with
    {!Crl} this completes the two AIA revocation paths; the paper's
    remediation discussion (§5.2) notes OCSP being phased out in favour
    of short-lived certificates, which {!Responder.set_short_lived}
    models by refusing to answer. *)

type cert_id = {
  issuer_name_hash : string;  (** SHA-256 of the issuer DN encoding *)
  issuer_key_hash : string;   (** SHA-256 of the issuer SPKI key bytes *)
  serial : string;
}

val cert_id : issuer_spki:Certificate.spki -> Certificate.t -> cert_id
(** Build the CertID for a certificate under its issuer. *)

val cert_id_to_der : cert_id -> string
val cert_id_of_der : string -> (cert_id, string) result

type cert_status = Good | Revoked of Asn1.Time.t | Unknown

type single_response = {
  id : cert_id;
  status : cert_status;
  this_update : Asn1.Time.t;
}

module Responder : sig
  type t

  val create : issuer_dn:Dn.t -> Certificate.keypair -> t

  val revoke : t -> serial:string -> at:Asn1.Time.t -> unit

  val set_short_lived : t -> bool -> unit
  (** When set, the responder stops answering (the post-OCSP world of
      Ballot SC063 / short-lived certificates). *)

  val query :
    t -> now:Asn1.Time.t -> cert_id -> (single_response * string, string) result
  (** [query r ~now id] is the response and its signature over the DER
      of the single response. *)

  val verify :
    issuer_spki:Certificate.spki ->
    single_response -> signature:string -> bool
end

val check :
  responder:Responder.t ->
  issuer_spki:Certificate.spki ->
  now:Asn1.Time.t ->
  Certificate.t ->
  cert_status option
(** End-to-end client check: build the CertID, query, verify the
    response signature, return the status ([None] when the responder is
    silent or the signature fails — soft-fail territory). *)
