let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let base64_encode s =
  let n = String.length s in
  let buf = Buffer.create ((n + 2) / 3 * 4) in
  let i = ref 0 in
  while !i + 2 < n do
    let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] and b2 = Char.code s.[!i + 2] in
    Buffer.add_char buf alphabet.[b0 lsr 2];
    Buffer.add_char buf alphabet.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char buf alphabet.[((b1 land 0xF) lsl 2) lor (b2 lsr 6)];
    Buffer.add_char buf alphabet.[b2 land 0x3F];
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let b0 = Char.code s.[!i] in
      Buffer.add_char buf alphabet.[b0 lsr 2];
      Buffer.add_char buf alphabet.[(b0 land 3) lsl 4];
      Buffer.add_string buf "=="
  | 2 ->
      let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] in
      Buffer.add_char buf alphabet.[b0 lsr 2];
      Buffer.add_char buf alphabet.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
      Buffer.add_char buf alphabet.[(b1 land 0xF) lsl 2];
      Buffer.add_char buf '='
  | _ -> ());
  Buffer.contents buf

let decode_char c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - Char.code 'A')
  | 'a' .. 'z' -> Some (Char.code c - Char.code 'a' + 26)
  | '0' .. '9' -> Some (Char.code c - Char.code '0' + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let base64_decode s =
  let buf = Buffer.create (String.length s * 3 / 4) in
  let quad = Array.make 4 0 in
  let qlen = ref 0 and pad = ref 0 in
  let error = ref None in
  String.iter
    (fun c ->
      if !error <> None then ()
      else if c = '\n' || c = '\r' || c = ' ' || c = '\t' then ()
      else if c = '=' then incr pad
      else if !pad > 0 then error := Some "data after padding"
      else
        match decode_char c with
        | None -> error := Some (Printf.sprintf "invalid base64 character %C" c)
        | Some v ->
            quad.(!qlen) <- v;
            incr qlen;
            if !qlen = 4 then begin
              Buffer.add_char buf (Char.chr ((quad.(0) lsl 2) lor (quad.(1) lsr 4)));
              Buffer.add_char buf
                (Char.chr (((quad.(1) land 0xF) lsl 4) lor (quad.(2) lsr 2)));
              Buffer.add_char buf (Char.chr (((quad.(2) land 3) lsl 6) lor quad.(3)));
              qlen := 0
            end)
    s;
  match !error with
  | Some m -> Error m
  | None -> (
      match (!qlen, !pad) with
      | 0, _ -> Ok (Buffer.contents buf)
      | 2, 2 ->
          Buffer.add_char buf (Char.chr ((quad.(0) lsl 2) lor (quad.(1) lsr 4)));
          Ok (Buffer.contents buf)
      | 3, 1 ->
          Buffer.add_char buf (Char.chr ((quad.(0) lsl 2) lor (quad.(1) lsr 4)));
          Buffer.add_char buf (Char.chr (((quad.(1) land 0xF) lsl 4) lor (quad.(2) lsr 2)));
          Ok (Buffer.contents buf)
      | _ -> Error "truncated base64 input")

let encode ~label der =
  let b64 = base64_encode der in
  let buf = Buffer.create (String.length b64 + 64) in
  Buffer.add_string buf ("-----BEGIN " ^ label ^ "-----\n");
  let n = String.length b64 in
  let i = ref 0 in
  while !i < n do
    let len = min 64 (n - !i) in
    Buffer.add_string buf (String.sub b64 !i len);
    Buffer.add_char buf '\n';
    i := !i + len
  done;
  Buffer.add_string buf ("-----END " ^ label ^ "-----\n");
  Buffer.contents buf

let decode pem =
  let lines = String.split_on_char '\n' pem in
  let trim = String.trim in
  let rec find_begin = function
    | [] -> Error "no BEGIN line"
    | l :: rest ->
        let l = trim l in
        if String.length l > 16
           && String.sub l 0 11 = "-----BEGIN "
           && String.sub l (String.length l - 5) 5 = "-----"
        then Ok (String.sub l 11 (String.length l - 16), rest)
        else find_begin rest
  in
  match find_begin lines with
  | Error m -> Error m
  | Ok (label, rest) ->
      let buf = Buffer.create 1024 in
      let rec collect = function
        | [] -> Error "no END line"
        | l :: rest ->
            let l = trim l in
            if String.length l >= 9 && String.sub l 0 9 = "-----END " then Ok ()
            else begin
              Buffer.add_string buf l;
              collect rest
            end
      in
      (match collect rest with
      | Error m -> Error m
      | Ok () -> (
          match base64_decode (Buffer.contents buf) with
          | Ok der -> Ok (label, der)
          | Error m -> Error m))

let encode_certificate der = encode ~label:"CERTIFICATE" der

let decode_certificate pem =
  match decode pem with
  | Ok ("CERTIFICATE", der) -> Ok der
  | Ok (label, _) -> Error (Printf.sprintf "unexpected PEM label %S" label)
  | Error m -> Error m
