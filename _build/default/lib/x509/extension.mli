(** X.509 v3 extensions: the generic envelope plus typed codecs for the
    extensions the paper's experiments exercise (SAN, IAN, AIA, SIA,
    CRLDistributionPoints, CertificatePolicies, BasicConstraints,
    KeyUsage, and the CT poison/SCT extensions). *)

type t = { oid : Asn1.Oid.t; critical : bool; value : string }
(** [value] is the DER inside the extnValue OCTET STRING. *)

(** Well-known extension OIDs. *)
module Oids : sig
  val subject_alt_name : Asn1.Oid.t
  val issuer_alt_name : Asn1.Oid.t
  val crl_distribution_points : Asn1.Oid.t
  val certificate_policies : Asn1.Oid.t
  val basic_constraints : Asn1.Oid.t
  val key_usage : Asn1.Oid.t
  val ext_key_usage : Asn1.Oid.t
  val authority_info_access : Asn1.Oid.t
  val subject_info_access : Asn1.Oid.t
  val name_constraints : Asn1.Oid.t
  val ct_poison : Asn1.Oid.t
  val sct_list : Asn1.Oid.t

  val ocsp : Asn1.Oid.t
  (** AIA accessMethod id-ad-ocsp. *)

  val ca_issuers : Asn1.Oid.t
  (** AIA accessMethod id-ad-caIssuers. *)
end

val find : t list -> Asn1.Oid.t -> t option

(** {1 Typed constructors} *)

val subject_alt_name : ?critical:bool -> General_name.t list -> t
val issuer_alt_name : General_name.t list -> t
val crl_distribution_points : General_name.t list -> t
(** Each GeneralName becomes one DistributionPoint with a fullName. *)

val authority_info_access : (Asn1.Oid.t * General_name.t) list -> t
val subject_info_access : (Asn1.Oid.t * General_name.t) list -> t

type user_notice = { explicit_text : Asn1.Value.t option }
type policy = { policy_oid : Asn1.Oid.t; notice : user_notice option }

val certificate_policies : policy list -> t
val basic_constraints : ?ca:bool -> ?path_len:int -> unit -> t
val key_usage : int -> t
(** [key_usage bits] packs the KeyUsage bit string (bit 0 is
    digitalSignature). *)

val name_constraints :
  ?permitted:General_name.t list -> ?excluded:General_name.t list -> unit -> t
(** NameConstraints (RFC 5280 §4.2.1.10) with dNSName subtrees — the
    check that the paper's subfield-forgery threat (§5.2, CVE-2021-44533)
    bypasses in string-based implementations. *)

val parse_name_constraints :
  string -> (General_name.t list * General_name.t list, string) result
(** [(permitted, excluded)] subtree bases. *)

val ct_poison : t
(** The critical precertificate poison extension (RFC 6962 §3.1). *)

val sct_list : string -> t
(** [sct_list payload] embeds an opaque SCT list. *)

(** {1 Typed parsers} *)

val parse_general_names : string -> (General_name.t list, string) result
(** [parse_general_names der] parses a GeneralNames SEQUENCE (SAN/IAN
    layout). *)

val parse_crl_distribution_points : string -> (General_name.t list, string) result
val parse_info_access : string -> ((Asn1.Oid.t * General_name.t) list, string) result
val parse_certificate_policies : string -> (policy list, string) result

val to_value : t -> Asn1.Value.t
val of_value : Asn1.Value.t -> (t, string) result
