(** Reference-identity verification (RFC 6125 / RFC 9525): matching a
    hostname against a certificate's presented identifiers, with the
    IDN conversion step whose absence the paper's [P2.2] clients get
    wrong. *)

type policy = {
  allow_wildcards : bool;    (** sole "*" as the left-most label *)
  require_ldh_san : bool;    (** ignore SAN entries that are not LDH *)
  convert_idn : bool;        (** U-label references become A-labels *)
  cn_fallback : bool;        (** deprecated CN matching when SAN absent *)
  c_string_semantics : bool;
      (** truncate presented identifiers at the first NUL before
          matching — the historic null-prefix bypass the paper's T1
          findings reference (13.9K certs with NUL in Subject
          attributes). *)
}

val strict : policy
(** RFC 9525 behaviour: wildcards allowed, LDH-only SANs, IDN
    conversion, no CN fallback. *)

val legacy : policy
(** Pre-9525 behaviour with CN fallback — what Snort/cURL/Postfix-style
    consumers still do (§4.4 [F2]). *)

val vulnerable_c_client : policy
(** [legacy] plus C-string truncation: the null-prefix-attack victim. *)

type failure =
  | No_presented_identifier
  | Mismatch of string list  (** the identifiers that were considered *)
  | Invalid_reference of string

val pp_failure : Format.formatter -> failure -> unit

val verify :
  ?policy:policy -> reference:string -> Certificate.t -> (unit, failure) result
(** [verify ~reference cert] checks the reference identity against the
    certificate's SAN dNSNames (and optionally the CN). *)
