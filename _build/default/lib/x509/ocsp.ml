type cert_id = {
  issuer_name_hash : string;
  issuer_key_hash : string;
  serial : string;
}

let cert_id ~issuer_spki cert =
  {
    issuer_name_hash =
      Ucrypto.Sha256.digest (Dn.encode cert.Certificate.tbs.Certificate.issuer);
    issuer_key_hash = Ucrypto.Sha256.digest issuer_spki.Certificate.key;
    serial = cert.Certificate.tbs.Certificate.serial;
  }

let cert_id_to_der id =
  Asn1.Value.encode
    (Asn1.Value.Sequence
       [ Asn1.Value.Octet_string id.issuer_name_hash;
         Asn1.Value.Octet_string id.issuer_key_hash;
         Asn1.Value.Integer id.serial ])

let cert_id_of_der der =
  match Asn1.Value.decode der with
  | Ok
      (Asn1.Value.Sequence
        [ Asn1.Value.Octet_string issuer_name_hash;
          Asn1.Value.Octet_string issuer_key_hash; Asn1.Value.Integer serial ]) ->
      Ok { issuer_name_hash; issuer_key_hash; serial }
  | Ok _ -> Error "CertID must be SEQUENCE { OCTET, OCTET, INTEGER }"
  | Error e -> Error (Format.asprintf "%a" Asn1.Value.pp_error e)

type cert_status = Good | Revoked of Asn1.Time.t | Unknown

type single_response = {
  id : cert_id;
  status : cert_status;
  this_update : Asn1.Time.t;
}

let response_der r =
  let status_field =
    match r.status with
    | Good -> Asn1.Value.Implicit (0, "")
    | Revoked at -> Asn1.Value.Implicit (1, Asn1.Time.to_generalized at)
    | Unknown -> Asn1.Value.Implicit (2, "")
  in
  Asn1.Value.encode
    (Asn1.Value.Sequence
       [ Asn1.Value.Octet_string (cert_id_to_der r.id); status_field;
         Asn1.Value.Generalized_time (Asn1.Time.to_generalized r.this_update) ])

module Responder = struct
  type t = {
    issuer_dn : Dn.t;
    keypair : Certificate.keypair;
    revoked : (string, Asn1.Time.t) Hashtbl.t;
    mutable short_lived : bool;
  }

  let create ~issuer_dn keypair =
    { issuer_dn; keypair; revoked = Hashtbl.create 8; short_lived = false }

  let revoke t ~serial ~at = Hashtbl.replace t.revoked serial at
  let set_short_lived t v = t.short_lived <- v

  let query t ~now id =
    if t.short_lived then Error "responder discontinued (short-lived certificates)"
    else begin
      let expected_name_hash = Ucrypto.Sha256.digest (Dn.encode t.issuer_dn) in
      let expected_key_hash =
        Ucrypto.Sha256.digest (Certificate.keypair_spki t.keypair).Certificate.key
      in
      let status =
        if
          not
            (String.equal id.issuer_name_hash expected_name_hash
            && String.equal id.issuer_key_hash expected_key_hash)
        then Unknown
        else
          match Hashtbl.find_opt t.revoked id.serial with
          | Some at -> Revoked at
          | None -> Good
      in
      let response = { id; status; this_update = now } in
      let signature =
        Certificate.raw_signature t.keypair (response_der response)
      in
      Ok (response, signature)
    end

  let verify ~issuer_spki response ~signature =
    Certificate.verify_raw ~issuer_spki ~message:(response_der response) ~signature
end

let check ~responder ~issuer_spki ~now cert =
  let id = cert_id ~issuer_spki cert in
  match Responder.query responder ~now id with
  | Error _ -> None
  | Ok (response, signature) ->
      if Responder.verify ~issuer_spki response ~signature then Some response.status
      else None
