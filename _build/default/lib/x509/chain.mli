(** Certification-path building and verification (RFC 5280 §6,
    reduced to the checks the paper's experiments exercise): issuer/
    subject name chaining with the §7.1 comparison rules, signature
    verification at each hop, validity windows, and basicConstraints on
    intermediates. *)

type anchor = { dn : Dn.t; spki : Certificate.spki }
(** A trust anchor: distinguished name plus key material. *)

type failure =
  | No_issuer_found of Dn.t     (** nothing in the pool chains further *)
  | Signature_invalid of int    (** depth (0 = leaf) *)
  | Certificate_expired of int
  | Issuer_not_ca of int        (** intermediate without CA basicConstraints *)
  | Name_constraint_violated of string
      (** a leaf SAN dNSName outside an issuer's NameConstraints *)
  | Path_too_long

val pp_failure : Format.formatter -> failure -> unit

val anchor_of_keypair : Dn.t -> Certificate.keypair -> anchor

val is_ca : Certificate.t -> bool
(** BasicConstraints cA flag present and set. *)

val verify :
  at:Asn1.Time.t ->
  anchors:anchor list ->
  intermediates:Certificate.t list ->
  Certificate.t ->
  (Certificate.t list, failure) result
(** [verify ~at ~anchors ~intermediates leaf] builds a path from [leaf]
    through [intermediates] to an anchor, verifying each hop; on
    success returns the chain (leaf first, intermediates following).
    Name chaining uses {!Dn.equal_normalized} — the comparison model
    whose absence the paper's T2 findings exploit. *)
