(** Certificate revocation lists (RFC 5280 §5): the substrate behind
    the paper's CRL-spoofing threat (§5.2 impact 2), where a lenient
    parser rewrites a CRLDistributionPoints location and a strict
    revocation-checking client silently fetches the wrong list. *)

type revoked_entry = {
  serial : string;             (** INTEGER content octets *)
  revocation_date : Asn1.Time.t;
}

type tbs = {
  issuer : Dn.t;
  this_update : Asn1.Time.t;
  next_update : Asn1.Time.t option;
  revoked : revoked_entry list;
}

type t = {
  tbs : tbs;
  tbs_der : string;
  signature : string;
  der : string;
}

val make :
  issuer:Dn.t ->
  this_update:Asn1.Time.t ->
  ?next_update:Asn1.Time.t ->
  revoked:revoked_entry list ->
  Certificate.keypair ->
  t
(** [make ~issuer ~this_update ~revoked key] builds and signs a CRL. *)

val parse : string -> (t, string) result
val to_pem : t -> string
val of_pem : string -> (t, string) result

val verify : issuer_spki:Certificate.spki -> t -> bool

val is_revoked : t -> string -> bool
(** [is_revoked crl serial] checks membership by serial content
    octets. *)

(** {1 Distribution and checking} *)

module Store : sig
  (** An in-memory CRL distribution substrate: URLs map to published
      CRLs, standing in for the HTTP fetch of a real deployment. *)

  type store

  val create : unit -> store
  val publish : store -> url:string -> t -> unit
  val fetch : store -> string -> t option
end

type status = Good | Revoked | Unavailable of string

val check_revocation :
  ?rewrite_location:(string -> string) ->
  store:Store.store ->
  issuer_spki:Certificate.spki ->
  Certificate.t ->
  status
(** [check_revocation ~store ~issuer_spki cert] extracts the first
    CRLDP URI, fetches, verifies the CRL signature, and looks the
    certificate's serial up.  [rewrite_location] models a lenient
    parser's transformation of the location string (e.g. PyOpenSSL's
    control-character-to-dot rewrite): when the rewritten URL misses
    the store, revocation silently degrades to [Unavailable]. *)
