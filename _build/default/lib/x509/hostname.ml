type policy = {
  allow_wildcards : bool;
  require_ldh_san : bool;
  convert_idn : bool;
  cn_fallback : bool;
  c_string_semantics : bool;
}

let strict =
  { allow_wildcards = true; require_ldh_san = true; convert_idn = true;
    cn_fallback = false; c_string_semantics = false }

let legacy =
  { allow_wildcards = true; require_ldh_san = false; convert_idn = true;
    cn_fallback = true; c_string_semantics = false }

let vulnerable_c_client = { legacy with c_string_semantics = true }

let truncate_at_nul s =
  match String.index_opt s '\x00' with
  | Some i -> String.sub s 0 i
  | None -> s

type failure =
  | No_presented_identifier
  | Mismatch of string list
  | Invalid_reference of string

let pp_failure ppf = function
  | No_presented_identifier -> Format.fprintf ppf "no presented identifier"
  | Mismatch considered ->
      Format.fprintf ppf "no identifier matched (considered: %s)"
        (String.concat ", " considered)
  | Invalid_reference m -> Format.fprintf ppf "invalid reference identity: %s" m

let fold = String.lowercase_ascii

(* RFC 9525 §6.3: the wildcard must be the complete left-most label and
   match exactly one label. *)
let label_match ~allow_wildcards pattern host =
  let p = Idna.Dns.split_labels pattern and h = Idna.Dns.split_labels host in
  match (p, h) with
  | "*" :: prest, _ :: hrest when allow_wildcards -> prest <> [] && prest = hrest
  | _ -> p = h

let verify ?(policy = strict) ~reference cert =
  let reference_ascii =
    if policy.convert_idn && String.exists (fun c -> Char.code c >= 0x80) reference
    then
      match Idna.to_ascii reference with
      | Ok a -> Ok a
      | Error errs ->
          Error
            (Invalid_reference
               (String.concat "; "
                  (List.map
                     (fun (l, issues) ->
                       Printf.sprintf "%s: %s" l
                         (String.concat ","
                            (List.map (Format.asprintf "%a" Idna.pp_issue) issues)))
                     errs)))
    else Ok reference
  in
  match reference_ascii with
  | Error _ as e -> e
  | Ok reference -> (
      let sans = Certificate.san_dns_names cert in
      let sans =
        if policy.require_ldh_san then List.filter Idna.Dns.is_ldh_name sans else sans
      in
      let candidates =
        if sans <> [] then sans
        else if policy.cn_fallback then
          match Certificate.subject_cn cert with Some cn -> [ cn ] | None -> []
        else []
      in
      let candidates =
        if policy.c_string_semantics then List.map truncate_at_nul candidates
        else candidates
      in
      match candidates with
      | [] -> Error No_presented_identifier
      | _ ->
          if
            List.exists
              (fun c ->
                label_match ~allow_wildcards:policy.allow_wildcards (fold c)
                  (fold reference))
              candidates
          then Ok ()
          else Error (Mismatch candidates))
