type anchor = { dn : Dn.t; spki : Certificate.spki }

type failure =
  | No_issuer_found of Dn.t
  | Signature_invalid of int
  | Certificate_expired of int
  | Issuer_not_ca of int
  | Name_constraint_violated of string
  | Path_too_long

let pp_failure ppf = function
  | No_issuer_found dn -> Format.fprintf ppf "no issuer found for %s" (Dn.to_string dn)
  | Signature_invalid d -> Format.fprintf ppf "signature invalid at depth %d" d
  | Certificate_expired d -> Format.fprintf ppf "certificate expired at depth %d" d
  | Issuer_not_ca d -> Format.fprintf ppf "issuer at depth %d is not a CA" d
  | Name_constraint_violated name ->
      Format.fprintf ppf "name %S violates the issuer's name constraints" name
  | Path_too_long -> Format.fprintf ppf "path exceeds maximum depth"

let anchor_of_keypair dn keypair = { dn; spki = Certificate.keypair_spki keypair }

let is_ca cert =
  match
    Extension.find cert.Certificate.tbs.Certificate.extensions
      Extension.Oids.basic_constraints
  with
  | None -> false
  | Some e -> (
      match Asn1.Value.decode e.Extension.value with
      | Ok (Asn1.Value.Sequence (Asn1.Value.Boolean ca :: _)) -> ca
      | Ok _ | Error _ -> false)

(* dNSName subtree matching per RFC 5280 §4.2.1.10: a name falls within
   a base when it equals the base or ends with "." ^ base. *)
let in_subtree ~base name =
  let base = String.lowercase_ascii base and name = String.lowercase_ascii name in
  String.equal name base
  ||
  let nb = String.length base and nn = String.length name in
  nn > nb + 1 && name.[nn - nb - 1] = '.' && String.sub name (nn - nb) nb = base

let constraint_violation issuer leaf_names =
  match
    Extension.find issuer.Certificate.tbs.Certificate.extensions
      Extension.Oids.name_constraints
  with
  | None -> None
  | Some e -> (
      match Extension.parse_name_constraints e.Extension.value with
      | Error _ -> None
      | Ok (permitted, excluded) ->
          let bases gns =
            List.filter_map
              (function General_name.Dns_name d -> Some d | _ -> None)
              gns
          in
          let permitted = bases permitted and excluded = bases excluded in
          List.find_opt
            (fun name ->
              List.exists (fun base -> in_subtree ~base name) excluded
              || (permitted <> []
                 && not (List.exists (fun base -> in_subtree ~base name) permitted)))
            leaf_names)

let max_depth = 8

let verify ~at ~anchors ~intermediates leaf =
  let leaf_names = Certificate.san_dns_names leaf in
  let rec extend current depth acc =
    if depth > max_depth then Error Path_too_long
    else if not (Certificate.is_valid_at current at) then
      Error (Certificate_expired depth)
    else begin
      let issuer_dn = current.Certificate.tbs.Certificate.issuer in
      (* Prefer a trust anchor over further intermediates. *)
      match
        List.find_opt (fun a -> Dn.equal_normalized a.dn issuer_dn) anchors
      with
      | Some anchor ->
          if Certificate.verify ~issuer_spki:anchor.spki current then
            Ok (List.rev (current :: acc))
          else Error (Signature_invalid depth)
      | None -> (
          let candidates =
            List.filter
              (fun c ->
                Dn.equal_normalized c.Certificate.tbs.Certificate.subject issuer_dn
                && c != current)
              intermediates
          in
          match
            List.find_opt
              (fun c ->
                Certificate.verify ~issuer_spki:(Certificate.self_spki c) current)
              candidates
          with
          | None -> Error (No_issuer_found issuer_dn)
          | Some issuer ->
              if not (is_ca issuer) then Error (Issuer_not_ca (depth + 1))
              else (
                match constraint_violation issuer leaf_names with
                | Some name -> Error (Name_constraint_violated name)
                | None -> extend issuer (depth + 1) (current :: acc)))
    end
  in
  extend leaf 0 []
