type atv = { typ : Attr.t; value : Asn1.Value.t }
type rdn = atv list
type t = rdn list

let empty : t = []

let default_string_type text =
  let cps = Unicode.Codec.cps_of_utf8 text in
  if Array.for_all Unicode.Props.is_printable_string_char cps then
    Asn1.Str_type.Printable_string
  else Asn1.Str_type.Utf8_string

let atv ?st typ text =
  let st = match st with Some st -> st | None -> default_string_type text in
  let cps = Unicode.Codec.cps_of_utf8 text in
  match Asn1.Str_type.encode_value st cps with
  | Ok raw -> { typ; value = Asn1.Value.Str (st, raw) }
  | Error m -> invalid_arg (Printf.sprintf "Dn.atv (%s): %s" (Attr.name typ) m)

let atv_raw ~st typ bytes = { typ; value = Asn1.Value.Str (st, bytes) }

let single atvs = List.map (fun a -> [ a ]) atvs
let of_list pairs = single (List.map (fun (a, v) -> atv a v) pairs)

let atv_text v =
  match v.value with
  | Asn1.Value.Str (st, raw) -> (
      match
        Unicode.Codec.decode ~policy:(Unicode.Codec.Replace 0xFFFD)
          (Asn1.Str_type.standard_encoding st) raw
      with
      | Ok cps -> Unicode.Codec.utf8_of_cps cps
      | Error _ -> Format.asprintf "%a" Asn1.Value.pp v.value)
  | other -> Format.asprintf "%a" Asn1.Value.pp other

let atv_cps v =
  match v.value with
  | Asn1.Value.Str (st, raw) -> (
      match Asn1.Str_type.decode_value st raw with Ok cps -> Some cps | Error _ -> None)
  | _ -> None

let all_atvs dn = List.concat dn
let get dn a = List.filter (fun v -> v.typ = a) (all_atvs dn)
let get_text dn a = List.map atv_text (get dn a)
let first dn a = match get dn a with [] -> None | v :: _ -> Some v
let last dn a = match List.rev (get dn a) with [] -> None | v :: _ -> Some v

let to_value dn =
  Asn1.Value.Sequence
    (List.map
       (fun rdn ->
         Asn1.Value.Set
           (List.map
              (fun v -> Asn1.Value.Sequence [ Asn1.Value.Oid (Attr.oid v.typ); v.value ])
              rdn))
       dn)

let of_value v =
  let open Asn1.Value in
  let atv_of = function
    | Sequence [ Oid oid; value ] -> Ok { typ = Attr.of_oid oid; value }
    | _ -> Error "AttributeTypeAndValue must be SEQUENCE { OID, value }"
  in
  let rdn_of = function
    | Set atvs ->
        List.fold_left
          (fun acc a ->
            match (acc, atv_of a) with
            | Ok l, Ok v -> Ok (v :: l)
            | (Error _ as e), _ -> e
            | _, (Error _ as e) -> (match e with Ok _ -> assert false | Error m -> Error m))
          (Ok []) atvs
        |> Result.map List.rev
    | _ -> Error "RDN must be a SET"
  in
  match v with
  | Sequence rdns ->
      List.fold_left
        (fun acc r ->
          match (acc, rdn_of r) with
          | Ok l, Ok rdn -> Ok (rdn :: l)
          | (Error _ as e), _ -> e
          | _, Error m -> Error m)
        (Ok []) rdns
      |> Result.map List.rev
  | _ -> Error "RDNSequence must be a SEQUENCE"

let encode dn = Asn1.Value.encode (to_value dn)

let decode bytes =
  match Asn1.Value.decode bytes with
  | Error e -> Error (Format.asprintf "%a" Asn1.Value.pp_error e)
  | Ok v -> of_value v

type flavor = Rfc1779 | Rfc2253 | Rfc4514

let attr_label flavor typ =
  match Attr.short_name typ with
  | Some s -> s
  | None -> (
      match flavor with
      | Rfc1779 -> "OID." ^ Asn1.Oid.to_string (Attr.oid typ)
      | Rfc2253 | Rfc4514 -> Asn1.Oid.to_string (Attr.oid typ))

(* RFC 2253 / RFC 4514 section 2.4 escaping.  4514 additionally
   requires escaping NUL; both escape the specials (comma, plus,
   double-quote, backslash, angle brackets, semicolon) and a leading
   hash or space and a trailing space. *)
let escape_value flavor text =
  let cps = Unicode.Codec.cps_of_utf8 text in
  let n = Array.length cps in
  let buf = Buffer.create (n * 2) in
  Array.iteri
    (fun i cp ->
      let escaped_special =
        match Char.chr (cp land 0x7F) with
        | ',' | '+' | '"' | '\\' | '<' | '>' | ';' when cp < 0x80 -> true
        | '#' when cp < 0x80 && i = 0 -> true
        | ' ' when cp < 0x80 && (i = 0 || i = n - 1) -> true
        | _ -> false
      in
      if escaped_special then begin
        Buffer.add_char buf '\\';
        Buffer.add_char buf (Char.chr cp)
      end
      else if cp = 0x00 then
        (* NUL: RFC 4514 mandates the \00 hex form; RFC 2253 predates
           the rule but hex pairs are legal there too. *)
        Buffer.add_string buf "\\00"
      else if cp < 0x20 || cp = 0x7F then
        (match flavor with
        | Rfc4514 -> Buffer.add_string buf (Printf.sprintf "\\%02X" cp)
        | Rfc2253 | Rfc1779 ->
            Buffer.add_string buf (Unicode.Codec.utf8_of_cps [| cp |]))
      else Buffer.add_string buf (Unicode.Codec.utf8_of_cps [| cp |]))
    cps;
  Buffer.contents buf

(* RFC 1779 quotes a value containing specials instead of escaping. *)
let quote_1779 text =
  let needs_quoting =
    String.exists (fun c -> String.contains ",=+<>#;\"\n\r" c) text
    || (text <> "" && (text.[0] = ' ' || text.[String.length text - 1] = ' '))
  in
  if needs_quoting then begin
    let buf = Buffer.create (String.length text + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      text;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else text

let escape_value_public flavor text =
  match flavor with
  | Rfc1779 -> quote_1779 text
  | Rfc2253 | Rfc4514 -> escape_value flavor text

let atv_to_string flavor v =
  let label = attr_label flavor v.typ in
  let text = atv_text v in
  match flavor with
  | Rfc1779 -> label ^ "=" ^ quote_1779 text
  | Rfc2253 | Rfc4514 -> label ^ "=" ^ escape_value flavor text

let rdn_to_string flavor rdn =
  String.concat "+" (List.map (atv_to_string flavor) rdn)

let to_string ?(flavor = Rfc4514) dn =
  match flavor with
  | Rfc1779 ->
      (* RFC 1779 renders most-significant first with ", " separators. *)
      String.concat ", " (List.map (rdn_to_string flavor) dn)
  | Rfc2253 | Rfc4514 ->
      (* Reverse (least significant RDN first). *)
      String.concat "," (List.rev_map (rdn_to_string flavor) dn)

let equal_strict a b = String.equal (encode a) (encode b)

(* Export under the interface name; the internal [escape_value] keeps
   its backslash-only signature. *)
let escape_value = escape_value_public

let normalize_text text =
  let nfc = Unicode.Normalize.utf8_to_nfc text in
  let cps = Unicode.Codec.cps_of_utf8 nfc in
  let folded = Array.map Unicode.Props.ascii_lowercase cps in
  (* Collapse runs of whitespace to a single space and trim. *)
  let out = ref [] and pending_space = ref false and started = ref false in
  Array.iter
    (fun cp ->
      if Unicode.Props.is_whitespace cp then begin
        if !started then pending_space := true
      end
      else begin
        if !pending_space then out := 0x20 :: !out;
        pending_space := false;
        started := true;
        out := cp :: !out
      end)
    folded;
  Unicode.Codec.utf8_of_cps (Array.of_list (List.rev !out))

(* --- RFC 4514 parsing -------------------------------------------------- *)

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Split on a separator, honouring backslash escapes. *)
let split_unescaped sep s =
  let parts = ref [] and buf = Buffer.create 32 in
  let escaped = ref false in
  String.iter
    (fun c ->
      if !escaped then begin
        Buffer.add_char buf '\\';
        Buffer.add_char buf c;
        escaped := false
      end
      else if c = '\\' then escaped := true
      else if c = sep then begin
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  if !escaped then Buffer.add_char buf '\\';
  parts := Buffer.contents buf :: !parts;
  List.rev !parts

let unescape_value s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '\\' then begin
      if i + 1 >= n then Error "dangling backslash"
      else
        match (hex_digit s.[i + 1], if i + 2 < n then hex_digit s.[i + 2] else None) with
        | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
            go (i + 3)
        | _ ->
            Buffer.add_char buf s.[i + 1];
            go (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let attr_of_label label =
  let label = String.trim label in
  let known =
    List.find_opt
      (fun a ->
        (match Attr.short_name a with
        | Some s -> String.uppercase_ascii s = String.uppercase_ascii label
        | None -> false)
        || String.lowercase_ascii (Attr.name a) = String.lowercase_ascii label)
      Attr.all_known
  in
  match known with
  | Some a -> Ok a
  | None -> (
      match Asn1.Oid.of_string label with
      | Some oid -> Ok (Attr.of_oid oid)
      | None -> Error (Printf.sprintf "unknown attribute type %S" label))

let parse_atv part =
  match String.index_opt part '=' with
  | None -> Error (Printf.sprintf "missing '=' in %S" part)
  | Some eq -> (
      let label = String.sub part 0 eq in
      let raw_value = String.sub part (eq + 1) (String.length part - eq - 1) in
      match attr_of_label label with
      | Error _ as e -> e
      | Ok typ ->
          if String.length raw_value > 0 && raw_value.[0] = '#' then begin
            (* #hexstring: raw BER of the value. *)
            let hex = String.sub raw_value 1 (String.length raw_value - 1) in
            if String.length hex mod 2 <> 0 then Error "odd-length hex value"
            else begin
              let bytes = Buffer.create (String.length hex / 2) in
              let ok = ref true in
              for i = 0 to (String.length hex / 2) - 1 do
                match (hex_digit hex.[2 * i], hex_digit hex.[(2 * i) + 1]) with
                | Some hi, Some lo -> Buffer.add_char bytes (Char.chr ((hi lsl 4) lor lo))
                | _ -> ok := false
              done;
              if not !ok then Error "invalid hex value"
              else
                match Asn1.Value.decode (Buffer.contents bytes) with
                | Ok v -> Ok { typ; value = v }
                | Error e -> Error (Format.asprintf "%a" Asn1.Value.pp_error e)
            end
          end
          else
            match unescape_value raw_value with
            | Error _ as e -> e
            | Ok text ->
                Ok { typ; value = Asn1.Value.Str (Asn1.Str_type.Utf8_string, text) })

let of_string s =
  if String.trim s = "" then Ok []
  else begin
    let rdn_strings = split_unescaped ',' s in
    let parse_rdn rdn_str =
      let atv_strings = split_unescaped '+' rdn_str in
      List.fold_left
        (fun acc part ->
          Result.bind acc (fun l ->
              Result.bind (parse_atv part) (fun atv -> Ok (atv :: l))))
        (Ok []) atv_strings
      |> Result.map List.rev
    in
    (* RFC 4514 lists RDNs most-recent-first; the fold's accumulation
       reverses the list, which is exactly encoding order. *)
    List.fold_left
      (fun acc rdn_str ->
        Result.bind acc (fun l ->
            Result.bind (parse_rdn rdn_str) (fun rdn -> Ok (rdn :: l))))
      (Ok []) rdn_strings
  end

let equal_normalized a b =
  let norm dn =
    List.map
      (fun rdn ->
        List.map (fun v -> (Attr.oid v.typ, normalize_text (atv_text v))) rdn
        |> List.sort Stdlib.compare)
      dn
  in
  norm a = norm b
