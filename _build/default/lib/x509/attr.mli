(** Distinguished-name attribute types: OIDs, names, and the per-type
    constraints of RFC 5280 Appendix A (upper bounds, permitted
    DirectoryString encodings). *)

type t =
  | Common_name
  | Surname
  | Serial_number
  | Country_name
  | Locality_name
  | State_or_province_name
  | Street_address
  | Organization_name
  | Organizational_unit_name
  | Title
  | Given_name
  | Business_category
  | Postal_code
  | Domain_component
  | Email_address
  | Jurisdiction_locality
  | Jurisdiction_state
  | Jurisdiction_country
  | Unknown of Asn1.Oid.t

val oid : t -> Asn1.Oid.t
val of_oid : Asn1.Oid.t -> t
val name : t -> string
(** [name a] is the long name, e.g. ["commonName"]. *)

val short_name : t -> string option
(** [short_name a] is the RFC 4514 short form (["CN"], ["O"], …) when
    one exists. *)

val upper_bound : t -> int option
(** [upper_bound a] is the RFC 5280 ub- length limit in characters, if
    specified (e.g. 64 for commonName, 2 for countryName). *)

val permitted_string_types : t -> Asn1.Str_type.t list
(** [permitted_string_types a] lists the encodings RFC 5280 / CA/B BR
    permit for this attribute's value (for DirectoryString attributes:
    PrintableString and UTF8String; countryName: PrintableString only;
    emailAddress and domainComponent: IA5String). *)

val is_directory_string : t -> bool
(** [is_directory_string a] — attribute value is a DirectoryString
    CHOICE. *)

val all_known : t list
(** Every concrete attribute type (no [Unknown]). *)
