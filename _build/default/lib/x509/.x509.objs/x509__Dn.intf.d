lib/x509/dn.mli: Asn1 Attr Unicode
