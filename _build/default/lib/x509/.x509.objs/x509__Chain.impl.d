lib/x509/chain.ml: Asn1 Certificate Dn Extension Format General_name List String
