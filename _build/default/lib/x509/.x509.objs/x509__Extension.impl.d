lib/x509/extension.ml: Asn1 Char Format General_name List Result String
