lib/x509/dn.ml: Array Asn1 Attr Buffer Char Format List Printf Result Stdlib String Unicode
