lib/x509/hostname.mli: Certificate Format
