lib/x509/attr.mli: Asn1
