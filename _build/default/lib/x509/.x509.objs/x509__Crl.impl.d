lib/x509/crl.ml: Asn1 Certificate Char Dn Extension Format Fun General_name Hashtbl List Pem Printf Result String
