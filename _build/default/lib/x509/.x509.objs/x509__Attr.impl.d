lib/x509/attr.ml: Asn1 List
