lib/x509/pem.mli:
