lib/x509/hostname.ml: Certificate Char Format Idna List Printf String
