lib/x509/ocsp.ml: Asn1 Certificate Dn Format Hashtbl String Ucrypto
