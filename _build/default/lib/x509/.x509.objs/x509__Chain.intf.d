lib/x509/chain.mli: Asn1 Certificate Dn Format
