lib/x509/ocsp.mli: Asn1 Certificate Dn
