lib/x509/general_name.ml: Asn1 Char Dn List Printf String
