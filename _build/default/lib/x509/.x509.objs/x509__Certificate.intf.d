lib/x509/certificate.mli: Asn1 Dn Extension Ucrypto
