lib/x509/extension.mli: Asn1 General_name
