lib/x509/pem.ml: Array Buffer Char Printf String
