lib/x509/crl.mli: Asn1 Certificate Dn
