lib/x509/general_name.mli: Asn1 Dn
