lib/x509/certificate.ml: Asn1 Attr Char Dn Extension Format General_name List Pem Result String Ucrypto
