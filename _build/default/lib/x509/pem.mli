(** PEM armoring (RFC 7468) with a from-scratch Base64 codec. *)

val base64_encode : string -> string
val base64_decode : string -> (string, string) result

val encode : label:string -> string -> string
(** [encode ~label der] wraps DER bytes in
    [-----BEGIN label-----] armor with 64-column Base64 lines. *)

val decode : string -> (string * string, string) result
(** [decode pem] is [(label, der)] for the first armored block. *)

val encode_certificate : string -> string
(** [encode_certificate der] uses the ["CERTIFICATE"] label. *)

val decode_certificate : string -> (string, string) result
