type revoked_entry = { serial : string; revocation_date : Asn1.Time.t }

type tbs = {
  issuer : Dn.t;
  this_update : Asn1.Time.t;
  next_update : Asn1.Time.t option;
  revoked : revoked_entry list;
}

type t = { tbs : tbs; tbs_der : string; signature : string; der : string }

let algorithm_identifier =
  Asn1.Value.Sequence [ Asn1.Value.Oid Certificate.Oids.mock_signature; Asn1.Value.Null ]

let entry_value e =
  Asn1.Value.Sequence
    [ Asn1.Value.Integer e.serial;
      Asn1.Value.Utc_time (Asn1.Time.to_utctime e.revocation_date) ]

let tbs_value tbs =
  let open Asn1.Value in
  Sequence
    ([ integer_of_int 1 (* v2 *); algorithm_identifier; Dn.to_value tbs.issuer;
       Utc_time (Asn1.Time.to_utctime tbs.this_update) ]
    @ (match tbs.next_update with
      | Some t -> [ Utc_time (Asn1.Time.to_utctime t) ]
      | None -> [])
    @
    if tbs.revoked = [] then []
    else [ Sequence (List.map entry_value tbs.revoked) ])

(* The keypair hides the signature scheme; CRLs sign their TBS bytes
   with the same primitive certificates use. *)
let make ~issuer ~this_update ?next_update ~revoked keypair =
  let tbs = { issuer; this_update; next_update; revoked } in
  let tbs_der = Asn1.Value.encode (tbs_value tbs) in
  let signature = Certificate.raw_signature keypair tbs_der in
  let der =
    Asn1.Writer.sequence
      [ tbs_der;
        Asn1.Value.encode algorithm_identifier;
        Asn1.Value.encode (Asn1.Value.Bit_string (0, signature)) ]
  in
  { tbs; tbs_der; signature; der }

let ( >>= ) = Result.bind

let parse_entry = function
  | Asn1.Value.Sequence (Asn1.Value.Integer serial :: Asn1.Value.Utc_time t :: _) ->
      (match Asn1.Time.of_utctime t with
      | Ok revocation_date -> Ok { serial; revocation_date }
      | Error m -> Error m)
  | _ -> Error "bad revokedCertificates entry"

let parse der =
  match Asn1.Value.decode der with
  | Error e -> Error (Format.asprintf "%a" Asn1.Value.pp_error e)
  | Ok (Asn1.Value.Sequence [ tbs_v; _alg; Asn1.Value.Bit_string (_, signature) ]) -> (
      (match tbs_v with
      | Asn1.Value.Sequence
          (Asn1.Value.Integer _ :: _alg2 :: issuer_v :: Asn1.Value.Utc_time this :: rest)
        ->
          Dn.of_value issuer_v >>= fun issuer ->
          (match Asn1.Time.of_utctime this with Ok t -> Ok t | Error m -> Error m)
          >>= fun this_update ->
          let next_update, rest =
            match rest with
            | Asn1.Value.Utc_time n :: rest -> (
                match Asn1.Time.of_utctime n with
                | Ok t -> (Some t, rest)
                | Error _ -> (None, rest))
            | rest -> (None, rest)
          in
          (match rest with
          | [ Asn1.Value.Sequence entries ] ->
              List.fold_left
                (fun acc e ->
                  acc >>= fun l ->
                  parse_entry e >>= fun e -> Ok (e :: l))
                (Ok []) entries
              |> Result.map List.rev
          | [] -> Ok []
          | _ -> Error "unexpected TBSCertList layout")
          >>= fun revoked -> Ok { issuer; this_update; next_update; revoked }
      | _ -> Error "TBSCertList must be a SEQUENCE")
      >>= fun tbs ->
      (* Recover the exact TBS span for signature checking. *)
      let child_offset =
        let l0 = Char.code der.[1] in
        if l0 < 0x80 then 2 else 2 + (l0 land 0x7F)
      in
      match Asn1.Value.decode_prefix der child_offset with
      | Ok (_, stop) ->
          let tbs_der = String.sub der child_offset (stop - child_offset) in
          Ok { tbs; tbs_der; signature; der }
      | Error e -> Error (Format.asprintf "%a" Asn1.Value.pp_error e))
  | Ok _ -> Error "CertificateList must be SEQUENCE { tbs, alg, BIT STRING }"

let to_pem crl = Pem.encode ~label:"X509 CRL" crl.der

let of_pem pem =
  match Pem.decode pem with
  | Ok ("X509 CRL", der) -> parse der
  | Ok (label, _) -> Error (Printf.sprintf "unexpected PEM label %S" label)
  | Error m -> Error m

let verify ~issuer_spki crl =
  Certificate.verify_raw ~issuer_spki ~message:crl.tbs_der ~signature:crl.signature

let is_revoked crl serial =
  List.exists (fun e -> String.equal e.serial serial) crl.tbs.revoked

module Store = struct
  type store = (string, t) Hashtbl.t

  let create () : store = Hashtbl.create 8
  let publish store ~url crl = Hashtbl.replace store url crl
  let fetch store url = Hashtbl.find_opt store url
end

type status = Good | Revoked | Unavailable of string

let crldp_uris cert =
  match
    Extension.find cert.Certificate.tbs.Certificate.extensions
      Extension.Oids.crl_distribution_points
  with
  | None -> []
  | Some e -> (
      match Extension.parse_crl_distribution_points e.Extension.value with
      | Error _ -> []
      | Ok gns -> List.filter_map (function General_name.Uri u -> Some u | _ -> None) gns)

let check_revocation ?(rewrite_location = Fun.id) ~store ~issuer_spki cert =
  match crldp_uris cert with
  | [] -> Unavailable "no CRLDistributionPoints"
  | uri :: _ -> (
      let fetched = rewrite_location uri in
      match Store.fetch store fetched with
      | None -> Unavailable (Printf.sprintf "no CRL at %S" fetched)
      | Some crl ->
          if not (verify ~issuer_spki crl) then Unavailable "CRL signature invalid"
          else if is_revoked crl cert.Certificate.tbs.Certificate.serial then Revoked
          else Good)
