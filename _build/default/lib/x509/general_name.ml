type t =
  | Other_name of Asn1.Oid.t * string
  | Rfc822_name of string
  | Dns_name of string
  | Directory_name of Dn.t
  | Uri of string
  | Ip_address of string
  | Registered_id of Asn1.Oid.t

let to_value gn =
  let open Asn1.Value in
  match gn with
  | Other_name (oid, raw) ->
      Explicit (0, [ Oid oid; Explicit (0, [ Octet_string raw ]) ])
  | Rfc822_name s -> Implicit (1, s)
  | Dns_name s -> Implicit (2, s)
  | Directory_name dn -> Explicit (4, [ Dn.to_value dn ])
  | Uri s -> Implicit (6, s)
  | Ip_address s -> Implicit (7, s)
  | Registered_id oid -> Implicit (8, Asn1.Oid.encode oid)

let of_value v =
  let open Asn1.Value in
  match v with
  | Implicit (1, s) -> Ok (Rfc822_name s)
  | Implicit (2, s) -> Ok (Dns_name s)
  | Implicit (6, s) -> Ok (Uri s)
  | Implicit (7, s) -> Ok (Ip_address s)
  | Implicit (8, raw) -> (
      match Asn1.Oid.decode raw with
      | Ok oid -> Ok (Registered_id oid)
      | Error m -> Error ("registeredID: " ^ m))
  | Explicit (4, [ dn ]) -> (
      match Dn.of_value dn with
      | Ok dn -> Ok (Directory_name dn)
      | Error m -> Error ("directoryName: " ^ m))
  | Explicit (0, [ Oid oid; Explicit (0, [ Octet_string raw ]) ]) ->
      Ok (Other_name (oid, raw))
  | Explicit (0, Oid oid :: _) -> Ok (Other_name (oid, ""))
  | Implicit (n, _) | Explicit (n, _) ->
      Error (Printf.sprintf "unsupported GeneralName choice [%d]" n)
  | _ -> Error "GeneralName must be context-tagged"

let kind = function
  | Other_name _ -> "otherName"
  | Rfc822_name _ -> "rfc822Name"
  | Dns_name _ -> "dNSName"
  | Directory_name _ -> "directoryName"
  | Uri _ -> "uniformResourceIdentifier"
  | Ip_address _ -> "iPAddress"
  | Registered_id _ -> "registeredID"

let text = function
  | Other_name (oid, _) -> Asn1.Oid.to_string oid
  | Rfc822_name s | Dns_name s | Uri s -> s
  | Directory_name dn -> Dn.to_string dn
  | Registered_id oid -> Asn1.Oid.to_string oid
  | Ip_address s ->
      if String.length s = 4 then
        Printf.sprintf "%d.%d.%d.%d" (Char.code s.[0]) (Char.code s.[1])
          (Char.code s.[2]) (Char.code s.[3])
      else
        String.concat ":"
          (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let dns_name s = Dns_name s
