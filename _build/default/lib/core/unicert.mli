(** Unicert — the paper's primary contribution as a library.

    {!Classify} identifies Unicerts/IDNCerts; {!Pipeline} runs the
    corpus compliance measurement; {!Report} regenerates every table
    and figure; {!Browsers} models the Appendix F.1 rendering study.
    The substrates live in their own libraries: [asn1], [unicode],
    [idna], [x509], [lint], [ctlog], [tlsparsers], [monitors],
    [middlebox]. *)

module Classify : module type of Classify
module Browsers : module type of Browsers
module Pipeline : module type of Pipeline
module Report : module type of Report
