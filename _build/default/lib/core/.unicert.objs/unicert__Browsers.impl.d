lib/core/browsers.ml: Array Asn1 Char Format Idna List Printf Stdlib String Unicode X509
