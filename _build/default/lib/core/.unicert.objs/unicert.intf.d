lib/core/unicert.mli: Browsers Classify Pipeline Report
