lib/core/pipeline.ml: Asn1 Char Classify Ctlog Hashtbl Lint List Option Result String Unicode X509
