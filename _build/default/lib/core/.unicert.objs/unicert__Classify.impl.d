lib/core/classify.ml: Asn1 Char Idna List String X509
