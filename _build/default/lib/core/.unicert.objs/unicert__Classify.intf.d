lib/core/classify.mli: X509
