lib/core/unicert.ml: Browsers Classify Pipeline Report
