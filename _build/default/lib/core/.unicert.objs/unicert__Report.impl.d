lib/core/report.ml: Ctlog Format Hashtbl Lint List Option Pipeline Printf
