lib/core/browsers.mli: Format X509
