lib/core/pipeline.mli: Ctlog Hashtbl Lint
