(** Browser certificate-rendering models (Appendix F.1, Table 14):
    how Gecko, WebKit and Blink engines display Unicode certificate
    fields in certificate viewers and warning pages, and the spoofing
    consequences. *)

type engine = Gecko | Webkit | Blink

type t = {
  name : string;
  version : string;
  engine : engine;
  c0_indicator : [ `Raw | `Picture | `Url_encode ];
      (** Firefox renders control characters raw; Safari marks them with
          control pictures; Chromium percent-encodes. *)
  warning_identity : [ `San_dns | `Subject_fields | `None ];
      (** which certificate fields feed the warning page *)
  checks_asn1_ranges : bool;
      (** whether the viewer flags out-of-range ASN.1 characters *)
}

val firefox : t
val safari : t
val chromium : t
val all : t list

val render_field : t -> string -> string
(** [render_field b text] is what the user sees in the certificate
    viewer for a UTF-8 field value: the C0 policy applied, invisible
    layout characters dropped, and bidirectional overrides applied
    visually (RLO segments render reversed). *)

val warning_identity_string : t -> X509.Certificate.t -> string
(** The identity line a warning page would display. *)

val display_hostname : t -> string -> string
(** [display_hostname b domain] applies the IDN display policy to an
    (ASCII, possibly punycoded) domain: labels that decode to
    single-script, IDNA-clean text are shown in Unicode; mixed-script
    or invalid labels stay in their A-label form — the policy whose
    gaps [G1.2]/[P1.3] exploit (homographs inside one script still
    display in Unicode). *)

type row = {
  browser : string;
  c0_c1_visible : bool;
  layout_visible : bool;
  homograph_feasible : bool;
  incorrect_substitution : bool;
  flawed_range_check : bool;
  warning_spoofable : bool;
}

val table14 : unit -> row list
(** Probe the three engines with crafted Unicerts. *)

type spoof = { browser : string; crafted : string; displayed : string; spoofed : bool }

val warning_spoof_demo : unit -> spoof list
(** The "www.(RLO)lapyap(PDF).com" → "www.paypal.com" demonstration of
    Figure 7. *)

val render : Format.formatter -> unit
