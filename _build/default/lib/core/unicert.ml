module Classify = Classify
module Browsers = Browsers
module Pipeline = Pipeline
module Report = Report
