(** T3a Illegal Format lints (17 rules): length overflows, case errors, and basic formatting violations. *)

val lints : Types.t list
