(* T2 — Bad Normalization lints (paper §4.3.1): NFC and canonical-form
   requirements.  4 lints, 3 new. *)

open Types
open Helpers

let lints : Types.t list =
  [
    mk ~name:"w_rfc_utf8_string_not_nfc"
      ~description:
        "UTF8String attribute values SHOULD be normalized to Unicode \
         Normalization Form C (RFC 5280 via RFC 4518/TR15)."
      ~source:Rfc5280 ~level:Should ~nc_type:Bad_normalization ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.filter_map
            (fun (attr, st, _, cps) ->
              if st = Asn1.Str_type.Utf8_string && not (Unicode.Normalize.is_nfc cps) then
                Some (X509.Attr.name attr ^ " UTF8String is not NFC")
              else None)
            (subject_values ctx @ issuer_values ctx)
        in
        emit Should bad);
    mk ~name:"e_rfc_dns_idn_not_nfc"
      ~description:
        "The Unicode form of an IDN label must be NFC-normalized; A-labels \
         whose decoding is not NFC cannot round-trip between forms."
      ~source:Rfc8399 ~level:Must ~nc_type:Bad_normalization ~is_new:true
      ~effective:rfc8399_date
      (fun ctx ->
        let bad =
          List.concat_map
            (fun name ->
              List.filter_map
                (fun l ->
                  if List.mem Idna.Not_nfc (Idna.alabel_issues l) then
                    Some (Printf.sprintf "label %S decodes to a non-NFC string" l)
                  else None)
                (a_labels name))
            (Ctx.dns_names ctx)
        in
        emit Must bad);
    mk ~name:"e_rfc_dns_idn_noncanonical_alabel"
      ~description:
        "A-labels must be the canonical Punycode encoding of their U-label \
         (decode-then-re-encode must reproduce the label)."
      ~source:Rfc5890 ~level:Must ~nc_type:Bad_normalization ~is_new:true
      ~effective:idna2008_date
      (fun ctx ->
        let bad =
          List.concat_map
            (fun name ->
              List.filter_map
                (fun l ->
                  if List.mem Idna.Non_canonical_alabel (Idna.alabel_issues l) then
                    Some (Printf.sprintf "label %S is not canonical Punycode" l)
                  else None)
                (a_labels name))
            (Ctx.dns_names ctx)
        in
        emit Must bad);
    mk ~name:"e_ext_san_smtputf8_mailbox_not_nfc"
      ~description:
        "SmtpUTF8Mailbox otherName local parts must be NFC-normalized \
         (RFC 9598)."
      ~source:Rfc9598 ~level:Must ~nc_type:Bad_normalization ~is_new:true
      ~effective:rfc9598_date
      (fun ctx ->
        let smtputf8 = Asn1.Oid.of_string_exn "1.3.6.1.5.5.7.8.9" in
        let bad =
          List.filter_map
            (fun gn ->
              match gn with
              | X509.General_name.Other_name (oid, raw) when Asn1.Oid.equal oid smtputf8 ->
                  if not (Unicode.Normalize.utf8_is_nfc raw) then
                    Some "SmtpUTF8Mailbox is not NFC"
                  else None
              | _ -> None)
            (san_names ctx)
        in
        emit Must bad);
  ]
