(** The 95 constraint rules as a structured catalogue — the executable
    counterpart of the paper's RFCGPT extraction step (§3.1.1,
    Appendix C).  Each rule carries the requirement text, its source
    standard and section citation, and the lint that enforces it;
    {!render_json} emits the structured format the prompt templates of
    Appendix C request. *)

type rule = {
  id : string;             (** ["R001"] … ["R095"] *)
  requirement : string;    (** normative text, condensed *)
  source : Types.source;
  citation : string;       (** section reference within the source *)
  level : Types.level;
  nc_type : Types.nc_type;
  is_new : bool;           (** not covered by pre-existing linters *)
  lint : string;           (** enforcing lint name *)
}

val all : rule list
(** Exactly one rule per registered lint, in registry order. *)

val find : string -> rule option
(** [find id] looks up by rule id. *)

val by_source : Types.source -> rule list

val covering_lint : string -> rule option
(** [covering_lint name] is the rule a lint enforces. *)

val render_json : Format.formatter -> rule -> unit
(** One rule in the Appendix-C structured output shape. *)

val render_catalogue : Format.formatter -> unit
(** The full catalogue. *)
