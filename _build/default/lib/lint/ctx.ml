type atv_info = {
  atv : X509.Dn.atv;
  cps : Unicode.Cp.t array option;
  lenient_cps : Unicode.Cp.t array;
  in_issuer : bool;
}

type general_names = X509.General_name.t list

type t = {
  cert : X509.Certificate.t;
  subject : atv_info list;
  issuer : atv_info list;
  san : (general_names, string) result option;
  ian : (general_names, string) result option;
  crldp_names : (general_names, string) result option;
  aia : ((Asn1.Oid.t * X509.General_name.t) list, string) result option;
  sia : ((Asn1.Oid.t * X509.General_name.t) list, string) result option;
  policies : (X509.Extension.policy list, string) result option;
}

let atv_info ~in_issuer (atv : X509.Dn.atv) =
  let cps = X509.Dn.atv_cps atv in
  let lenient_cps =
    match atv.X509.Dn.value with
    | Asn1.Value.Str (st, raw) -> (
        match
          Unicode.Codec.decode ~policy:(Unicode.Codec.Replace 0xFFFD)
            (Asn1.Str_type.standard_encoding st) raw
        with
        | Ok cps -> cps
        | Error _ -> Unicode.Codec.cps_of_latin1 raw)
    | _ -> [||]
  in
  { atv; cps; lenient_cps; in_issuer }

let ext_payload cert oid parse =
  match X509.Extension.find cert.X509.Certificate.tbs.X509.Certificate.extensions oid with
  | None -> None
  | Some e -> Some (parse e.X509.Extension.value)

let of_cert cert =
  let tbs = cert.X509.Certificate.tbs in
  let subject = List.map (atv_info ~in_issuer:false) (X509.Dn.all_atvs tbs.X509.Certificate.subject) in
  let issuer = List.map (atv_info ~in_issuer:true) (X509.Dn.all_atvs tbs.X509.Certificate.issuer) in
  let open X509.Extension in
  {
    cert;
    subject;
    issuer;
    san = ext_payload cert Oids.subject_alt_name parse_general_names;
    ian = ext_payload cert Oids.issuer_alt_name parse_general_names;
    crldp_names = ext_payload cert Oids.crl_distribution_points parse_crl_distribution_points;
    aia = ext_payload cert Oids.authority_info_access parse_info_access;
    sia = ext_payload cert Oids.subject_info_access parse_info_access;
    policies = ext_payload cert Oids.certificate_policies parse_certificate_policies;
  }

let san_dns t =
  match t.san with
  | Some (Ok gns) ->
      List.filter_map (function X509.General_name.Dns_name s -> Some s | _ -> None) gns
  | Some (Error _) | None -> []

let looks_like_dns s =
  s <> ""
  && String.contains s '.'
  && String.for_all (fun c -> Char.code c < 0x80) s
  && not (String.contains s '@')
  && not (String.contains s '/')

let dns_names t =
  let san = san_dns t in
  let cns =
    List.filter_map
      (fun info ->
        if info.atv.X509.Dn.typ = X509.Attr.Common_name && not info.in_issuer then begin
          let text = X509.Dn.atv_text info.atv in
          if looks_like_dns text then Some text else None
        end
        else None)
      t.subject
  in
  san @ cns

let subject_texts t =
  List.map (fun info -> (info.atv.X509.Dn.typ, X509.Dn.atv_text info.atv)) t.subject
