type source =
  | Rfc5280
  | Rfc6818
  | Rfc8399
  | Rfc9549
  | Rfc9598
  | Rfc1034
  | Rfc5890
  | Idna2008
  | Cab_br
  | X680
  | Community

let source_name = function
  | Rfc5280 -> "RFC 5280"
  | Rfc6818 -> "RFC 6818"
  | Rfc8399 -> "RFC 8399"
  | Rfc9549 -> "RFC 9549"
  | Rfc9598 -> "RFC 9598"
  | Rfc1034 -> "RFC 1034"
  | Rfc5890 -> "RFC 5890"
  | Idna2008 -> "IDNA2008"
  | Cab_br -> "CA/B BR"
  | X680 -> "ITU-T X.680"
  | Community -> "Community"

type level = Must | Must_not | Should | Should_not

let level_name = function
  | Must -> "MUST"
  | Must_not -> "MUST NOT"
  | Should -> "SHOULD"
  | Should_not -> "SHOULD NOT"

type nc_type =
  | Invalid_character
  | Bad_normalization
  | Illegal_format
  | Invalid_encoding
  | Invalid_structure
  | Discouraged_field

let nc_type_name = function
  | Invalid_character -> "Invalid Character"
  | Bad_normalization -> "Bad Normalization"
  | Illegal_format -> "Illegal Format"
  | Invalid_encoding -> "Invalid Encoding"
  | Invalid_structure -> "Invalid Structure"
  | Discouraged_field -> "Discouraged Field"

let all_nc_types =
  [ Invalid_character; Bad_normalization; Illegal_format; Invalid_encoding;
    Invalid_structure; Discouraged_field ]

type severity = Error | Warning

let severity_of_level = function
  | Must | Must_not -> Error
  | Should | Should_not -> Warning

type status = Na | Pass | Warn of string list | Fail of string list

type t = {
  name : string;
  description : string;
  source : source;
  level : level;
  nc_type : nc_type;
  is_new : bool;
  effective_date : Asn1.Time.t;
  check : Ctx.t -> status;
}

type finding = { lint : t; status : status }

let severity l = severity_of_level l.level

let is_noncompliant f =
  match f.status with Warn _ | Fail _ -> true | Na | Pass -> false

let mk ~name ~description ~source ~level ~nc_type ?(is_new = false) ~effective check =
  { name; description; source; level; nc_type; is_new; effective_date = effective; check }

let fail_if = function [] -> Pass | details -> Fail details
let warn_if = function [] -> Pass | details -> Warn details
