(** T3b Invalid Encoding lints (48 rules, 37 new): unsupported or deprecated ASN.1 string types and physically broken encodings. *)

val lints : Types.t list
