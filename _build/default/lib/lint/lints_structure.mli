(** T3c/T3d Invalid Structure and Discouraged Field lints (2 + 2 rules). *)

val lints : Types.t list
