include Types
module Ctx = Ctx
module Helpers = Helpers
module Registry = Registry
module Rulebook = Rulebook
