lib/lint/lint.mli: Ctx Helpers Registry Rulebook Types
