lib/lint/ctx.mli: Asn1 Unicode X509
