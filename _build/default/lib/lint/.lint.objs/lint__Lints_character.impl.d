lib/lint/lints_character.ml: Array Asn1 Char Ctx Helpers Idna List Printf String Types Unicode X509
