lib/lint/lints_structure.ml: Hashtbl Helpers List Printf String Types Unicode X509
