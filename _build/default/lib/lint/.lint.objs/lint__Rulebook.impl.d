lib/lint/rulebook.ml: Buffer Char Format List Printf Registry String Types
