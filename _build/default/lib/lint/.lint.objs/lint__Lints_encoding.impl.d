lib/lint/lints_encoding.ml: Array Asn1 Char Ctx Hashtbl Helpers List Printf Stdlib String Types Unicode X509
