lib/lint/lints_structure.mli: Types
