lib/lint/registry.mli: Asn1 Types X509
