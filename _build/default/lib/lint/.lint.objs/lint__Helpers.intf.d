lib/lint/helpers.mli: Asn1 Ctx Types Unicode X509
