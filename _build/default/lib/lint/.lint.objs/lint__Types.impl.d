lib/lint/types.ml: Asn1 Ctx
