lib/lint/lints_format.mli: Types
