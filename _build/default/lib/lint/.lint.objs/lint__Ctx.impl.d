lib/lint/ctx.ml: Asn1 Char List Oids String Unicode X509
