lib/lint/lints_encoding.mli: Types
