lib/lint/types.mli: Asn1 Ctx
