lib/lint/lints_normalization.mli: Types
