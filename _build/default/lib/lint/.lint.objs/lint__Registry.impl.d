lib/lint/registry.ml: Asn1 Ctx Lints_character Lints_encoding Lints_format Lints_normalization Lints_structure List String Types
