lib/lint/helpers.ml: Asn1 Char Ctx Idna List String Types Unicode X509
