lib/lint/lints_format.ml: Array Asn1 Char Ctx Fun Helpers Idna List Printf String Types Unicode X509
