lib/lint/lints_character.mli: Types
