lib/lint/lints_normalization.ml: Asn1 Ctx Helpers Idna List Printf Types Unicode X509
