lib/lint/rulebook.mli: Format Types
