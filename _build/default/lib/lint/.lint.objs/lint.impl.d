lib/lint/lint.ml: Ctx Helpers Registry Rulebook Types
