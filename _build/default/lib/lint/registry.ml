let all =
  Lints_character.lints @ Lints_normalization.lints @ Lints_format.lints
  @ Lints_encoding.lints @ Lints_structure.lints

(* Duplicate lint names would silently skew every aggregate. *)
let () =
  let names = List.map (fun (l : Types.t) -> l.Types.name) all in
  let unique = List.sort_uniq String.compare names in
  if List.length names <> List.length unique then
    invalid_arg "Lint registry contains duplicate names"

let find name = List.find_opt (fun (l : Types.t) -> l.Types.name = name) all
let by_type t = List.filter (fun (l : Types.t) -> l.Types.nc_type = t) all

let counts_by_type t =
  let lints = by_type t in
  (List.length lints, List.length (List.filter (fun (l : Types.t) -> l.Types.is_new) lints))

let run ?(respect_effective_dates = true) ?(include_new = true) ~issued cert =
  let ctx = Ctx.of_cert cert in
  List.filter_map
    (fun (l : Types.t) ->
      if (not include_new) && l.Types.is_new then None
      else if respect_effective_dates && Asn1.Time.(issued < l.Types.effective_date) then
        Some { Types.lint = l; status = Types.Na }
      else Some { Types.lint = l; status = l.Types.check ctx })
    all

let noncompliant ?respect_effective_dates ?include_new ~issued cert =
  run ?respect_effective_dates ?include_new ~issued cert
  |> List.filter Types.is_noncompliant
