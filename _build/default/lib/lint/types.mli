(** Core linting types — a zlint-style framework specialized for the
    paper's Unicert constraint rules. *)

(** Standards a rule derives from. *)
type source =
  | Rfc5280
  | Rfc6818
  | Rfc8399
  | Rfc9549
  | Rfc9598
  | Rfc1034
  | Rfc5890
  | Idna2008
  | Cab_br
  | X680
  | Community

val source_name : source -> string

(** Requirement level in the source standard. *)
type level = Must | Must_not | Should | Should_not

val level_name : level -> string

(** Noncompliance taxonomy of the paper (§4.3.1). *)
type nc_type =
  | Invalid_character   (** T1 *)
  | Bad_normalization   (** T2 *)
  | Illegal_format      (** T3a *)
  | Invalid_encoding    (** T3b *)
  | Invalid_structure   (** T3c *)
  | Discouraged_field   (** T3d *)

val nc_type_name : nc_type -> string
val all_nc_types : nc_type list

type severity = Error | Warning

val severity_of_level : level -> severity
(** MUST/MUST NOT violations are errors; SHOULD/SHOULD NOT warnings. *)

type status =
  | Na    (** lint does not apply to this certificate *)
  | Pass
  | Warn of string list
  | Fail of string list

type t = {
  name : string;           (** e.g. ["e_rfc_dns_idn_malformed_unicode"] *)
  description : string;
  source : source;
  level : level;
  nc_type : nc_type;
  is_new : bool;           (** one of the paper's 50 new Unicode lints *)
  effective_date : Asn1.Time.t;
      (** applies only to certificates issued on/after this date *)
  check : Ctx.t -> status;
}

type finding = { lint : t; status : status }

val severity : t -> severity

val is_noncompliant : finding -> bool
(** [is_noncompliant f] — the status is [Warn] or [Fail]. *)

val mk :
  name:string ->
  description:string ->
  source:source ->
  level:level ->
  nc_type:nc_type ->
  ?is_new:bool ->
  effective:Asn1.Time.t ->
  (Ctx.t -> status) ->
  t

val fail_if : string list -> status
(** [fail_if details] is [Pass] on an empty list, [Fail details]
    otherwise. *)

val warn_if : string list -> status
