(** T2 Bad Normalization lints (4 rules, 3 new): NFC and canonical-form requirements. *)

val lints : Types.t list
