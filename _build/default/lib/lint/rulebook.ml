type rule = {
  id : string;
  requirement : string;
  source : Types.source;
  citation : string;
  level : Types.level;
  nc_type : Types.nc_type;
  is_new : bool;
  lint : string;
}

(* Section citations for specific lints; the fallback cites the
   source's certificate-profile section. *)
let citations =
  [
    ("e_rfc_ext_cp_explicit_text_too_long", "RFC 5280 §4.2.1.4");
    ("w_rfc_ext_cp_explicit_text_not_utf8", "RFC 5280 §4.2.1.4");
    ("e_rfc_ext_cp_explicit_text_ia5", "RFC 5280 §4.2.1.4");
    ("w_ext_cp_explicit_text_bmp", "RFC 5280 §4.2.1.4");
    ("e_rfc_subject_country_not_printable", "RFC 5280 Appendix A");
    ("e_subject_dn_serial_number_not_printable", "RFC 5280 Appendix A");
    ("e_subject_email_address_not_ia5", "RFC 5280 §4.1.2.6");
    ("e_subject_dc_not_ia5", "RFC 4519 §2.4");
    ("w_subject_dn_uses_teletex_string", "RFC 5280 §4.1.2.4");
    ("w_subject_dn_uses_bmp_string", "RFC 5280 §4.1.2.4");
    ("w_subject_dn_uses_universal_string", "RFC 5280 §4.1.2.4");
    ("e_utf8string_invalid_byte_sequence", "RFC 5280 §4.1.2.4 / RFC 3629");
    ("e_rfc_dns_idn_malformed_unicode", "RFC 8399 §2.2");
    ("e_rfc_dns_idn_a2u_unpermitted_unichar", "RFC 5892 §2");
    ("e_rfc_dns_idn_not_nfc", "RFC 8399 §2.2 / UAX #15");
    ("e_rfc_dns_idn_noncanonical_alabel", "RFC 5890 §2.3.2.1");
    ("e_ext_san_smtputf8_mailbox_not_nfc", "RFC 9598 §3");
    ("e_ext_san_othername_smtputf8_not_utf8", "RFC 9598 §3");
    ("e_rfc822name_domain_unicode_not_punycode", "RFC 9598 §4");
    ("e_ext_san_dns_unicode_not_punycode", "RFC 5280 §7.2");
    ("e_san_rfc822_name_invalid_ascii", "RFC 5280 §4.2.1.6");
    ("e_cab_dns_bad_character_in_label", "CA/B BR 7.1.4.2.1");
    ("w_cab_subject_common_name_not_in_san", "CA/B BR 7.1.4.2.2");
    ("w_cab_subject_contain_extra_common_name", "CA/B BR 7.1.4.2.2");
    ("e_dns_label_too_long", "RFC 1034 §3.1");
    ("e_dns_name_too_long", "RFC 1034 §3.1");
    ("e_dnsname_label_empty", "RFC 1034 §3.5");
    ("e_serial_number_longer_than_20_octets", "RFC 5280 §4.1.2.2");
    ("e_serial_number_not_positive", "RFC 5280 §4.1.2.2");
    ("e_validity_time_wrong_form", "RFC 5280 §4.1.2.5");
    ("e_rfc_subject_printable_string_badalpha", "X.680 §41.4");
    ("e_numeric_string_invalid_characters", "X.680 §41.2");
    ("e_visible_string_invalid_characters", "X.680 §41");
    ("e_bmpstring_surrogate", "X.680 §41 / ISO 10646");
    ("e_bmpstring_odd_number_of_bytes", "X.690 §8.23");
    ("e_bmpstring_utf16_surrogate_pairs", "X.680 §41 / ISO 10646");
    ("e_universalstring_bad_length", "X.690 §8.23");
    ("e_universalstring_invalid_code_point", "X.680 §41 / ISO 10646");
    ("e_utf8string_overlong_encoding", "X.690 §8.23.10 / RFC 3629");
    ("e_utf8string_encodes_surrogates", "RFC 3629 §3");
  ]

let default_citation = function
  | Types.Rfc5280 -> "RFC 5280 §4"
  | Types.Rfc6818 -> "RFC 6818"
  | Types.Rfc8399 -> "RFC 8399 §2"
  | Types.Rfc9549 -> "RFC 9549 §2"
  | Types.Rfc9598 -> "RFC 9598 §3"
  | Types.Rfc1034 -> "RFC 1034 §3"
  | Types.Rfc5890 -> "RFC 5890 §2"
  | Types.Idna2008 -> "RFC 5891 §4 / RFC 5892"
  | Types.Cab_br -> "CA/B BR §7.1"
  | Types.X680 -> "ITU-T X.680 §41"
  | Types.Community -> "community practice (zlint/certlint)"

let all =
  List.mapi
    (fun i (l : Types.t) ->
      {
        id = Printf.sprintf "R%03d" (i + 1);
        requirement = l.Types.description;
        source = l.Types.source;
        citation =
          (match List.assoc_opt l.Types.name citations with
          | Some c -> c
          | None -> default_citation l.Types.source);
        level = l.Types.level;
        nc_type = l.Types.nc_type;
        is_new = l.Types.is_new;
        lint = l.Types.name;
      })
    Registry.all

let find id = List.find_opt (fun r -> r.id = id) all
let by_source s = List.filter (fun r -> r.source = s) all
let covering_lint name = List.find_opt (fun r -> r.lint = name) all

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json ppf r =
  Format.fprintf ppf
    "{\"id\": \"%s\", \"requirement\": \"%s\", \"source\": \"%s\", \"citation\": \
     \"%s\", \"level\": \"%s\", \"type\": \"%s\", \"new\": %b, \"lint\": \"%s\"}"
    r.id (json_escape r.requirement)
    (Types.source_name r.source)
    (json_escape r.citation)
    (Types.level_name r.level)
    (Types.nc_type_name r.nc_type)
    r.is_new r.lint

let render_catalogue ppf =
  Format.fprintf ppf "[@.";
  List.iteri
    (fun i r ->
      Format.fprintf ppf "  %a%s@." render_json r
        (if i = List.length all - 1 then "" else ","))
    all;
  Format.fprintf ppf "]@."
