(** Unicert lint framework — the reproduction of the paper's 95
    constraint rules in an executable, zlint-style registry.

    {!Types} (included here) defines severities, sources, the T1/T2/T3
    taxonomy, and the lint record; {!Ctx} pre-parses certificates;
    {!Registry} holds the full catalogue and the runner. *)

include module type of Types

module Ctx : module type of Ctx
module Helpers : module type of Helpers
module Registry : module type of Registry
module Rulebook : module type of Rulebook
