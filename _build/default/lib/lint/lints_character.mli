(** T1 Invalid Character lints (22 rules, 10 new): weak character-range validation in certificate fields. *)

val lints : Types.t list
