(** Pre-parsed certificate context shared by all lints, so each
    certificate is decoded once per run instead of once per lint. *)

type atv_info = {
  atv : X509.Dn.atv;
  cps : Unicode.Cp.t array option;
      (** strict standard decoding; [None] when the raw bytes are
          invalid for the declared string type *)
  lenient_cps : Unicode.Cp.t array;
      (** replacement decoding, always available *)
  in_issuer : bool;
}

type general_names = X509.General_name.t list

type t = {
  cert : X509.Certificate.t;
  subject : atv_info list;
  issuer : atv_info list;
  san : (general_names, string) result option;
      (** [None] = extension absent; [Some (Error _)] = unparsable *)
  ian : (general_names, string) result option;
  crldp_names : (general_names, string) result option;
  aia : ((Asn1.Oid.t * X509.General_name.t) list, string) result option;
  sia : ((Asn1.Oid.t * X509.General_name.t) list, string) result option;
  policies : (X509.Extension.policy list, string) result option;
}

val of_cert : X509.Certificate.t -> t

val dns_names : t -> string list
(** All dNSName payloads from SAN plus the subject CN values that look
    like DNS names — the fields the IDN lints inspect. *)

val subject_texts : t -> (X509.Attr.t * string) list
(** Decoded (leniently) subject attribute texts, in order. *)

val san_dns : t -> string list
(** Raw dNSName payloads from the SAN extension only. *)
