lib/tlswire/wire.mli: Ucrypto X509
