lib/tlswire/wire.ml: Char List String Ucrypto X509
