type record = { content_type : int; version : int * int; payload : string }

let u8 n = String.make 1 (Char.chr (n land 0xFF))
let u16 n = String.init 2 (fun i -> Char.chr ((n lsr (8 * (1 - i))) land 0xFF))
let u24 n = String.init 3 (fun i -> Char.chr ((n lsr (8 * (2 - i))) land 0xFF))

let read_u8 s off = if off < String.length s then Some (Char.code s.[off]) else None

let read_u16 s off =
  if off + 2 <= String.length s then
    Some ((Char.code s.[off] lsl 8) lor Char.code s.[off + 1])
  else None

let read_u24 s off =
  if off + 3 <= String.length s then
    Some
      ((Char.code s.[off] lsl 16)
      lor (Char.code s.[off + 1] lsl 8)
      lor Char.code s.[off + 2])
  else None

let encode_record r =
  let maj, min = r.version in
  u8 r.content_type ^ u8 maj ^ u8 min ^ u16 (String.length r.payload) ^ r.payload

let decode_records stream =
  let n = String.length stream in
  let rec go off acc =
    if off = n then Ok (List.rev acc)
    else if off + 5 > n then Error "truncated record header"
    else begin
      let content_type = Char.code stream.[off] in
      let version = (Char.code stream.[off + 1], Char.code stream.[off + 2]) in
      match read_u16 stream (off + 3) with
      | None -> Error "truncated record length"
      | Some len ->
          if off + 5 + len > n then Error "record payload overruns stream"
          else
            go (off + 5 + len)
              ({ content_type; version; payload = String.sub stream (off + 5) len }
              :: acc)
    end
  in
  go 0 []

type handshake =
  | Client_hello of { version : int * int; random : string; sni : string option }
  | Server_hello of { version : int * int; random : string }
  | Certificate of string list
  | Other of int * string

(* Extension 0 = server_name (RFC 6066). *)
let sni_extension host =
  let name = u8 0 (* host_name *) ^ u16 (String.length host) ^ host in
  let list = u16 (String.length name) ^ name in
  u16 0 ^ u16 (String.length list) ^ list

let parse_sni_extension body =
  (* ServerNameList: u16 list length, then entries of (type, u16 len,
     bytes). *)
  match read_u16 body 0 with
  | None -> None
  | Some _ -> (
      match (read_u8 body 2, read_u16 body 3) with
      | Some 0, Some len when 5 + len <= String.length body ->
          Some (String.sub body 5 len)
      | _ -> None)

let hello_body ~version ~random ~extensions =
  let maj, min = version in
  let session = u8 0 in
  let ciphers = u16 2 ^ u16 0x002F in
  let compression = u8 1 ^ u8 0 in
  let ext_block =
    if extensions = "" then "" else u16 (String.length extensions) ^ extensions
  in
  u8 maj ^ u8 min ^ random ^ session ^ ciphers ^ compression ^ ext_block

let encode_handshake h =
  let typ, body =
    match h with
    | Client_hello { version; random; sni } ->
        let extensions = match sni with Some host -> sni_extension host | None -> "" in
        (1, hello_body ~version ~random ~extensions)
    | Server_hello { version; random } ->
        let maj, min = version in
        (2, u8 maj ^ u8 min ^ random ^ u8 0 ^ u16 0x002F ^ u8 0)
    | Certificate ders ->
        let entries = String.concat "" (List.map (fun d -> u24 (String.length d) ^ d) ders) in
        (11, u24 (String.length entries) ^ entries)
    | Other (typ, body) -> (typ, body)
  in
  u8 typ ^ u24 (String.length body) ^ body

let parse_client_hello body =
  if String.length body < 34 then None
  else begin
    let version = (Char.code body.[0], Char.code body.[1]) in
    let random = String.sub body 2 32 in
    (* Skip session id, cipher suites, compression. *)
    match read_u8 body 34 with
    | None -> None
    | Some sess_len -> (
        let off = 35 + sess_len in
        match read_u16 body off with
        | None -> None
        | Some cipher_len -> (
            let off = off + 2 + cipher_len in
            match read_u8 body off with
            | None -> None
            | Some comp_len -> (
                let off = off + 1 + comp_len in
                if off >= String.length body then
                  Some (Client_hello { version; random; sni = None })
                else
                  match read_u16 body off with
                  | None -> Some (Client_hello { version; random; sni = None })
                  | Some ext_total ->
                      let stop = min (String.length body) (off + 2 + ext_total) in
                      let rec scan off =
                        if off + 4 > stop then None
                        else
                          match (read_u16 body off, read_u16 body (off + 2)) with
                          | Some etype, Some elen ->
                              if etype = 0 then
                                parse_sni_extension
                                  (String.sub body (off + 4)
                                     (min elen (stop - off - 4)))
                              else scan (off + 4 + elen)
                          | _ -> None
                      in
                      Some (Client_hello { version; random; sni = scan (off + 2) }))))
  end

let parse_certificate body =
  match read_u24 body 0 with
  | None -> None
  | Some total ->
      let stop = min (String.length body) (3 + total) in
      let rec go off acc =
        if off >= stop then Some (Certificate (List.rev acc))
        else
          match read_u24 body off with
          | None -> None
          | Some len ->
              if off + 3 + len > stop then None
              else go (off + 3 + len) (String.sub body (off + 3) len :: acc)
      in
      go 3 []

let decode_handshakes payload =
  let n = String.length payload in
  let rec go off acc =
    if off = n then Ok (List.rev acc)
    else if off + 4 > n then Error "truncated handshake header"
    else begin
      let typ = Char.code payload.[off] in
      match read_u24 payload (off + 1) with
      | None -> Error "truncated handshake length"
      | Some len ->
          if off + 4 + len > n then Error "handshake body overruns payload"
          else begin
            let body = String.sub payload (off + 4) len in
            let msg =
              match typ with
              | 1 -> ( match parse_client_hello body with Some h -> h | None -> Other (1, body))
              | 2 ->
                  if String.length body >= 34 then
                    Server_hello
                      { version = (Char.code body.[0], Char.code body.[1]);
                        random = String.sub body 2 32 }
                  else Other (2, body)
              | 11 -> ( match parse_certificate body with Some h -> h | None -> Other (11, body))
              | t -> Other (t, body)
            in
            go (off + 4 + len) (msg :: acc)
          end
    end
  in
  go 0 []

type flow = string

let tls12 = (3, 3)

let handshake_record payload =
  encode_record { content_type = 22; version = tls12; payload }

let client_hello_flow ?sni g =
  let random = Ucrypto.Prng.bytes g 32 in
  handshake_record (encode_handshake (Client_hello { version = tls12; random; sni }))

let server_flight g certs =
  let random = Ucrypto.Prng.bytes g 32 in
  handshake_record
    (encode_handshake (Server_hello { version = tls12; random })
    ^ encode_handshake
        (Certificate (List.map (fun c -> c.X509.Certificate.der) certs)))

let handshakes_of_flow flow =
  match decode_records flow with
  | Error _ as e -> e
  | Ok records ->
      let handshake_payload =
        String.concat ""
          (List.filter_map
             (fun r -> if r.content_type = 22 then Some r.payload else None)
             records)
      in
      decode_handshakes handshake_payload

let server_certificates flow =
  match handshakes_of_flow flow with
  | Error _ -> []
  | Ok msgs ->
      List.concat_map
        (function
          | Certificate ders ->
              List.filter_map
                (fun der ->
                  match X509.Certificate.parse der with Ok c -> Some c | Error _ -> None)
                ders
          | _ -> [])
        msgs

let sni_of_flow flow =
  match handshakes_of_flow flow with
  | Error _ -> None
  | Ok msgs ->
      List.find_map (function Client_hello { sni; _ } -> sni | _ -> None) msgs
