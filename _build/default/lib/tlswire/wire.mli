(** A minimal TLS 1.2 wire format (RFC 5246): record layer plus the
    handshake messages whose plaintext visibility the §6.2 traffic
    obfuscation threat depends on — ClientHello (with SNI),
    ServerHello, and the Certificate message.

    In TLS 1.2 and earlier the server certificate crosses the wire in
    clear, which is why middleboxes can match on its fields at all; the
    substrate below produces and parses exactly those bytes. *)

type record = { content_type : int; version : int * int; payload : string }
(** One TLS record; [content_type] 22 is handshake. *)

val encode_record : record -> string
val decode_records : string -> (record list, string) result
(** Parse a byte stream into records (strict lengths, no fragments
    across records for handshake messages in this model). *)

type handshake =
  | Client_hello of { version : int * int; random : string; sni : string option }
  | Server_hello of { version : int * int; random : string }
  | Certificate of string list  (** DER certificates, leaf first *)
  | Other of int * string      (** message type, raw body *)

val encode_handshake : handshake -> string
(** The handshake message bytes (type, 24-bit length, body). *)

val decode_handshakes : string -> (handshake list, string) result
(** Parse the concatenated handshake messages of a record payload. *)

(** {1 Flows} *)

type flow = string
(** A captured byte stream (client→server and server→client
    interleaved is out of scope; a flow is one direction). *)

val client_hello_flow : ?sni:string -> Ucrypto.Prng.t -> flow
(** The client's first flight. *)

val server_flight : Ucrypto.Prng.t -> X509.Certificate.t list -> flow
(** ServerHello + Certificate — the server's first flight carrying the
    chain in clear. *)

val handshakes_of_flow : flow -> (handshake list, string) result

val server_certificates : flow -> X509.Certificate.t list
(** Extract and parse every certificate from a server flight;
    unparsable entries are skipped (as a middlebox would). *)

val sni_of_flow : flow -> string option
