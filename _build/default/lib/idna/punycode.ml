(* RFC 3492 parameters. *)
let base = 36
let tmin = 1
let tmax = 26
let skew = 38
let damp = 700
let initial_bias = 72
let initial_n = 128
let delimiter = Char.code '-'

let adapt delta num_points first_time =
  let delta = if first_time then delta / damp else delta / 2 in
  let delta = ref (delta + (delta / num_points)) in
  let k = ref 0 in
  while !delta > (base - tmin) * tmax / 2 do
    delta := !delta / (base - tmin);
    k := !k + base
  done;
  !k + ((base - tmin + 1) * !delta / (!delta + skew))

(* Digit values: a-z = 0..25, 0-9 = 26..35 (we emit lowercase). *)
let encode_digit d =
  if d < 26 then Char.chr (d + Char.code 'a') else Char.chr (d - 26 + Char.code '0')

let decode_digit c =
  match c with
  | 'a' .. 'z' -> Some (Char.code c - Char.code 'a')
  | 'A' .. 'Z' -> Some (Char.code c - Char.code 'A')
  | '0' .. '9' -> Some (Char.code c - Char.code '0' + 26)
  | _ -> None

let encode cps =
  if Array.exists (fun cp -> not (Unicode.Cp.is_scalar cp)) cps then
    Error "input contains non-scalar code points"
  else begin
    let buf = Buffer.create (Array.length cps * 2) in
    let basic = Array.to_list cps |> List.filter (fun cp -> cp < 0x80) in
    List.iter (fun cp -> Buffer.add_char buf (Char.chr cp)) basic;
    let b = List.length basic in
    let input_len = Array.length cps in
    (* RFC 3492 §6.3: emit the delimiter whenever basic code points
       were copied. *)
    if b > 0 && b < input_len then Buffer.add_char buf '-'
    else if b > 0 && b = input_len then Buffer.add_char buf '-';
    if b = input_len then Ok (Buffer.contents buf)
    else begin
      let n = ref initial_n and delta = ref 0 and bias = ref initial_bias in
      let h = ref b in
      let error = ref None in
      while !h < input_len && !error = None do
        let m = ref max_int in
        Array.iter (fun cp -> if cp >= !n && cp < !m then m := cp) cps;
        if !m - !n > (max_int - !delta) / (!h + 1) then error := Some "overflow"
        else begin
          delta := !delta + ((!m - !n) * (!h + 1));
          n := !m;
          Array.iter
            (fun cp ->
              if cp < !n && (incr delta; !delta = 0) then error := Some "overflow"
              else if cp = !n then begin
                (* Encode delta as a variable-length integer. *)
                let q = ref !delta and k = ref base in
                let continue = ref true in
                while !continue do
                  let t =
                    if !k <= !bias then tmin
                    else if !k >= !bias + tmax then tmax
                    else !k - !bias
                  in
                  if !q < t then begin
                    Buffer.add_char buf (encode_digit !q);
                    continue := false
                  end
                  else begin
                    Buffer.add_char buf (encode_digit (t + ((!q - t) mod (base - t))));
                    q := (!q - t) / (base - t);
                    k := !k + base
                  end
                done;
                bias := adapt !delta (!h + 1) (!h = b);
                delta := 0;
                incr h
              end)
            cps;
          incr delta;
          incr n
        end
      done;
      match !error with Some m -> Error m | None -> Ok (Buffer.contents buf)
    end
  end

let decode s =
  let n_in = String.length s in
  (* Split at the last delimiter. *)
  let last_delim = ref (-1) in
  String.iteri (fun i c -> if Char.code c = delimiter then last_delim := i) s;
  let basic_end = if !last_delim >= 0 then !last_delim else 0 in
  let output = ref [] in
  let basic_ok = ref true in
  for i = 0 to basic_end - 1 do
    let c = Char.code s.[i] in
    if c >= 0x80 then basic_ok := false else output := c :: !output
  done;
  if not !basic_ok then Error "non-basic code point before delimiter"
  else begin
    let out = ref (Array.of_list (List.rev !output)) in
    let i = ref 0 and n = ref initial_n and bias = ref initial_bias in
    let pos = ref (if !last_delim >= 0 then basic_end + 1 else 0) in
    let error = ref None in
    while !pos < n_in && !error = None do
      let oldi = !i and w = ref 1 and k = ref base in
      let continue = ref true in
      while !continue && !error = None do
        if !pos >= n_in then error := Some "truncated variable-length integer"
        else
          match decode_digit s.[!pos] with
          | None -> error := Some (Printf.sprintf "invalid punycode digit %C" s.[!pos])
          | Some digit ->
              incr pos;
              if digit > (max_int - !i) / !w then error := Some "overflow"
              else begin
                i := !i + (digit * !w);
                let t =
                  if !k <= !bias then tmin
                  else if !k >= !bias + tmax then tmax
                  else !k - !bias
                in
                if digit < t then continue := false
                else if !w > max_int / (base - t) then error := Some "overflow"
                else begin
                  w := !w * (base - t);
                  k := !k + base
                end
              end
      done;
      if !error = None then begin
        let out_len = Array.length !out + 1 in
        bias := adapt (!i - oldi) out_len (oldi = 0);
        if !i / out_len > max_int - !n then error := Some "overflow"
        else begin
          n := !n + (!i / out_len);
          i := !i mod out_len;
          if not (Unicode.Cp.is_scalar !n) then
            error := Some (Printf.sprintf "decoded non-scalar %s" (Unicode.Cp.to_string !n))
          else begin
            (* Insert n at position i. *)
            let prev = !out in
            let len = Array.length prev in
            let next = Array.make (len + 1) 0 in
            Array.blit prev 0 next 0 !i;
            next.(!i) <- !n;
            Array.blit prev !i next (!i + 1) (len - !i);
            out := next;
            incr i
          end
        end
      end
    done;
    match !error with Some m -> Error m | None -> Ok !out
  end

let encode_utf8 text = encode (Unicode.Codec.cps_of_utf8 text)

let decode_utf8 s =
  match decode s with Ok cps -> Ok (Unicode.Codec.utf8_of_cps cps) | Error _ as e -> e
