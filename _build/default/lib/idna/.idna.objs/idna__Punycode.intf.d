lib/idna/punycode.mli: Unicode
