lib/idna/idna.mli: Dns Format Punycode Unicode
