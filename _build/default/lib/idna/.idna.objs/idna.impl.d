lib/idna/idna.ml: Array Char Dns Format Hashtbl List Punycode String Unicode
