lib/idna/dns.mli: Format Unicode
