lib/idna/punycode.ml: Array Buffer Char List Printf String Unicode
