lib/idna/dns.ml: Char Format List String Unicode
