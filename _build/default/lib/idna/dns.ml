type issue =
  | Empty_name
  | Name_too_long of int
  | Empty_label
  | Label_too_long of string
  | Bad_character of string * Unicode.Cp.t
  | Leading_hyphen of string
  | Trailing_hyphen of string
  | Whitespace_in_name

let pp_issue ppf = function
  | Empty_name -> Format.fprintf ppf "empty name"
  | Name_too_long n -> Format.fprintf ppf "name length %d exceeds 253 octets" n
  | Empty_label -> Format.fprintf ppf "empty label"
  | Label_too_long l -> Format.fprintf ppf "label %S exceeds 63 octets" l
  | Bad_character (l, cp) ->
      Format.fprintf ppf "label %S contains %s" l (Unicode.Cp.to_string cp)
  | Leading_hyphen l -> Format.fprintf ppf "label %S starts with a hyphen" l
  | Trailing_hyphen l -> Format.fprintf ppf "label %S ends with a hyphen" l
  | Whitespace_in_name -> Format.fprintf ppf "whitespace inside name"

let split_labels name = String.split_on_char '.' name

let check_label label issues =
  if label = "" then Empty_label :: issues
  else begin
    let issues = if String.length label > 63 then Label_too_long label :: issues else issues in
    let issues = if label.[0] = '-' then Leading_hyphen label :: issues else issues in
    let issues =
      if label.[String.length label - 1] = '-' then Trailing_hyphen label :: issues
      else issues
    in
    let bad = ref [] in
    String.iter
      (fun c ->
        let cp = Char.code c in
        if not (Unicode.Props.is_ldh cp) then bad := Bad_character (label, cp) :: !bad)
      label;
    List.rev_append !bad issues
  end

let check ?(allow_wildcard = true) name =
  if name = "" then [ Empty_name ]
  else begin
    let issues = if String.length name > 253 then [ Name_too_long (String.length name) ] else [] in
    let issues =
      if String.exists (fun c -> c = ' ' || c = '\t') name then Whitespace_in_name :: issues
      else issues
    in
    (* A trailing root dot is legal; drop the final empty label. *)
    let labels =
      match List.rev (split_labels name) with
      | "" :: rest -> List.rev rest
      | all -> List.rev all
    in
    let labels =
      match labels with
      | "*" :: rest when allow_wildcard -> rest
      | l -> l
    in
    List.rev (List.fold_left (fun acc l -> check_label l acc) (List.rev issues) labels)
  end

let is_ldh_name name = check name = []

let is_reserved_ldh_label l =
  String.length l >= 4 && l.[2] = '-' && l.[3] = '-'

let is_a_label_candidate l =
  String.length l >= 4
  && (l.[0] = 'x' || l.[0] = 'X')
  && (l.[1] = 'n' || l.[1] = 'N')
  && l.[2] = '-' && l.[3] = '-'

let normalize_case name = String.lowercase_ascii name
