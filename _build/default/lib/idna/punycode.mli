(** Punycode (RFC 3492): the Bootstring encoding that maps Unicode
    label text onto the letter-digit-hyphen alphabet used inside
    A-labels. *)

val encode : Unicode.Cp.t array -> (string, string) result
(** [encode cps] produces the Punycode form of a code-point sequence
    (without the ["xn--"] prefix).  Fails on code points that are not
    Unicode scalar values. *)

val decode : string -> (Unicode.Cp.t array, string) result
(** [decode s] inverts {!encode}.  Fails on characters outside the
    Punycode alphabet, overflow, or out-of-range deltas — the
    "unconvertible A-label" condition of the paper's T2 lints. *)

val encode_utf8 : string -> (string, string) result
(** [encode_utf8 text] encodes a UTF-8 label body. *)

val decode_utf8 : string -> (string, string) result
(** [decode_utf8 s] decodes to UTF-8 text. *)
