let definite_length n =
  if n < 0 then invalid_arg "Writer.definite_length: negative"
  else if n < 0x80 then String.make 1 (Char.chr n)
  else begin
    let rec bytes n acc = if n = 0 then acc else bytes (n lsr 8) (Char.chr (n land 0xFF) :: acc) in
    let b = bytes n [] in
    let buf = Buffer.create 5 in
    Buffer.add_char buf (Char.chr (0x80 lor List.length b));
    List.iter (Buffer.add_char buf) b;
    Buffer.contents buf
  end

let tlv tag_byte content =
  let buf = Buffer.create (String.length content + 4) in
  Buffer.add_char buf (Char.chr tag_byte);
  Buffer.add_string buf (definite_length (String.length content));
  Buffer.add_string buf content;
  Buffer.contents buf

let universal ?(constructed = false) n content =
  if n > 30 then invalid_arg "Writer.universal: multi-byte tags unsupported";
  tlv ((if constructed then 0x20 else 0x00) lor n) content

let context ?(constructed = false) n content =
  if n > 30 then invalid_arg "Writer.context: multi-byte tags unsupported";
  tlv (0x80 lor (if constructed then 0x20 else 0x00) lor n) content

let boolean b = universal 1 (if b then "\xFF" else "\x00")
let null = universal 5 ""

let integer_bytes b =
  let b = if b = "" then "\x00" else b in
  (* Strip redundant leading 0x00 octets, then restore one if needed. *)
  let rec first_significant i =
    if i + 1 < String.length b && b.[i] = '\x00' && Char.code b.[i + 1] < 0x80 then
      first_significant (i + 1)
    else i
  in
  let b = String.sub b (first_significant 0) (String.length b - first_significant 0) in
  let b = if Char.code b.[0] >= 0x80 then "\x00" ^ b else b in
  universal 2 b

let integer_of_int n =
  if n = 0 then universal 2 "\x00"
  else begin
    let negative = n < 0 in
    let rec bytes n acc =
      if n = 0 || n = -1 then acc else bytes (n asr 8) (Char.chr (n land 0xFF) :: acc)
    in
    let b = bytes n [] in
    let b = if b = [] then [ (if negative then '\xFF' else '\x00') ] else b in
    let s = String.init (List.length b) (List.nth b) in
    let s =
      if negative then if Char.code s.[0] < 0x80 then "\xFF" ^ s else s
      else if Char.code s.[0] >= 0x80 then "\x00" ^ s
      else s
    in
    universal 2 s
  end

let oid o = universal 6 (Oid.encode o)
let octet_string s = universal 4 s
let bit_string ?(unused = 0) s = universal 3 (String.make 1 (Char.chr unused) ^ s)
let sequence parts = universal ~constructed:true 16 (String.concat "" parts)

let set parts =
  universal ~constructed:true 17 (String.concat "" (List.sort Stdlib.compare parts))

let set_unsorted parts = universal ~constructed:true 17 (String.concat "" parts)
let str st content = universal (Str_type.tag st) content
let utc_time t = universal 23 (Time.to_utctime t)
let generalized_time t = universal 24 (Time.to_generalized t)
let time t = if t.Time.year < 2050 then utc_time t else generalized_time t
