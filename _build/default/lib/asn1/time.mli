(** Calendar time for certificate validity, and the ASN.1 UTCTime /
    GeneralizedTime encodings.

    Self-contained (no system clock): all times are constructed
    explicitly, which keeps corpus generation deterministic. *)

type t = { year : int; month : int; day : int; hour : int; minute : int; second : int }
(** A UTC timestamp. *)

val make : ?hour:int -> ?minute:int -> ?second:int -> int -> int -> int -> t
(** [make year month day] builds a timestamp (clamping is not applied;
    invalid dates raise [Invalid_argument]). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool

val days_in_month : int -> int -> int
(** [days_in_month year month] accounts for leap years. *)

val to_days : t -> int
(** [to_days t] is a day count from a fixed epoch (0001-01-01), ignoring
    the time-of-day components. *)

val days_between : t -> t -> int
(** [days_between a b] is [to_days b - to_days a]. *)

val add_days : t -> int -> t
(** [add_days t n] advances the date by [n] days (time of day kept). *)

val to_utctime : t -> string
(** [to_utctime t] is the 13-byte [YYMMDDHHMMSSZ] form (two-digit year;
    RFC 5280 requires UTCTime for dates before 2050). *)

val to_generalized : t -> string
(** [to_generalized t] is the 15-byte [YYYYMMDDHHMMSSZ] form. *)

val of_utctime : string -> (t, string) result
(** [of_utctime s] parses UTCTime with RFC 5280's 50-year window rule. *)

val of_generalized : string -> (t, string) result

val pp : Format.formatter -> t -> unit
(** [pp] prints ISO-8601 [YYYY-MM-DDTHH:MM:SSZ]. *)
