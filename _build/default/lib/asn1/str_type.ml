type t =
  | Utf8_string
  | Numeric_string
  | Printable_string
  | Teletex_string
  | Ia5_string
  | Visible_string
  | Universal_string
  | Bmp_string

let all =
  [
    Utf8_string; Numeric_string; Printable_string; Teletex_string;
    Ia5_string; Visible_string; Universal_string; Bmp_string;
  ]

let tag = function
  | Utf8_string -> 12
  | Numeric_string -> 18
  | Printable_string -> 19
  | Teletex_string -> 20
  | Ia5_string -> 22
  | Visible_string -> 26
  | Universal_string -> 28
  | Bmp_string -> 30

let of_tag = function
  | 12 -> Some Utf8_string
  | 18 -> Some Numeric_string
  | 19 -> Some Printable_string
  | 20 -> Some Teletex_string
  | 22 -> Some Ia5_string
  | 26 -> Some Visible_string
  | 28 -> Some Universal_string
  | 30 -> Some Bmp_string
  | _ -> None

let name = function
  | Utf8_string -> "UTF8String"
  | Numeric_string -> "NumericString"
  | Printable_string -> "PrintableString"
  | Teletex_string -> "TeletexString"
  | Ia5_string -> "IA5String"
  | Visible_string -> "VisibleString"
  | Universal_string -> "UniversalString"
  | Bmp_string -> "BMPString"

let of_name s = List.find_opt (fun st -> name st = s) all

let standard_encoding = function
  | Utf8_string -> Unicode.Codec.Utf8
  | Numeric_string | Printable_string | Ia5_string | Visible_string ->
      Unicode.Codec.Ascii
  | Teletex_string -> Unicode.Codec.Iso8859_1
  | Universal_string -> Unicode.Codec.Ucs4
  | Bmp_string -> Unicode.Codec.Ucs2

let allows st cp =
  match st with
  | Utf8_string -> Unicode.Cp.is_scalar cp
  | Numeric_string -> Unicode.Props.is_numeric_string_char cp
  | Printable_string -> Unicode.Props.is_printable_string_char cp
  | Teletex_string -> Unicode.Props.is_teletex_char cp
  | Ia5_string -> Unicode.Props.is_ia5_char cp
  | Visible_string -> Unicode.Props.is_visible_string_char cp
  | Universal_string -> Unicode.Cp.is_scalar cp
  | Bmp_string -> Unicode.Cp.is_bmp cp && not (Unicode.Cp.is_surrogate cp)

let validate st cps =
  Array.to_list cps |> List.filter (fun cp -> not (allows st cp))

let encode_value st cps =
  match Unicode.Codec.encode (standard_encoding st) cps with
  | Ok s -> Ok s
  | Error e -> Error (Format.asprintf "%a" Unicode.Codec.pp_error e)

let decode_value st bytes =
  match Unicode.Codec.decode (standard_encoding st) bytes with
  | Ok cps -> Ok cps
  | Error e ->
      Error
        (Format.asprintf "%s: %a" (name st) Unicode.Codec.pp_error e)
