(** A generic ASN.1 value AST with DER encoding and parsing.

    This AST is the interchange format between the certificate layer,
    the linter, and the parser models: raw content octets are preserved
    for string types so that noncompliant byte sequences survive a
    parse/encode round trip untouched. *)

type t =
  | Boolean of bool
  | Integer of string        (** big-endian two's-complement content octets *)
  | Bit_string of int * string  (** unused-bit count, payload *)
  | Octet_string of string
  | Null
  | Oid of Oid.t
  | Str of Str_type.t * string  (** declared string type, raw content octets *)
  | Utc_time of string          (** raw content, e.g. ["250101000000Z"] *)
  | Generalized_time of string
  | Sequence of t list
  | Set of t list
  | Implicit of int * string    (** context-specific primitive [n], raw *)
  | Explicit of int * t list    (** context-specific constructed [n] *)

type error = { offset : int; reason : string }

val pp_error : Format.formatter -> error -> unit

type config = {
  forbid_nonminimal_length : bool;
      (** Reject BER long-form lengths that DER would shorten. *)
  max_depth : int;  (** Recursion guard for nested constructed values. *)
}

val strict : config
(** [strict] is DER: minimal lengths, depth 64. *)

val lenient : config
(** [lenient] tolerates non-minimal lengths — models permissive
    parsers. *)

val encode : t -> string
(** [encode v] is the DER serialization (SETs are emitted in the order
    given, enabling deliberately non-DER output when modelling broken
    issuers; use {!Writer.set} directly for sorted sets). *)

val decode : ?config:config -> string -> (t, error) result
(** [decode bytes] parses exactly one value spanning all of [bytes]. *)

val decode_prefix : ?config:config -> string -> int -> (t * int, error) result
(** [decode_prefix bytes offset] parses one value at [offset], returning
    it with the offset one past its end. *)

val int_of_integer : t -> int option
(** [int_of_integer v] interprets an [Integer] that fits in an OCaml
    int. *)

val integer_of_int : int -> t

val str_utf8 : Str_type.t -> string -> t
(** [str_utf8 st text] builds a [Str] by transcoding UTF-8 [text] into
    the type's standard encoding; raises [Invalid_argument] if a code
    point cannot be represented. *)

val str_raw : Str_type.t -> string -> t
(** [str_raw st bytes] declares [st] but stores [bytes] verbatim — the
    vehicle for crafting noncompliant values. *)

val pp : Format.formatter -> t -> unit
(** [pp] renders a debugging tree. *)
