lib/asn1/oid.mli:
