lib/asn1/time.ml: Char Format Printf Stdlib String
