lib/asn1/oid.ml: Buffer Char List Printf Stdlib String
