lib/asn1/value.mli: Format Oid Str_type
