lib/asn1/time.mli: Format
