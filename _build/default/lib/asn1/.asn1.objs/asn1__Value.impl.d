lib/asn1/value.ml: Char Format List Oid Printf Str_type String Unicode Writer
