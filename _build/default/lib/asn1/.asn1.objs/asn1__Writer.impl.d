lib/asn1/writer.ml: Buffer Char List Oid Stdlib Str_type String Time
