lib/asn1/writer.mli: Oid Str_type Time
