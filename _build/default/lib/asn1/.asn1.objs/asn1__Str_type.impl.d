lib/asn1/str_type.ml: Array Format List Unicode
