lib/asn1/str_type.mli: Unicode
