(** ASN.1 object identifiers. *)

type t = int list
(** An OID as its arc list, e.g. [[2; 5; 4; 3]] for [id-at-commonName].
    Valid OIDs have at least two arcs with the usual first-arc
    constraints. *)

val to_string : t -> string
(** [to_string oid] is the dotted-decimal form, e.g. ["2.5.4.3"]. *)

val of_string : string -> t option
(** [of_string s] parses dotted-decimal notation. *)

val of_string_exn : string -> t
(** Like {!of_string}; raises [Invalid_argument] on parse failure. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val encode : t -> string
(** [encode oid] is the DER content octets (no tag/length). Raises
    [Invalid_argument] if [oid] has fewer than two arcs. *)

val decode : string -> (t, string) result
(** [decode content] parses DER content octets. *)
