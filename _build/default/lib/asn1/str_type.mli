(** The ASN.1 string types used in X.509 certificates (Table 8 of the
    paper), with their universal tags, standard decodings, and character
    repertoires. *)

type t =
  | Utf8_string        (** tag 12 — UTF-8, full Unicode. *)
  | Numeric_string     (** tag 18 — digits and space. *)
  | Printable_string   (** tag 19 — restricted ASCII subset. *)
  | Teletex_string     (** tag 20 — T.61 (modelled as Latin-ish). *)
  | Ia5_string         (** tag 22 — 7-bit International Alphabet 5. *)
  | Visible_string     (** tag 26 — printable ASCII. *)
  | Universal_string   (** tag 28 — UCS-4. *)
  | Bmp_string         (** tag 30 — UCS-2 (Basic Multilingual Plane). *)

val all : t list
(** [all] lists every string type, in tag order. *)

val tag : t -> int
(** [tag st] is the ASN.1 universal tag number. *)

val of_tag : int -> t option
(** [of_tag n] is the string type with universal tag [n], if any. *)

val name : t -> string
(** [name st] is the standard name, e.g. ["PrintableString"]. *)

val of_name : string -> t option
(** [of_name s] inverts {!name} (case-sensitive). *)

val standard_encoding : t -> Unicode.Codec.encoding
(** [standard_encoding st] is the byte encoding the standard prescribes
    for values of this type (UTF-8 for UTF8String, ASCII for
    PrintableString/IA5String/..., UCS-2 for BMPString, UCS-4 for
    UniversalString, Latin-1 as the pragmatic T.61 model). *)

val allows : t -> Unicode.Cp.t -> bool
(** [allows st cp] is [true] iff the code point is inside the type's
    standard repertoire. *)

val validate : t -> Unicode.Cp.t array -> Unicode.Cp.t list
(** [validate st cps] lists (in order) the code points of [cps] that
    violate the repertoire — empty means compliant. *)

val encode_value : t -> Unicode.Cp.t array -> (string, string) result
(** [encode_value st cps] serializes code points into content octets
    using {!standard_encoding} {e without} repertoire checks (a CA with
    weak validation can put anything in any string type — that is the
    paper's T1/T3 issue).  Fails only if the encoding physically cannot
    represent a code point. *)

val decode_value : t -> string -> (Unicode.Cp.t array, string) result
(** [decode_value st bytes] decodes content octets with the standard
    encoding, strictly. *)
