(** Low-level DER serialization primitives.

    Every function returns the complete TLV byte string.  Only
    single-byte tags are needed for X.509 (universal and context tag
    numbers up to 30). *)

val definite_length : int -> string
(** [definite_length n] is the DER length octets for content length [n]. *)

val tlv : int -> string -> string
(** [tlv tag_byte content] assembles a TLV triplet.  [tag_byte] is the
    full identifier octet (class bits, constructed bit, tag number). *)

val universal : ?constructed:bool -> int -> string -> string
(** [universal n content] is a universal-class TLV with tag number [n]. *)

val context : ?constructed:bool -> int -> string -> string
(** [context n content] is a context-specific TLV with tag number [n]. *)

val boolean : bool -> string
val null : string

val integer_of_int : int -> string
(** [integer_of_int n] encodes a (possibly negative) OCaml int. *)

val integer_bytes : string -> string
(** [integer_bytes b] wraps raw big-endian content octets as INTEGER,
    inserting a leading zero if the sign bit would flip. *)

val oid : Oid.t -> string
val octet_string : string -> string
val bit_string : ?unused:int -> string -> string
val sequence : string list -> string
(** [sequence parts] concatenates already-encoded elements. *)

val set : string list -> string
(** [set parts] sorts elements into DER SET-OF order before wrapping. *)

val set_unsorted : string list -> string
(** [set_unsorted parts] wraps without sorting — used to synthesize the
    noncompliant encodings that DER forbids. *)

val str : Str_type.t -> string -> string
(** [str st content] wraps raw content octets with the string type's
    universal tag — no repertoire or encoding checks, by design. *)

val utc_time : Time.t -> string
val generalized_time : Time.t -> string

val time : Time.t -> string
(** [time t] follows RFC 5280: UTCTime before 2050, GeneralizedTime
    from 2050 on. *)
