let ascii_hosts =
  [| "www"; "mail"; "shop"; "api"; "portal"; "login"; "cloud"; "app"; "secure";
     "static"; "cdn"; "intranet"; "vpn"; "webmail"; "m" |]

let ascii_domains =
  [| "example.com"; "example.org"; "example.net"; "acme-widgets.com";
     "nordwind-reisen.de"; "mittelstand-ag.de"; "prazska-banka.cz";
     "sklep-online.pl"; "boulangerie-paris.fr"; "tokyo-denki.jp";
     "seoul-trading.kr"; "moscow-export.ru"; "athens-foods.gr";
     "lisboa-mar.pt"; "wien-kaffee.at"; "zurich-uhr.ch"; "madrid-libros.es";
     "roma-pasta.it"; "oslo-fisk.no"; "porto-vinho.pt" |]

(* U-labels in UTF-8 across the scripts the paper's corpus exhibits. *)
let idn_ulabels =
  [| "b\xC3\xBCcher" (* bücher *); "caf\xC3\xA9" (* café *);
     "m\xC3\xBCnchen" (* münchen *); "k\xC3\xB8benhavn" (* københavn *);
     "\xC5\x82\xC3\xB3d\xC5\xBA" (* łódź *); "praha-\xC4\x8Desko" (* praha-česko *);
     "\xCE\xB5\xCE\xBB\xCE\xBB\xCE\xAC\xCE\xB4\xCE\xB1" (* ελλάδα *);
     "\xD1\x80\xD0\xBE\xD1\x81\xD1\x81\xD0\xB8\xD1\x8F" (* россия *);
     "\xD0\xBC\xD0\xB0\xD0\xB3\xD0\xB0\xD0\xB7\xD0\xB8\xD0\xBD" (* магазин *);
     "\xE4\xB8\xAD\xE6\x96\x87" (* 中文 *);
     "\xE9\x93\xB6\xE8\xA1\x8C" (* 银行 *);
     "\xE6\x97\xA5\xE6\x9C\xAC" (* 日本 *);
     "\xED\x95\x9C\xEA\xB5\xAD" (* 한국 *);
     "\xD8\xB4\xD8\xA8\xD9\x83\xD8\xA9" (* شبكة *);
     "\xE0\xA4\xAD\xE0\xA4\xBE\xE0\xA4\xB0\xE0\xA4\xA4" (* भारत *) |]

let unicode_orgs =
  [| ("Samco Autotechnik GmbH", "DE");
     ("NOWOCZESNASTODO\xC5\x81A.PL SP. Z O.O.", "PL");
     ("SKAT Elektroniks, OOO", "RU");
     ("RWE Energie, s.r.o.", "CZ");
     ("Peddy Shield GmbH", "DE");
     ("\xE6\xA0\xAA\xE5\xBC\x8F\xE4\xBC\x9A\xE7\xA4\xBE \xE4\xB8\xAD\xE5\x9B\xBD\xE9\x8A\x80\xE8\xA1\x8C", "JP");
     ("EDP - Energias de Portugal, S.A", "PT");
     ("St\xC3\xB6ri AG", "CH");
     ("\xC4\x8Cesk\xC3\xA1 spo\xC5\x99itelna, a.s.", "CZ");
     ("Soci\xC3\xA9t\xC3\xA9 G\xC3\xA9n\xC3\xA9rale", "FR");
     ("Banco Santander, S.A. \xE2\x80\x93 Madrid", "ES");
     ("M\xC3\xBCller & S\xC3\xB6hne KG", "DE");
     ("\xED\x95\x9C\xEA\xB5\xAD \xEC\xA0\x95\xEB\xB3\xB4", "KR");
     ("\xCE\x95\xCE\xBB\xCE\xBB\xCE\xB7\xCE\xBD\xCE\xB9\xCE\xBA\xCE\xAE \xCE\xA4\xCF\x81\xCE\xAC\xCF\x80\xCE\xB5\xCE\xB6\xCE\xB1", "GR");
     ("OOO \xD0\xA0\xD0\xBE\xD0\xB3\xD0\xB0 \xD0\xB8 \xD0\x9A\xD0\xBE\xD0\xBF\xD1\x8B\xD1\x82\xD0\xB0", "RU");
     ("\xD7\x91\xD7\xA0\xD7\xA7 \xD7\x99\xD7\xA9\xD7\xA8\xD7\x90\xD7\x9C" (* בנק ישראל *), "IL");
     ("\xD8\xB4\xD8\xB1\xD9\x83\xD8\xA9 \xD8\xA7\xD9\x84\xD8\xA7\xD8\xAA\xD8\xB5\xD8\xA7\xD9\x84\xD8\xA7\xD8\xAA" (* شركة الاتصالات *), "SA") |]

let ascii_orgs =
  [| ("Acme Widgets Inc", "US"); ("Northwind Traders Ltd", "GB");
     ("Contoso Pharmaceuticals", "US"); ("Fabrikam Industries", "US");
     ("Wingtip Toys GmbH", "DE"); ("Tailspin Aviation", "CA");
     ("Litware Hosting", "NL"); ("Proseware Analytics", "SE") |]

let localities =
  [| "Berlin"; "Praha"; "Warszawa"; "\xC3\x8Ele-de-France" (* Île-de-France *);
     "M\xC3\xBCnchen"; "K\xC3\xB8benhavn"; "Z\xC3\xBCrich"; "Wien"; "Madrid";
     "Lisboa"; "\xE6\x9D\xB1\xE4\xBA\xAC" (* 東京 *); "\xEC\x84\x9C\xEC\x9A\xB8" (* 서울 *) |]

let random_idn_domain g =
  let ulabel = Ucrypto.Prng.pick g idn_ulabels in
  let alabel =
    match Idna.Punycode.encode_utf8 ulabel with
    | Ok body -> "xn--" ^ body
    | Error _ -> assert false
  in
  let suffix = Ucrypto.Prng.pick g [| "com"; "net"; "de"; "pl"; "cz"; "jp"; "kr"; "ru"; "gr" |] in
  alabel ^ "." ^ suffix

let random_ascii_domain g =
  let host = Ucrypto.Prng.pick g ascii_hosts in
  let domain = Ucrypto.Prng.pick g ascii_domains in
  host ^ "." ^ domain
