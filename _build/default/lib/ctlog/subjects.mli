(** Pools of realistic subject material for the corpus generator:
    multilingual organization names (modelled on the paper's Table 3
    examples), IDN U-labels across scripts, and ASCII base domains. *)

val ascii_hosts : string array
(** Base host name stems, e.g. ["shop"], ["mail"]. *)

val ascii_domains : string array
(** Registrable ASCII domains. *)

val idn_ulabels : string array
(** UTF-8 U-labels across Latin-diacritic, Greek, Cyrillic, CJK, Hangul
    and Arabic scripts. *)

val unicode_orgs : (string * string) array
(** [(organization name, country code)] pairs with non-ASCII content. *)

val ascii_orgs : (string * string) array

val localities : string array
(** Locality names, several with diacritics (e.g. "Île-de-France"). *)

val random_idn_domain : Ucrypto.Prng.t -> string
(** A syntactically valid IDN domain: A-label + ASCII registrable
    suffix. *)

val random_ascii_domain : Ucrypto.Prng.t -> string
