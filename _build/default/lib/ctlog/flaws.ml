type spec = {
  mutable subject : X509.Dn.atv list;
  mutable san : X509.General_name.t list;
  mutable policies : X509.Extension.policy list;
  mutable crldp : X509.General_name.t list;
  mutable not_before_form : X509.Certificate.time_form option;
}

type t =
  | Control_char_in_dn
  | Interval_nul_subject
  | Del_in_dn
  | Bidi_in_cn
  | Invisible_space
  | Leading_whitespace
  | Trailing_whitespace
  | Replacement_char
  | Malformed_alabel
  | Unpermitted_alabel
  | Nonnfc_alabel
  | Bad_dns_char
  | Unicode_dnsname
  | Deprecated_encoding
  | Explicit_text_printable
  | Explicit_text_ia5
  | Explicit_text_bmp
  | Explicit_text_too_long
  | Explicit_text_bad_bytes
  | Cn_not_in_san
  | Duplicate_cn
  | Country_lowercase
  | Country_fullname
  | Long_cn
  | Utf8_bad_bytes
  | Bmp_odd_bytes
  | Email_unicode
  | Uri_in_san
  | Crldp_ctrl
  | Wrong_time_form

let all =
  [
    Control_char_in_dn; Interval_nul_subject; Del_in_dn; Bidi_in_cn; Invisible_space;
    Leading_whitespace; Trailing_whitespace; Replacement_char; Malformed_alabel;
    Unpermitted_alabel; Nonnfc_alabel; Bad_dns_char; Unicode_dnsname;
    Deprecated_encoding; Explicit_text_printable; Explicit_text_ia5; Explicit_text_bmp;
    Explicit_text_too_long; Explicit_text_bad_bytes; Cn_not_in_san; Duplicate_cn;
    Country_lowercase;
    Country_fullname; Long_cn; Utf8_bad_bytes; Bmp_odd_bytes; Email_unicode;
    Uri_in_san; Crldp_ctrl; Wrong_time_form;
  ]

let name = function
  | Control_char_in_dn -> "control-char-in-dn"
  | Interval_nul_subject -> "interval-nul-subject"
  | Del_in_dn -> "del-in-dn"
  | Bidi_in_cn -> "bidi-in-cn"
  | Invisible_space -> "invisible-space"
  | Leading_whitespace -> "leading-whitespace"
  | Trailing_whitespace -> "trailing-whitespace"
  | Replacement_char -> "replacement-char"
  | Malformed_alabel -> "malformed-alabel"
  | Unpermitted_alabel -> "unpermitted-alabel"
  | Nonnfc_alabel -> "nonnfc-alabel"
  | Bad_dns_char -> "bad-dns-char"
  | Unicode_dnsname -> "unicode-dnsname"
  | Deprecated_encoding -> "deprecated-encoding"
  | Explicit_text_printable -> "explicit-text-printable"
  | Explicit_text_ia5 -> "explicit-text-ia5"
  | Explicit_text_bmp -> "explicit-text-bmp"
  | Explicit_text_too_long -> "explicit-text-too-long"
  | Explicit_text_bad_bytes -> "explicit-text-bad-bytes"
  | Cn_not_in_san -> "cn-not-in-san"
  | Duplicate_cn -> "duplicate-cn"
  | Country_lowercase -> "country-lowercase"
  | Country_fullname -> "country-fullname"
  | Long_cn -> "long-cn"
  | Utf8_bad_bytes -> "utf8-bad-bytes"
  | Bmp_odd_bytes -> "bmp-odd-bytes"
  | Email_unicode -> "email-unicode"
  | Uri_in_san -> "uri-in-san"
  | Crldp_ctrl -> "crldp-ctrl"
  | Wrong_time_form -> "wrong-time-form"

let expected_lints = function
  | Control_char_in_dn -> [ "e_rfc_subject_dn_not_printable_characters" ]
  | Interval_nul_subject -> [ "e_rfc_subject_dn_not_printable_characters" ]
  | Del_in_dn -> [ "w_subject_dn_del_character" ]
  | Bidi_in_cn -> [ "w_subject_dn_bidi_controls" ]
  | Invisible_space -> [ "w_subject_dn_invisible_characters" ]
  | Leading_whitespace -> [ "w_community_subject_dn_leading_whitespace" ]
  | Trailing_whitespace -> [ "w_community_subject_dn_trailing_whitespace" ]
  | Replacement_char -> [ "w_subject_dn_replacement_character" ]
  | Malformed_alabel -> [ "e_rfc_dns_idn_malformed_unicode" ]
  | Unpermitted_alabel -> [ "e_rfc_dns_idn_a2u_unpermitted_unichar" ]
  | Nonnfc_alabel -> [ "e_rfc_dns_idn_not_nfc" ]
  | Bad_dns_char -> [ "e_cab_dns_bad_character_in_label" ]
  | Unicode_dnsname ->
      [ "e_ext_san_dns_unicode_not_punycode"; "e_ext_san_dns_contain_unpermitted_unichar" ]
  | Deprecated_encoding -> [] (* attribute-dependent; see generator *)
  | Explicit_text_printable -> [ "w_rfc_ext_cp_explicit_text_not_utf8" ]
  | Explicit_text_ia5 ->
      [ "e_rfc_ext_cp_explicit_text_ia5"; "w_rfc_ext_cp_explicit_text_not_utf8" ]
  | Explicit_text_bmp ->
      [ "w_ext_cp_explicit_text_bmp"; "w_rfc_ext_cp_explicit_text_not_utf8" ]
  | Explicit_text_too_long -> [ "e_rfc_ext_cp_explicit_text_too_long" ]
  | Explicit_text_bad_bytes -> [ "e_utf8string_invalid_byte_sequence" ]
  | Cn_not_in_san -> [ "w_cab_subject_common_name_not_in_san" ]
  | Duplicate_cn ->
      [ "e_subject_duplicate_attribute"; "w_cab_subject_contain_extra_common_name" ]
  | Country_lowercase -> [ "e_subject_country_not_uppercase" ]
  | Country_fullname -> [ "e_subject_country_not_two_letters" ]
  | Long_cn -> [ "e_subject_common_name_max_length" ]
  | Utf8_bad_bytes -> [ "e_utf8string_invalid_byte_sequence" ]
  | Bmp_odd_bytes -> [ "e_bmpstring_odd_number_of_bytes" ]
  | Email_unicode -> [ "e_san_rfc822_name_invalid_ascii" ]
  | Uri_in_san -> [ "w_ext_san_uri_discouraged" ]
  | Crldp_ctrl -> [ "e_crldp_uri_control_characters" ]
  | Wrong_time_form -> [ "e_validity_time_wrong_form" ]

(* --- spec surgery helpers ------------------------------------------- *)

let find_attr spec attr =
  List.find_opt (fun (a : X509.Dn.atv) -> a.X509.Dn.typ = attr) spec.subject

let replace_attr spec attr f =
  spec.subject <-
    List.map
      (fun (a : X509.Dn.atv) -> if a.X509.Dn.typ = attr then f a else a)
      spec.subject

let attr_text atv = X509.Dn.atv_text atv

(* Pick a DirectoryString attribute present in the spec, weighted
   roughly like the paper's per-field counts (Table 11). *)
let pick_present_attr ?(include_cn = true) g spec =
  let weighted =
    [
      (X509.Attr.Organization_name, 26.0);
      (X509.Attr.Common_name, if include_cn then 25.0 else 0.0);
      (X509.Attr.Locality_name, 18.0); (X509.Attr.Organizational_unit_name, 12.0);
      (X509.Attr.Jurisdiction_locality, 4.2); (X509.Attr.Jurisdiction_state, 2.8);
      (X509.Attr.State_or_province_name, 1.7); (X509.Attr.Postal_code, 1.3);
      (X509.Attr.Street_address, 1.0);
    ]
  in
  let present =
    List.filter (fun (a, w) -> w > 0.0 && find_attr spec a <> None) weighted
  in
  match present with
  | [] -> if include_cn then X509.Attr.Common_name else X509.Attr.Organization_name
  | _ -> Ucrypto.Prng.weighted g present

let set_raw spec attr st bytes =
  if find_attr spec attr = None then
    (* Attribute absent (e.g. IDN certs carry only a CN): add it, so the
       flaw always lands. *)
    spec.subject <- spec.subject @ [ X509.Dn.atv_raw ~st attr bytes ]
  else replace_attr spec attr (fun _ -> X509.Dn.atv_raw ~st attr bytes)

let mutate_text g spec attr f =
  (* Fall back to the CN when the requested attribute is absent. *)
  let attr = if find_attr spec attr = None then X509.Attr.Common_name else attr in
  match find_attr spec attr with
  | None -> ()
  | Some atv ->
      let text = attr_text atv in
      let text' = f text in
      ignore g;
      replace_attr spec attr (fun _ ->
          X509.Dn.atv ~st:Asn1.Str_type.Utf8_string attr text')

let insert_at g text fragment =
  let n = String.length text in
  let pos = if n = 0 then 0 else Ucrypto.Prng.int g (n + 1) in
  String.sub text 0 pos ^ fragment ^ String.sub text pos (n - pos)

(* Replace the first dNSName in the SAN (and keep the CN aligned when it
   mirrors the SAN) with [name]. *)
let set_primary_dns ?(update_cn = true) spec name =
  let old = ref None in
  let replaced = ref false in
  spec.san <-
    List.map
      (fun gn ->
        match gn with
        | X509.General_name.Dns_name s when not !replaced ->
            replaced := true;
            old := Some s;
            X509.General_name.Dns_name name
        | gn -> gn)
      spec.san;
  if not !replaced then spec.san <- X509.General_name.Dns_name name :: spec.san;
  if update_cn then
    match (!old, find_attr spec X509.Attr.Common_name) with
    | Some old_name, Some atv when attr_text atv = old_name ->
        replace_attr spec X509.Attr.Common_name (fun _ ->
            X509.Dn.atv X509.Attr.Common_name name)
    | _ -> ()

let explicit_text_policy st text =
  {
    X509.Extension.policy_oid = Asn1.Oid.of_string_exn "2.23.140.1.2.2";
    notice = Some { X509.Extension.explicit_text = Some (Asn1.Value.str_raw st text) };
  }

(* A-label whose body decodes to the given UTF-8 text. *)
let alabel_of text =
  match Idna.Punycode.encode_utf8 text with
  | Ok body -> "xn--" ^ body
  | Error m -> invalid_arg ("Flaws.alabel_of: " ^ m)

let apply g spec flaw =
  match flaw with
  | Control_char_in_dn ->
      let attr = pick_present_attr g spec in
      let ctrl = Ucrypto.Prng.pick g [| "\x00"; "\x1B"; "\x01"; "\x0A" |] in
      mutate_text g spec attr (fun t -> insert_at g t ctrl)
  | Interval_nul_subject ->
      mutate_text g spec X509.Attr.Organization_name (fun t ->
          let buf = Buffer.create (String.length t * 2) in
          String.iter
            (fun c ->
              Buffer.add_char buf '\x00';
              Buffer.add_char buf c)
            t;
          Buffer.contents buf)
  | Del_in_dn ->
      let attr = pick_present_attr ~include_cn:false g spec in
      mutate_text g spec attr (fun t -> insert_at g t "\x7F\x7F")
  | Bidi_in_cn ->
      mutate_text g spec X509.Attr.Common_name (fun t ->
          insert_at g t "\xE2\x80\xAE" (* U+202E RLO *));
      (* Keep the SAN aligned so the structural lint stays quiet. *)
      (match find_attr spec X509.Attr.Common_name with
      | Some atv -> set_primary_dns ~update_cn:false spec (attr_text atv)
      | None -> ())
  | Invisible_space ->
      let space = Ucrypto.Prng.pick g [| "\xC2\xA0"; "\xE3\x80\x80"; "\xE2\x80\x8B" |] in
      mutate_text g spec X509.Attr.Organization_name (fun t ->
          match String.index_opt t ' ' with
          | Some i ->
              String.sub t 0 i ^ space ^ String.sub t (i + 1) (String.length t - i - 1)
          | None -> t ^ space)
  | Leading_whitespace ->
      let attr = pick_present_attr ~include_cn:false g spec in
      mutate_text g spec attr (fun t -> " " ^ t)
  | Trailing_whitespace ->
      let attr = pick_present_attr ~include_cn:false g spec in
      mutate_text g spec attr (fun t -> t ^ " ")
  | Replacement_char ->
      mutate_text g spec X509.Attr.Organization_name (fun t ->
          insert_at g t "\xEF\xBF\xBD")
  | Malformed_alabel ->
      let bad = Ucrypto.Prng.pick g [| "xn--"; "xn--ab_c"; "xn--a!b" |] in
      set_primary_dns spec (bad ^ ".example.com")
  | Unpermitted_alabel ->
      let text =
        Ucrypto.Prng.pick g
          [| "\xE2\x80\x8Ewww" (* LRM + www *);
             "shop\xE2\x80\x8B" (* zero-width space *);
             "pay\xC2\xADpal" (* soft hyphen *) |]
      in
      set_primary_dns spec (alabel_of text ^ ".example.com")
  | Nonnfc_alabel ->
      (* e + combining acute: decodes fine but is not NFC. *)
      set_primary_dns spec (alabel_of "e\xCC\x81cole" ^ ".example.fr")
  | Bad_dns_char ->
      let bad = Ucrypto.Prng.pick g [| "foo_bar"; "bad char"; "semi;colon" |] in
      set_primary_dns spec (bad ^ ".example.com")
  | Unicode_dnsname ->
      let ulabel = Ucrypto.Prng.pick g [| "b\xC3\xBCcher"; "caf\xC3\xA9"; "\xE4\xB8\xAD\xE6\x96\x87" |] in
      set_primary_dns spec (ulabel ^ ".example.com")
  | Deprecated_encoding ->
      let attr = pick_present_attr g spec in
      (match find_attr spec attr with
      | None -> ()
      | Some atv ->
          let text = attr_text atv in
          let cps = Unicode.Codec.cps_of_utf8 text in
          let st =
            Ucrypto.Prng.weighted g
              [ (Asn1.Str_type.Teletex_string, 0.5); (Asn1.Str_type.Bmp_string, 0.4);
                (Asn1.Str_type.Universal_string, 0.1) ]
          in
          let raw =
            match Unicode.Codec.encode (Asn1.Str_type.standard_encoding st) cps with
            | Ok raw -> raw
            | Error _ ->
                (* Characters outside the target encoding: keep Latin-1
                   projection, which is itself a defect. *)
                String.concat ""
                  (List.map
                     (fun cp -> String.make 1 (Char.chr (cp land 0xFF)))
                     (Array.to_list cps))
          in
          set_raw spec attr st raw)
  | Explicit_text_printable ->
      spec.policies <-
        spec.policies
        @ [ explicit_text_policy Asn1.Str_type.Printable_string "Issued per CPS" ]
  | Explicit_text_ia5 ->
      spec.policies <-
        spec.policies @ [ explicit_text_policy Asn1.Str_type.Ia5_string "See CPS" ]
  | Explicit_text_bmp ->
      let raw = Unicode.Codec.encode_exn Unicode.Codec.Ucs2 (Unicode.Codec.cps_of_utf8 "Notice") in
      spec.policies <- spec.policies @ [ explicit_text_policy Asn1.Str_type.Bmp_string raw ]
  | Explicit_text_too_long ->
      let text = String.concat "" (List.init 30 (fun _ -> "liability ")) in
      spec.policies <-
        spec.policies @ [ explicit_text_policy Asn1.Str_type.Utf8_string text ]
  | Explicit_text_bad_bytes ->
      (* Latin-1 bytes in a declared UTF8String — the physical encoding
         error dominating the paper's §5.1 scan. *)
      spec.policies <-
        spec.policies
        @ [ explicit_text_policy Asn1.Str_type.Utf8_string "Einschr\xE4nkung siehe CPS" ]
  | Cn_not_in_san ->
      spec.san <-
        List.map
          (fun gn ->
            match gn with
            | X509.General_name.Dns_name s -> X509.General_name.Dns_name ("alt-" ^ s)
            | gn -> gn)
          spec.san
  | Duplicate_cn -> (
      match find_attr spec X509.Attr.Common_name with
      | Some atv -> spec.subject <- spec.subject @ [ atv ]
      | None -> ())
  | Country_lowercase ->
      set_raw spec X509.Attr.Country_name Asn1.Str_type.Printable_string "de"
  | Country_fullname ->
      let v = Ucrypto.Prng.pick g [| "Germany"; "GERMANY"; "DE,de"; "Poland " |] in
      set_raw spec X509.Attr.Country_name Asn1.Str_type.Printable_string v
  | Long_cn ->
      let long = "very-long-label-" ^ String.make 60 'x' ^ ".example.com" in
      set_primary_dns spec long
  | Utf8_bad_bytes ->
      (* Latin-1 bytes declared as UTF8String, e.g. "St\xF6ri AG". *)
      set_raw spec X509.Attr.Organization_name Asn1.Str_type.Utf8_string "St\xF6ri AG"
  | Bmp_odd_bytes ->
      let text =
        match find_attr spec X509.Attr.Organization_name with
        | Some atv -> attr_text atv
        | None -> "Example Org"
      in
      let raw = Unicode.Codec.encode_exn Unicode.Codec.Ucs2 (Unicode.Codec.cps_of_utf8 text) in
      set_raw spec X509.Attr.Organization_name Asn1.Str_type.Bmp_string (raw ^ "\x00")
  | Email_unicode ->
      spec.san <-
        spec.san @ [ X509.General_name.Rfc822_name "info@b\xC3\xBCcher.de" ]
  | Uri_in_san ->
      spec.san <- spec.san @ [ X509.General_name.Uri "https://example.com/service" ]
  | Crldp_ctrl ->
      spec.crldp <- [ X509.General_name.Uri "http://ssl\x01test.com/ca.crl" ]
  | Wrong_time_form -> spec.not_before_form <- Some X509.Certificate.Generalized
