(** Noncompliance flaw injection.

    Each flaw mutates a certificate spec so that the resulting DER
    carries a *real* defect of the kind the paper catalogues (§4.3,
    §4.4) — the linter must then rediscover it from the bytes.  The
    [expected_lints] mapping doubles as generation ground truth for the
    calibration tests. *)

type spec = {
  mutable subject : X509.Dn.atv list;  (** one single-ATV RDN each *)
  mutable san : X509.General_name.t list;
  mutable policies : X509.Extension.policy list;
  mutable crldp : X509.General_name.t list;
  mutable not_before_form : X509.Certificate.time_form option;
}

type t =
  | Control_char_in_dn      (** NUL/ESC in a subject attribute (T1) *)
  | Interval_nul_subject    (** "[NUL]C[NUL]&[NUL]I[NUL]S" pattern (F4) *)
  | Del_in_dn               (** stray DEL characters (F4) *)
  | Bidi_in_cn              (** U+202E spoofing in CN (F3) *)
  | Invisible_space         (** lookalike whitespace in O (Table 3) *)
  | Leading_whitespace
  | Trailing_whitespace
  | Replacement_char        (** U+FFFD from broken transcoding *)
  | Malformed_alabel        (** undecodable xn-- label (F1) *)
  | Unpermitted_alabel      (** A-label decoding to disallowed cps (F1) *)
  | Nonnfc_alabel           (** A-label decoding to non-NFC text (T2) *)
  | Bad_dns_char            (** underscore/space in DNSName *)
  | Unicode_dnsname         (** raw U-label in SAN *)
  | Deprecated_encoding     (** Teletex/BMP/Universal DirectoryString (T3b) *)
  | Explicit_text_printable (** explicitText not UTF8String (warning) *)
  | Explicit_text_ia5       (** explicitText IA5String (error) *)
  | Explicit_text_bmp
  | Explicit_text_too_long
  | Explicit_text_bad_bytes (** Latin-1 bytes declared UTF8String (§5.1) *)
  | Cn_not_in_san           (** structural violation (T3c) *)
  | Duplicate_cn
  | Country_lowercase
  | Country_fullname        (** "Germany" instead of "DE" *)
  | Long_cn                 (** over the 64-character upper bound *)
  | Utf8_bad_bytes          (** Latin-1 bytes declared UTF8String *)
  | Bmp_odd_bytes
  | Email_unicode           (** raw non-ASCII rfc822Name *)
  | Uri_in_san
  | Crldp_ctrl              (** control byte inside a CRLDP URI *)
  | Wrong_time_form         (** GeneralizedTime for a pre-2050 date *)

val name : t -> string

val all : t list

val expected_lints : t -> string list
(** Lints this flaw is guaranteed to trigger (there may be more). *)

val apply : Ucrypto.Prng.t -> spec -> t -> unit
(** [apply g spec flaw] mutates [spec] in place. *)

val set_primary_dns : ?update_cn:bool -> spec -> string -> unit
(** Replace the primary SAN dNSName (keeping a mirroring CN aligned) —
    exposed for the generator's era-practice injection. *)
