(** The RFC 6962 §3 issuance flow: precertificate (with the critical CT
    poison extension) → log submission → SCT → final certificate with
    the SCT list embedded.  The paper's dataset step filters 54.7%
    precertificates by exactly this poison marker (§4.1). *)

val sct_to_bytes : Log.sct -> string
(** Length-prefixed serialization of an SCT for the SCT-list
    extension. *)

val sct_of_bytes : string -> (Log.sct, string) result

type issued = {
  precert : X509.Certificate.t;   (** carries the poison extension *)
  final : X509.Certificate.t;     (** carries the SCT list instead *)
  sct : Log.sct;
}

val issue_with_sct :
  Log.t -> X509.Certificate.keypair -> X509.Certificate.tbs -> issued
(** [issue_with_sct log ca tbs] runs the full flow: signs the poisoned
    precertificate, submits it, embeds the returned SCT in the final
    certificate, and logs the final certificate too. *)

val embedded_scts : X509.Certificate.t -> Log.sct list
(** Parse the SCT-list extension of a final certificate. *)

val verify_embedded : Log.t -> X509.Certificate.t -> bool
(** [verify_embedded log cert] checks that some embedded SCT is a valid
    SCT of [log] over the certificate's precertificate form. *)
