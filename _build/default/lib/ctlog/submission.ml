let u16 n = String.init 2 (fun i -> Char.chr ((n lsr (8 * (1 - i))) land 0xFF))

let read_u16 s off =
  if off + 2 > String.length s then None
  else Some ((Char.code s.[off] lsl 8) lor Char.code s.[off + 1])

let sct_to_bytes (sct : Log.sct) =
  u16 (String.length sct.Log.log_id)
  ^ sct.Log.log_id
  ^ u16 sct.Log.timestamp
  ^ u16 (String.length sct.Log.signature)
  ^ sct.Log.signature

let sct_of_bytes s =
  match read_u16 s 0 with
  | None -> Error "truncated log id length"
  | Some id_len -> (
      let off = 2 in
      if off + id_len > String.length s then Error "truncated log id"
      else begin
        let log_id = String.sub s off id_len in
        let off = off + id_len in
        match read_u16 s off with
        | None -> Error "truncated timestamp"
        | Some timestamp -> (
            let off = off + 2 in
            match read_u16 s off with
            | None -> Error "truncated signature length"
            | Some sig_len ->
                let off = off + 2 in
                if off + sig_len > String.length s then Error "truncated signature"
                else
                  Ok { Log.log_id; timestamp; signature = String.sub s off sig_len })
      end)

type issued = {
  precert : X509.Certificate.t;
  final : X509.Certificate.t;
  sct : Log.sct;
}

let issue_with_sct log ca (tbs : X509.Certificate.tbs) =
  let precert_tbs =
    { tbs with
      X509.Certificate.extensions =
        tbs.X509.Certificate.extensions @ [ X509.Extension.ct_poison ] }
  in
  let precert = X509.Certificate.sign ca precert_tbs in
  let sct = Log.add_chain log ~precert:true precert.X509.Certificate.der in
  let final_tbs =
    { tbs with
      X509.Certificate.extensions =
        tbs.X509.Certificate.extensions
        @ [ X509.Extension.sct_list (sct_to_bytes sct) ] }
  in
  let final = X509.Certificate.sign ca final_tbs in
  ignore (Log.add_chain log final.X509.Certificate.der);
  { precert; final; sct }

let embedded_scts cert =
  match
    X509.Extension.find cert.X509.Certificate.tbs.X509.Certificate.extensions
      X509.Extension.Oids.sct_list
  with
  | None -> []
  | Some e -> (
      match Asn1.Value.decode e.X509.Extension.value with
      | Ok (Asn1.Value.Octet_string payload) -> (
          match sct_of_bytes payload with Ok sct -> [ sct ] | Error _ -> [])
      | Ok _ | Error _ -> [])

(* The signed precertificate bytes depend on the issuing key, so the
   relying party matches the embedded SCT against the log's
   precertificate entries instead of re-deriving the poisoned TBS. *)
let verify_embedded log cert =
  match embedded_scts cert with
  | [] -> false
  | scts ->
      List.exists
        (fun sct ->
          List.exists
            (fun (e : Log.entry) ->
              e.Log.precert && Log.verify_sct log ~der:e.Log.der sct)
            (Log.entries log))
        scts
