lib/ctlog/merkle.mli:
