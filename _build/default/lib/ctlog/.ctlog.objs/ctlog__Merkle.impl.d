lib/ctlog/merkle.ml: Array List String Ucrypto
