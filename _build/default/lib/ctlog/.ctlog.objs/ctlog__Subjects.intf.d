lib/ctlog/subjects.mli: Ucrypto
