lib/ctlog/submission.mli: Log X509
