lib/ctlog/flaws.ml: Array Asn1 Buffer Char Idna List String Ucrypto Unicode X509
