lib/ctlog/submission.ml: Asn1 Char List Log String X509
