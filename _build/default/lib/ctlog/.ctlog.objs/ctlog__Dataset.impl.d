lib/ctlog/dataset.ml: Asn1 Char Flaws List Log String Subjects Submission Ucrypto X509
