lib/ctlog/flaws.mli: Ucrypto X509
