lib/ctlog/dataset.mli: Asn1 Flaws Log Ucrypto X509
