lib/ctlog/subjects.ml: Idna Ucrypto
