lib/ctlog/log.ml: List Merkle String Ucrypto
