lib/ctlog/log.mli:
