lib/ucrypto/bignum.ml: Array Char List Printf Prng Stdlib String
