lib/ucrypto/sha256.mli:
