lib/ucrypto/prng.ml: Array Char Int64 List String
