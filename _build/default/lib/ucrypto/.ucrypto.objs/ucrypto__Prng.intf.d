lib/ucrypto/prng.mli:
