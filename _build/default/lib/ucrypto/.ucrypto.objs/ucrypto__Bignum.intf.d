lib/ucrypto/bignum.mli: Prng
