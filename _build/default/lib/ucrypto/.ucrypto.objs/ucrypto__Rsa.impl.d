lib/ucrypto/rsa.ml: Asn1 Bignum Sha256 String
