lib/ucrypto/rsa.mli: Bignum Prng
