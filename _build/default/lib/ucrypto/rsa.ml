type public = { n : Bignum.t; e : Bignum.t }
type key = { public : public; d : Bignum.t; p : Bignum.t; q : Bignum.t }

let e_65537 = Bignum.of_int 65537

let generate ?(bits = 256) g =
  let half = bits / 2 in
  let rec go () =
    let p = Bignum.random_prime g half in
    let q = Bignum.random_prime g (bits - half) in
    if Bignum.equal p q then go ()
    else begin
      let n = Bignum.mul p q in
      let phi = Bignum.mul (Bignum.sub p Bignum.one) (Bignum.sub q Bignum.one) in
      match Bignum.mod_inverse e_65537 phi with
      | None -> go ()
      | Some d -> { public = { n; e = e_65537 }; d; p; q }
    end
  in
  go ()

(* DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1). *)
let sha256_digest_info =
  "\x30\x31\x30\x0d\x06\x09\x60\x86\x48\x01\x65\x03\x04\x02\x01\x05\x00\x04\x20"

let emsa_pkcs1_v15 ~key_len msg =
  let t = sha256_digest_info ^ Sha256.digest msg in
  let t_len = String.length t in
  if key_len < t_len + 3 then
    (* Modulus shorter than the DigestInfo: degrade to a truncated
       digest-only payload so small demo keys still work. *)
    let d = Sha256.digest msg in
    "\x00\x01" ^ String.sub d 0 (max 0 (key_len - 3)) ^ "\x00" |> fun s ->
    String.sub s 0 (min (String.length s) key_len)
  else
    "\x00\x01" ^ String.make (key_len - t_len - 3) '\xFF' ^ "\x00" ^ t

let key_octets n = (Bignum.bit_length n + 7) / 8

let sign key msg =
  let key_len = key_octets key.public.n in
  let em = emsa_pkcs1_v15 ~key_len msg in
  let m = Bignum.of_bytes_be em in
  let s = Bignum.mod_pow ~base:m ~exp:key.d ~modulus:key.public.n in
  let raw = Bignum.to_bytes_be s in
  String.make (key_len - String.length raw) '\x00' ^ raw

let verify pub ~msg ~signature =
  let key_len = key_octets pub.n in
  if String.length signature <> key_len then false
  else begin
    let s = Bignum.of_bytes_be signature in
    if Bignum.compare s pub.n >= 0 then false
    else begin
      let m = Bignum.mod_pow ~base:s ~exp:pub.e ~modulus:pub.n in
      let raw = Bignum.to_bytes_be m in
      let em = String.make (key_len - String.length raw) '\x00' ^ raw in
      String.equal em (emsa_pkcs1_v15 ~key_len msg)
    end
  end

let public_to_der pub =
  Asn1.Writer.sequence
    [ Asn1.Writer.integer_bytes (Bignum.to_bytes_be pub.n);
      Asn1.Writer.integer_bytes (Bignum.to_bytes_be pub.e) ]
