(* Little-endian digit arrays in base 2^26.  Digit products fit well
   inside the 63-bit native int, so schoolbook multiplication needs no
   special carry handling. *)

let base_bits = 26
let base = 1 lsl base_bits
let digit_mask = base - 1

type t = int array (* normalized: no trailing zero digits; [||] is 0 *)

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative"
  else if n = 0 then zero
  else begin
    let rec digits n acc = if n = 0 then List.rev acc else digits (n lsr base_bits) ((n land digit_mask) :: acc) in
    Array.of_list (digits n [])
  end

let to_int_opt a =
  let bits = Array.length a * base_bits in
  if bits <= 62 then begin
    let v = ref 0 in
    for i = Array.length a - 1 downto 0 do
      v := (!v lsl base_bits) lor a.(i)
    done;
    Some !v
  end
  else begin
    (* May still fit: check the high digits. *)
    let v = ref 0 and ok = ref true in
    for i = Array.length a - 1 downto 0 do
      if !v > (max_int - a.(i)) lsr base_bits then ok := false
      else v := (!v lsl base_bits) lor a.(i)
    done;
    if !ok then Some !v else None
  end

let is_zero a = Array.length a = 0
let is_even a = is_zero a || a.(0) land 1 = 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + width top 0
  end

let get a i = if i < Array.length a then a.(i) else 0

let add a b =
  let n = max (Array.length a) (Array.length b) + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = get a i + get b i + !carry in
    out.(i) <- s land digit_mask;
    carry := s lsr base_bits
  done;
  normalize out

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let n = Array.length a in
  let out = Array.make n 0 in
  let borrow = ref 0 in
  for i = 0 to n - 1 do
    let d = a.(i) - get b i - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = out.(i + j) + (a.(i) * b.(j)) + !carry in
        out.(i + j) <- s land digit_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = out.(!k) + !carry in
        out.(!k) <- s land digit_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    normalize out
  end

let shift_left a bits =
  if is_zero a || bits = 0 then a
  else begin
    let digit_shift = bits / base_bits and bit_shift = bits mod base_bits in
    let n = Array.length a in
    let out = Array.make (n + digit_shift + 1) 0 in
    for i = 0 to n - 1 do
      let v = a.(i) lsl bit_shift in
      out.(i + digit_shift) <- out.(i + digit_shift) lor (v land digit_mask);
      out.(i + digit_shift + 1) <- out.(i + digit_shift + 1) lor (v lsr base_bits)
    done;
    normalize out
  end

let shift_right a bits =
  if is_zero a || bits = 0 then a
  else begin
    let digit_shift = bits / base_bits and bit_shift = bits mod base_bits in
    let n = Array.length a in
    if digit_shift >= n then zero
    else begin
      let m = n - digit_shift in
      let out = Array.make m 0 in
      for i = 0 to m - 1 do
        let lo = a.(i + digit_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + digit_shift + 1 >= n then 0
          else (a.(i + digit_shift + 1) lsl (base_bits - bit_shift)) land digit_mask
        in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

(* Binary long division: O(bit-difference) shift/compare/subtract
   passes.  Slow but simple; fine for the short RSA moduli we use. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let shift = bit_length a - bit_length b in
    let d = ref (shift_left b shift) in
    let rem = ref a in
    let q = ref zero in
    for _ = 0 to shift do
      q := shift_left !q 1;
      if compare !rem !d >= 0 then begin
        rem := sub !rem !d;
        q := add !q one
      end;
      d := shift_right !d 1
    done;
    (!q, !rem)
  end

let rem a b = snd (divmod a b)

let mod_pow ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  let result = ref one in
  let b = ref (rem b modulus) in
  let bits = bit_length exp in
  for i = 0 to bits - 1 do
    let digit = exp.(i / base_bits) in
    if digit lsr (i mod base_bits) land 1 = 1 then
      result := rem (mul !result !b) modulus;
    b := rem (mul !b !b) modulus
  done;
  !result

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Extended Euclid over signed pairs (sign, magnitude). *)
let mod_inverse a m =
  if is_zero m then None
  else begin
    let snorm (sg, v) = if is_zero v then (1, zero) else (sg, v) in
    let ssub (sa, va) (sb, vb) =
      (* (sa,va) - (sb,vb) *)
      if sa = sb then
        if compare va vb >= 0 then snorm (sa, sub va vb) else snorm (-sa, sub vb va)
      else snorm (sa, add va vb)
    in
    let smul_nat (sg, v) n = snorm (sg, mul v n) in
    (* Loop invariant: old_s * a ≡ old_r (mod m). *)
    let old_r = ref (rem a m) and r = ref m in
    let old_s = ref (1, one) and s = ref (1, zero) in
    while not (is_zero !r) do
      let q, _ = divmod !old_r !r in
      let next_r = sub !old_r (mul q !r) in
      let next_s = ssub !old_s (smul_nat !s q) in
      old_r := !r;
      r := next_r;
      old_s := !s;
      s := next_s
    done;
    if not (equal !old_r one) then None
    else begin
      let sg, v = !old_s in
      let v = rem v m in
      if sg >= 0 || is_zero v then Some v else Some (sub m v)
    end
  end

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71;
    73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149 ]

let random_bits g n =
  if n <= 0 then invalid_arg "Bignum.random_bits";
  let digits = ((n - 1) / base_bits) + 1 in
  let out = Array.make digits 0 in
  for i = 0 to digits - 1 do
    out.(i) <- Prng.int g base
  done;
  (* Clear excess bits, then force the top bit. *)
  let top_bits = n - ((digits - 1) * base_bits) in
  out.(digits - 1) <- out.(digits - 1) land ((1 lsl top_bits) - 1);
  out.(digits - 1) <- out.(digits - 1) lor (1 lsl (top_bits - 1));
  normalize out

let is_probable_prime g n =
  if compare n two < 0 then false
  else if equal n two then true
  else if is_even n then false
  else begin
    let small = List.exists (fun p -> equal n (of_int p)) small_primes in
    let divisible =
      List.exists
        (fun p ->
          let p = of_int p in
          compare n p > 0 && is_zero (rem n p))
        small_primes
    in
    if small then true
    else if divisible then false
    else begin
      (* n - 1 = d * 2^r with d odd. *)
      let n1 = sub n one in
      let r = ref 0 and d = ref n1 in
      while is_even !d do
        d := shift_right !d 1;
        incr r
      done;
      let witness a =
        let x = ref (mod_pow ~base:a ~exp:!d ~modulus:n) in
        if equal !x one || equal !x n1 then false
        else begin
          let composite = ref true in
          (try
             for _ = 1 to !r - 1 do
               x := rem (mul !x !x) n;
               if equal !x n1 then begin
                 composite := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !composite
        end
      in
      let rounds = 16 in
      let rec test i =
        if i = rounds then true
        else begin
          let bits = max 2 (bit_length n - 1) in
          let a = add (rem (random_bits g bits) (sub n two)) two in
          if witness a then false else test (i + 1)
        end
      in
      test 0
    end
  end

let random_prime g bits =
  let rec go () =
    let candidate = random_bits g bits in
    let candidate = if is_even candidate then add candidate one else candidate in
    if is_probable_prime g candidate then candidate else go ()
  in
  go ()

let of_bytes_be s =
  let v = ref zero in
  String.iter (fun c -> v := add (shift_left !v 8) (of_int (Char.code c))) s;
  !v

let to_bytes_be a =
  if is_zero a then "\x00"
  else begin
    let bytes = ref [] in
    let v = ref a in
    while not (is_zero !v) do
      let low = !v.(0) land 0xFF in
      bytes := Char.chr low :: !bytes;
      v := shift_right !v 8
    done;
    String.init (List.length !bytes) (List.nth !bytes)
  end

let of_hex s =
  let v = ref zero in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Bignum.of_hex"
      in
      v := add (shift_left !v 4) (of_int d))
    s;
  !v

let to_hex a =
  let b = to_bytes_be a in
  String.concat "" (List.init (String.length b) (fun i -> Printf.sprintf "%02x" (Char.code b.[i])))
