(** Arbitrary-precision natural numbers.

    A minimal from-scratch bignum sufficient for RSA: little-endian
    digit arrays in base 2{^26}.  All values are non-negative;
    subtraction of a larger number raises. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] with [n >= 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] when the value fits in an OCaml int. *)

val of_bytes_be : string -> t
(** [of_bytes_be b] interprets big-endian bytes. *)

val to_bytes_be : t -> string
(** [to_bytes_be n] is the minimal big-endian representation (["\x00"]
    for zero). *)

val of_hex : string -> t
val to_hex : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool
val bit_length : t -> int

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val mul : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]; raises [Division_by_zero] if
    [b] is zero. *)

val rem : t -> t -> t
val mod_pow : base:t -> exp:t -> modulus:t -> t
(** Square-and-multiply modular exponentiation. *)

val mod_inverse : t -> t -> t option
(** [mod_inverse a m] is [a]{^-1} mod [m] when [gcd a m = 1]. *)

val gcd : t -> t -> t

val random_bits : Prng.t -> int -> t
(** [random_bits g n] is a uniformly random [n]-bit number with the top
    bit set. *)

val is_probable_prime : Prng.t -> t -> bool
(** Miller–Rabin with trial division by small primes and 16 witness
    rounds. *)

val random_prime : Prng.t -> int -> t
(** [random_prime g bits] searches odd candidates until
    {!is_probable_prime} accepts. *)
