(** Textbook RSA with PKCS#1 v1.5 signatures over SHA-256.

    Built entirely on {!Bignum}.  Key sizes are configurable and small
    by default (the study never attacks cryptography — see DESIGN.md);
    the signing and verification paths are nonetheless algorithmically
    standard, so chain verification in the experiments exercises real
    signature checks. *)

type public = { n : Bignum.t; e : Bignum.t }
type key = { public : public; d : Bignum.t; p : Bignum.t; q : Bignum.t }

val generate : ?bits:int -> Prng.t -> key
(** [generate ~bits g] produces a key with a [bits]-bit modulus
    (default 256).  [e] is 65537 (regenerating primes if needed for
    coprimality). *)

val sign : key -> string -> string
(** [sign key msg] is the PKCS#1 v1.5 signature over SHA-256([msg]),
    sized to the modulus. *)

val verify : public -> msg:string -> signature:string -> bool
(** [verify pub ~msg ~signature] checks the padding and digest. *)

val public_to_der : public -> string
(** [public_to_der pub] is an RSAPublicKey SEQUENCE (PKCS#1) in DER —
    embedded in SubjectPublicKeyInfo by the certificate layer. *)
