(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for Merkle tree hashing in the CT log substrate and for the
    RSA signature digests. *)

val digest : string -> string
(** [digest msg] is the 32-byte binary digest. *)

val hex : string -> string
(** [hex msg] is the lowercase hex digest. *)

val hmac : key:string -> string -> string
(** [hmac ~key msg] is HMAC-SHA-256 (RFC 2104), used by the
    deterministic mock signature scheme of the corpus generator. *)
