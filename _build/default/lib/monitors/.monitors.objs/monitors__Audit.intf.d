lib/monitors/audit.mli: Format
