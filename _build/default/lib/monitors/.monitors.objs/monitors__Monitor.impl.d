lib/monitors/monitor.ml: Char Ctlog Idna List Printf Result String Unicode X509
