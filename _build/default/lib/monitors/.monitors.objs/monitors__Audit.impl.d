lib/monitors/audit.ml: Asn1 Ctlog Format List Monitor X509
