lib/monitors/monitor.mli: Ctlog X509
