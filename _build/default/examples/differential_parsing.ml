(* Differential parsing: craft the paper's "githube.cn" BMPString
   certificate (§5.1) and a subfield-forgery SAN (§5.2), then show how
   the nine TLS library models each interpret them.

   Run with: dune exec examples/differential_parsing.exe *)

let show_opt = function Some s -> Printf.sprintf "%S" s | None -> "<parse error>"

let () =
  (* 1. The hostname-bypass certificate: a CN declared BMPString whose
     UCS-2 code units spell out a different hostname when read
     byte-wise. *)
  (* The raw bytes "githube.cn" read as UCS-2 are the CJK units 0x6769
     0x7468 0x7562 0x792E 0x636E ("杩瑨..."), exactly the
     paper's example — compliant decoders see CJK text, byte-wise
     decoders see the ASCII hostname. *)
  let bmp_payload = "githube.cn" in
  let cert =
    Tlsparsers.Testgen.make
      (Tlsparsers.Testgen.Subject_attr
         (X509.Attr.Common_name, Asn1.Str_type.Bmp_string, bmp_payload))
  in
  Printf.printf "== BMPString CN: standard decoding is %S ==\n"
    (match X509.Certificate.subject_cn cert with Some s -> s | None -> "?");
  (match Tlsparsers.Testgen.raw_subject_attr cert X509.Attr.Common_name with
  | Some (st, raw) ->
      List.iter
        (fun (m : Tlsparsers.Model.t) ->
          Printf.printf "  %-20s -> %s\n" m.Tlsparsers.Model.name
            (show_opt (m.Tlsparsers.Model.decode_name_attr st raw)))
        Tlsparsers.Models.all
  | None -> assert false);
  print_endline
    "  (byte-wise readers recover the ASCII low bytes — the paper's\n\
    \   hostname-validation-bypass vector)";

  (* 2. Subfield forgery: a dNSName payload that *renders* as two SAN
     entries in string-based representations. *)
  let forged = "a.com, DNS:b.com" in
  let cert = Tlsparsers.Testgen.make (Tlsparsers.Testgen.San_dns forged) in
  Printf.printf "\n== SAN dNSName = %S ==\n" forged;
  (match
     X509.Extension.find cert.X509.Certificate.tbs.X509.Certificate.extensions
       X509.Extension.Oids.subject_alt_name
   with
  | Some e -> (
      match X509.Extension.parse_general_names e.X509.Extension.value with
      | Ok gns ->
          List.iter
            (fun (m : Tlsparsers.Model.t) ->
              match m.Tlsparsers.Model.gns_to_string gns with
              | Some rendered ->
                  let components = String.split_on_char ',' rendered in
                  Printf.printf "  %-20s renders %S (%d apparent entries)\n"
                    m.Tlsparsers.Model.name rendered (List.length components)
              | None ->
                  Printf.printf "  %-20s structured output (not forgeable)\n"
                    m.Tlsparsers.Model.name)
            Tlsparsers.Models.all
      | Error m -> print_endline m)
  | None -> assert false);

  (* 3. CRL spoofing: PyOpenSSL's control-character replacement turns a
     CRLDP location into a different address. *)
  let crl = "http://ssl\x01test.com/ca.crl" in
  let cert = Tlsparsers.Testgen.make (Tlsparsers.Testgen.Crldp_uri crl) in
  Printf.printf "\n== CRLDP URI = %S ==\n" crl;
  (match Tlsparsers.Testgen.raw_crldp_payloads cert with
  | raw :: _ ->
      List.iter
        (fun (m : Tlsparsers.Model.t) ->
          if m.Tlsparsers.Model.supports Tlsparsers.Model.Crldp then
            Printf.printf "  %-20s -> %s\n" m.Tlsparsers.Model.name
              (show_opt (m.Tlsparsers.Model.decode_gn Tlsparsers.Model.Crldp raw)))
        Tlsparsers.Models.all
  | [] -> assert false);
  print_endline
    "  (a client that fetches the rewritten address never sees the real CRL —\n\
    \   revocation is silently disabled)";

  (* 4. The full inferred matrices. *)
  print_newline ();
  Tlsparsers.Harness.render Format.std_formatter
