(* IDN inspection: the IDNA toolkit on legitimate, deceptive and broken
   internationalized domain names — the raw material behind the paper's
   F1/T2 findings.

   Run with: dune exec examples/idn_inspection.exe *)

let inspect domain =
  Printf.printf "%s\n" domain;
  Printf.printf "  is IDN:     %b\n" (Idna.is_idn domain);
  Printf.printf "  to_unicode: %s\n" (Idna.to_unicode domain);
  (match Idna.domain_issues domain with
  | [] -> Printf.printf "  issues:     none\n"
  | issues ->
      List.iter
        (fun (label, issues) ->
          List.iter
            (fun i ->
              Printf.printf "  issue:      label %S: %s\n" label
                (Format.asprintf "%a" Idna.pp_issue i))
            issues)
        issues);
  print_newline ()

let () =
  print_endline "== Legitimate IDNs ==";
  List.iter inspect
    [ "xn--bcher-kva.example.com" (* bücher *);
      "xn--mnchen-3ya.de" (* münchen *);
      "xn--fiqs8s.cn" (* 中国 *) ];

  print_endline "== Deceptive / broken IDNs from the paper's findings ==";
  List.iter inspect
    [ "xn--www-hn0a.example.com" (* LRM + www: invisible prefix *);
      "xn--ab_c.example.com" (* malformed punycode *);
      "xn--.example.com" (* empty A-label body *);
      "xn--ecole-6ed.example.fr" (* decodes to non-NFC text *) ];

  print_endline "== U-label to A-label conversion with validation ==";
  List.iter
    (fun u ->
      match Idna.to_ascii u with
      | Ok a -> Printf.printf "%-24s -> %s\n" u a
      | Error errs ->
          Printf.printf "%-24s -> REJECTED (%s)\n" u
            (String.concat "; "
               (List.concat_map
                  (fun (l, issues) ->
                    List.map
                      (fun i -> Printf.sprintf "%s: %s" l (Format.asprintf "%a" Idna.pp_issue i))
                      issues)
                  errs)))
    [ "b\xC3\xBCcher.de"; "caf\xC3\xA9.fr";
      "pay\xE2\x80\x8Bpal.com" (* zero-width space: must be rejected *);
      "ex\xC2\xADample.org" (* soft hyphen: must be rejected *) ];

  print_newline ();
  print_endline "== Homograph skeletons ==";
  List.iter
    (fun (a, b) ->
      Printf.printf "%-12s vs %-12s confusable: %b\n" a b (Unicode.Confusables.confusable a b))
    [ ("paypal.com", "p\xD0\xB0ypal.com") (* Cyrillic а *);
      ("google.com", "g\xCE\xBF\xCE\xBFgle.com") (* Greek omicron *);
      ("example.com", "example.com") ]
