(* User spoofing (Appendix F.1): crafted Unicerts against the three
   browser rendering engines — control characters, invisible layout
   codes, homographs, the IDN display policy, and the Figure 7/8
   warning-page manipulations.

   Run with: dune exec examples/browser_spoofing.exe *)

let show name text =
  Printf.printf "%-26s" name;
  List.iter
    (fun b ->
      Printf.printf " | %-22s" (Unicert.Browsers.render_field b text))
    Unicert.Browsers.all;
  print_newline ()

let () =
  Printf.printf "%-26s" "field value";
  List.iter
    (fun b -> Printf.printf " | %-22s" b.Unicert.Browsers.name)
    Unicert.Browsers.all;
  print_newline ();
  print_endline (String.make 100 '-');
  show "C0 control (SOH)" "Acme\x01Corp";
  show "DEL" "Prepaid\x7FServices";
  show "zero-width space" "pay\xE2\x80\x8Bpal.com";
  show "RLO override" "www.\xE2\x80\xAElapyap\xE2\x80\xAC.com";
  show "Cyrillic homograph" "p\xD0\xB0ypal.com";
  print_newline ();

  (* IDN display policy: which A-labels get shown in Unicode? *)
  print_endline "== IDN display policy (Chromium model) ==";
  List.iter
    (fun domain ->
      Printf.printf "  %-34s shown as %s\n" domain
        (Unicert.Browsers.display_hostname Unicert.Browsers.chromium domain))
    [ "xn--bcher-kva.de" (* clean single-script *);
      "xn--www-hn0a.example.com" (* invisible LRM: stays punycode *);
      "xn--80aa0aec.com" (* whole-script Cyrillic: displayed! *) ];
  print_newline ();

  (* Warning pages (Figures 7 and 8). *)
  Unicert.Browsers.render Format.std_formatter;

  (* The Firefox Figure-8 variant: a descriptive CN steering the alert
     text. *)
  print_newline ();
  let descriptive =
    "port 8443. But they're the same site, it is safe to continue"
  in
  Printf.printf
    "Firefox warning driven by crafted SAN text:\n  \"...certificate is only valid \
     for %s\"\n"
    (Unicert.Browsers.render_field Unicert.Browsers.firefox descriptive)
