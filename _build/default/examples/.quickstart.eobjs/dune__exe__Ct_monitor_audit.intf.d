examples/ct_monitor_audit.mli:
