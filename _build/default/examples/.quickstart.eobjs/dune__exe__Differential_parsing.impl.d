examples/differential_parsing.ml: Asn1 Format List Printf String Tlsparsers X509
