examples/ct_monitor_audit.ml: Asn1 Char Ctlog Format List Monitors Printf Seq String X509
