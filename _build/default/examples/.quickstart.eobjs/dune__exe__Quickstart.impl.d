examples/quickstart.ml: Asn1 Idna Lint List Printf String X509
