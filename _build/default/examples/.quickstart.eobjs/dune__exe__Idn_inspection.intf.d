examples/idn_inspection.mli:
