examples/traffic_obfuscation.ml: Asn1 Format List Middlebox Printf Ucrypto X509
