examples/quickstart.mli:
