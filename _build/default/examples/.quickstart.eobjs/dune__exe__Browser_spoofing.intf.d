examples/browser_spoofing.mli:
