examples/differential_parsing.mli:
