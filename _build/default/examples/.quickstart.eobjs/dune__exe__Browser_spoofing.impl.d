examples/browser_spoofing.ml: Format List Printf String Unicert
