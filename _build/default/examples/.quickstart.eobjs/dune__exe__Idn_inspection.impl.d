examples/idn_inspection.ml: Format Idna List Printf String Unicode
