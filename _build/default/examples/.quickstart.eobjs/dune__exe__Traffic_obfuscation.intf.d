examples/traffic_obfuscation.mli:
