(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md §3 for the index), then runs
   Bechamel micro-benchmarks over the core code paths.

   Environment knobs: UNICERT_SCALE (corpus size, default
   Ctlog.Dataset.default_scale) and UNICERT_SEED (default 1). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> default)
  | None -> default

let banner title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let () =
  let scale = env_int "UNICERT_SCALE" Ctlog.Dataset.default_scale in
  let seed = env_int "UNICERT_SEED" 1 in
  Format.printf "unicert experiment harness — corpus scale %d, seed %d@." scale seed;

  banner "RQ1 — Unicert issuance compliance (FIG2, TAB1, TAB2, FIG3, FIG4, TAB11, SEC51)";
  let pipeline = Unicert.Pipeline.run ~scale ~seed () in
  Unicert.Report.all Format.std_formatter pipeline;

  banner "RQ2 — TLS library parsing (TAB4, TAB5, Appendix E)";
  Tlsparsers.Apis.render Format.std_formatter;
  Format.printf "@.";
  Tlsparsers.Harness.render Format.std_formatter;

  banner "RQ3 — CT monitor misleading (TAB6)";
  Monitors.Audit.render Format.std_formatter;

  banner "RQ3 — Traffic obfuscation (TAB3, SEC62)";
  Middlebox.Obfuscation.render Format.std_formatter;
  Middlebox.Evasion.render Format.std_formatter;

  banner "Appendix F.1 — Browser rendering (TAB14, FIG7)";
  Unicert.Browsers.render Format.std_formatter;

  banner "Micro-benchmarks (Bechamel)";
  Bench_micro.run ()
