bench/main.mli:
