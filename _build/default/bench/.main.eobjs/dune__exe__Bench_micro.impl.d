bench/bench_micro.ml: Analyze Asn1 Bechamel Benchmark Ctlog Format Hashtbl Idna Instance Lint List Measure Staged String Test Time Toolkit Ucrypto Unicode X509
