bench/main.ml: Bench_micro Ctlog Format Middlebox Monitors String Sys Tlsparsers Unicert
