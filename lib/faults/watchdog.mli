(** A wall-clock watchdog for hang containment.

    On the main domain, [with_timeout ~seconds f] runs [f ()] under a
    real [ITIMER_REAL] alarm; if [f] is still running when the alarm
    fires, the SIGALRM handler raises {!Timed_out} at the next
    allocation or function call, unwinding [f].  Pure tight loops that
    never allocate cannot be interrupted — the lints and models this
    guards all allocate.

    On worker domains the alarm is unavailable (OCaml 5 delivers
    signals only to the main domain), so the watchdog degrades to a
    post-hoc deadline: [f] runs to completion and an overrun — whether
    [f] returned or raised — is converted into {!Timed_out} afterwards.
    The accounting is identical to the alarm path; what changes is that
    a hang must terminate on its own to be detected (the fault
    injector's hangs are bounded busy loops for exactly this reason),
    and a worker overrun keeps burning its core until [f] finishes.

    Nesting is not supported on the alarm path (one timer per process);
    the previous handler and timer are restored on exit either way. *)

exception Timed_out of { stage : string; seconds : float }

val with_timeout : ?stage:string -> seconds:float -> (unit -> 'a) -> 'a
(** @raise Timed_out when [f] overruns.  [seconds <= 0.] runs [f]
    unguarded. *)
