(** A wall-clock watchdog for hang containment.

    [with_timeout ~seconds f] runs [f ()] under a real [ITIMER_REAL]
    alarm; if [f] is still running when the alarm fires, the SIGALRM
    handler raises {!Timed_out} at the next allocation or function
    call, unwinding [f].  Pure tight loops that never allocate cannot
    be interrupted — the lints and models this guards all allocate.

    Nesting is not supported (one timer per process); the previous
    handler and timer are restored on exit either way. *)

exception Timed_out of { stage : string; seconds : float }

val with_timeout : ?stage:string -> seconds:float -> (unit -> 'a) -> 'a
(** @raise Timed_out when [f] overruns.  [seconds <= 0.] runs [f]
    unguarded. *)
