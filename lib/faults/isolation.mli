(** Global kill-switch for the error boundaries.

    Isolation is on by default: per-lint and per-certificate boundaries
    catch crashes and convert them to {!Error.t} events.  The
    fault-path micro-benchmark turns it off to measure the raw hot path
    without try/with guards; production code should never disable it. *)

val enabled : unit -> bool
val set : bool -> unit
