type 'a t = { scale : int; seed : int; next_index : int; state : 'a }

exception Invalid of string

(* A magic prefix plus an explicit format-version line let [load]
   reject non-checkpoint files and stale formats loudly, instead of
   relying on Marshal's (unsafe) failure modes or silently restarting
   a run the operator believed was resumable. *)
let magic = "UNICERT-CKPT2\n"
let old_magics = [ "UNICERT-CKPT1\n" ]
let version = 2
let version_line = Printf.sprintf "v%03d\n" version

let shard_file path shard = Printf.sprintf "%s.shard%d" path shard

let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc magic;
  output_string oc version_line;
  Marshal.to_channel oc t [];
  close_out oc;
  Unix.rename tmp path

let invalid path fmt =
  Printf.ksprintf (fun s -> raise (Invalid (Printf.sprintf "%s: %s" path s))) fmt

let load path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let head =
            try really_input_string ic (String.length magic)
            with End_of_file ->
              invalid path "not a checkpoint (file shorter than the header)"
          in
          if head <> magic then
            if List.mem head old_magics then
              invalid path
                "checkpoint written by an incompatible older format (%s); \
                 delete it or rerun without --resume"
                (String.trim head)
            else invalid path "not a checkpoint (bad magic)";
          let vline =
            try really_input_string ic (String.length version_line)
            with End_of_file -> invalid path "truncated version header"
          in
          if vline <> version_line then
            invalid path
              "checkpoint format version %s does not match this binary's %s; \
               delete it or rerun without --resume"
              (String.trim vline) (String.trim version_line);
          match Marshal.from_channel ic with
          | t -> Some t
          | exception _ -> invalid path "corrupt checkpoint payload")

(* --- stale cursor handling ---------------------------------------------

   Parallel runs keep one cursor per shard ([path.shard<k>]) and fetch
   runs one per log ([path.fetch<k>]).  When a later run uses fewer
   shards/logs, the high-numbered files are never reused — left behind
   they look like live state and confuse both operators and resume
   logic, so callers detect them up front (warn) and delete them once a
   run completes successfully.

   The two families have independent lifetimes: a generate-sourced run
   owns only the shard cursors, and its shard count says nothing about
   whether a [.fetch<k>] file is live resume state from an interrupted
   fetch.  Callers therefore pass one active count per family;
   [active_fetch = None] means "this run does not own fetch cursors —
   leave every one of them alone" (and symmetrically for
   [active_shards]). *)

let cursor_suffixes = [ "shard"; "fetch" ]

let stale_cursors path ~active_shards ~active_fetch =
  let dir = Filename.dirname path and base = Filename.basename path in
  let active_of = function
    | "shard" -> active_shards
    | "fetch" -> active_fetch
    | _ -> None
  in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             List.find_map
               (fun suffix ->
                 let prefix = base ^ "." ^ suffix in
                 if
                   String.length name > String.length prefix
                   && String.sub name 0 (String.length prefix) = prefix
                 then
                   match
                     ( active_of suffix,
                       int_of_string_opt
                         (String.sub name (String.length prefix)
                            (String.length name - String.length prefix)) )
                   with
                   | Some active, Some k when k >= active ->
                       Some (Filename.concat dir name)
                   | _ -> None
                 else None)
               cursor_suffixes)
      |> List.sort compare

let remove_stale path ~active_shards ~active_fetch =
  let stale = stale_cursors path ~active_shards ~active_fetch in
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) stale;
  stale
