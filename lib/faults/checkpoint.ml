type 'a t = { scale : int; seed : int; next_index : int; state : 'a }

(* A small magic prefix lets [load] reject non-checkpoint files without
   relying on Marshal's own (unsafe) failure modes alone. *)
let magic = "UNICERT-CKPT1\n"

let shard_file path shard = Printf.sprintf "%s.shard%d" path shard

let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc magic;
  Marshal.to_channel oc t [];
  close_out oc;
  Unix.rename tmp path

let load path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
      let result =
        try
          let buf = really_input_string ic (String.length magic) in
          if buf <> magic then None else Some (Marshal.from_channel ic)
        with _ -> None
      in
      close_in_noerr ic;
      result)
