exception Timed_out of { stage : string; seconds : float }

let with_timeout ?(stage = "stage") ~seconds f =
  if seconds <= 0.0 then f ()
  else begin
    let fired = ref false in
    let old_handler =
      Sys.signal Sys.sigalrm
        (Sys.Signal_handle
           (fun _ ->
             fired := true;
             raise (Timed_out { stage; seconds })))
    in
    let stop () =
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_interval = 0.0; it_value = 0.0 });
      Sys.set_signal Sys.sigalrm old_handler
    in
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = 0.0; it_value = seconds });
    match f () with
    | v ->
        stop ();
        v
    | exception e ->
        stop ();
        ignore !fired;
        raise e
  end
