exception Timed_out of { stage : string; seconds : float }

(* The SIGALRM path: interrupts [f] mid-flight at its next allocation
   point.  Only valid on the main domain — OCaml 5 delivers signals to
   the main domain exclusively, so a worker arming the itimer would
   never see its own alarm (and could kill an innocent main-domain
   stage instead). *)
let with_alarm ~stage ~seconds f =
  let fired = ref false in
  let old_handler =
    Sys.signal Sys.sigalrm
      (Sys.Signal_handle
         (fun _ ->
           fired := true;
           raise (Timed_out { stage; seconds })))
  in
  let stop () =
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = 0.0; it_value = 0.0 });
    Sys.set_signal Sys.sigalrm old_handler
  in
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_interval = 0.0; it_value = seconds });
  match f () with
  | v ->
      stop ();
      v
  | exception e ->
      stop ();
      ignore !fired;
      raise e

(* The worker-domain path: run [f] to completion, then compare wall
   clock against the budget.  This cannot interrupt a truly unbounded
   loop — it relies on [f] terminating (the injected hangs are bounded
   busy loops) — but it converts every overrun, normal return or raise
   alike, into the same [Timed_out] the alarm path produces. *)
let with_deadline ~stage ~seconds f =
  let t0 = Unix.gettimeofday () in
  let overrun () = Unix.gettimeofday () -. t0 > seconds in
  match f () with
  | v -> if overrun () then raise (Timed_out { stage; seconds }) else v
  | exception e ->
      if overrun () then raise (Timed_out { stage; seconds }) else raise e

let with_timeout ?(stage = "stage") ~seconds f =
  if seconds <= 0.0 then f ()
  else if Domain.is_main_domain () then with_alarm ~stage ~seconds f
  else with_deadline ~stage ~seconds f
