type t = {
  max_errors : int option;
  fail_fast : bool;
  quarantine_dir : string option;
  timeout_seconds : float option;
  breaker_threshold : int;
  checkpoint_file : string option;
  checkpoint_every : int;
}

let default =
  {
    max_errors = None;
    fail_fast = false;
    quarantine_dir = None;
    timeout_seconds = None;
    breaker_threshold = Breaker.default_threshold;
    checkpoint_file = None;
    checkpoint_every = 5_000;
  }
