(** The exit-code contract shared by every binary, and the precedence
    law for runs that earn more than one code.

    Codes: [0] ok, [1] output-flush failure, [2] unusable input
    (validation, store identity), [3] aborted, [4] completed but
    degraded.  Precedence, most diagnostic first:

    {v 2 > 3 > 4 > 1 > 0 v}

    so a run that is both degraded and hit a store identity error
    exits 2, and a degraded run whose metrics file could not be
    written still exits 4. *)

val precedence : int list
(** The known codes, most severe first: [[2; 3; 4; 1; 0]]. *)

val rank : int -> int
(** Position in {!precedence}; unknown codes rank before every known
    one so they are never masked. *)

val worst : int -> int -> int
(** The more severe of two codes under the precedence law.
    Commutative and associative; [0] is the identity. *)

val describe : int -> string
