(** Crash-safe periodic checkpointing for long analysis runs.

    A checkpoint snapshots the run parameters, the next corpus index to
    process, and an opaque marshalled state value.  Saves are atomic
    (write to a temp file, then [rename]) so a crash mid-save leaves
    the previous checkpoint intact.  Because the corpus stream is a
    pure function of [(scale, seed)], resuming only needs to replay the
    stream and skip indices below [next_index].

    Files start with a magic string and a format-version line.  A file
    that exists but is not a current-format checkpoint raises
    {!Invalid} instead of being silently ignored — restarting from
    scratch when the operator asked to resume is a correctness bug, so
    binaries surface it as a validation error (exit 2). *)

type 'a t = {
  scale : int;
  seed : int;
  next_index : int;  (** first unprocessed corpus index *)
  state : 'a;
}

exception Invalid of string
(** The path exists but holds no usable checkpoint: bad magic, a
    different format version, or a corrupt payload.  The message names
    the file and what to do (delete it or rerun without [--resume]). *)

val shard_file : string -> int -> string
(** [shard_file path k] is the per-shard checkpoint path
    ([path.shard<k>]) a parallel run uses: each worker domain
    checkpoints its own index range independently, so one run keeps one
    cursor file per shard instead of a single global cursor. *)

val save : string -> 'a t -> unit
(** Atomic: the file named never holds a partial write. *)

val load : string -> 'a t option
(** [None] when the file is missing; raises {!Invalid} when it exists
    but fails magic, version, or payload validation. *)

val stale_cursors :
  string -> active_shards:int option -> active_fetch:int option -> string list
(** [stale_cursors path ~active_shards ~active_fetch] lists existing
    [path.shard<k>] files with [k >= active_shards] and [path.fetch<k>]
    files with [k >= active_fetch] — cursors left behind by an earlier
    run that used more shards (or logs) than the current one.  A [None]
    active count exempts that whole family: a generate-sourced run
    passes [active_fetch:None] because [.fetch<k>] files are another
    run mode's live resume state, not its own stale droppings (and
    symmetrically).  Sorted; empty when the directory is unreadable. *)

val remove_stale :
  string -> active_shards:int option -> active_fetch:int option -> string list
(** Delete the {!stale_cursors} and return the paths removed.  Callers
    warn at start-up and call this only after a successful completion,
    so a killed run keeps its evidence on disk. *)
