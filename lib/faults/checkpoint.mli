(** Crash-safe periodic checkpointing for long analysis runs.

    A checkpoint snapshots the run parameters, the next corpus index to
    process, and an opaque marshalled state value.  Saves are atomic
    (write to a temp file, then [rename]) so a crash mid-save leaves
    the previous checkpoint intact.  Because the corpus stream is a
    pure function of [(scale, seed)], resuming only needs to replay the
    stream and skip indices below [next_index]. *)

type 'a t = {
  scale : int;
  seed : int;
  next_index : int;  (** first unprocessed corpus index *)
  state : 'a;
}

val shard_file : string -> int -> string
(** [shard_file path k] is the per-shard checkpoint path
    ([path.shard<k>]) a parallel run uses: each worker domain
    checkpoints its own index range independently, so one run keeps one
    cursor file per shard instead of a single global cursor. *)

val save : string -> 'a t -> unit
(** Atomic: the file named never holds a partial write. *)

val load : string -> 'a t option
(** [None] when the file is missing, unreadable, or not a checkpoint
    (e.g. truncated by a crash before the first [save] finished — the
    temp-file dance makes that impossible for [save] itself, but the
    caller may hand us any path). *)
