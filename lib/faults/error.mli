(** The structured fault taxonomy.

    Every failure a data path can hit is one of six classes; boundary
    code converts raw exceptions and string errors into this type so
    sinks (quarantine, telemetry, reports) never have to re-parse
    messages.  [Invalid_argument] stays reserved for programmer errors
    and is deliberately absent here. *)

type t =
  | Decode_error of { offset : int option; detail : string }
      (** Undecodable input bytes (DER truncation, corruption, layout). *)
  | Lint_crash of { lint : string; exn_name : string; detail : string }
      (** A registered lint raised instead of returning a status. *)
  | Model_crash of { model : string; exn_name : string; detail : string }
      (** A parser model raised instead of accepting/rejecting. *)
  | Timeout of { stage : string; seconds : float }
      (** A watchdog interrupted a hung stage. *)
  | Resource of { stage : string; detail : string }
      (** Stack/heap exhaustion or I/O failure underneath a stage. *)
  | Integrity of { log : string; detail : string }
      (** Entries whose log served an unverifiable view (split view /
          root mismatch): the bytes may be fine, but their provenance
          cannot be trusted, so they are quarantined, not ingested. *)

val class_name : t -> string
(** One of ["decode_error"], ["lint_crash"], ["model_crash"],
    ["timeout"], ["resource"], ["integrity"] — stable keys used for
    telemetry labels and the quarantine sidecar. *)

val all_class_names : string list

val detail : t -> string
(** The human-readable payload (no class prefix). *)

val to_string : t -> string
(** ["class: detail"]. *)

val pp : Format.formatter -> t -> unit

val exn_name : exn -> string
(** Constructor name of an exception (e.g. ["Failure"],
    ["Stack_overflow"], ["Faults__Injector.Injected_crash"]) — recorded
    in verdicts so reports can distinguish crash causes. *)

val of_exn : stage:string -> exn -> t
(** Classify a caught exception: [Stack_overflow]/[Out_of_memory] map
    to [Resource], {!Watchdog}-style timeouts should be classified at
    the catch site; everything else becomes a crash of [stage]'s kind
    via {!Lint_crash} when [stage] names a lint — callers that know the
    precise kind should build the constructor directly.  This helper
    returns [Resource] for resource exhaustion and [Decode_error] with
    the printed exception otherwise. *)

val of_class : class_:string -> detail:string -> t
(** Rehydrate an error from its stored [(class_name, detail)] pair —
    the inverse of {!class_name}/{!detail}, used when replaying fault
    records out of the on-disk store.  Best-effort: detail layouts the
    renderer never produces keep their text under the same class (or
    degrade to [Decode_error] for unknown classes). *)

val observe : t -> unit
(** Count the event in {!Obs.Registry.default} under
    [unicert_fault_errors_total{class="..."}]. *)

val prewarm : unit -> unit
(** Force the module's lazy telemetry handles.  Call once from the
    coordinating domain before spawning workers — [Lazy.force] is not
    domain-safe in OCaml 5. *)
