exception Injected_crash of string
exception Injected_hang of string

type mode = Crash | Hang

let hang_bound = 2.0

type slot = { mode : mode; every : int; mutable ticks : int }

(* One global mutex guards the slot table and the per-slot tick
   counters: campaigns are rare and tick only runs when a campaign is
   armed, so the lock is never on the clean path ([active] stays a
   single atomic read). *)
let lock = Mutex.create ()
let slots : (string, slot) Hashtbl.t = Hashtbl.create 8
let any = Atomic.make false

let obs_injected =
  lazy
    (Obs.Registry.labeled_counter ~label:"target"
       ~help:"Faults fired by the injection harness"
       "unicert_fault_injections_total")

let prewarm () = ignore (Lazy.force obs_injected)

let arm ?(mode = Crash) ~every target =
  if every < 1 then invalid_arg "Faults.Injector.arm: every must be >= 1";
  Mutex.protect lock (fun () ->
      Hashtbl.replace slots target { mode; every; ticks = 0 };
      Atomic.set any true)

let disarm target =
  Mutex.protect lock (fun () ->
      Hashtbl.remove slots target;
      Atomic.set any (Hashtbl.length slots > 0))

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset slots;
      Atomic.set any false)

let active () = Atomic.get any

let armed () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun k s acc -> (k, s.mode, s.every) :: acc) slots [])
  |> List.sort compare

(* An allocating busy loop: OCaml delivers pending signals at
   allocation points, so a Watchdog alarm interrupts this "hang" on the
   main domain; on worker domains it expires at [hang_bound] and the
   deadline check converts the raise. *)
let hang target =
  let t0 = Unix.gettimeofday () in
  let sink = ref 0 in
  while Unix.gettimeofday () -. t0 < hang_bound do
    sink := !sink + Sys.opaque_identity (List.length [ 1; 2; 3 ])
  done;
  raise (Injected_hang target)

let tick target =
  let due =
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt slots target with
        | None -> None
        | Some s ->
            s.ticks <- s.ticks + 1;
            if s.ticks mod s.every = 0 then Some s.mode else None)
  in
  match due with
  | None -> ()
  | Some mode -> (
      Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_injected) target);
      match mode with
      | Crash -> raise (Injected_crash target)
      | Hang -> hang target)

let parse_spec spec =
  match String.rindex_opt spec ':' with
  | None -> Error (Printf.sprintf "bad injection spec %S (want TARGET:EVERY)" spec)
  | Some i -> (
      let target = String.sub spec 0 i in
      let n = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt n with
      | Some every when every >= 1 && target <> "" -> Ok (target, every)
      | _ -> Error (Printf.sprintf "bad injection spec %S (want TARGET:EVERY)" spec))
