type kind =
  | Byte_flip
  | Length_lie
  | Truncate
  | Tag_swap
  | Dup_tlv
  | Del_tlv
  | Oversized_oid
  | Nul_inject
  | Ctrl_inject

let all_kinds =
  [ Byte_flip; Length_lie; Truncate; Tag_swap; Dup_tlv; Del_tlv; Oversized_oid;
    Nul_inject; Ctrl_inject ]

let kind_name = function
  | Byte_flip -> "byte_flip"
  | Length_lie -> "length_lie"
  | Truncate -> "truncate"
  | Tag_swap -> "tag_swap"
  | Dup_tlv -> "dup_tlv"
  | Del_tlv -> "del_tlv"
  | Oversized_oid -> "oversized_oid"
  | Nul_inject -> "nul_inject"
  | Ctrl_inject -> "ctrl_inject"

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds

type plan = { seed : int; rate : float; kinds : kind list }

let plan ?(kinds = all_kinds) ~seed ~rate () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Faults.Mutator.plan: rate must be within [0,1]";
  if kinds = [] then invalid_arg "Faults.Mutator.plan: kinds must be non-empty";
  { seed; rate; kinds }

(* One independent stream per (seed, index, attempt): the splitmix
   construction behind Prng.create scrambles any int seed, so a cheap
   odd-multiplier mix suffices to separate the streams. *)
let stream seed index attempt =
  Ucrypto.Prng.create
    (((seed * 0x9E3779B1) lxor (index * 0x85EBCA77)) lxor (attempt * 0xC2B2AE3D))

let hits plan index =
  plan.rate > 0.0 && Ucrypto.Prng.float (stream plan.seed index 0) < plan.rate

let set_byte s i b =
  String.mapi (fun j c -> if j = i then Char.chr (b land 0xFF) else c) s

let byte_flip g s =
  let i = Ucrypto.Prng.int g (String.length s) in
  let bit = 1 lsl Ucrypto.Prng.int g 8 in
  set_byte s i (Char.code s.[i] lxor bit)

(* Misdeclare the outermost length: short form gets a different short
   value, long form gets one of its octets rewritten. *)
let length_lie g s =
  let n = String.length s in
  if n < 4 then byte_flip g s
  else begin
    let l0 = Char.code s.[1] in
    if l0 < 0x80 then set_byte s 1 ((l0 + 1 + Ucrypto.Prng.int g 126) mod 0x80)
    else begin
      let count = l0 land 0x7F in
      if count = 0 || 2 + count > n then byte_flip g s
      else begin
        let i = 2 + Ucrypto.Prng.int g count in
        set_byte s i (Char.code s.[i] lxor (1 + Ucrypto.Prng.int g 255))
      end
    end
  end

let truncate g s =
  let n = String.length s in
  if n <= 1 then s ^ "\x30" (* can't shorten a 1-byte input; grow a lie *)
  else String.sub s 0 (1 + Ucrypto.Prng.int g (n - 1))

(* Tag bytes commonly present in a certificate, with a substitute that
   changes the parse shape. *)
let tag_swaps =
  [ (0x30, 0x31); (0x31, 0x30); (0x0C, 0x13); (0x13, 0x16); (0x16, 0x0C);
    (0x02, 0x03); (0x03, 0x02); (0x04, 0x05); (0x06, 0x02); (0x17, 0x18);
    (0x18, 0x17); (0xA0, 0x80); (0xA3, 0x83) ]

let tag_swap g s =
  let n = String.length s in
  let candidates = ref [] in
  String.iteri
    (fun i c ->
      if List.mem_assoc (Char.code c) tag_swaps then candidates := i :: !candidates)
    s;
  match !candidates with
  | [] -> byte_flip g s
  | l ->
      let arr = Array.of_list l in
      let i = arr.(Ucrypto.Prng.int g (Array.length arr)) in
      ignore n;
      set_byte s i (List.assoc (Char.code s.[i]) tag_swaps)

(* Best-effort TLV slice at [off]: read a short- or long-form header
   and return the full TLV span when it fits inside [s]. *)
let tlv_at s off =
  let n = String.length s in
  if off + 2 > n then None
  else begin
    let l0 = Char.code s.[off + 1] in
    if l0 < 0x80 then
      let stop = off + 2 + l0 in
      if stop <= n && l0 > 0 then Some (off, stop) else None
    else begin
      let count = l0 land 0x7F in
      if count = 0 || count > 3 || off + 2 + count > n then None
      else begin
        let len = ref 0 in
        for i = 1 to count do
          len := (!len lsl 8) lor Char.code s.[off + 1 + i]
        done;
        let stop = off + 2 + count + !len in
        if stop <= n then Some (off, stop) else None
      end
    end
  end

let random_tlv g s =
  let n = String.length s in
  let rec go tries =
    if tries = 0 then None
    else
      match tlv_at s (2 + Ucrypto.Prng.int g (max 1 (n - 2))) with
      | Some (a, b) when b - a < n -> Some (a, b)
      | _ -> go (tries - 1)
  in
  go 16

let dup_tlv g s =
  match random_tlv g s with
  | Some (a, b) ->
      String.sub s 0 b ^ String.sub s a (b - a)
      ^ String.sub s b (String.length s - b)
  | None ->
      (* No parseable inner TLV: duplicate a raw slice instead. *)
      let n = String.length s in
      let a = Ucrypto.Prng.int g n in
      let len = 1 + Ucrypto.Prng.int g (min 16 (n - a)) in
      String.sub s 0 (a + len) ^ String.sub s a len
      ^ String.sub s (a + len) (n - a - len)

let del_tlv g s =
  match random_tlv g s with
  | Some (a, b) -> String.sub s 0 a ^ String.sub s b (String.length s - b)
  | None ->
      let n = String.length s in
      if n <= 2 then truncate g s
      else begin
        let a = 1 + Ucrypto.Prng.int g (n - 2) in
        let len = 1 + Ucrypto.Prng.int g (min 8 (n - a - 1)) in
        String.sub s 0 a ^ String.sub s (a + len) (n - a - len)
      end

(* Rewrite one OID's content octets in place: either arcs that never
   terminate (every continuation bit set) or one gigantic arc that
   overflows any bounded decoder. *)
let oversized_oid g s =
  let n = String.length s in
  let spots = ref [] in
  for i = 0 to n - 3 do
    if Char.code s.[i] = 0x06 then begin
      let len = Char.code s.[i + 1] in
      if len >= 1 && len < 0x80 && i + 2 + len <= n then spots := (i, len) :: !spots
    end
  done;
  match !spots with
  | [] -> byte_flip g s
  | l ->
      let arr = Array.of_list l in
      let i, len = arr.(Ucrypto.Prng.int g (Array.length arr)) in
      let filler =
        if len >= 2 && Ucrypto.Prng.bool g then
          (* one huge arc: continuation bytes then a terminator *)
          String.make (len - 1) '\x8F' ^ "\x7F"
        else String.make len '\xFF'
      in
      String.sub s 0 (i + 2) ^ filler ^ String.sub s (i + 2 + len) (n - i - 2 - len)

(* Universal tags of the ASN.1 string types: the targets of the two
   string-content injection kinds. *)
let string_tags = [ 0x0C; 0x12; 0x13; 0x14; 0x16; 0x1A; 0x1C; 0x1E ]

(* Overwrite one content byte of a string-typed TLV: the DER skeleton
   stays well formed, so the cert still parses and the poisoned text
   flows into every downstream consumer — the NUL-truncation /
   control-character surface the fuzzer steers into. *)
let overwrite_in_string g byte_of s =
  let n = String.length s in
  let spots = ref [] in
  for i = 0 to n - 3 do
    if List.mem (Char.code s.[i]) string_tags then begin
      let len = Char.code s.[i + 1] in
      if len >= 1 && len < 0x80 && i + 2 + len <= n then spots := (i, len) :: !spots
    end
  done;
  match !spots with
  | [] -> byte_flip g s
  | l ->
      let arr = Array.of_list l in
      let i, len = arr.(Ucrypto.Prng.int g (Array.length arr)) in
      set_byte s (i + 2 + Ucrypto.Prng.int g len) (byte_of g)

let nul_inject g s = overwrite_in_string g (fun _ -> 0x00) s
let ctrl_inject g s = overwrite_in_string g (fun g -> 1 + Ucrypto.Prng.int g 0x1F) s

let apply g kind s =
  match kind with
  | Byte_flip -> byte_flip g s
  | Length_lie -> length_lie g s
  | Truncate -> truncate g s
  | Tag_swap -> tag_swap g s
  | Dup_tlv -> dup_tlv g s
  | Del_tlv -> del_tlv g s
  | Oversized_oid -> oversized_oid g s
  | Nul_inject -> nul_inject g s
  | Ctrl_inject -> ctrl_inject g s

let mutate ?(attempt = 0) plan ~index der =
  if der = "" then invalid_arg "Faults.Mutator.mutate: empty input";
  let g = stream plan.seed index (attempt + 1) in
  let kind = Ucrypto.Prng.pick_list g plan.kinds in
  let rec go kind tries =
    let out = apply g kind der in
    if String.equal out der && tries > 0 then go Byte_flip (tries - 1)
    else if String.equal out der then truncate g der
    else out
  in
  (go kind 3, kind)

type exhausted = { index : int; attempts : int }

let default_max_attempts = 9

(* The retry loop callers used to hand-roll around [mutate]: bump
   [attempt] until the mutant actually fails the caller's acceptance
   check.  Capped — an input that resists corruption surfaces a typed
   [exhausted] instead of looping (or asserting) forever.  The
   last-resort attempt cuts the encoding in half, which strict DER
   decoding rejects for any realistic certificate, so exhaustion is
   reachable only for degenerate inputs or tolerant [rejects]
   predicates. *)
let mutate_rejected ?(max_attempts = default_max_attempts) plan ~index ~rejects
    der =
  if max_attempts < 1 then
    invalid_arg "Faults.Mutator.mutate_rejected: max_attempts must be >= 1";
  let rec go attempt =
    if attempt >= max_attempts - 1 then begin
      let bad = String.sub der 0 (max 1 (String.length der / 2)) in
      match rejects bad with
      | Some err -> Ok (bad, Truncate, err)
      | None -> Error { index; attempts = max_attempts }
    end
    else
      let bad, kind = mutate ~attempt plan ~index der in
      match rejects bad with
      | Some err -> Ok (bad, kind, err)
      | None -> go (attempt + 1)
  in
  go 0
