(** The seeded, deterministic DER corpus mutator.

    A {!plan} decides — as a pure function of [(seed, index)] — whether
    the [index]-th certificate of a corpus stream gets corrupted, and
    how.  Decisions consume no randomness from the corpus generator, so
    a corrupted run and a clean run generate byte-identical
    certificates; the A/B comparison behind the fault-smoke test
    depends on this. *)

type kind =
  | Byte_flip      (** flip one random bit *)
  | Length_lie     (** misdeclare the outer TLV length *)
  | Truncate       (** cut the encoding short *)
  | Tag_swap       (** rewrite a tag-looking byte to a different tag *)
  | Dup_tlv        (** duplicate an inner TLV in place *)
  | Del_tlv        (** delete an inner TLV *)
  | Oversized_oid  (** blow up an OID's arc encoding *)
  | Nul_inject     (** overwrite a string TLV content byte with NUL *)
  | Ctrl_inject    (** overwrite a string TLV content byte with a C0 control *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

type plan = private { seed : int; rate : float; kinds : kind list }

val plan : ?kinds:kind list -> seed:int -> rate:float -> unit -> plan
(** @raise Invalid_argument if [rate] is outside [0,1] or [kinds] is
    empty. *)

val hits : plan -> int -> bool
(** [hits plan index] — does this plan corrupt the [index]-th
    certificate?  Deterministic and stateless. *)

val mutate : ?attempt:int -> plan -> index:int -> string -> string * kind
(** [mutate plan ~index der] corrupts [der]; deterministic in
    [(plan.seed, index, attempt)].  Distinct [attempt] values give
    independent corruptions, letting callers retry until the result
    actually fails to parse.  Never returns [der] unchanged.
    @raise Invalid_argument on an empty input. *)

type exhausted = { index : int; attempts : int }
(** The input at [index] survived [attempts] corruption attempts
    without tripping the caller's [rejects] predicate. *)

val default_max_attempts : int

val mutate_rejected :
  ?max_attempts:int ->
  plan ->
  index:int ->
  rejects:(string -> 'err option) ->
  string ->
  (string * kind * 'err, exhausted) result
(** [mutate_rejected plan ~index ~rejects der] retries {!mutate} with
    increasing [attempt] until [rejects] confirms the mutant is broken
    (returns [Some err]), up to [max_attempts]
    (default {!default_max_attempts}).  The final attempt truncates
    [der] to half its length as a last resort; if even that passes
    [rejects], returns [Error] with a typed {!exhausted} instead of
    looping.  Deterministic in [(plan.seed, index)].
    @raise Invalid_argument if [max_attempts < 1] or [der] is empty. *)
