(** Run-level fault policy: how much failure a run tolerates and where
    the wreckage goes.  Assembled from CLI flags by the binaries and
    threaded into [Core.Pipeline]. *)

type t = {
  max_errors : int option;
      (** abort after this many per-certificate errors; [None] = unbounded *)
  fail_fast : bool;  (** abort on the first per-certificate error *)
  quarantine_dir : string option;
      (** write offending certs + errors to a sidecar here *)
  timeout_seconds : float option;
      (** per-certificate watchdog; [None] = no watchdog *)
  breaker_threshold : int;
      (** consecutive crashes before a lint/model breaker opens *)
  checkpoint_file : string option;
  checkpoint_every : int;  (** certificates between checkpoint saves *)
}

val default : t
(** Unbounded errors, no fail-fast, no quarantine, no watchdog,
    {!Breaker.default_threshold}, no checkpointing. *)
