(** The fault-injection harness: make any instrumented call site
    (a registered lint, a parser model) raise or hang on a schedule.

    Targets are plain strings — lint names and model names as the
    instrumented modules report them.  Injection is deterministic:
    [every = 3] fires on the 3rd, 6th, 9th, … tick of that target.
    The whole module is inert until the first {!arm}; instrumented hot
    paths guard their tick with {!active}, a single flag read. *)

exception Injected_crash of string
(** Raised by {!tick} for a [Crash]-armed target (payload: target). *)

exception Injected_hang of string
(** Raised by {!tick} for a [Hang]-armed target once the bounded busy
    loop expires without a watchdog interrupting it. *)

type mode =
  | Crash  (** raise {!Injected_crash} *)
  | Hang
      (** busy-loop (allocating, so signals are delivered) for up to
          {!hang_bound} seconds, then raise {!Injected_hang}.  Under
          {!Watchdog.with_timeout} the watchdog fires first. *)

val hang_bound : float
(** Upper bound on a simulated hang (seconds) so unwatched injection
    cannot deadlock a run. *)

val arm : ?mode:mode -> every:int -> string -> unit
(** [arm ~every target] schedules a fault on every [every]-th tick of
    [target] (default mode [Crash]).  @raise Invalid_argument if
    [every < 1]. *)

val disarm : string -> unit
val reset : unit -> unit
(** Disarm everything and zero all tick counts. *)

val active : unit -> bool
(** Cheap global check: true when at least one target is armed. *)

val armed : unit -> (string * mode * int) list
(** [(target, mode, every)] for every armed target, sorted. *)

val tick : string -> unit
(** Count one invocation of [target]; raises when the schedule says so.
    Call only under an {!active} guard to keep clean paths free. *)

val parse_spec : string -> (string * int, string) result
(** Parse a CLI ["TARGET:EVERY"] spec (e.g. ["u_cn_in_san:3"]). *)

val prewarm : unit -> unit
(** Force the module's lazy telemetry handles.  Call once from the
    coordinating domain before spawning workers — [Lazy.force] is not
    domain-safe in OCaml 5. *)
