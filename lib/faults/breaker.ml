type t = {
  name : string;
  mutable threshold : int;
  mutable consecutive : int;
  mutable crashes : int;
  mutable open_ : bool;
}

let default_threshold = 5

let create ?(threshold = default_threshold) name =
  if threshold < 1 then invalid_arg "Faults.Breaker.create: threshold < 1";
  { name; threshold; consecutive = 0; crashes = 0; open_ = false }

let name t = t.name
let threshold t = t.threshold

let set_threshold t n =
  if n < 1 then invalid_arg "Faults.Breaker.set_threshold: threshold < 1";
  t.threshold <- n

let obs_trips =
  lazy
    (Obs.Registry.labeled_counter ~label:"target"
       ~help:"Circuit breakers tripped open by consecutive crashes"
       "unicert_fault_breaker_trips_total")

let success t = if not t.open_ then t.consecutive <- 0

let failure t =
  t.crashes <- t.crashes + 1;
  t.consecutive <- t.consecutive + 1;
  if (not t.open_) && t.consecutive >= t.threshold then begin
    t.open_ <- true;
    Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_trips) t.name)
  end

let tripped t = t.open_
let crashes t = t.crashes
let consecutive t = t.consecutive

let reset t =
  t.consecutive <- 0;
  t.crashes <- 0;
  t.open_ <- false
