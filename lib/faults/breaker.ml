(* All four cells are atomics: breakers are shared process-wide (one
   per lint / parser model) and worker domains hit [success]/[failure]
   concurrently.  The trip decision uses a CAS on [open_] so exactly
   one domain records the trip. *)
type t = {
  name : string;
  threshold : int Atomic.t;
  consecutive : int Atomic.t;
  crashes : int Atomic.t;
  open_ : bool Atomic.t;
}

let default_threshold = 5

let create ?(threshold = default_threshold) name =
  if threshold < 1 then invalid_arg "Faults.Breaker.create: threshold < 1";
  { name; threshold = Atomic.make threshold; consecutive = Atomic.make 0;
    crashes = Atomic.make 0; open_ = Atomic.make false }

let name t = t.name
let threshold t = Atomic.get t.threshold

let set_threshold t n =
  if n < 1 then invalid_arg "Faults.Breaker.set_threshold: threshold < 1";
  Atomic.set t.threshold n

let obs_trips =
  lazy
    (Obs.Registry.labeled_counter ~label:"target"
       ~help:"Circuit breakers tripped open by consecutive crashes"
       "unicert_fault_breaker_trips_total")

let prewarm () = ignore (Lazy.force obs_trips)

let success t = if not (Atomic.get t.open_) then Atomic.set t.consecutive 0

let failure t =
  ignore (Atomic.fetch_and_add t.crashes 1);
  let consecutive = 1 + Atomic.fetch_and_add t.consecutive 1 in
  if
    consecutive >= Atomic.get t.threshold
    && Atomic.compare_and_set t.open_ false true
  then Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_trips) t.name)

let tripped t = Atomic.get t.open_
let crashes t = Atomic.get t.crashes
let consecutive t = Atomic.get t.consecutive

let reset t =
  Atomic.set t.consecutive 0;
  Atomic.set t.crashes 0;
  Atomic.set t.open_ false
