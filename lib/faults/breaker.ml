(* All mutable cells are atomics: breakers are shared process-wide (one
   per lint / parser model / fetched log) and worker domains hit
   [success]/[failure] concurrently.  State changes go through CAS so
   exactly one domain records each transition.

   Two operating modes share the type:
   - [cooldown = None] (default): the legacy latch — once open, open
     forever; the component is skipped and reported degraded.
   - [cooldown = Some s]: after [s] seconds of caller-supplied time
     (the fetch layer feeds its virtual clock) an open breaker admits
     one half-open probe; probe success closes it, probe failure
     re-opens it. *)

type state = Closed | Open | Half_open

type t = {
  name : string;
  threshold : int Atomic.t;
  cooldown : float option;
  consecutive : int Atomic.t;
  crashes : int Atomic.t;
  trips : int Atomic.t;
  state : state Atomic.t;
  opened_at : float Atomic.t;
}

let default_threshold = 5

let create ?(threshold = default_threshold) ?cooldown name =
  if threshold < 1 then invalid_arg "Faults.Breaker.create: threshold < 1";
  (match cooldown with
  | Some s when s <= 0.0 -> invalid_arg "Faults.Breaker.create: cooldown <= 0"
  | _ -> ());
  { name; threshold = Atomic.make threshold; cooldown;
    consecutive = Atomic.make 0; crashes = Atomic.make 0;
    trips = Atomic.make 0; state = Atomic.make Closed;
    opened_at = Atomic.make 0.0 }

let name t = t.name
let threshold t = Atomic.get t.threshold

let set_threshold t n =
  if n < 1 then invalid_arg "Faults.Breaker.set_threshold: threshold < 1";
  Atomic.set t.threshold n

let obs_trips =
  lazy
    (Obs.Registry.labeled_counter ~label:"target"
       ~help:"Circuit breakers tripped open by consecutive crashes"
       "unicert_fault_breaker_trips_total")

let obs_transitions =
  lazy
    (Obs.Registry.labeled_counter ~label:"transition"
       ~help:"Circuit breaker state transitions (closed_open, open_half_open, half_open_closed, half_open_open)"
       "unicert_breaker_transitions_total")

let prewarm () =
  ignore (Lazy.force obs_trips);
  ignore (Lazy.force obs_transitions)

let transition which =
  Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_transitions) which)

let success t =
  match Atomic.get t.state with
  | Closed -> Atomic.set t.consecutive 0
  | Half_open ->
      if Atomic.compare_and_set t.state Half_open Closed then begin
        Atomic.set t.consecutive 0;
        transition "half_open_closed"
      end
  | Open -> ()

let failure ?(now = 0.0) t =
  ignore (Atomic.fetch_and_add t.crashes 1);
  let consecutive = 1 + Atomic.fetch_and_add t.consecutive 1 in
  match Atomic.get t.state with
  | Half_open ->
      (* The probe failed: straight back to open, new cooldown window. *)
      if Atomic.compare_and_set t.state Half_open Open then begin
        Atomic.set t.opened_at now;
        ignore (Atomic.fetch_and_add t.trips 1);
        transition "half_open_open"
      end
  | Closed ->
      if
        consecutive >= Atomic.get t.threshold
        && Atomic.compare_and_set t.state Closed Open
      then begin
        Atomic.set t.opened_at now;
        ignore (Atomic.fetch_and_add t.trips 1);
        transition "closed_open";
        Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_trips) t.name)
      end
  | Open -> ()

let allow ?(now = 0.0) t =
  match Atomic.get t.state with
  | Closed -> true
  | Half_open -> true
  | Open -> (
      match t.cooldown with
      | None -> false
      | Some cd ->
          if
            now -. Atomic.get t.opened_at >= cd
            && Atomic.compare_and_set t.state Open Half_open
          then begin
            transition "open_half_open";
            true
          end
          else Atomic.get t.state = Half_open)

let state t = Atomic.get t.state
let tripped t = Atomic.get t.state <> Closed
let crashes t = Atomic.get t.crashes
let consecutive t = Atomic.get t.consecutive
let trips t = Atomic.get t.trips

let cooldown_until t =
  match (t.cooldown, Atomic.get t.state) with
  | Some cd, Open -> Some (Atomic.get t.opened_at +. cd)
  | _ -> None

let reset t =
  Atomic.set t.consecutive 0;
  Atomic.set t.crashes 0;
  Atomic.set t.trips 0;
  Atomic.set t.state Closed
