type t =
  | Decode_error of { offset : int option; detail : string }
  | Lint_crash of { lint : string; exn_name : string; detail : string }
  | Model_crash of { model : string; exn_name : string; detail : string }
  | Timeout of { stage : string; seconds : float }
  | Resource of { stage : string; detail : string }
  | Integrity of { log : string; detail : string }

let class_name = function
  | Decode_error _ -> "decode_error"
  | Lint_crash _ -> "lint_crash"
  | Model_crash _ -> "model_crash"
  | Timeout _ -> "timeout"
  | Resource _ -> "resource"
  | Integrity _ -> "integrity"

let all_class_names =
  [ "decode_error"; "lint_crash"; "model_crash"; "timeout"; "resource";
    "integrity" ]

let detail = function
  | Decode_error { offset = Some off; detail } ->
      Printf.sprintf "offset %d: %s" off detail
  | Decode_error { offset = None; detail } -> detail
  | Lint_crash { lint; exn_name; detail } ->
      Printf.sprintf "%s raised %s: %s" lint exn_name detail
  | Model_crash { model; exn_name; detail } ->
      Printf.sprintf "%s raised %s: %s" model exn_name detail
  | Timeout { stage; seconds } -> Printf.sprintf "%s exceeded %.3fs" stage seconds
  | Resource { stage; detail } -> Printf.sprintf "%s: %s" stage detail
  | Integrity { log; detail } -> Printf.sprintf "%s: %s" log detail

let to_string e = class_name e ^ ": " ^ detail e

let pp ppf e = Format.pp_print_string ppf (to_string e)

let exn_name e =
  match e with
  | Failure _ -> "Failure"
  | Invalid_argument _ -> "Invalid_argument"
  | Not_found -> "Not_found"
  | Stack_overflow -> "Stack_overflow"
  | Out_of_memory -> "Out_of_memory"
  | Division_by_zero -> "Division_by_zero"
  | Sys_error _ -> "Sys_error"
  | End_of_file -> "End_of_file"
  | Exit -> "Exit"
  | _ -> (
      (* Constructor name without the payload. *)
      match Printexc.exn_slot_name e with
      | name -> name
      | exception _ -> "<unknown exception>")

let of_exn ~stage e =
  match e with
  | Stack_overflow -> Resource { stage; detail = "stack overflow" }
  | Out_of_memory -> Resource { stage; detail = "out of memory" }
  | Sys_error m -> Resource { stage; detail = m }
  | e ->
      Decode_error
        { offset = None;
          detail = Printf.sprintf "%s: %s" stage (Printexc.to_string e) }

(* Invert {!detail}'s renderings so stored fault records (class + detail
   strings) rehydrate into the constructor they came from.  Parsing is
   best-effort: an unrecognized layout keeps the full detail text under
   the same class where the class admits it, or degrades to
   [Decode_error]. *)
let of_class ~class_ ~detail:d =
  let split_colon s =
    match String.index_opt s ':' with
    | Some i when i + 2 <= String.length s && s.[i + 1] = ' ' ->
        Some (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
    | _ -> None
  in
  let split_raised s =
    (* "<who> raised <exn>: <detail>" *)
    match split_colon s with
    | None -> None
    | Some (head, rest) -> (
        let marker = " raised " in
        match
          let rec find i =
            if i + String.length marker > String.length head then None
            else if String.sub head i (String.length marker) = marker then Some i
            else find (i + 1)
          in
          find 0
        with
        | None -> None
        | Some i ->
            Some
              ( String.sub head 0 i,
                String.sub head
                  (i + String.length marker)
                  (String.length head - i - String.length marker),
                rest ))
  in
  match class_ with
  | "lint_crash" -> (
      match split_raised d with
      | Some (lint, exn_name, detail) -> Lint_crash { lint; exn_name; detail }
      | None -> Lint_crash { lint = "?"; exn_name = "?"; detail = d })
  | "model_crash" -> (
      match split_raised d with
      | Some (model, exn_name, detail) -> Model_crash { model; exn_name; detail }
      | None -> Model_crash { model = "?"; exn_name = "?"; detail = d })
  | "timeout" -> (
      match Scanf.sscanf d "%s@ exceeded %fs%!" (fun stage s -> (stage, s)) with
      | stage, seconds -> Timeout { stage; seconds }
      | exception _ -> Timeout { stage = d; seconds = 0. })
  | "resource" -> (
      match split_colon d with
      | Some (stage, detail) -> Resource { stage; detail }
      | None -> Resource { stage = "?"; detail = d })
  | "integrity" -> (
      match split_colon d with
      | Some (log, detail) -> Integrity { log; detail }
      | None -> Integrity { log = "?"; detail = d })
  | _ -> (
      match Scanf.sscanf d "offset %d: %s@\255%!" (fun o rest -> (o, rest)) with
      | o, rest -> Decode_error { offset = Some o; detail = rest }
      | exception _ -> Decode_error { offset = None; detail = d })

let obs_errors =
  lazy
    (Obs.Registry.labeled_counter ~label:"class"
       ~help:"Fault events recorded by error boundaries, by taxonomy class"
       "unicert_fault_errors_total")

let prewarm () = ignore (Lazy.force obs_errors)

let observe e =
  Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_errors) (class_name e))
