type t = {
  path : string;
  oc : out_channel;
  mutable written : int;
  mutable closed : bool;
}

let obs_quarantined =
  lazy
    (Obs.Registry.counter
       ~help:"Certificates written to the quarantine sidecar"
       "unicert_quarantine_total")

let prewarm () = ignore (Lazy.force obs_quarantined)

let ensure_dir dir =
  (if not (Sys.file_exists dir) then
     try Unix.mkdir dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"))

let main_path ~dir ~run_seed =
  Filename.concat dir (Printf.sprintf "quarantine-%d.jsonl" run_seed)

let shard_path ~dir ~run_seed ~shard =
  Filename.concat dir (Printf.sprintf "quarantine-%d.shard%d.jsonl" run_seed shard)

let open_ ~dir ~run_seed =
  ensure_dir dir;
  let path = main_path ~dir ~run_seed in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  { path; oc; written = 0; closed = false }

(* A shard sidecar is transient: truncated on open (a leftover from a
   crashed pass must not double its records) and folded into the main
   sidecar by [merge_shards] when the parallel pass ends. *)
let open_shard ~dir ~run_seed ~shard =
  ensure_dir dir;
  let path = shard_path ~dir ~run_seed ~shard in
  let oc = open_out_gen [ Open_wronly; Open_trunc; Open_creat ] 0o644 path in
  { path; oc; written = 0; closed = false }

let merge_shards ~dir ~run_seed ~shards =
  ensure_dir dir;
  let main = main_path ~dir ~run_seed in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 main in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      for shard = 0 to shards - 1 do
        let p = shard_path ~dir ~run_seed ~shard in
        if Sys.file_exists p then begin
          let ic = open_in_bin p in
          let buf = Bytes.create 65536 in
          let rec copy () =
            let n = input ic buf 0 (Bytes.length buf) in
            if n > 0 then begin
              output oc buf 0 n;
              copy ()
            end
          in
          copy ();
          close_in ic;
          Sys.remove p
        end
      done);
  main

let path t = t.path

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Faults.Quarantine: odd hex length";
  String.init (n / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let record t ~index ~error ~der =
  if t.closed then invalid_arg "Faults.Quarantine.record: closed";
  Printf.fprintf t.oc
    {|{"index":%d,"class":"%s","detail":"%s","der_hex":"%s"}|}
    index
    (Error.class_name error)
    (json_escape (Error.detail error))
    (hex_of_string der);
  output_char t.oc '\n';
  flush t.oc;
  t.written <- t.written + 1;
  Obs.Counter.inc (Lazy.force obs_quarantined)

let count t = t.written

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end

type entry = {
  index : int;
  error_class : string;
  detail : string;
  der : string;
}

(* Minimal field scanner for the flat records we write ourselves; not a
   general JSON parser. *)
let field line name =
  let marker = Printf.sprintf {|"%s":|} name in
  match
    let rec find from =
      match String.index_from_opt line from '"' with
      | None -> None
      | Some q ->
          if
            q + String.length marker <= String.length line
            && String.sub line q (String.length marker) = marker
          then Some (q + String.length marker)
          else find (q + 1)
    in
    find 0
  with
  | None -> None
  | Some start ->
      if start < String.length line && line.[start] = '"' then begin
        (* string value: scan to the closing unescaped quote *)
        let b = Buffer.create 16 in
        let rec go i =
          if i >= String.length line then None
          else
            match line.[i] with
            | '"' -> Some (Buffer.contents b)
            | '\\' when i + 1 < String.length line ->
                (match line.[i + 1] with
                | 'n' -> Buffer.add_char b '\n'
                | 'r' -> Buffer.add_char b '\r'
                | 't' -> Buffer.add_char b '\t'
                | 'u' ->
                    if i + 5 < String.length line then
                      Buffer.add_char b
                        (Char.chr
                           (int_of_string ("0x" ^ String.sub line (i + 2) 4)
                           land 0xFF))
                | c -> Buffer.add_char b c);
                go (i + if line.[i + 1] = 'u' then 6 else 2)
            | c ->
                Buffer.add_char b c;
                go (i + 1)
        in
        go (start + 1)
      end
      else begin
        let stop = ref start in
        while
          !stop < String.length line
          && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
        do
          incr stop
        done;
        if !stop > start then Some (String.sub line start (!stop - start))
        else None
      end

let parse_line line =
  match
    ( field line "index",
      field line "class",
      field line "detail",
      field line "der_hex" )
  with
  | Some idx, Some cls, Some detail, Some hex -> (
      match (int_of_string_opt idx, try Some (string_of_hex hex) with _ -> None) with
      | Some index, Some der -> Some { index; error_class = cls; detail; der }
      | _ -> None)
  | _ -> None

let load path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       match parse_line (input_line ic) with
       | Some e -> entries := e :: !entries
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries
