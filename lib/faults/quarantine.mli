(** Quarantine sink: offending certificate bytes plus the structured
    error, one JSON record per line in a sidecar file.

    Records survive crashes of the writing process — each write is
    flushed before the call returns — and the format is line-oriented
    so a partially written final line never corrupts earlier ones. *)

type t

val open_ : dir:string -> run_seed:int -> t
(** Creates [dir] when needed and opens
    [dir]/quarantine-<run_seed>.jsonl for append.
    @raise Sys_error when the directory cannot be created. *)

val path : t -> string

val record :
  t -> index:int -> error:Error.t -> der:string -> unit
(** Append one record ([index], error class + detail, DER bytes as
    hex) and flush.  Counted in [unicert_quarantine_total]. *)

val count : t -> int
(** Records written through this handle. *)

val close : t -> unit

type entry = {
  index : int;
  error_class : string;
  detail : string;
  der : string;  (** decoded back from hex *)
}

val load : string -> entry list
(** Re-read a quarantine file (test / triage support).  Lines that do
    not parse — e.g. a torn final line after a crash — are skipped. *)
