(** Quarantine sink: offending certificate bytes plus the structured
    error, one JSON record per line in a sidecar file.

    Records survive crashes of the writing process — each write is
    flushed before the call returns — and the format is line-oriented
    so a partially written final line never corrupts earlier ones. *)

type t

val open_ : dir:string -> run_seed:int -> t
(** Creates [dir] when needed and opens
    [dir]/quarantine-<run_seed>.jsonl for append.
    @raise Sys_error when the directory cannot be created. *)

val open_shard : dir:string -> run_seed:int -> shard:int -> t
(** A per-shard sidecar ([quarantine-<run_seed>.shard<k>.jsonl]) for
    one worker domain of a parallel pass: concurrent domains appending
    to a single file would interleave mid-record, so each shard writes
    its own file.  Opened truncating (a shard file is transient; a
    leftover from a crashed pass must not double its records). *)

val merge_shards : dir:string -> run_seed:int -> shards:int -> string
(** Concatenate the shard sidecars in shard order — which is corpus
    index order, since shards are contiguous ascending ranges — onto
    the main [quarantine-<run_seed>.jsonl], delete them, and return the
    main path.  The merged file is byte-identical to what a sequential
    pass would have appended.  Missing shard files (shards with no
    faults still write an empty file; a crash may leave none) are
    skipped. *)

val prewarm : unit -> unit
(** Force the module's lazy telemetry handles.  Call once from the
    coordinating domain before spawning workers — [Lazy.force] is not
    domain-safe in OCaml 5. *)

val path : t -> string

val record :
  t -> index:int -> error:Error.t -> der:string -> unit
(** Append one record ([index], error class + detail, DER bytes as
    hex) and flush.  Counted in [unicert_quarantine_total]. *)

val count : t -> int
(** Records written through this handle. *)

val close : t -> unit

type entry = {
  index : int;
  error_class : string;
  detail : string;
  der : string;  (** decoded back from hex *)
}

val load : string -> entry list
(** Re-read a quarantine file (test / triage support).  Lines that do
    not parse — e.g. a torn final line after a crash — are skipped. *)
