(** Per-component circuit breakers.

    A breaker guards one named component (a lint, a parser model, a
    fetched CT log).  Consecutive failures trip it open; once open the
    component is skipped and reported as degraded instead of crashing
    every remaining certificate.  A success before the threshold resets
    the consecutive count (total crash counts keep accumulating for the
    degraded report).

    Without a [cooldown] the breaker is a latch: open stays open (the
    lint/parser semantics).  With [cooldown] it is the classic
    three-state machine: after the cooldown elapses (per caller-supplied
    time — the fetch layer feeds its virtual clock) {!allow} admits one
    half-open probe; probe success closes the breaker, probe failure
    re-opens it.  Every transition is counted in
    [unicert_breaker_transitions_total{transition}]. *)

type t

type state = Closed | Open | Half_open

val default_threshold : int
(** 5 — consecutive crashes before the circuit opens. *)

val create : ?threshold:int -> ?cooldown:float -> string -> t
(** [cooldown] (seconds of caller time, see {!allow}) enables the
    half-open recovery path; omitted, the breaker latches open. *)

val name : t -> string
val threshold : t -> int
val set_threshold : t -> int -> unit
(** Adjust the trip threshold (policy wiring).  Lowering it below the
    current consecutive count trips on the next failure, not
    retroactively. *)

val success : t -> unit
(** Record a clean call: resets the consecutive-failure count; closes a
    half-open breaker (counted as [half_open_closed]).  No-op while
    open. *)

val failure : ?now:float -> t -> unit
(** Record a crash; trips the breaker when [threshold] consecutive
    failures accumulate (counted in
    [unicert_fault_breaker_trips_total{target}] and as a [closed_open]
    transition).  A half-open probe failure re-opens immediately
    ([half_open_open]).  [now] stamps the cooldown window (only
    meaningful with a cooldown). *)

val allow : ?now:float -> t -> bool
(** Whether a call may proceed.  Closed and half-open: yes.  Open
    without cooldown: no, forever.  Open with cooldown: no until
    [cooldown] seconds after the trip, then the breaker moves to
    half-open ([open_half_open]) and admits the probe. *)

val state : t -> state
val tripped : t -> bool
(** [true] once tripped and not (yet) closed again. *)

val crashes : t -> int
(** Total failures recorded over the breaker's lifetime. *)

val consecutive : t -> int

val trips : t -> int
(** How many times the breaker has opened (initial trips plus half-open
    probe failures) — the fetch layer abandons a log past a trip
    budget. *)

val cooldown_until : t -> float option
(** When open with a cooldown: the instant {!allow} will admit a probe.
    [None] otherwise. *)

val reset : t -> unit
(** Close the breaker and zero all counts (test support). *)

val prewarm : unit -> unit
(** Force the module's lazy telemetry handles.  Call once from the
    coordinating domain before spawning workers — [Lazy.force] is not
    domain-safe in OCaml 5. *)
