(** Per-component circuit breakers.

    A breaker guards one named component (a lint, a parser model).
    Consecutive failures trip it open; once open the component is
    skipped and reported as degraded instead of crashing every
    remaining certificate.  A success before the threshold resets the
    consecutive count (total crash counts keep accumulating for the
    degraded report). *)

type t

val default_threshold : int
(** 5 — consecutive crashes before the circuit opens. *)

val create : ?threshold:int -> string -> t

val name : t -> string
val threshold : t -> int
val set_threshold : t -> int -> unit
(** Adjust the trip threshold (policy wiring).  Lowering it below the
    current consecutive count trips on the next failure, not
    retroactively. *)

val success : t -> unit
(** Record a clean call: resets the consecutive-failure count.  No-op
    once the breaker is open. *)

val failure : t -> unit
(** Record a crash; trips the breaker when [threshold] consecutive
    failures accumulate (counted in
    [unicert_fault_breaker_trips_total{target}]). *)

val tripped : t -> bool
val crashes : t -> int
(** Total failures recorded over the breaker's lifetime. *)

val consecutive : t -> int

val reset : t -> unit
(** Close the breaker and zero both counts (test support). *)

val prewarm : unit -> unit
(** Force the module's lazy telemetry handles.  Call once from the
    coordinating domain before spawning workers — [Lazy.force] is not
    domain-safe in OCaml 5. *)
