let flag = Atomic.make true
let enabled () = Atomic.get flag
let set v = Atomic.set flag v
