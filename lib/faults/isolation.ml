let flag = ref true
let enabled () = !flag
let set v = flag := v
