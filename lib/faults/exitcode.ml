(* The repo-wide exit-code contract and its precedence law.

   Codes: 0 ok, 1 output-flush failure (metrics/trace unwritable),
   2 unusable input (validation, store identity, bad flags), 3 aborted
   (fail-fast / max-errors / nothing salvageable), 4 completed but
   degraded (incomplete fetch coverage, damaged-but-usable store).

   When one run earns several, the most diagnostic wins:

       2 > 3 > 4 > 1 > 0

   A validation error explains everything downstream of it, an abort
   explains the missing coverage, and degradation outranks a mere
   flush failure because it is about the run's *result*, not its
   reporting.  Binaries accumulate codes with {!worst} and exit once,
   after flushing metrics and traces on every path. *)

let precedence = [ 2; 3; 4; 1; 0 ]

let rank code =
  let rec go i = function
    | [] -> -1 (* unknown codes outrank everything: never mask them *)
    | c :: _ when c = code -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 precedence

let worst a b = if rank a <= rank b then a else b

let describe = function
  | 0 -> "ok"
  | 1 -> "output flush failed"
  | 2 -> "unusable input"
  | 3 -> "aborted"
  | 4 -> "degraded"
  | c -> Printf.sprintf "exit %d" c
