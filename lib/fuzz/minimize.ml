(* TLV-level delta debugging.

   A reduction is kept iff the reduced DER still evaluates to the same
   (class, signature) pair — the signature encodes the disagreement
   shape, not payload bytes, so shrinking the payload preserves it as
   long as the shape survives.  Two phases:

   - tree phase: decode the candidate with the lenient ASN.1 config and
     try structural reductions (drop a child of any constructed node,
     shrink string/primitive payloads, recurse into OCTET STRING
     wrappers — where extension bodies such as the SAN live);
   - byte phase (fallback and polish): ddmin-style chunk removal on the
     raw encoding, for candidates the tree pass cannot decode (byte
     mutants) or cannot shrink further.

   Minimization is deterministic: no randomness, candidate order fixed,
   bounded by [max_evals] re-evaluations. *)

let default_max_evals = 600

(* Candidate reductions of one value, most aggressive first.  Each is a
   full replacement for the node; [reductions] lifts child reductions
   through constructed nodes. *)
let rec reductions (v : Asn1.Value.t) : Asn1.Value.t list =
  let drop_each l rebuild =
    List.mapi (fun i _ -> rebuild (List.filteri (fun j _ -> j <> i) l)) l
  in
  let lift l rebuild =
    List.concat
      (List.mapi
         (fun i child ->
           List.map
             (fun child' ->
               rebuild (List.mapi (fun j c -> if j = i then child' else c) l))
             (reductions child))
         l)
  in
  let shrink_raw raw rebuild =
    let n = String.length raw in
    if n <= 1 then []
    else
      let halves =
        [ rebuild (String.sub raw 0 (n / 2)); rebuild (String.sub raw (n - n / 2) (n / 2)) ]
      in
      let drop_one =
        (* up to 8 single-byte removals, evenly spread *)
        let step = max 1 (n / 8) in
        let rec go i acc =
          if i >= n then List.rev acc
          else
            go (i + step)
              (rebuild (String.sub raw 0 i ^ String.sub raw (i + 1) (n - i - 1)) :: acc)
        in
        go 0 []
      in
      halves @ drop_one
  in
  match v with
  | Asn1.Value.Sequence l ->
      drop_each l (fun l' -> Asn1.Value.Sequence l')
      @ lift l (fun l' -> Asn1.Value.Sequence l')
  | Asn1.Value.Set l ->
      drop_each l (fun l' -> Asn1.Value.Set l')
      @ lift l (fun l' -> Asn1.Value.Set l')
  | Asn1.Value.Explicit (n, l) ->
      drop_each l (fun l' -> Asn1.Value.Explicit (n, l'))
      @ lift l (fun l' -> Asn1.Value.Explicit (n, l'))
  | Asn1.Value.Str (st, raw) -> shrink_raw raw (fun r -> Asn1.Value.Str (st, r))
  | Asn1.Value.Implicit (n, raw) ->
      shrink_raw raw (fun r -> Asn1.Value.Implicit (n, r))
  | Asn1.Value.Octet_string raw -> (
      (* extension bodies are DER inside an OCTET STRING: recurse *)
      match Asn1.Value.decode ~config:Asn1.Value.lenient raw with
      | Ok inner ->
          List.map
            (fun inner' -> Asn1.Value.Octet_string (Asn1.Value.encode inner'))
            (reductions inner)
          @ shrink_raw raw (fun r -> Asn1.Value.Octet_string r)
      | Error _ -> shrink_raw raw (fun r -> Asn1.Value.Octet_string r))
  | Asn1.Value.Bit_string (u, raw) ->
      shrink_raw raw (fun r -> Asn1.Value.Bit_string (u, r))
  | _ -> []

(* One fixpoint pass over tree reductions: apply the first accepted
   reduction and restart until none applies or the budget runs out. *)
let tree_phase ok der =
  let rec go der =
    match Asn1.Value.decode ~config:Asn1.Value.lenient der with
    | Error _ -> der
    | Ok tree -> (
        let rec try_candidates = function
          | [] -> None
          | tree' :: rest ->
              let der' = Asn1.Value.encode tree' in
              if String.length der' < String.length der && ok der' then Some der'
              else try_candidates rest
        in
        match try_candidates (reductions tree) with
        | Some der' -> go der'
        | None -> der)
  in
  go der

(* ddmin-style chunk removal on raw bytes. *)
let byte_phase ok der =
  let rec go der size =
    if size < 1 then der
    else begin
      let n = String.length der in
      let rec scan i =
        if i >= n || size > n then None
        else
          let der' = String.sub der 0 i ^ String.sub der (min n (i + size)) (n - min n (i + size)) in
          if der' <> "" && ok der' then Some der' else scan (i + size)
      in
      match scan 0 with
      | Some der' -> go der' size
      | None -> go der (size / 2)
    end
  in
  go der (String.length der / 2)

let minimize ?(threshold = Faults.Breaker.default_threshold)
    ?(max_evals = default_max_evals) der0 =
  let key der =
    let e = Exec.eval ~threshold der in
    (e.Exec.cls, e.Exec.signature)
  in
  let target = key der0 in
  let evals = ref 0 in
  let ok der =
    !evals < max_evals
    && begin
         incr evals;
         key der = target
       end
  in
  let der = tree_phase ok der0 in
  let der = byte_phase ok der in
  (* one more tree pass: byte removals sometimes unlock structure *)
  tree_phase ok der
