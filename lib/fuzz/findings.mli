(** Findings JSONL: one line per finding, fixed field order, discovery
    order — identical campaigns produce byte-identical files. *)

type finding = {
  round : int;
  index : int;
  exec : int;  (** global execution number at discovery *)
  cluster : string;  (** [class-<sig hash prefix>] *)
  cls : string;
  signature : string;
  op : string;
  context : string;
  declared : string;
  count : int;  (** total campaign occurrences of this signature *)
  der : string;  (** full candidate DER (serialized as [der_hex]) *)
  min_der : string option;  (** minimized reproducer, once computed *)
}

val cluster_id : cls:string -> signature:string -> string

val hex_of_string : string -> string
val string_of_hex : string -> string

val to_json : finding -> string
val of_json : string -> (finding, string) result

val write : string -> finding list -> unit
val read : string -> (finding list, string) result

val clusters : finding list -> (string * string * int * finding) list
(** [(cluster, class, count, exemplar)] in first-discovery order. *)

val report : Format.formatter -> finding list -> unit
