(* The grammar-aware candidate generator.

   Every candidate is a pure function of [(seed, round, index)] plus
   the corpus snapshot the round was launched with: shards of a round
   can regenerate their index slice independently and a resumed run
   regenerates byte-identical candidates.  Structured operations build
   real signed certificates through [Testgen] (one mutated field, all
   else default); [Byte_mutant] recombines a corpus parent through the
   byte-level [Faults.Mutator] kinds. *)

type context = Cn | San

let context_name = function Cn -> "cn" | San -> "san"

type spec = {
  op : string;
  context : context;
  declared : Asn1.Str_type.t;
  payload : string;
  der : string;
}

(* ASCII characters with a known non-ASCII lookalike in the
   [Unicode.Confusables] table (Cyrillic and Greek homographs). *)
let lookalikes =
  [ ('a', 0x0430); ('e', 0x0435); ('o', 0x043E); ('p', 0x0440); ('c', 0x0441);
    ('y', 0x0443); ('x', 0x0445); ('i', 0x0456); ('j', 0x0458); ('s', 0x0455);
    ('a', 0x03B1); ('o', 0x03BF) ]

let ascii_domains =
  [| "test.com"; "example.org"; "paypal.com"; "github.com"; "secure.example" |]

(* UTF-8 texts spanning the scripts the paper's T1/T2 findings use. *)
let unicode_texts =
  [| "b\xC3\xBCcher.example" (* bücher *); "caf\xC3\xA9.example";
     "\xD0\xBC\xD0\xB8\xD1\x80.example" (* Cyrillic мир *);
     "\xE4\xB8\xAD\xE6\x96\x87.cn" (* Han 中文 *);
     "\xCE\xB1\xCE\xB2.gr" (* Greek αβ *); "na\xC3\xAFve.example" |]

let cn_types =
  [| Asn1.Str_type.Utf8_string; Asn1.Str_type.Printable_string;
     Asn1.Str_type.Ia5_string; Asn1.Str_type.Bmp_string;
     Asn1.Str_type.Teletex_string; Asn1.Str_type.Visible_string;
     Asn1.Str_type.Universal_string; Asn1.Str_type.Numeric_string |]

let encodings =
  [| Unicode.Codec.Utf8; Unicode.Codec.Ucs2; Unicode.Codec.Utf16be;
     Unicode.Codec.Iso8859_1; Unicode.Codec.Ascii |]

let build context declared payload =
  let cert =
    match context with
    | Cn ->
        Tlsparsers.Testgen.make
          (Tlsparsers.Testgen.Subject_attr (X509.Attr.Common_name, declared, payload))
    | San -> Tlsparsers.Testgen.make (Tlsparsers.Testgen.San_dns payload)
  in
  cert.X509.Certificate.der

let splice_confusables g domain =
  let cps = Unicode.Codec.cps_of_utf8 domain in
  let eligible = ref [] in
  Array.iteri
    (fun i cp ->
      if cp < 0x80 && List.mem_assoc (Char.chr cp) lookalikes then
        eligible := i :: !eligible)
    cps;
  match !eligible with
  | [] -> domain
  | l ->
      let arr = Array.of_list l in
      let n_sub = 1 + Ucrypto.Prng.int g (min 3 (Array.length arr)) in
      for _ = 1 to n_sub do
        let i = arr.(Ucrypto.Prng.int g (Array.length arr)) in
        let choices = List.filter (fun (c, _) -> Char.code c = cps.(i)) lookalikes in
        match choices with
        | [] -> ()
        | _ -> cps.(i) <- snd (List.nth choices (Ucrypto.Prng.int g (List.length choices)))
      done;
      Unicode.Codec.utf8_of_cps cps

let random_ascii g n =
  String.init n (fun _ -> Char.chr (Char.code 'a' + Ucrypto.Prng.int g 26))

(* Declared string type disagrees with the payload's actual encoding
   (the paper's T1: CA-side repertoire violations). *)
let op_redeclare g =
  let text =
    if Ucrypto.Prng.bool g then ascii_domains.(Ucrypto.Prng.int g (Array.length ascii_domains))
    else unicode_texts.(Ucrypto.Prng.int g (Array.length unicode_texts))
  in
  let declared = cn_types.(Ucrypto.Prng.int g (Array.length cn_types)) in
  (* raw UTF-8 octets under a possibly incompatible declaration *)
  { op = "redeclare"; context = Cn; declared; payload = text;
    der = build Cn declared text }

(* Homograph splice into a DN attribute or a SAN dNSName. *)
let op_confusable g =
  let base = ascii_domains.(Ucrypto.Prng.int g (Array.length ascii_domains)) in
  let domain = splice_confusables g base in
  if Ucrypto.Prng.bool g then
    let declared =
      if Ucrypto.Prng.bool g then Asn1.Str_type.Utf8_string
      else Asn1.Str_type.Bmp_string
    in
    let payload =
      match declared with
      | Asn1.Str_type.Bmp_string -> (
          match
            Unicode.Codec.encode Unicode.Codec.Ucs2 (Unicode.Codec.cps_of_utf8 domain)
          with
          | Ok b -> b
          | Error _ -> domain)
      | _ -> domain
    in
    { op = "confusable"; context = Cn; declared; payload;
      der = build Cn declared payload }
  else
    (* non-ASCII bytes inside an IA5-declared dNSName *)
    { op = "confusable"; context = San; declared = Asn1.Str_type.Ia5_string;
      payload = domain; der = build San Asn1.Str_type.Ia5_string domain }

(* Oversized, malformed, or non-canonical A-labels in dNSNames. *)
let op_bad_alabel g =
  let label =
    match Ucrypto.Prng.int g 7 with
    | 0 -> "xn--" ^ random_ascii g (5 + Ucrypto.Prng.int g 10)
    | 1 -> "xn--" ^ String.make (60 + Ucrypto.Prng.int g 20) 'a'
    | 2 -> random_ascii g 2 ^ "--" ^ random_ascii g 4
    | 3 -> "-" ^ random_ascii g 6
    | 4 -> random_ascii g 6 ^ "-"
    | 5 -> String.make (64 + Ucrypto.Prng.int g 8) 'a'
    | _ -> "xn--" ^ String.uppercase_ascii (random_ascii g 8)
  in
  let domain =
    match Ucrypto.Prng.int g 3 with
    | 0 -> label ^ ".example"
    | 1 -> "www." ^ label ^ ".example"
    | _ -> label ^ "..example" (* empty label *)
  in
  { op = "bad_alabel"; context = San; declared = Asn1.Str_type.Ia5_string;
    payload = domain; der = build San Asn1.Str_type.Ia5_string domain }

(* NUL and C0 controls in every string context — the classic
   "paypal.com\x00.evil.com" shape and random in-place injections. *)
let op_nul_ctrl g =
  let base = ascii_domains.(Ucrypto.Prng.int g (Array.length ascii_domains)) in
  let bad_char =
    if Ucrypto.Prng.bool g then '\x00'
    else Char.chr (1 + Ucrypto.Prng.int g 0x1F)
  in
  let payload =
    if Ucrypto.Prng.bool g then base ^ String.make 1 bad_char ^ ".evil.example"
    else begin
      let pos = Ucrypto.Prng.int g (String.length base) in
      String.sub base 0 pos ^ String.make 1 bad_char
      ^ String.sub base pos (String.length base - pos)
    end
  in
  if Ucrypto.Prng.bool g then
    let declared =
      [| Asn1.Str_type.Printable_string; Asn1.Str_type.Ia5_string;
         Asn1.Str_type.Utf8_string |].(Ucrypto.Prng.int g 3)
    in
    { op = "nul_ctrl"; context = Cn; declared; payload;
      der = build Cn declared payload }
  else
    { op = "nul_ctrl"; context = San; declared = Asn1.Str_type.Ia5_string;
      payload; der = build San Asn1.Str_type.Ia5_string payload }

(* Cross-encode: serialize the text under one encoding, declare a type
   whose standard encoding is another (BMP/UTF-8/UCS-2 confusions). *)
let op_reencode g =
  let text = unicode_texts.(Ucrypto.Prng.int g (Array.length unicode_texts)) in
  let enc = encodings.(Ucrypto.Prng.int g (Array.length encodings)) in
  let payload =
    match Unicode.Codec.encode enc (Unicode.Codec.cps_of_utf8 text) with
    | Ok b when b <> "" -> b
    | _ -> text
  in
  let declared = cn_types.(Ucrypto.Prng.int g (Array.length cn_types)) in
  { op = "reencode"; context = Cn; declared; payload;
    der = build Cn declared payload }

(* Byte-level recombination of a corpus parent through the mutator. *)
let op_byte_mutant g corpus =
  let parent = corpus.(Ucrypto.Prng.int g (Array.length corpus)) in
  let mseed = Int64.to_int (Ucrypto.Prng.bits64 g) land max_int in
  let plan = Faults.Mutator.plan ~seed:mseed ~rate:1.0 () in
  let der, kind = Faults.Mutator.mutate plan ~index:0 parent in
  { op = "byte_mutant:" ^ Faults.Mutator.kind_name kind; context = Cn;
    declared = Asn1.Str_type.Utf8_string; payload = ""; der }

(* Rounds are capped at [max_round_size] candidates so
   [(round, index)] packs injectively into one stream index. *)
let max_round_size = 1 lsl 20

let candidate ~seed ~round ~index ~corpus =
  let g = Ucrypto.Prng.of_pair seed ((round * max_round_size) + index) in
  let structured =
    [ (op_redeclare, 2.0); (op_confusable, 2.0); (op_bad_alabel, 2.0);
      (op_nul_ctrl, 2.0); (op_reencode, 1.5) ]
  in
  let choices =
    if Array.length corpus = 0 then structured
    else ((fun g -> op_byte_mutant g corpus), 3.0) :: structured
  in
  Ucrypto.Prng.weighted g choices g
