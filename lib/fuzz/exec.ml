(* Differential evaluation of one candidate certificate.

   The coverage signal of the campaign is the outcome signature this
   module computes: our own x509 parser under strict and lenient DER
   configs, plus all nine [Tlsparsers] models probed through the
   harness fault boundary on the candidate's subject CN and first SAN
   dNSName.  Model outputs are partition-labeled (models that decode to
   the same application-visible string share a letter), so the
   signature captures the *shape* of disagreement, not the payload —
   shrinking a reproducer keeps its signature as long as the
   disagreement shape survives.

   Every evaluation probes through a private [Harness.Scope], so the
   signature is a pure function of the DER bytes: shard boundaries and
   evaluation order cannot leak breaker state between candidates, which
   is what makes findings byte-identical across [--jobs]. *)

type eval = {
  strict_ok : bool;
  lenient_ok : bool;
  cn : (Asn1.Str_type.t * string) option;
  san : string option;
  cn_tokens : string;
  san_tokens : string;
  nul : bool;
  ctl : bool;
  conf : bool;
  idna : string;
  crashes : (string * int) list;
  signature : string;
  cls : string;
}

let model_names =
  List.map (fun m -> m.Tlsparsers.Model.name) Tlsparsers.Models.all

let issue_name = function
  | Idna.Malformed_punycode _ -> "malformed_punycode"
  | Idna.Unpermitted_char _ -> "unpermitted_char"
  | Idna.Not_nfc -> "not_nfc"
  | Idna.Leading_combining_mark -> "leading_combining_mark"
  | Idna.Bad_hyphen34 -> "bad_hyphen34"
  | Idna.Leading_hyphen -> "leading_hyphen"
  | Idna.Trailing_hyphen -> "trailing_hyphen"
  | Idna.Bidi_violation -> "bidi_violation"
  | Idna.Empty_label -> "empty_label"
  | Idna.Encoded_label_too_long -> "encoded_label_too_long"
  | Idna.Non_canonical_alabel -> "non_canonical_alabel"

(* Partition labels over the fixed model order: first distinct decoded
   output is 'a', the next 'b', ...; 'R' rejected, 'C' crashed,
   '-' field unsupported, 'X' not probed (no payload in the context). *)
let tokens_of probes =
  let decoded = ref [] in
  let buf = Buffer.create 9 in
  List.iter
    (fun outcome ->
      Buffer.add_char buf
        (match outcome with
        | `Unsupported -> '-'
        | `Unprobed -> 'X'
        | `Outcome (Tlsparsers.Harness.Decoded s) -> (
            match List.assoc_opt s !decoded with
            | Some c -> c
            | None ->
                let c = Char.chr (Char.code 'a' + min 25 (List.length !decoded)) in
                decoded := !decoded @ [ (s, c) ];
                c)
        | `Outcome Tlsparsers.Harness.Rejected -> 'R'
        | `Outcome (Tlsparsers.Harness.Crashed _) -> 'C'))
    probes;
  Buffer.contents buf

let decoded_outputs probes =
  List.filter_map
    (function
      | `Outcome (Tlsparsers.Harness.Decoded s) -> Some s
      | _ -> None)
    probes

let has_label s = String.exists (fun c -> c >= 'a' && c <= 'z') s

let distinct_labels s =
  let seen = ref [] in
  String.iter
    (fun c -> if c >= 'a' && c <= 'z' && not (List.mem c !seen) then seen := c :: !seen)
    s;
  List.length !seen

let contains_ctl s = String.exists (fun c -> c < ' ' && c <> '\x00') s
let contains_nul s = String.contains s '\x00'

let contains_confusable s =
  Array.exists
    (fun cp -> cp >= 0x80 && Unicode.Confusables.lookalike cp <> None)
    (Unicode.Codec.cps_of_utf8 s)

let classify e =
  let any_crash = String.contains e.cn_tokens 'C' || String.contains e.san_tokens 'C' in
  let some_label = has_label e.cn_tokens || has_label e.san_tokens in
  let reject_somewhere tokens = has_label tokens && String.contains tokens 'R' in
  if any_crash then "model-crash"
  else if e.nul && some_label then "nul-transparency"
  else if e.ctl && some_label then "ctl-passthrough"
  else if
    e.idna <> "-" && e.san <> None && has_label e.san_tokens
    && not (String.contains e.san_tokens 'R')
  then "idna-blindspot"
  else if e.conf && some_label then "confusable-passthrough"
  else if (not e.strict_ok) && e.lenient_ok && some_label then "strictness-split"
  else if distinct_labels e.cn_tokens >= 2 || distinct_labels e.san_tokens >= 2 then
    "render-divergence"
  else if reject_somewhere e.cn_tokens || reject_somewhere e.san_tokens then
    "accept-reject-split"
  else "agreement"

(* Classes the fixed Table-4/5 battery does not enumerate as clusters:
   the "beyond the paper" findings the campaign must rediscover. *)
let beyond_tables = function
  | "nul-transparency" | "ctl-passthrough" | "idna-blindspot"
  | "confusable-passthrough" | "strictness-split" ->
      true
  | _ -> false

let signature_of e =
  Printf.sprintf "x509=%c%c|cn=%s:%s|san=%s|idna=%s|nul=%d|ctl=%d|conf=%d"
    (if e.strict_ok then 'P' else 'E')
    (if e.lenient_ok then 'P' else 'E')
    (match e.cn with Some (st, _) -> Asn1.Str_type.name st | None -> "-")
    e.cn_tokens e.san_tokens e.idna (Bool.to_int e.nul) (Bool.to_int e.ctl)
    (Bool.to_int e.conf)

let probe scope model field f =
  if not (model.Tlsparsers.Model.supports field) then `Unsupported
  else `Outcome (Tlsparsers.Harness.observe_decode ~scope model f)

let eval ?(threshold = Faults.Breaker.default_threshold) der =
  let scope = Tlsparsers.Harness.Scope.create ~threshold () in
  let strict_ok =
    match X509.Certificate.parse ~config:Asn1.Value.strict der with
    | Ok _ -> true
    | Error _ -> false
  in
  let parsed = X509.Certificate.parse ~config:Asn1.Value.lenient der in
  let lenient_ok = match parsed with Ok _ -> true | Error _ -> false in
  let cn, san =
    match parsed with
    | Error _ -> (None, None)
    | Ok cert -> (
        ( Tlsparsers.Testgen.raw_subject_attr cert X509.Attr.Common_name,
          match Tlsparsers.Testgen.raw_san_payloads cert with
          | [] -> None
          | p :: _ -> Some p ))
  in
  let cn_probes =
    List.map
      (fun model ->
        match cn with
        | None -> `Unprobed
        | Some (st, raw) ->
            probe scope model Tlsparsers.Model.Subject_dn (fun () ->
                model.Tlsparsers.Model.decode_name_attr st raw))
      Tlsparsers.Models.all
  in
  let san_probes =
    List.map
      (fun model ->
        match san with
        | None -> `Unprobed
        | Some payload ->
            probe scope model Tlsparsers.Model.San (fun () ->
                model.Tlsparsers.Model.decode_gn Tlsparsers.Model.San payload))
      Tlsparsers.Models.all
  in
  let outputs = decoded_outputs cn_probes @ decoded_outputs san_probes in
  let idna =
    match san with
    | None -> "-"
    | Some payload -> (
        match
          List.concat_map (fun (_, issues) -> List.map issue_name issues)
            (Idna.domain_issues payload)
          |> List.sort_uniq compare
        with
        | [] -> "-"
        | names -> String.concat "+" names)
  in
  let crashes =
    List.map2
      (fun name (c, s) ->
        let count o = match o with `Outcome (Tlsparsers.Harness.Crashed r) when r <> "circuit_open" -> 1 | _ -> 0 in
        (name, count c + count s))
      model_names
      (List.combine cn_probes san_probes)
    |> List.filter (fun (_, n) -> n > 0)
  in
  let e =
    { strict_ok; lenient_ok; cn; san;
      cn_tokens = tokens_of cn_probes; san_tokens = tokens_of san_probes;
      nul = List.exists contains_nul outputs;
      ctl = List.exists contains_ctl outputs;
      conf = List.exists contains_confusable outputs;
      idna; crashes; signature = ""; cls = "" }
  in
  let e = { e with signature = signature_of e } in
  { e with cls = classify e }

(* Synthetic evaluations for candidates the campaign could not run to
   completion: a watchdog overrun and a harness-level exception. *)
let timeout_eval stage =
  { strict_ok = false; lenient_ok = false; cn = None; san = None;
    cn_tokens = ""; san_tokens = ""; nul = false; ctl = false; conf = false;
    idna = "-"; crashes = []; signature = "timeout|" ^ stage; cls = "timeout" }

let crash_eval exn_name =
  { strict_ok = false; lenient_ok = false; cn = None; san = None;
    cn_tokens = ""; san_tokens = ""; nul = false; ctl = false; conf = false;
    idna = "-"; crashes = []; signature = "harness-crash|" ^ exn_name;
    cls = "harness-crash" }
