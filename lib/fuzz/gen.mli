(** Grammar-aware candidate generation for the differential fuzzer.

    Candidates extend {!Faults.Mutator}'s byte-level kinds with
    semantic operations over string types, encodings, and IDNA edge
    cases: string-type redeclaration, confusable label splices,
    oversized/invalid A-labels, NUL/control injection into every string
    context, and BMP/UTF-8 re-encodings.  Each candidate is a pure
    function of [(seed, round, index)] and the corpus snapshot, which
    is what makes campaigns shardable and resumable with byte-identical
    results. *)

type context = Cn | San

val context_name : context -> string

type spec = {
  op : string;       (** operation name, e.g. ["nul_ctrl"], ["byte_mutant:tag_swap"] *)
  context : context; (** which field carries the mutated payload *)
  declared : Asn1.Str_type.t;
  payload : string;  (** raw content octets placed in the field *)
  der : string;      (** the full candidate certificate encoding *)
}

val max_round_size : int
(** Upper bound on candidates per round; [(round, index)] packs
    injectively into one PRNG stream index below it. *)

val candidate : seed:int -> round:int -> index:int -> corpus:string array -> spec
(** [candidate ~seed ~round ~index ~corpus] is the [index]-th candidate
    of [round]: deterministic given the arguments.  [corpus] enables
    byte-level mutation of kept seeds; when empty only structured
    operations are drawn. *)

val build : context -> Asn1.Str_type.t -> string -> string
(** [build context st payload] is the DER of a test certificate whose
    mutated field is [payload] declared as [st] — the construction
    every structured operation uses, exposed for tests. *)
