(** The coverage-guided differential fuzzing campaign.

    Round-based: each round fixes the corpus snapshot, generates
    candidates pure in [(seed, round, index)], evaluates them sharded
    under {!Par} (evaluation is pure in the candidate DER), merges in
    index order, and folds corpus/coverage/findings sequentially.  Same
    seed, budget and round size yield byte-identical findings for any
    [jobs] — except when a watchdog timeout actually fires or
    [--fault-hang] injection is armed (both documented exemptions). *)

type config = {
  seed : int;
  budget : int;  (** total candidate executions *)
  round_size : int;
  jobs : int;
  timeout : float;  (** per-candidate watchdog seconds; 0 = off *)
  max_seconds : float option;  (** wall-clock budget; [None] = unlimited *)
  breaker_threshold : int;
  checkpoint : string option;
  resume : bool;
  corpus_cap : int;
  minimize_findings : bool;  (** minimize each finding before returning *)
}

val default_config : config

type status = Completed | Wall_abort of float

type t = {
  status : status;
  executions : int;
  rounds : int;
  findings : Findings.finding list;  (** discovery order *)
  corpus_size : int;
  signatures : int;  (** distinct outcome signatures observed *)
  degraded : (string * int) list;
      (** models whose real-crash count reached the breaker threshold
          during the campaign *)
  first_disagreement : int option;
      (** execution number of the first non-agreement outcome *)
}

val run : config -> t
(** Runs the campaign.  Saves a checkpoint after every round when
    [checkpoint] is set; [resume] reloads it (a checkpoint from a
    different seed/budget is ignored with a warning).
    @raise Invalid_argument on a non-positive or oversized
    [round_size], or a negative [budget].
    @raise Faults.Checkpoint.Invalid when resuming from a corrupt
    checkpoint file. *)
