(* Findings: the JSONL interchange format between campaign, minimizer,
   report, and the smoke tests.

   One line per finding, written in discovery order; fields are emitted
   in a fixed order so identical campaigns produce byte-identical
   files.  [der_hex] carries the full candidate encoding, letting
   [minimize] and the regression suite re-evaluate findings offline. *)

type finding = {
  round : int;
  index : int;
  exec : int;  (* global execution number at discovery *)
  cluster : string;
  cls : string;
  signature : string;
  op : string;
  context : string;
  declared : string;
  count : int;  (* total campaign occurrences of this signature *)
  der : string;
  min_der : string option;
}

let cluster_id ~cls ~signature =
  cls ^ "-" ^ String.sub (Ucrypto.Sha256.hex signature) 0 8

let hex_of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Fuzz.Findings.string_of_hex: odd length";
  String.init (n / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let to_json f =
  let esc = Obs.Jsonv.escape in
  Printf.sprintf
    "{\"round\":%d,\"index\":%d,\"exec\":%d,\"cluster\":%s,\"class\":%s,\"signature\":%s,\"op\":%s,\"context\":%s,\"declared\":%s,\"count\":%d,\"der_hex\":%s,\"min_der_hex\":%s}"
    f.round f.index f.exec (esc f.cluster) (esc f.cls) (esc f.signature)
    (esc f.op) (esc f.context) (esc f.declared) f.count
    (esc (hex_of_string f.der))
    (match f.min_der with None -> "null" | Some d -> esc (hex_of_string d))

let of_json line =
  match Obs.Jsonv.parse line with
  | Error msg -> Error msg
  | Ok v -> (
      let str k =
        match Obs.Jsonv.member k v with
        | Some (Obs.Jsonv.Str s) -> Ok s
        | _ -> Error (Printf.sprintf "missing string field %S" k)
      in
      let num k =
        match Obs.Jsonv.member k v with
        | Some (Obs.Jsonv.Num n) -> Ok (int_of_float n)
        | _ -> Error (Printf.sprintf "missing numeric field %S" k)
      in
      let ( let* ) = Result.bind in
      let* round = num "round" in
      let* index = num "index" in
      let* exec = num "exec" in
      let* cluster = str "cluster" in
      let* cls = str "class" in
      let* signature = str "signature" in
      let* op = str "op" in
      let* context = str "context" in
      let* declared = str "declared" in
      let* count = num "count" in
      let* der_hex = str "der_hex" in
      let min_der =
        match Obs.Jsonv.member "min_der_hex" v with
        | Some (Obs.Jsonv.Str s) -> Some (string_of_hex s)
        | _ -> None
      in
      Ok
        { round; index; exec; cluster; cls; signature; op; context; declared;
          count; der = string_of_hex der_hex; min_der })

let write path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun f -> output_string oc (to_json f ^ "\n")) findings)

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc lineno =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go acc (lineno + 1)
        | line -> (
            match of_json line with
            | Ok f -> go (f :: acc) (lineno + 1)
            | Error msg ->
                Error (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      go [] 1)

(* Cluster summary: [(cluster, class, occurrences, exemplar)] in order
   of first discovery — stable across runs of the same campaign.  One
   finding per cluster is the common case (a cluster *is* a distinct
   signature); occurrences sum the campaign-wide [count]s. *)
let clusters findings =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun f ->
      match Hashtbl.find_opt tbl f.cluster with
      | Some (n, ex) -> Hashtbl.replace tbl f.cluster (n + max 1 f.count, ex)
      | None ->
          Hashtbl.add tbl f.cluster (max 1 f.count, f);
          order := f.cluster :: !order)
    findings;
  List.rev_map
    (fun c ->
      let n, ex = Hashtbl.find tbl c in
      (c, ex.cls, n, ex))
    !order

let report ppf findings =
  let cs = clusters findings in
  Format.fprintf ppf "findings: %d, clusters: %d@." (List.length findings)
    (List.length cs);
  Format.fprintf ppf "%-42s %-22s %6s %7s %6s  %s@." "CLUSTER" "CLASS" "COUNT"
    "BEYOND" "BYTES" "SIGNATURE";
  List.iter
    (fun (c, cls, n, ex) ->
      Format.fprintf ppf "%-42s %-22s %6d %7s %6d  %s@." c cls n
        (if Exec.beyond_tables cls then "yes" else "no")
        (String.length (Option.value ~default:ex.der ex.min_der))
        ex.signature)
    cs
