(** Reproducer minimization by TLV-level delta debugging.

    A reduction is kept iff the reduced DER still evaluates to the same
    (class, signature) pair under {!Exec.eval}.  Deterministic; bounded
    by [max_evals] re-evaluations. *)

val default_max_evals : int

val minimize : ?threshold:int -> ?max_evals:int -> string -> string
(** [minimize der] is a (weakly) smaller DER with the same anomaly
    class and outcome signature; [der] itself when nothing smaller
    survives. *)
