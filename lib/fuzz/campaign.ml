(* The coverage-guided campaign driver.

   Coverage feedback is inherently sequential (the corpus grows as
   novel outcome signatures appear), so the campaign runs in *rounds*:
   each round fixes the corpus snapshot, generates a fixed-size batch
   of candidates pure in [(seed, round, index)], evaluates the batch
   sharded under [Par] (evaluation is a pure function of the DER — see
   [Exec]), merges results in index order, and only then folds them
   into the corpus and findings sequentially.  The merged stream is
   therefore independent of [--jobs]: same seed and budget yield
   byte-identical findings for any shard count.

   Two escape hatches are *not* covered by the byte-identity contract
   and are documented as such: a per-candidate watchdog timeout that
   actually fires (worker-domain watchdogs are post hoc and
   machine-dependent), and armed fault injection with [--fault-hang].
   Deterministic injection ([--fault-model NAME:1]) keeps the contract:
   every evaluation of the model crashes identically. *)

type config = {
  seed : int;
  budget : int;  (* total candidate executions *)
  round_size : int;
  jobs : int;
  timeout : float;  (* per-candidate watchdog seconds; 0 = off *)
  max_seconds : float option;  (* wall-clock budget; None = unlimited *)
  breaker_threshold : int;
  checkpoint : string option;
  resume : bool;
  corpus_cap : int;
  minimize_findings : bool;
}

let default_config =
  { seed = 1; budget = 512; round_size = 64; jobs = 1; timeout = 0.;
    max_seconds = None; breaker_threshold = Faults.Breaker.default_threshold;
    checkpoint = None; resume = false; corpus_cap = 256;
    minimize_findings = false }

type status = Completed | Wall_abort of float

type t = {
  status : status;
  executions : int;
  rounds : int;
  findings : Findings.finding list;  (* discovery order *)
  corpus_size : int;
  signatures : int;  (* distinct outcome signatures observed *)
  degraded : (string * int) list;
      (* models whose real-crash count reached the breaker threshold *)
  first_disagreement : int option;
      (* execution number of the first non-agreement outcome *)
}

(* Checkpoint payload: everything the round loop folds sequentially.
   Lists are kept in reverse discovery order (cheap cons). *)
type ckpt_state = {
  ck_round : int;
  ck_corpus : string list;  (* oldest first *)
  ck_sigs : string list;  (* reversed *)
  ck_findings : Findings.finding list;  (* reversed *)
  ck_counts : (string * int) list;  (* non-agreement signature -> occurrences *)
  ck_crashes : (string * int) list;
  ck_first : int option;
}

let obs_execs =
  lazy
    (Obs.Registry.counter ~help:"Fuzzer candidate evaluations"
       "unicert_fuzz_execs_total")

let obs_findings =
  lazy
    (Obs.Registry.labeled_counter ~label:"class"
       ~help:"Fuzzer findings by anomaly class" "unicert_fuzz_findings_total")

let obs_rounds =
  lazy (Obs.Registry.counter ~help:"Fuzzer rounds completed" "unicert_fuzz_rounds_total")

(* Deterministic initial corpus: a few battery-shaped certificates so
   byte-level mutation has parents from round 0. *)
let initial_corpus () =
  List.map
    (fun m -> (Tlsparsers.Testgen.make m).X509.Certificate.der)
    [ Tlsparsers.Testgen.Subject_attr
        (X509.Attr.Common_name, Asn1.Str_type.Printable_string, "test.com");
      Tlsparsers.Testgen.Subject_attr
        (X509.Attr.Common_name, Asn1.Str_type.Utf8_string, "b\xC3\xBCcher.example");
      Tlsparsers.Testgen.Subject_attr
        (X509.Attr.Common_name, Asn1.Str_type.Bmp_string,
         "\x00t\x00e\x00s\x00t");
      Tlsparsers.Testgen.San_dns "xn--bcher-kva.example" ]

let eval_guarded cfg (spec : Gen.spec) =
  let run () = Exec.eval ~threshold:cfg.breaker_threshold spec.Gen.der in
  try
    if cfg.timeout > 0. then
      Faults.Watchdog.with_timeout ~stage:"fuzz_eval" ~seconds:cfg.timeout run
    else run ()
  with
  | Faults.Watchdog.Timed_out { stage; _ } -> Exec.timeout_eval stage
  | e -> Exec.crash_eval (Faults.Error.exn_name e)

let run cfg =
  if cfg.round_size < 1 || cfg.round_size > Gen.max_round_size then
    invalid_arg "Fuzz.Campaign.run: round_size out of range";
  if cfg.budget < 0 then invalid_arg "Fuzz.Campaign.run: negative budget";
  let execs_c = Lazy.force obs_execs in
  let findings_c = Lazy.force obs_findings in
  let rounds_c = Lazy.force obs_rounds in
  (* resume: reload the fold state; a checkpoint from a different
     (seed, budget) run is ignored rather than silently continued *)
  let st =
    let fresh =
      { ck_round = 0; ck_corpus = initial_corpus (); ck_sigs = [];
        ck_findings = []; ck_counts = []; ck_crashes = []; ck_first = None }
    in
    match cfg.checkpoint with
    | Some path when cfg.resume -> (
        match Faults.Checkpoint.load path with
        | Some cp
          when cp.Faults.Checkpoint.seed = cfg.seed
               && cp.Faults.Checkpoint.scale = cfg.budget ->
            cp.Faults.Checkpoint.state
        | Some _ ->
            Printf.eprintf
              "warning: checkpoint is from a different campaign (seed/budget \
               mismatch); starting fresh\n";
            fresh
        | None -> fresh)
    | _ -> fresh
  in
  let seen = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace seen s ()) st.ck_sigs;
  let counts = Hashtbl.create 256 in
  List.iter (fun (s, n) -> Hashtbl.replace counts s n) st.ck_counts;
  let round = ref st.ck_round in
  (* executions derive from completed rounds: every full round ran
     [round_size] candidates, the final round the remainder *)
  let executions = ref (min (st.ck_round * cfg.round_size) cfg.budget) in
  let corpus = ref st.ck_corpus in
  let sigs = ref st.ck_sigs in
  let findings = ref st.ck_findings in
  let crashes = ref st.ck_crashes in
  let first = ref st.ck_first in
  let t0 = Unix.gettimeofday () in
  let wall_exceeded () =
    match cfg.max_seconds with
    | None -> false
    | Some m -> Unix.gettimeofday () -. t0 >= m
  in
  let save_ckpt () =
    match cfg.checkpoint with
    | None -> ()
    | Some path ->
        Faults.Checkpoint.save path
          { Faults.Checkpoint.scale = cfg.budget; seed = cfg.seed;
            next_index = !executions;
            state =
              { ck_round = !round; ck_corpus = !corpus; ck_sigs = !sigs;
                ck_findings = !findings;
                ck_counts =
                  Hashtbl.fold (fun s n acc -> (s, n) :: acc) counts []
                  |> List.sort compare;
                ck_crashes = !crashes; ck_first = !first } }
  in
  let status = ref Completed in
  let continue = ref true in
  while !continue do
    if !executions >= cfg.budget then continue := false
    else if wall_exceeded () then begin
      status := Wall_abort (Unix.gettimeofday () -. t0);
      continue := false
    end
    else begin
      let n = min cfg.round_size (cfg.budget - !executions) in
      let corpus_arr = Array.of_list !corpus in
      let evals =
        Obs.Span.with_ "fuzz_round" (fun () ->
            Par.map_shards ~jobs:cfg.jobs ~scale:n (fun ~shard:_ ~lo ~hi ->
                List.init (hi - lo) (fun k ->
                    let index = lo + k in
                    let spec =
                      Gen.candidate ~seed:cfg.seed ~round:!round ~index
                        ~corpus:corpus_arr
                    in
                    (index, spec, eval_guarded cfg spec)))
            |> List.concat)
      in
      (* sequential fold, index order: corpus/signature/finding updates *)
      List.iter
        (fun (index, (spec : Gen.spec), (e : Exec.eval)) ->
          Obs.Counter.inc execs_c;
          let exec = !executions + index in
          if e.Exec.cls <> "agreement" then begin
            if !first = None then first := Some exec;
            Hashtbl.replace counts e.Exec.signature
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts e.Exec.signature))
          end;
          List.iter
            (fun (m, c) ->
              let prev = Option.value ~default:0 (List.assoc_opt m !crashes) in
              crashes := (m, prev + c) :: List.remove_assoc m !crashes)
            e.Exec.crashes;
          if not (Hashtbl.mem seen e.Exec.signature) then begin
            Hashtbl.replace seen e.Exec.signature ();
            sigs := e.Exec.signature :: !sigs;
            if List.length !corpus < cfg.corpus_cap then
              corpus := !corpus @ [ spec.Gen.der ];
            if e.Exec.cls <> "agreement" then begin
              Obs.Counter.inc (Obs.Counter.Labeled.get findings_c e.Exec.cls);
              findings :=
                { Findings.round = !round; index; exec;
                  cluster =
                    Findings.cluster_id ~cls:e.Exec.cls
                      ~signature:e.Exec.signature;
                  cls = e.Exec.cls; signature = e.Exec.signature;
                  op = spec.Gen.op; context = Gen.context_name spec.Gen.context;
                  declared = Asn1.Str_type.name spec.Gen.declared;
                  count = 0; der = spec.Gen.der; min_der = None }
                :: !findings
            end
          end)
        evals;
      executions := !executions + n;
      incr round;
      Obs.Counter.inc rounds_c;
      save_ckpt ()
    end
  done;
  save_ckpt ();
  (* !findings is newest-first; rev_map restores discovery order while
     stamping the campaign-wide occurrence counts *)
  let findings_fwd =
    List.rev_map
      (fun (f : Findings.finding) ->
        { f with
          Findings.count =
            Option.value ~default:1 (Hashtbl.find_opt counts f.Findings.signature) })
      !findings
  in
  let findings_fwd =
    if not cfg.minimize_findings then findings_fwd
    else
      List.map
        (fun (f : Findings.finding) ->
          { f with
            Findings.min_der =
              Some (Minimize.minimize ~threshold:cfg.breaker_threshold f.Findings.der) })
        findings_fwd
  in
  let degraded =
    List.filter (fun (_, c) -> c >= cfg.breaker_threshold) !crashes
    |> List.sort compare
  in
  { status = !status; executions = !executions; rounds = !round;
    findings = findings_fwd; corpus_size = List.length !corpus;
    signatures = List.length !sigs; degraded; first_disagreement = !first }
