(** Differential evaluation: one candidate DER against our [x509]
    parser (strict and lenient) and all nine [Tlsparsers] models, under
    a private per-evaluation {!Tlsparsers.Harness.Scope}.

    The outcome signature is the campaign's coverage signal: it encodes
    the disagreement *shape* (partition labels over model outputs,
    accept/reject/crash tokens, IDNA and content facets) rather than
    payload bytes, so it is stable under reproducer minimization and a
    pure function of the DER. *)

type eval = {
  strict_ok : bool;   (** our parser, DER-strict config *)
  lenient_ok : bool;  (** our parser, lenient config *)
  cn : (Asn1.Str_type.t * string) option;
      (** declared type + raw octets of the subject CN, when parsed *)
  san : string option;  (** first SAN dNSName payload, when present *)
  cn_tokens : string;
      (** one char per model, fixed order: ['a'..] partition labels
          (same letter = same decoded output), ['R'] reject, ['C']
          crash, ['-'] unsupported, ['X'] not probed *)
  san_tokens : string;
  nul : bool;   (** some model's decoded output contains NUL *)
  ctl : bool;   (** ... contains a C0 control other than NUL *)
  conf : bool;  (** ... contains a non-ASCII confusable code point *)
  idna : string;
      (** sorted IDNA issue names of the SAN payload joined by [+],
          ["-"] when clean or absent *)
  crashes : (string * int) list;
      (** real model crashes this evaluation (circuit-open excluded) *)
  signature : string;  (** the full outcome-signature string *)
  cls : string;        (** anomaly class, ["agreement"] when none *)
}

val eval : ?threshold:int -> string -> eval
(** [eval der] probes one candidate.  [threshold] seeds the private
    scope's circuit breakers.  Pure in [der]. *)

val beyond_tables : string -> bool
(** Classes outside the paper's Table-4/5 taxonomy. *)

val timeout_eval : string -> eval
(** Synthetic outcome for a watchdog overrun in stage [s]. *)

val crash_eval : string -> eval
(** Synthetic outcome for a harness-level exception. *)
