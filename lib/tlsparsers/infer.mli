(** Decoding-method inference (paper §3.2): feed crafted payloads to a
    parsing API, observe the returned strings, and determine which of
    the five decoding methods and three character-handling modes the
    implementation uses. *)

type method_ = M_ascii | M_latin1 | M_utf8 | M_ucs2 | M_utf16

val method_name : method_ -> string

type handling =
  | H_none
  | H_replace_fffd       (** substitute U+FFFD *)
  | H_replace_dot        (** substitute "." (PyOpenSSL CRLDP) *)
  | H_skip               (** drop undecodable bytes (truncation) *)
  | H_hex_escape         (** expand undecodable bytes to [\xNN] *)
  | H_escape_nonprintable  (** expand every non-printable byte (OpenSSL) *)
  | H_bytewise_escape    (** byte-wise read dropping NULs, escaping *)
  | H_bytewise_replace   (** byte-wise read dropping NULs, U+FFFD *)

val handling_name : handling -> string

type observation = { raw : string; output : string option }

val candidates : (method_ * handling) list
(** Ordered candidate set; earlier entries are preferred on ties. *)

val apply : method_ * handling -> string -> string option
(** [apply candidate raw] is the text the candidate decoder yields. *)

val infer : observation list -> (method_ * handling) option
(** [infer obs] is the first candidate consistent with every
    observation, or [None] (no output at all, or no consistent
    candidate). *)

type verdict =
  | Compliant
  | Over_tolerant
  | Incompatible
  | Modified
  | Unsupported
  | Crashing of string
      (** the model raised on probe inputs; the payload is the most
          frequent exception constructor (crashes are excluded from
          method inference per §3.2) *)

val verdict_name : verdict -> string
val verdict_symbol : verdict -> string
(** The paper's cell symbols: [o] compliant, [O/] over-tolerant, [X]
    incompatible, [(.)] modified, [-] unsupported. *)

val classify :
  declared:Asn1.Str_type.t -> (method_ * handling) option -> all_none:bool -> verdict list
(** [classify ~declared inferred ~all_none] maps an inference result to
    the Table 4 verdict set for a field declared as [declared].
    [all_none] marks APIs that produced no output for any probe. *)

val standard_method : Asn1.Str_type.t -> method_ option
(** [None] for UniversalString (UCS-4 is outside the five methods). *)
