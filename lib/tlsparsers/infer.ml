type method_ = M_ascii | M_latin1 | M_utf8 | M_ucs2 | M_utf16

let method_name = function
  | M_ascii -> "ASCII"
  | M_latin1 -> "ISO-8859-1"
  | M_utf8 -> "UTF-8"
  | M_ucs2 -> "UCS-2"
  | M_utf16 -> "UTF-16"

type handling =
  | H_none
  | H_replace_fffd
  | H_replace_dot
  | H_skip
  | H_hex_escape
  | H_escape_nonprintable
  | H_bytewise_escape
  | H_bytewise_replace

let handling_name = function
  | H_none -> "strict"
  | H_replace_fffd -> "replace(U+FFFD)"
  | H_replace_dot -> "replace(.)"
  | H_skip -> "truncate"
  | H_hex_escape -> "hex-escape"
  | H_escape_nonprintable -> "escape-nonprintable"
  | H_bytewise_escape -> "byte-wise+escape"
  | H_bytewise_replace -> "byte-wise+replace"

type observation = { raw : string; output : string option }

let encoding_of = function
  | M_ascii -> Unicode.Codec.Ascii
  | M_latin1 -> Unicode.Codec.Iso8859_1
  | M_utf8 -> Unicode.Codec.Utf8
  | M_ucs2 -> Unicode.Codec.Ucs2
  | M_utf16 -> Unicode.Codec.Utf16be

let candidates =
  let methods = [ M_ascii; M_latin1; M_utf8; M_ucs2; M_utf16 ] in
  List.map (fun m -> (m, H_none)) methods
  @ List.concat_map
      (fun h -> List.map (fun m -> (m, h)) methods)
      [ H_replace_fffd; H_replace_dot; H_skip; H_hex_escape ]
  @ [ (M_ascii, H_escape_nonprintable); (M_ascii, H_bytewise_escape);
      (M_ascii, H_bytewise_replace) ]

(* Byte-wise UCS-2 reading: NUL octets vanish.  The escape flavour
   expands every non-printable byte (OpenSSL); the replace flavour
   substitutes U+FFFD only for bytes above 0x7F (Java). *)
let bytewise_escape raw =
  let buf = Buffer.create (String.length raw) in
  String.iter
    (fun c ->
      let b = Char.code c in
      if b = 0 then ()
      else if b >= 0x20 && b <= 0x7E then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "\\x%02X" b))
    raw;
  Buffer.contents buf

let bytewise_replace raw =
  let buf = Buffer.create (String.length raw) in
  String.iter
    (fun c ->
      let b = Char.code c in
      if b = 0 then ()
      else if b <= 0x7F then Buffer.add_char buf c
      else Buffer.add_string buf "\xEF\xBF\xBD")
    raw;
  Buffer.contents buf

let apply (m, h) raw =
  let enc = encoding_of m in
  match h with
  | H_none -> (
      match Unicode.Codec.decode enc raw with
      | Ok cps -> Some (Unicode.Codec.utf8_of_cps cps)
      | Error _ -> None)
  | H_replace_fffd ->
      Some (Unicode.Codec.utf8_of_cps
              (Unicode.Codec.decode_exn ~policy:(Unicode.Codec.Replace 0xFFFD) enc raw))
  | H_replace_dot ->
      Some (Unicode.Codec.utf8_of_cps
              (Unicode.Codec.decode_exn ~policy:(Unicode.Codec.Replace 0x2E) enc raw))
  | H_skip ->
      Some (Unicode.Codec.utf8_of_cps
              (Unicode.Codec.decode_exn ~policy:Unicode.Codec.Skip enc raw))
  | H_hex_escape ->
      Some (Unicode.Codec.utf8_of_cps
              (Unicode.Codec.decode_exn ~policy:Unicode.Codec.Escape_hex enc raw))
  | H_escape_nonprintable -> Some (Unicode.Escape.hex_escape_nonprintable raw)
  | H_bytewise_escape -> Some (bytewise_escape raw)
  | H_bytewise_replace -> Some (bytewise_replace raw)

(* Per §3.2, complete parsing failures are excluded from the inference
   and analyzed separately: a candidate must reproduce every produced
   output but is free to fail where the library failed. *)
let consistent candidate obs =
  List.for_all
    (fun o ->
      match o.output with
      | None -> true
      | Some out -> (
          match apply candidate o.raw with
          | Some c -> String.equal c out
          | None -> false))
    obs

let infer obs =
  if List.for_all (fun o -> o.output = None) obs then None
  else List.find_opt (fun c -> consistent c obs) candidates

type verdict =
  | Compliant
  | Over_tolerant
  | Incompatible
  | Modified
  | Unsupported
  | Crashing of string  (** the model raised; payload is the exception constructor *)

let verdict_name = function
  | Compliant -> "compliant"
  | Over_tolerant -> "over-tolerant"
  | Incompatible -> "incompatible"
  | Modified -> "modified"
  | Unsupported -> "unsupported"
  | Crashing e -> "crashing(" ^ e ^ ")"

let verdict_symbol = function
  | Compliant -> "o"
  | Over_tolerant -> "O/"
  | Incompatible -> "X"
  | Modified -> "(.)"
  | Unsupported -> "-"
  | Crashing e -> "!" ^ e

let standard_method stype =
  match stype with
  | Asn1.Str_type.Printable_string | Asn1.Str_type.Ia5_string
  | Asn1.Str_type.Numeric_string | Asn1.Str_type.Visible_string ->
      Some M_ascii
  | Asn1.Str_type.Teletex_string -> Some M_latin1
  | Asn1.Str_type.Utf8_string -> Some M_utf8
  | Asn1.Str_type.Bmp_string -> Some M_ucs2
  | Asn1.Str_type.Universal_string -> None

(* Wider repertoire: decoding an ASCII-typed value with Latin-1/UTF-8,
   or a UCS-2-typed value with UTF-16. *)
let is_wider ~std m =
  match (std, m) with
  | M_ascii, (M_latin1 | M_utf8) -> true
  | M_ucs2, M_utf16 -> true
  | _ -> false

let classify ~declared inferred ~all_none =
  if all_none then [ Unsupported ]
  else
    match (standard_method declared, inferred) with
    | None, _ -> [ Unsupported ]
    | Some _, None -> [ Modified ] (* behaviour matched no clean candidate *)
    | Some std, Some (m, h) ->
        let base =
          if m = std then if h = H_none then [ Compliant ] else []
          else if is_wider ~std m then [ Over_tolerant ]
          else [ Incompatible ]
        in
        let modified = if h = H_none then [] else [ Modified ] in
        let v = base @ modified in
        if v = [] then [ Modified ] else v
