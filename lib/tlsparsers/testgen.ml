type mutation =
  | Subject_attr of X509.Attr.t * Asn1.Str_type.t * string
  | San_dns of string
  | San_rfc822 of string
  | San_uri of string
  | Crldp_uri of string
  | Aia_uri of string

let issuer_key = X509.Certificate.mock_keypair ~seed:"testgen-issuer" ()

let issuer_dn =
  X509.Dn.of_list
    [ (X509.Attr.Country_name, "US"); (X509.Attr.Organization_name, "Testgen CA") ]

let make mutation =
  let default_cn = X509.Dn.atv X509.Attr.Common_name "test.com" in
  let default_san = [ X509.General_name.Dns_name "test.com" ] in
  let subject, san, crldp, aia =
    match mutation with
    | Subject_attr (attr, st, raw) ->
        let atv = X509.Dn.atv_raw ~st attr raw in
        let subject =
          if attr = X509.Attr.Common_name then [ atv ] else [ default_cn; atv ]
        in
        (subject, default_san, [], [])
    | San_dns payload -> ([ default_cn ], [ X509.General_name.Dns_name payload ], [], [])
    | San_rfc822 payload ->
        ([ default_cn ], default_san @ [ X509.General_name.Rfc822_name payload ], [], [])
    | San_uri payload ->
        ([ default_cn ], default_san @ [ X509.General_name.Uri payload ], [], [])
    | Crldp_uri payload -> ([ default_cn ], default_san, [ X509.General_name.Uri payload ], [])
    | Aia_uri payload -> ([ default_cn ], default_san, [], [ X509.General_name.Uri payload ])
  in
  let extensions =
    [ X509.Extension.subject_alt_name san ]
    @ (if crldp = [] then [] else [ X509.Extension.crl_distribution_points crldp ])
    @
    if aia = [] then []
    else
      [ X509.Extension.authority_info_access
          (List.map (fun gn -> (X509.Extension.Oids.ocsp, gn)) aia) ]
  in
  let leaf = X509.Certificate.mock_keypair ~seed:"testgen-leaf" () in
  let tbs =
    X509.Certificate.make_tbs ~serial:"\x7A\x01"
      ~issuer:issuer_dn
      ~subject:(X509.Dn.single subject)
      ~not_before:(Asn1.Time.make 2024 1 1)
      ~not_after:(Asn1.Time.make 2025 1 1)
      ~spki:(X509.Certificate.keypair_spki leaf)
      ~sig_alg:X509.Certificate.Oids.mock_signature ~extensions ()
  in
  X509.Certificate.sign issuer_key tbs

let byte_battery =
  [
    "test.com";
    "caf\xC3\xA9.example" (* well-formed UTF-8 *);
    "caf\xE9.example" (* Latin-1 byte *);
    "ctl\x01\x1Fx" (* C0 controls *);
    "\x00g\x00i\x00t\x00h\x00u\x00b" (* UCS-2 "github" *);
    "\x00c\x00a\x00f\x00\xE9" (* UCS-2 "café" *);
    "\xD8\x3D\xDE\x00" (* UTF-16 surrogate pair (U+1F600) *);
    "A";
    "mix\xC3\xA9\xE9" (* valid + invalid UTF-8 in one value *);
  ]

let embed payload = "test" ^ payload ^ ".com"

let block_samples () =
  Array.to_list Unicode.Blocks.non_surrogate
  |> List.map (fun b ->
         let cp = Unicode.Blocks.sample b in
         (b.Unicode.Blocks.name, embed (Unicode.Codec.utf8_of_cps [| cp |])))

let c0_to_ff_samples () =
  List.init 0x100 (fun cp -> embed (Unicode.Codec.utf8_of_cps [| cp |]))

let raw_subject_attr cert attr =
  match X509.Dn.get cert.X509.Certificate.tbs.X509.Certificate.subject attr with
  | { X509.Dn.value = Asn1.Value.Str (st, raw); _ } :: _ -> Some (st, raw)
  | _ -> None

let raw_san_payloads cert =
  match
    X509.Extension.find cert.X509.Certificate.tbs.X509.Certificate.extensions
      X509.Extension.Oids.subject_alt_name
  with
  | None -> []
  | Some e -> (
      match X509.Extension.parse_general_names e.X509.Extension.value with
      | Error _ -> []
      | Ok gns ->
          List.filter_map
            (function
              | X509.General_name.Dns_name s | X509.General_name.Rfc822_name s
              | X509.General_name.Uri s ->
                  Some s
              | _ -> None)
            gns)

let raw_crldp_payloads cert =
  match
    X509.Extension.find cert.X509.Certificate.tbs.X509.Certificate.extensions
      X509.Extension.Oids.crl_distribution_points
  with
  | None -> []
  | Some e -> (
      match X509.Extension.parse_crl_distribution_points e.X509.Extension.value with
      | Error _ -> []
      | Ok gns ->
          List.filter_map
            (function X509.General_name.Uri s -> Some s | _ -> None)
            gns)
