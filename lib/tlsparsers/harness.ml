type scenario = { declared : Asn1.Str_type.t; context : [ `Name | `Gn ] }

let scenarios =
  [
    { declared = Asn1.Str_type.Printable_string; context = `Name };
    { declared = Asn1.Str_type.Ia5_string; context = `Name };
    { declared = Asn1.Str_type.Bmp_string; context = `Name };
    { declared = Asn1.Str_type.Utf8_string; context = `Name };
    { declared = Asn1.Str_type.Ia5_string; context = `Gn };
  ]

let scenario_name s =
  Printf.sprintf "%s in %s" (Asn1.Str_type.name s.declared)
    (match s.context with `Name -> "Name" | `Gn -> "GN")

type cell = {
  library : string;
  inferred : (Infer.method_ * Infer.handling) option;
  verdicts : Infer.verdict list;
  crashes : (string * int) list;
      (** exception constructor -> probe count, [] when no crash *)
}

(* --- telemetry ------------------------------------------------------ *)

(* Every model decode call in the harness is routed through
   [observe_decode]: per-library accept/reject/error counters plus a
   decode latency histogram.  A model that raises is counted exactly
   once, as an error — never also as a reject — and the exception
   constructor is kept so verdicts can name the crash. *)
let obs_accept =
  lazy
    (Obs.Registry.labeled_counter ~label:"library"
       ~help:"Probe payloads the parser model decoded to some text"
       "unicert_parser_accept_total")

let obs_reject =
  lazy
    (Obs.Registry.labeled_counter ~label:"library"
       ~help:"Probe payloads the parser model rejected"
       "unicert_parser_reject_total")

let obs_error =
  lazy
    (Obs.Registry.labeled_counter ~label:"library"
       ~help:"Probe payloads on which the parser model raised"
       "unicert_parser_error_total")

let obs_latency =
  lazy
    (Obs.Registry.labeled_histogram ~label:"library"
       ~help:"Per-model decode latency" "unicert_parser_decode_seconds")

type decode_outcome = Decoded of string | Rejected | Crashed of string

(* Per-model circuit breakers live in a [Scope]: a model that keeps
   raising gets disabled for the rest of the scope's lifetime and
   reported degraded instead of crashing every remaining probe.  The
   process-wide default scope backs [decoding_matrix] and friends; a
   fuzzing campaign creates its own scope so a breaker it opens cannot
   poison a later in-process harness pass.  Each scope's find-or-create
   table is shared across domains, so it sits behind a mutex (the
   breakers themselves are atomic). *)
module Scope = struct
  type t = {
    lock : Mutex.t;
    breakers : (string, Faults.Breaker.t) Hashtbl.t;
    mutable threshold : int;
  }

  let create ?(threshold = Faults.Breaker.default_threshold) () =
    { lock = Mutex.create (); breakers = Hashtbl.create 16; threshold }

  let default = create ()

  let breaker_for t name =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.breakers name with
        | Some b -> b
        | None ->
            let b = Faults.Breaker.create ~threshold:t.threshold name in
            Hashtbl.add t.breakers name b;
            b)

  let degraded t =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold
          (fun _ b acc ->
            if Faults.Breaker.tripped b then
              (Faults.Breaker.name b, Faults.Breaker.crashes b) :: acc
            else acc)
          t.breakers [])
    |> List.sort compare

  let set_threshold t n =
    Mutex.protect t.lock (fun () ->
        t.threshold <- n;
        Hashtbl.iter (fun _ b -> Faults.Breaker.set_threshold b n) t.breakers)

  let reset t =
    Mutex.protect t.lock (fun () ->
        Hashtbl.iter (fun _ b -> Faults.Breaker.reset b) t.breakers)
end

let degraded_models () = Scope.degraded Scope.default
let set_breaker_threshold n = Scope.set_threshold Scope.default n
let reset_faults () = Scope.reset Scope.default

(* Injection campaigns address models as "model:<name>", keeping the
   target namespace disjoint from lint names. *)
let injector_target name = "model:" ^ name

let observe_decode ?(scope = Scope.default) (model : Model.t) f =
  let b = Scope.breaker_for scope model.Model.name in
  if Faults.Breaker.tripped b then Crashed "circuit_open"
  else begin
    let t0 = Unix.gettimeofday () in
    let result =
      try
        if Faults.Injector.active () then
          Faults.Injector.tick (injector_target model.Model.name);
        (* Sampled like the per-lint spans: 9 models per harness pass
           add up fast at corpus scale. *)
        Ok (Obs.Trace.sampled_span ~cat:"model" model.Model.name f)
      with e when Faults.Isolation.enabled () -> Error e
    in
    Obs.Histogram.observe
      (Obs.Histogram.Labeled.get (Lazy.force obs_latency) model.Model.name)
      (Unix.gettimeofday () -. t0);
    let bump family =
      Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force family) model.Model.name)
    in
    match result with
    | Ok (Some s) ->
        bump obs_accept;
        Faults.Breaker.success b;
        Decoded s
    | Ok None ->
        bump obs_reject;
        Faults.Breaker.success b;
        Rejected
    | Error e ->
        bump obs_error;
        Faults.Breaker.failure b;
        let exn_name = Faults.Error.exn_name e in
        Faults.Error.observe
          (Faults.Error.Model_crash
             { model = model.Model.name; exn_name; detail = Printexc.to_string e });
        Crashed exn_name
  end

let output_of_outcome = function Decoded s -> Some s | Rejected | Crashed _ -> None

(* Round each probe through a real certificate so the full encode/parse
   path is exercised, then hand the extracted raw bytes to the model —
   the moral equivalent of calling the library's parsing API on the
   test Unicert. *)
let probe_outcomes (model : Model.t) scenario =
  List.filter_map
    (fun payload ->
      match scenario.context with
      | `Name ->
          let cert =
            Testgen.make
              (Testgen.Subject_attr
                 (X509.Attr.Organization_name, scenario.declared, payload))
          in
          (match Testgen.raw_subject_attr cert X509.Attr.Organization_name with
          | Some (st, raw) ->
              Some
                ( raw,
                  observe_decode model (fun () ->
                      model.Model.decode_name_attr st raw) )
          | None -> None)
      | `Gn ->
          let cert = Testgen.make (Testgen.San_dns payload) in
          (match Testgen.raw_san_payloads cert with
          | raw :: _ ->
              Some
                ( raw,
                  observe_decode model (fun () ->
                      model.Model.decode_gn Model.San raw) )
          | [] -> None))
    Testgen.byte_battery

let crash_tally outcomes =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (_, o) ->
      match o with
      | Crashed e ->
          Hashtbl.replace tbl e (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e))
      | Decoded _ | Rejected -> ())
    outcomes;
  Hashtbl.fold (fun e n acc -> (e, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let decoding_matrix () =
  List.map
    (fun scenario ->
      let cells =
        List.map
          (fun (model : Model.t) ->
            let supported =
              match scenario.context with
              | `Name -> model.Model.supports Model.Subject_dn
              | `Gn -> model.Model.supports Model.San
            in
            if not supported then
              { library = model.Model.name; inferred = None;
                verdicts = [ Infer.Unsupported ]; crashes = [] }
            else begin
              let outcomes = probe_outcomes model scenario in
              (* Crashes are excluded from inference (§3.2: complete
                 parsing failures are analyzed separately); they count
                 once as error above and surface as a Crashing
                 verdict naming the exception constructor. *)
              let obs =
                List.filter_map
                  (fun (raw, o) ->
                    match o with
                    | Decoded s -> Some { Infer.raw; output = Some s }
                    | Rejected -> Some { Infer.raw; output = None }
                    | Crashed _ -> None)
                  outcomes
              in
              let crashes = crash_tally outcomes in
              let all_none = List.for_all (fun o -> o.Infer.output = None) obs in
              let inferred = Infer.infer obs in
              let verdicts =
                match crashes with
                | [] -> Infer.classify ~declared:scenario.declared inferred ~all_none
                | (top, _) :: _ ->
                    if obs = [] then [ Infer.Crashing top ]
                    else
                      Infer.classify ~declared:scenario.declared inferred ~all_none
                      @ [ Infer.Crashing top ]
              in
              { library = model.Model.name; inferred; verdicts; crashes }
            end)
          Models.all
      in
      (scenario, cells))
    scenarios

(* ------------------------------------------------------------------ *)
(* Table 5 upper half: illegal-character tolerance.                    *)

type tolerance = Enforced | Tolerated | Not_tested

let tolerance_symbol = function
  | Enforced -> "o"
  | Tolerated -> "(.)"
  | Not_tested -> "-"

(* A value is "tolerated" when the parser returns text containing code
   points outside the declared repertoire — U+FFFD replacements and
   ASCII escape expansions count as handling the problem. *)
let classify_tolerance declared outputs =
  let some_outputs = List.filter_map Fun.id outputs in
  if some_outputs = [] then Enforced
  else begin
    let offending text =
      let cps = Unicode.Codec.cps_of_utf8 text in
      Array.exists
        (fun cp -> cp <> 0xFFFD && not (Asn1.Str_type.allows declared cp))
        cps
    in
    if List.exists offending some_outputs then Tolerated else Enforced
  end

let illegal_payloads declared =
  match declared with
  | Asn1.Str_type.Printable_string ->
      [ "caf\xC3\xA9" (* UTF-8 e-acute *); "caf\xE9" (* Latin-1 e-acute *) ]
  | Asn1.Str_type.Ia5_string -> [ "caf\xC3\xA9"; "caf\xE9"; "hi\xFF" ]
  | Asn1.Str_type.Bmp_string ->
      [ "\xD8\x00\x00a" (* lone surrogate unit *); "\xD8\x3D\xDE\x00" (* pair *) ]
  | _ -> [ "caf\xC3\xA9" ]

let illegal_char_rows () =
  let dn_row declared label =
    ( label,
      List.map
        (fun (model : Model.t) ->
          if not (model.Model.supports Model.Subject_dn) then
            (model.Model.name, Not_tested)
          else begin
            let outputs =
              List.map
                (fun payload ->
                  let cert =
                    Testgen.make
                      (Testgen.Subject_attr
                         (X509.Attr.Organization_name, declared, payload))
                  in
                  match Testgen.raw_subject_attr cert X509.Attr.Organization_name with
                  | Some (st, raw) ->
                      output_of_outcome
                        (observe_decode model (fun () ->
                             model.Model.decode_name_attr st raw))
                  | None -> None)
                (illegal_payloads declared)
            in
            (model.Model.name, classify_tolerance declared outputs)
          end)
        Models.all )
  in
  let gn_row =
    ( "IA5String in GN",
      List.map
        (fun (model : Model.t) ->
          if not (model.Model.supports Model.San) then (model.Model.name, Not_tested)
          else begin
            let outputs =
              List.map
                (fun payload ->
                  let cert = Testgen.make (Testgen.San_dns payload) in
                  match Testgen.raw_san_payloads cert with
                  | raw :: _ ->
                      output_of_outcome
                        (observe_decode model (fun () ->
                             model.Model.decode_gn Model.San raw))
                  | [] -> None)
                (illegal_payloads Asn1.Str_type.Ia5_string)
            in
            (model.Model.name, classify_tolerance Asn1.Str_type.Ia5_string outputs)
          end)
        Models.all )
  in
  [
    dn_row Asn1.Str_type.Printable_string "PrintableString in DN";
    dn_row Asn1.Str_type.Ia5_string "IA5String in DN";
    dn_row Asn1.Str_type.Bmp_string "BMPString in DN";
    gn_row;
  ]

(* ------------------------------------------------------------------ *)
(* Table 5 lower half: escaping conformance and exploitability.        *)

type escaping_verdict = Esc_ok | Esc_violation | Esc_exploited | Esc_na

let escaping_symbol = function
  | Esc_ok -> "o"
  | Esc_violation -> "(.)"
  | Esc_exploited -> "X"
  | Esc_na -> "-"

(* Values whose escaping the DN string formats must protect. *)
let dn_probe_values =
  [ "a,b"; "a+b"; "#leading"; " leading-space"; "trailing-space "; "quo\"te";
    "back\\slash" ]

let dn_injection_values = [ "x,CN=evil.com"; "x/CN=evil.com"; "x, CN=evil.com" ]

(* Count components the way a naive string-based analyzer would: split
   on '/' for oneline output, on newlines for line-per-attribute output,
   or on unescaped ',' otherwise. *)
let naive_components rendered =
  if String.contains rendered '\n' then String.split_on_char '\n' rendered
  else if String.length rendered > 0 && rendered.[0] = '/' then
    String.split_on_char '/' rendered |> List.filter (fun s -> s <> "")
  else begin
    let out = ref [] and buf = Buffer.create 32 in
    let escaped = ref false in
    String.iter
      (fun c ->
        if !escaped then begin
          Buffer.add_char buf c;
          escaped := false
        end
        else if c = '\\' then escaped := true
        else if c = ',' then begin
          out := Buffer.contents buf :: !out;
          Buffer.clear buf
        end
        else Buffer.add_char buf c)
      rendered;
    out := Buffer.contents buf :: !out;
    List.rev !out
  end

let injection_succeeds (model : Model.t) =
  List.exists
    (fun v ->
      let cert =
        Testgen.make
          (Testgen.Subject_attr
             (X509.Attr.Organization_name, Asn1.Str_type.Utf8_string, v))
      in
      match model.Model.dn_to_string cert.X509.Certificate.tbs.X509.Certificate.subject with
      | None -> false
      | Some rendered ->
          List.exists
            (fun comp ->
              let comp = String.trim comp in
              String.length comp >= 3 && String.sub comp 0 3 = "CN="
              && String.length comp >= 10
              && String.sub comp 0 10 = "CN=evil.co")
            (naive_components rendered))
    dn_injection_values

let dn_escaping_verdict (model : Model.t) flavor =
  match model.Model.dn_to_string X509.Dn.empty with
  | None -> Esc_na
  | Some _ ->
      let claimed =
        List.mem
          (match flavor with
          | X509.Dn.Rfc1779 -> `Rfc1779
          | X509.Dn.Rfc2253 -> `Rfc2253
          | X509.Dn.Rfc4514 -> `Rfc4514)
          model.Model.escaping_claim
      in
      if not claimed then Esc_na
      else if injection_succeeds model then Esc_exploited
      else begin
        let deviates =
          List.exists
            (fun v ->
              let cert =
                Testgen.make
                  (Testgen.Subject_attr
                     (X509.Attr.Organization_name, Asn1.Str_type.Utf8_string, v))
              in
              match
                model.Model.dn_to_string
                  cert.X509.Certificate.tbs.X509.Certificate.subject
              with
              | None -> false
              | Some rendered ->
                  let reference = X509.Dn.escape_value flavor v in
                  (* The correctly escaped value must appear verbatim. *)
                  let contains hay needle =
                    let hn = String.length hay and nn = String.length needle in
                    let rec go i =
                      i + nn <= hn && (String.sub hay i nn = needle || go (i + 1))
                    in
                    nn = 0 || go 0
                  in
                  not (contains rendered reference))
            dn_probe_values
        in
        if deviates then Esc_violation else Esc_ok
      end

let gn_injection_value = "a.com, DNS:b.com"

let gn_escaping_verdict (model : Model.t) =
  let cert = Testgen.make (Testgen.San_dns gn_injection_value) in
  match
    X509.Extension.find cert.X509.Certificate.tbs.X509.Certificate.extensions
      X509.Extension.Oids.subject_alt_name
  with
  | None -> Esc_na
  | Some e -> (
      match X509.Extension.parse_general_names e.X509.Extension.value with
      | Error _ -> Esc_na
      | Ok gns -> (
          match model.Model.gns_to_string gns with
          | None -> Esc_na
          | Some rendered ->
              let components =
                String.split_on_char ',' rendered |> List.map String.trim
              in
              let forged =
                List.exists (fun c -> c = "DNS:b.com") components
              in
              if forged then Esc_exploited
              else if
                (* Any rendering that does not leave the payload verbatim
                   and unambiguous deviates from the standards' advice. *)
                not (String.equal rendered ("DNS:" ^ gn_injection_value))
              then Esc_violation
              else Esc_violation))

let escaping_rows () =
  let flavors =
    [ ("RFC2253 DN", X509.Dn.Rfc2253); ("RFC4514 DN", X509.Dn.Rfc4514);
      ("RFC1779 DN", X509.Dn.Rfc1779) ]
  in
  List.map
    (fun (label, flavor) ->
      (label, List.map (fun m -> (m.Model.name, dn_escaping_verdict m flavor)) Models.all))
    flavors
  @ [
      ( "GN escaping",
        List.map (fun m -> (m.Model.name, gn_escaping_verdict m)) Models.all );
    ]

(* ------------------------------------------------------------------ *)

let render ppf =
  let libs = List.map (fun m -> m.Model.name) Models.all in
  Format.fprintf ppf "== Table 4: decoding methods for DN and GN ==@.";
  Format.fprintf ppf "%-24s" "Scenario";
  List.iter (fun l -> Format.fprintf ppf " | %-18s" l) libs;
  Format.fprintf ppf "@.";
  List.iter
    (fun (scenario, cells) ->
      Format.fprintf ppf "%-24s" (scenario_name scenario);
      List.iter
        (fun cell ->
          let text =
            match cell.inferred with
            | None -> String.concat "," (List.map Infer.verdict_symbol cell.verdicts)
            | Some (m, h) ->
                let flags =
                  String.concat "," (List.map Infer.verdict_symbol cell.verdicts)
                in
                if h = Infer.H_none then
                  Printf.sprintf "%s %s" (Infer.method_name m) flags
                else Printf.sprintf "%s* %s" (Infer.method_name m) flags
          in
          Format.fprintf ppf " | %-18s" text)
        cells;
      Format.fprintf ppf "@.")
    (decoding_matrix ());
  Format.fprintf ppf "@.== Table 5: standard violations in parsing DN and GN ==@.";
  Format.fprintf ppf "%-24s" "Violation";
  List.iter (fun l -> Format.fprintf ppf " | %-18s" l) libs;
  Format.fprintf ppf "@.";
  List.iter
    (fun (label, cells) ->
      Format.fprintf ppf "%-24s" label;
      List.iter (fun (_, t) -> Format.fprintf ppf " | %-18s" (tolerance_symbol t)) cells;
      Format.fprintf ppf "@.")
    (illegal_char_rows ());
  List.iter
    (fun (label, cells) ->
      Format.fprintf ppf "%-24s" label;
      List.iter (fun (_, v) -> Format.fprintf ppf " | %-18s" (escaping_symbol v)) cells;
      Format.fprintf ppf "@.")
    (escaping_rows ())
