(** Virtual clock: all simulated waiting (latency, backoff, rate
    limiting) advances this clock, never the wall clock, keeping fetch
    runs fast and their time accounting deterministic. *)

type t

val create : ?at:float -> unit -> t
val now : t -> float

val advance : t -> float -> unit
(** [advance t s] moves the clock [s] seconds forward (no-op for
    [s <= 0]). *)

val advance_to : t -> float -> unit
(** Move to an absolute instant; never rewinds. *)
