(* Per-log token bucket on the virtual clock.  [acquire] blocks
   (virtually) until a token is available; [penalize] honours a
   simulated Retry-After header by pushing the earliest next grant
   forward.  All waiting advances the shared virtual clock, so rate
   limiting costs accounted time, not wall time. *)

type t = {
  clock : Clock.t;
  rate : float;              (* tokens per virtual second *)
  burst : float;             (* bucket capacity *)
  mutable tokens : float;
  mutable updated : float;   (* clock instant of the last refill *)
  mutable blocked_until : float;  (* Retry-After embargo *)
}

let create ~clock ~rate ~burst =
  {
    clock;
    rate = Float.max 1e-9 rate;
    burst = Float.max 1.0 burst;
    tokens = Float.max 1.0 burst;
    updated = Clock.now clock;
    blocked_until = 0.0;
  }

let refill t =
  let now = Clock.now t.clock in
  if now > t.updated then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.updated) *. t.rate));
    t.updated <- now
  end

(* Take one token, advancing the virtual clock as far as needed; returns
   the seconds (virtually) waited. *)
let acquire t =
  let start = Clock.now t.clock in
  if t.blocked_until > start then Clock.advance_to t.clock t.blocked_until;
  refill t;
  if t.tokens < 1.0 then begin
    let wait = (1.0 -. t.tokens) /. t.rate in
    Clock.advance t.clock wait;
    refill t
  end;
  t.tokens <- t.tokens -. 1.0;
  Clock.now t.clock -. start

let penalize t ~seconds =
  let until = Clock.now t.clock +. Float.max 0.0 seconds in
  if until > t.blocked_until then t.blocked_until <- until
