(* Virtual clock for the simulated transport.  Every latency, backoff
   sleep and rate-limiter wait advances this clock instead of the wall
   clock, so a faulty fetch run finishes in real milliseconds while the
   accounted time stays deterministic and byte-identical across reruns. *)

type t = { mutable now : float }

let create ?(at = 0.0) () = { now = at }
let now t = t.now

let advance t seconds =
  if seconds > 0.0 then t.now <- t.now +. seconds

(* Move the clock forward to an absolute instant; never rewinds. *)
let advance_to t instant = if instant > t.now then t.now <- instant
