(* Seeded transport fault model.  Every decision is a pure function of
   (seed, log, endpoint, page, attempt): retrying the same page samples
   a fresh outcome per attempt, while rerunning the whole fetch at the
   same seed replays the exact same fault schedule — the property the
   byte-identical-rerun acceptance tests lean on. *)

type kind =
  | Slow           (* 25x latency, still succeeds *)
  | Timeout        (* latency exceeds the per-attempt deadline *)
  | Reset          (* connection reset mid-transfer *)
  | Rate_limit     (* HTTP 429 with a Retry-After penalty *)
  | Server_error   (* HTTP 500/503 *)
  | Truncate       (* body cut short (checksum line lost) *)
  | Corrupt_body   (* one byte of the body flipped *)

let all_kinds = [ Slow; Timeout; Reset; Rate_limit; Server_error; Truncate; Corrupt_body ]

let kind_name = function
  | Slow -> "slow"
  | Timeout -> "timeout"
  | Reset -> "reset"
  | Rate_limit -> "rate_limit"
  | Server_error -> "server_error"
  | Truncate -> "truncate"
  | Corrupt_body -> "corrupt_body"

let kind_of_name = function
  | "slow" -> Some Slow
  | "timeout" -> Some Timeout
  | "reset" -> Some Reset
  | "rate_limit" -> Some Rate_limit
  | "server_error" -> Some Server_error
  | "truncate" -> Some Truncate
  | "corrupt_body" -> Some Corrupt_body
  | _ -> None

type plan = {
  seed : int;
  rate : float;                (* per-attempt fault probability *)
  kinds : kind list;           (* kinds drawn from, uniformly *)
  base_latency : float;        (* seconds, minimum per request *)
  latency_jitter : float;      (* seconds, uniform extra latency *)
  flap_rate : float;           (* probability a page window is in outage *)
  flap_window : int;           (* pages per flap window *)
}

let default_plan =
  {
    seed = 0;
    rate = 0.0;
    kinds = all_kinds;
    base_latency = 0.02;
    latency_jitter = 0.03;
    flap_rate = 0.0;
    flap_window = 8;
  }

type outcome = {
  latency : float;
  fault : kind option;
  retry_after : float;  (* meaningful when [fault = Some Rate_limit] *)
  frac : float;         (* body position fraction for Truncate/Corrupt_body *)
  status : int;         (* HTTP status for Server_error: 500 or 503 *)
}

(* FNV-1a over the log/endpoint names: a stable string hash (unlike
   [Hashtbl.hash]) so fault schedules survive compiler upgrades. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  (* Land in OCaml's positive int range. *)
  Int64.to_int (Int64.logand !h 0x3fffffffffffffffL)

let stream plan ~log ~endpoint ~page ~attempt =
  let key = fnv1a (log ^ "\x00" ^ endpoint) in
  Ucrypto.Prng.of_pair
    (plan.seed lxor key lxor (page * 0x9E3779B9))
    attempt

(* A flapping endpoint is down for whole page windows, but only for the
   first couple of attempts inside the window: the outage is transient,
   so a client with a sane retry budget recovers. *)
let flapping plan ~log ~page ~attempt =
  plan.flap_rate > 0.0 && attempt < 2
  &&
  let window = page / max 1 plan.flap_window in
  let g =
    Ucrypto.Prng.of_pair
      (plan.seed lxor fnv1a (log ^ "\x00flap"))
      window
  in
  Ucrypto.Prng.float g < plan.flap_rate

let sample plan ~log ~endpoint ~page ~attempt =
  let g = stream plan ~log ~endpoint ~page ~attempt in
  let latency = plan.base_latency +. (Ucrypto.Prng.float g *. plan.latency_jitter) in
  let faulted = plan.rate > 0.0 && Ucrypto.Prng.float g < plan.rate in
  let fault =
    if flapping plan ~log ~page ~attempt then Some Reset
    else if faulted && plan.kinds <> [] then Some (Ucrypto.Prng.pick_list g plan.kinds)
    else None
  in
  let retry_after = 0.2 +. (Ucrypto.Prng.float g *. 1.8) in
  let frac = Ucrypto.Prng.float g in
  let status = if Ucrypto.Prng.float g < 0.5 then 500 else 503 in
  { latency; fault; retry_after; frac; status }
