(** Token-bucket rate limiter on the virtual clock. *)

type t

val create : clock:Clock.t -> rate:float -> burst:float -> t
(** [rate] tokens per virtual second, up to [burst] banked. *)

val acquire : t -> float
(** Take one token, advancing the virtual clock until one is available
    (and past any Retry-After embargo).  Returns the virtual seconds
    waited. *)

val penalize : t -> seconds:float -> unit
(** Honour a Retry-After: no token is granted until [seconds] of virtual
    time from now have passed. *)
