(** Simulated transport.

    A handler function plays the server; the seeded {!Fault.plan}
    decides — purely per [(seed, log, endpoint, page, attempt)] — what
    the wire does to each exchange.  All latency advances the virtual
    clock, never the wall clock. *)

type request = { log : string; endpoint : string; page : int }

type response =
  | Body of string
      (** a served body — possibly truncated or bit-corrupted; clients
          must validate the trailing checksum line *)
  | Retry_later of { status : int; after : float }
      (** HTTP 429 carrying a simulated Retry-After *)
  | Error_status of int  (** HTTP 500/503 *)
  | Timed_out            (** per-attempt deadline exceeded *)
  | Reset                (** connection reset *)

type t

val create :
  ?plan:Fault.plan ->
  ?down:(string -> bool) ->
  clock:Clock.t ->
  (request -> string) ->
  t
(** [down log = true] marks a log persistently dead: every call burns
    its full deadline and resets — the breaker-abandonment path. *)

val clock : t -> Clock.t
val plan : t -> Fault.plan

val call : t -> attempt:int -> deadline:float -> request -> response
(** One attempt.  Counted in [unicert_net_calls_total]; injected faults
    in [unicert_net_faults_injected_total{kind}]. *)

val prewarm : unit -> unit
(** Force lazy telemetry handles before spawning worker domains. *)
