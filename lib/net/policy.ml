(* Retry policy: capped exponential backoff with decorrelated jitter
   (the AWS formula: sleep = min(cap, U(base, 3 * previous sleep))),
   a per-attempt deadline, and a per-request virtual-time budget. *)

type t = {
  max_attempts : int;        (* total attempts per request, >= 1 *)
  base_delay : float;        (* backoff floor, seconds *)
  max_delay : float;         (* backoff cap, seconds *)
  attempt_deadline : float;  (* per-attempt timeout, seconds *)
  request_budget : float;    (* total virtual seconds a request may burn *)
  hedge_after : float;       (* primary latency that triggers a hedge, seconds *)
}

let default =
  {
    max_attempts = 5;
    base_delay = 0.1;
    max_delay = 5.0;
    attempt_deadline = 1.0;
    request_budget = 30.0;
    hedge_after = 0.25;
  }

(* [backoff p g ~prev] draws the next sleep from [g]: uniform in
   [base_delay, max(base_delay, 3*prev)], capped at [max_delay].
   Decorrelated jitter spreads concurrent clients apart while keeping
   every draw inside [base_delay, max_delay] — the bounds test_net
   checks. *)
let backoff p g ~prev =
  let hi = Float.max p.base_delay (3.0 *. prev) in
  let d = p.base_delay +. (Ucrypto.Prng.float g *. (hi -. p.base_delay)) in
  Float.min p.max_delay d
