(* Retrying HTTP-ish client over the simulated transport: token-bucket
   admission, capped decorrelated-jitter backoff between attempts, a
   per-request virtual-time budget, Retry-After honouring, and optional
   hedging for tail pages.  The backoff stream is keyed by (transport
   seed, log, endpoint, page) so reruns replay identical schedules. *)

type fetched = {
  body : string;
  attempts : int;   (* transport calls made, hedges included *)
  hedged : bool;
  waited : float;   (* virtual seconds from admission to outcome *)
}

type error =
  | Attempts_exhausted of { attempts : int; waited : float }
  | Budget_exhausted of { attempts : int; waited : float }

let describe = function
  | Attempts_exhausted { attempts; _ } ->
      Printf.sprintf "retries exhausted after %d attempts" attempts
  | Budget_exhausted { attempts; waited } ->
      Printf.sprintf "request budget exhausted after %d attempts (%.1fs)"
        attempts waited

let obs_requests =
  lazy
    (Obs.Registry.labeled_counter ~label:"endpoint"
       ~help:"Client requests issued, by endpoint"
       "unicert_net_requests_total")

let obs_retries =
  lazy
    (Obs.Registry.counter ~help:"Client attempts beyond the first"
       "unicert_net_retries_total")

let obs_rate_limited =
  lazy
    (Obs.Registry.counter ~help:"429 responses honoured with Retry-After"
       "unicert_net_rate_limited_total")

let obs_hedges =
  lazy
    (Obs.Registry.counter ~help:"Hedged (duplicate) attempts fired for tail pages"
       "unicert_net_hedges_total")

let obs_giveups =
  lazy
    (Obs.Registry.labeled_counter ~label:"endpoint"
       ~help:"Requests abandoned after exhausting retries or budget"
       "unicert_net_giveups_total")

let obs_hedge_outcomes =
  lazy
    (Obs.Registry.labeled_counter ~label:"outcome"
       ~help:
         "Hedged tail-page races by outcome: primary_won, hedge_won or \
          both_failed"
       "unicert_hedge_requests_total")

let obs_backoff =
  lazy
    (Obs.Registry.histogram
       ~buckets:(Obs.Histogram.log_buckets ~base:0.01 ~factor:2.0 ~count:12)
       ~help:"Backoff sleeps between attempts (virtual seconds)"
       "unicert_net_backoff_seconds")

let prewarm () =
  ignore (Lazy.force obs_requests);
  ignore (Lazy.force obs_retries);
  ignore (Lazy.force obs_rate_limited);
  ignore (Lazy.force obs_hedges);
  ignore (Lazy.force obs_giveups);
  ignore (Lazy.force obs_hedge_outcomes);
  ignore (Lazy.force obs_backoff)

exception Done of (fetched, error) result

let good ~validate = function
  | Transport.Body b when validate b -> Some b
  | _ -> None

(* The hedge attempt lives in a disjoint attempt namespace (0x1000 + n)
   so it samples an independent fault outcome for the same page. *)
let hedge_attempt n = 0x1000 + n

let request ~(policy : Policy.t) ?bucket ?(hedge = false)
    ?(validate = fun _ -> true) ~transport ~log ~endpoint ~page () =
  Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_requests) endpoint);
  (* One trace slice per request on the calling domain's track, with
     the retry machinery inside it as instant events (backoff sleeps,
     Retry-After penalties, hedge races). *)
  let traced = Obs.Trace.enabled () in
  if traced then
    Obs.Trace.emit_begin ~cat:"net"
      ~args:[ ("log", Obs.Trace.Str log); ("page", Obs.Trace.Int page) ]
      endpoint;
  let clock = Transport.clock transport in
  let req = { Transport.log; endpoint; page } in
  let backoff_stream =
    Ucrypto.Prng.of_pair
      ((Transport.plan transport).Fault.seed
      lxor Fault.fnv1a (log ^ "\x00" ^ endpoint ^ "\x00backoff"))
      page
  in
  let started = Clock.now clock in
  let attempts = ref 0 in
  let hedged = ref false in
  let prev = ref policy.Policy.base_delay in
  let finish body =
    raise
      (Done
         (Ok
            {
              body;
              attempts = !attempts;
              hedged = !hedged;
              waited = Clock.now clock -. started;
            }))
  in
  try
    for attempt = 0 to policy.Policy.max_attempts - 1 do
      (match bucket with Some b -> ignore (Bucket.acquire b) | None -> ());
      incr attempts;
      if attempt > 0 then Obs.Counter.inc (Lazy.force obs_retries);
      let t0 = Clock.now clock in
      let resp =
        Transport.call transport ~attempt ~deadline:policy.Policy.attempt_deadline
          req
      in
      let resp =
        (* Hedge: on a tail page, when the primary attempt failed or ran
           past [hedge_after], fire one duplicate attempt in a disjoint
           fault namespace and take whichever succeeded.  The virtual
           model is sequential, so the hedge's latency is additive; its
           value is skipping a full backoff cycle. *)
        let slow = Clock.now clock -. t0 > policy.Policy.hedge_after in
        if hedge && attempt = 0 && (good ~validate resp = None || slow) then begin
          hedged := true;
          incr attempts;
          Obs.Counter.inc (Lazy.force obs_hedges);
          let r2 =
            Transport.call transport ~attempt:(hedge_attempt attempt)
              ~deadline:policy.Policy.attempt_deadline req
          in
          let outcome, winner =
            match (good ~validate resp, good ~validate r2) with
            | Some _, _ -> ("primary_won", resp)
            | None, Some _ -> ("hedge_won", r2)
            | None, None -> ("both_failed", resp)
          in
          Obs.Counter.inc
            (Obs.Counter.Labeled.get (Lazy.force obs_hedge_outcomes) outcome);
          if traced then
            Obs.Trace.instant ~cat:"net"
              ~args:
                [ ("outcome", Obs.Trace.Str outcome);
                  ("page", Obs.Trace.Int page) ]
              "hedge";
          winner
        end
        else resp
      in
      (match resp with
      | Transport.Body b when validate b -> finish b
      | Transport.Retry_later { after; _ } ->
          Obs.Counter.inc (Lazy.force obs_rate_limited);
          if traced then
            Obs.Trace.instant ~cat:"net"
              ~args:[ ("seconds", Obs.Trace.Float after) ]
              "retry-after";
          (match bucket with
          | Some b -> Bucket.penalize b ~seconds:after
          | None -> Clock.advance clock after)
      | Transport.Body _ (* torn page: checksum rejected *)
      | Transport.Error_status _ | Transport.Timed_out | Transport.Reset ->
          ());
      let waited = Clock.now clock -. started in
      if waited > policy.Policy.request_budget then
        raise (Done (Error (Budget_exhausted { attempts = !attempts; waited })));
      if attempt < policy.Policy.max_attempts - 1 then begin
        let d = Policy.backoff policy backoff_stream ~prev:!prev in
        prev := d;
        Obs.Histogram.observe (Lazy.force obs_backoff) d;
        if traced then
          Obs.Trace.instant ~cat:"net"
            ~args:[ ("seconds", Obs.Trace.Float d) ]
            "backoff";
        Clock.advance clock d
      end
    done;
    Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_giveups) endpoint);
    if traced then
      Obs.Trace.emit_end ~cat:"net"
        ~args:[ ("attempts", Obs.Trace.Int !attempts); ("ok", Obs.Trace.Bool false) ]
        endpoint;
    Error
      (Attempts_exhausted
         { attempts = !attempts; waited = Clock.now clock -. started })
  with Done r ->
    (match r with
    | Error _ ->
        Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_giveups) endpoint)
    | Ok _ -> ());
    if traced then
      Obs.Trace.emit_end ~cat:"net"
        ~args:
          [ ("attempts", Obs.Trace.Int !attempts);
            ("hedged", Obs.Trace.Bool !hedged);
            ("ok", Obs.Trace.Bool (Result.is_ok r)) ]
        endpoint;
    r
