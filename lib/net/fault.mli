(** Seeded transport fault model.

    Outcomes are a pure function of [(plan.seed, log, endpoint, page,
    attempt)]: each retry of a page draws a fresh outcome, while a rerun
    of the whole fetch at the same seed replays the identical fault
    schedule.  This purity is what makes faulty fetch runs byte-identical
    across reruns and [--jobs] values. *)

type kind =
  | Slow           (** 25x latency, still succeeds *)
  | Timeout        (** latency exceeds the per-attempt deadline *)
  | Reset          (** connection reset mid-transfer *)
  | Rate_limit     (** HTTP 429 with a Retry-After penalty *)
  | Server_error   (** HTTP 500/503 *)
  | Truncate       (** body cut short (checksum line lost) *)
  | Corrupt_body   (** one byte of the body flipped *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

type plan = {
  seed : int;
  rate : float;                (** per-attempt fault probability *)
  kinds : kind list;           (** kinds drawn from, uniformly *)
  base_latency : float;        (** seconds, minimum per request *)
  latency_jitter : float;      (** seconds, uniform extra latency *)
  flap_rate : float;           (** probability a page window is in outage *)
  flap_window : int;           (** pages per flap window *)
}

val default_plan : plan
(** Clean transport: [rate = 0.0], [flap_rate = 0.0], 20–50 ms latency. *)

type outcome = {
  latency : float;
  fault : kind option;
  retry_after : float;  (** meaningful when [fault = Some Rate_limit] *)
  frac : float;         (** body position fraction for Truncate/Corrupt_body *)
  status : int;         (** HTTP status for Server_error: 500 or 503 *)
}

val sample :
  plan -> log:string -> endpoint:string -> page:int -> attempt:int -> outcome
(** Pure: same arguments, same outcome.  Flapping outages affect whole
    page windows but clear after two attempts, so retries recover. *)

val fnv1a : string -> int
(** Stable (compiler-independent) string hash used to key per-log fault
    streams; exposed for the client's backoff stream derivation. *)
