(* The server side of a line/framed query protocol: a handler produces
   payload lines for one request line; the listener seals them into a
   framed body and — under a fault plan — may mangle the frame the way
   the simulated transport does.  Clients validate the seal and retry,
   so serving exercises the same end-to-end integrity discipline as
   the fetch path.  Framing is injected ([seal]) because the wire
   format lives above this library. *)

type t = {
  plan : Fault.plan option;
  seal : string list -> string;
  handler : client:string -> string -> string list;
  mutable served : int;
  mu : Mutex.t;
}

let obs_requests =
  lazy
    (Obs.Registry.counter ~help:"Query requests served by the listener"
       "unicert_listener_requests_total")

let obs_injected =
  lazy
    (Obs.Registry.labeled_counter ~label:"kind"
       ~help:"Response faults injected by the listener's seeded plan"
       "unicert_listener_faults_injected_total")

let prewarm () =
  ignore (Lazy.force obs_requests);
  ignore (Lazy.force obs_injected)

let create ?plan ~seal handler =
  { plan; seal; handler; served = 0; mu = Mutex.create () }

let served t = t.served

let flip_byte body frac =
  let n = String.length body in
  if n = 0 then body
  else begin
    let pos = min (n - 1) (int_of_float (frac *. float_of_int n)) in
    let b = Bytes.of_string body in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
    Bytes.to_string b
  end

let truncate body frac =
  let n = String.length body in
  if n <= 1 then ""
  else
    String.sub body 0 (max 1 (min (n - 1) (int_of_float (frac *. float_of_int n))))

let inject kind =
  Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_injected) kind)

let serve t ~client ~seq ?(attempt = 1) line =
  Mutex.lock t.mu;
  t.served <- t.served + 1;
  Mutex.unlock t.mu;
  Obs.Counter.inc (Lazy.force obs_requests);
  let body = t.seal (t.handler ~client line) in
  match t.plan with
  | None -> body
  | Some plan -> (
      let o = Fault.sample plan ~log:client ~endpoint:line ~page:seq ~attempt in
      (* Only byte-level mangling makes sense on an in-process pipe:
         truncation and corruption damage the frame, resets and
         timeouts drop it entirely; latency-only kinds serve intact. *)
      match o.Fault.fault with
      | Some Fault.Truncate ->
          inject "truncate";
          truncate body o.Fault.frac
      | Some Fault.Corrupt_body ->
          inject "corrupt_body";
          flip_byte body o.Fault.frac
      | Some Fault.Reset ->
          inject "reset";
          ""
      | Some Fault.Timeout ->
          inject "timeout";
          ""
      | Some (Fault.Slow | Fault.Rate_limit | Fault.Server_error) | None ->
          body)
