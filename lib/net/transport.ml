(* Simulated transport: a handler function plays the server; the fault
   plan decides, purely per (seed, log, endpoint, page, attempt), what
   the wire does to the exchange.  All latency lands on the virtual
   clock. *)

type request = { log : string; endpoint : string; page : int }

type response =
  | Body of string
  | Retry_later of { status : int; after : float }
  | Error_status of int
  | Timed_out
  | Reset

type t = {
  plan : Fault.plan;
  clock : Clock.t;
  down : string -> bool;          (* permanently dead logs *)
  handler : request -> string;
}

let create ?(plan = Fault.default_plan) ?(down = fun _ -> false) ~clock handler
    =
  { plan; clock; down; handler }

let clock t = t.clock
let plan t = t.plan

let obs_calls =
  lazy
    (Obs.Registry.counter ~help:"Simulated transport calls (attempts)"
       "unicert_net_calls_total")

let obs_injected =
  lazy
    (Obs.Registry.labeled_counter ~label:"kind"
       ~help:"Transport faults injected by the seeded fault plan"
       "unicert_net_faults_injected_total")

let prewarm () =
  ignore (Lazy.force obs_calls);
  ignore (Lazy.force obs_injected)

let inject kind =
  Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_injected) kind)

let flip_byte body frac =
  let n = String.length body in
  if n = 0 then body
  else begin
    let pos = min (n - 1) (int_of_float (frac *. float_of_int n)) in
    let b = Bytes.of_string body in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
    Bytes.to_string b
  end

let truncate body frac =
  let n = String.length body in
  if n <= 1 then ""
  else String.sub body 0 (max 1 (min (n - 1) (int_of_float (frac *. float_of_int n))))

let call t ~attempt ~deadline (req : request) =
  Obs.Counter.inc (Lazy.force obs_calls);
  if t.down req.log then begin
    (* A dead endpoint burns the whole per-attempt deadline. *)
    Clock.advance t.clock deadline;
    inject "down";
    Reset
  end
  else begin
    let o =
      Fault.sample t.plan ~log:req.log ~endpoint:req.endpoint ~page:req.page
        ~attempt
    in
    match o.Fault.fault with
    | Some Fault.Timeout ->
        Clock.advance t.clock deadline;
        inject "timeout";
        Timed_out
    | Some Fault.Slow ->
        let latency = o.Fault.latency *. 25.0 in
        inject "slow";
        if latency > deadline then begin
          Clock.advance t.clock deadline;
          Timed_out
        end
        else begin
          Clock.advance t.clock latency;
          Body (t.handler req)
        end
    | Some Fault.Reset ->
        Clock.advance t.clock (o.Fault.latency *. 0.5);
        inject "reset";
        Reset
    | Some Fault.Rate_limit ->
        Clock.advance t.clock (o.Fault.latency *. 0.5);
        inject "rate_limit";
        Retry_later { status = 429; after = o.Fault.retry_after }
    | Some Fault.Server_error ->
        Clock.advance t.clock o.Fault.latency;
        inject "server_error";
        Error_status o.Fault.status
    | Some Fault.Truncate ->
        Clock.advance t.clock o.Fault.latency;
        inject "truncate";
        Body (truncate (t.handler req) o.Fault.frac)
    | Some Fault.Corrupt_body ->
        Clock.advance t.clock o.Fault.latency;
        inject "corrupt_body";
        Body (flip_byte (t.handler req) o.Fault.frac)
    | None ->
        if o.Fault.latency > deadline then begin
          Clock.advance t.clock deadline;
          Timed_out
        end
        else begin
          Clock.advance t.clock o.Fault.latency;
          Body (t.handler req)
        end
  end
