(** Server side of a framed line protocol.

    The monitor daemon's query loop: a handler turns one request line
    into payload lines, the listener seals them into a framed body
    (the framing function is injected — the wire format lives above
    this library), and an optional {!Fault.plan} mangles responses the
    way the simulated transport mangles fetch pages.  Fault sampling
    is pure per [(client, line, seq, attempt)], so a faulty serving
    run is byte-identical across reruns and job counts; clients
    validate the seal and retry with the same [seq]. *)

type t

val create :
  ?plan:Fault.plan ->
  seal:(string list -> string) ->
  (client:string -> string -> string list) ->
  t

val serve : t -> client:string -> seq:int -> ?attempt:int -> string -> string
(** Serve one request line.  [seq] is the client's own request
    sequence number (retries of the same request keep it and bump
    [attempt]).  Returns the sealed frame — possibly truncated,
    corrupted, or dropped to [""] by the fault plan. *)

val served : t -> int
(** Requests served so far (all clients, including faulted ones). *)

val prewarm : unit -> unit
(** Force lazy telemetry handles before spawning worker domains. *)
