(** Retrying client over the simulated transport.

    One [request] is a full retry loop: token-bucket admission, the
    per-attempt transport call, Retry-After honouring, capped
    decorrelated-jitter backoff, a per-request virtual-time budget, and
    optional hedging for tail pages.  The backoff stream is keyed by
    (transport seed, log, endpoint, page), so reruns replay identical
    schedules. *)

type fetched = {
  body : string;
  attempts : int;   (** transport calls made, hedges included *)
  hedged : bool;
  waited : float;   (** virtual seconds from admission to outcome *)
}

type error =
  | Attempts_exhausted of { attempts : int; waited : float }
  | Budget_exhausted of { attempts : int; waited : float }

val describe : error -> string

val request :
  policy:Policy.t ->
  ?bucket:Bucket.t ->
  ?hedge:bool ->
  ?validate:(string -> bool) ->
  transport:Transport.t ->
  log:string ->
  endpoint:string ->
  page:int ->
  unit ->
  (fetched, error) result
(** [validate] rejects torn bodies (checksum check) — a [Body] failing
    it counts as a retryable fault.  [hedge] fires one duplicate
    attempt (disjoint fault namespace) when the primary attempt fails
    or runs past [policy.hedge_after]. *)

val prewarm : unit -> unit
(** Force lazy telemetry handles before spawning worker domains. *)
