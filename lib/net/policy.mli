(** Retry policy: capped exponential backoff with decorrelated jitter,
    per-attempt deadlines and a per-request time budget. *)

type t = {
  max_attempts : int;        (** total attempts per request, >= 1 *)
  base_delay : float;        (** backoff floor, seconds *)
  max_delay : float;         (** backoff cap, seconds *)
  attempt_deadline : float;  (** per-attempt timeout, seconds *)
  request_budget : float;    (** total virtual seconds a request may burn *)
  hedge_after : float;       (** primary latency that triggers a hedge *)
}

val default : t
(** 5 attempts, 0.1 s floor, 5 s cap, 1 s attempt deadline, 30 s budget,
    hedge past 250 ms. *)

val backoff : t -> Ucrypto.Prng.t -> prev:float -> float
(** Next sleep: uniform in [[base_delay, max(base_delay, 3*prev)]],
    capped at [max_delay] (decorrelated jitter).  Always within
    [[base_delay, max_delay]]. *)
