(** Unicert classification (paper §2.3): a certificate is a {e Unicert}
    when it carries internationalized content — characters beyond
    printable ASCII in any field, or IDNs in DNSName-related fields —
    and an {e IDNCert} when those fields contain IDNs. *)

val has_non_printable_ascii : X509.Certificate.t -> bool
(** Any subject/issuer attribute or SAN payload containing bytes beyond
    U+0020–U+007E. *)

val has_idn : X509.Certificate.t -> bool
(** An A-label (or raw non-ASCII label) in SAN dNSNames or a
    domain-shaped subject CN. *)

val is_unicert : X509.Certificate.t -> bool
val is_idncert : X509.Certificate.t -> bool

val unicode_fields : X509.Certificate.t -> (string * bool) list
(** [(field name, beyond-ASCII content present)] for the 21 fields
    Figure 4 surveys (subject and issuer attributes plus SAN/IAN/CP
    payloads). *)

val unicode_fields_of_ctx : Lint.Ctx.t -> (string * bool) list
(** {!unicode_fields} reading from a precomputed fact table instead of
    re-walking the certificate — the fused pipeline's classify stage. *)
