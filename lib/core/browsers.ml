type engine = Gecko | Webkit | Blink

type t = {
  name : string;
  version : string;
  engine : engine;
  c0_indicator : [ `Raw | `Picture | `Url_encode ];
  warning_identity : [ `San_dns | `Subject_fields | `None ];
  checks_asn1_ranges : bool;
}

let firefox =
  {
    name = "Firefox";
    version = "141.0";
    engine = Gecko;
    c0_indicator = `Raw;
    warning_identity = `San_dns;
    checks_asn1_ranges = false;
  }

let safari =
  {
    name = "Safari";
    version = "17.6";
    engine = Webkit;
    c0_indicator = `Picture;
    warning_identity = `None;
    checks_asn1_ranges = false;
  }

let chromium =
  {
    name = "Chromium-based";
    version = "139.0";
    engine = Blink;
    c0_indicator = `Url_encode;
    warning_identity = `Subject_fields;
    checks_asn1_ranges = true;
  }

let all = [ firefox; safari; chromium ]

(* Visual bidi model: an RLO (U+202E) override renders the following
   segment reversed until PDF (U+202C); both controls are invisible. *)
let apply_bidi cps =
  (* [out] accumulates display order reversed; [rtl] accumulates the
     override segment, which by construction is already the reversed
     (display) order. *)
  let out = ref [] in
  let rtl = ref [] in
  let in_override = ref false in
  let flush () =
    out := List.rev_append !rtl !out;
    rtl := []
  in
  Array.iter
    (fun cp ->
      if cp = 0x202E then in_override := true
      else if cp = 0x202C then begin
        in_override := false;
        flush ()
      end
      else if !in_override then rtl := cp :: !rtl
      else out := cp :: !out)
    cps;
  flush ();
  Array.of_list (List.rev !out)

let render_field b text =
  let cps = Unicode.Codec.cps_of_utf8 text in
  (* Layout controls other than bidi overrides vanish; bidi overrides
     reorder. *)
  let cps = apply_bidi cps in
  let visible =
    Array.to_list cps
    |> List.concat_map (fun cp ->
           if Unicode.Props.is_layout_control cp then []
           else if Unicode.Props.is_c0_control cp || Unicode.Props.is_del cp then
             match b.c0_indicator with
             | `Raw -> [ cp ]
             | `Picture -> [ (if cp = 0x7F then 0x2421 else 0x2400 + cp) ]
             | `Url_encode ->
                 let hex = Printf.sprintf "%%%02X" cp in
                 List.init 3 (fun i -> Char.code hex.[i])
           else if Unicode.Props.is_nonascii_whitespace cp then [ cp ]
           else [ cp ])
  in
  Unicode.Codec.utf8_of_cps (Array.of_list visible)

let warning_identity_string b cert =
  match b.warning_identity with
  | `None -> ""
  | `San_dns -> (
      match X509.Certificate.san_dns_names cert with
      | d :: _ -> render_field b d
      | [] -> (
          match X509.Certificate.subject_cn cert with
          | Some cn -> render_field b cn
          | None -> ""))
  | `Subject_fields -> (
      match X509.Certificate.subject_cn cert with
      | Some cn -> render_field b cn
      | None -> "")

(* Script buckets for the display policy's mixed-script detection. *)
let script_of cp =
  if cp < 0x80 then `Latin
  else if (cp >= 0xC0 && cp <= 0x24F) || (cp >= 0x1E00 && cp <= 0x1EFF) then `Latin
  else if cp >= 0x370 && cp <= 0x3FF then `Greek
  else if cp >= 0x400 && cp <= 0x52F then `Cyrillic
  else if cp >= 0x4E00 && cp <= 0x9FFF then `Han
  else if cp >= 0x3040 && cp <= 0x30FF then `Kana
  else if cp >= 0xAC00 && cp <= 0xD7AF then `Hangul
  else `Other

let mixed_script cps =
  let scripts =
    Array.to_list cps
    |> List.filter (fun cp -> Unicode.Props.is_ascii_letter cp || cp > 0x80)
    |> List.map script_of
    |> List.sort_uniq Stdlib.compare
  in
  (* Han+Kana (Japanese) and Han+Hangul (Korean) are conventional
     combinations; anything else with two scripts is suspicious. *)
  match scripts with
  | [] | [ _ ] -> false
  | [ `Han; `Kana ] | [ `Han; `Hangul ] -> false
  | _ -> true

let display_hostname b domain =
  ignore b;
  Idna.Dns.split_labels domain
  |> List.map (fun label ->
         if not (Idna.Dns.is_a_label_candidate label) then label
         else
           match Idna.label_to_unicode label with
           | Error _ -> label
           | Ok text ->
               let cps = Unicode.Codec.cps_of_utf8 text in
               if Idna.alabel_issues label <> [] || mixed_script cps then label
               else text)
  |> String.concat "."

type row = {
  browser : string;
  c0_c1_visible : bool;
  layout_visible : bool;
  homograph_feasible : bool;
  incorrect_substitution : bool;
  flawed_range_check : bool;
  warning_spoofable : bool;
}

(* The bidi-override payload of Figure 7. *)
let rlo_payload = "www.\xE2\x80\xAElapyap\xE2\x80\xAC.com"
let rlo_displayed = "www.paypal.com"

let probe b =
  let c0_c1_visible =
    let rendered = render_field b "A\x01B" in
    not (String.equal rendered "A\x01B")
  in
  let layout_visible =
    (* zero-width space must leave a visible trace to count *)
    let rendered = render_field b "sh\xE2\x80\x8Bop" in
    not (String.equal (Unicode.Escape.visible_utf8 rendered) "shop")
    && not (String.equal rendered "shop")
  in
  let homograph_feasible =
    (* a Cyrillic homograph renders indistinguishably from Latin *)
    let latin = render_field b "paypal" in
    let cyr = render_field b "p\xD0\xB0ypal" in
    Unicode.Confusables.confusable latin cyr
  in
  let incorrect_substitution =
    (* Greek question mark becomes a semicolon in rendering pipelines
       that apply canonical equivalence. *)
    match Unicode.Confusables.equivalent_substitution 0x037E with
    | Some 0x003B -> true
    | _ -> false
  in
  let warning_spoofable =
    match b.warning_identity with
    | `None -> false
    | `San_dns | `Subject_fields ->
        String.equal (render_field b rlo_payload) rlo_displayed
  in
  {
    browser = b.name;
    c0_c1_visible;
    layout_visible;
    homograph_feasible;
    incorrect_substitution;
    flawed_range_check = not b.checks_asn1_ranges;
    warning_spoofable;
  }

let table14 () = List.map probe all

type spoof = { browser : string; crafted : string; displayed : string; spoofed : bool }

let issuer_key = X509.Certificate.mock_keypair ~seed:"browser-demo-ca" ()

let warning_spoof_demo () =
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Untrusted CA") ])
      ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, rlo_payload) ])
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki issuer_key)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        [ X509.Extension.subject_alt_name [ X509.General_name.Dns_name rlo_payload ] ]
      ()
  in
  let cert = X509.Certificate.sign issuer_key tbs in
  List.map
    (fun b ->
      let displayed = warning_identity_string b cert in
      {
        browser = b.name;
        crafted = rlo_payload;
        displayed;
        spoofed = String.equal displayed rlo_displayed;
      })
    all

let render ppf =
  Format.fprintf ppf "== Table 14: certificate visualization and spoofing ==@.";
  Format.fprintf ppf "%-16s | %-8s | %-9s | %-9s | %-10s | %-10s | %-9s@." "Browser"
    "C0vis" "LayoutVis" "Homograph" "BadSubst" "RangeFlaw" "Spoofable";
  List.iter
    (fun (r : row) ->
      let b v = if v then "yes" else "no" in
      Format.fprintf ppf "%-16s | %-8s | %-9s | %-9s | %-10s | %-10s | %-9s@."
        r.browser (b r.c0_c1_visible) (b r.layout_visible) (b r.homograph_feasible)
        (b r.incorrect_substitution) (b r.flawed_range_check) (b r.warning_spoofable))
    (table14 ());
  Format.fprintf ppf "@.== Warning-page spoofing demo (Figure 7) ==@.";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-16s crafted %S -> displays %S (%s)@." s.browser s.crafted
        s.displayed
        (if s.spoofed then "SPOOFED" else "not spoofed"))
    (warning_spoof_demo ())
