let raw_of_atv (atv : X509.Dn.atv) =
  match atv.X509.Dn.value with Asn1.Value.Str (_, raw) -> Some raw | _ -> None

let beyond_printable_ascii raw =
  String.exists (fun c -> Char.code c < 0x20 || Char.code c > 0x7E) raw

let subject_issuer_raws cert =
  let tbs = cert.X509.Certificate.tbs in
  List.filter_map raw_of_atv
    (X509.Dn.all_atvs tbs.X509.Certificate.subject
    @ X509.Dn.all_atvs tbs.X509.Certificate.issuer)

let san_payloads cert =
  match
    X509.Extension.find cert.X509.Certificate.tbs.X509.Certificate.extensions
      X509.Extension.Oids.subject_alt_name
  with
  | None -> []
  | Some e -> (
      match X509.Extension.parse_general_names e.X509.Extension.value with
      | Error _ -> []
      | Ok gns ->
          List.filter_map
            (function
              | X509.General_name.Dns_name s | X509.General_name.Rfc822_name s
              | X509.General_name.Uri s ->
                  Some s
              | _ -> None)
            gns)

let has_non_printable_ascii cert =
  List.exists beyond_printable_ascii (subject_issuer_raws cert)
  || List.exists beyond_printable_ascii (san_payloads cert)

let dns_like cert =
  X509.Certificate.san_dns_names cert
  @ List.filter (fun cn -> String.contains cn '.')
      (X509.Dn.get_text cert.X509.Certificate.tbs.X509.Certificate.subject
         X509.Attr.Common_name)

let has_idn cert = List.exists Idna.is_idn (dns_like cert)
let is_idncert = has_idn
let is_unicert cert = has_non_printable_ascii cert || has_idn cert

(* The 21 fields Figure 4 surveys. *)
let subject_attrs =
  [ X509.Attr.Common_name; X509.Attr.Organization_name;
    X509.Attr.Organizational_unit_name; X509.Attr.Locality_name;
    X509.Attr.State_or_province_name; X509.Attr.Country_name;
    X509.Attr.Street_address; X509.Attr.Postal_code; X509.Attr.Serial_number;
    X509.Attr.Email_address; X509.Attr.Business_category;
    X509.Attr.Jurisdiction_locality; X509.Attr.Jurisdiction_state;
    X509.Attr.Jurisdiction_country ]

let issuer_attrs =
  [ X509.Attr.Common_name; X509.Attr.Organization_name; X509.Attr.Country_name ]

(* Field labels are fixed; building "subject.commonName" etc. per
   certificate would allocate 17 strings on every classify call. *)
let subject_fields =
  List.map (fun a -> (a, "subject." ^ X509.Attr.name a)) subject_attrs

let issuer_fields =
  List.map (fun a -> (a, "issuer." ^ X509.Attr.name a)) issuer_attrs

let unicode_fields cert =
  let tbs = cert.X509.Certificate.tbs in
  let attr_field prefix dn attr =
    let values = X509.Dn.get dn attr in
    let beyond =
      List.exists
        (fun atv ->
          match raw_of_atv atv with
          | Some raw -> beyond_printable_ascii raw
          | None -> false)
        values
    in
    (prefix ^ X509.Attr.name attr, beyond)
  in
  let san_beyond = List.exists beyond_printable_ascii (san_payloads cert) in
  let san_idn =
    List.exists (fun d -> Idna.is_idn d) (X509.Certificate.san_dns_names cert)
  in
  let cp_beyond =
    match
      X509.Extension.find tbs.X509.Certificate.extensions
        X509.Extension.Oids.certificate_policies
    with
    | None -> false
    | Some e -> beyond_printable_ascii e.X509.Extension.value
  in
  List.map (attr_field "subject." tbs.X509.Certificate.subject) subject_attrs
  @ List.map (attr_field "issuer." tbs.X509.Certificate.issuer) issuer_attrs
  @ [ ("san.dNSName", san_beyond || san_idn);
      ("san.other", san_beyond);
      ("ext.certificatePolicies", cp_beyond);
      ("ext.crlDistributionPoints", false) ]

(* Fused-path variant of {!unicode_fields}: every fact comes out of the
   precomputed table — no DN re-walk, no SAN re-parse.  Must stay
   observably identical to {!unicode_fields}; the differential test
   drives both. *)
let unicode_fields_of_ctx (ctx : Lint.Ctx.t) =
  (* One raw scan per value, then 17 membership tests — not one scan
     per (attribute, value) pair. *)
  let beyond_attrs vals =
    List.filter_map
      (fun (v : Lint.Ctx.aval) ->
        if beyond_printable_ascii v.Lint.Ctx.a_raw then Some v.Lint.Ctx.a_attr
        else None)
      vals
  in
  let subject_beyond = beyond_attrs ctx.Lint.Ctx.subject_vals in
  let issuer_beyond = beyond_attrs ctx.Lint.Ctx.issuer_vals in
  let attr_field beyond (attr, name) = (name, List.mem attr beyond) in
  let san_strs =
    match ctx.Lint.Ctx.san with
    | Some (Ok gns) ->
        List.filter_map
          (function
            | X509.General_name.Dns_name s | X509.General_name.Rfc822_name s
            | X509.General_name.Uri s ->
                Some s
            | _ -> None)
          gns
    | Some (Error _) | None -> []
  in
  let san_beyond = List.exists beyond_printable_ascii san_strs in
  let san_idn = List.exists Idna.is_idn (Lint.Ctx.san_dns ctx) in
  let cp_beyond =
    match
      X509.Extension.find
        ctx.Lint.Ctx.cert.X509.Certificate.tbs.X509.Certificate.extensions
        X509.Extension.Oids.certificate_policies
    with
    | None -> false
    | Some e -> beyond_printable_ascii e.X509.Extension.value
  in
  List.map (attr_field subject_beyond) subject_fields
  @ List.map (attr_field issuer_beyond) issuer_fields
  @ [ ("san.dNSName", san_beyond || san_idn);
      ("san.other", san_beyond);
      ("ext.certificatePolicies", cp_beyond);
      ("ext.crlDistributionPoints", false) ]
