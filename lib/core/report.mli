(** Rendering of every evaluation table and figure from a completed
    {!Pipeline} run.  Each function prints paper-shaped rows so bench
    output can be compared side by side with the publication. *)

val figure2 : Format.formatter -> Pipeline.t -> unit
(** Issuance trend per year: all / trusted / alive Unicerts and
    noncompliant Unicerts. *)

val table1 : Format.formatter -> Pipeline.t -> unit
(** Noncompliance taxonomy overview. *)

val table2 : Format.formatter -> Pipeline.t -> unit
(** Top 10 issuer organizations by noncompliant Unicerts. *)

val figure3 : Format.formatter -> Pipeline.t -> unit
(** Validity-period CDF per certificate class at selected quantiles. *)

val figure4 : Format.formatter -> Pipeline.t -> unit
(** Internationalized-content field heat map (issuers over 0.1% of the
    corpus). *)

val table11 : Format.formatter -> Pipeline.t -> unit
(** Top 25 lints by noncompliant certificates. *)

val section51 : Format.formatter -> Pipeline.t -> unit
(** Encoding-error impact scan with chain verification. *)

val ablations : Format.formatter -> Pipeline.t -> unit
(** Effective-date gating and new-lint contributions. *)

val summary : Format.formatter -> Pipeline.t -> unit
(** Headline numbers (abstract/§4 claims) vs the paper's values. *)

val robustness : Format.formatter -> Pipeline.t -> unit
(** Fault accounting: error counts by class, quarantined certificates,
    degraded lints, resume point, abort reason.  Prints {e nothing} on
    a clean run so clean-corpus reports stay byte-identical to builds
    without the fault layer. *)

val coverage : Format.formatter -> Pipeline.t -> unit
(** Per-log fetch coverage with a one-line
    ["degraded: N/M logs, X% entries"] headline (or ["complete: ..."]
    when every log delivered fully).  Prints {e nothing} for a
    generate-sourced run. *)

val all : Format.formatter -> Pipeline.t -> unit
(** Everything above in paper order. *)
