type year_stats = {
  mutable issued : int;
  mutable issued_trusted : int;
  mutable alive_in_year : int;
  mutable nc : int;
  mutable nc_trusted : int;
}

type type_stats = {
  mutable certs : int;
  mutable by_new_lints : int;
  mutable errors : int;
  mutable warnings : int;
  mutable trusted : int;
  mutable recent : int;
  mutable alive : int;
}

type issuer_stats = {
  mutable total : int;
  mutable nc_count : int;
  mutable nc_recent : int;
  trust_now : Ctlog.Dataset.trust;
  trust_at_issuance : Ctlog.Dataset.trust;
  region : string;
  aggregate : bool;
}

type validity_class = V_idn | V_other | V_noncompliant | V_normal

type fault_stats = {
  mutable fault_errors : int;       (* per-certificate failures, all classes *)
  mutable quarantined : int;
  by_class : (string, int) Hashtbl.t;
  mutable lint_crashes : int;       (* lint-crash delta during this run *)
  mutable degraded : (string * int) list;
  mutable resumed_at : int;         (* 0 = fresh run *)
  mutable checkpoints_saved : int;
  mutable aborted : string option;  (* max-errors / fail-fast reason *)
}

type t = {
  scale : int;
  seed : int;
  mutable total : int;
  mutable idncerts : int;
  mutable trusted : int;
  mutable nc_total : int;
  mutable nc_ignoring_dates : int;
  mutable nc_old_lints_only : int;
  mutable nc_trusted : int;
  mutable nc_limited : int;
  mutable nc_untrusted : int;
  mutable nc_recent : int;
  mutable nc_alive : int;
  years : (int, year_stats) Hashtbl.t;
  types : (Lint.nc_type, type_stats) Hashtbl.t;
  lints : (string, int) Hashtbl.t;
  issuers : (string, issuer_stats) Hashtbl.t;
  validity : (validity_class, int list ref) Hashtbl.t;
  fields : (string * string, int * int) Hashtbl.t;
  mutable encoding_error_certs : int;
  mutable encoding_error_verified : int;
  mutable encoding_error_subject : int;
  mutable encoding_error_san : int;
  mutable encoding_error_policies : int;
  faults : fault_stats;
  mutable coverage : Ctlog.Fetch.coverage list;
      (* per-log coverage when the corpus came from --source fetch *)
}

let fresh_year () =
  { issued = 0; issued_trusted = 0; alive_in_year = 0; nc = 0; nc_trusted = 0 }

let fresh_type () =
  { certs = 0; by_new_lints = 0; errors = 0; warnings = 0; trusted = 0; recent = 0;
    alive = 0 }

let year_tbl t y =
  match Hashtbl.find_opt t.years y with
  | Some s -> s
  | None ->
      let s = fresh_year () in
      Hashtbl.replace t.years y s;
      s

let type_tbl t ty =
  match Hashtbl.find_opt t.types ty with
  | Some s -> s
  | None ->
      let s = fresh_type () in
      Hashtbl.replace t.types ty s;
      s

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Physical encoding errors: declared type whose payload violates the
   standard byte encoding (§5.1's "ASN.1 encoding errors"). *)
let atv_encoding_error (atv : X509.Dn.atv) =
  match atv.X509.Dn.value with
  | Asn1.Value.Str (st, raw) -> Result.is_error (Asn1.Str_type.decode_value st raw)
  | _ -> false

let encoding_error_fields cert =
  let tbs = cert.X509.Certificate.tbs in
  let subject =
    List.exists atv_encoding_error (X509.Dn.all_atvs tbs.X509.Certificate.subject)
  in
  let san =
    List.exists
      (fun s -> not (Unicode.Codec.well_formed_utf8 s) && String.exists (fun c -> Char.code c > 0x7F) s)
      (X509.Certificate.san_dns_names cert)
  in
  let policies =
    match
      X509.Extension.find tbs.X509.Certificate.extensions
        X509.Extension.Oids.certificate_policies
    with
    | None -> false
    | Some e -> (
        match X509.Extension.parse_certificate_policies e.X509.Extension.value with
        | Error _ -> true
        | Ok ps ->
            List.exists
              (fun (p : X509.Extension.policy) ->
                match p.X509.Extension.notice with
                | Some { X509.Extension.explicit_text = Some (Asn1.Value.Str (st, raw)) }
                  ->
                    Result.is_error (Asn1.Str_type.decode_value st raw)
                | _ -> false)
              ps)
  in
  (subject, san, policies)

let recent_start = Asn1.Time.make 2024 1 1

let obs_nc =
  lazy
    (Obs.Registry.counter
       ~help:"Certificates the pipeline classified as noncompliant"
       "unicert_pipeline_noncompliant_total")

let process t ~index (entry : Ctlog.Dataset.entry) =
  (* Under --profile, each stage is additionally timed with a plain
     gettimeofday pair (NOT another Span: lint opens its own span
     inside {!Lint.Registry.run}, and double-counting the histogram
     would skew the exported per-stage totals).  The per-certificate
     total and its most expensive stage feed the top-K slow-cert
     log. *)
  let profiling = Obs.Profile.enabled () in
  let cert_t0 = if profiling then Unix.gettimeofday () else 0. in
  let worst_stage = ref "lint" in
  let worst_dt = ref neg_infinity in
  let timed stage f =
    if not profiling then f ()
    else begin
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt > !worst_dt then begin
        worst_dt := dt;
        worst_stage := stage
      end;
      r
    end
  in
  let cert = entry.Ctlog.Dataset.cert in
  let issuer = entry.Ctlog.Dataset.issuer in
  let issued = entry.Ctlog.Dataset.issued in
  let year = issued.Asn1.Time.year in
  let trusted = issuer.Ctlog.Dataset.trust_at_issuance = Ctlog.Dataset.Public in
  let recent = Asn1.Time.(recent_start <= issued) in
  let alive =
    Asn1.Time.(recent_start <= fst cert.X509.Certificate.tbs.X509.Certificate.not_after)
    && Asn1.Time.(fst cert.X509.Certificate.tbs.X509.Certificate.not_before
                  <= Ctlog.Dataset.analysis_date)
  in
  (* Lint the certificate once, without date gating; derive all views.
     The stage spans around lint (inside {!Lint.Registry.run}), parse
     and classify keep per-stage wall clock visible in the exported
     span histogram; everything that mutates [t] runs under the
     "aggregate" span. *)
  let findings =
    timed "lint" (fun () ->
        Lint.Registry.run ~respect_effective_dates:false ~issued cert)
    |> List.filter Lint.is_noncompliant
  in
  let dated =
    List.filter
      (fun (f : Lint.finding) -> Asn1.Time.(f.Lint.lint.Lint.effective_date <= issued))
      findings
  in
  let noncompliant = dated <> [] in
  let ufields =
    timed "classify" (fun () ->
        Obs.Span.with_ "classify" (fun () -> Classify.unicode_fields cert))
  in
  (* §5.1 encoding-error scan: re-parse the DER payloads. *)
  let enc_subject, enc_san, enc_policies =
    timed "decode" (fun () ->
        Obs.Span.with_ "parse" (fun () -> encoding_error_fields cert))
  in
  let agg_t0 = if profiling then Unix.gettimeofday () else 0. in
  Obs.Span.with_ "aggregate" @@ fun () ->
  t.total <- t.total + 1;
  if entry.Ctlog.Dataset.is_idn then t.idncerts <- t.idncerts + 1;
  if trusted then t.trusted <- t.trusted + 1;
  let ys = year_tbl t year in
  ys.issued <- ys.issued + 1;
  if trusted then ys.issued_trusted <- ys.issued_trusted + 1;
  (* Alive lines of Figure 2: certs still valid at the end of their
     issue year (cheap proxy computed per issue year). *)
  let year_end = Asn1.Time.make year 12 31 in
  if X509.Certificate.is_valid_at cert year_end then
    ys.alive_in_year <- ys.alive_in_year + 1;
  (* Issuer table *)
  let istats =
    match Hashtbl.find_opt t.issuers issuer.Ctlog.Dataset.org with
    | Some s -> s
    | None ->
        let s =
          { total = 0; nc_count = 0; nc_recent = 0;
            trust_now = issuer.Ctlog.Dataset.trust_now;
            trust_at_issuance = issuer.Ctlog.Dataset.trust_at_issuance;
            region = issuer.Ctlog.Dataset.region;
            aggregate = issuer.Ctlog.Dataset.aggregate }
        in
        Hashtbl.replace t.issuers issuer.Ctlog.Dataset.org s;
        s
  in
  istats.total <- istats.total + 1;
  if findings <> [] then t.nc_ignoring_dates <- t.nc_ignoring_dates + 1;
  if List.exists (fun (f : Lint.finding) -> not f.Lint.lint.Lint.is_new) dated then
    t.nc_old_lints_only <- t.nc_old_lints_only + 1;
  (* Figure 4 heat map: per (issuer, field) unicode usage and deviance. *)
  List.iter
    (fun (field, beyond) ->
      if beyond then begin
        let u, d = Option.value ~default:(0, 0) (Hashtbl.find_opt t.fields (issuer.Ctlog.Dataset.org, field)) in
        Hashtbl.replace t.fields (issuer.Ctlog.Dataset.org, field)
          (u + 1, if noncompliant then d + 1 else d)
      end)
    ufields;
  (* Validity distributions (Figure 3). *)
  let days = X509.Certificate.validity_days cert in
  let push cls =
    let l =
      match Hashtbl.find_opt t.validity cls with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.replace t.validity cls l;
          l
    in
    l := days :: !l
  in
  if entry.Ctlog.Dataset.is_idn then push V_idn else push V_other;
  if noncompliant then push V_noncompliant else push V_normal;
  (* §5.1 encoding-error impact accounting, with chain verification. *)
  if enc_subject || enc_san || enc_policies then begin
    t.encoding_error_certs <- t.encoding_error_certs + 1;
    if enc_subject then t.encoding_error_subject <- t.encoding_error_subject + 1;
    if enc_san then t.encoding_error_san <- t.encoding_error_san + 1;
    if enc_policies then t.encoding_error_policies <- t.encoding_error_policies + 1;
    let issuer_spki = X509.Certificate.keypair_spki issuer.Ctlog.Dataset.keypair in
    if trusted && X509.Certificate.verify ~issuer_spki cert then
      t.encoding_error_verified <- t.encoding_error_verified + 1
  end;
  if noncompliant then begin
    Obs.Counter.inc (Lazy.force obs_nc);
    t.nc_total <- t.nc_total + 1;
    (match issuer.Ctlog.Dataset.trust_at_issuance with
    | Ctlog.Dataset.Public -> t.nc_trusted <- t.nc_trusted + 1
    | Ctlog.Dataset.Limited -> t.nc_limited <- t.nc_limited + 1
    | Ctlog.Dataset.Untrusted -> t.nc_untrusted <- t.nc_untrusted + 1);
    if recent then t.nc_recent <- t.nc_recent + 1;
    if alive then t.nc_alive <- t.nc_alive + 1;
    ys.nc <- ys.nc + 1;
    if trusted then ys.nc_trusted <- ys.nc_trusted + 1;
    istats.nc_count <- istats.nc_count + 1;
    if recent then istats.nc_recent <- istats.nc_recent + 1;
    (* Per-lint histogram (one count per cert per lint). *)
    List.iter (fun (f : Lint.finding) -> bump t.lints f.Lint.lint.Lint.name) dated;
    (* Taxonomy rows of Table 1. *)
    List.iter
      (fun ty ->
        let of_type =
          List.filter (fun (f : Lint.finding) -> f.Lint.lint.Lint.nc_type = ty) dated
        in
        if of_type <> [] then begin
          let s = type_tbl t ty in
          s.certs <- s.certs + 1;
          if List.for_all (fun (f : Lint.finding) -> f.Lint.lint.Lint.is_new) of_type
          then s.by_new_lints <- s.by_new_lints + 1;
          if
            List.exists
              (fun (f : Lint.finding) -> Lint.severity f.Lint.lint = Lint.Error)
              of_type
          then s.errors <- s.errors + 1;
          if
            List.exists
              (fun (f : Lint.finding) -> Lint.severity f.Lint.lint = Lint.Warning)
              of_type
          then s.warnings <- s.warnings + 1;
          if trusted then s.trusted <- s.trusted + 1;
          if recent then s.recent <- s.recent + 1;
          if alive then s.alive <- s.alive + 1
        end)
      Lint.all_nc_types
  end;
  if profiling then begin
    let now = Unix.gettimeofday () in
    let agg_dt = now -. agg_t0 in
    if agg_dt > !worst_dt then begin
      worst_dt := agg_dt;
      worst_stage := "aggregate"
    end;
    Obs.Profile.note_slow ~index ~seconds:(now -. cert_t0) ~stage:!worst_stage
  end

let fresh ~scale ~seed =
  {
    scale;
    seed;
    total = 0;
    idncerts = 0;
    trusted = 0;
    nc_total = 0;
    nc_ignoring_dates = 0;
    nc_old_lints_only = 0;
    nc_trusted = 0;
    nc_limited = 0;
    nc_untrusted = 0;
    nc_recent = 0;
    nc_alive = 0;
    years = Hashtbl.create 16;
    types = Hashtbl.create 8;
    lints = Hashtbl.create 128;
    issuers = Hashtbl.create 64;
    validity = Hashtbl.create 4;
    fields = Hashtbl.create 256;
    encoding_error_certs = 0;
    encoding_error_verified = 0;
    encoding_error_subject = 0;
    encoding_error_san = 0;
    encoding_error_policies = 0;
    faults =
      { fault_errors = 0; quarantined = 0; by_class = Hashtbl.create 8;
        lint_crashes = 0; degraded = []; resumed_at = 0; checkpoints_saved = 0;
        aborted = None };
    coverage = [];
  }

(* --- the per-certificate error boundary ----------------------------- *)

exception Abort of string

(* Raised inside a worker domain when another shard aborted the run (or
   this one hit the global error budget); unwinds the shard loop so the
   domain can be joined. *)
exception Shard_stop

(* A fault is a point on the trace timeline, not a span: the
   certificate it belongs to never completed one. *)
let trace_fault ~index error =
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~cat:"fault"
      ~args:
        [ ("class", Obs.Trace.Str (Faults.Error.class_name error));
          ("index", Obs.Trace.Int index) ]
      "fault"

let record_fault t policy quarantine ~index ~der error =
  let f = t.faults in
  f.fault_errors <- f.fault_errors + 1;
  bump f.by_class (Faults.Error.class_name error);
  Faults.Error.observe error;
  trace_fault ~index error;
  (match quarantine with
  | Some q ->
      Faults.Quarantine.record q ~index ~error ~der;
      f.quarantined <- f.quarantined + 1
  | None -> ());
  if policy.Faults.Policy.fail_fast then
    raise (Abort (Printf.sprintf "fail-fast: %s" (Faults.Error.to_string error)));
  match policy.Faults.Policy.max_errors with
  | Some m when f.fault_errors >= m ->
      raise (Abort (Printf.sprintf "max-errors: %d errors reached the limit" m))
  | _ -> ()

(* [record] is how faults reach the aggregate: the sequential path binds
   it to {!record_fault} (raises [Abort]); each parallel shard binds a
   closure over its own part and the shared error budget (raises
   [Shard_stop]).  Both control exceptions must pass through untouched. *)
let process_entry t policy ~record index (entry : Ctlog.Dataset.entry) =
  let guarded () =
    match policy.Faults.Policy.timeout_seconds with
    | Some s ->
        Faults.Watchdog.with_timeout ~stage:"process" ~seconds:s (fun () ->
            process t ~index entry)
    | None -> process t ~index entry
  in
  match guarded () with
  | () -> ()
  | exception (Abort _ as e) -> raise e
  | exception (Shard_stop as e) -> raise e
  | exception Faults.Watchdog.Timed_out { stage; seconds } ->
      record ~index
        ~der:entry.Ctlog.Dataset.cert.X509.Certificate.der
        (Faults.Error.Timeout { stage; seconds })
  | exception e when Faults.Isolation.enabled () ->
      record ~index
        ~der:entry.Ctlog.Dataset.cert.X509.Certificate.der
        (Faults.Error.of_exn ~stage:"process" e)

let snapshot_crashes () =
  List.fold_left (fun acc (_, n, _) -> acc + n) 0 (Lint.Registry.fault_snapshot ())

let run_sequential ~scale ~seed ~policy ~mutator ~drop ~resume =
  (* Resume only continues a checkpoint for the same run parameters; a
     stale file for a different (scale, seed) starts fresh. *)
  let t, start =
    match
      if resume then
        Option.bind policy.Faults.Policy.checkpoint_file Faults.Checkpoint.load
      else None
    with
    | Some c
      when c.Faults.Checkpoint.scale = scale && c.Faults.Checkpoint.seed = seed ->
        let t : t = c.Faults.Checkpoint.state in
        t.faults.resumed_at <- c.Faults.Checkpoint.next_index;
        t.faults.aborted <- None;
        (t, c.Faults.Checkpoint.next_index)
    | _ -> (fresh ~scale ~seed, 0)
  in
  Lint.Registry.set_breaker_threshold policy.Faults.Policy.breaker_threshold;
  let crashes_before = snapshot_crashes () in
  let quarantine =
    Option.map
      (fun dir -> Faults.Quarantine.open_ ~dir ~run_seed:seed)
      policy.Faults.Policy.quarantine_dir
  in
  let save_checkpoint next_index =
    match policy.Faults.Policy.checkpoint_file with
    | Some file ->
        Faults.Checkpoint.save file
          { Faults.Checkpoint.scale; seed; next_index; state = t };
        t.faults.checkpoints_saved <- t.faults.checkpoints_saved + 1
    | None -> ()
  in
  let every = max 1 policy.Faults.Policy.checkpoint_every in
  Fun.protect
    ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
    (fun () ->
      try
        Obs.Span.with_ "pipeline" (fun () ->
            Ctlog.Dataset.iter_deliveries ~scale ~start ?mutator ~drop ~seed
              (fun index delivery ->
                (match delivery with
                | Ctlog.Dataset.Entry e ->
                    process_entry t policy
                      ~record:(record_fault t policy quarantine)
                      index e
                | Ctlog.Dataset.Corrupt { der; error; _ } ->
                    record_fault t policy quarantine ~index ~der error);
                if (index + 1) mod every = 0 then save_checkpoint (index + 1)));
        save_checkpoint scale
      with Abort reason -> t.faults.aborted <- Some reason);
  t.faults.lint_crashes <- snapshot_crashes () - crashes_before;
  t.faults.degraded <- Lint.Registry.degraded ();
  t

(* --- deterministic merge of parallel shard aggregates ---------------- *)

let bump_by tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Fold one shard's aggregate into [dst].  Every field is a sum (or a
   bag, for validity samples), so merging shards in index order yields
   exactly the totals a sequential pass accumulates.  [lint_crashes],
   [degraded], [resumed_at] and [aborted] are owned by the coordinator
   and skipped here. *)
let merge_into dst (src : t) =
  dst.total <- dst.total + src.total;
  dst.idncerts <- dst.idncerts + src.idncerts;
  dst.trusted <- dst.trusted + src.trusted;
  dst.nc_total <- dst.nc_total + src.nc_total;
  dst.nc_ignoring_dates <- dst.nc_ignoring_dates + src.nc_ignoring_dates;
  dst.nc_old_lints_only <- dst.nc_old_lints_only + src.nc_old_lints_only;
  dst.nc_trusted <- dst.nc_trusted + src.nc_trusted;
  dst.nc_limited <- dst.nc_limited + src.nc_limited;
  dst.nc_untrusted <- dst.nc_untrusted + src.nc_untrusted;
  dst.nc_recent <- dst.nc_recent + src.nc_recent;
  dst.nc_alive <- dst.nc_alive + src.nc_alive;
  Hashtbl.iter
    (fun y (s : year_stats) ->
      let d = year_tbl dst y in
      d.issued <- d.issued + s.issued;
      d.issued_trusted <- d.issued_trusted + s.issued_trusted;
      d.alive_in_year <- d.alive_in_year + s.alive_in_year;
      d.nc <- d.nc + s.nc;
      d.nc_trusted <- d.nc_trusted + s.nc_trusted)
    src.years;
  Hashtbl.iter
    (fun ty (s : type_stats) ->
      let d = type_tbl dst ty in
      d.certs <- d.certs + s.certs;
      d.by_new_lints <- d.by_new_lints + s.by_new_lints;
      d.errors <- d.errors + s.errors;
      d.warnings <- d.warnings + s.warnings;
      d.trusted <- d.trusted + s.trusted;
      d.recent <- d.recent + s.recent;
      d.alive <- d.alive + s.alive)
    src.types;
  Hashtbl.iter (fun k v -> bump_by dst.lints k v) src.lints;
  Hashtbl.iter
    (fun org (s : issuer_stats) ->
      let d =
        match Hashtbl.find_opt dst.issuers org with
        | Some d -> d
        | None ->
            let d =
              { total = 0; nc_count = 0; nc_recent = 0; trust_now = s.trust_now;
                trust_at_issuance = s.trust_at_issuance; region = s.region;
                aggregate = s.aggregate }
            in
            Hashtbl.replace dst.issuers org d;
            d
      in
      d.total <- d.total + s.total;
      d.nc_count <- d.nc_count + s.nc_count;
      d.nc_recent <- d.nc_recent + s.nc_recent)
    src.issuers;
  Hashtbl.iter
    (fun cls l ->
      match Hashtbl.find_opt dst.validity cls with
      | Some d -> d := List.rev_append !l !d
      | None -> Hashtbl.replace dst.validity cls (ref !l))
    src.validity;
  Hashtbl.iter
    (fun key (u, d) ->
      let u0, d0 = Option.value ~default:(0, 0) (Hashtbl.find_opt dst.fields key) in
      Hashtbl.replace dst.fields key (u0 + u, d0 + d))
    src.fields;
  dst.encoding_error_certs <- dst.encoding_error_certs + src.encoding_error_certs;
  dst.encoding_error_verified <- dst.encoding_error_verified + src.encoding_error_verified;
  dst.encoding_error_subject <- dst.encoding_error_subject + src.encoding_error_subject;
  dst.encoding_error_san <- dst.encoding_error_san + src.encoding_error_san;
  dst.encoding_error_policies <- dst.encoding_error_policies + src.encoding_error_policies;
  dst.faults.fault_errors <- dst.faults.fault_errors + src.faults.fault_errors;
  dst.faults.quarantined <- dst.faults.quarantined + src.faults.quarantined;
  dst.faults.checkpoints_saved <-
    dst.faults.checkpoints_saved + src.faults.checkpoints_saved;
  Hashtbl.iter (fun k v -> bump_by dst.faults.by_class k v) src.faults.by_class

(* --- the parallel (sharded) pass ------------------------------------- *)

(* [Lazy.force] is not domain-safe in OCaml 5: every lazy handle a
   worker can touch must be forced on this domain before any spawn. *)
let prewarm policy =
  Ctlog.Dataset.prewarm ();
  ignore (Lazy.force obs_nc);
  (* Also forces every lint instrument. *)
  Lint.Registry.set_breaker_threshold policy.Faults.Policy.breaker_threshold;
  Faults.Error.prewarm ();
  Faults.Breaker.prewarm ();
  Faults.Injector.prewarm ();
  Faults.Quarantine.prewarm ()

let run_parallel ~scale ~seed ~policy ~mutator ~drop ~resume ~jobs =
  prewarm policy;
  let crashes_before = snapshot_crashes () in
  let ranges = Par.shards ~jobs scale in
  let nshards = List.length ranges in
  (* fail-fast / max-errors are run-global: the first shard to hit the
     budget publishes the reason and every shard winds down at its next
     delivery.  Which certificates the other shards got to before
     noticing is timing-dependent, so an *aborted* parallel run is not
     byte-reproducible (a completed one is). *)
  let stop_flag = Atomic.make false in
  let global_errors = Atomic.make 0 in
  let abort_lock = Mutex.create () in
  let abort_reason = ref None in
  let set_abort reason =
    Mutex.protect abort_lock (fun () ->
        if !abort_reason = None then abort_reason := Some reason);
    Atomic.set stop_flag true
  in
  let run_shard ~shard ~lo ~hi =
    (* A shard cursor also re-validates its own range: after a --jobs
       change the shard boundaries move, and a stale cursor whose range
       does not match would double- or skip-process indices. *)
    let part, start =
      match
        if resume then
          Option.bind policy.Faults.Policy.checkpoint_file (fun file ->
              Faults.Checkpoint.load (Faults.Checkpoint.shard_file file shard))
        else None
      with
      | Some c
        when c.Faults.Checkpoint.scale = scale
             && c.Faults.Checkpoint.seed = seed
             && fst c.Faults.Checkpoint.state = lo
             && c.Faults.Checkpoint.next_index >= lo
             && c.Faults.Checkpoint.next_index <= hi ->
          let part : t = snd c.Faults.Checkpoint.state in
          if c.Faults.Checkpoint.next_index > lo then
            part.faults.resumed_at <- c.Faults.Checkpoint.next_index;
          (part, c.Faults.Checkpoint.next_index)
      | _ -> (fresh ~scale ~seed, lo)
    in
    let quarantine =
      Option.map
        (fun dir -> Faults.Quarantine.open_shard ~dir ~run_seed:seed ~shard)
        policy.Faults.Policy.quarantine_dir
    in
    let record ~index ~der error =
      let f = part.faults in
      f.fault_errors <- f.fault_errors + 1;
      bump f.by_class (Faults.Error.class_name error);
      Faults.Error.observe error;
      trace_fault ~index error;
      (match quarantine with
      | Some q ->
          Faults.Quarantine.record q ~index ~error ~der;
          f.quarantined <- f.quarantined + 1
      | None -> ());
      let seen = 1 + Atomic.fetch_and_add global_errors 1 in
      if policy.Faults.Policy.fail_fast then begin
        set_abort (Printf.sprintf "fail-fast: %s" (Faults.Error.to_string error));
        raise Shard_stop
      end;
      match policy.Faults.Policy.max_errors with
      | Some m when seen >= m ->
          set_abort (Printf.sprintf "max-errors: %d errors reached the limit" m);
          raise Shard_stop
      | _ -> ()
    in
    let save_checkpoint next_index =
      match policy.Faults.Policy.checkpoint_file with
      | Some file ->
          Faults.Checkpoint.save
            (Faults.Checkpoint.shard_file file shard)
            { Faults.Checkpoint.scale; seed; next_index; state = (lo, part) };
          part.faults.checkpoints_saved <- part.faults.checkpoints_saved + 1
      | None -> ()
    in
    let every = max 1 policy.Faults.Policy.checkpoint_every in
    Fun.protect
      ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
      (fun () ->
        try
          Ctlog.Dataset.iter_deliveries ~scale ~start ~stop:hi ?mutator ~drop ~seed
            (fun index delivery ->
              if Atomic.get stop_flag then raise Shard_stop;
              (match delivery with
              | Ctlog.Dataset.Entry e -> process_entry part policy ~record index e
              | Ctlog.Dataset.Corrupt { der; error; _ } -> record ~index ~der error);
              if (index + 1) mod every = 0 then save_checkpoint (index + 1));
          save_checkpoint hi
        with Shard_stop -> ());
    part
  in
  let parts =
    Obs.Span.with_ "pipeline" (fun () ->
        Par.map_shards ~jobs ~scale (fun ~shard ~lo ~hi -> run_shard ~shard ~lo ~hi))
  in
  (* Always fold shard sidecars into the main quarantine file, so an
     aborted run still keeps every record written so far. *)
  (match policy.Faults.Policy.quarantine_dir with
  | Some dir ->
      ignore (Faults.Quarantine.merge_shards ~dir ~run_seed:seed ~shards:nshards)
  | None -> ());
  let t = fresh ~scale ~seed in
  List.iter (fun part -> merge_into t part) parts;
  t.faults.resumed_at <-
    List.fold_left
      (fun acc (part : t) ->
        let r = part.faults.resumed_at in
        if r = 0 then acc else if acc = 0 then r else min acc r)
      0 parts;
  t.faults.aborted <- !abort_reason;
  t.faults.lint_crashes <- snapshot_crashes () - crashes_before;
  t.faults.degraded <- Lint.Registry.degraded ();
  t

(* --- the fetch source ------------------------------------------------- *)

(* Analysis of a fetched corpus reuses the same boundary and aggregate
   machinery as the generate source, but iterates the materialized item
   stream instead of regenerating entries: faults the transport already
   classified (undecodable bytes, integrity-flagged ranges) go straight
   through [record], everything else is linted normally. *)

let analyze_item t policy ~record item =
  match item with
  | Ctlog.Fetch.Got (index, e) -> process_entry t policy ~record index e
  | Ctlog.Fetch.Undecodable (index, der, error) -> record ~index ~der error

let analyze_sequential ~scale ~seed ~policy items =
  let t = fresh ~scale ~seed in
  let quarantine =
    Option.map
      (fun dir -> Faults.Quarantine.open_ ~dir ~run_seed:seed)
      policy.Faults.Policy.quarantine_dir
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
    (fun () ->
      try
        Obs.Span.with_ "pipeline" (fun () ->
            Array.iter
              (analyze_item t policy ~record:(record_fault t policy quarantine))
              items)
      with Abort reason -> t.faults.aborted <- Some reason);
  t

let analyze_parallel ~scale ~seed ~policy ~jobs items =
  let n = Array.length items in
  let nshards = List.length (Par.shards ~jobs n) in
  let stop_flag = Atomic.make false in
  let global_errors = Atomic.make 0 in
  let abort_lock = Mutex.create () in
  let abort_reason = ref None in
  let set_abort reason =
    Mutex.protect abort_lock (fun () ->
        if !abort_reason = None then abort_reason := Some reason);
    Atomic.set stop_flag true
  in
  let run_shard ~shard ~lo ~hi =
    let part = fresh ~scale ~seed in
    let quarantine =
      Option.map
        (fun dir -> Faults.Quarantine.open_shard ~dir ~run_seed:seed ~shard)
        policy.Faults.Policy.quarantine_dir
    in
    let record ~index ~der error =
      let f = part.faults in
      f.fault_errors <- f.fault_errors + 1;
      bump f.by_class (Faults.Error.class_name error);
      Faults.Error.observe error;
      trace_fault ~index error;
      (match quarantine with
      | Some q ->
          Faults.Quarantine.record q ~index ~error ~der;
          f.quarantined <- f.quarantined + 1
      | None -> ());
      let seen = 1 + Atomic.fetch_and_add global_errors 1 in
      if policy.Faults.Policy.fail_fast then begin
        set_abort (Printf.sprintf "fail-fast: %s" (Faults.Error.to_string error));
        raise Shard_stop
      end;
      match policy.Faults.Policy.max_errors with
      | Some m when seen >= m ->
          set_abort (Printf.sprintf "max-errors: %d errors reached the limit" m);
          raise Shard_stop
      | _ -> ()
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
      (fun () ->
        try
          for i = lo to hi - 1 do
            if Atomic.get stop_flag then raise Shard_stop;
            analyze_item part policy ~record items.(i)
          done
        with Shard_stop -> ());
    part
  in
  let parts =
    Obs.Span.with_ "pipeline" (fun () ->
        Par.map_shards ~jobs ~scale:n (fun ~shard ~lo ~hi ->
            run_shard ~shard ~lo ~hi))
  in
  (match policy.Faults.Policy.quarantine_dir with
  | Some dir ->
      ignore (Faults.Quarantine.merge_shards ~dir ~run_seed:seed ~shards:nshards)
  | None -> ());
  let t = fresh ~scale ~seed in
  List.iter (fun part -> merge_into t part) parts;
  t.faults.aborted <- !abort_reason;
  t

let run_fetch ~scale ~seed ~policy ~mutator ~drop ~resume ~jobs cfg =
  prewarm policy;
  Ctlog.Fetch.prewarm ();
  let crashes_before = snapshot_crashes () in
  (* The boundary's breaker threshold also governs the per-log fetch
     breakers, so --breaker-threshold tunes both layers. *)
  let cfg =
    { cfg with
      Ctlog.Fetch.breaker_threshold = policy.Faults.Policy.breaker_threshold }
  in
  let items, coverage =
    Obs.Span.with_ "fetch" (fun () ->
        Ctlog.Fetch.corpus ~scale ~seed ?mutator ~drop
          ?checkpoint:policy.Faults.Policy.checkpoint_file ~resume ~jobs cfg)
  in
  let items = Array.of_list items in
  let t =
    if jobs > 1 && Array.length items > 1 then
      analyze_parallel ~scale ~seed ~policy ~jobs items
    else analyze_sequential ~scale ~seed ~policy items
  in
  t.coverage <- coverage;
  t.faults.lint_crashes <- snapshot_crashes () - crashes_before;
  t.faults.degraded <- Lint.Registry.degraded ();
  t

let coverage_degraded t =
  List.exists (fun c -> not (Ctlog.Fetch.coverage_complete c)) t.coverage

type source = Generate | Fetch of Ctlog.Fetch.cfg

let run ?(scale = Ctlog.Dataset.default_scale) ?(seed = 1)
    ?(policy = Faults.Policy.default) ?mutator ?(drop = false) ?(resume = false)
    ?(jobs = 1) ?(source = Generate) () =
  match source with
  | Fetch cfg -> run_fetch ~scale ~seed ~policy ~mutator ~drop ~resume ~jobs cfg
  | Generate ->
      if jobs > 1 && scale > 1 then
        run_parallel ~scale ~seed ~policy ~mutator ~drop ~resume ~jobs
      else run_sequential ~scale ~seed ~policy ~mutator ~drop ~resume

let year_range t =
  Hashtbl.fold (fun y _ (lo, hi) -> (min lo y, max hi y)) t.years (9999, 0)

let get_year t y = year_tbl t y

let validity_cdf t cls =
  match Hashtbl.find_opt t.validity cls with
  | None -> []
  | Some l ->
      let sorted = List.sort compare !l in
      let n = List.length sorted in
      if n = 0 then []
      else begin
        let points = ref [] and seen = ref 0 in
        List.iter
          (fun d ->
            incr seen;
            points := (d, float_of_int !seen /. float_of_int n) :: !points)
          sorted;
        (* Deduplicate by keeping the last fraction per day value. *)
        let dedup =
          List.fold_left
            (fun acc (d, f) ->
              match acc with
              | (d', _) :: rest when d' = d -> (d, f) :: rest
              | _ -> (d, f) :: acc)
            [] (List.rev !points)
        in
        List.rev dedup
      end

(* Both orderings break count ties by name: Hashtbl fold order depends
   on insertion history, which differs between a sequential pass and a
   shard merge, and report output must not. *)
let top_lints t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.lints []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare b a with 0 -> String.compare ka kb | c -> c)

let top_issuers_by_nc t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.issuers []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare b.nc_count a.nc_count with
         | 0 -> String.compare ka kb
         | c -> c)
