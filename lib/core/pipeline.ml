type year_stats = {
  mutable issued : int;
  mutable issued_trusted : int;
  mutable alive_in_year : int;
  mutable nc : int;
  mutable nc_trusted : int;
}

type type_stats = {
  mutable certs : int;
  mutable by_new_lints : int;
  mutable errors : int;
  mutable warnings : int;
  mutable trusted : int;
  mutable recent : int;
  mutable alive : int;
}

type issuer_stats = {
  mutable total : int;
  mutable nc_count : int;
  mutable nc_recent : int;
  trust_now : Ctlog.Dataset.trust;
  trust_at_issuance : Ctlog.Dataset.trust;
  region : string;
  aggregate : bool;
}

type validity_class = V_idn | V_other | V_noncompliant | V_normal

type fault_stats = {
  mutable fault_errors : int;       (* per-certificate failures, all classes *)
  mutable quarantined : int;
  by_class : (string, int) Hashtbl.t;
  mutable lint_crashes : int;       (* lint-crash delta during this run *)
  mutable degraded : (string * int) list;
  mutable resumed_at : int;         (* 0 = fresh run *)
  mutable checkpoints_saved : int;
  mutable aborted : string option;  (* max-errors / fail-fast reason *)
}

type t = {
  scale : int;
  seed : int;
  mutable total : int;
  mutable idncerts : int;
  mutable trusted : int;
  mutable nc_total : int;
  mutable nc_ignoring_dates : int;
  mutable nc_old_lints_only : int;
  mutable nc_trusted : int;
  mutable nc_limited : int;
  mutable nc_untrusted : int;
  mutable nc_recent : int;
  mutable nc_alive : int;
  years : (int, year_stats) Hashtbl.t;
  types : (Lint.nc_type, type_stats) Hashtbl.t;
  lints : (string, int) Hashtbl.t;
  issuers : (string, issuer_stats) Hashtbl.t;
  validity : (validity_class, int list ref) Hashtbl.t;
  fields : (string * string, int * int) Hashtbl.t;
  mutable encoding_error_certs : int;
  mutable encoding_error_verified : int;
  mutable encoding_error_subject : int;
  mutable encoding_error_san : int;
  mutable encoding_error_policies : int;
  faults : fault_stats;
  mutable coverage : Ctlog.Fetch.coverage list;
      (* per-log coverage when the corpus came from --source fetch *)
}

let fresh_year () =
  { issued = 0; issued_trusted = 0; alive_in_year = 0; nc = 0; nc_trusted = 0 }

let fresh_type () =
  { certs = 0; by_new_lints = 0; errors = 0; warnings = 0; trusted = 0; recent = 0;
    alive = 0 }

let year_tbl t y =
  match Hashtbl.find_opt t.years y with
  | Some s -> s
  | None ->
      let s = fresh_year () in
      Hashtbl.replace t.years y s;
      s

let type_tbl t ty =
  match Hashtbl.find_opt t.types ty with
  | Some s -> s
  | None ->
      let s = fresh_type () in
      Hashtbl.replace t.types ty s;
      s

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Physical encoding errors: declared type whose payload violates the
   standard byte encoding (§5.1's "ASN.1 encoding errors"). *)
let atv_encoding_error (atv : X509.Dn.atv) =
  match atv.X509.Dn.value with
  | Asn1.Value.Str (st, raw) -> Result.is_error (Asn1.Str_type.decode_value st raw)
  | _ -> false

let encoding_error_fields cert =
  let tbs = cert.X509.Certificate.tbs in
  let subject =
    List.exists atv_encoding_error (X509.Dn.all_atvs tbs.X509.Certificate.subject)
  in
  let san =
    List.exists
      (fun s -> not (Unicode.Codec.well_formed_utf8 s) && String.exists (fun c -> Char.code c > 0x7F) s)
      (X509.Certificate.san_dns_names cert)
  in
  let policies =
    match
      X509.Extension.find tbs.X509.Certificate.extensions
        X509.Extension.Oids.certificate_policies
    with
    | None -> false
    | Some e -> (
        match X509.Extension.parse_certificate_policies e.X509.Extension.value with
        | Error _ -> true
        | Ok ps ->
            List.exists
              (fun (p : X509.Extension.policy) ->
                match p.X509.Extension.notice with
                | Some { X509.Extension.explicit_text = Some (Asn1.Value.Str (st, raw)) }
                  ->
                    Result.is_error (Asn1.Str_type.decode_value st raw)
                | _ -> false)
              ps)
  in
  (subject, san, policies)

let recent_start = Asn1.Time.make 2024 1 1

let obs_nc =
  lazy
    (Obs.Registry.counter
       ~help:"Certificates the pipeline classified as noncompliant"
       "unicert_pipeline_noncompliant_total")

(* --- analysis rows ---------------------------------------------------

   A [row] is everything the aggregate needs from one certificate,
   already extracted: the expensive stages (lint, classify, DER
   re-parse, chain verification) run once in {!row_of_entry}, and
   {!absorb_row} folds the row into [t] from either a live entry or a
   stored row replayed out of the on-disk store.  Byte-identity of the
   final report across cold/warm runs rests on rows being a complete,
   deterministic projection. *)

type row = {
  r_index : int;
  r_org : string;            (* issuer organization; record rehydrated
                                via {!Ctlog.Dataset.issuer_of_org} *)
  r_issued : Asn1.Time.t;
  r_is_idn : bool;
  r_alive : bool;            (* valid into the 2024-25 window *)
  r_valid_year_end : bool;   (* valid at Dec 31 of the issue year *)
  r_validity_days : int;
  r_ufields : string list;   (* fields using beyond-ASCII Unicode *)
  r_enc_subject : bool;
  r_enc_san : bool;
  r_enc_policies : bool;
  r_enc_verified : bool;     (* encoding-error cert that still chains *)
  r_nc : string list;        (* NC lint names ignoring effective dates,
                                registry order *)
  r_domains : string list;   (* SAN dNSNames, for the store indexes *)
  r_cns : string list;       (* subject CommonName values, for monitor
                                ingest from stored rows *)
  r_attrs : string list;     (* subject O/OU/emailAddress values *)
}

(* Subject material the monitor daemon indexes (§6.1): shared by both
   engines so rows stay byte-identical across them. *)
let subject_fields cert =
  let subject = cert.X509.Certificate.tbs.X509.Certificate.subject in
  let get a = X509.Dn.get_text subject a in
  ( get X509.Attr.Common_name,
    get X509.Attr.Organization_name
    @ get X509.Attr.Organizational_unit_name
    @ get X509.Attr.Email_address )

(* Stage timer handed to {!row_of_entry}; polymorphic so one closure
   can time stages with different result types. *)
type timer = { timed : 'a. string -> (unit -> 'a) -> 'a }

let no_timer = { timed = (fun _ f -> f ()) }

(* Fused-engine §5.1 scan: the strict per-ATV decode outcome is already
   in the fact table ([cps = None] for a string-typed ATV is exactly
   [Asn1.Str_type.decode_value] failing), and the SAN names and
   explicitText payloads were extracted by the same single parse. *)
let encoding_error_fields_of_ctx (ctx : Lint.Ctx.t) =
  let subject =
    List.exists
      (fun (info : Lint.Ctx.atv_info) ->
        match info.Lint.Ctx.atv.X509.Dn.value with
        | Asn1.Value.Str _ -> info.Lint.Ctx.cps = None
        | _ -> false)
      ctx.Lint.Ctx.subject
  in
  let san =
    List.exists
      (fun s -> not (Unicode.Codec.well_formed_utf8 s) && String.exists (fun c -> Char.code c > 0x7F) s)
      (Lint.Ctx.san_dns ctx)
  in
  let policies =
    match ctx.Lint.Ctx.policies with
    | None -> false
    | Some (Error _) -> true
    | Some (Ok _) ->
        List.exists
          (fun (st, raw) -> Result.is_error (Asn1.Str_type.decode_value st raw))
          ctx.Lint.Ctx.etexts
  in
  (subject, san, policies)

(* The retained reference engine: every stage re-derives its own facts
   from the certificate (the pre-fusion behavior).  Selected with
   UNICERT_ENGINE=reference; the differential test drives both engines
   and asserts byte-identical reports. *)
let reference_engine =
  ref (Sys.getenv_opt "UNICERT_ENGINE" = Some "reference")

let use_reference_engine b = reference_engine := b

let row_of_entry_reference ~timer (entry : Ctlog.Dataset.entry) ~index =
  let timed = timer.timed in
  let cert = entry.Ctlog.Dataset.cert in
  let issuer = entry.Ctlog.Dataset.issuer in
  let issued = entry.Ctlog.Dataset.issued in
  let trusted = issuer.Ctlog.Dataset.trust_at_issuance = Ctlog.Dataset.Public in
  let alive =
    Asn1.Time.(recent_start <= fst cert.X509.Certificate.tbs.X509.Certificate.not_after)
    && Asn1.Time.(fst cert.X509.Certificate.tbs.X509.Certificate.not_before
                  <= Ctlog.Dataset.analysis_date)
  in
  (* Lint the certificate once, without date gating; date-gated views
     are re-derived wherever the row is absorbed.  The stage spans
     around lint (inside {!Lint.Registry.run}), parse and classify keep
     per-stage wall clock visible in the exported span histogram. *)
  let nc =
    timed "lint" (fun () ->
        Lint.Registry.run ~respect_effective_dates:false ~issued cert)
    |> List.filter_map (fun (f : Lint.finding) ->
           if Lint.is_noncompliant f then Some f.Lint.lint else None)
  in
  let ufields =
    timed "classify" (fun () ->
        Obs.Span.with_ "classify" (fun () -> Classify.unicode_fields cert))
    |> List.filter_map (fun (field, beyond) -> if beyond then Some field else None)
  in
  (* §5.1 encoding-error scan: re-parse the DER payloads. *)
  let enc_subject, enc_san, enc_policies =
    timed "decode" (fun () ->
        Obs.Span.with_ "parse" (fun () -> encoding_error_fields cert))
  in
  let enc_verified =
    (enc_subject || enc_san || enc_policies)
    && trusted
    && X509.Certificate.verify
         ~issuer_spki:(X509.Certificate.keypair_spki issuer.Ctlog.Dataset.keypair)
         cert
  in
  let year_end = Asn1.Time.make issued.Asn1.Time.year 12 31 in
  let r_cns, r_attrs = subject_fields cert in
  ( {
      r_index = index;
      r_org = issuer.Ctlog.Dataset.org;
      r_issued = issued;
      r_is_idn = entry.Ctlog.Dataset.is_idn;
      r_alive = alive;
      r_valid_year_end = X509.Certificate.is_valid_at cert year_end;
      r_validity_days = X509.Certificate.validity_days cert;
      r_ufields = ufields;
      r_enc_subject = enc_subject;
      r_enc_san = enc_san;
      r_enc_policies = enc_policies;
      r_enc_verified = enc_verified;
      r_nc = List.map (fun (l : Lint.t) -> l.Lint.name) nc;
      r_domains = X509.Certificate.san_dns_names cert;
      r_cns;
      r_attrs;
    },
    nc )

(* The fused engine: one decode builds the fact table under the parse
   span, and the lint, classify and encoding-error stages are lookups
   over it.  Must produce rows byte-identical to
   {!row_of_entry_reference}. *)
let row_of_entry_fused ~timer (entry : Ctlog.Dataset.entry) ~index =
  let timed = timer.timed in
  let cert = entry.Ctlog.Dataset.cert in
  let issuer = entry.Ctlog.Dataset.issuer in
  let issued = entry.Ctlog.Dataset.issued in
  let trusted = issuer.Ctlog.Dataset.trust_at_issuance = Ctlog.Dataset.Public in
  let alive =
    Asn1.Time.(recent_start <= fst cert.X509.Certificate.tbs.X509.Certificate.not_after)
    && Asn1.Time.(fst cert.X509.Certificate.tbs.X509.Certificate.not_before
                  <= Ctlog.Dataset.analysis_date)
  in
  let ctx, (enc_subject, enc_san, enc_policies) =
    timed "decode" (fun () ->
        Obs.Span.with_ "parse" (fun () ->
            let ctx = Lint.Ctx.of_cert cert in
            (ctx, encoding_error_fields_of_ctx ctx)))
  in
  let nc =
    timed "lint" (fun () ->
        Lint.Registry.run_ctx ~respect_effective_dates:false ~issued ctx)
    |> List.filter_map (fun (f : Lint.finding) ->
           if Lint.is_noncompliant f then Some f.Lint.lint else None)
  in
  let ufields =
    timed "classify" (fun () ->
        Obs.Span.with_ "classify" (fun () ->
            Classify.unicode_fields_of_ctx ctx))
    |> List.filter_map (fun (field, beyond) -> if beyond then Some field else None)
  in
  let enc_verified =
    (enc_subject || enc_san || enc_policies)
    && trusted
    && X509.Certificate.verify
         ~issuer_spki:(X509.Certificate.keypair_spki issuer.Ctlog.Dataset.keypair)
         cert
  in
  let year_end = Asn1.Time.make issued.Asn1.Time.year 12 31 in
  let r_cns, r_attrs = subject_fields cert in
  ( {
      r_index = index;
      r_org = issuer.Ctlog.Dataset.org;
      r_issued = issued;
      r_is_idn = entry.Ctlog.Dataset.is_idn;
      r_alive = alive;
      r_valid_year_end = X509.Certificate.is_valid_at cert year_end;
      r_validity_days = X509.Certificate.validity_days cert;
      r_ufields = ufields;
      r_enc_subject = enc_subject;
      r_enc_san = enc_san;
      r_enc_policies = enc_policies;
      r_enc_verified = enc_verified;
      r_nc = List.map (fun (l : Lint.t) -> l.Lint.name) nc;
      r_domains = Lint.Ctx.san_dns ctx;
      r_cns;
      r_attrs;
    },
    nc )

let row_of_entry ~timer entry ~index =
  if !reference_engine then row_of_entry_reference ~timer entry ~index
  else row_of_entry_fused ~timer entry ~index

(* The ingest surface: the monitor daemon analyzes entries one at a
   time through the very same engine. *)
let analyze_entry entry ~index = fst (row_of_entry ~timer:no_timer entry ~index)
let row_index r = r.r_index
let row_org r = r.r_org
let row_nc r = r.r_nc
let row_domains r = r.r_domains
let row_cns r = r.r_cns
let row_attrs r = r.r_attrs

(* Fold one row into the aggregate.  [nc] is the row's NC lint records
   (ignoring dates); callers replaying stored rows rehydrate it with
   {!Lint.Registry.find}, which silently drops lints that no longer
   exist in the registry. *)
let absorb_row t ~issuer row (nc : Lint.t list) =
  let issued = row.r_issued in
  let year = issued.Asn1.Time.year in
  let trusted = issuer.Ctlog.Dataset.trust_at_issuance = Ctlog.Dataset.Public in
  let recent = Asn1.Time.(recent_start <= issued) in
  let alive = row.r_alive in
  let dated =
    List.filter (fun (l : Lint.t) -> Asn1.Time.(l.Lint.effective_date <= issued)) nc
  in
  let noncompliant = dated <> [] in
  t.total <- t.total + 1;
  if row.r_is_idn then t.idncerts <- t.idncerts + 1;
  if trusted then t.trusted <- t.trusted + 1;
  let ys = year_tbl t year in
  ys.issued <- ys.issued + 1;
  if trusted then ys.issued_trusted <- ys.issued_trusted + 1;
  (* Alive lines of Figure 2: certs still valid at the end of their
     issue year (cheap proxy computed per issue year). *)
  if row.r_valid_year_end then ys.alive_in_year <- ys.alive_in_year + 1;
  (* Issuer table *)
  let istats =
    match Hashtbl.find_opt t.issuers issuer.Ctlog.Dataset.org with
    | Some s -> s
    | None ->
        let s =
          { total = 0; nc_count = 0; nc_recent = 0;
            trust_now = issuer.Ctlog.Dataset.trust_now;
            trust_at_issuance = issuer.Ctlog.Dataset.trust_at_issuance;
            region = issuer.Ctlog.Dataset.region;
            aggregate = issuer.Ctlog.Dataset.aggregate }
        in
        Hashtbl.replace t.issuers issuer.Ctlog.Dataset.org s;
        s
  in
  istats.total <- istats.total + 1;
  if nc <> [] then t.nc_ignoring_dates <- t.nc_ignoring_dates + 1;
  if List.exists (fun (l : Lint.t) -> not l.Lint.is_new) dated then
    t.nc_old_lints_only <- t.nc_old_lints_only + 1;
  (* Figure 4 heat map: per (issuer, field) unicode usage and deviance. *)
  List.iter
    (fun field ->
      let u, d = Option.value ~default:(0, 0) (Hashtbl.find_opt t.fields (row.r_org, field)) in
      Hashtbl.replace t.fields (row.r_org, field)
        (u + 1, if noncompliant then d + 1 else d))
    row.r_ufields;
  (* Validity distributions (Figure 3). *)
  let days = row.r_validity_days in
  let push cls =
    let l =
      match Hashtbl.find_opt t.validity cls with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.replace t.validity cls l;
          l
    in
    l := days :: !l
  in
  if row.r_is_idn then push V_idn else push V_other;
  if noncompliant then push V_noncompliant else push V_normal;
  (* §5.1 encoding-error impact accounting, with chain verification. *)
  if row.r_enc_subject || row.r_enc_san || row.r_enc_policies then begin
    t.encoding_error_certs <- t.encoding_error_certs + 1;
    if row.r_enc_subject then t.encoding_error_subject <- t.encoding_error_subject + 1;
    if row.r_enc_san then t.encoding_error_san <- t.encoding_error_san + 1;
    if row.r_enc_policies then t.encoding_error_policies <- t.encoding_error_policies + 1;
    if row.r_enc_verified then
      t.encoding_error_verified <- t.encoding_error_verified + 1
  end;
  if noncompliant then begin
    Obs.Counter.inc (Lazy.force obs_nc);
    t.nc_total <- t.nc_total + 1;
    (match issuer.Ctlog.Dataset.trust_at_issuance with
    | Ctlog.Dataset.Public -> t.nc_trusted <- t.nc_trusted + 1
    | Ctlog.Dataset.Limited -> t.nc_limited <- t.nc_limited + 1
    | Ctlog.Dataset.Untrusted -> t.nc_untrusted <- t.nc_untrusted + 1);
    if recent then t.nc_recent <- t.nc_recent + 1;
    if alive then t.nc_alive <- t.nc_alive + 1;
    ys.nc <- ys.nc + 1;
    if trusted then ys.nc_trusted <- ys.nc_trusted + 1;
    istats.nc_count <- istats.nc_count + 1;
    if recent then istats.nc_recent <- istats.nc_recent + 1;
    (* Per-lint histogram (one count per cert per lint). *)
    List.iter (fun (l : Lint.t) -> bump t.lints l.Lint.name) dated;
    (* Taxonomy rows of Table 1. *)
    List.iter
      (fun ty ->
        let of_type =
          List.filter (fun (l : Lint.t) -> l.Lint.nc_type = ty) dated
        in
        if of_type <> [] then begin
          let s = type_tbl t ty in
          s.certs <- s.certs + 1;
          if List.for_all (fun (l : Lint.t) -> l.Lint.is_new) of_type
          then s.by_new_lints <- s.by_new_lints + 1;
          if
            List.exists (fun (l : Lint.t) -> Lint.severity l = Lint.Error) of_type
          then s.errors <- s.errors + 1;
          if
            List.exists (fun (l : Lint.t) -> Lint.severity l = Lint.Warning) of_type
          then s.warnings <- s.warnings + 1;
          if trusted then s.trusted <- s.trusted + 1;
          if recent then s.recent <- s.recent + 1;
          if alive then s.alive <- s.alive + 1
        end)
      Lint.all_nc_types
  end

(* Under --profile, each stage is additionally timed with a plain
   gettimeofday pair (NOT another Span: lint opens its own span inside
   {!Lint.Registry.run}, and double-counting the histogram would skew
   the exported per-stage totals).  The per-certificate total and its
   most expensive stage feed the top-K slow-cert log. *)
let with_profiling ~index f =
  let profiling = Obs.Profile.enabled () in
  let cert_t0 = if profiling then Unix.gettimeofday () else 0. in
  let worst_stage = ref "lint" in
  let worst_dt = ref neg_infinity in
  let timer =
    if not profiling then no_timer
    else
      { timed =
          (fun stage g ->
            let t0 = Unix.gettimeofday () in
            let r = g () in
            let dt = Unix.gettimeofday () -. t0 in
            if dt > !worst_dt then begin
              worst_dt := dt;
              worst_stage := stage
            end;
            r) }
  in
  let note_aggregate g =
    let agg_t0 = if profiling then Unix.gettimeofday () else 0. in
    let r = Obs.Span.with_ "aggregate" g in
    if profiling then begin
      let now = Unix.gettimeofday () in
      let agg_dt = now -. agg_t0 in
      if agg_dt > !worst_dt then begin
        worst_dt := agg_dt;
        worst_stage := "aggregate"
      end;
      Obs.Profile.note_slow ~index ~seconds:(now -. cert_t0) ~stage:!worst_stage
    end;
    r
  in
  f ~timer ~note_aggregate

let process t ~index (entry : Ctlog.Dataset.entry) =
  with_profiling ~index (fun ~timer ~note_aggregate ->
      let row, nc = row_of_entry ~timer entry ~index in
      note_aggregate (fun () ->
          absorb_row t ~issuer:entry.Ctlog.Dataset.issuer row nc))

let fresh ~scale ~seed =
  {
    scale;
    seed;
    total = 0;
    idncerts = 0;
    trusted = 0;
    nc_total = 0;
    nc_ignoring_dates = 0;
    nc_old_lints_only = 0;
    nc_trusted = 0;
    nc_limited = 0;
    nc_untrusted = 0;
    nc_recent = 0;
    nc_alive = 0;
    years = Hashtbl.create 16;
    types = Hashtbl.create 8;
    lints = Hashtbl.create 128;
    issuers = Hashtbl.create 64;
    validity = Hashtbl.create 4;
    fields = Hashtbl.create 256;
    encoding_error_certs = 0;
    encoding_error_verified = 0;
    encoding_error_subject = 0;
    encoding_error_san = 0;
    encoding_error_policies = 0;
    faults =
      { fault_errors = 0; quarantined = 0; by_class = Hashtbl.create 8;
        lint_crashes = 0; degraded = []; resumed_at = 0; checkpoints_saved = 0;
        aborted = None };
    coverage = [];
  }

(* --- the per-certificate error boundary ----------------------------- *)

exception Abort of string

(* Raised inside a worker domain when another shard aborted the run (or
   this one hit the global error budget); unwinds the shard loop so the
   domain can be joined. *)
exception Shard_stop

(* A fault is a point on the trace timeline, not a span: the
   certificate it belongs to never completed one. *)
let trace_fault ~index error =
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~cat:"fault"
      ~args:
        [ ("class", Obs.Trace.Str (Faults.Error.class_name error));
          ("index", Obs.Trace.Int index) ]
      "fault"

let record_fault t policy quarantine ~index ~der error =
  let f = t.faults in
  f.fault_errors <- f.fault_errors + 1;
  bump f.by_class (Faults.Error.class_name error);
  Faults.Error.observe error;
  trace_fault ~index error;
  (match quarantine with
  | Some q ->
      Faults.Quarantine.record q ~index ~error ~der;
      f.quarantined <- f.quarantined + 1
  | None -> ());
  if policy.Faults.Policy.fail_fast then
    raise (Abort (Printf.sprintf "fail-fast: %s" (Faults.Error.to_string error)));
  match policy.Faults.Policy.max_errors with
  | Some m when f.fault_errors >= m ->
      raise (Abort (Printf.sprintf "max-errors: %d errors reached the limit" m))
  | _ -> ()

(* [record] is how faults reach the aggregate: the sequential path binds
   it to {!record_fault} (raises [Abort]); each parallel shard binds a
   closure over its own part and the shared error budget (raises
   [Shard_stop]).  Both control exceptions must pass through untouched. *)
let process_entry t policy ~record index (entry : Ctlog.Dataset.entry) =
  let guarded () =
    match policy.Faults.Policy.timeout_seconds with
    | Some s ->
        Faults.Watchdog.with_timeout ~stage:"process" ~seconds:s (fun () ->
            process t ~index entry)
    | None -> process t ~index entry
  in
  match guarded () with
  | () -> ()
  | exception (Abort _ as e) -> raise e
  | exception (Shard_stop as e) -> raise e
  | exception Faults.Watchdog.Timed_out { stage; seconds } ->
      record ~index
        ~der:entry.Ctlog.Dataset.cert.X509.Certificate.der
        (Faults.Error.Timeout { stage; seconds })
  | exception e when Faults.Isolation.enabled () ->
      record ~index
        ~der:entry.Ctlog.Dataset.cert.X509.Certificate.der
        (Faults.Error.of_exn ~stage:"process" e)

let snapshot_crashes () =
  List.fold_left (fun acc (_, n, _) -> acc + n) 0 (Lint.Registry.fault_snapshot ())

let run_sequential ~scale ~seed ~policy ~mutator ~drop ~resume =
  (* Resume only continues a checkpoint for the same run parameters; a
     stale file for a different (scale, seed) starts fresh. *)
  let t, start =
    match
      if resume then
        Option.bind policy.Faults.Policy.checkpoint_file Faults.Checkpoint.load
      else None
    with
    | Some c
      when c.Faults.Checkpoint.scale = scale && c.Faults.Checkpoint.seed = seed ->
        let t : t = c.Faults.Checkpoint.state in
        t.faults.resumed_at <- c.Faults.Checkpoint.next_index;
        t.faults.aborted <- None;
        (t, c.Faults.Checkpoint.next_index)
    | _ -> (fresh ~scale ~seed, 0)
  in
  Lint.Registry.set_breaker_threshold policy.Faults.Policy.breaker_threshold;
  let crashes_before = snapshot_crashes () in
  let quarantine =
    Option.map
      (fun dir -> Faults.Quarantine.open_ ~dir ~run_seed:seed)
      policy.Faults.Policy.quarantine_dir
  in
  let save_checkpoint next_index =
    match policy.Faults.Policy.checkpoint_file with
    | Some file ->
        Faults.Checkpoint.save file
          { Faults.Checkpoint.scale; seed; next_index; state = t };
        t.faults.checkpoints_saved <- t.faults.checkpoints_saved + 1
    | None -> ()
  in
  let every = max 1 policy.Faults.Policy.checkpoint_every in
  Fun.protect
    ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
    (fun () ->
      try
        Obs.Span.with_ "pipeline" (fun () ->
            Ctlog.Dataset.iter_deliveries ~scale ~start ?mutator ~drop ~seed
              (fun index delivery ->
                (match delivery with
                | Ctlog.Dataset.Entry e ->
                    process_entry t policy
                      ~record:(record_fault t policy quarantine)
                      index e
                | Ctlog.Dataset.Corrupt { der; error; _ } ->
                    record_fault t policy quarantine ~index ~der error);
                if (index + 1) mod every = 0 then save_checkpoint (index + 1)));
        save_checkpoint scale
      with Abort reason -> t.faults.aborted <- Some reason);
  t.faults.lint_crashes <- snapshot_crashes () - crashes_before;
  t.faults.degraded <- Lint.Registry.degraded ();
  t

(* --- deterministic merge of parallel shard aggregates ---------------- *)

let bump_by tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Fold one shard's aggregate into [dst].  Every field is a sum (or a
   bag, for validity samples), so merging shards in index order yields
   exactly the totals a sequential pass accumulates.  [lint_crashes],
   [degraded], [resumed_at] and [aborted] are owned by the coordinator
   and skipped here. *)
let merge_into dst (src : t) =
  dst.total <- dst.total + src.total;
  dst.idncerts <- dst.idncerts + src.idncerts;
  dst.trusted <- dst.trusted + src.trusted;
  dst.nc_total <- dst.nc_total + src.nc_total;
  dst.nc_ignoring_dates <- dst.nc_ignoring_dates + src.nc_ignoring_dates;
  dst.nc_old_lints_only <- dst.nc_old_lints_only + src.nc_old_lints_only;
  dst.nc_trusted <- dst.nc_trusted + src.nc_trusted;
  dst.nc_limited <- dst.nc_limited + src.nc_limited;
  dst.nc_untrusted <- dst.nc_untrusted + src.nc_untrusted;
  dst.nc_recent <- dst.nc_recent + src.nc_recent;
  dst.nc_alive <- dst.nc_alive + src.nc_alive;
  Hashtbl.iter
    (fun y (s : year_stats) ->
      let d = year_tbl dst y in
      d.issued <- d.issued + s.issued;
      d.issued_trusted <- d.issued_trusted + s.issued_trusted;
      d.alive_in_year <- d.alive_in_year + s.alive_in_year;
      d.nc <- d.nc + s.nc;
      d.nc_trusted <- d.nc_trusted + s.nc_trusted)
    src.years;
  Hashtbl.iter
    (fun ty (s : type_stats) ->
      let d = type_tbl dst ty in
      d.certs <- d.certs + s.certs;
      d.by_new_lints <- d.by_new_lints + s.by_new_lints;
      d.errors <- d.errors + s.errors;
      d.warnings <- d.warnings + s.warnings;
      d.trusted <- d.trusted + s.trusted;
      d.recent <- d.recent + s.recent;
      d.alive <- d.alive + s.alive)
    src.types;
  Hashtbl.iter (fun k v -> bump_by dst.lints k v) src.lints;
  Hashtbl.iter
    (fun org (s : issuer_stats) ->
      let d =
        match Hashtbl.find_opt dst.issuers org with
        | Some d -> d
        | None ->
            let d =
              { total = 0; nc_count = 0; nc_recent = 0; trust_now = s.trust_now;
                trust_at_issuance = s.trust_at_issuance; region = s.region;
                aggregate = s.aggregate }
            in
            Hashtbl.replace dst.issuers org d;
            d
      in
      d.total <- d.total + s.total;
      d.nc_count <- d.nc_count + s.nc_count;
      d.nc_recent <- d.nc_recent + s.nc_recent)
    src.issuers;
  Hashtbl.iter
    (fun cls l ->
      match Hashtbl.find_opt dst.validity cls with
      | Some d -> d := List.rev_append !l !d
      | None -> Hashtbl.replace dst.validity cls (ref !l))
    src.validity;
  Hashtbl.iter
    (fun key (u, d) ->
      let u0, d0 = Option.value ~default:(0, 0) (Hashtbl.find_opt dst.fields key) in
      Hashtbl.replace dst.fields key (u0 + u, d0 + d))
    src.fields;
  dst.encoding_error_certs <- dst.encoding_error_certs + src.encoding_error_certs;
  dst.encoding_error_verified <- dst.encoding_error_verified + src.encoding_error_verified;
  dst.encoding_error_subject <- dst.encoding_error_subject + src.encoding_error_subject;
  dst.encoding_error_san <- dst.encoding_error_san + src.encoding_error_san;
  dst.encoding_error_policies <- dst.encoding_error_policies + src.encoding_error_policies;
  dst.faults.fault_errors <- dst.faults.fault_errors + src.faults.fault_errors;
  dst.faults.quarantined <- dst.faults.quarantined + src.faults.quarantined;
  dst.faults.checkpoints_saved <-
    dst.faults.checkpoints_saved + src.faults.checkpoints_saved;
  Hashtbl.iter (fun k v -> bump_by dst.faults.by_class k v) src.faults.by_class

(* --- the parallel (sharded) pass ------------------------------------- *)

(* [Lazy.force] is not domain-safe in OCaml 5: every lazy handle a
   worker can touch must be forced on this domain before any spawn. *)
let prewarm policy =
  Ctlog.Dataset.prewarm ();
  ignore (Lazy.force obs_nc);
  (* Also forces every lint instrument. *)
  Lint.Registry.set_breaker_threshold policy.Faults.Policy.breaker_threshold;
  Faults.Error.prewarm ();
  Faults.Breaker.prewarm ();
  Faults.Injector.prewarm ();
  Faults.Quarantine.prewarm ()

let run_parallel ~scale ~seed ~policy ~mutator ~drop ~resume ~jobs =
  prewarm policy;
  let crashes_before = snapshot_crashes () in
  let ranges = Par.shards ~jobs scale in
  let nshards = List.length ranges in
  (* fail-fast / max-errors are run-global: the first shard to hit the
     budget publishes the reason and every shard winds down at its next
     delivery.  Which certificates the other shards got to before
     noticing is timing-dependent, so an *aborted* parallel run is not
     byte-reproducible (a completed one is). *)
  let stop_flag = Atomic.make false in
  let global_errors = Atomic.make 0 in
  let abort_lock = Mutex.create () in
  let abort_reason = ref None in
  let set_abort reason =
    Mutex.protect abort_lock (fun () ->
        if !abort_reason = None then abort_reason := Some reason);
    Atomic.set stop_flag true
  in
  let run_shard ~shard ~lo ~hi =
    (* A shard cursor also re-validates its own range: after a --jobs
       change the shard boundaries move, and a stale cursor whose range
       does not match would double- or skip-process indices. *)
    let part, start =
      match
        if resume then
          Option.bind policy.Faults.Policy.checkpoint_file (fun file ->
              Faults.Checkpoint.load (Faults.Checkpoint.shard_file file shard))
        else None
      with
      | Some c
        when c.Faults.Checkpoint.scale = scale
             && c.Faults.Checkpoint.seed = seed
             && fst c.Faults.Checkpoint.state = lo
             && c.Faults.Checkpoint.next_index >= lo
             && c.Faults.Checkpoint.next_index <= hi ->
          let part : t = snd c.Faults.Checkpoint.state in
          if c.Faults.Checkpoint.next_index > lo then
            part.faults.resumed_at <- c.Faults.Checkpoint.next_index;
          (part, c.Faults.Checkpoint.next_index)
      | _ -> (fresh ~scale ~seed, lo)
    in
    let quarantine =
      Option.map
        (fun dir -> Faults.Quarantine.open_shard ~dir ~run_seed:seed ~shard)
        policy.Faults.Policy.quarantine_dir
    in
    let record ~index ~der error =
      let f = part.faults in
      f.fault_errors <- f.fault_errors + 1;
      bump f.by_class (Faults.Error.class_name error);
      Faults.Error.observe error;
      trace_fault ~index error;
      (match quarantine with
      | Some q ->
          Faults.Quarantine.record q ~index ~error ~der;
          f.quarantined <- f.quarantined + 1
      | None -> ());
      let seen = 1 + Atomic.fetch_and_add global_errors 1 in
      if policy.Faults.Policy.fail_fast then begin
        set_abort (Printf.sprintf "fail-fast: %s" (Faults.Error.to_string error));
        raise Shard_stop
      end;
      match policy.Faults.Policy.max_errors with
      | Some m when seen >= m ->
          set_abort (Printf.sprintf "max-errors: %d errors reached the limit" m);
          raise Shard_stop
      | _ -> ()
    in
    let save_checkpoint next_index =
      match policy.Faults.Policy.checkpoint_file with
      | Some file ->
          Faults.Checkpoint.save
            (Faults.Checkpoint.shard_file file shard)
            { Faults.Checkpoint.scale; seed; next_index; state = (lo, part) };
          part.faults.checkpoints_saved <- part.faults.checkpoints_saved + 1
      | None -> ()
    in
    let every = max 1 policy.Faults.Policy.checkpoint_every in
    Fun.protect
      ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
      (fun () ->
        try
          Ctlog.Dataset.iter_deliveries ~scale ~start ~stop:hi ?mutator ~drop ~seed
            (fun index delivery ->
              if Atomic.get stop_flag then raise Shard_stop;
              (match delivery with
              | Ctlog.Dataset.Entry e -> process_entry part policy ~record index e
              | Ctlog.Dataset.Corrupt { der; error; _ } -> record ~index ~der error);
              if (index + 1) mod every = 0 then save_checkpoint (index + 1));
          save_checkpoint hi
        with Shard_stop -> ());
    part
  in
  let parts =
    Obs.Span.with_ "pipeline" (fun () ->
        Par.map_shards ~jobs ~scale (fun ~shard ~lo ~hi -> run_shard ~shard ~lo ~hi))
  in
  (* Always fold shard sidecars into the main quarantine file, so an
     aborted run still keeps every record written so far. *)
  (match policy.Faults.Policy.quarantine_dir with
  | Some dir ->
      ignore (Faults.Quarantine.merge_shards ~dir ~run_seed:seed ~shards:nshards)
  | None -> ());
  let t = fresh ~scale ~seed in
  List.iter (fun part -> merge_into t part) parts;
  t.faults.resumed_at <-
    List.fold_left
      (fun acc (part : t) ->
        let r = part.faults.resumed_at in
        if r = 0 then acc else if acc = 0 then r else min acc r)
      0 parts;
  t.faults.aborted <- !abort_reason;
  t.faults.lint_crashes <- snapshot_crashes () - crashes_before;
  t.faults.degraded <- Lint.Registry.degraded ();
  t

(* --- the fetch source ------------------------------------------------- *)

(* Analysis of a fetched corpus reuses the same boundary and aggregate
   machinery as the generate source, but iterates the materialized item
   stream instead of regenerating entries: faults the transport already
   classified (undecodable bytes, integrity-flagged ranges) go straight
   through [record], everything else is linted normally. *)

let analyze_item t policy ~record item =
  match item with
  | Ctlog.Fetch.Got (index, e) -> process_entry t policy ~record index e
  | Ctlog.Fetch.Undecodable (index, der, error) -> record ~index ~der error

let analyze_sequential ~scale ~seed ~policy items =
  let t = fresh ~scale ~seed in
  let quarantine =
    Option.map
      (fun dir -> Faults.Quarantine.open_ ~dir ~run_seed:seed)
      policy.Faults.Policy.quarantine_dir
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
    (fun () ->
      try
        Obs.Span.with_ "pipeline" (fun () ->
            Array.iter
              (analyze_item t policy ~record:(record_fault t policy quarantine))
              items)
      with Abort reason -> t.faults.aborted <- Some reason);
  t

let analyze_parallel ~scale ~seed ~policy ~jobs items =
  let n = Array.length items in
  let nshards = List.length (Par.shards ~jobs n) in
  let stop_flag = Atomic.make false in
  let global_errors = Atomic.make 0 in
  let abort_lock = Mutex.create () in
  let abort_reason = ref None in
  let set_abort reason =
    Mutex.protect abort_lock (fun () ->
        if !abort_reason = None then abort_reason := Some reason);
    Atomic.set stop_flag true
  in
  let run_shard ~shard ~lo ~hi =
    let part = fresh ~scale ~seed in
    let quarantine =
      Option.map
        (fun dir -> Faults.Quarantine.open_shard ~dir ~run_seed:seed ~shard)
        policy.Faults.Policy.quarantine_dir
    in
    let record ~index ~der error =
      let f = part.faults in
      f.fault_errors <- f.fault_errors + 1;
      bump f.by_class (Faults.Error.class_name error);
      Faults.Error.observe error;
      trace_fault ~index error;
      (match quarantine with
      | Some q ->
          Faults.Quarantine.record q ~index ~error ~der;
          f.quarantined <- f.quarantined + 1
      | None -> ());
      let seen = 1 + Atomic.fetch_and_add global_errors 1 in
      if policy.Faults.Policy.fail_fast then begin
        set_abort (Printf.sprintf "fail-fast: %s" (Faults.Error.to_string error));
        raise Shard_stop
      end;
      match policy.Faults.Policy.max_errors with
      | Some m when seen >= m ->
          set_abort (Printf.sprintf "max-errors: %d errors reached the limit" m);
          raise Shard_stop
      | _ -> ()
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
      (fun () ->
        try
          for i = lo to hi - 1 do
            if Atomic.get stop_flag then raise Shard_stop;
            analyze_item part policy ~record items.(i)
          done
        with Shard_stop -> ());
    part
  in
  let parts =
    Obs.Span.with_ "pipeline" (fun () ->
        Par.map_shards ~jobs ~scale:n (fun ~shard ~lo ~hi ->
            run_shard ~shard ~lo ~hi))
  in
  (match policy.Faults.Policy.quarantine_dir with
  | Some dir ->
      ignore (Faults.Quarantine.merge_shards ~dir ~run_seed:seed ~shards:nshards)
  | None -> ());
  let t = fresh ~scale ~seed in
  List.iter (fun part -> merge_into t part) parts;
  t.faults.aborted <- !abort_reason;
  t

let run_fetch ~scale ~seed ~policy ~mutator ~drop ~resume ~jobs cfg =
  prewarm policy;
  Ctlog.Fetch.prewarm ();
  let crashes_before = snapshot_crashes () in
  (* The boundary's breaker threshold also governs the per-log fetch
     breakers, so --breaker-threshold tunes both layers. *)
  let cfg =
    { cfg with
      Ctlog.Fetch.breaker_threshold = policy.Faults.Policy.breaker_threshold }
  in
  let items, coverage =
    Obs.Span.with_ "fetch" (fun () ->
        Ctlog.Fetch.corpus ~scale ~seed ?mutator ~drop
          ?checkpoint:policy.Faults.Policy.checkpoint_file ~resume ~jobs cfg)
  in
  let items = Array.of_list items in
  let t =
    if jobs > 1 && Array.length items > 1 then
      analyze_parallel ~scale ~seed ~policy ~jobs items
    else analyze_sequential ~scale ~seed ~policy items
  in
  t.coverage <- coverage;
  t.faults.lint_crashes <- snapshot_crashes () - crashes_before;
  t.faults.degraded <- Lint.Registry.degraded ();
  t

let coverage_degraded t =
  List.exists (fun c -> not (Ctlog.Fetch.coverage_complete c)) t.coverage

type source = Generate | Fetch of Ctlog.Fetch.cfg

(* --- the on-disk store ------------------------------------------------

   With [--store DIR] the pass lands every certificate and its analysis
   row in a crash-safe content-addressed store (lib/store): a cold run
   populates it shard by shard, a re-run with the same lint set becomes
   a pure index scan (no generation, no parse, no lint), and a re-run
   with a changed lint set recomputes only the missing columns.  The
   store doubles as the checkpoint: after a crash at any point,
   re-running the same command recovers the intact prefix and resumes
   into a byte-identical report. *)

(* Text codec for analysis rows: one tab-separated line per
   certificate.  List elements and the org string are percent-escaped
   so tabs/commas/newlines in values can never break framing. *)

let row_needs_escape c =
  c = '%' || c = '\t' || c = '\n' || c = '\r' || c = ','

let row_escape s =
  if String.exists row_needs_escape s then (
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if row_needs_escape c then Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char b c)
      s;
    Buffer.contents b)
  else s

let row_unescape s =
  if not (String.contains s '%') then Ok s
  else
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then Ok (Buffer.contents b)
      else if s.[i] = '%' then
        if i + 2 < n then (
          match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some c ->
              Buffer.add_char b (Char.chr c);
              go (i + 3)
          | None -> Error "bad escape")
        else Error "truncated escape"
      else (
        Buffer.add_char b s.[i];
        go (i + 1))
    in
    go 0

let encode_list l = String.concat "," (List.map row_escape l)

let decode_list s =
  if s = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
          match row_unescape x with
          | Ok v -> go (v :: acc) rest
          | Error e -> Error e)
    in
    go [] (String.split_on_char ',' s)

let bchar = function true -> '1' | false -> '0'

let encode_row r =
  let flags =
    let b = Bytes.create 7 in
    Bytes.set b 0 (bchar r.r_is_idn);
    Bytes.set b 1 (bchar r.r_alive);
    Bytes.set b 2 (bchar r.r_valid_year_end);
    Bytes.set b 3 (bchar r.r_enc_subject);
    Bytes.set b 4 (bchar r.r_enc_san);
    Bytes.set b 5 (bchar r.r_enc_policies);
    Bytes.set b 6 (bchar r.r_enc_verified);
    Bytes.unsafe_to_string b
  in
  String.concat "\t"
    [ string_of_int r.r_index;
      row_escape r.r_org;
      Asn1.Time.to_generalized r.r_issued;
      flags;
      string_of_int r.r_validity_days;
      encode_list r.r_ufields;
      encode_list r.r_nc;
      encode_list r.r_domains;
      encode_list r.r_cns;
      encode_list r.r_attrs ]

let decode_row s =
  let ( let* ) = Result.bind in
  (* Rows written before the monitor-ingest fields existed have 8
     columns; decode them with empty subject material so old stores
     stay readable. *)
  let fields =
    match String.split_on_char '\t' s with
    | [ idx; org; issued; flags; days; uf; nc; doms ] ->
        Ok (idx, org, issued, flags, days, uf, nc, doms, "", "")
    | [ idx; org; issued; flags; days; uf; nc; doms; cns; attrs ] ->
        Ok (idx, org, issued, flags, days, uf, nc, doms, cns, attrs)
    | _ -> Error "wrong field count"
  in
  let* idx, org, issued, flags, days, uf, nc, doms, cns, attrs = fields in
  let* r_index = Option.to_result ~none:"bad index" (int_of_string_opt idx) in
  let* r_org = row_unescape org in
  let* r_issued = Asn1.Time.of_generalized issued in
  let* () = if String.length flags = 7 then Ok () else Error "bad flags" in
  let* r_validity_days =
    Option.to_result ~none:"bad validity" (int_of_string_opt days)
  in
  let* r_ufields = decode_list uf in
  let* r_nc = decode_list nc in
  let* r_domains = decode_list doms in
  let* r_cns = decode_list cns in
  let* r_attrs = decode_list attrs in
  Ok
    {
      r_index;
      r_org;
      r_issued;
      r_is_idn = flags.[0] = '1';
      r_alive = flags.[1] = '1';
      r_valid_year_end = flags.[2] = '1';
      r_validity_days;
      r_ufields;
      r_enc_subject = flags.[3] = '1';
      r_enc_san = flags.[4] = '1';
      r_enc_policies = flags.[5] = '1';
      r_enc_verified = flags.[6] = '1';
      r_nc;
      r_domains;
      r_cns;
      r_attrs;
    }

(* Fetch coverage round-trips through manifest meta so a warm run can
   skip the transport entirely and still print the coverage section. *)

let encode_coverage (cs : Ctlog.Fetch.coverage list) =
  String.concat "\n"
    (List.map
       (fun (c : Ctlog.Fetch.coverage) ->
         String.concat "\t"
           [ row_escape c.Ctlog.Fetch.log;
             string_of_int c.Ctlog.Fetch.expected;
             string_of_int c.Ctlog.Fetch.delivered;
             string_of_int c.Ctlog.Fetch.quarantined;
             String.concat ","
               (List.map
                  (fun (a, b) -> Printf.sprintf "%d-%d" a b)
                  c.Ctlog.Fetch.spans);
             string_of_int c.Ctlog.Fetch.page_gaps;
             (match c.Ctlog.Fetch.abandoned with
             | None -> ""
             | Some r -> row_escape r);
             String.make 1 (bchar c.Ctlog.Fetch.split_view);
             string_of_int c.Ctlog.Fetch.requests;
             string_of_int c.Ctlog.Fetch.retries ])
       cs)

let decode_coverage s =
  let ( let* ) = Result.bind in
  let span_of s =
    match String.split_on_char '-' s with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b -> Ok (a, b)
        | _ -> Error "bad span")
    | _ -> Error "bad span"
  in
  let int_of s = Option.to_result ~none:"bad int" (int_of_string_opt s) in
  let line l =
    match String.split_on_char '\t' l with
    | [ log; exp_; del; quar; spans; gaps; ab; sv; req; ret ] ->
        let* log = row_unescape log in
        let* expected = int_of exp_ in
        let* delivered = int_of del in
        let* quarantined = int_of quar in
        let* spans =
          if spans = "" then Ok []
          else
            List.fold_right
              (fun sp acc ->
                let* acc = acc in
                let* sp = span_of sp in
                Ok (sp :: acc))
              (String.split_on_char ',' spans)
              (Ok [])
        in
        let* page_gaps = int_of gaps in
        let* abandoned =
          if ab = "" then Ok None else Result.map Option.some (row_unescape ab)
        in
        let* requests = int_of req in
        let* retries = int_of ret in
        Ok
          {
            Ctlog.Fetch.log;
            expected;
            delivered;
            quarantined;
            spans;
            page_gaps;
            abandoned;
            split_view = sv = "1";
            requests;
            retries;
          }
    | _ -> Error "wrong coverage field count"
  in
  List.fold_right
    (fun l acc ->
      let* acc = acc in
      let* c = line l in
      Ok (c :: acc))
    (List.filter (fun l -> l <> "") (String.split_on_char '\n' s))
    (Ok [])

(* --- store identity and inventory helpers --- *)

let lints_signature () =
  String.concat ";" (List.map (fun (l : Lint.t) -> l.Lint.name) Lint.Registry.all)

(* The store fingerprint pins everything besides (scale, seed) that
   shapes corpus *content*: the source (and its transport/fault
   configuration) plus the mutation campaign.  Reusing a store under a
   different campaign would silently blend corpora, so a mismatch is a
   hard [Store_error]. *)
let store_fingerprint ~mutator ~drop ~source =
  let src =
    match source with
    | Generate -> "generate"
    | Fetch cfg -> "fetch:" ^ Ucrypto.Sha256.hex (Marshal.to_string cfg [])
  in
  let mut =
    match mutator with
    | None -> "none"
    | Some (p : Faults.Mutator.plan) -> Ucrypto.Sha256.hex (Marshal.to_string p [])
  in
  Printf.sprintf "source=%s;mutator=%s;drop=%b" src mut drop

let content_address (man : Store.Manifest.t) =
  Ucrypto.Sha256.hex
    (String.concat ""
       (List.map (fun (s : Store.Manifest.seg) -> s.Store.Manifest.seal)
          (man.Store.Manifest.segments @ man.Store.Manifest.rows)))

(* --- store index accumulation --- *)

type index_acc = {
  mutable ix_issuer : (string * int list) list;
  mutable ix_lint : (string * int list) list;
  mutable ix_flaw : (string * int list) list;
  mutable ix_domain : (string * int list) list;
  mutable ix_ulabel : (string * int list) list;
}

let fresh_acc () =
  { ix_issuer = []; ix_lint = []; ix_flaw = []; ix_domain = []; ix_ulabel = [] }

(* Derive every index entry for one certificate from its row alone, so
   index rebuilds never touch DER. *)
let add_index_entries acc row =
  let i = row.r_index in
  acc.ix_issuer <- (row.r_org, [ i ]) :: acc.ix_issuer;
  let dated =
    List.filter_map Lint.Registry.find row.r_nc
    |> List.filter (fun (l : Lint.t) ->
           Asn1.Time.(l.Lint.effective_date <= row.r_issued))
  in
  List.iter
    (fun (l : Lint.t) -> acc.ix_lint <- (l.Lint.name, [ i ]) :: acc.ix_lint)
    dated;
  List.iter
    (fun ty -> acc.ix_flaw <- (ty, [ i ]) :: acc.ix_flaw)
    (List.sort_uniq compare
       (List.map (fun (l : Lint.t) -> Lint.nc_type_name l.Lint.nc_type) dated));
  let labels =
    List.sort_uniq compare (List.concat_map Idna.Dns.split_labels row.r_domains)
  in
  List.iter
    (fun lab ->
      acc.ix_domain <- (lab, [ i ]) :: acc.ix_domain;
      (* The ulabel index keys the *other* IDNA form: U-label for an
         A-label in the SAN (and vice versa), so lookups work in either
         spelling. *)
      if Idna.Dns.is_a_label_candidate lab then (
        match Idna.label_to_unicode lab with
        | Ok u when u <> lab && u <> "" ->
            acc.ix_ulabel <- (u, [ i ]) :: acc.ix_ulabel
        | _ -> ())
      else if String.exists (fun c -> Char.code c > 0x7F) lab then
        match Idna.label_to_ascii lab with
        | Ok a when a <> "" -> acc.ix_ulabel <- (a, [ i ]) :: acc.ix_ulabel
        | _ -> ())
    labels

let merge_accs accs =
  let cat f = List.concat_map f accs in
  [ ("issuer", cat (fun a -> List.rev a.ix_issuer));
    ("lint", cat (fun a -> List.rev a.ix_lint));
    ("flaw", cat (fun a -> List.rev a.ix_flaw));
    ("domain", cat (fun a -> List.rev a.ix_domain));
    ("ulabel", cat (fun a -> List.rev a.ix_ulabel)) ]

let save_indexes db named =
  List.map
    (fun (name, entries) ->
      let file, sha = Store.Index.save ~dir:(Store.Db.dir db) ~name entries in
      (name, file, sha))
    named

(* --- replaying stored records --- *)

let store_corrupt fmt =
  Printf.ksprintf (fun s -> raise (Store.Db.Store_error s)) fmt

(* Absorb one stored record: cert rows re-enter the aggregate through
   {!absorb_row} (no parse, no lint), fault records replay through the
   caller's boundary so quarantine, budgets and robustness reporting
   match the cold run.  Returns the decoded row for cert records. *)
let replay_stored t ~record recd rowstr =
  match recd with
  | Store.Db.Fault { index; class_; detail; der } ->
      record ~index ~der (Faults.Error.of_class ~class_ ~detail);
      None
  | Store.Db.Cert { index; der = _ } -> (
      match decode_row rowstr with
      | Error e ->
          store_corrupt "stored row %d undecodable (%s); run `unicert-store fsck`"
            index e
      | Ok row -> (
          match Ctlog.Dataset.issuer_of_org row.r_org with
          | None ->
              store_corrupt "stored row %d references unknown issuer %S" index
                row.r_org
          | Some issuer ->
              let nc = List.filter_map Lint.Registry.find row.r_nc in
              Obs.Span.with_ "aggregate" (fun () -> absorb_row t ~issuer row nc);
              Some row))

(* --- cold build: process one live entry and land it durably --- *)

let append_fault pw ~index ~der error =
  Store.Db.append pw
    (Store.Db.Fault
       { index;
         class_ = Faults.Error.class_name error;
         detail = Faults.Error.detail error;
         der })
    ~row:"F"

let process_store t pw acc policy ~record index (entry : Ctlog.Dataset.entry) =
  let work () =
    with_profiling ~index (fun ~timer ~note_aggregate ->
        let row, nc = row_of_entry ~timer entry ~index in
        note_aggregate (fun () ->
            absorb_row t ~issuer:entry.Ctlog.Dataset.issuer row nc);
        add_index_entries acc row;
        Store.Db.append pw
          (Store.Db.Cert
             { index; der = entry.Ctlog.Dataset.cert.X509.Certificate.der })
          ~row:(encode_row row))
  in
  let guarded () =
    match policy.Faults.Policy.timeout_seconds with
    | Some s -> Faults.Watchdog.with_timeout ~stage:"process" ~seconds:s work
    | None -> work ()
  in
  (* A processing fault is also landed as a store fault record, so a
     warm replay reproduces the cold run's fault ledger. *)
  match guarded () with
  | () -> ()
  | exception (Abort _ as e) -> raise e
  | exception (Shard_stop as e) -> raise e
  | exception (Store.Chaos.Crashed _ as e) -> raise e
  | exception (Store.Db.Store_error _ as e) -> raise e
  | exception Faults.Watchdog.Timed_out { stage; seconds } ->
      let error = Faults.Error.Timeout { stage; seconds } in
      append_fault pw ~index ~der:entry.Ctlog.Dataset.cert.X509.Certificate.der
        error;
      record ~index ~der:entry.Ctlog.Dataset.cert.X509.Certificate.der error
  | exception e when Faults.Isolation.enabled () ->
      let error = Faults.Error.of_exn ~stage:"process" e in
      append_fault pw ~index ~der:entry.Ctlog.Dataset.cert.X509.Certificate.der
        error;
      record ~index ~der:entry.Ctlog.Dataset.cert.X509.Certificate.der error

(* --- pieces: the interleaving of recovered coverage and gaps --- *)

type piece =
  | Stored of (Store.Manifest.seg * Store.Manifest.seg)
  | Gap of (int * int)

let piece_lo = function
  | Stored ((c : Store.Manifest.seg), _) -> c.Store.Manifest.lo
  | Gap (lo, _) -> lo

let build_pieces db ~scale =
  List.merge
    (fun a b -> compare (piece_lo a) (piece_lo b))
    (List.map (fun pr -> Stored pr) (Store.Db.spans db))
    (List.map (fun g -> Gap g) (Store.Db.gaps db ~scale))

(* --- the sharded generate-source build --- *)

let run_store_generate_build db ~scale ~seed ~policy ~mutator ~drop ~jobs ~lints =
  prewarm policy;
  Store.Db.prewarm ();
  Store.Db.recover db ~lints;
  let pieces = build_pieces db ~scale in
  let nshards = List.length (Par.shards ~jobs scale) in
  let stop_flag = Atomic.make false in
  let global_errors = Atomic.make 0 in
  let abort_lock = Mutex.create () in
  let abort_reason = ref None in
  let set_abort reason =
    Mutex.protect abort_lock (fun () ->
        if !abort_reason = None then abort_reason := Some reason);
    Atomic.set stop_flag true
  in
  let run_shard ~shard ~lo ~hi =
    let part = fresh ~scale ~seed in
    let acc = fresh_acc () in
    let segs = ref [] in
    let quarantine =
      Option.map
        (fun dir -> Faults.Quarantine.open_shard ~dir ~run_seed:seed ~shard)
        policy.Faults.Policy.quarantine_dir
    in
    let record ~index ~der error =
      let f = part.faults in
      f.fault_errors <- f.fault_errors + 1;
      bump f.by_class (Faults.Error.class_name error);
      Faults.Error.observe error;
      trace_fault ~index error;
      (match quarantine with
      | Some q ->
          Faults.Quarantine.record q ~index ~error ~der;
          f.quarantined <- f.quarantined + 1
      | None -> ());
      let seen = 1 + Atomic.fetch_and_add global_errors 1 in
      if policy.Faults.Policy.fail_fast then begin
        set_abort (Printf.sprintf "fail-fast: %s" (Faults.Error.to_string error));
        raise Shard_stop
      end;
      match policy.Faults.Policy.max_errors with
      | Some m when seen >= m ->
          set_abort (Printf.sprintf "max-errors: %d errors reached the limit" m);
          raise Shard_stop
      | _ -> ()
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
      (fun () ->
        try
          List.iter
            (fun piece ->
              match piece with
              | Stored ((c, _) as pr) when c.Store.Manifest.hi > lo && c.Store.Manifest.lo < hi ->
                  Store.Db.iter_pair db pr (fun recd rowstr ->
                      let i = Store.Db.index_of_record recd in
                      if i >= lo && i < hi then begin
                        if Atomic.get stop_flag then raise Shard_stop;
                        match replay_stored part ~record recd rowstr with
                        | Some row -> add_index_entries acc row
                        | None -> ()
                      end)
              | Stored _ -> ()
              | Gap (glo, ghi) ->
                  let glo = max glo lo and ghi = min ghi hi in
                  if glo < ghi then begin
                    let pw = Store.Db.start_span db ~lints ~lo:glo ~hi:ghi in
                    match
                      Ctlog.Dataset.iter_deliveries ~scale ~start:glo ~stop:ghi
                        ?mutator ~drop ~seed (fun index delivery ->
                          if Atomic.get stop_flag then raise Shard_stop;
                          match delivery with
                          | Ctlog.Dataset.Entry e ->
                              process_store part pw acc policy ~record index e
                          | Ctlog.Dataset.Corrupt { der; error; _ } ->
                              append_fault pw ~index ~der error;
                              record ~index ~der error)
                    with
                    | () -> segs := Store.Db.finish_span pw :: !segs
                    | exception e ->
                        Store.Db.close_noerr pw;
                        raise e
                  end)
            pieces
        with Shard_stop -> ());
    (part, List.rev !segs, acc)
  in
  let results =
    Obs.Span.with_ "pipeline" (fun () ->
        Par.map_shards ~jobs ~scale (fun ~shard ~lo ~hi -> run_shard ~shard ~lo ~hi))
  in
  (match policy.Faults.Policy.quarantine_dir with
  | Some dir ->
      ignore (Faults.Quarantine.merge_shards ~dir ~run_seed:seed ~shards:nshards)
  | None -> ());
  let t = fresh ~scale ~seed in
  List.iter (fun (part, _, _) -> merge_into t part) results;
  t.faults.aborted <- !abort_reason;
  if t.faults.aborted = None then begin
    let stored =
      List.filter_map (function Stored pr -> Some pr | Gap _ -> None) pieces
    in
    let fresh_pairs = List.concat_map (fun (_, segs, _) -> segs) results in
    let by_lo =
      List.sort (fun ((a : Store.Manifest.seg), _) ((b : Store.Manifest.seg), _) ->
          compare a.Store.Manifest.lo b.Store.Manifest.lo)
    in
    let pairs = by_lo (stored @ fresh_pairs) in
    let indexes =
      save_indexes db (merge_accs (List.map (fun (_, _, a) -> a) results))
    in
    let man : Store.Manifest.t =
      { state = `Complete;
        lints;
        segments = List.map fst pairs;
        rows = List.map snd pairs;
        indexes;
        meta = [] }
    in
    let man = { man with Store.Manifest.meta = [ ("content", content_address man) ] } in
    Store.Db.commit db man
  end;
  t

(* --- the sequential fetch-source build ---------------------------------

   Fetch cursors already carry the full fetched history, so a resumed
   fetch hands back every item; the store pass walks items and
   recovered spans in index order, writing only the gaps.  The landing
   pass is sequential — [jobs] still parallelizes the transport. *)

let run_store_fetch_build db ~scale ~seed ~policy ~mutator ~drop ~resume ~jobs
    ~lints cfg =
  prewarm policy;
  Ctlog.Fetch.prewarm ();
  Store.Db.prewarm ();
  Store.Db.recover db ~lints;
  let cfg =
    { cfg with
      Ctlog.Fetch.breaker_threshold = policy.Faults.Policy.breaker_threshold }
  in
  let items, coverage =
    Obs.Span.with_ "fetch" (fun () ->
        Ctlog.Fetch.corpus ~scale ~seed ?mutator ~drop
          ?checkpoint:policy.Faults.Policy.checkpoint_file ~resume ~jobs cfg)
  in
  let items = Array.of_list items in
  let n = Array.length items in
  let pieces = build_pieces db ~scale in
  let t = fresh ~scale ~seed in
  let acc = fresh_acc () in
  let segs = ref [] in
  let quarantine =
    Option.map
      (fun dir -> Faults.Quarantine.open_ ~dir ~run_seed:seed)
      policy.Faults.Policy.quarantine_dir
  in
  let record = record_fault t policy quarantine in
  let ii = ref 0 in
  Fun.protect
    ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
    (fun () ->
      try
        Obs.Span.with_ "pipeline" (fun () ->
            List.iter
              (fun piece ->
                match piece with
                | Stored ((c, _) as pr) ->
                    while
                      !ii < n
                      && Ctlog.Fetch.item_index items.(!ii) < c.Store.Manifest.hi
                    do
                      incr ii
                    done;
                    Store.Db.iter_pair db pr (fun recd rowstr ->
                        match replay_stored t ~record recd rowstr with
                        | Some row -> add_index_entries acc row
                        | None -> ())
                | Gap (glo, ghi) ->
                    while !ii < n && Ctlog.Fetch.item_index items.(!ii) < glo do
                      incr ii
                    done;
                    let pw = Store.Db.start_span db ~lints ~lo:glo ~hi:ghi in
                    (match
                       while
                         !ii < n && Ctlog.Fetch.item_index items.(!ii) < ghi
                       do
                         (match items.(!ii) with
                         | Ctlog.Fetch.Got (index, e) ->
                             process_store t pw acc policy ~record index e
                         | Ctlog.Fetch.Undecodable (index, der, error) ->
                             append_fault pw ~index ~der error;
                             record ~index ~der error);
                         incr ii
                       done
                     with
                    | () -> segs := Store.Db.finish_span pw :: !segs
                    | exception e ->
                        Store.Db.close_noerr pw;
                        raise e))
              pieces)
      with Abort reason -> t.faults.aborted <- Some reason);
  t.coverage <- coverage;
  if t.faults.aborted = None then begin
    let stored =
      List.filter_map (function Stored pr -> Some pr | Gap _ -> None) pieces
    in
    let pairs =
      List.sort
        (fun ((a : Store.Manifest.seg), _) (b, _) -> compare a.Store.Manifest.lo b.Store.Manifest.lo)
        (stored @ List.rev !segs)
    in
    let indexes = save_indexes db (merge_accs [ acc ]) in
    let man : Store.Manifest.t =
      { state = `Complete;
        lints;
        segments = List.map fst pairs;
        rows = List.map snd pairs;
        indexes;
        meta = [] }
    in
    let man =
      { man with
        Store.Manifest.meta =
          [ ("content", content_address man);
            ("coverage", encode_coverage coverage) ] }
    in
    Store.Db.commit db man
  end;
  t

(* --- warm replay: the store is complete for the current lint set --- *)

let run_store_warm db ~scale ~seed ~policy =
  Lint.Registry.set_breaker_threshold policy.Faults.Policy.breaker_threshold;
  Store.Db.prewarm ();
  let t = fresh ~scale ~seed in
  let quarantine =
    Option.map
      (fun dir -> Faults.Quarantine.open_ ~dir ~run_seed:seed)
      policy.Faults.Policy.quarantine_dir
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
    (fun () ->
      try
        Obs.Span.with_ "pipeline" (fun () ->
            Store.Db.iter_pairs db (fun recd rowstr ->
                ignore
                  (replay_stored t
                     ~record:(record_fault t policy quarantine)
                     recd rowstr)))
      with Abort reason -> t.faults.aborted <- Some reason);
  (match Store.Db.meta db "coverage" with
  | Some s -> (
      match decode_coverage s with
      | Ok cov -> t.coverage <- cov
      | Error e -> store_corrupt "stored coverage undecodable (%s)" e)
  | None -> ());
  t

(* --- incremental recompute: the lint set changed ----------------------

   Certificates and indexes-by-DER never change; only the analysis rows
   do.  Run just the missing lints over the stored DER, merge with the
   stored findings (names of removed lints drop out), and publish the
   new rows column + indexes in one manifest commit — old columns are
   deleted only after the commit. *)

let run_store_incremental db ~scale ~seed ~policy ~lints =
  Lint.Registry.set_breaker_threshold policy.Faults.Policy.breaker_threshold;
  Store.Db.prewarm ();
  let stored_lints =
    String.split_on_char ';' (Store.Db.manifest db).Store.Manifest.lints
  in
  let current = List.map (fun (l : Lint.t) -> l.Lint.name) Lint.Registry.all in
  let missing = List.filter (fun n -> not (List.mem n stored_lints)) current in
  let t = fresh ~scale ~seed in
  let acc = fresh_acc () in
  let new_rows = ref [] in
  let quarantine =
    Option.map
      (fun dir -> Faults.Quarantine.open_ ~dir ~run_seed:seed)
      policy.Faults.Policy.quarantine_dir
  in
  let record = record_fault t policy quarantine in
  Fun.protect
    ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
    (fun () ->
      try
        Obs.Span.with_ "pipeline" (fun () ->
            List.iter
              (fun (((c : Store.Manifest.seg), _) as pr) ->
                let rw =
                  Store.Db.start_rows_span db ~lints ~lo:c.Store.Manifest.lo
                    ~hi:c.Store.Manifest.hi
                in
                match
                  Store.Db.iter_pair db pr (fun recd rowstr ->
                      match recd with
                      | Store.Db.Fault { index; class_; detail; der } ->
                          record ~index ~der
                            (Faults.Error.of_class ~class_ ~detail);
                          Store.Db.append_row rw rowstr
                      | Store.Db.Cert { index; der } -> (
                          match decode_row rowstr with
                          | Error e ->
                              store_corrupt
                                "stored row %d undecodable (%s); run `unicert-store fsck`"
                                index e
                          | Ok row ->
                              let fresh_nc =
                                if missing = [] then []
                                else
                                  match X509.Certificate.parse der with
                                  | Error e ->
                                      store_corrupt
                                        "stored certificate %d unparseable (%s)"
                                        index (Faults.Error.to_string e)
                                  | Ok cert ->
                                      Lint.Registry.run
                                        ~respect_effective_dates:false
                                        ~only:(fun l ->
                                          List.mem l.Lint.name missing)
                                        ~issued:row.r_issued cert
                                      |> List.filter_map
                                           (fun (f : Lint.finding) ->
                                             if Lint.is_noncompliant f then
                                               Some f.Lint.lint.Lint.name
                                             else None)
                              in
                              let keep n =
                                List.mem n row.r_nc || List.mem n fresh_nc
                              in
                              let row =
                                { row with r_nc = List.filter keep current }
                              in
                              (match Ctlog.Dataset.issuer_of_org row.r_org with
                              | None ->
                                  store_corrupt
                                    "stored row %d references unknown issuer %S"
                                    index row.r_org
                              | Some issuer ->
                                  let nc =
                                    List.filter_map Lint.Registry.find row.r_nc
                                  in
                                  Obs.Span.with_ "aggregate" (fun () ->
                                      absorb_row t ~issuer row nc));
                              add_index_entries acc row;
                              Store.Db.append_row rw (encode_row row)))
                with
                | () -> new_rows := Store.Db.finish_rows_span rw :: !new_rows
                | exception e ->
                    Store.Db.close_rows_noerr rw;
                    raise e)
              (Store.Db.spans db))
      with Abort reason -> t.faults.aborted <- Some reason);
  if t.faults.aborted = None then begin
    let old = Store.Db.manifest db in
    let rows =
      List.sort
        (fun (a : Store.Manifest.seg) b -> compare a.Store.Manifest.lo b.Store.Manifest.lo)
        (List.rev !new_rows)
    in
    let indexes = save_indexes db (merge_accs [ acc ]) in
    let man : Store.Manifest.t =
      { state = `Complete;
        lints;
        segments = old.Store.Manifest.segments;
        rows;
        indexes;
        meta = [] }
    in
    let keep_meta =
      List.filter (fun (k, _) -> k = "coverage") old.Store.Manifest.meta
    in
    let man =
      { man with
        Store.Manifest.meta = ("content", content_address man) :: keep_meta }
    in
    Store.Db.commit db man
  end;
  t

(* --- dispatch --- *)

let run_store ~scale ~seed ~policy ~mutator ~drop ~resume ~jobs ~source ~dir =
  let lints = lints_signature () in
  let fingerprint = store_fingerprint ~mutator ~drop ~source in
  let db = Store.Db.create ~dir ~scale ~seed ~fingerprint in
  let crashes_before = snapshot_crashes () in
  let t =
    if Store.Db.complete db then
      if (Store.Db.manifest db).Store.Manifest.lints = lints then
        run_store_warm db ~scale ~seed ~policy
      else run_store_incremental db ~scale ~seed ~policy ~lints
    else
      match source with
      | Generate ->
          run_store_generate_build db ~scale ~seed ~policy ~mutator ~drop ~jobs
            ~lints
      | Fetch cfg ->
          run_store_fetch_build db ~scale ~seed ~policy ~mutator ~drop ~resume
            ~jobs ~lints cfg
  in
  t.faults.lint_crashes <- snapshot_crashes () - crashes_before;
  t.faults.degraded <- Lint.Registry.degraded ();
  t

let run ?(scale = Ctlog.Dataset.default_scale) ?(seed = 1)
    ?(policy = Faults.Policy.default) ?mutator ?(drop = false) ?(resume = false)
    ?(jobs = 1) ?(source = Generate) ?store () =
  match store with
  | Some dir ->
      run_store ~scale ~seed ~policy ~mutator ~drop ~resume ~jobs ~source ~dir
  | None -> (
      match source with
      | Fetch cfg -> run_fetch ~scale ~seed ~policy ~mutator ~drop ~resume ~jobs cfg
      | Generate ->
          if jobs > 1 && scale > 1 then
            run_parallel ~scale ~seed ~policy ~mutator ~drop ~resume ~jobs
          else run_sequential ~scale ~seed ~policy ~mutator ~drop ~resume)

let year_range t =
  Hashtbl.fold (fun y _ (lo, hi) -> (min lo y, max hi y)) t.years (9999, 0)

let get_year t y = year_tbl t y

let validity_cdf t cls =
  match Hashtbl.find_opt t.validity cls with
  | None -> []
  | Some l ->
      let sorted = List.sort compare !l in
      let n = List.length sorted in
      if n = 0 then []
      else begin
        let points = ref [] and seen = ref 0 in
        List.iter
          (fun d ->
            incr seen;
            points := (d, float_of_int !seen /. float_of_int n) :: !points)
          sorted;
        (* Deduplicate by keeping the last fraction per day value. *)
        let dedup =
          List.fold_left
            (fun acc (d, f) ->
              match acc with
              | (d', _) :: rest when d' = d -> (d, f) :: rest
              | _ -> (d, f) :: acc)
            [] (List.rev !points)
        in
        List.rev dedup
      end

(* Both orderings break count ties by name: Hashtbl fold order depends
   on insertion history, which differs between a sequential pass and a
   shard merge, and report output must not. *)
let top_lints t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.lints []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare b a with 0 -> String.compare ka kb | c -> c)

let top_issuers_by_nc t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.issuers []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare b.nc_count a.nc_count with
         | 0 -> String.compare ka kb
         | c -> c)
