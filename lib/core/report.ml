let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let figure2 ppf (t : Pipeline.t) =
  Format.fprintf ppf "== Figure 2: issuance trend of Unicerts and noncompliant Unicerts ==@.";
  Format.fprintf ppf "%-6s | %10s | %10s | %10s | %8s | %10s@." "Year" "All" "Trusted"
    "Alive" "NC" "NC-trusted";
  let lo, hi = Pipeline.year_range t in
  for y = lo to hi do
    let s = Pipeline.get_year t y in
    Format.fprintf ppf "%-6d | %10d | %10d | %10d | %8d | %10d@." y
      s.Pipeline.issued s.Pipeline.issued_trusted s.Pipeline.alive_in_year
      s.Pipeline.nc s.Pipeline.nc_trusted
  done

let type_rows =
  [ ("T1", Lint.Invalid_character); ("T2", Lint.Bad_normalization);
    ("T3", Lint.Illegal_format); ("T3", Lint.Invalid_encoding);
    ("T3", Lint.Invalid_structure); ("T3", Lint.Discouraged_field) ]

let table1 ppf (t : Pipeline.t) =
  Format.fprintf ppf "== Table 1: overview of noncompliance types ==@.";
  Format.fprintf ppf "%-4s %-18s | %-10s | %-10s | %8s %8s | %8s %8s | %8s | %8s | %8s@."
    "" "Type" "#Lints(new)" "NC lints" "Certs" "ByNew" "Error" "Warning" "Trusted%"
    "Recent" "Alive";
  List.iter
    (fun (tier, ty) ->
      let all_lints, new_lints = Lint.Registry.counts_by_type ty in
      let nc_lints =
        List.length
          (List.filter
             (fun (l : Lint.t) ->
               Option.value ~default:0 (Hashtbl.find_opt t.Pipeline.lints l.Lint.name) > 0)
             (Lint.Registry.by_type ty))
      in
      let s =
        Option.value
          ~default:
            { Pipeline.certs = 0; by_new_lints = 0; errors = 0; warnings = 0;
              trusted = 0; recent = 0; alive = 0 }
          (Hashtbl.find_opt t.Pipeline.types ty)
      in
      Format.fprintf ppf "%-4s %-18s | %4d (%2d)  | %-10d | %8d %8d | %8d %8d | %7.1f%% | %8d | %8d@."
        tier (Lint.nc_type_name ty) all_lints new_lints nc_lints s.Pipeline.certs
        s.Pipeline.by_new_lints s.Pipeline.errors s.Pipeline.warnings
        (pct s.Pipeline.trusted s.Pipeline.certs)
        s.Pipeline.recent s.Pipeline.alive)
    type_rows;
  Format.fprintf ppf "%-23s | %4d (%2d)  | %-10s | %8d %8s | %8s %8s | %7.1f%% | %8d | %8d@."
    "All" (List.length Lint.Registry.all)
    (List.length (List.filter (fun (l : Lint.t) -> l.Lint.is_new) Lint.Registry.all))
    "-" t.Pipeline.nc_total "-" "-" "-"
    (pct t.Pipeline.nc_trusted t.Pipeline.nc_total)
    t.Pipeline.nc_recent t.Pipeline.nc_alive

let trust_symbol = function
  | Ctlog.Dataset.Public -> "public"
  | Ctlog.Dataset.Limited -> "limited"
  | Ctlog.Dataset.Untrusted -> "untrusted"

let table2 ppf (t : Pipeline.t) =
  Format.fprintf ppf "== Table 2: top 10 issuer organizations by noncompliant Unicerts ==@.";
  Format.fprintf ppf "%-32s | %-9s | %-7s | %12s | %8s | %8s@." "IssuerOrganizationName"
    "TrustNow" "Region" "Noncompliant" "NC-rate" "Recent";
  let named, aggregates =
    List.partition (fun (_, (s : Pipeline.issuer_stats)) -> not s.Pipeline.aggregate)
      (Pipeline.top_issuers_by_nc t)
  in
  let top = named in
  List.iteri
    (fun i (org, (s : Pipeline.issuer_stats)) ->
      if i < 10 then
        Format.fprintf ppf "%-32s | %-9s | %-7s | %12d | %6.2f%% | %8d@." org
          (trust_symbol s.Pipeline.trust_now)
          s.Pipeline.region s.Pipeline.nc_count
          (pct s.Pipeline.nc_count s.Pipeline.total)
          s.Pipeline.nc_recent)
    top;
  let rest = List.filteri (fun i _ -> i >= 10) top @ aggregates in
  let rest_nc =
    List.fold_left (fun a (_, (s : Pipeline.issuer_stats)) -> a + s.Pipeline.nc_count) 0 rest
  in
  let rest_total =
    List.fold_left (fun a (_, (s : Pipeline.issuer_stats)) -> a + s.Pipeline.total) 0 rest
  in
  Format.fprintf ppf "%-32s | %-9s | %-7s | %12d | %6.2f%% | %8s@." "Other" "-" "-"
    rest_nc (pct rest_nc rest_total) "-";
  Format.fprintf ppf "%-32s | %-9s | %-7s | %12d | %6.2f%% | %8d@." "Total" "-" "-"
    t.Pipeline.nc_total
    (pct t.Pipeline.nc_total t.Pipeline.total)
    t.Pipeline.nc_recent

let quantile points q =
  (* [points] is an ascending (days, cdf) list. *)
  let rec go = function
    | [] -> None
    | (d, f) :: _ when f >= q -> Some d
    | _ :: rest -> go rest
  in
  go points

let fraction_at points days =
  let rec go best = function
    | [] -> best
    | (d, f) :: rest -> if d <= days then go f rest else best
  in
  go 0.0 points

let figure3 ppf (t : Pipeline.t) =
  Format.fprintf ppf "== Figure 3: CDF of Unicert validity period ==@.";
  Format.fprintf ppf "%-14s | %8s | %8s | %8s | %10s | %10s | %10s@." "Class" "p25"
    "p50" "p90" "<=90d" "<=398d" ">700d";
  List.iter
    (fun (name, cls) ->
      let points = Pipeline.validity_cdf t cls in
      let q p = match quantile points p with Some d -> string_of_int d | None -> "-" in
      Format.fprintf ppf "%-14s | %8s | %8s | %8s | %9.1f%% | %9.1f%% | %9.1f%%@." name
        (q 0.25) (q 0.50) (q 0.90)
        (100.0 *. fraction_at points 90)
        (100.0 *. fraction_at points 398)
        (100.0 *. (1.0 -. fraction_at points 700)))
    [ ("IDNCerts", Pipeline.V_idn); ("Other Unicerts", Pipeline.V_other);
      ("Noncompliant", Pipeline.V_noncompliant); ("Normal", Pipeline.V_normal) ]

let figure4 ppf (t : Pipeline.t) =
  Format.fprintf ppf "== Figure 4: fields containing internationalized contents ==@.";
  (* Issuers above a volume threshold, fields with any Unicode usage. *)
  let threshold = max 1 (t.Pipeline.total / 1000) in
  let orgs =
    Hashtbl.fold
      (fun org (s : Pipeline.issuer_stats) acc ->
        if s.Pipeline.total >= threshold then (org, s.Pipeline.total) :: acc else acc)
      t.Pipeline.issuers []
    (* Tie-break on the org name: Hashtbl fold order varies with
       insertion history (sequential pass vs shard merge). *)
    |> List.sort (fun (oa, a) (ob, b) ->
           match compare b a with 0 -> String.compare oa ob | c -> c)
  in
  List.iter
    (fun (org, total) ->
      let fields =
        Hashtbl.fold
          (fun (o, field) (u, d) acc -> if o = org then (field, u, d) :: acc else acc)
          t.Pipeline.fields []
        |> List.sort (fun (fa, a, _) (fb, b, _) ->
               match compare b a with 0 -> String.compare fa fb | c -> c)
      in
      if fields <> [] then begin
        Format.fprintf ppf "%-32s (n=%d):@." org total;
        List.iter
          (fun (field, u, d) ->
            Format.fprintf ppf "    %-28s unicode=%-7d deviant=%d@." field u d)
          fields
      end)
    orgs

let table11 ppf (t : Pipeline.t) =
  Format.fprintf ppf "== Table 11: top 25 lints identifying noncompliant cases ==@.";
  Format.fprintf ppf "%-55s | %-18s | %-4s | %-6s | %8s@." "Lint" "Type" "New" "Level"
    "NC certs";
  List.iteri
    (fun i (name, count) ->
      if i < 25 then
        match Lint.Registry.find name with
        | Some l ->
            Format.fprintf ppf "%-55s | %-18s | %-4s | %-6s | %8d@." name
              (Lint.nc_type_name l.Lint.nc_type)
              (if l.Lint.is_new then "yes" else "no")
              (Lint.level_name l.Lint.level)
              count
        | None -> ())
    (Pipeline.top_lints t)

let section51 ppf (t : Pipeline.t) =
  Format.fprintf ppf "== Section 5.1 impact: Unicerts with ASN.1 encoding errors ==@.";
  Format.fprintf ppf "encoding-error certs:        %d@." t.Pipeline.encoding_error_certs;
  Format.fprintf ppf "  chain-verified (trusted):  %d@."
    t.Pipeline.encoding_error_verified;
  Format.fprintf ppf "  errors in Subject:         %d@."
    t.Pipeline.encoding_error_subject;
  Format.fprintf ppf "  errors in SAN:             %d@." t.Pipeline.encoding_error_san;
  Format.fprintf ppf "  errors in CertificatePolicies: %d@."
    t.Pipeline.encoding_error_policies

let ablations ppf (t : Pipeline.t) =
  Format.fprintf ppf "== Ablations ==@.";
  Format.fprintf ppf
    "noncompliant (effective dates respected):  %d (%.2f%% of corpus)@."
    t.Pipeline.nc_total
    (pct t.Pipeline.nc_total t.Pipeline.total);
  Format.fprintf ppf
    "noncompliant (dates ignored, footnote 4):  %d (%.1fx the dated count)@."
    t.Pipeline.nc_ignoring_dates
    (if t.Pipeline.nc_total = 0 then 0.0
     else float_of_int t.Pipeline.nc_ignoring_dates /. float_of_int t.Pipeline.nc_total);
  Format.fprintf ppf
    "noncompliant via pre-existing lints only:  %d (new lints add %d certs)@."
    t.Pipeline.nc_old_lints_only
    (t.Pipeline.nc_total - t.Pipeline.nc_old_lints_only)

let summary ppf (t : Pipeline.t) =
  Format.fprintf ppf "== Headline numbers (measured vs paper) ==@.";
  let row name measured paper =
    Format.fprintf ppf "%-46s | measured %10s | paper %10s@." name measured paper
  in
  row "Unicerts analyzed" (string_of_int t.Pipeline.total) "34.8M";
  row "trusted share"
    (Printf.sprintf "%.1f%%" (pct t.Pipeline.trusted t.Pipeline.total))
    "90.1%";
  row "IDNCert share"
    (Printf.sprintf "%.1f%%" (pct t.Pipeline.idncerts t.Pipeline.total))
    "(majority)";
  row "noncompliant rate"
    (Printf.sprintf "%.2f%%" (pct t.Pipeline.nc_total t.Pipeline.total))
    "0.72%";
  row "NC from publicly trusted CAs"
    (Printf.sprintf "%.1f%%" (pct t.Pipeline.nc_trusted t.Pipeline.nc_total))
    "65.3%";
  row "NC from limited-trust CAs"
    (Printf.sprintf "%.1f%%" (pct t.Pipeline.nc_limited t.Pipeline.nc_total))
    "21.1%";
  row "NC recent (2024-25)"
    (Printf.sprintf "%.1f%%" (pct t.Pipeline.nc_recent t.Pipeline.nc_total))
    "5.2%";
  row "NC alive (2024-25)"
    (Printf.sprintf "%.1f%%" (pct t.Pipeline.nc_alive t.Pipeline.nc_total))
    "7.3%";
  row "dates-ignored multiplier"
    (Printf.sprintf "%.1fx"
       (if t.Pipeline.nc_total = 0 then 0.0
        else
          float_of_int t.Pipeline.nc_ignoring_dates /. float_of_int t.Pipeline.nc_total))
    "7.2x"

(* Robustness accounting.  Prints nothing at all on a clean run: the
   aggregate report over an uncorrupted corpus must stay byte-identical
   to builds that predate the fault layer. *)
let robustness ppf (t : Pipeline.t) =
  let f = t.Pipeline.faults in
  let quiet =
    f.Pipeline.fault_errors = 0 && f.Pipeline.degraded = []
    && f.Pipeline.aborted = None && f.Pipeline.resumed_at = 0
  in
  if not quiet then begin
    Format.fprintf ppf "@.== Robustness ==@.";
    Format.fprintf ppf "faulted certificates:   %d@." f.Pipeline.fault_errors;
    let classes =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) f.Pipeline.by_class []
      |> List.sort compare
    in
    List.iter
      (fun (cls, n) -> Format.fprintf ppf "  %-20s  %d@." cls n)
      classes;
    if f.Pipeline.quarantined > 0 then
      Format.fprintf ppf "quarantined:            %d@." f.Pipeline.quarantined;
    if f.Pipeline.lint_crashes > 0 then
      Format.fprintf ppf "lint crashes:           %d@." f.Pipeline.lint_crashes;
    List.iter
      (fun (name, crashes) ->
        Format.fprintf ppf "degraded lint:          %s (breaker open, %d crashes)@."
          name crashes)
      f.Pipeline.degraded;
    if f.Pipeline.resumed_at > 0 then
      Format.fprintf ppf "resumed at index:       %d@." f.Pipeline.resumed_at;
    (match f.Pipeline.aborted with
    | Some reason -> Format.fprintf ppf "run aborted:            %s@." reason
    | None -> ())
  end

(* Fetch-source coverage.  Prints nothing for the generate source, so
   generate-sourced reports are byte-identical to pre-fetch builds. *)
let coverage ppf (t : Pipeline.t) =
  match t.Pipeline.coverage with
  | [] -> ()
  | covs ->
      let nlogs = List.length covs in
      let healthy =
        List.length (List.filter Ctlog.Fetch.coverage_complete covs)
      in
      let expected =
        List.fold_left (fun a (c : Ctlog.Fetch.coverage) -> a + c.Ctlog.Fetch.expected) 0 covs
      in
      let delivered =
        List.fold_left (fun a (c : Ctlog.Fetch.coverage) -> a + c.Ctlog.Fetch.delivered) 0 covs
      in
      Format.fprintf ppf "@.== Coverage (fetch source) ==@.";
      Format.fprintf ppf "%s: %d/%d logs, %.1f%% entries@."
        (if healthy = nlogs then "complete" else "degraded")
        healthy nlogs (pct delivered expected);
      List.iter
        (fun (c : Ctlog.Fetch.coverage) ->
          let flags =
            List.concat
              [ (if c.Ctlog.Fetch.split_view then [ "SPLIT VIEW" ] else []);
                (match c.Ctlog.Fetch.abandoned with
                | Some reason -> [ Printf.sprintf "abandoned: %s" reason ]
                | None -> []);
                (if c.Ctlog.Fetch.page_gaps > 0 then
                   [ Printf.sprintf "%d page gap(s)" c.Ctlog.Fetch.page_gaps ]
                 else []);
                (if c.Ctlog.Fetch.quarantined > 0 then
                   [ Printf.sprintf "%d quarantined" c.Ctlog.Fetch.quarantined ]
                 else []) ]
          in
          Format.fprintf ppf "  %-8s %7d/%-7d  requests=%-5d retries=%-4d%s@."
            c.Ctlog.Fetch.log c.Ctlog.Fetch.delivered c.Ctlog.Fetch.expected
            c.Ctlog.Fetch.requests c.Ctlog.Fetch.retries
            (if flags = [] then "" else "  [" ^ String.concat "; " flags ^ "]"))
        covs

let all ppf t =
  summary ppf t;
  Format.fprintf ppf "@.";
  figure2 ppf t;
  Format.fprintf ppf "@.";
  table1 ppf t;
  Format.fprintf ppf "@.";
  table2 ppf t;
  Format.fprintf ppf "@.";
  figure3 ppf t;
  Format.fprintf ppf "@.";
  figure4 ppf t;
  Format.fprintf ppf "@.";
  table11 ppf t;
  Format.fprintf ppf "@.";
  section51 ppf t;
  Format.fprintf ppf "@.";
  ablations ppf t;
  robustness ppf t;
  coverage ppf t
