(** The corpus analysis pipeline: one streaming pass over the generated
    CT dataset, linting every certificate and accumulating the
    aggregates behind every table and figure of the evaluation. *)

type year_stats = {
  mutable issued : int;
  mutable issued_trusted : int;
  mutable alive_in_year : int;      (** valid at Dec 31 of that year *)
  mutable nc : int;
  mutable nc_trusted : int;
}

type type_stats = {
  mutable certs : int;              (** unique NC certs failing this type *)
  mutable by_new_lints : int;       (** detected only via new lints *)
  mutable errors : int;             (** certs with an error-level finding *)
  mutable warnings : int;
  mutable trusted : int;
  mutable recent : int;             (** issued 2024–2025 *)
  mutable alive : int;              (** still valid 2024–2025 *)
}

type issuer_stats = {
  mutable total : int;
  mutable nc_count : int;
  mutable nc_recent : int;
  trust_now : Ctlog.Dataset.trust;
  trust_at_issuance : Ctlog.Dataset.trust;
  region : string;
  aggregate : bool;
}

type validity_class = V_idn | V_other | V_noncompliant | V_normal

type fault_stats = {
  mutable fault_errors : int;
      (** per-certificate failures absorbed by the boundary, all classes *)
  mutable quarantined : int;
  by_class : (string, int) Hashtbl.t;
      (** {!Faults.Error.class_name} -> count *)
  mutable lint_crashes : int;  (** lint-crash delta during this run *)
  mutable degraded : (string * int) list;
      (** lints whose circuit breaker opened, with total crash counts *)
  mutable resumed_at : int;  (** first delivered index; 0 = fresh run *)
  mutable checkpoints_saved : int;
  mutable aborted : string option;
      (** set when --fail-fast or --max-errors stopped the pass early *)
}

type t = {
  scale : int;
  seed : int;
  mutable total : int;
  mutable idncerts : int;
  mutable trusted : int;
  mutable nc_total : int;            (** with effective dates *)
  mutable nc_ignoring_dates : int;   (** the footnote-4 ablation *)
  mutable nc_old_lints_only : int;   (** without the 50 new lints *)
  mutable nc_trusted : int;
  mutable nc_limited : int;
  mutable nc_untrusted : int;
  mutable nc_recent : int;
  mutable nc_alive : int;
  years : (int, year_stats) Hashtbl.t;
  types : (Lint.nc_type, type_stats) Hashtbl.t;
  lints : (string, int) Hashtbl.t;   (** NC certs per lint *)
  issuers : (string, issuer_stats) Hashtbl.t;
  validity : (validity_class, int list ref) Hashtbl.t;
      (** validity periods in days, per class *)
  fields : (string * string, int * int) Hashtbl.t;
      (** (issuer org, field) -> (unicode count, deviant count) *)
  mutable encoding_error_certs : int;      (** §5.1 impact scan *)
  mutable encoding_error_verified : int;   (** chain-verifiable subset *)
  mutable encoding_error_subject : int;
  mutable encoding_error_san : int;
  mutable encoding_error_policies : int;
  faults : fault_stats;
  mutable coverage : Ctlog.Fetch.coverage list;
      (** per-log fetch coverage; [[]] for the generate source *)
}

type source =
  | Generate  (** synthesize the corpus in-process (the default) *)
  | Fetch of Ctlog.Fetch.cfg
      (** fetch it page by page from simulated CT logs over the
          fault-injected transport (DESIGN.md §9) *)

val run :
  ?scale:int ->
  ?seed:int ->
  ?policy:Faults.Policy.t ->
  ?mutator:Faults.Mutator.plan ->
  ?drop:bool ->
  ?resume:bool ->
  ?jobs:int ->
  ?source:source ->
  ?store:string ->
  unit ->
  t
(** [run ()] generates the corpus (default scale
    {!Ctlog.Dataset.default_scale}, seed 1) and computes every
    aggregate.

    [jobs] (default 1) selects parallel execution: the index range is
    split into [jobs] contiguous shards, each processed on its own
    domain (generation is pure per [(seed, index)], see
    {!Ctlog.Dataset.generate_at}), and the per-shard aggregates are
    merged in shard order.  A completed run's aggregate — and therefore
    the rendered report — is byte-identical for every [jobs] value;
    only wall-clock telemetry differs.  An *aborted* run (fail-fast /
    max-errors) is not reproducible across [jobs]: which certificates
    other shards reached before noticing the stop flag is
    timing-dependent.  Checkpoints are kept per shard
    ([file.shard<k>], see {!Faults.Checkpoint.shard_file}); resuming
    reuses a shard cursor only when its saved range matches, so
    changing [jobs] between runs safely restarts mismatched shards
    from their range start.  Quarantine records go to per-shard
    sidecars folded into the main [quarantine-<seed>.jsonl] in index
    order when the pass ends.

    Every certificate is processed behind an error boundary: a failure
    (decode error on a corrupted delivery, a crashing lint that trips
    its breaker, a watchdog timeout, a resource exhaustion) is
    classified into the {!Faults.Error.t} taxonomy, counted in
    [t.faults], optionally written to the {!Faults.Quarantine} sidecar,
    and the pass continues with the next certificate.  [policy]
    controls the boundary ({!Faults.Policy.max_errors},
    [fail_fast], [quarantine_dir], [timeout_seconds],
    [breaker_threshold], checkpointing).  [mutator] corrupts a
    deterministic subset of the corpus before delivery ([drop] delivers
    nothing for those indices instead, so a corrupt run and a drop run
    see byte-identical surviving certificates).  [resume:true] reloads
    [policy.checkpoint_file] and continues from the saved index when
    the checkpoint matches [scale] and [seed].

    With [source = Fetch cfg] the corpus is not regenerated locally:
    it is fetched page by page from [cfg.logs] simulated CT logs
    ({!Ctlog.Fetch.corpus}) — retries, backoff, rate limiting, STH
    consistency verification and split-view quarantine all happen in
    that layer, and [t.coverage] records what each log actually
    delivered.  [mutator]/[drop] corrupt the log contents before
    serving; [policy.checkpoint_file] doubles as the base path for
    per-log fetch cursors ({!Ctlog.Fetch.cursor_file}), so
    [resume:true] continues a killed fetch mid-log.  A completed fetch
    run is byte-identical across [jobs] values and reruns at the same
    seeds; an abandoned log (dead endpoint, split view) yields a
    degraded — but still completed — run, visible via
    {!coverage_degraded}.

    With [store = Some dir] the run lands in the crash-safe on-disk
    store ({!Store.Db}, DESIGN.md §11) instead of being transient:

    - a {e cold} run populates [dir] shard by shard — every certificate
      and its analysis row are appended to checksummed segments and the
      inventory is committed by atomic rename, so killing the process
      at any point leaves a store that {!Store.Db.recover} normalizes;
      re-running the same command resumes from the intact prefix and
      completes to the byte-identical report (the store {e is} the
      checkpoint — [policy.checkpoint_file] is ignored for the analysis
      pass, though a fetch source still uses it for transport cursors);
    - a {e warm} re-run over a complete store with the same lint set
      replays stored rows — no generation, no parsing, no linting —
      and produces the byte-identical report;
    - a re-run after the lint registry changed recomputes {e only} the
      missing lint columns from stored DER and republishes the rows
      and indexes in one atomic commit.

    The store records its identity (scale, seed, source + mutation
    fingerprint); reusing a directory under different parameters raises
    {!Store.Db.Store_error} (binaries exit 2).  Fault records replay
    through the same boundary as live faults, so quarantine and
    robustness accounting match the cold run. *)

val coverage_degraded : t -> bool
(** True when a fetch-sourced run has at least one log with incomplete
    coverage (abandoned, split view, or page gaps) — reports annotate
    the result and binaries exit 4. *)

val year_range : t -> int * int
val get_year : t -> int -> year_stats
val validity_cdf : t -> validity_class -> (int * float) list
(** [(days, cumulative fraction)] points for Figure 3. *)

val top_lints : t -> (string * int) list
(** Lints ordered by NC certificate count (Table 11). *)

val top_issuers_by_nc : t -> (string * issuer_stats) list
(** Issuer organizations ordered by noncompliant certificates
    (Table 2). *)

val use_reference_engine : bool -> unit
(** Select the retained pre-fusion engine ([true]) or the fused
    fact-table engine ([false], the default) for subsequent {!run}
    calls.  The initial value honours [UNICERT_ENGINE=reference].
    Both engines must render byte-identical reports — the differential
    smoke test drives them back to back through this switch. *)

val lints_signature : unit -> string
(** Registry-order lint names joined with [";"] — the engine-interface
    fingerprint stores and recorded benchmarks are validated against. *)

(** {2 Store-row ingest surface}

    The monitor daemon ({!page-index} unicert-monitord) ingests
    certificates incrementally: each fetched entry is analyzed once
    into a row, appended to the store in lockstep with its DER, and
    the row alone feeds the persistent indexes and the live query
    service — replaying committed rows after a restart rebuilds the
    exact same serving state. *)

type row
(** One stored analysis row: the complete deterministic projection of
    a corpus certificate (issuer, lint findings, Unicode
    classification, SAN names, subject material). *)

val analyze_entry : Ctlog.Dataset.entry -> index:int -> row
(** Run the (fused or reference) analysis engine over one delivered
    entry — the same path a full pipeline pass uses, so stored rows
    are byte-identical either way. *)

val row_index : row -> int

val row_org : row -> string
(** Issuer organization. *)

val row_nc : row -> string list
(** NC lint names, ignoring effective dates, registry order. *)

val row_domains : row -> string list
(** SAN dNSNames. *)

val row_cns : row -> string list
(** Subject CommonName values. *)

val row_attrs : row -> string list
(** Subject O/OU/emailAddress values. *)

val encode_row : row -> string
val decode_row : string -> (row, string) result
(** The rows-segment codec.  [decode_row] also accepts the pre-ingest
    8-column form (empty subject material), so stores written by
    earlier builds stay readable. *)

type index_acc
(** Accumulator for the five persistent indexes (issuer, lint, flaw,
    domain, ulabel), fed from rows alone. *)

val fresh_acc : unit -> index_acc
val add_index_entries : index_acc -> row -> unit

val merge_accs : index_acc list -> (string * (string * int list) list) list
(** Merge per-shard accumulators (shard order) into named index entry
    lists ready for {!save_indexes}. *)

val save_indexes :
  Store.Db.t ->
  (string * (string * int list) list) list ->
  (string * string * string) list
(** Seal each named index into the store directory; returns manifest
    [(name, file, sha)] descriptors. *)

val append_fault :
  Store.Db.pair_writer -> index:int -> der:string -> Faults.Error.t -> unit
(** Land a corrupt delivery as a fault record (row ["F"]), preserving
    the fault ledger for warm replays. *)

val store_fingerprint :
  mutator:Faults.Mutator.plan option -> drop:bool -> source:source -> string
(** The identity fingerprint a store records besides (scale, seed) —
    pass the same values a pipeline run would use so daemon-built and
    pipeline-built stores interoperate. *)
