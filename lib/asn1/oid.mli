(** ASN.1 object identifiers. *)

type t = int list
(** An OID as its arc list, e.g. [[2; 5; 4; 3]] for [id-at-commonName].
    Valid OIDs have at least two arcs with the usual first-arc
    constraints. *)

val to_string : t -> string
(** [to_string oid] is the dotted-decimal form, e.g. ["2.5.4.3"]. *)

val of_string : string -> t option
(** [of_string s] parses dotted-decimal notation. *)

val of_string_exn : string -> t
(** Like {!of_string}; raises [Invalid_argument] on parse failure. *)

val compare : t -> t -> int

val equal : t -> t -> bool
(** Structural equality with a physical-equality fast path — interned
    OIDs compare in one pointer test. *)

val register : t -> t
(** [register oid] adds [oid] to the intern table and returns the
    canonical representative.  Must only be called during module
    initialisation (single-threaded); the table is read-only afterwards
    so {!intern} and {!decode} are safe under parallel domains. *)

val intern : t -> t
(** [intern oid] is the registered representative of [oid], or [oid]
    itself if unregistered.  Never mutates the table.  {!decode}
    interns every OID it parses, so decoded well-known OIDs are
    physically equal to their registered constants. *)

val encode : t -> string
(** [encode oid] is the DER content octets (no tag/length). Raises
    [Invalid_argument] if [oid] has fewer than two arcs. *)

val decode : string -> (t, string) result
(** [decode content] parses DER content octets. *)
