type t =
  | Boolean of bool
  | Integer of string
  | Bit_string of int * string
  | Octet_string of string
  | Null
  | Oid of Oid.t
  | Str of Str_type.t * string
  | Utc_time of string
  | Generalized_time of string
  | Sequence of t list
  | Set of t list
  | Implicit of int * string
  | Explicit of int * t list

type error = { offset : int; reason : string }

let pp_error ppf e = Format.fprintf ppf "offset %d: %s" e.offset e.reason

type config = { forbid_nonminimal_length : bool; max_depth : int }

let strict = { forbid_nonminimal_length = true; max_depth = 64 }
let lenient = { forbid_nonminimal_length = false; max_depth = 64 }

let rec encode v =
  match v with
  | Boolean b -> Writer.boolean b
  (* Integer content octets are authoritative (two's complement); they
     are emitted verbatim rather than re-normalized as unsigned, which
     would corrupt negative values. *)
  | Integer bytes -> Writer.universal 2 (if bytes = "" then "\x00" else bytes)
  | Bit_string (unused, s) -> Writer.bit_string ~unused s
  | Octet_string s -> Writer.octet_string s
  | Null -> Writer.null
  | Oid o -> Writer.oid o
  | Str (st, raw) -> Writer.str st raw
  | Utc_time s -> Writer.universal 23 s
  | Generalized_time s -> Writer.universal 24 s
  | Sequence vs -> Writer.sequence (List.map encode vs)
  | Set vs -> Writer.set_unsorted (List.map encode vs)
  | Implicit (n, raw) -> Writer.context n raw
  | Explicit (n, vs) ->
      Writer.context ~constructed:true n (String.concat "" (List.map encode vs))

exception Fail of error

let fail offset reason = raise (Fail { offset; reason })

(* Parse identifier + length octets; returns
   (class, constructed, tag_number, content_offset, content_length). *)
let header config bytes offset =
  let n = String.length bytes in
  if offset >= n then fail offset "truncated: no identifier octet";
  let id = Char.code bytes.[offset] in
  let cls = id lsr 6 in
  let constructed = id land 0x20 <> 0 in
  let tag = id land 0x1F in
  if tag = 0x1F then fail offset "multi-byte tags unsupported";
  let lpos = offset + 1 in
  if lpos >= n then fail lpos "truncated: no length octet";
  let l0 = Char.code bytes.[lpos] in
  if l0 < 0x80 then (cls, constructed, tag, lpos + 1, l0)
  else if l0 = 0x80 then fail lpos "indefinite length not allowed in DER"
  else begin
    let count = l0 land 0x7F in
    if count > 4 then fail lpos "length too large";
    if lpos + count >= n then fail lpos "truncated length octets";
    let len = ref 0 in
    for i = 1 to count do
      len := (!len lsl 8) lor Char.code bytes.[lpos + i]
    done;
    if config.forbid_nonminimal_length then begin
      if !len < 0x80 then fail lpos "non-minimal length encoding";
      if count > 1 && Char.code bytes.[lpos + 1] = 0 then
        fail lpos "non-minimal length encoding"
    end;
    (cls, constructed, tag, lpos + 1 + count, !len)
  end

let rec value config depth bytes offset =
  if depth > config.max_depth then fail offset "maximum nesting depth exceeded";
  let cls, constructed, tag, coff, clen = header config bytes offset in
  if coff + clen > String.length bytes then fail coff "content overruns input";
  let content = String.sub bytes coff clen in
  let next = coff + clen in
  let parsed =
    match cls with
    | 0 -> universal config depth constructed tag content coff
    | 2 ->
        if constructed then Explicit (tag, children config depth bytes coff next)
        else Implicit (tag, content)
    | 1 | 3 -> fail offset "application/private class unsupported in X.509"
    | _ -> assert false
  in
  (parsed, next)

and universal config depth constructed tag content coff =
  match tag with
  | 1 ->
      if String.length content <> 1 then fail coff "BOOLEAN must be one octet"
      else Boolean (content <> "\x00")
  | 2 ->
      if content = "" then fail coff "empty INTEGER" else Integer content
  | 3 ->
      if content = "" then fail coff "BIT STRING missing unused-bits octet"
      else begin
        let unused = Char.code content.[0] in
        if unused > 7 then fail coff "BIT STRING unused-bits octet > 7";
        if unused > 0 && String.length content = 1 then
          fail coff "BIT STRING with unused bits but no content";
        Bit_string (unused, String.sub content 1 (String.length content - 1))
      end
  | 4 -> Octet_string content
  | 5 -> if content = "" then Null else fail coff "NULL with content"
  | 6 -> (
      match Oid.decode content with
      | Ok o -> Oid o
      | Error m -> fail coff ("bad OID: " ^ m))
  | 16 ->
      if not constructed then fail coff "SEQUENCE must be constructed"
      else Sequence (children config depth content 0 (String.length content))
  | 17 ->
      if not constructed then fail coff "SET must be constructed"
      else Set (children config depth content 0 (String.length content))
  | 23 -> Utc_time content
  | 24 -> Generalized_time content
  | n -> (
      match Str_type.of_tag n with
      | Some st -> Str (st, content)
      | None -> fail coff (Printf.sprintf "unsupported universal tag %d" n))

and children config depth bytes offset stop =
  let rec go offset acc =
    if offset = stop then List.rev acc
    else if offset > stop then fail offset "child overruns parent"
    else
      let v, next = value config (depth + 1) bytes offset in
      go next (v :: acc)
  in
  go offset []

let decode_prefix ?(config = strict) bytes offset =
  try Ok (value config 0 bytes offset) with Fail e -> Error e

let decode ?(config = strict) bytes =
  match decode_prefix ~config bytes 0 with
  | Error _ as e -> e
  | Ok (v, next) ->
      if next = String.length bytes then Ok v
      else Error { offset = next; reason = "trailing bytes after value" }

let int_of_integer = function
  | Integer bytes when String.length bytes <= 8 ->
      let v = ref (if Char.code bytes.[0] >= 0x80 then -1 else 0) in
      String.iter (fun c -> v := (!v lsl 8) lor Char.code c) bytes;
      Some !v
  | Integer _ -> None
  | Boolean _ | Bit_string _ | Octet_string _ | Null | Oid _ | Str _ | Utc_time _
  | Generalized_time _ | Sequence _ | Set _ | Implicit _ | Explicit _ ->
      None

let integer_of_int n =
  if n = 0 then Integer "\x00"
  else begin
    let rec bytes n acc =
      if n = 0 || n = -1 then acc else bytes (n asr 8) (Char.chr (n land 0xFF) :: acc)
    in
    let b = bytes n [] in
    let b = if b = [] then [ (if n < 0 then '\xFF' else '\x00') ] else b in
    let s = String.init (List.length b) (List.nth b) in
    let s =
      if n < 0 then if Char.code s.[0] < 0x80 then "\xFF" ^ s else s
      else if Char.code s.[0] >= 0x80 then "\x00" ^ s
      else s
    in
    Integer s
  end

let str_utf8 st text =
  let cps = Unicode.Codec.cps_of_utf8 text in
  match Str_type.encode_value st cps with
  | Ok raw -> Str (st, raw)
  | Error m -> invalid_arg (Printf.sprintf "Value.str_utf8 (%s): %s" (Str_type.name st) m)

let str_raw st bytes = Str (st, bytes)

let hex s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

let rec pp ppf v =
  match v with
  | Boolean b -> Format.fprintf ppf "BOOLEAN %b" b
  | Integer bytes -> Format.fprintf ppf "INTEGER 0x%s" (hex bytes)
  | Bit_string (u, s) -> Format.fprintf ppf "BIT STRING (%d unused) 0x%s" u (hex s)
  | Octet_string s -> Format.fprintf ppf "OCTET STRING 0x%s" (hex s)
  | Null -> Format.fprintf ppf "NULL"
  | Oid o -> Format.fprintf ppf "OID %s" (Oid.to_string o)
  | Str (st, raw) -> Format.fprintf ppf "%s %S" (Str_type.name st) raw
  | Utc_time s -> Format.fprintf ppf "UTCTime %S" s
  | Generalized_time s -> Format.fprintf ppf "GeneralizedTime %S" s
  | Sequence vs -> pp_group ppf "SEQUENCE" vs
  | Set vs -> pp_group ppf "SET" vs
  | Implicit (n, raw) -> Format.fprintf ppf "[%d] 0x%s" n (hex raw)
  | Explicit (n, vs) -> pp_group ppf (Printf.sprintf "[%d]" n) vs

and pp_group ppf label vs =
  Format.fprintf ppf "@[<v 2>%s {" label;
  List.iter (fun v -> Format.fprintf ppf "@,%a" pp v) vs;
  Format.fprintf ppf "@]@,}"
