type t =
  | Boolean of bool
  | Integer of string
  | Bit_string of int * string
  | Octet_string of string
  | Null
  | Oid of Oid.t
  | Str of Str_type.t * string
  | Utc_time of string
  | Generalized_time of string
  | Sequence of t list
  | Set of t list
  | Implicit of int * string
  | Explicit of int * t list

type error = { offset : int; reason : string }

let pp_error ppf e = Format.fprintf ppf "offset %d: %s" e.offset e.reason

type config = { forbid_nonminimal_length : bool; max_depth : int }

let strict = { forbid_nonminimal_length = true; max_depth = 64 }
let lenient = { forbid_nonminimal_length = false; max_depth = 64 }

(* Single-buffer DER emission.  A bottom-up pass sizes every node, then
   identifier, length and content are written straight into one
   [Bytes] — nested content is copied exactly once, not once per
   enclosing constructor as the naive concat encoder did.  Leaf content
   is a [pre ^ body] pair so BIT STRINGs need no intermediate string
   either. *)

type enc =
  | E_leaf of { tag : int; pre : string; body : string }
  | E_node of { tag : int; len : int; children : enc list }

let len_octets n =
  if n < 0x80 then 1
  else begin
    let rec count n acc = if n = 0 then acc else count (n lsr 8) (acc + 1) in
    1 + count n 0
  end

let enc_size = function
  | E_leaf { pre; body; _ } ->
      let l = String.length pre + String.length body in
      1 + len_octets l + l
  | E_node { len; _ } -> 1 + len_octets len + len

let check_tag what n =
  if n > 30 then
    invalid_arg (Printf.sprintf "Value.encode: multi-byte %s tags unsupported" what)

let rec plan v =
  match v with
  | Boolean b -> E_leaf { tag = 0x01; pre = ""; body = (if b then "\xFF" else "\x00") }
  (* Integer content octets are authoritative (two's complement); they
     are emitted verbatim rather than re-normalized as unsigned, which
     would corrupt negative values. *)
  | Integer bytes ->
      E_leaf { tag = 0x02; pre = ""; body = (if bytes = "" then "\x00" else bytes) }
  | Bit_string (unused, s) ->
      E_leaf { tag = 0x03; pre = String.make 1 (Char.chr unused); body = s }
  | Octet_string s -> E_leaf { tag = 0x04; pre = ""; body = s }
  | Null -> E_leaf { tag = 0x05; pre = ""; body = "" }
  | Oid o -> E_leaf { tag = 0x06; pre = ""; body = Oid.encode o }
  | Str (st, raw) -> E_leaf { tag = Str_type.tag st; pre = ""; body = raw }
  | Utc_time s -> E_leaf { tag = 23; pre = ""; body = s }
  | Generalized_time s -> E_leaf { tag = 24; pre = ""; body = s }
  | Sequence vs -> node 0x30 (List.map plan vs)
  | Set vs -> node 0x31 (List.map plan vs)
  | Implicit (n, raw) ->
      check_tag "context" n;
      E_leaf { tag = 0x80 lor n; pre = ""; body = raw }
  | Explicit (n, vs) ->
      check_tag "context" n;
      node (0xA0 lor n) (List.map plan vs)

and node tag children =
  let len = List.fold_left (fun acc c -> acc + enc_size c) 0 children in
  E_node { tag; len; children }

let write_len b pos n =
  if n < 0x80 then begin
    Bytes.unsafe_set b pos (Char.unsafe_chr n);
    pos + 1
  end
  else begin
    let rec count n acc = if n = 0 then acc else count (n lsr 8) (acc + 1) in
    let c = count n 0 in
    Bytes.unsafe_set b pos (Char.unsafe_chr (0x80 lor c));
    for i = 1 to c do
      Bytes.unsafe_set b (pos + i) (Char.unsafe_chr ((n lsr (8 * (c - i))) land 0xFF))
    done;
    pos + 1 + c
  end

let rec write b pos e =
  match e with
  | E_leaf { tag; pre; body } ->
      Bytes.unsafe_set b pos (Char.unsafe_chr tag);
      let pos = write_len b (pos + 1) (String.length pre + String.length body) in
      Bytes.blit_string pre 0 b pos (String.length pre);
      let pos = pos + String.length pre in
      Bytes.blit_string body 0 b pos (String.length body);
      pos + String.length body
  | E_node { tag; len; children } ->
      Bytes.unsafe_set b pos (Char.unsafe_chr tag);
      let pos = write_len b (pos + 1) len in
      List.fold_left (fun pos c -> write b pos c) pos children

let encode v =
  let e = plan v in
  let b = Bytes.create (enc_size e) in
  let _end : int = write b 0 e in
  Bytes.unsafe_to_string b

exception Fail of error

let fail offset reason = raise (Fail { offset; reason })

(* Parse identifier + length octets; returns
   (class, constructed, tag_number, content_offset, content_length).

   The parser walks the input in place: constructed nodes hand their
   children an (offset, stop) window into the original buffer instead
   of copying content out with [String.sub] at every nesting level.
   Reported error offsets stay relative to the nearest enclosing
   SEQUENCE/SET content — [base] is that content's start and [limit]
   its end, so diagnostics are identical to the copying parser's. *)
let header config ~base ~limit bytes offset =
  if offset >= limit then fail (offset - base) "truncated: no identifier octet";
  let id = Char.code bytes.[offset] in
  let cls = id lsr 6 in
  let constructed = id land 0x20 <> 0 in
  let tag = id land 0x1F in
  if tag = 0x1F then fail (offset - base) "multi-byte tags unsupported";
  let lpos = offset + 1 in
  if lpos >= limit then fail (lpos - base) "truncated: no length octet";
  let l0 = Char.code bytes.[lpos] in
  if l0 < 0x80 then (cls, constructed, tag, lpos + 1, l0)
  else if l0 = 0x80 then fail (lpos - base) "indefinite length not allowed in DER"
  else begin
    let count = l0 land 0x7F in
    if count > 4 then fail (lpos - base) "length too large";
    if lpos + count >= limit then fail (lpos - base) "truncated length octets";
    let len = ref 0 in
    for i = 1 to count do
      len := (!len lsl 8) lor Char.code bytes.[lpos + i]
    done;
    if config.forbid_nonminimal_length then begin
      if !len < 0x80 then fail (lpos - base) "non-minimal length encoding";
      if count > 1 && Char.code bytes.[lpos + 1] = 0 then
        fail (lpos - base) "non-minimal length encoding"
    end;
    (cls, constructed, tag, lpos + 1 + count, !len)
  end

let rec value config depth ~base ~limit bytes offset =
  if depth > config.max_depth then
    fail (offset - base) "maximum nesting depth exceeded";
  let cls, constructed, tag, coff, clen = header config ~base ~limit bytes offset in
  if coff + clen > limit then fail (coff - base) "content overruns input";
  let next = coff + clen in
  let parsed =
    match cls with
    | 0 -> universal config depth ~base constructed tag bytes coff clen
    | 2 ->
        if constructed then
          Explicit (tag, children config depth ~base ~limit bytes coff next)
        else Implicit (tag, String.sub bytes coff clen)
    | 1 | 3 -> fail (offset - base) "application/private class unsupported in X.509"
    | _ -> assert false
  in
  (parsed, next)

and universal config depth ~base constructed tag bytes coff clen =
  let rcoff = coff - base in
  match tag with
  | 1 ->
      if clen <> 1 then fail rcoff "BOOLEAN must be one octet"
      else Boolean (String.unsafe_get bytes coff <> '\x00')
  | 2 -> if clen = 0 then fail rcoff "empty INTEGER" else Integer (String.sub bytes coff clen)
  | 3 ->
      if clen = 0 then fail rcoff "BIT STRING missing unused-bits octet"
      else begin
        let unused = Char.code bytes.[coff] in
        if unused > 7 then fail rcoff "BIT STRING unused-bits octet > 7";
        if unused > 0 && clen = 1 then
          fail rcoff "BIT STRING with unused bits but no content";
        Bit_string (unused, String.sub bytes (coff + 1) (clen - 1))
      end
  | 4 -> Octet_string (String.sub bytes coff clen)
  | 5 -> if clen = 0 then Null else fail rcoff "NULL with content"
  | 6 -> (
      match Oid.decode (String.sub bytes coff clen) with
      | Ok o -> Oid o
      | Error m -> fail rcoff ("bad OID: " ^ m))
  | 16 ->
      if not constructed then fail rcoff "SEQUENCE must be constructed"
      else
        Sequence
          (children config depth ~base:coff ~limit:(coff + clen) bytes coff (coff + clen))
  | 17 ->
      if not constructed then fail rcoff "SET must be constructed"
      else
        Set (children config depth ~base:coff ~limit:(coff + clen) bytes coff (coff + clen))
  | 23 -> Utc_time (String.sub bytes coff clen)
  | 24 -> Generalized_time (String.sub bytes coff clen)
  | n -> (
      match Str_type.of_tag n with
      | Some st -> Str (st, String.sub bytes coff clen)
      | None -> fail rcoff (Printf.sprintf "unsupported universal tag %d" n))

and children config depth ~base ~limit bytes offset stop =
  let rec go offset acc =
    if offset = stop then List.rev acc
    else if offset > stop then fail (offset - base) "child overruns parent"
    else
      let v, next = value config (depth + 1) ~base ~limit bytes offset in
      go next (v :: acc)
  in
  go offset []

let decode_prefix ?(config = strict) bytes offset =
  try Ok (value config 0 ~base:0 ~limit:(String.length bytes) bytes offset)
  with Fail e -> Error e

let decode ?(config = strict) bytes =
  match decode_prefix ~config bytes 0 with
  | Error _ as e -> e
  | Ok (v, next) ->
      if next = String.length bytes then Ok v
      else Error { offset = next; reason = "trailing bytes after value" }

let int_of_integer = function
  | Integer bytes when String.length bytes <= 8 ->
      let v = ref (if Char.code bytes.[0] >= 0x80 then -1 else 0) in
      String.iter (fun c -> v := (!v lsl 8) lor Char.code c) bytes;
      Some !v
  | Integer _ -> None
  | Boolean _ | Bit_string _ | Octet_string _ | Null | Oid _ | Str _ | Utc_time _
  | Generalized_time _ | Sequence _ | Set _ | Implicit _ | Explicit _ ->
      None

let integer_of_int n =
  if n = 0 then Integer "\x00"
  else begin
    let rec bytes n acc =
      if n = 0 || n = -1 then acc else bytes (n asr 8) (Char.chr (n land 0xFF) :: acc)
    in
    let b = bytes n [] in
    let b = if b = [] then [ (if n < 0 then '\xFF' else '\x00') ] else b in
    let s = String.init (List.length b) (List.nth b) in
    let s =
      if n < 0 then if Char.code s.[0] < 0x80 then "\xFF" ^ s else s
      else if Char.code s.[0] >= 0x80 then "\x00" ^ s
      else s
    in
    Integer s
  end

let str_utf8 st text =
  let cps = Unicode.Codec.cps_of_utf8 text in
  match Str_type.encode_value st cps with
  | Ok raw -> Str (st, raw)
  | Error m -> invalid_arg (Printf.sprintf "Value.str_utf8 (%s): %s" (Str_type.name st) m)

let str_raw st bytes = Str (st, bytes)

let hex s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

let rec pp ppf v =
  match v with
  | Boolean b -> Format.fprintf ppf "BOOLEAN %b" b
  | Integer bytes -> Format.fprintf ppf "INTEGER 0x%s" (hex bytes)
  | Bit_string (u, s) -> Format.fprintf ppf "BIT STRING (%d unused) 0x%s" u (hex s)
  | Octet_string s -> Format.fprintf ppf "OCTET STRING 0x%s" (hex s)
  | Null -> Format.fprintf ppf "NULL"
  | Oid o -> Format.fprintf ppf "OID %s" (Oid.to_string o)
  | Str (st, raw) -> Format.fprintf ppf "%s %S" (Str_type.name st) raw
  | Utc_time s -> Format.fprintf ppf "UTCTime %S" s
  | Generalized_time s -> Format.fprintf ppf "GeneralizedTime %S" s
  | Sequence vs -> pp_group ppf "SEQUENCE" vs
  | Set vs -> pp_group ppf "SET" vs
  | Implicit (n, raw) -> Format.fprintf ppf "[%d] 0x%s" n (hex raw)
  | Explicit (n, vs) -> pp_group ppf (Printf.sprintf "[%d]" n) vs

and pp_group ppf label vs =
  Format.fprintf ppf "@[<v 2>%s {" label;
  List.iter (fun v -> Format.fprintf ppf "@,%a" pp v) vs;
  Format.fprintf ppf "@]@,}"
