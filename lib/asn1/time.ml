type t = { year : int; month : int; day : int; hour : int; minute : int; second : int }

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month year month =
  match month with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap year then 29 else 28
  | _ -> invalid_arg "Time.days_in_month"

let make ?(hour = 0) ?(minute = 0) ?(second = 0) year month day =
  if month < 1 || month > 12 then invalid_arg "Time.make: month";
  if day < 1 || day > days_in_month year month then invalid_arg "Time.make: day";
  if hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 || second > 60
  then invalid_arg "Time.make: time of day";
  { year; month; day; hour; minute; second }

let compare a b =
  Stdlib.compare
    (a.year, a.month, a.day, a.hour, a.minute, a.second)
    (b.year, b.month, b.day, b.hour, b.minute, b.second)

let equal a b = compare a b = 0

(* Day count from the proleptic Gregorian epoch 0001-01-01. *)
let to_days t =
  let y = t.year - 1 in
  let leap_days = (y / 4) - (y / 100) + (y / 400) in
  let month_days = ref 0 in
  for m = 1 to t.month - 1 do
    month_days := !month_days + days_in_month t.year m
  done;
  (y * 365) + leap_days + !month_days + (t.day - 1)

let days_between a b = to_days b - to_days a

let add_days t n =
  let rec forward t n =
    if n = 0 then t
    else
      let dim = days_in_month t.year t.month in
      if t.day + n <= dim then { t with day = t.day + n }
      else
        let consumed = dim - t.day + 1 in
        let t =
          if t.month = 12 then { t with year = t.year + 1; month = 1; day = 1 }
          else { t with month = t.month + 1; day = 1 }
        in
        forward t (n - consumed)
  in
  if n >= 0 then forward t n
  else
    let rec back t n =
      if n = 0 then t
      else if t.day - 1 >= -n then { t with day = t.day + n }
      else begin
        (* Cross into the previous month, consuming [t.day] days. *)
        let consumed = t.day in
        let t =
          if t.month = 1 then
            { t with year = t.year - 1; month = 12; day = days_in_month (t.year - 1) 12 }
          else { t with month = t.month - 1; day = days_in_month t.year (t.month - 1) }
        in
        back t (n + consumed)
      end
    in
    back t n

(* Hand-rolled digit emission: these run twice per certificate on the
   TBS-encode hot path, where [Printf.sprintf] costs more than the rest
   of the validity encoding combined. *)
let put2 b i n =
  Bytes.unsafe_set b i (Char.unsafe_chr (48 + (n / 10)));
  Bytes.unsafe_set b (i + 1) (Char.unsafe_chr (48 + (n mod 10)))

let to_utctime t =
  let b = Bytes.create 13 in
  put2 b 0 (t.year mod 100);
  put2 b 2 t.month;
  put2 b 4 t.day;
  put2 b 6 t.hour;
  put2 b 8 t.minute;
  put2 b 10 t.second;
  Bytes.unsafe_set b 12 'Z';
  Bytes.unsafe_to_string b

let to_generalized t =
  if t.year < 0 || t.year > 9999 then
    Printf.sprintf "%04d%02d%02d%02d%02d%02dZ" t.year t.month t.day t.hour
      t.minute t.second
  else begin
    let b = Bytes.create 15 in
    put2 b 0 (t.year / 100);
    put2 b 2 (t.year mod 100);
    put2 b 4 t.month;
    put2 b 6 t.day;
    put2 b 8 t.hour;
    put2 b 10 t.minute;
    put2 b 12 t.second;
    Bytes.unsafe_set b 14 'Z';
    Bytes.unsafe_to_string b
  end

let digits s i n =
  let rec go i n acc =
    if n = 0 then Some acc
    else
      match s.[i] with
      | '0' .. '9' -> go (i + 1) (n - 1) ((acc * 10) + (Char.code s.[i] - Char.code '0'))
      | _ -> None
  in
  if i + n <= String.length s then go i n 0 else None

let of_utctime s =
  if String.length s <> 13 || s.[12] <> 'Z' then Error "UTCTime must be YYMMDDHHMMSSZ"
  else
    match
      (digits s 0 2, digits s 2 2, digits s 4 2, digits s 6 2, digits s 8 2, digits s 10 2)
    with
    | Some yy, Some mo, Some d, Some h, Some mi, Some se -> (
        let year = if yy >= 50 then 1900 + yy else 2000 + yy in
        try Ok (make ~hour:h ~minute:mi ~second:se year mo d)
        with Invalid_argument m -> Error m)
    | _ -> Error "UTCTime: non-digit field"

let of_generalized s =
  if String.length s <> 15 || s.[14] <> 'Z' then
    Error "GeneralizedTime must be YYYYMMDDHHMMSSZ"
  else
    match
      (digits s 0 4, digits s 4 2, digits s 6 2, digits s 8 2, digits s 10 2, digits s 12 2)
    with
    | Some y, Some mo, Some d, Some h, Some mi, Some se -> (
        try Ok (make ~hour:h ~minute:mi ~second:se y mo d)
        with Invalid_argument m -> Error m)
    | _ -> Error "GeneralizedTime: non-digit field"

let pp ppf t =
  Format.fprintf ppf "%04d-%02d-%02dT%02d:%02d:%02dZ" t.year t.month t.day t.hour
    t.minute t.second

let ( <= ) a b = compare a b <= 0
let ( < ) a b = compare a b < 0
