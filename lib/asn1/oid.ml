type t = int list

let to_string oid = String.concat "." (List.map string_of_int oid)

let of_string s =
  if s = "" then None
  else
    let parts = String.split_on_char '.' s in
    let parse acc p =
      match acc with
      | None -> None
      | Some arcs -> (
          match int_of_string_opt p with
          | Some n when n >= 0 -> Some (n :: arcs)
          | Some _ | None -> None)
    in
    match List.fold_left parse (Some []) parts with
    | Some arcs when List.length arcs >= 2 -> Some (List.rev arcs)
    | Some _ | None -> None

let of_string_exn s =
  match of_string s with
  | Some oid -> oid
  | None -> invalid_arg (Printf.sprintf "Oid.of_string_exn: %S" s)

let compare = Stdlib.compare

(* Well-known OIDs are interned at module-init time (see [register]),
   so the hot comparisons in extension and DN decoding short-circuit on
   physical equality. *)
let equal a b = a == b || compare a b = 0

(* Intern table.  [register] may only be called during module
   initialisation (single-threaded by construction), which leaves the
   table read-only — and therefore safe under [Par] domains — for the
   whole run.  [intern] never mutates. *)
let intern_tbl : (t, t) Hashtbl.t = Hashtbl.create 64

(* Base-128 with high bit as continuation. *)
let encode_arc buf n =
  if n < 0x80 then Buffer.add_char buf (Char.chr n)
  else begin
    let rec bytes n acc = if n = 0 then acc else bytes (n lsr 7) ((n land 0x7F) :: acc) in
    let parts = bytes n [] in
    let rec emit = function
      | [] -> ()
      | [ last ] -> Buffer.add_char buf (Char.chr last)
      | b :: rest ->
          Buffer.add_char buf (Char.chr (b lor 0x80));
          emit rest
    in
    emit parts
  end

let encode_uncached oid =
  match oid with
  | a :: b :: rest ->
      let buf = Buffer.create 8 in
      encode_arc buf ((a * 40) + b);
      List.iter (encode_arc buf) rest;
      Buffer.contents buf
  | [ _ ] | [] -> invalid_arg "Oid.encode: at least two arcs required"

(* DER content octets for every registered OID, computed once at
   registration (module init) — certificate emission re-encodes the
   same dozen algorithm/extension OIDs for every certificate. *)
let encoded_tbl : (t, string) Hashtbl.t = Hashtbl.create 64

let register oid =
  match Hashtbl.find_opt intern_tbl oid with
  | Some o -> o
  | None ->
      Hashtbl.replace intern_tbl oid oid;
      Hashtbl.replace encoded_tbl oid (encode_uncached oid);
      oid

let intern oid =
  match Hashtbl.find_opt intern_tbl oid with Some o -> o | None -> oid

let encode oid =
  match Hashtbl.find_opt encoded_tbl oid with
  | Some s -> s
  | None -> encode_uncached oid

(* An arc longer than 9 base-128 bytes cannot fit a 63-bit int; the
   old accumulator would silently overflow instead of rejecting. *)
let max_arc_bytes = 9

let decode content =
  let n = String.length content in
  if n = 0 then Error "empty OID content"
  else
    let rec arcs i acc cur len =
      if i >= n then
        if len = 0 then Ok (List.rev acc) else Error "truncated OID arc"
      else
        let b = Char.code content.[i] in
        if len = 0 && b = 0x80 then Error "non-minimal OID arc"
        else if len >= max_arc_bytes then Error "OID arc too long"
        else
          let cur = (cur lsl 7) lor (b land 0x7F) in
          if b land 0x80 = 0 then arcs (i + 1) (cur :: acc) 0 0
          else arcs (i + 1) acc cur (len + 1)
    in
    match arcs 0 [] 0 0 with
    | Error _ as e -> e
    | Ok [] -> Error "empty OID"
    | Ok (first :: rest) ->
        let a = if first < 40 then 0 else if first < 80 then 1 else 2 in
        let b = first - (a * 40) in
        Ok (intern (a :: b :: rest))
