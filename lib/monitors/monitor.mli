(** CT monitor simulators (§6.1).

    Each profile reproduces one public monitor's indexing and query
    behaviour from Table 6: which fields it indexes, how it handles
    case, Unicode and fuzzy queries, whether it validates U-labels, and
    whether special characters break its indexing. *)

type profile = {
  name : string;
  indexes_subject_attrs : bool;
      (** Crt.sh also indexes O/OU/emailAddress, not just CN+SAN. *)
  fuzzy_search : bool;
  unicode_search : bool;  (** accepts non-ASCII query input *)
  ulabel_check : bool;    (** validates U-label legality before querying *)
  punycode_ccidn : bool;  (** accepts A-label queries under IDN ccTLDs *)
  cn_split_slash : bool;
      (** SSLMate: match only the CN substring before "/" (P1.4) *)
  cn_drop_with_space : bool;
      (** SSLMate: ignore CNs containing a space (P1.4) *)
  index_drops_special : bool;
      (** entries with control characters never enter the index *)
}

type fields = {
  f_cns : string list;    (** subject CommonName values *)
  f_sans : string list;   (** SAN dNSName entries *)
  f_attrs : string list;  (** O / OU / emailAddress values *)
}
(** The subject material a monitor indexes, independent of whether it
    came from a parsed certificate or a stored analysis row — the
    incremental-ingest surface the monitor daemon feeds from store
    rows. *)

val fields_of_cert : X509.Certificate.t -> fields

val keys_of_fields : profile -> fields -> string list
(** The folded index keys this monitor derives from one certificate's
    fields: CN filtering (slash split, space drop), subject attributes
    when indexed, special-character dropping, case folding. *)

val prepare_query : profile -> string -> (string, string) result
(** [prepare_query prof q] is the lookup string the monitor would
    actually search for — U-labels converted to A-labels — or [Error
    reason] when the monitor refuses the input (Unicode unsupported,
    U-label/A-label legality check failed, Punycode query under an IDN
    ccTLD on a profile that rejects those). *)

val matches : profile -> needle:string -> string list -> bool
(** Whether a key set matches a prepared, folded needle under the
    profile's exact/substring semantics. *)

type instance

val create : profile -> instance
val profile : instance -> profile

val ingest : instance -> X509.Certificate.t -> unit
(** [ingest m cert] indexes a logged certificate. *)

val ingest_log : instance -> Ctlog.Log.t -> unit
(** Index every parseable entry of a CT log. *)

type query_result =
  | Refused of string        (** input rejected before searching *)
  | Results of X509.Certificate.t list

val search : instance -> string -> query_result
(** [search m q] looks [q] up the way the monitor would: case folding,
    optional U-label validation and conversion, exact or substring
    matching. *)

val crtsh : profile
val sslmate : profile
val facebook : profile
val entrust : profile
val merklemap : profile

val all : profile list

val profile_key : profile -> string
(** Short stable key (["crtsh"], ["sslmate"], ...) used by the query
    protocol and CLI flags. *)

val of_key : string -> profile option
