(** Behavioural audit of the monitor simulators — regenerates Table 6
    by issuing the paper's probe queries against each monitor, and
    demonstrates the CT-monitor-misleading threat (§6.1). *)

type capability = Yes | No | Not_applicable

val capability_symbol : capability -> string

type row = {
  monitor : string;
  case_sensitive : capability;
  unicode_search : capability;
  fuzzy_search : capability;
  ulabel_check : capability;
  punycode_idn : capability;
  punycode_idn_cctld : capability;
  fails_special_unicode : capability;
}

val table6 : unit -> row list
(** Probe all five monitors and report the Table 6 matrix. *)

type concealment = {
  monitor : string;
  forged_cn : string;
  owner_query : string;
  concealed : bool;  (** the forged certificate does not surface *)
}

val concealment_demo : unit -> concealment list
(** The misleading-CT-monitors threat: forge certificates whose special
    characters hide them from each monitor's owner-side queries. *)

type recall = { monitor : string; found : int; sampled : int }

val corpus_recall :
  ?scale:int ->
  ?seed:int ->
  ?mutator:Faults.Mutator.plan ->
  ?drop:bool ->
  unit ->
  recall list
(** The Appendix F.2 query battery, quantified: ingest the noncompliant
    Unicerts of a generated corpus sample into each monitor, query each
    by its own primary SAN value, and count how many surface — the
    monitors that drop special characters or lack fuzzy search lose
    certificates (the "Fail to return" column of Table 6, measured).

    [mutator] corrupts a deterministic subset of the corpus before
    delivery; corrupted blobs never parse, so they are excluded and
    recall is computed over the survivors only.  [drop] delivers
    nothing for those indices instead ([--drop-faulty] semantics) —
    the survivor set, and therefore every recall number, is identical
    between the two modes. *)

val render : Format.formatter -> unit
