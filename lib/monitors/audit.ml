type capability = Yes | No | Not_applicable

let capability_symbol = function Yes -> "yes" | No -> "no" | Not_applicable -> "-"

type row = {
  monitor : string;
  case_sensitive : capability;
  unicode_search : capability;
  fuzzy_search : capability;
  ulabel_check : capability;
  punycode_idn : capability;
  punycode_idn_cctld : capability;
  fails_special_unicode : capability;
}

let issuer_key = X509.Certificate.mock_keypair ~seed:"audit-ca" ()

let cert_for ?(cn = None) domains =
  let cn_value =
    match (cn, domains) with
    | Some c, _ -> c
    | None, d :: _ -> d
    | None, [] -> invalid_arg "Audit.cert_for: no CN and no domains"
  in
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Audit CA") ])
      ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, cn_value) ])
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki issuer_key)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        [ X509.Extension.subject_alt_name
            (List.map (fun d -> X509.General_name.Dns_name d) domains) ]
      ()
  in
  X509.Certificate.sign issuer_key tbs

let found result target =
  match result with
  | Monitor.Refused _ -> false
  | Monitor.Results certs ->
      List.exists
        (fun c -> List.mem target (X509.Certificate.san_dns_names c))
        certs

let probe prof =
  let m = Monitor.create prof in
  (* Seed the index. *)
  let case_cert = cert_for [ "case.example.com" ] in
  let fuzzy_cert = cert_for [ "fuzzy-target.example.com" ] in
  let idn_cert = cert_for [ "xn--bcher-kva.example.com" ] in
  let cctld_cert = cert_for [ "xn--bcher-kva.xn--p1ai" ] in
  let special_cert = cert_for [ "special\x01.victim-corp.com" ] in
  List.iter (Monitor.ingest m)
    [ case_cert; fuzzy_cert; idn_cert; cctld_cert; special_cert ];
  let case_sensitive =
    if found (Monitor.search m "CASE.EXAMPLE.COM") "case.example.com" then No else Yes
  in
  let unicode_search =
    match Monitor.search m "b\xC3\xBCcher.example.com" with
    | Monitor.Refused _ -> No
    | Monitor.Results _ -> Yes
  in
  let fuzzy_search =
    if found (Monitor.search m "fuzzy-target") "fuzzy-target.example.com" then Yes
    else No
  in
  let ulabel_check =
    (* A deceptive A-label (decodes to LRM + "www"): checked monitors
       refuse the query. *)
    match Monitor.search m "xn--www-hn0a.example.com" with
    | Monitor.Refused _ -> Yes
    | Monitor.Results _ -> No
  in
  let punycode_idn =
    if found (Monitor.search m "xn--bcher-kva.example.com") "xn--bcher-kva.example.com"
    then Yes
    else No
  in
  let punycode_idn_cctld =
    match Monitor.search m "xn--bcher-kva.xn--p1ai" with
    | Monitor.Refused _ -> No
    | r -> if found r "xn--bcher-kva.xn--p1ai" then Yes else No
  in
  let fails_special_unicode =
    if found (Monitor.search m "special\x01.victim-corp.com") "special\x01.victim-corp.com"
    then No
    else Yes
  in
  {
    monitor = prof.Monitor.name;
    case_sensitive;
    unicode_search;
    fuzzy_search;
    ulabel_check;
    punycode_idn;
    punycode_idn_cctld;
    fails_special_unicode;
  }

let table6 () = List.map probe Monitor.all

type concealment = {
  monitor : string;
  forged_cn : string;
  owner_query : string;
  concealed : bool;
}

let concealment_demo () =
  List.concat_map
    (fun prof ->
      let m = Monitor.create prof in
      (* The adversary's CA logs forged certificates whose fields carry
         special characters. *)
      let forged =
        [ ("victim-bank.com/path", "victim-bank.com");
          ("victim bank.com", "victim-bank.com");
          ("victim-bank.com\x00.evil.com", "victim-bank.com") ]
      in
      List.map
        (fun (forged_cn, owner_query) ->
          let cert = cert_for ~cn:(Some forged_cn) [ forged_cn ] in
          Monitor.ingest m cert;
          let visible =
            match Monitor.search m owner_query with
            | Monitor.Refused _ -> false
            | Monitor.Results certs -> List.memq cert certs
          in
          { monitor = prof.Monitor.name; forged_cn; owner_query; concealed = not visible })
        forged)
    Monitor.all

type recall = { monitor : string; found : int; sampled : int }

let corpus_recall ?(scale = 6000) ?(seed = 21) ?mutator ?(drop = false) () =
  (* Collect flawed corpus certificates (the paper samples 1K
     noncompliant Unicerts).  Under a corruption [mutator] the mutated
     blobs no longer parse and cannot be ingested, so recall is
     measured over the surviving deliveries only — identical whether
     the faulty indices deliver corrupted bytes or nothing ([drop]). *)
  let flawed = ref [] in
  Ctlog.Dataset.iter_deliveries ~scale ?mutator ~drop ~seed (fun _ delivery ->
      match delivery with
      | Ctlog.Dataset.Entry e ->
          if e.Ctlog.Dataset.flaws <> [] then
            flawed := e.Ctlog.Dataset.cert :: !flawed
      | Ctlog.Dataset.Corrupt _ -> ());
  let flawed = !flawed in
  List.map
    (fun prof ->
      let m = Monitor.create prof in
      List.iter (Monitor.ingest m) flawed;
      let found =
        List.length
          (List.filter
             (fun cert ->
               match X509.Certificate.san_dns_names cert with
               | [] -> false
               | primary :: _ -> (
                   match Monitor.search m primary with
                   | Monitor.Refused _ -> false
                   | Monitor.Results certs -> List.memq cert certs))
             flawed)
      in
      { monitor = prof.Monitor.name; found; sampled = List.length flawed })
    Monitor.all

let render ppf =
  Format.fprintf ppf "== Table 6: Unicert tolerance among CT monitors ==@.";
  Format.fprintf ppf
    "%-18s | %-9s | %-8s | %-6s | %-7s | %-9s | %-10s | %-13s@." "Monitor" "CaseSens"
    "Unicode" "Fuzzy" "U-check" "Punycode" "Puny-ccTLD" "FailsSpecial";
  List.iter
    (fun (r : row) ->
      Format.fprintf ppf "%-18s | %-9s | %-8s | %-6s | %-7s | %-9s | %-10s | %-13s@."
        r.monitor
        (capability_symbol r.case_sensitive)
        (capability_symbol r.unicode_search)
        (capability_symbol r.fuzzy_search)
        (capability_symbol r.ulabel_check)
        (capability_symbol r.punycode_idn)
        (capability_symbol r.punycode_idn_cctld)
        (capability_symbol r.fails_special_unicode))
    (table6 ());
  Format.fprintf ppf "@.== CT-monitor misleading (concealment) demo ==@.";
  List.iter
    (fun c ->
      if c.concealed then
        Format.fprintf ppf "%-18s conceals forged CN %S from owner query %S@." c.monitor
          c.forged_cn c.owner_query)
    (concealment_demo ());
  Format.fprintf ppf "@.== Noncompliant-Unicert recall by exact SAN query (F.2 battery) ==@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-18s finds %d of %d sampled noncompliant Unicerts (%.1f%%)@."
        r.monitor r.found r.sampled
        (100.0 *. float_of_int r.found /. float_of_int (max 1 r.sampled)))
    (corpus_recall ())
