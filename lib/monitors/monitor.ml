type profile = {
  name : string;
  indexes_subject_attrs : bool;
  fuzzy_search : bool;
  unicode_search : bool;
  ulabel_check : bool;
  punycode_ccidn : bool;
  cn_split_slash : bool;
  cn_drop_with_space : bool;
  index_drops_special : bool;
}

type instance = {
  prof : profile;
  mutable entries : (string list * X509.Certificate.t) list;
      (** (index keys, certificate), newest first *)
}

let create prof = { prof; entries = [] }
let profile m = m.prof

let has_special s =
  String.exists (fun c -> Char.code c < 0x20 || Char.code c = 0x7F) s

let fold_key s = String.lowercase_ascii s

(* The subject material a monitor indexes, independent of where it came
   from — a parsed certificate or a stored analysis row. *)
type fields = { f_cns : string list; f_sans : string list; f_attrs : string list }

let keys_of_fields prof f =
  let cns =
    List.filter_map
      (fun cn ->
        if prof.cn_drop_with_space && String.contains cn ' ' then None
        else if prof.cn_split_slash && String.contains cn '/' then
          Some (String.sub cn 0 (String.index cn '/'))
        else Some cn)
      f.f_cns
  in
  let extra = if prof.indexes_subject_attrs then f.f_attrs else [] in
  let keys = cns @ f.f_sans @ extra in
  let keys =
    if prof.index_drops_special then List.filter (fun k -> not (has_special k)) keys
    else keys
  in
  List.map fold_key keys

let fields_of_cert cert =
  let tbs = cert.X509.Certificate.tbs in
  {
    f_cns = X509.Dn.get_text tbs.X509.Certificate.subject X509.Attr.Common_name;
    f_sans = X509.Certificate.san_dns_names cert;
    f_attrs =
      X509.Dn.get_text tbs.X509.Certificate.subject X509.Attr.Organization_name
      @ X509.Dn.get_text tbs.X509.Certificate.subject
          X509.Attr.Organizational_unit_name
      @ X509.Dn.get_text tbs.X509.Certificate.subject X509.Attr.Email_address;
  }

(* Keys a monitor derives from one certificate. *)
let keys_of prof cert = keys_of_fields prof (fields_of_cert cert)

let ingest m cert = m.entries <- (keys_of m.prof cert, cert) :: m.entries

let ingest_log m log =
  List.iter
    (fun (e : Ctlog.Log.entry) ->
      match X509.Certificate.parse e.Ctlog.Log.der with
      | Ok cert -> ingest m cert
      | Error _ -> ())
    (Ctlog.Log.entries log)

type query_result = Refused of string | Results of X509.Certificate.t list

let is_ascii_query q = String.for_all (fun c -> Char.code c < 0x80) q

(* Convert a U-label query to its A-label lookup form, validating if the
   monitor checks legality. *)
let prepare_query prof q =
  if not (is_ascii_query q) then begin
    if not prof.unicode_search then Error "Unicode input not supported"
    else begin
      let labels = Idna.Dns.split_labels q in
      let validated =
        List.map
          (fun l ->
            if String.for_all (fun c -> Char.code c < 0x80) l then Ok l
            else begin
              let cps = Unicode.Codec.cps_of_utf8 l in
              if prof.ulabel_check && Idna.ulabel_issues cps <> [] then
                Error (Printf.sprintf "invalid U-label %S" l)
              else
                match Idna.Punycode.encode_utf8 l with
                | Ok body -> Ok ("xn--" ^ body)
                | Error m -> Error m
            end)
          labels
      in
      match List.find_opt Result.is_error validated with
      | Some (Error m) -> Error m
      | Some (Ok _) -> assert false
      | None -> Ok (String.concat "." (List.map Result.get_ok validated))
    end
  end
  else begin
    (* A-label queries: monitors that check legality also validate
       Punycode IDN queries before searching. *)
    let labels = Idna.Dns.split_labels q in
    let bad_alabel =
      prof.ulabel_check
      && List.exists
           (fun l -> Idna.Dns.is_a_label_candidate l && Idna.alabel_issues l <> [])
           labels
    in
    (* Refusal is only about IDN *country-code* TLDs (Table 6 column
       "Punycode IDN ccTLD").  An A-label TLD that is not a ccIDN — an
       IDN gTLD like xn--q9jyb4c — must fall through to an ordinary
       search that may simply return no results: conflating "we do not
       serve ccIDN Punycode" with "not found" misreports the monitor's
       coverage. *)
    let cctld_refused =
      (not prof.punycode_ccidn)
      &&
      match List.rev labels with
      | tld :: _ -> Idna.Dns.is_idn_cctld tld
      | [] -> false
    in
    if bad_alabel then Error "A-label fails U-label legality check"
    else if cctld_refused then Error "Punycode IDN ccTLDs not supported"
    else Ok q
  end

let matches prof ~needle keys =
  let contains hay =
    let hn = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
    nn > 0 && go 0
  in
  if prof.fuzzy_search then List.exists contains keys
  else List.exists (String.equal needle) keys

let search m q =
  match prepare_query m.prof q with
  | Error reason -> Refused reason
  | Ok prepared ->
      let needle = fold_key prepared in
      Results
        (List.rev_map snd
           (List.filter (fun (keys, _) -> matches m.prof ~needle keys) m.entries)
        |> List.rev)

(* Profiles per Table 6. *)
let crtsh =
  {
    name = "Crt.sh";
    indexes_subject_attrs = true;
    fuzzy_search = true;
    unicode_search = false;
    ulabel_check = false;
    punycode_ccidn = true;
    cn_split_slash = false;
    cn_drop_with_space = false;
    index_drops_special = false;
  }

let sslmate =
  {
    name = "SSLMate Spotter";
    indexes_subject_attrs = false;
    fuzzy_search = false;
    unicode_search = false;
    ulabel_check = true;
    punycode_ccidn = true;
    cn_split_slash = true;
    cn_drop_with_space = true;
    index_drops_special = true;
  }

let facebook =
  {
    name = "Facebook Monitor";
    indexes_subject_attrs = false;
    fuzzy_search = false;
    unicode_search = false;
    ulabel_check = true;
    punycode_ccidn = true;
    cn_split_slash = false;
    cn_drop_with_space = false;
    index_drops_special = false;
  }

let entrust =
  {
    name = "Entrust Search";
    indexes_subject_attrs = false;
    fuzzy_search = false;
    unicode_search = false;
    ulabel_check = false;
    punycode_ccidn = false;
    cn_split_slash = false;
    cn_drop_with_space = false;
    index_drops_special = false;
  }

let merklemap =
  {
    name = "MerkleMap";
    indexes_subject_attrs = false;
    fuzzy_search = true;
    unicode_search = false;
    ulabel_check = false;
    punycode_ccidn = true;
    cn_split_slash = false;
    cn_drop_with_space = false;
    index_drops_special = false;
  }

let all = [ crtsh; sslmate; facebook; entrust; merklemap ]

(* Short stable keys for wire protocols and CLI flags. *)
let profile_key p =
  if p.name = crtsh.name then "crtsh"
  else if p.name = sslmate.name then "sslmate"
  else if p.name = facebook.name then "facebook"
  else if p.name = entrust.name then "entrust"
  else if p.name = merklemap.name then "merklemap"
  else String.lowercase_ascii p.name

let of_key k =
  List.find_opt (fun p -> profile_key p = String.lowercase_ascii k) all
