(** The monitor daemon's live query service (DESIGN.md §13).

    A crt.sh-style search API over the certificates ingested so far:
    per-profile subject search (Table 6 semantics — U-label/Punycode
    handling, fuzzy vs exact, refusals) plus direct lookups against
    the five persistent store indexes.

    Ingest/read protocol: material is {e staged} as entries arrive and
    published atomically by {!commit} — always paired with the store's
    manifest commit, so readers observe exactly the durable prefix.
    The service is fed pre-derived material (subject fields, index
    entries) rather than certificates; replaying the committed rows of
    a recovered store rebuilds byte-identical serving state.

    All operations are thread-safe. *)

type t

val create : unit -> t

val stage_fields :
  t -> id:int -> cns:string list -> sans:string list -> attrs:string list -> unit
(** Stage one certificate's subject material for every monitor
    profile, keyed by corpus index [id]. *)

val stage_index : t -> index:string -> key:string -> id:int -> unit
(** Stage one persistent-index entry (issuer, lint, flaw, domain or
    ulabel). *)

val commit : t -> upto:int -> unit
(** Publish everything staged and raise the committed watermark to
    [upto] (never lowers). *)

val committed : t -> int

val respond : t -> string -> string list
(** Answer one request line with payload lines (the caller frames
    them).  Grammar:

    {v
      q <profile> <text>    monitor-style subject search
      ix <index> <key>      direct index lookup
      stats                 committed watermark and entry counts
    v}

    Replies: [refused <reason>], [hits <n> <id...>] (ascending),
    [stats committed=<n> ...], or [err <detail>].  Counted in
    [unicert_queries_total]; latency lands in
    [unicert_query_latency_seconds{index}]. *)

val prewarm : unit -> unit
(** Force lazy telemetry handles before spawning worker domains. *)
