(* The live query service behind the monitor daemon (DESIGN.md §13).

   Ingest is two-phase: rows are *staged* as they arrive off the logs,
   and a later *commit* — always paired with the store's atomic
   manifest commit — publishes everything staged in one step.  Readers
   only ever observe committed state, so a query races with ingest at
   snapshot granularity: the answer is exactly what the last durable
   commit contains, never a half-ingested tick.

   The service is fed pre-derived material (subject fields and index
   entries computed from stored analysis rows) rather than
   certificates: replaying the committed rows of a recovered store
   rebuilds byte-identical serving state. *)

type entry = { e_id : int; e_keys : string list }

type t = {
  mu : Mutex.t;
  mutable staged : (string * entry) list;  (* (profile key, entry), newest first *)
  serving : (string, entry list) Hashtbl.t;  (* profile key -> ascending id *)
  mutable staged_ix : (string * (string * int)) list;
      (* (index name, (key, id)), newest first *)
  serving_ix : (string, (string, int list) Hashtbl.t) Hashtbl.t;
      (* index name -> key -> ids, ascending *)
  mutable committed : int;  (* corpus indexes below this are published *)
}

let indexes = [ "issuer"; "lint"; "flaw"; "domain"; "ulabel" ]

let obs_queries =
  lazy
    (Obs.Registry.counter ~help:"Queries answered by the monitor service"
       "unicert_queries_total")

let obs_latency =
  lazy
    (Obs.Registry.labeled_histogram ~label:"index"
       ~help:"Query latency by index (subject = profile search)"
       "unicert_query_latency_seconds")

let prewarm () =
  ignore (Lazy.force obs_queries);
  ignore (Lazy.force obs_latency)

let create () =
  let serving = Hashtbl.create 8 in
  List.iter
    (fun p -> Hashtbl.replace serving (Monitor.profile_key p) [])
    Monitor.all;
  let serving_ix = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace serving_ix n (Hashtbl.create 64)) indexes;
  {
    mu = Mutex.create ();
    staged = [];
    serving;
    staged_ix = [];
    serving_ix;
    committed = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let stage_fields t ~id ~cns ~sans ~attrs =
  let fields =
    { Monitor.f_cns = cns; Monitor.f_sans = sans; Monitor.f_attrs = attrs }
  in
  let staged =
    List.map
      (fun p ->
        ( Monitor.profile_key p,
          { e_id = id; e_keys = Monitor.keys_of_fields p fields } ))
      Monitor.all
  in
  locked t (fun () -> t.staged <- staged @ t.staged)

let stage_index t ~index ~key ~id =
  locked t (fun () -> t.staged_ix <- (index, (key, id)) :: t.staged_ix)

let commit t ~upto =
  locked t (fun () ->
      (* Staged lists are newest-first; appending their reversal keeps
         every serving list ascending by id. *)
      List.iter
        (fun (pk, e) ->
          match Hashtbl.find_opt t.serving pk with
          | Some es -> Hashtbl.replace t.serving pk (es @ [ e ])
          | None -> Hashtbl.replace t.serving pk [ e ])
        (List.rev t.staged);
      t.staged <- [];
      List.iter
        (fun (ix, (key, id)) ->
          match Hashtbl.find_opt t.serving_ix ix with
          | None -> ()
          | Some tbl ->
              let ids = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
              Hashtbl.replace tbl key (ids @ [ id ]))
        (List.rev t.staged_ix);
      t.staged_ix <- [];
      t.committed <- max t.committed upto)

let committed t = locked t (fun () -> t.committed)

(* --- the query protocol ------------------------------------------------ *)

let hits ids =
  let ids = List.sort_uniq compare ids in
  Printf.sprintf "hits %d%s" (List.length ids)
    (String.concat "" (List.map (fun i -> " " ^ string_of_int i) ids))

let subject_query t prof text =
  match Monitor.prepare_query prof text with
  | Error reason -> [ "refused " ^ reason ]
  | Ok prepared ->
      let needle = String.lowercase_ascii prepared in
      let ids =
        locked t (fun () ->
            match Hashtbl.find_opt t.serving (Monitor.profile_key prof) with
            | None -> []
            | Some es ->
                List.filter_map
                  (fun e ->
                    if Monitor.matches prof ~needle e.e_keys then Some e.e_id
                    else None)
                  es)
      in
      [ hits ids ]

let index_query t name key =
  if not (List.mem name indexes) then
    [ Printf.sprintf "err unknown index %s (issuer|lint|flaw|domain|ulabel)"
        name ]
  else
    let ids =
      locked t (fun () ->
          match Hashtbl.find_opt t.serving_ix name with
          | None -> []
          | Some tbl -> Option.value ~default:[] (Hashtbl.find_opt tbl key))
    in
    [ hits ids ]

let stats t =
  locked t (fun () ->
      let entries =
        match Hashtbl.find_opt t.serving "crtsh" with
        | Some es -> List.length es
        | None -> 0
      in
      [ Printf.sprintf "stats committed=%d entries=%d staged=%d" t.committed
          entries
          (List.length t.staged / max 1 (List.length Monitor.all)) ])

let split2 s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let respond t line =
  let t0 = Unix.gettimeofday () in
  Obs.Counter.inc (Lazy.force obs_queries);
  let cmd, rest = split2 (String.trim line) in
  let bucket, reply =
    match cmd with
    | "q" -> (
        let pkey, text = split2 rest in
        match Monitor.of_key pkey with
        | None ->
            ("subject", [ Printf.sprintf "err unknown profile %s" pkey ])
        | Some prof ->
            if text = "" then ("subject", [ "err empty query" ])
            else ("subject", subject_query t prof text))
    | "ix" ->
        let name, key = split2 rest in
        (name, index_query t name key)
    | "stats" -> ("stats", stats t)
    | other -> ("err", [ Printf.sprintf "err unknown command %s" other ])
  in
  Obs.Histogram.observe
    (Obs.Histogram.Labeled.get (Lazy.force obs_latency) bucket)
    (Unix.gettimeofday () -. t0);
  reply
