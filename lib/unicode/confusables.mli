(** Visually confusable characters (homographs).

    Browsers and CT monitors in the paper fail to detect Cyrillic/Greek
    lookalikes in certificate fields (Appendix F.1 [G1.2], §6.1 [P1.3]).
    This module implements a skeleton transform in the spirit of UTS #39:
    each code point maps to its primary ASCII lookalike, so two strings
    are confusable iff their skeletons are equal. *)

val lookalike : Cp.t -> Cp.t option
(** [lookalike cp] is the ASCII (or canonical) code point [cp] visually
    resembles, if it is a known confusable.  BMP lookups hit a flat
    direct-index table; astral lookups fall back to the hashtable. *)

val lookalike_hashed : Cp.t -> Cp.t option
(** The hashtable reference implementation of {!lookalike}; the flat
    BMP table is generated from it and tested against it
    exhaustively. *)

val skeleton : Cp.t array -> Cp.t array
(** [skeleton cps] maps every confusable to its lookalike, lowercases
    ASCII, and drops invisible characters, yielding a comparison key. *)

val skeleton_hashed : Cp.t array -> Cp.t array
(** {!skeleton} computed through {!lookalike_hashed} — the reference
    path for the equivalence tests. *)

val utf8_skeleton : string -> string
(** [utf8_skeleton s] is {!skeleton} over a UTF-8 string. *)

val confusable : string -> string -> bool
(** [confusable a b] is [true] iff the two UTF-8 strings have equal
    skeletons but different NFC forms — i.e. they look the same without
    being canonically the same. *)

val equivalent_substitution : Cp.t -> Cp.t option
(** [equivalent_substitution cp] models the browser character
    substitution policy the paper criticizes: e.g. the Greek question
    mark U+037E is replaced by a semicolon U+003B rather than the
    visually faithful Latin question mark (Table 14, [G1.2]). *)
